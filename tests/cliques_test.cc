#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "gen/hetero.h"
#include "gen/paper_example.h"
#include "rdf/graph_stats.h"
#include "reasoner/saturation.h"
#include "reasoner/schema_index.h"
#include "summary/cliques.h"

namespace rdfsum::summary {
namespace {

using gen::BuildFigure2;
using gen::Figure2Example;

std::set<TermId> MembersOfNodeSourceClique(const PropertyCliques& c,
                                           TermId node) {
  uint32_t id = c.SourceCliqueOf(node);
  if (id == 0) return {};
  const auto& m = c.source_clique_members[id - 1];
  return {m.begin(), m.end()};
}

std::set<TermId> MembersOfNodeTargetClique(const PropertyCliques& c,
                                           TermId node) {
  uint32_t id = c.TargetCliqueOf(node);
  if (id == 0) return {};
  const auto& m = c.target_clique_members[id - 1];
  return {m.begin(), m.end()};
}

// ------------------------------------------------ Table 1, reproduced exactly

class Table1Test : public ::testing::Test {
 protected:
  Table1Test() : ex_(BuildFigure2()) {
    cliques_ = ComputePropertyCliques(ex_.graph);
  }
  Figure2Example ex_;
  PropertyCliques cliques_;
};

TEST_F(Table1Test, SourceCliques) {
  // SC1 = {a, t, e, c}; SC2 = {r}; SC3 = {p}.
  EXPECT_EQ(cliques_.num_source_cliques, 3u);
  std::set<TermId> sc1{ex_.author, ex_.title, ex_.editor, ex_.comment};
  for (TermId r : {ex_.r1, ex_.r2, ex_.r3, ex_.r4, ex_.r5}) {
    EXPECT_EQ(MembersOfNodeSourceClique(cliques_, r), sc1);
  }
  EXPECT_EQ(MembersOfNodeSourceClique(cliques_, ex_.a1),
            (std::set<TermId>{ex_.reviewed}));
  EXPECT_EQ(MembersOfNodeSourceClique(cliques_, ex_.e1),
            (std::set<TermId>{ex_.published}));
}

TEST_F(Table1Test, TargetCliques) {
  // TC1={a}; TC2={t}; TC3={e}; TC4={c}; TC5={r,p}.
  EXPECT_EQ(cliques_.num_target_cliques, 5u);
  EXPECT_EQ(MembersOfNodeTargetClique(cliques_, ex_.a1),
            (std::set<TermId>{ex_.author}));
  EXPECT_EQ(MembersOfNodeTargetClique(cliques_, ex_.a2),
            (std::set<TermId>{ex_.author}));
  for (TermId t : {ex_.t1, ex_.t2, ex_.t3, ex_.t4}) {
    EXPECT_EQ(MembersOfNodeTargetClique(cliques_, t),
              (std::set<TermId>{ex_.title}));
  }
  for (TermId e : {ex_.e1, ex_.e2}) {
    EXPECT_EQ(MembersOfNodeTargetClique(cliques_, e),
              (std::set<TermId>{ex_.editor}));
  }
  EXPECT_EQ(MembersOfNodeTargetClique(cliques_, ex_.c1),
            (std::set<TermId>{ex_.comment}));
  EXPECT_EQ(MembersOfNodeTargetClique(cliques_, ex_.r4),
            (std::set<TermId>{ex_.reviewed, ex_.published}));
}

TEST_F(Table1Test, EmptyCliques) {
  // r1..r3, r5 have no target clique; r6 has neither; a1 has both.
  EXPECT_EQ(cliques_.TargetCliqueOf(ex_.r1), 0u);
  EXPECT_EQ(cliques_.TargetCliqueOf(ex_.r5), 0u);
  EXPECT_EQ(cliques_.SourceCliqueOf(ex_.r6), 0u);
  EXPECT_EQ(cliques_.TargetCliqueOf(ex_.r6), 0u);
  EXPECT_NE(cliques_.SourceCliqueOf(ex_.a1), 0u);
  EXPECT_NE(cliques_.TargetCliqueOf(ex_.a1), 0u);
  EXPECT_EQ(cliques_.SourceCliqueOf(ex_.t1), 0u);
}

TEST_F(Table1Test, CliquesPartitionDataProperties) {
  // Each data property belongs to exactly one source clique (or none) and
  // one target clique (or none); together with the "every property of a
  // resource is in its clique" invariant this is the partition claim of §3.1.
  std::set<TermId> all_props{ex_.author,  ex_.title,    ex_.editor,
                             ex_.comment, ex_.reviewed, ex_.published};
  std::set<TermId> from_source;
  for (const auto& members : cliques_.source_clique_members) {
    for (TermId p : members) EXPECT_TRUE(from_source.insert(p).second);
  }
  EXPECT_EQ(from_source, all_props);
  std::set<TermId> from_target;
  for (const auto& members : cliques_.target_clique_members) {
    for (TermId p : members) EXPECT_TRUE(from_target.insert(p).second);
  }
  EXPECT_EQ(from_target, all_props);
}

// ------------------------------------------------ Definition 6: distances

TEST_F(Table1Test, PropertyDistances) {
  const Graph& g = ex_.graph;
  EXPECT_EQ(PropertyDistance(g, ex_.author, ex_.title, true), 0);   // r1
  EXPECT_EQ(PropertyDistance(g, ex_.title, ex_.editor, true), 0);   // r2
  EXPECT_EQ(PropertyDistance(g, ex_.author, ex_.editor, true), 1);  // chain
  EXPECT_EQ(PropertyDistance(g, ex_.author, ex_.comment, true), 2);
  EXPECT_EQ(PropertyDistance(g, ex_.author, ex_.author, true), 0);
}

TEST_F(Table1Test, DistanceAcrossCliquesIsMinusOne) {
  EXPECT_EQ(PropertyDistance(ex_.graph, ex_.author, ex_.reviewed, true), -1);
  EXPECT_EQ(PropertyDistance(ex_.graph, ex_.reviewed, ex_.published, true),
            -1);
  // On the target side r and p share r4.
  EXPECT_EQ(PropertyDistance(ex_.graph, ex_.reviewed, ex_.published, false),
            0);
}

TEST_F(Table1Test, DistanceSymmetry) {
  EXPECT_EQ(PropertyDistance(ex_.graph, ex_.comment, ex_.author, true), 2);
}

// ------------------------------------------------ scopes

TEST(CliqueScopeTest, UntypedEndpointsScopeSplitsCliques) {
  Figure2Example ex = BuildFigure2();
  PropertyCliques c =
      ComputePropertyCliques(ex.graph, CliqueScope::kUntypedEndpoints);
  // Untyped subjects: r3 {e,c}, r4 {a,t}, a1 {r}, e1 {p} — four source
  // cliques, no bridge through the typed r1/r2/r5.
  EXPECT_EQ(c.num_source_cliques, 4u);
  EXPECT_EQ(MembersOfNodeSourceClique(c, ex.r3),
            (std::set<TermId>{ex.editor, ex.comment}));
  EXPECT_EQ(MembersOfNodeSourceClique(c, ex.r4),
            (std::set<TermId>{ex.author, ex.title}));
  // Typed subjects are not assigned source cliques in this scope.
  EXPECT_EQ(c.SourceCliqueOf(ex.r1), 0u);
}

TEST(CliqueScopeTest, UntypedDataGraphScopeIsStricter) {
  Figure2Example ex = BuildFigure2();
  PropertyCliques c =
      ComputePropertyCliques(ex.graph, CliqueScope::kUntypedDataGraph);
  // t1 is the object of a typed subject's triple: outside UD entirely.
  EXPECT_EQ(c.TargetCliqueOf(ex.t1), 0u);
  // t3 is the object of untyped r4: inside UD.
  EXPECT_NE(c.TargetCliqueOf(ex.t3), 0u);
  // e2 is object of r3 (untyped) -> in UD; e1 only of typed r2 -> outside.
  EXPECT_NE(c.TargetCliqueOf(ex.e2), 0u);
  EXPECT_EQ(c.TargetCliqueOf(ex.e1), 0u);
}

// ------------------------------------------------ Lemma 1 on random graphs

class CliqueLemmaTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CliqueLemmaTest, SaturationCoarsensCliques) {
  // Lemma 1.1: every clique of G is contained in exactly one clique of G∞.
  gen::HeteroOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 120;
  opt.num_properties = 10;
  Graph g = gen::GenerateHetero(opt);
  Graph sat = reasoner::Saturate(g);

  PropertyCliques before = ComputePropertyCliques(g);
  PropertyCliques after = ComputePropertyCliques(sat);

  for (const auto& members : before.source_clique_members) {
    std::set<uint32_t> containing;
    for (TermId p : members) {
      auto it = after.property_index.find(p);
      ASSERT_NE(it, after.property_index.end());
      uint32_t clique = after.source_clique_of_property[it->second];
      ASSERT_NE(clique, 0u);
      containing.insert(clique);
    }
    EXPECT_EQ(containing.size(), 1u)
        << "a G clique was split across G∞ cliques";
  }
}

TEST_P(CliqueLemmaTest, NodeCliqueConsistentWithProperties) {
  // SC(r) is the clique of *all* of r's properties.
  gen::HeteroOptions opt;
  opt.seed = GetParam() + 1000;
  opt.num_nodes = 100;
  Graph g = gen::GenerateHetero(opt);
  PropertyCliques c = ComputePropertyCliques(g);
  for (const Triple& t : g.data()) {
    uint32_t sc = c.SourceCliqueOf(t.s);
    auto it = c.property_index.find(t.p);
    ASSERT_NE(it, c.property_index.end());
    EXPECT_EQ(sc, c.source_clique_of_property[it->second]);
    uint32_t tc = c.TargetCliqueOf(t.o);
    EXPECT_EQ(tc, c.target_clique_of_property[it->second]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliqueLemmaTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 17, 23));

TEST(SaturatedCliqueTest, AddsSuperProperties) {
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("p"), q = d.EncodeIri("q"), r = d.EncodeIri("r");
  g.Add({p, g.vocab().subproperty, q});
  g.Add({q, g.vocab().subproperty, r});
  reasoner::SchemaIndex idx(g);
  auto sat = SaturatedPropertySet({p}, idx);
  EXPECT_EQ(sat.size(), 3u);
  auto none = SaturatedPropertySet({r}, idx);
  EXPECT_EQ(none.size(), 1u);
}

TEST(CliqueEdgeCaseTest, EmptyGraph) {
  Graph g;
  PropertyCliques c = ComputePropertyCliques(g);
  EXPECT_EQ(c.num_source_cliques, 0u);
  EXPECT_EQ(c.num_target_cliques, 0u);
}

TEST(CliqueEdgeCaseTest, SelfLoopJoinsBothSides) {
  Graph g;
  Dictionary& d = g.dict();
  TermId n = d.EncodeIri("n"), p = d.EncodeIri("p");
  g.Add({n, p, n});
  PropertyCliques c = ComputePropertyCliques(g);
  EXPECT_EQ(c.SourceCliqueOf(n), 1u);
  EXPECT_EQ(c.TargetCliqueOf(n), 1u);
}

}  // namespace
}  // namespace rdfsum::summary
