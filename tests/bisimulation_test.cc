#include <gtest/gtest.h>

#include "gen/bsbm.h"
#include "gen/hetero.h"
#include "gen/paper_example.h"
#include "query/evaluator.h"
#include "query/rbgp.h"
#include "reasoner/saturation.h"
#include "summary/node_partition.h"
#include "summary/property_checks.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {
namespace {

TEST(BisimulationTest, DepthZeroUntypedCollapsesEverything) {
  gen::Figure2Example ex = gen::BuildFigure2();
  NodePartition part =
      ComputeBisimulationPartition(ex.graph, /*depth=*/0, /*use_types=*/false);
  EXPECT_EQ(part.num_classes, 1u);
}

TEST(BisimulationTest, DepthZeroWithTypesGroupsByClassSet) {
  gen::Figure2Example ex = gen::BuildFigure2();
  NodePartition part =
      ComputeBisimulationPartition(ex.graph, 0, /*use_types=*/true);
  // Class sets: {Book}, {Journal} (r2, r6), {Spec}, untyped -> 4 classes.
  EXPECT_EQ(part.num_classes, 4u);
  EXPECT_EQ(part.class_of.at(ex.r2), part.class_of.at(ex.r6));
  EXPECT_NE(part.class_of.at(ex.r1), part.class_of.at(ex.r2));
}

TEST(BisimulationTest, RefinementIsMonotone) {
  gen::HeteroOptions opt;
  opt.seed = 31;
  opt.num_nodes = 150;
  Graph g = gen::GenerateHetero(opt);
  uint32_t prev = 0;
  for (uint32_t depth = 0; depth <= 4; ++depth) {
    NodePartition part = ComputeBisimulationPartition(g, depth, true);
    EXPECT_GE(part.num_classes, prev) << "depth " << depth;
    prev = part.num_classes;
  }
}

TEST(BisimulationTest, DepthOneSeparatesByPropertySignature) {
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("p"), q = d.EncodeIri("q");
  TermId x1 = d.EncodeIri("x1"), x2 = d.EncodeIri("x2"),
         x3 = d.EncodeIri("x3");
  g.Add({x1, p, d.EncodeIri("y1")});
  g.Add({x2, p, d.EncodeIri("y2")});
  g.Add({x3, q, d.EncodeIri("y3")});
  NodePartition part = ComputeBisimulationPartition(g, 1, false);
  // x1 ~ x2 (both have only outgoing p to an all-equal color), x3 differs.
  EXPECT_EQ(part.class_of.at(x1), part.class_of.at(x2));
  EXPECT_NE(part.class_of.at(x1), part.class_of.at(x3));
}

TEST(BisimulationTest, SummarizeFacadeWorks) {
  gen::Figure2Example ex = gen::BuildFigure2();
  SummaryOptions options;
  options.bisimulation_depth = 2;
  SummaryResult r = Summarize(ex.graph, SummaryKind::kBisimulation, options);
  EXPECT_GT(r.stats.num_data_nodes, 0u);
  EXPECT_TRUE(CheckHomomorphism(ex.graph, r).ok());
  EXPECT_EQ(r.graph.schema().size(), ex.graph.schema().size());
}

TEST(BisimulationTest, QuotientIsStillRepresentative) {
  // Any quotient summary is RBGP-representative — including the baseline.
  gen::HeteroOptions opt;
  opt.seed = 17;
  opt.num_nodes = 90;
  opt.type_probability = 0.4;
  Graph g = gen::GenerateHetero(opt);
  Graph g_inf = reasoner::Saturate(g);
  SummaryResult h = Summarize(g, SummaryKind::kBisimulation);
  Graph h_inf = reasoner::Saturate(h.graph);
  query::BgpEvaluator eval(h_inf);
  Random rng(5);
  for (int i = 0; i < 25; ++i) {
    query::BgpQuery q = query::GenerateRbgpQuery(g_inf, rng);
    if (q.triples.empty()) continue;
    EXPECT_TRUE(eval.ExistsMatch(q)) << q.ToString();
  }
}

TEST(BisimulationTest, BlowsUpRelativeToWeakOnBsbm) {
  // The §8 claim that motivates the paper's design: bisimulation grows with
  // structural diversity, the W summary does not.
  gen::BsbmOptions opt;
  opt.num_products = 400;
  Graph g = gen::GenerateBsbm(opt);
  SummaryResult w = Summarize(g, SummaryKind::kWeak);
  SummaryOptions deep;
  deep.bisimulation_depth = 3;
  SummaryResult bisim = Summarize(g, SummaryKind::kBisimulation, deep);
  EXPECT_GT(bisim.stats.num_data_nodes, 10 * w.stats.num_data_nodes);
}

TEST(BisimulationTest, DeterministicAcrossRuns) {
  gen::HeteroOptions opt;
  opt.seed = 12;
  Graph g = gen::GenerateHetero(opt);
  NodePartition a = ComputeBisimulationPartition(g, 2, true);
  NodePartition b = ComputeBisimulationPartition(g, 2, true);
  EXPECT_EQ(a.num_classes, b.num_classes);
  for (const auto& [n, c] : a.class_of) EXPECT_EQ(b.class_of.at(n), c);
}

TEST(BisimulationTest, DirectionSelectsNeighborhoods) {
  // {x1,p,y1}, {x2,p,y2}, {x3,q,y3}: forward depth-1 groups the sources by
  // outgoing label and all targets together (no out-edges); backward is the
  // mirror image; fb separates both sides.
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("p"), q = d.EncodeIri("q");
  TermId x1 = d.EncodeIri("x1"), x2 = d.EncodeIri("x2"),
         x3 = d.EncodeIri("x3");
  TermId y1 = d.EncodeIri("y1"), y2 = d.EncodeIri("y2"),
         y3 = d.EncodeIri("y3");
  g.Add({x1, p, y1});
  g.Add({x2, p, y2});
  g.Add({x3, q, y3});

  NodePartition fwd = ComputeBisimulationPartition(
      g, 1, false, BisimulationDirection::kForward);
  EXPECT_EQ(fwd.class_of.at(x1), fwd.class_of.at(x2));
  EXPECT_NE(fwd.class_of.at(x1), fwd.class_of.at(x3));
  EXPECT_EQ(fwd.class_of.at(y1), fwd.class_of.at(y3));

  NodePartition bwd = ComputeBisimulationPartition(
      g, 1, false, BisimulationDirection::kBackward);
  EXPECT_EQ(bwd.class_of.at(y1), bwd.class_of.at(y2));
  EXPECT_NE(bwd.class_of.at(y1), bwd.class_of.at(y3));
  EXPECT_EQ(bwd.class_of.at(x1), bwd.class_of.at(x3));

  NodePartition fb = ComputeBisimulationPartition(
      g, 1, false, BisimulationDirection::kForwardBackward);
  EXPECT_NE(fb.class_of.at(y1), fb.class_of.at(y3));
  EXPECT_NE(fb.class_of.at(x1), fb.class_of.at(x3));
}

TEST(BisimulationTest, ParallelRoundsMatchSequential) {
  gen::HeteroOptions opt;
  opt.seed = 5;
  opt.num_nodes = 180;
  opt.type_probability = 0.3;
  Graph g = gen::GenerateHetero(opt);
  for (uint32_t depth : {0u, 2u, 4u}) {
    NodePartition seq = ComputeBisimulationPartition(g, depth, true);
    for (uint32_t threads : {2u, 7u, 0u}) {
      NodePartition par = ComputeBisimulationPartition(
          g, depth, true, BisimulationDirection::kForwardBackward, threads);
      EXPECT_EQ(par.num_classes, seq.num_classes)
          << "depth " << depth << " threads " << threads;
      for (const auto& [n, c] : seq.class_of) {
        ASSERT_EQ(par.class_of.at(n), c)
            << "depth " << depth << " threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace rdfsum::summary
