#include <gtest/gtest.h>

#include "gen/hetero.h"
#include "gen/paper_example.h"
#include "query/evaluator.h"
#include "query/rbgp.h"
#include "query/sparql_parser.h"
#include "reasoner/saturation.h"

namespace rdfsum::query {
namespace {

BgpQuery MustParse(const std::string& text) {
  auto q = ParseSparql(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

TEST(RbgpValidationTest, AcceptsPaperExample) {
  // The sample RBGP from §2.2.
  BgpQuery q = MustParse(
      "PREFIX e: <http://ex/>\n"
      "SELECT ?x1 ?x3 WHERE { ?x1 a e:Book . ?x1 e:author ?x2 . "
      "?x2 e:reviewed ?x3 }");
  EXPECT_TRUE(ValidateRbgp(q).ok());
}

TEST(RbgpValidationTest, RejectsVariableProperty) {
  BgpQuery q = MustParse("SELECT ?x WHERE { ?x ?p ?y }");
  EXPECT_FALSE(ValidateRbgp(q).ok());
}

TEST(RbgpValidationTest, RejectsConstantSubject) {
  BgpQuery q = MustParse("SELECT ?y WHERE { <http://s> <http://p> ?y }");
  EXPECT_FALSE(ValidateRbgp(q).ok());
}

TEST(RbgpValidationTest, RejectsConstantNonTypeObject) {
  BgpQuery q = MustParse("SELECT ?x WHERE { ?x <http://p> \"v\" }");
  EXPECT_FALSE(ValidateRbgp(q).ok());
}

TEST(RbgpValidationTest, RejectsVariableTypeObject) {
  BgpQuery q = MustParse("SELECT ?x WHERE { ?x a ?c }");
  EXPECT_FALSE(ValidateRbgp(q).ok());
}

TEST(RbgpValidationTest, AcceptsTypeWithUriObject) {
  BgpQuery q = MustParse("SELECT ?x WHERE { ?x a <http://C> }");
  EXPECT_TRUE(ValidateRbgp(q).ok());
}

// ---------------------------------------------------------------- generator

class RbgpGeneratorTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RbgpGeneratorTest, GeneratedQueriesAreValidRbgp) {
  gen::HeteroOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 80;
  Graph g = gen::GenerateHetero(opt);
  Random rng(GetParam() * 7 + 1);
  for (int i = 0; i < 30; ++i) {
    RbgpGeneratorOptions gen_opt;
    gen_opt.num_patterns = 1 + static_cast<uint32_t>(rng.Uniform(5));
    BgpQuery q = GenerateRbgpQuery(g, rng, gen_opt);
    ASSERT_FALSE(q.triples.empty());
    EXPECT_TRUE(ValidateRbgp(q).ok()) << q.ToString();
    EXPECT_LE(q.triples.size(), gen_opt.num_patterns + 8u);
  }
}

TEST_P(RbgpGeneratorTest, GeneratedQueriesAreNonEmptyOnSource) {
  // The witness-subgraph construction guarantees non-emptiness.
  gen::HeteroOptions opt;
  opt.seed = GetParam() + 500;
  opt.num_nodes = 70;
  opt.type_probability = 0.5;
  Graph g = gen::GenerateHetero(opt);
  Graph sat = reasoner::Saturate(g);
  BgpEvaluator eval(sat);
  Random rng(GetParam() * 13 + 3);
  for (int i = 0; i < 25; ++i) {
    BgpQuery q = GenerateRbgpQuery(sat, rng);
    ASSERT_FALSE(q.triples.empty());
    EXPECT_TRUE(eval.ExistsMatch(q)) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbgpGeneratorTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RbgpGeneratorTest2, EmptyGraphYieldsEmptyQuery) {
  Graph g;
  Random rng(1);
  BgpQuery q = GenerateRbgpQuery(g, rng);
  EXPECT_TRUE(q.triples.empty());
}

TEST(RbgpGeneratorTest2, TypesOnlyGraphYieldsTypePattern) {
  Graph g;
  Dictionary& d = g.dict();
  g.Add({d.EncodeIri("x"), g.vocab().rdf_type, d.EncodeIri("C")});
  Random rng(2);
  BgpQuery q = GenerateRbgpQuery(g, rng);
  ASSERT_EQ(q.triples.size(), 1u);
  EXPECT_TRUE(ValidateRbgp(q).ok());
  BgpEvaluator eval(g);
  EXPECT_TRUE(eval.ExistsMatch(q));
}

TEST(RbgpGeneratorTest2, VariablesAreConsistentPerNode) {
  // The same graph node must always become the same variable within one
  // query (joins are real, not accidental).
  gen::Figure2Example ex = gen::BuildFigure2();
  Random rng(5);
  for (int i = 0; i < 20; ++i) {
    RbgpGeneratorOptions opt;
    opt.num_patterns = 4;
    BgpQuery q = GenerateRbgpQuery(ex.graph, rng, opt);
    BgpEvaluator eval(ex.graph);
    EXPECT_TRUE(eval.ExistsMatch(q)) << q.ToString();
  }
}

}  // namespace
}  // namespace rdfsum::query
