// Differential wall for the streaming executor (PR 4): the cursor-drained
// rows must be byte-identical — same rows, same order — to the legacy
// materializing path across every planner mode x {BSBM, LUBM, paper,
// hetero} x {raw, saturated}, limit/offset slices must equal the matching
// window of the full result stream, and forced hash joins must agree with
// nested loops as sets (chain order can differ from probe-scan order on
// multi-variable keys). Streaming must never change answers — only when
// the work happens.
//
// "Legacy" is not today's Evaluate (that is itself a cursor drain now):
// LegacyPlanRunner below is a frozen verbatim copy of the PR 3
// backtracking executor, kept as the pre-streaming oracle the way
// summary/reference_partition freezes the pre-substrate algorithms. An
// executor-wide regression that corrupts every cursor drain identically
// still diverges from this independent implementation.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gen/bsbm.h"
#include "gen/hetero.h"
#include "gen/lubm.h"
#include "gen/paper_example.h"
#include "query/evaluator.h"
#include "query/executor.h"
#include "query/pruned_evaluator.h"
#include "query/rbgp.h"
#include "query/sparql_parser.h"
#include "reasoner/saturation.h"
#include "store/triple_table.h"
#include "summary/cardinality.h"
#include "summary/summarizer.h"
#include "util/random.h"
#include "util/row_set.h"

namespace rdfsum::query {
namespace {

BgpQuery MustParse(const std::string& text) {
  auto q = ParseSparql(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

// ------------------------------------------- frozen pre-streaming oracle

constexpr TermId kUnbound = kInvalidTermId;

/// Verbatim copy of the PR 3 executor: follows plan.steps by backtracking
/// over TripleTable::Scan visitor ranges. Do not "modernize" — its whole
/// value is being the independent materializing implementation the cursor
/// tree is compared against byte-for-byte.
class LegacyPlanRunner {
 public:
  LegacyPlanRunner(const store::TripleTable& table, const QueryPlan& plan)
      : table_(table), plan_(plan) {
    bindings_.assign(plan_.compiled.var_names.size(), kUnbound);
  }

  /// Invokes `fn(bindings)` for each embedding; fn returns false to stop.
  template <typename Fn>
  void Enumerate(Fn&& fn) {
    if (plan_.compiled.impossible) return;
    stop_ = false;
    Recurse(0, fn);
  }

 private:
  store::TriplePattern Instantiate(const CompiledPattern& p) const {
    store::TriplePattern q;
    auto fill = [&](const CompiledSlot& s) -> std::optional<TermId> {
      if (!s.is_var) return s.constant;
      TermId b = bindings_[s.var];
      if (b != kUnbound) return b;
      return std::nullopt;
    };
    q.s = fill(p.s);
    q.p = fill(p.p);
    q.o = fill(p.o);
    return q;
  }

  template <typename Fn>
  void Recurse(size_t depth, Fn&& fn) {
    if (stop_) return;
    if (depth == plan_.steps.size()) {
      if (!fn(bindings_)) stop_ = true;
      return;
    }
    const CompiledPattern& pat =
        plan_.compiled.patterns[plan_.steps[depth].pattern];
    table_.Scan(Instantiate(pat), [&](const Triple& m) {
      uint32_t newly[3];
      int num_newly = 0;
      bool ok = true;
      auto bind = [&](const CompiledSlot& s, TermId value) {
        if (!s.is_var) return;
        TermId cur = bindings_[s.var];
        if (cur == kUnbound) {
          bindings_[s.var] = value;
          newly[num_newly++] = s.var;
        } else if (cur != value) {
          ok = false;
        }
      };
      bind(pat.s, m.s);
      if (ok) bind(pat.p, m.p);
      if (ok) bind(pat.o, m.o);
      if (ok) Recurse(depth + 1, fn);
      for (int i = 0; i < num_newly; ++i) bindings_[newly[i]] = kUnbound;
      return !stop_;
    });
  }

  const store::TripleTable& table_;
  const QueryPlan& plan_;
  std::vector<TermId> bindings_;
  bool stop_ = false;
};

struct LegacyResult {
  std::vector<Row> rows;         // discovery order, deduplicated
  uint64_t num_embeddings = 0;
};

/// The PR 3 Evaluate semantics: enumerate embeddings in plan order, dedup
/// projections with a RowSet, decode at the end.
LegacyResult LegacyEvaluate(const Graph& g, const BgpEvaluator& eval,
                            const BgpQuery& q, PlannerMode mode) {
  QueryPlan plan = eval.Plan(q, mode);
  auto head = ResolveDistinguished(q, plan.compiled);
  EXPECT_TRUE(head.ok()) << q.ToString();
  LegacyResult out;
  util::RowSet dedup(head->size());
  std::vector<TermId> scratch(head->size());
  LegacyPlanRunner runner(eval.table(), plan);
  runner.Enumerate([&](const std::vector<TermId>& bindings) {
    ++out.num_embeddings;
    for (size_t i = 0; i < head->size(); ++i) {
      scratch[i] = bindings[(*head)[i]];
    }
    dedup.Insert(scratch.data());
    return true;
  });
  for (size_t r = 0; r < dedup.size(); ++r) {
    Row row;
    row.reserve(head->size());
    const TermId* encoded = dedup.row(r);
    for (size_t i = 0; i < head->size(); ++i) {
      row.push_back(g.dict().Decode(encoded[i]));
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

std::string Render(const Row& row) {
  std::string line;
  for (const Term& t : row) {
    line += t.ToNTriples();
    line += '\t';
  }
  return line;
}

/// Order-preserving rendering: byte-identity includes row order.
std::vector<std::string> Exact(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(Render(row));
  return out;
}

std::vector<Row> DrainCursor(const BgpEvaluator& eval, const BgpQuery& q,
                             PlannerMode mode, CursorOptions options = {}) {
  auto cursor = eval.Open(q, mode, options);
  EXPECT_TRUE(cursor.ok()) << q.ToString();
  std::vector<Row> rows;
  IdRow row;
  while ((*cursor)->Next(&row)) rows.push_back(eval.Decode(row));
  return rows;
}

struct Workload {
  std::string name;
  Graph graph;
  std::vector<BgpQuery> fixed_queries;
};

Workload BsbmWorkload() {
  gen::BsbmOptions opt;
  opt.num_products = 60;
  Workload w{"bsbm", gen::GenerateBsbm(opt), {}};
  const std::string prefix = "PREFIX b: <http://bsbm.example.org/>\n";
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?p ?l WHERE { ?p b:label ?l . ?p b:productFeature ?f . "
      "?p b:producer ?pr . ?pr b:country ?c }"));
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?o ?c WHERE { ?pr b:country ?c . ?p b:producer ?pr . "
      "?o b:offerProduct ?p }"));
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?r WHERE { ?r b:reviewFor ?p . ?r b:reviewer ?x . "
      "?x b:country ?c . ?p b:productFeature ?f }"));
  return w;
}

Workload LubmWorkload() {
  gen::LubmOptions opt;
  opt.num_universities = 1;
  Workload w{"lubm", gen::GenerateLubm(opt), {}};
  const std::string prefix = "PREFIX l: <http://lubm.example.org/>\n";
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?s ?d WHERE { ?s l:advisor ?a . ?a l:worksFor ?d . "
      "?d l:subOrganizationOf ?u }"));
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?x WHERE { ?x l:name ?n . ?x l:emailAddress ?e . "
      "?x l:worksFor ?dep }"));
  w.fixed_queries.push_back(MustParse(
      prefix + "ASK WHERE { ?x l:headOf ?d . ?x l:takesCourse ?c }"));
  return w;
}

Workload PaperWorkload() {
  gen::BookExample book = gen::BuildBookExample();
  Workload w{"paper", book.graph.Clone(), {}};
  const std::string prefix = "PREFIX b: <http://example.org/book/>\n";
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?x3 WHERE { ?x1 b:hasAuthor ?x2 . ?x2 b:hasName ?x3 . "
      "?x1 b:hasTitle \"Le Port des Brumes\" }"));
  w.fixed_queries.push_back(
      MustParse(prefix + "SELECT ?x WHERE { ?x a b:Publication }"));
  return w;
}

Workload HeteroWorkload() {
  gen::HeteroOptions opt;
  opt.num_nodes = 150;
  opt.seed = 17;
  return Workload{"hetero", gen::GenerateHetero(opt), {}};
}

class StreamingDifferentialTest : public ::testing::TestWithParam<bool> {};

void RunDifferential(const Workload& w, bool saturate) {
  Graph target = saturate ? reasoner::Saturate(w.graph) : w.graph.Clone();
  summary::SummaryResult s =
      summary::Summarize(target, summary::SummaryKind::kWeak);
  summary::CardinalityEstimator estimator(target, s);
  EvaluatorOptions options;
  options.estimator = &estimator;
  BgpEvaluator eval(target, options);

  std::vector<BgpQuery> queries = w.fixed_queries;
  Random rng(42);
  for (int i = 0; i < 10; ++i) {
    BgpQuery q = GenerateRbgpQuery(target, rng);
    if (!q.triples.empty()) queries.push_back(std::move(q));
  }

  for (const BgpQuery& q : queries) {
    for (PlannerMode mode : kAllPlannerModes) {
      // 1. Byte-identity: the cursor drains the very rows the frozen PR 3
      // backtracking executor materializes, in the same order — and
      // today's Evaluate wrapper agrees too.
      LegacyResult legacy = LegacyEvaluate(target, eval, q, mode);
      std::vector<std::string> full = Exact(legacy.rows);
      EXPECT_EQ(Exact(DrainCursor(eval, q, mode)), full)
          << w.name << " mode=" << PlannerModeName(mode)
          << " saturate=" << saturate << "\n"
          << q.ToString();
      auto materialized = eval.Evaluate(q, SIZE_MAX, mode);
      ASSERT_TRUE(materialized.ok()) << q.ToString();
      EXPECT_EQ(Exact(*materialized), full) << q.ToString();
      // Embedding counts must survive the executor swap as well.
      EXPECT_EQ(eval.Explain(q, mode)->num_embeddings, legacy.num_embeddings)
          << q.ToString();

      // 2. Limit/offset pushdown: every slice equals the same window of
      // the full stream.
      for (size_t offset : {size_t{0}, size_t{1}, size_t{5}}) {
        for (size_t limit : {size_t{0}, size_t{1}, size_t{3}}) {
          CursorOptions slice;
          slice.limit = limit;
          slice.offset = offset;
          std::vector<std::string> got =
              Exact(DrainCursor(eval, q, mode, slice));
          std::vector<std::string> expected;
          for (size_t i = offset;
               i < full.size() && expected.size() < limit; ++i) {
            expected.push_back(full[i]);
          }
          EXPECT_EQ(got, expected)
              << w.name << " mode=" << PlannerModeName(mode)
              << " limit=" << limit << " offset=" << offset << "\n"
              << q.ToString();
        }
      }

      // 3. Forced hash joins return the same result set (order may differ
      // from the nested-loop stream on multi-variable keys).
      CursorOptions hashed;
      hashed.hash_join = HashJoinMode::kAlways;
      std::vector<std::string> hash_rows =
          Exact(DrainCursor(eval, q, mode, hashed));
      std::multiset<std::string> hash_set(hash_rows.begin(),
                                          hash_rows.end());
      EXPECT_EQ(hash_set,
                std::multiset<std::string>(full.begin(), full.end()))
          << w.name << " mode=" << PlannerModeName(mode) << " (hash)\n"
          << q.ToString();
    }
  }
}

TEST_P(StreamingDifferentialTest, Bsbm) {
  RunDifferential(BsbmWorkload(), GetParam());
}
TEST_P(StreamingDifferentialTest, Lubm) {
  RunDifferential(LubmWorkload(), GetParam());
}
TEST_P(StreamingDifferentialTest, Paper) {
  RunDifferential(PaperWorkload(), GetParam());
}
TEST_P(StreamingDifferentialTest, Hetero) {
  RunDifferential(HeteroWorkload(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(RawAndSaturated, StreamingDifferentialTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "saturated" : "raw";
                         });

// The pruned evaluator's streaming surface must agree with its
// materializing surface on admitted and pruned queries alike.
TEST(PrunedStreamingTest, OpenAgreesWithEvaluate) {
  gen::LubmOptions opt;
  opt.num_universities = 1;
  Graph g = gen::GenerateLubm(opt);
  SummaryPrunedEvaluator pruned(g);
  Random rng(5);
  for (int i = 0; i < 10; ++i) {
    BgpQuery q = GenerateRbgpQuery(reasoner::Saturate(g), rng);
    if (q.triples.empty()) continue;
    auto expected = pruned.Evaluate(q);
    ASSERT_TRUE(expected.ok());
    auto cursor = pruned.Open(q);
    ASSERT_TRUE(cursor.ok());
    std::vector<Row> streamed;
    IdRow row;
    while ((*cursor)->Next(&row)) streamed.push_back(pruned.Decode(row));
    EXPECT_EQ(Exact(streamed), Exact(*expected)) << q.ToString();
  }
}

}  // namespace
}  // namespace rdfsum::query
