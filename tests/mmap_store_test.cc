// Frozen-image round trip: freeze a graph, mmap it back, and prove the
// store serves *identical* results through every path — zero-copy queries
// off the mapped permutations, ToGraph() materialization, and summaries of
// every kind, all byte-for-byte equal to the parse-path originals. The
// adversarial half of the wall (truncation, bit flips, wrong formats) lives
// in tests/image_corruption_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "gen/bsbm.h"
#include "gen/paper_example.h"
#include "io/ntriples_writer.h"
#include "query/evaluator.h"
#include "query/rbgp.h"
#include "query/sparql_parser.h"
#include "reasoner/saturation.h"
#include "rdf/frozen_image.h"
#include "store/mmap_store.h"
#include "summary/cardinality.h"
#include "summary/isomorphism.h"
#include "summary/summarizer.h"

namespace rdfsum {
namespace {

using store::FreezeOptions;
using store::MmapStore;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Graph BsbmGraph(uint32_t products) {
  gen::BsbmOptions opt;
  opt.num_products = products;
  return gen::GenerateBsbm(opt);
}

std::unique_ptr<MmapStore> FreezeAndOpen(const Graph& g,
                                         const std::string& name) {
  const std::string path = TempPath(name);
  Status st = store::FreezeGraphToFile(g, path);
  EXPECT_TRUE(st.ok()) << st.ToString();
  auto opened = MmapStore::Open(path);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(MmapStoreTest, RoundTripCountsAndStats) {
  Graph g = BsbmGraph(40);
  auto store = FreezeAndOpen(g, "roundtrip.rsb");
  EXPECT_EQ(store->table().size(), g.NumTriples());
  EXPECT_TRUE(store->has_dense());

  // The restored statistics equal the parse path's.
  store::TripleTable reference;
  g.ForEachTriple([&](const Triple& t) { reference.Append(t); });
  reference.Freeze();
  EXPECT_EQ(store->table().stats().num_triples(),
            reference.stats().num_triples());
  EXPECT_EQ(store->table().stats().num_distinct_subjects(),
            reference.stats().num_distinct_subjects());
  EXPECT_EQ(store->table().stats().num_distinct_predicates(),
            reference.stats().num_distinct_predicates());
  EXPECT_EQ(store->table().stats().num_distinct_objects(),
            reference.stats().num_distinct_objects());
  EXPECT_EQ(store->table().stats().by_predicate().size(),
            reference.stats().by_predicate().size());
}

TEST(MmapStoreTest, PermutationsAreIdenticalToRebuilt) {
  Graph g = BsbmGraph(25);
  auto store = FreezeAndOpen(g, "perms.rsb");
  store::TripleTable reference;
  g.ForEachTriple([&](const Triple& t) { reference.Append(t); });
  reference.Freeze();
  for (auto kind : {store::IndexKind::kSpo, store::IndexKind::kPos,
                    store::IndexKind::kOsp}) {
    auto mapped = store->table().Permutation(kind);
    auto rebuilt = reference.Permutation(kind);
    ASSERT_EQ(mapped.size(), rebuilt.size());
    EXPECT_TRUE(std::equal(mapped.begin(), mapped.end(), rebuilt.begin()));
  }
}

TEST(MmapStoreTest, FreezeIsDeterministic) {
  Graph g = BsbmGraph(15);
  const std::string a = TempPath("det_a.rsb");
  const std::string b = TempPath("det_b.rsb");
  ASSERT_TRUE(store::FreezeGraphToFile(g, a).ok());
  ASSERT_TRUE(store::FreezeGraphToFile(g, b).ok());
  EXPECT_EQ(FileBytes(a), FileBytes(b));
  // And freezing the materialized graph reproduces the same image: the
  // round trip loses nothing the format records.
  auto store = MmapStore::Open(a);
  ASSERT_TRUE(store.ok());
  auto again = (*store)->ToGraph();
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  const std::string c = TempPath("det_c.rsb");
  ASSERT_TRUE(store::FreezeGraphToFile(*again, c).ok());
  EXPECT_EQ(FileBytes(a), FileBytes(c));
}

TEST(MmapStoreTest, ZeroCopyQueriesMatchParsePathAllPlanners) {
  Graph g = BsbmGraph(60);
  auto store = FreezeAndOpen(g, "queries.rsb");

  query::BgpEvaluator parse_eval(g);
  query::BgpEvaluator store_eval(store->dict(), store->table());

  Random rng(7);
  int compared = 0;
  for (int i = 0; i < 25; ++i) {
    query::BgpQuery q = query::GenerateRbgpQuery(g, rng);
    if (q.triples.empty()) continue;
    for (auto mode :
         {query::PlannerMode::kNaive, query::PlannerMode::kGreedy}) {
      auto a = parse_eval.Evaluate(q, SIZE_MAX, mode);
      auto b = store_eval.Evaluate(q, SIZE_MAX, mode);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      ASSERT_EQ(a->size(), b->size()) << q.ToString();
      for (size_t r = 0; r < a->size(); ++r) {
        ASSERT_EQ((*a)[r].size(), (*b)[r].size());
        for (size_t c = 0; c < (*a)[r].size(); ++c) {
          // Byte identity, not just term equality: the shared canonical ids
          // mean Decode must render the very same lexical forms.
          ASSERT_EQ((*a)[r][c].ToNTriples(), (*b)[r][c].ToNTriples());
        }
      }
      ++compared;
    }
  }
  ASSERT_GT(compared, 0);
}

TEST(MmapStoreTest, SummaryPlannerMatchesOverMaterializedGraph) {
  // kSummary needs an estimator over a graph, so it runs on the ToGraph()
  // path; rows must still match the parse path exactly.
  Graph g = BsbmGraph(40);
  auto store = FreezeAndOpen(g, "splan.rsb");
  auto from_image = store->ToGraph();
  ASSERT_TRUE(from_image.ok());

  summary::SummaryResult model_a =
      summary::Summarize(g, summary::SummaryKind::kWeak);
  summary::SummaryResult model_b =
      summary::Summarize(*from_image, summary::SummaryKind::kWeak);
  summary::CardinalityEstimator est_a(g, model_a);
  summary::CardinalityEstimator est_b(*from_image, model_b);
  query::EvaluatorOptions opt_a;
  opt_a.planner = query::PlannerMode::kSummary;
  opt_a.estimator = &est_a;
  query::EvaluatorOptions opt_b = opt_a;
  opt_b.estimator = &est_b;
  query::BgpEvaluator eval_a(g, opt_a);
  query::BgpEvaluator eval_b(*from_image, opt_b);

  Random rng(11);
  for (int i = 0; i < 10; ++i) {
    query::BgpQuery q = query::GenerateRbgpQuery(g, rng);
    if (q.triples.empty()) continue;
    auto a = eval_a.Evaluate(q);
    auto b = eval_b.Evaluate(q);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size()) << q.ToString();
  }
}

TEST(MmapStoreTest, ToGraphIsByteIdenticalForSummaries) {
  gen::Figure2Example ex = gen::BuildFigure2();
  auto store = FreezeAndOpen(ex.graph, "fig2.rsb");
  auto g2 = store->ToGraph();
  ASSERT_TRUE(g2.ok()) << g2.status().ToString();
  ASSERT_EQ(g2->NumTriples(), ex.graph.NumTriples());

  for (summary::SummaryKind kind : summary::kAllQuotientKinds) {
    summary::SummaryResult a = summary::Summarize(ex.graph, kind);
    summary::SummaryResult b = summary::Summarize(*g2, kind);
    // Stronger than isomorphism: identical triple sets under a shared
    // dictionary (ToGraph shares the store's dictionary, whose ids extend
    // the frozen ones).
    EXPECT_EQ(a.graph.NumTriples(), b.graph.NumTriples())
        << summary::SummaryKindName(kind);
    EXPECT_TRUE(summary::AreSummariesIsomorphic(a.graph, b.graph))
        << summary::SummaryKindName(kind);
  }
}

TEST(MmapStoreTest, SaturationAfterToGraphMatches) {
  Graph g = BsbmGraph(20);
  auto store = FreezeAndOpen(g, "sat.rsb");
  auto g2 = store->ToGraph();
  ASSERT_TRUE(g2.ok());
  Graph sat_a = reasoner::Saturate(g);
  Graph sat_b = reasoner::Saturate(*g2);
  EXPECT_EQ(sat_a.NumTriples(), sat_b.NumTriples());
}

TEST(MmapStoreTest, MintCounterSurvives) {
  gen::Figure2Example ex = gen::BuildFigure2();
  // Summarization mints summary-node URIs through the dictionary counter; a
  // restored store must continue the sequence, not restart and collide.
  TermId m1 = ex.graph.dict().MintNodeUri("test");
  ASSERT_NE(m1, kInvalidTermId);
  ASSERT_GT(ex.graph.dict().mint_counter(), 0u);
  auto store = FreezeAndOpen(ex.graph, "mint.rsb");
  EXPECT_EQ(store->dict().mint_counter(), ex.graph.dict().mint_counter());
  // Both sides mint the same next name — the sequence continued.
  Dictionary* mut = const_cast<Dictionary*>(&store->dict());
  TermId next_restored = mut->MintNodeUri("test");
  TermId next_original = ex.graph.dict().MintNodeUri("test");
  EXPECT_EQ(mut->Decode(next_restored).ToNTriples(),
            ex.graph.dict().Decode(next_original).ToNTriples());
}

TEST(MmapStoreTest, EmptyGraphRoundTrips) {
  Graph g;
  auto store = FreezeAndOpen(g, "empty.rsb");
  EXPECT_EQ(store->table().size(), 0u);
  EXPECT_TRUE(store->table().empty());
  auto g2 = store->ToGraph();
  ASSERT_TRUE(g2.ok()) << g2.status().ToString();
  EXPECT_EQ(g2->NumTriples(), 0u);
  // An empty store still evaluates (to zero rows) without tripping.
  query::BgpEvaluator eval(store->dict(), store->table());
  auto q = query::ParseSparql("SELECT ?s WHERE { ?s ?p ?o }");
  ASSERT_TRUE(q.ok());
  auto rows = eval.Evaluate(*q);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(MmapStoreTest, TypesOnlyGraphRoundTrips) {
  // A graph with no data edges: the dense substrate is all nodes/classes,
  // kEdges is empty, and summarization still matches.
  Graph g;
  TermId a = g.dict().Encode(Term::Iri("http://ex.org/a"));
  TermId b = g.dict().Encode(Term::Iri("http://ex.org/b"));
  TermId type = g.dict().Encode(
      Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"));
  TermId c1 = g.dict().Encode(Term::Iri("http://ex.org/C1"));
  TermId c2 = g.dict().Encode(Term::Iri("http://ex.org/C2"));
  g.Add({a, type, c1});
  g.Add({b, type, c2});
  g.Add({b, type, c1});

  auto store = FreezeAndOpen(g, "typesonly.rsb");
  EXPECT_EQ(store->table().size(), 3u);
  auto g2 = store->ToGraph();
  ASSERT_TRUE(g2.ok()) << g2.status().ToString();
  EXPECT_EQ(g2->NumTriples(), 3u);
  summary::SummaryResult sa =
      summary::Summarize(g, summary::SummaryKind::kTypeBased);
  summary::SummaryResult sb =
      summary::Summarize(*g2, summary::SummaryKind::kTypeBased);
  EXPECT_TRUE(summary::AreSummariesIsomorphic(sa.graph, sb.graph));
}

TEST(MmapStoreTest, NoDenseImageServesQueriesButNotToGraph) {
  Graph g = BsbmGraph(10);
  const std::string path = TempPath("nodense.rsb");
  FreezeOptions opt;
  opt.include_dense = false;
  ASSERT_TRUE(store::FreezeGraphToFile(g, path, opt).ok());
  auto store = MmapStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_FALSE((*store)->has_dense());
  EXPECT_EQ((*store)->table().size(), g.NumTriples());

  query::BgpEvaluator eval((*store)->dict(), (*store)->table());
  query::BgpEvaluator reference(g);
  Random rng(3);
  for (int i = 0; i < 5; ++i) {
    query::BgpQuery q = query::GenerateRbgpQuery(g, rng);
    if (q.triples.empty()) continue;
    EXPECT_EQ(eval.CountEmbeddings(q), reference.CountEmbeddings(q));
  }

  auto g2 = (*store)->ToGraph();
  EXPECT_FALSE(g2.ok());
  EXPECT_TRUE(g2.status().IsNotSupported()) << g2.status().ToString();
}

TEST(MmapStoreTest, NoDenseImageIsSmaller) {
  Graph g = BsbmGraph(30);
  const std::string full = TempPath("size_full.rsb");
  const std::string lean = TempPath("size_lean.rsb");
  FreezeOptions no_dense;
  no_dense.include_dense = false;
  ASSERT_TRUE(store::FreezeGraphToFile(g, full).ok());
  ASSERT_TRUE(store::FreezeGraphToFile(g, lean, no_dense).ok());
  EXPECT_LT(FileBytes(lean).size(), FileBytes(full).size());
}

TEST(MmapStoreTest, DictionaryViewDecodesEveryTermIdentically) {
  Graph g = BsbmGraph(20);
  auto store = FreezeAndOpen(g, "dict.rsb");
  const Dictionary& original = g.dict();
  const Dictionary& restored = store->dict();
  ASSERT_EQ(restored.size(), original.size());
  // Valid ids are 1..size()-1 (id 0 is the reserved placeholder).
  for (TermId id = 1; id < original.size(); ++id) {
    const Term& a = original.Decode(id);
    const Term& b = restored.Decode(id);
    ASSERT_EQ(a.ToNTriples(), b.ToNTriples()) << "id " << id;
    // And the view's probe finds the same id back.
    ASSERT_EQ(restored.Lookup(a), id);
  }
  // Encoding a brand-new term extends past the frozen base, ids unchanged.
  Dictionary* mut = const_cast<Dictionary*>(&restored);
  TermId fresh = mut->Encode(Term::Iri("http://ex.org/not-in-the-image"));
  EXPECT_EQ(fresh, original.size());
  EXPECT_EQ(mut->Lookup(Term::Iri("http://ex.org/not-in-the-image")), fresh);
}

TEST(MmapStoreTest, UnfreezeMaterializesBorrowedTable) {
  Graph g = BsbmGraph(10);
  auto store = FreezeAndOpen(g, "unfreeze.rsb");
  store::TripleTable t = store->table();  // copies the borrowed views
  ASSERT_TRUE(t.frozen());
  size_t before = t.size();
  t.Unfreeze();
  t.Append({1, 2, 3});
  t.Freeze();
  EXPECT_GE(t.size(), before);  // dedup may or may not absorb the new row
  EXPECT_FALSE(t.borrowed());
}

TEST(MmapStoreTest, OpenWithoutChecksumVerification) {
  Graph g = BsbmGraph(10);
  const std::string path = TempPath("fast_open.rsb");
  ASSERT_TRUE(store::FreezeGraphToFile(g, path).ok());
  MmapStore::OpenOptions opt;
  opt.verify_checksums = false;
  auto store = MmapStore::Open(path, opt);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->table().size(), g.NumTriples());
}

TEST(MmapStoreTest, MissingFileIsCleanError) {
  auto store = MmapStore::Open(TempPath("does_not_exist.rsb"));
  ASSERT_FALSE(store.ok());
  EXPECT_TRUE(store.status().IsIOError() || store.status().IsNotFound())
      << store.status().ToString();
}

}  // namespace
}  // namespace rdfsum
