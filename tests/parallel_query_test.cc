// Differential wall for morsel-driven parallel query execution (PR 10):
// with ExecutorOptions::parallelism != 1 the gather-merged stream must be
// BYTE-identical — same rows, same order — to the sequential cursor tree
// for every planner mode x {BSBM, LUBM, paper, hetero} x thread count,
// including forced hash joins (shared partitioned builds) and forced
// nested loops, and limit/offset slices that tear the gather down
// mid-stream. Parallelism must never change answers — only wall-clock.
//
// The wall also pins the governance story: the fan-out gate keeps small
// scans sequential, budget trips (rows, deadline, cancellation, memory)
// surface mid-fan-out without deadlocking the shared pool, every
// outstanding memory charge is refunded by teardown, and randomized
// mid-flight cancellation (x30) always joins. Runs under TSan in CI.
//
// Both gather scheduling modes are pinned explicitly: the wall forces pool
// workers (kForceWorkers) so the exchange machinery runs even on a 1-core
// host, and a dedicated section pins the single-CPU inline streaming path
// (kForceInline) so it runs even on many-core hosts.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gen/bsbm.h"
#include "gen/hetero.h"
#include "gen/lubm.h"
#include "gen/paper_example.h"
#include "query/evaluator.h"
#include "query/executor.h"
#include "query/rbgp.h"
#include "query/sparql_parser.h"
#include "reasoner/saturation.h"
#include "util/exec_context.h"
#include "util/fault_injection.h"
#include "util/random.h"

namespace rdfsum::query {
namespace {

BgpQuery MustParse(const std::string& text) {
  auto q = ParseSparql(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

std::string Render(const Row& row) {
  std::string line;
  for (const Term& t : row) {
    line += t.ToNTriples();
    line += '\t';
  }
  return line;
}

/// Order-preserving rendering: byte-identity includes row order.
std::vector<std::string> Exact(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(Render(row));
  return out;
}

/// Drains Open()'s cursor; the cursor must end OK (asserted).
std::vector<Row> DrainCursor(const BgpEvaluator& eval, const BgpQuery& q,
                             PlannerMode mode, CursorOptions options = {}) {
  auto cursor = eval.Open(q, mode, options);
  EXPECT_TRUE(cursor.ok()) << q.ToString();
  std::vector<Row> rows;
  IdRow row;
  while ((*cursor)->Next(&row)) rows.push_back(eval.Decode(row));
  EXPECT_TRUE((*cursor)->status().ok())
      << (*cursor)->status().ToString() << "\n" << q.ToString();
  return rows;
}

/// Options that force fan-out on small test fixtures: gate at one row,
/// tiny morsels so every query sees a many-morsel schedule. Pins
/// kForceWorkers: on a single-CPU host kAuto streams morsels inline on the
/// consumer, which would silently skip the exchange machinery (workers,
/// run-ahead window, ordered merge) this wall exists to exercise. The
/// inline path has its own differential section below.
CursorOptions Parallel(uint32_t threads, CursorOptions base = {}) {
  base.parallelism = threads;
  base.min_parallel_rows = 1;
  base.morsel_rows = 16;
  base.worker_mode = ParallelWorkerMode::kForceWorkers;
  return base;
}

// 1 re-checks the sequential route, 2/4 split evenly, 7 leaves a ragged
// last morsel assignment, 8 oversubscribes the 1-core CI runner, 0 = all
// hardware threads.
constexpr uint32_t kThreadCounts[] = {1, 2, 4, 7, 8, 0};

struct Workload {
  std::string name;
  Graph graph;
  std::vector<BgpQuery> fixed_queries;
};

Workload BsbmWorkload() {
  gen::BsbmOptions opt;
  opt.num_products = 60;
  Workload w{"bsbm", gen::GenerateBsbm(opt), {}};
  const std::string prefix = "PREFIX b: <http://bsbm.example.org/>\n";
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?p ?l WHERE { ?p b:label ?l . ?p b:productFeature ?f . "
      "?p b:producer ?pr . ?pr b:country ?c }"));
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?o ?c WHERE { ?pr b:country ?c . ?p b:producer ?pr . "
      "?o b:offerProduct ?p }"));
  return w;
}

Workload LubmWorkload() {
  gen::LubmOptions opt;
  opt.num_universities = 1;
  Workload w{"lubm", gen::GenerateLubm(opt), {}};
  const std::string prefix = "PREFIX l: <http://lubm.example.org/>\n";
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?s ?d WHERE { ?s l:advisor ?a . ?a l:worksFor ?d . "
      "?d l:subOrganizationOf ?u }"));
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?x WHERE { ?x l:name ?n . ?x l:emailAddress ?e . "
      "?x l:worksFor ?dep }"));
  return w;
}

Workload PaperWorkload() {
  gen::BookExample book = gen::BuildBookExample();
  Workload w{"paper", book.graph.Clone(), {}};
  const std::string prefix = "PREFIX b: <http://example.org/book/>\n";
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?x3 WHERE { ?x1 b:hasAuthor ?x2 . ?x2 b:hasName ?x3 . "
      "?x1 b:hasTitle \"Le Port des Brumes\" }"));
  return w;
}

Workload HeteroWorkload() {
  gen::HeteroOptions opt;
  opt.num_nodes = 150;
  opt.seed = 17;
  return Workload{"hetero", gen::GenerateHetero(opt), {}};
}

class ParallelQueryTest : public ::testing::TestWithParam<bool> {};

void RunDifferential(const Workload& w, bool saturate) {
  Graph target = saturate ? reasoner::Saturate(w.graph) : w.graph.Clone();
  BgpEvaluator eval(target);

  std::vector<BgpQuery> queries = w.fixed_queries;
  Random rng(42);
  for (int i = 0; i < 8; ++i) {
    BgpQuery q = GenerateRbgpQuery(target, rng);
    if (!q.triples.empty()) queries.push_back(std::move(q));
  }

  for (const BgpQuery& q : queries) {
    for (PlannerMode mode : kAllPlannerModes) {
      for (HashJoinMode hj :
           {HashJoinMode::kFromPlan, HashJoinMode::kNever,
            HashJoinMode::kAlways}) {
        CursorOptions seq;
        seq.hash_join = hj;
        std::vector<std::string> full =
            Exact(DrainCursor(eval, q, mode, seq));
        for (uint32_t threads : kThreadCounts) {
          // 1. Byte-identity at every thread count, every join algorithm:
          // nested loops probe the indexes per morsel; forced hash joins
          // probe one shared partitioned build.
          CursorOptions par = Parallel(threads, seq);
          EXPECT_EQ(Exact(DrainCursor(eval, q, mode, par)), full)
              << w.name << " mode=" << PlannerModeName(mode)
              << " hj=" << static_cast<int>(hj) << " threads=" << threads
              << " saturate=" << saturate << "\n"
              << q.ToString();
        }
        // 2. Limit slices equal the same window of the full stream, and
        // tear the gather down with morsels still in flight (early-exit
        // teardown is the hard path: workers must observe stop and fall
        // through the join).
        for (size_t limit : {size_t{0}, size_t{1}, size_t{3}}) {
          CursorOptions slice = Parallel(4, seq);
          slice.limit = limit;
          slice.offset = 1;
          std::vector<std::string> got =
              Exact(DrainCursor(eval, q, mode, slice));
          std::vector<std::string> expected;
          for (size_t i = 1; i < full.size() && expected.size() < limit;
               ++i) {
            expected.push_back(full[i]);
          }
          EXPECT_EQ(got, expected)
              << w.name << " mode=" << PlannerModeName(mode)
              << " limit=" << limit << "\n"
              << q.ToString();
        }
      }
    }
  }
}

TEST_P(ParallelQueryTest, Bsbm) { RunDifferential(BsbmWorkload(), GetParam()); }
TEST_P(ParallelQueryTest, Lubm) { RunDifferential(LubmWorkload(), GetParam()); }
TEST_P(ParallelQueryTest, Paper) {
  RunDifferential(PaperWorkload(), GetParam());
}
TEST_P(ParallelQueryTest, Hetero) {
  RunDifferential(HeteroWorkload(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(RawAndSaturated, ParallelQueryTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "saturated" : "raw";
                         });

// ----------------------------------------------------------- fan-out gate

bool TreeHasGather(const BgpEvaluator& eval, const BgpQuery& q,
                   CursorOptions options) {
  auto cursor = eval.Open(q, PlannerMode::kGreedy, std::move(options));
  EXPECT_TRUE(cursor.ok());
  std::vector<OperatorStats> ops;
  (*cursor)->CollectOperators(&ops);
  for (const OperatorStats& op : ops) {
    if (op.op.find("ParallelGather") != std::string::npos) return true;
  }
  return false;
}

TEST(ParallelGateTest, SmallScansStaySequentialAtDefaultGate) {
  Workload w = BsbmWorkload();  // a few thousand triples, far under the gate
  BgpEvaluator eval(w.graph);
  CursorOptions options;
  options.parallelism = 8;  // requested, but the gate must refuse
  EXPECT_FALSE(TreeHasGather(eval, w.fixed_queries[0], options));
}

TEST(ParallelGateTest, LoweredGateEngagesAndSequentialRequestNever) {
  Workload w = BsbmWorkload();
  BgpEvaluator eval(w.graph);
  EXPECT_TRUE(TreeHasGather(eval, w.fixed_queries[0], Parallel(4)));
  // parallelism == 1 is the hard sequential switch, gate irrelevant.
  EXPECT_FALSE(TreeHasGather(eval, w.fixed_queries[0], Parallel(1)));
  // Inline streaming mode still compiles the gather (it is the gather that
  // streams the morsels) — the parallel plan shape, not a fallback.
  CursorOptions inl = Parallel(4);
  inl.worker_mode = ParallelWorkerMode::kForceInline;
  EXPECT_TRUE(TreeHasGather(eval, w.fixed_queries[0], inl));
}

// ------------------------------------------------- governance mid-fan-out

struct GovernedFixture {
  Workload w = LubmWorkload();
  BgpEvaluator eval{w.graph};
  BgpQuery q = MustParse(
      "PREFIX l: <http://lubm.example.org/>\n"
      "SELECT ?x ?c WHERE { ?x l:takesCourse ?c . ?x l:advisor ?a }");
  // Enough result rows (> ExecContext::kCheckInterval) that the governed
  // root is guaranteed to poll mid-drain — cancellation/deadline checks
  // are amortized, so tiny results can finish before the first poll.
  BgpQuery big = MustParse(
      "PREFIX l: <http://lubm.example.org/>\n"
      "SELECT ?x ?c WHERE { ?x l:takesCourse ?c }");
};

TEST(ParallelGovernanceTest, RowBudgetTripsMidFanOut) {
  GovernedFixture f;
  util::ExecContext::Limits limits;
  limits.max_rows = 3;
  util::ExecContext ctx(limits);
  CursorOptions options = Parallel(4);
  options.exec = &ctx;
  {
    auto cursor = f.eval.Open(f.q, PlannerMode::kGreedy, options);
    ASSERT_TRUE(cursor.ok());
    IdRow row;
    size_t rows = 0;
    while ((*cursor)->Next(&row)) ++rows;
    EXPECT_TRUE((*cursor)->status().IsResourceExhausted())
        << (*cursor)->status().ToString();
    EXPECT_LE(rows, 3u);
  }
  // All-or-nothing refunds: teardown with morsels in flight leaves no
  // outstanding memory charge.
  EXPECT_EQ(ctx.memory_used(), 0u);
}

TEST(ParallelGovernanceTest, PreCancelledFailsWithoutDeadlock) {
  GovernedFixture f;
  util::ExecContext ctx;
  ctx.Cancel();
  CursorOptions options = Parallel(8);
  options.exec = &ctx;
  auto cursor = f.eval.Open(f.big, PlannerMode::kGreedy, options);
  ASSERT_TRUE(cursor.ok());
  IdRow row;
  while ((*cursor)->Next(&row)) {
  }
  EXPECT_TRUE((*cursor)->status().IsCancelled())
      << (*cursor)->status().ToString();
  EXPECT_EQ(ctx.memory_used(), 0u);
}

TEST(ParallelGovernanceTest, ExpiredDeadlineSurfaces) {
  GovernedFixture f;
  util::ExecContext::Limits limits;
  limits.timeout_ms = 1;
  util::ExecContext ctx(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  CursorOptions options = Parallel(4);
  options.exec = &ctx;
  auto cursor = f.eval.Open(f.big, PlannerMode::kGreedy, options);
  ASSERT_TRUE(cursor.ok());
  IdRow row;
  while ((*cursor)->Next(&row)) {
  }
  EXPECT_TRUE((*cursor)->status().IsDeadlineExceeded())
      << (*cursor)->status().ToString();
  EXPECT_EQ(ctx.memory_used(), 0u);
}

TEST(ParallelGovernanceTest, SharedBuildDegradesUnderMemoryBudget) {
  GovernedFixture f;
  // Sequential forced-hash result first (degrades the same way).
  CursorOptions seq;
  seq.hash_join = HashJoinMode::kAlways;
  std::vector<std::string> full =
      Exact(DrainCursor(f.eval, f.q, PlannerMode::kGreedy, seq));

  util::ExecContext::Limits limits;
  limits.memory_budget_bytes = 1;  // every build charge refused
  util::ExecContext ctx(limits);
  CursorOptions par = Parallel(4, seq);
  par.exec = &ctx;
  EXPECT_EQ(Exact(DrainCursor(f.eval, f.q, PlannerMode::kGreedy, par)), full);
  EXPECT_EQ(ctx.memory_used(), 0u);
}

TEST(ParallelGovernanceTest, AbandonedCursorJoinsCleanly) {
  // Destroy the gather after a single row with many morsels unconsumed:
  // workers must observe the teardown stop and fall through the join.
  GovernedFixture f;
  util::ExecContext ctx;
  CursorOptions options = Parallel(8);
  options.exec = &ctx;
  for (int i = 0; i < 5; ++i) {
    auto cursor = f.eval.Open(f.q, PlannerMode::kGreedy, options);
    ASSERT_TRUE(cursor.ok());
    IdRow row;
    (*cursor)->Next(&row);
  }
  EXPECT_EQ(ctx.memory_used(), 0u);
}

TEST(ParallelGovernanceTest, RandomizedMidFlightCancel) {
  GovernedFixture f;
  std::vector<std::string> full =
      Exact(DrainCursor(f.eval, f.q, PlannerMode::kGreedy, {}));
  Random rng(7);
  for (int round = 0; round < 30; ++round) {
    util::ExecContext ctx;
    CursorOptions options = Parallel(4);
    options.exec = &ctx;
    auto cursor = f.eval.Open(f.q, PlannerMode::kGreedy, options);
    ASSERT_TRUE(cursor.ok());
    const uint64_t delay_us = rng.Next() % 400;
    std::thread canceller([&ctx, delay_us] {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      ctx.Cancel();
    });
    std::vector<Row> rows;
    IdRow row;
    while ((*cursor)->Next(&row)) rows.push_back(f.eval.Decode(row));
    canceller.join();
    const Status& st = (*cursor)->status();
    if (st.ok()) {
      // Won the race: the full, untruncated sequential stream.
      EXPECT_EQ(Exact(rows), full) << "round " << round;
    } else {
      EXPECT_TRUE(st.IsCancelled()) << st.ToString() << " round " << round;
      EXPECT_LE(rows.size(), full.size());
    }
    cursor->reset();
    EXPECT_EQ(ctx.memory_used(), 0u) << "round " << round;
  }
}

// ------------------------------------------------------------- failpoints

TEST(ParallelFaultTest, MorselFailpointFailsTheQueryWithoutDeadlock) {
  if (!util::FaultInjection::compiled_in()) {
    GTEST_SKIP() << "failpoints not compiled in";
  }
  GovernedFixture f;
  util::FaultInjection::Arm("query:morsel",
                           Status::IOError("injected morsel fault"));
  auto cursor = f.eval.Open(f.q, PlannerMode::kGreedy, Parallel(4));
  ASSERT_TRUE(cursor.ok());
  IdRow row;
  while ((*cursor)->Next(&row)) {
  }
  EXPECT_TRUE((*cursor)->status().IsIOError())
      << (*cursor)->status().ToString();
  util::FaultInjection::Clear();
}

TEST(ParallelFaultTest, SharedBuildFailpointDegradesOrFails) {
  if (!util::FaultInjection::compiled_in()) {
    GTEST_SKIP() << "failpoints not compiled in";
  }
  GovernedFixture f;
  CursorOptions hashed = Parallel(4);
  hashed.hash_join = HashJoinMode::kAlways;
  std::vector<std::string> full = Exact(
      DrainCursor(f.eval, f.q, PlannerMode::kGreedy, hashed));

  // ResourceExhausted at the build site = degrade to nested loops, same
  // rows (the sequential HashJoinCursor contract).
  util::FaultInjection::Arm("query:hashjoin-build",
                           Status::ResourceExhausted("injected"));
  EXPECT_EQ(Exact(DrainCursor(f.eval, f.q, PlannerMode::kGreedy, hashed)),
            full);

  // Any other failure fails the query.
  util::FaultInjection::Arm("query:hashjoin-build",
                           Status::IOError("injected build fault"));
  auto cursor = f.eval.Open(f.q, PlannerMode::kGreedy, hashed);
  ASSERT_TRUE(cursor.ok());
  IdRow row;
  while ((*cursor)->Next(&row)) {
  }
  EXPECT_TRUE((*cursor)->status().IsIOError())
      << (*cursor)->status().ToString();
  util::FaultInjection::Clear();
}

// ---------------------------------------------- inline streaming mode
//
// kForceInline streams every morsel's pipeline directly on the consumer —
// the single-CPU fast path kAuto picks on a 1-core host. Pinning it here
// keeps the path covered on many-core machines too, and pinning both modes
// against each other pins the core invariant: scheduling never changes
// bytes.

TEST(ParallelWorkerModeTest, InlineStreamingIsByteIdenticalEveryMode) {
  Workload w = LubmWorkload();
  BgpEvaluator eval(w.graph);
  for (const BgpQuery& q : w.fixed_queries) {
    for (HashJoinMode hj : {HashJoinMode::kNever, HashJoinMode::kAlways}) {
      CursorOptions seq;
      seq.hash_join = hj;
      std::vector<std::string> full =
          Exact(DrainCursor(eval, q, PlannerMode::kGreedy, seq));
      for (uint32_t threads : {2u, 4u, 8u}) {
        CursorOptions inl = Parallel(threads, seq);
        inl.worker_mode = ParallelWorkerMode::kForceInline;
        EXPECT_EQ(Exact(DrainCursor(eval, q, PlannerMode::kGreedy, inl)),
                  full)
            << "hj=" << static_cast<int>(hj) << " threads=" << threads
            << "\n"
            << q.ToString();
        // And kAuto — whichever path this host resolves to — agrees.
        CursorOptions aut = Parallel(threads, seq);
        aut.worker_mode = ParallelWorkerMode::kAuto;
        EXPECT_EQ(Exact(DrainCursor(eval, q, PlannerMode::kGreedy, aut)),
                  full)
            << "auto hj=" << static_cast<int>(hj) << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelWorkerModeTest, InlineLimitSlicesStopEarly) {
  GovernedFixture f;
  std::vector<std::string> full =
      Exact(DrainCursor(f.eval, f.q, PlannerMode::kGreedy, {}));
  for (size_t limit : {size_t{0}, size_t{1}, size_t{3}}) {
    CursorOptions slice = Parallel(4);
    slice.worker_mode = ParallelWorkerMode::kForceInline;
    slice.limit = limit;
    slice.offset = 1;
    std::vector<std::string> expected;
    for (size_t i = 1; i < full.size() && expected.size() < limit; ++i) {
      expected.push_back(full[i]);
    }
    EXPECT_EQ(Exact(DrainCursor(f.eval, f.q, PlannerMode::kGreedy, slice)),
              expected)
        << "limit=" << limit;
  }
}

TEST(ParallelWorkerModeTest, InlineModeSurfacesMorselFailpoint) {
  if (!util::FaultInjection::compiled_in()) {
    GTEST_SKIP() << "failpoints not compiled in";
  }
  GovernedFixture f;
  util::FaultInjection::Arm("query:morsel",
                           Status::IOError("injected morsel fault"));
  CursorOptions inl = Parallel(4);
  inl.worker_mode = ParallelWorkerMode::kForceInline;
  auto cursor = f.eval.Open(f.q, PlannerMode::kGreedy, inl);
  ASSERT_TRUE(cursor.ok());
  IdRow row;
  while ((*cursor)->Next(&row)) {
  }
  EXPECT_TRUE((*cursor)->status().IsIOError())
      << (*cursor)->status().ToString();
  util::FaultInjection::Clear();
}

TEST(ParallelWorkerModeTest, InlineModeHonorsGovernance) {
  GovernedFixture f;
  util::ExecContext::Limits limits;
  limits.max_rows = 3;
  util::ExecContext ctx(limits);
  CursorOptions inl = Parallel(4);
  inl.worker_mode = ParallelWorkerMode::kForceInline;
  inl.exec = &ctx;
  auto cursor = f.eval.Open(f.q, PlannerMode::kGreedy, inl);
  ASSERT_TRUE(cursor.ok());
  IdRow row;
  size_t rows = 0;
  while ((*cursor)->Next(&row)) ++rows;
  EXPECT_TRUE((*cursor)->status().IsResourceExhausted())
      << (*cursor)->status().ToString();
  EXPECT_LE(rows, 3u);
  cursor->reset();
  EXPECT_EQ(ctx.memory_used(), 0u);
}

}  // namespace
}  // namespace rdfsum::query
