#include <gtest/gtest.h>

#include <sstream>

#include "gen/paper_example.h"
#include "summary/report.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  ReportTest() : ex_(gen::BuildFigure2()) {
    SummaryOptions options;
    options.record_members = true;
    weak_ = Summarize(ex_.graph, SummaryKind::kWeak, options);
  }
  gen::Figure2Example ex_;
  SummaryResult weak_;
};

TEST_F(ReportTest, PaperStyleLabelsMatchFigure4) {
  const Graph& h = weak_.graph;
  // The big subject node: sources {a,t,e,c}, targets {r,p}.
  EXPECT_EQ(PaperStyleLabel(h, weak_.node_map.at(ex_.r1)),
            "N^{published,reviewed}_{author,comment,editor,title}");
  // Nra: target author, source reviewed.
  EXPECT_EQ(PaperStyleLabel(h, weak_.node_map.at(ex_.a1)),
            "N^{author}_{reviewed}");
  // Nt: target title only.
  EXPECT_EQ(PaperStyleLabel(h, weak_.node_map.at(ex_.t1)), "N^{title}");
  // Nc: target comment only.
  EXPECT_EQ(PaperStyleLabel(h, weak_.node_map.at(ex_.c1)), "N^{comment}");
}

TEST_F(ReportTest, NTauLabelForTypedOnlyNode) {
  // r6 has no data properties: its node carries only a type edge.
  EXPECT_EQ(PaperStyleLabel(weak_.graph, weak_.node_map.at(ex_.r6)),
            "C({Journal})");
}

TEST_F(ReportTest, DescribeSummaryCountsMembers) {
  SummaryReport report = DescribeSummary(weak_);
  ASSERT_EQ(report.nodes.size(), 6u);
  // Sorted by member count: the {r1..r5} node first.
  EXPECT_EQ(report.nodes[0].member_count, 5u);
  EXPECT_EQ(report.nodes[0].source_properties.size(), 4u);
  EXPECT_EQ(report.nodes[0].target_properties.size(), 2u);
  EXPECT_EQ(report.nodes[0].types.size(), 3u);  // Book, Journal, Spec
  EXPECT_FALSE(report.nodes[0].sample_members.empty());
}

TEST_F(ReportTest, DescribeWorksWithoutRecordedMembers) {
  SummaryResult plain = Summarize(ex_.graph, SummaryKind::kWeak);
  SummaryReport report = DescribeSummary(plain);
  ASSERT_EQ(report.nodes.size(), 6u);
  EXPECT_EQ(report.nodes[0].member_count, 5u);  // derived from node_map
  EXPECT_TRUE(report.nodes[0].sample_members.empty());
}

TEST_F(ReportTest, ToStringListsEveryNode) {
  std::string text = DescribeSummary(weak_).ToString();
  EXPECT_NE(text.find("W summary: 6 data nodes"), std::string::npos);
  EXPECT_NE(text.find("N^{author}_{reviewed}"), std::string::npos);
  EXPECT_NE(text.find("represents 5 resource(s)"), std::string::npos);
}

TEST_F(ReportTest, DotUsesPaperLabels) {
  std::ostringstream os;
  WriteSummaryDot(weak_, os);
  std::string dot = os.str();
  EXPECT_NE(dot.find("digraph \"W_summary\""), std::string::npos);
  EXPECT_NE(dot.find("N^{author}_{reviewed}"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);  // class boxes
  EXPECT_NE(dot.find("label=\"author\""), std::string::npos);
}

TEST_F(ReportTest, StrongSummaryLabelsDistinguishRefinedNodes) {
  SummaryResult strong = Summarize(ex_.graph, SummaryKind::kStrong);
  // a1's and a2's nodes have different labels in S.
  std::string a1 = PaperStyleLabel(strong.graph, strong.node_map.at(ex_.a1));
  std::string a2 = PaperStyleLabel(strong.graph, strong.node_map.at(ex_.a2));
  EXPECT_EQ(a1, "N^{author}_{reviewed}");
  EXPECT_EQ(a2, "N^{author}");
  EXPECT_NE(a1, a2);
}

TEST_F(ReportTest, SchemaPreservingDotRendersDottedEdges) {
  gen::BookExample book = gen::BuildBookExample();
  SummaryResult w = Summarize(book.graph, SummaryKind::kWeak);
  std::ostringstream os;
  WriteSummaryDot(w, os);
  EXPECT_NE(os.str().find("style=dotted"), std::string::npos);
}

}  // namespace
}  // namespace rdfsum::summary
