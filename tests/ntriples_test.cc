#include <gtest/gtest.h>

#include <string>

#include "gen/hetero.h"
#include "io/dot_writer.h"
#include "io/ntriples_parser.h"
#include "io/ntriples_writer.h"
#include "rdf/graph.h"

namespace rdfsum {
namespace {

using io::NTriplesParser;
using io::NTriplesWriter;
using io::ParseOptions;
using io::ParseStats;

Graph ParseOk(const std::string& text) {
  Graph g;
  ParseStats stats;
  Status st = NTriplesParser::ParseString(text, &g, &stats);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return g;
}

TEST(NTriplesParserTest, BasicTriple) {
  Graph g = ParseOk("<http://s> <http://p> <http://o> .\n");
  EXPECT_EQ(g.NumTriples(), 1u);
  EXPECT_EQ(g.data().size(), 1u);
}

TEST(NTriplesParserTest, LiteralObject) {
  Graph g = ParseOk("<http://s> <http://p> \"hello world\" .");
  const Term& o = g.dict().Decode(g.data()[0].o);
  EXPECT_TRUE(o.is_literal());
  EXPECT_EQ(o.lexical, "hello world");
}

TEST(NTriplesParserTest, LangLiteral) {
  Graph g = ParseOk("<http://s> <http://p> \"bonjour\"@fr .");
  const Term& o = g.dict().Decode(g.data()[0].o);
  EXPECT_EQ(o.language, "fr");
}

TEST(NTriplesParserTest, TypedLiteral) {
  Graph g = ParseOk(
      "<http://s> <http://p> "
      "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .");
  const Term& o = g.dict().Decode(g.data()[0].o);
  EXPECT_EQ(o.datatype, "http://www.w3.org/2001/XMLSchema#integer");
}

TEST(NTriplesParserTest, BlankNodes) {
  Graph g = ParseOk("_:b1 <http://p> _:b2 .");
  EXPECT_TRUE(g.dict().Decode(g.data()[0].s).is_blank());
  EXPECT_TRUE(g.dict().Decode(g.data()[0].o).is_blank());
}

TEST(NTriplesParserTest, BlankNodeBeforeTerminatorWithoutSpace) {
  Graph g = ParseOk("<http://s> <http://p> _:b1.");
  EXPECT_TRUE(g.dict().Decode(g.data()[0].o).is_blank());
  EXPECT_EQ(g.dict().Decode(g.data()[0].o).lexical, "b1");
}

TEST(NTriplesParserTest, EscapesInLiterals) {
  Graph g = ParseOk(R"(<http://s> <http://p> "a\tb\nc\"d\\e" .)");
  EXPECT_EQ(g.dict().Decode(g.data()[0].o).lexical, "a\tb\nc\"d\\e");
}

TEST(NTriplesParserTest, UnicodeEscapes) {
  Graph g = ParseOk(R"(<http://s> <http://p> "café \U0001F600" .)");
  EXPECT_EQ(g.dict().Decode(g.data()[0].o).lexical,
            "caf\xC3\xA9 \xF0\x9F\x98\x80");
}

TEST(NTriplesParserTest, CommentsAndBlankLines) {
  Graph g = ParseOk(
      "# a comment\n"
      "\n"
      "   \t\n"
      "<http://s> <http://p> <http://o> .\n"
      "# trailing comment\n");
  EXPECT_EQ(g.NumTriples(), 1u);
}

TEST(NTriplesParserTest, CrLfLineEndings) {
  Graph g = ParseOk("<http://s> <http://p> <http://o> .\r\n");
  EXPECT_EQ(g.NumTriples(), 1u);
}

TEST(NTriplesParserTest, RdfTypeRoutesToTypeComponent) {
  Graph g = ParseOk(
      "<http://s> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
      "<http://C> .");
  EXPECT_EQ(g.types().size(), 1u);
  EXPECT_EQ(g.data().size(), 0u);
}

TEST(NTriplesParserTest, SchemaRoutesToSchemaComponent) {
  Graph g = ParseOk(
      "<http://C1> <http://www.w3.org/2000/01/rdf-schema#subClassOf> "
      "<http://C2> .");
  EXPECT_EQ(g.schema().size(), 1u);
}

TEST(NTriplesParserTest, StatsCountDuplicates) {
  Graph g;
  ParseStats stats;
  std::string text =
      "<http://s> <http://p> <http://o> .\n"
      "<http://s> <http://p> <http://o> .\n";
  ASSERT_TRUE(NTriplesParser::ParseString(text, &g, &stats).ok());
  EXPECT_EQ(stats.triples, 2u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(g.NumTriples(), 1u);
}

// ------------------------------------------------------------- error cases

void ExpectParseError(const std::string& text) {
  Graph g;
  Status st = NTriplesParser::ParseString(text, &g, nullptr);
  EXPECT_FALSE(st.ok()) << "accepted: " << text;
}

TEST(NTriplesParserTest, RejectsMissingDot) {
  ExpectParseError("<http://s> <http://p> <http://o>");
}

TEST(NTriplesParserTest, RejectsLiteralSubject) {
  ExpectParseError("\"lit\" <http://p> <http://o> .");
}

TEST(NTriplesParserTest, RejectsLiteralProperty) {
  ExpectParseError("<http://s> \"p\" <http://o> .");
}

TEST(NTriplesParserTest, RejectsBlankProperty) {
  ExpectParseError("<http://s> _:p <http://o> .");
}

TEST(NTriplesParserTest, RejectsUnterminatedIri) {
  ExpectParseError("<http://s <http://p> <http://o> .");
}

TEST(NTriplesParserTest, RejectsUnterminatedLiteral) {
  ExpectParseError("<http://s> <http://p> \"open .");
}

TEST(NTriplesParserTest, RejectsBadEscape) {
  ExpectParseError(R"(<http://s> <http://p> "bad\q" .)");
}

TEST(NTriplesParserTest, RejectsBadUnicodeEscape) {
  ExpectParseError(R"(<http://s> <http://p> "bad\uZZZZ" .)");
}

TEST(NTriplesParserTest, RejectsTrailingGarbage) {
  ExpectParseError("<http://s> <http://p> <http://o> . extra");
}

TEST(NTriplesParserTest, RejectsEmptyIri) {
  ExpectParseError("<> <http://p> <http://o> .");
}

TEST(NTriplesParserTest, ErrorMentionsLineNumber) {
  Graph g;
  Status st = NTriplesParser::ParseString(
      "<http://s> <http://p> <http://o> .\nbroken line\n", &g);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos);
}

TEST(NTriplesParserTest, LenientModeSkipsBadLines) {
  Graph g;
  ParseStats stats;
  ParseOptions options;
  options.strict = false;
  std::string text =
      "<http://s> <http://p> <http://o> .\n"
      "garbage\n"
      "<http://s> <http://p> <http://o2> .\n";
  ASSERT_TRUE(NTriplesParser::ParseString(text, &g, &stats, options).ok());
  EXPECT_EQ(g.NumTriples(), 2u);
  EXPECT_EQ(stats.skipped, 1u);
}

TEST(NTriplesParserTest, ParseTermStandalone) {
  auto t = NTriplesParser::ParseTerm("\"x\"@en");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->language, "en");
  EXPECT_FALSE(NTriplesParser::ParseTerm("<http://a> junk").ok());
}

TEST(NTriplesParserTest, MissingFileIsIOError) {
  Graph g;
  Status st = NTriplesParser::ParseFile("/nonexistent/file.nt", &g);
  EXPECT_TRUE(st.IsIOError());
}

// ------------------------------------------------------------- round trips

TEST(NTriplesRoundTripTest, WriterOutputReparsesIdentically) {
  gen::HeteroOptions opt;
  opt.num_nodes = 60;
  opt.seed = 99;
  Graph g = gen::GenerateHetero(opt);

  std::string text = NTriplesWriter::ToString(g);
  Graph g2;
  ASSERT_TRUE(NTriplesParser::ParseString(text, &g2).ok());
  EXPECT_EQ(g2.NumTriples(), g.NumTriples());
  // Same triples term-by-term.
  g.ForEachTriple([&](const Triple& t) {
    Triple mapped{g2.dict().Lookup(g.dict().Decode(t.s)),
                  g2.dict().Lookup(g.dict().Decode(t.p)),
                  g2.dict().Lookup(g.dict().Decode(t.o))};
    EXPECT_TRUE(g2.Contains(mapped));
  });
}

TEST(NTriplesRoundTripTest, EscapedLiteralsSurvive) {
  Graph g;
  g.AddTerms(Term::Iri("http://s"), Term::Iri("http://p"),
             Term::Literal("line1\nline2\t\"quoted\" back\\slash"));
  std::string text = NTriplesWriter::ToString(g);
  Graph g2;
  ASSERT_TRUE(NTriplesParser::ParseString(text, &g2).ok());
  EXPECT_EQ(g2.dict().Decode(g2.data()[0].o).lexical,
            "line1\nline2\t\"quoted\" back\\slash");
}

TEST(NTriplesRoundTripTest, FileRoundTrip) {
  Graph g;
  g.AddIris("http://s", "http://p", "http://o");
  std::string path = testing::TempDir() + "/roundtrip.nt";
  ASSERT_TRUE(NTriplesWriter::WriteFile(g, path).ok());
  Graph g2;
  ASSERT_TRUE(NTriplesParser::ParseFile(path, &g2).ok());
  EXPECT_EQ(g2.NumTriples(), 1u);
}

// ------------------------------------------------------------- dot writer

TEST(DotWriterTest, EmitsClassBoxesAndEdges) {
  Graph g;
  Dictionary& d = g.dict();
  TermId s = d.EncodeIri("http://x/s"), p = d.EncodeIri("http://x/knows"),
         o = d.EncodeIri("http://x/o"), c = d.EncodeIri("http://x/Person");
  g.Add({s, p, o});
  g.Add({s, g.vocab().rdf_type, c});
  std::string dot = io::DotWriter::ToString(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("label=\"knows\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(DotWriterTest, LocalNames) {
  EXPECT_EQ(io::IriLocalName("http://a/b#c"), "c");
  EXPECT_EQ(io::IriLocalName("http://a/b/c"), "c");
  EXPECT_EQ(io::IriLocalName("plain"), "plain");
}

// ---- recovery mode (max line/term caps + line-numbered diagnostics) -----

TEST(NTriplesRecoveryTest, OversizedLineIsSkippedWithDiagnostic) {
  std::string text = "<http://x/a> <http://x/p> <http://x/b> .\n";
  text += "<http://x/a> <http://x/p> \"" + std::string(4000, 'x') + "\" .\n";
  text += "<http://x/c> <http://x/p> <http://x/d> .\n";
  io::ParseOptions options;
  options.strict = false;
  options.max_line_bytes = 200;
  ParseStats stats;
  Graph g;
  ASSERT_TRUE(
      io::NTriplesParser::ParseString(text, &g, &stats, options).ok());
  EXPECT_EQ(stats.triples, 2u);
  EXPECT_EQ(stats.skipped, 1u);
  ASSERT_EQ(stats.diagnostics.size(), 1u);
  EXPECT_NE(stats.diagnostics[0].find("line 2"), std::string::npos)
      << stats.diagnostics[0];
  EXPECT_NE(stats.diagnostics[0].find("max_line_bytes"), std::string::npos);
}

TEST(NTriplesRecoveryTest, OversizedLineFailsStrictWithLineNumber) {
  std::string text = "<http://x/a> <http://x/p> <http://x/b> .\n";
  text += "<http://x/a> <http://x/p> \"" + std::string(4000, 'x') + "\" .\n";
  io::ParseOptions options;
  options.max_line_bytes = 200;
  Graph g;
  Status st = io::NTriplesParser::ParseString(text, &g, nullptr, options);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.ToString().find("line 2"), std::string::npos)
      << st.ToString();
}

TEST(NTriplesRecoveryTest, OversizedTermIsRejected) {
  // The line fits the line cap but one decoded term exceeds the term cap.
  std::string text =
      "<http://x/a> <http://x/p> \"" + std::string(300, 'y') + "\" .\n";
  io::ParseOptions options;
  options.strict = false;
  options.max_term_bytes = 100;
  ParseStats stats;
  Graph g;
  ASSERT_TRUE(
      io::NTriplesParser::ParseString(text, &g, &stats, options).ok());
  EXPECT_EQ(stats.triples, 0u);
  EXPECT_EQ(stats.skipped, 1u);
  ASSERT_EQ(stats.diagnostics.size(), 1u);
  EXPECT_NE(stats.diagnostics[0].find("max_term_bytes"), std::string::npos);
}

TEST(NTriplesRecoveryTest, DiagnosticsAreCappedButCountingContinues) {
  std::string text;
  for (int i = 0; i < 40; ++i) text += "garbage line\n";
  io::ParseOptions options;
  options.strict = false;
  ParseStats stats;
  Graph g;
  ASSERT_TRUE(
      io::NTriplesParser::ParseString(text, &g, &stats, options).ok());
  EXPECT_EQ(stats.skipped, 40u);
  EXPECT_EQ(stats.diagnostics.size(), ParseStats::kMaxDiagnostics);
  // Each retained diagnostic names its line.
  EXPECT_NE(stats.diagnostics[0].find("line 1"), std::string::npos);
}

}  // namespace
}  // namespace rdfsum
