#include <gtest/gtest.h>

#include <fstream>

#include "gen/bsbm.h"
#include "gen/paper_example.h"
#include "query/evaluator.h"
#include "query/rbgp.h"
#include "reasoner/saturation.h"
#include "summary/isomorphism.h"
#include "summary/persistence.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {
namespace {

TEST(PersistenceTest, RoundTripWeakSummary) {
  gen::Figure2Example ex = gen::BuildFigure2();
  SummaryOptions options;
  options.record_members = true;
  SummaryResult original = Summarize(ex.graph, SummaryKind::kWeak, options);

  std::string path = testing::TempDir() + "/weak.rdfsum";
  ASSERT_TRUE(SaveSummary(original, path).ok());
  auto loaded = LoadSummary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->kind, SummaryKind::kWeak);
  EXPECT_EQ(loaded->graph.NumTriples(), original.graph.NumTriples());
  EXPECT_TRUE(AreSummariesIsomorphic(loaded->graph, original.graph));
  EXPECT_EQ(loaded->node_map.size(), original.node_map.size());
  EXPECT_EQ(loaded->members.size(), original.members.size());
  EXPECT_EQ(loaded->stats.num_data_nodes, original.stats.num_data_nodes);
}

TEST(PersistenceTest, NodeMapSurvivesAcrossDictionaries) {
  // The loaded summary has a fresh dictionary, but decoded terms must agree.
  gen::Figure2Example ex = gen::BuildFigure2();
  SummaryResult original = Summarize(ex.graph, SummaryKind::kStrong);
  std::string path = testing::TempDir() + "/strong.rdfsum";
  ASSERT_TRUE(SaveSummary(original, path).ok());
  auto loaded = LoadSummary(path);
  ASSERT_TRUE(loaded.ok());

  // Look up r1 by its decoded term in the loaded dictionary.
  TermId r1_loaded =
      loaded->graph.dict().Lookup(ex.graph.dict().Decode(ex.r1));
  ASSERT_NE(r1_loaded, kInvalidTermId);
  auto it = loaded->node_map.find(r1_loaded);
  ASSERT_NE(it, loaded->node_map.end());
  // Its summary node renders the same as in the original.
  EXPECT_EQ(loaded->graph.dict().Decode(it->second),
            original.graph.dict().Decode(original.node_map.at(ex.r1)));
}

TEST(PersistenceTest, LoadedSummaryAnswersQueries) {
  // Workflow: summarize offline, persist, reload elsewhere, use for
  // pruning — representativeness must survive the round trip.
  gen::BsbmOptions opt;
  opt.num_products = 80;
  Graph g = gen::GenerateBsbm(opt);
  Graph g_inf = reasoner::Saturate(g);
  SummaryResult original = Summarize(g, SummaryKind::kWeak);

  std::string path = testing::TempDir() + "/bsbm.rdfsum";
  ASSERT_TRUE(SaveSummary(original, path).ok());
  auto loaded = LoadSummary(path);
  ASSERT_TRUE(loaded.ok());

  Graph h_inf = reasoner::Saturate(loaded->graph);
  query::BgpEvaluator eval(h_inf);
  Random rng(3);
  for (int i = 0; i < 15; ++i) {
    query::BgpQuery q = query::GenerateRbgpQuery(g_inf, rng);
    if (q.triples.empty()) continue;
    EXPECT_TRUE(eval.ExistsMatch(q)) << q.ToString();
  }
}

TEST(PersistenceTest, AllKindsRoundTrip) {
  gen::Figure2Example ex = gen::BuildFigure2();
  for (SummaryKind kind : kAllQuotientKinds) {
    SummaryResult original = Summarize(ex.graph, kind);
    std::string path = testing::TempDir() + "/kind.rdfsum";
    ASSERT_TRUE(SaveSummary(original, path).ok());
    auto loaded = LoadSummary(path);
    ASSERT_TRUE(loaded.ok()) << SummaryKindName(kind);
    EXPECT_EQ(loaded->kind, kind);
    EXPECT_TRUE(AreSummariesIsomorphic(loaded->graph, original.graph))
        << SummaryKindName(kind);
  }
}

TEST(PersistenceTest, RejectsGarbageAndTruncation) {
  std::string path = testing::TempDir() + "/garbage.rdfsum";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a summary";
  }
  EXPECT_TRUE(LoadSummary(path).status().IsCorruption());

  gen::Figure2Example ex = gen::BuildFigure2();
  SummaryResult original = Summarize(ex.graph, SummaryKind::kWeak);
  std::string good = testing::TempDir() + "/good.rdfsum";
  ASSERT_TRUE(SaveSummary(original, good).ok());
  std::ifstream in(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::string truncated_path = testing::TempDir() + "/trunc.rdfsum";
  {
    std::ofstream out(truncated_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  }
  EXPECT_FALSE(LoadSummary(truncated_path).ok());
}

TEST(PersistenceTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadSummary("/nonexistent.rdfsum").status().IsIOError());
}

}  // namespace
}  // namespace rdfsum::summary
