// The cancellation wall (satellite of the governance PR): cooperative
// cancellation must be prompt (observed within one ExecContext check
// interval), clean (no partial output escapes, no crash), and barrier-safe
// (threaded summarization shards fall through their join instead of
// deadlocking). The randomized tests run under TSan in CI — a worker that
// raced the cancel token would be flagged there.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>

#include "gen/bsbm.h"
#include "io/ntriples_parser.h"
#include "query/evaluator.h"
#include "query/sparql_parser.h"
#include "rdf/graph.h"
#include "summary/parallel.h"
#include "summary/summarizer.h"
#include "util/exec_context.h"

namespace rdfsum {
namespace {

const Graph& TestGraph() {
  static const Graph* g = [] {
    gen::BsbmOptions opt;
    opt.num_products = 400;
    return new Graph(gen::GenerateBsbm(opt));
  }();
  return *g;
}

query::BgpQuery MustParse(const std::string& text) {
  auto q = query::ParseSparql(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

TEST(CancellationTest, PreCancelledSummarizeFailsWithoutWork) {
  util::ExecContext ctx;
  ctx.Cancel();
  summary::SummaryOptions options;
  options.exec = &ctx;
  auto r = summary::TrySummarize(TestGraph(), summary::SummaryKind::kWeak,
                                 options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
}

TEST(CancellationTest, PreCancelledThreadedSummarizeFails) {
  for (uint32_t threads : {2u, 4u, 8u}) {
    util::ExecContext ctx;
    ctx.Cancel();
    summary::SummaryOptions options;
    options.exec = &ctx;
    options.num_threads = threads;
    auto r = summary::TrySummarize(TestGraph(), summary::SummaryKind::kWeak,
                                   options);
    ASSERT_FALSE(r.ok()) << "threads " << threads;
    EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  }
}

TEST(CancellationTest, CancelledPartitionReturnsEmptyAndStickyStatus) {
  util::ExecContext ctx;
  ctx.Cancel();
  summary::NodePartition part =
      summary::ComputeParallelWeakPartition(TestGraph(), 4, &ctx);
  EXPECT_TRUE(part.class_of.empty());
  EXPECT_TRUE(ctx.Check().IsCancelled());
}

// Randomized cancellation points: a canceller thread fires after a random
// delay while threaded summarization runs. Every iteration must terminate
// (no shard deadlocks on its join barrier) and return either a complete
// correct summary or kCancelled — nothing in between.
TEST(CancellationTest, RandomizedMidFlightCancellation) {
  const Graph& g = TestGraph();
  const uint64_t expected_triples =
      summary::Summarize(g, summary::SummaryKind::kWeak).graph.NumTriples();
  std::mt19937_64 rng(20260808);
  int cancelled_runs = 0, completed_runs = 0;
  for (int iter = 0; iter < 30; ++iter) {
    util::ExecContext ctx;
    summary::SummaryOptions options;
    options.exec = &ctx;
    options.num_threads = 4;
    const auto delay = std::chrono::microseconds(rng() % 3000);
    std::thread canceller([&ctx, delay] {
      std::this_thread::sleep_for(delay);
      ctx.Cancel();
    });
    auto r =
        summary::TrySummarize(g, summary::SummaryKind::kWeak, options);
    canceller.join();
    if (r.ok()) {
      ++completed_runs;
      EXPECT_EQ(r->graph.NumTriples(), expected_triples);
    } else {
      ++cancelled_runs;
      EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
    }
  }
  // Not asserted in ratio (timing-dependent), but both outcomes existing in
  // a typical run is what gives the test its coverage; log for the curious.
  SCOPED_TRACE(testing::Message() << completed_runs << " completed, "
                                  << cancelled_runs << " cancelled");
}

// A cursor stream must stop within one check interval of cancellation: at
// most kCheckInterval further candidate triples are scanned, which bounds
// the rows delivered after Cancel() by kCheckInterval.
TEST(CancellationTest, CursorStopsWithinOneCheckInterval) {
  const Graph& g = TestGraph();
  query::BgpQuery q = MustParse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }");
  util::ExecContext ctx;
  query::EvaluatorOptions ev_options;
  query::BgpEvaluator eval(g, ev_options);
  query::CursorOptions options;
  options.exec = &ctx;
  auto cursor = eval.Open(q, options);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();

  query::IdRow row;
  uint64_t before = 0;
  while (before < 100 && (*cursor)->Next(&row)) ++before;
  ASSERT_EQ(before, 100u) << "graph too small for the test";
  ctx.Cancel();
  uint64_t after = 0;
  while ((*cursor)->Next(&row)) ++after;
  EXPECT_LE(after, util::ExecContext::kCheckInterval);
  EXPECT_TRUE((*cursor)->status().IsCancelled())
      << (*cursor)->status().ToString();
  // The failure is sticky, like exhaustion.
  EXPECT_FALSE((*cursor)->Next(&row));
  EXPECT_TRUE((*cursor)->status().IsCancelled());
}

TEST(CancellationTest, DeadlineTripsCursorMidStream) {
  const Graph& g = TestGraph();
  query::BgpQuery q = MustParse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }");
  util::ExecContext::Limits limits;
  limits.timeout_ms = 1;
  util::ExecContext ctx(limits);
  query::BgpEvaluator eval(g);
  query::CursorOptions options;
  options.exec = &ctx;
  auto cursor = eval.Open(q, options);
  ASSERT_TRUE(cursor.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  query::IdRow row;
  uint64_t rows = 0;
  while ((*cursor)->Next(&row)) ++rows;
  // The deadline was already expired before the first pull, so the stream
  // dies within the first check interval.
  EXPECT_LE(rows, util::ExecContext::kCheckInterval);
  EXPECT_TRUE((*cursor)->status().IsDeadlineExceeded())
      << (*cursor)->status().ToString();
}

// Cancelling the governed N-Triples parse aborts with kCancelled.
TEST(CancellationTest, ParserHonoursCancellation) {
  std::string text;
  for (int i = 0; i < 2000; ++i) {
    text += "<http://e/s" + std::to_string(i) + "> <http://e/p> <http://e/o> .\n";
  }
  util::ExecContext ctx;
  ctx.Cancel();
  io::ParseOptions options;
  options.exec = &ctx;
  Graph g;
  Status st = io::NTriplesParser::ParseString(text, &g, nullptr, options);
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
}

}  // namespace
}  // namespace rdfsum
