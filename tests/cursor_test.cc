// Unit wall for the streaming query API (PR 4): the Volcano-style operator
// tree (query/cursor.h), the plan compiler (query/executor.h), the
// evaluator's Open() surface, and the hoisted util::RowSet. The
// end-to-end byte-identity against the legacy materializing path lives in
// streaming_differential_test.cc; this file pins the operator semantics —
// early exit, limit/offset arithmetic, hash-vs-nested-loop equivalence,
// repeated-variable binding, per-operator counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "gen/bsbm.h"
#include "query/cursor.h"
#include "query/evaluator.h"
#include "query/executor.h"
#include "query/pruned_evaluator.h"
#include "query/sparql_parser.h"
#include "rdf/graph.h"
#include "util/row_set.h"

namespace rdfsum::query {
namespace {

BgpQuery MustParse(const std::string& text) {
  auto q = ParseSparql(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

std::vector<IdRow> Drain(Cursor& c) {
  std::vector<IdRow> out;
  IdRow row;
  while (c.Next(&row)) out.push_back(row);
  return out;
}

/// s1 -p-> o1..o3, s2 -p-> o1, plus a self loop s1 -p-> s1.
Graph MakeLoopGraph() {
  Graph g;
  Dictionary& d = g.dict();
  TermId s1 = d.EncodeIri("http://t/s1"), s2 = d.EncodeIri("http://t/s2");
  TermId p = d.EncodeIri("http://t/p");
  TermId o1 = d.EncodeIri("http://t/o1"), o2 = d.EncodeIri("http://t/o2");
  g.Add({s1, p, o1});
  g.Add({s1, p, o2});
  g.Add({s1, p, s1});
  g.Add({s2, p, o1});
  return g;
}

// ---------------------------------------------------------------- row set

TEST(RowSetTest, InsertOrFindHandsOutDenseOrdinals) {
  util::RowSet set(2);
  TermId a[2] = {1, 2}, b[2] = {3, 4};
  EXPECT_EQ(set.Find(a), util::RowSet::kNotFound);
  EXPECT_EQ(set.InsertOrFind(a), (std::pair<uint32_t, bool>{0, true}));
  EXPECT_EQ(set.InsertOrFind(b), (std::pair<uint32_t, bool>{1, true}));
  EXPECT_EQ(set.InsertOrFind(a), (std::pair<uint32_t, bool>{0, false}));
  EXPECT_EQ(set.Find(b), 1u);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.row(1)[0], 3u);
}

TEST(RowSetTest, SurvivesGrowth) {
  util::RowSet set(1);
  for (TermId i = 1; i <= 500; ++i) {
    TermId row[1] = {i};
    auto [ord, inserted] = set.InsertOrFind(row);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(ord, i - 1);
  }
  for (TermId i = 1; i <= 500; ++i) {
    TermId row[1] = {i};
    EXPECT_EQ(set.Find(row), i - 1);
    EXPECT_FALSE(set.Insert(row));
  }
  EXPECT_EQ(set.size(), 500u);
}

TEST(RowSetTest, WidthZeroHoldsOneRow) {
  util::RowSet set(0);
  EXPECT_EQ(set.Find(nullptr), util::RowSet::kNotFound);
  EXPECT_TRUE(set.Insert(nullptr));
  EXPECT_FALSE(set.Insert(nullptr));
  EXPECT_EQ(set.Find(nullptr), 0u);
  EXPECT_EQ(set.size(), 1u);
}

// ------------------------------------------------------------- operators

TEST(CursorTest, EmptyAndSingleton) {
  auto empty = MakeEmptyCursor(2);
  IdRow row;
  EXPECT_FALSE(empty->Next(&row));
  EXPECT_EQ(empty->rows_produced(), 0u);

  auto one = MakeSingletonCursor(3);
  ASSERT_TRUE(one->Next(&row));
  EXPECT_EQ(row, (IdRow{kInvalidTermId, kInvalidTermId, kInvalidTermId}));
  EXPECT_FALSE(one->Next(&row));
  EXPECT_EQ(one->rows_produced(), 1u);
}

TEST(CursorTest, IndexScanBindsRepeatedVariablesConsistently) {
  Graph g = MakeLoopGraph();
  BgpEvaluator eval(g);
  // ?x p ?x matches only the self loop.
  QueryPlan plan = eval.Plan(MustParse(
      "SELECT ?x WHERE { ?x <http://t/p> ?x }"));
  CursorTree tree = CompileEmbeddingTree(eval.table(), plan);
  std::vector<IdRow> rows = Drain(*tree.root);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(eval.Decode(rows[0])[0].ToNTriples(), "<http://t/s1>");
}

TEST(CursorTest, LimitOffsetSlicesAndStopsPulling) {
  Graph g = MakeLoopGraph();
  BgpEvaluator eval(g);
  BgpQuery q = MustParse("SELECT ?s ?o WHERE { ?s <http://t/p> ?o }");
  QueryPlan plan = eval.Plan(q);
  auto head = ResolveDistinguished(q, plan.compiled);
  ASSERT_TRUE(head.ok());

  ExecutorOptions full;
  CursorTree all = CompileQueryTree(eval.table(), plan, *head, full);
  std::vector<IdRow> everything = Drain(*all.root);
  ASSERT_EQ(everything.size(), 4u);

  for (size_t offset : {0u, 1u, 3u, 9u}) {
    for (size_t limit : {0u, 1u, 2u, 100u}) {
      ExecutorOptions opt;
      opt.limit = limit;
      opt.offset = offset;
      CursorTree sliced = CompileQueryTree(eval.table(), plan, *head, opt);
      std::vector<IdRow> rows = Drain(*sliced.root);
      // The slice must equal the same window of the full stream.
      std::vector<IdRow> expected;
      for (size_t i = offset; i < everything.size() && expected.size() < limit;
           ++i) {
        expected.push_back(everything[i]);
      }
      EXPECT_EQ(rows, expected) << "limit=" << limit << " offset=" << offset;
    }
  }

  // Early exit: with limit 1 the scan leaf must not have walked all four
  // triples (one row out means at most two pulled — the scan stops when the
  // quota is filled, not when it is exhausted).
  ExecutorOptions first;
  first.limit = 1;
  CursorTree tree = CompileQueryTree(eval.table(), plan, *head, first);
  std::vector<IdRow> rows = Drain(*tree.root);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(tree.step_cursors.size(), 1u);
  EXPECT_LT(tree.step_cursors[0]->rows_produced(), 4u);
}

TEST(CursorTest, DistinctDedupsAndBooleanProjectionYieldsOneRow) {
  Graph g = MakeLoopGraph();
  BgpEvaluator eval(g);
  // Project on ?s only: s1 appears three times, s2 once.
  auto cursor = eval.Open(MustParse(
      "SELECT ?s WHERE { ?s <http://t/p> ?o }"));
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(Drain(**cursor).size(), 2u);

  // Boolean query: one empty row iff the body matches.
  auto ask = eval.Open(MustParse("ASK WHERE { ?s <http://t/p> ?o }"));
  ASSERT_TRUE(ask.ok());
  std::vector<IdRow> rows = Drain(**ask);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].empty());

  auto ask_no = eval.Open(MustParse("ASK WHERE { ?s <http://t/q> ?o }"));
  ASSERT_TRUE(ask_no.ok());
  EXPECT_TRUE(Drain(**ask_no).empty());
}

TEST(CursorTest, HashJoinMatchesNestedLoopOnEveryMode) {
  gen::BsbmOptions opt;
  opt.num_products = 40;
  Graph g = gen::GenerateBsbm(opt);
  BgpEvaluator eval(g);
  const std::string prefix = "PREFIX b: <http://bsbm.example.org/>\n";
  const std::string queries[] = {
      prefix + "SELECT ?o ?price WHERE { ?o b:offerProduct ?p . "
               "?o b:price ?price }",
      prefix + "SELECT ?r ?price WHERE { ?r b:reviewFor ?p . "
               "?o b:offerProduct ?p . ?o b:price ?price }",
      prefix + "SELECT ?p ?l WHERE { ?p b:label ?l . ?p b:producer ?pr . "
               "?pr b:country ?c }",
  };
  for (const std::string& text : queries) {
    BgpQuery q = MustParse(text);
    for (PlannerMode mode : kAllPlannerModes) {
      CursorOptions nlj;
      nlj.hash_join = HashJoinMode::kNever;
      CursorOptions hash;
      hash.hash_join = HashJoinMode::kAlways;
      auto a = eval.Open(q, mode, nlj);
      auto b = eval.Open(q, mode, hash);
      ASSERT_TRUE(a.ok() && b.ok());
      std::vector<IdRow> nlj_rows = Drain(**a);
      std::vector<IdRow> hash_rows = Drain(**b);
      // Same multiset of rows; hash chains preserve index order so for
      // these single-key joins the order matches too.
      EXPECT_EQ(hash_rows.size(), nlj_rows.size()) << text;
      std::sort(nlj_rows.begin(), nlj_rows.end());
      std::sort(hash_rows.begin(), hash_rows.end());
      EXPECT_EQ(hash_rows, nlj_rows) << text;
    }
  }
}

TEST(CursorTest, HashJoinHandlesRepeatedVariablePatterns) {
  Graph g = MakeLoopGraph();
  BgpEvaluator eval(g);
  // Second pattern ?x p ?x joins on ?x with a repeated variable: the build
  // side holds all p-triples, probing must keep only consistent bindings
  // (the self loop) — and only for input rows whose ?x is s1.
  BgpQuery q = MustParse(
      "SELECT ?x ?o WHERE { ?x <http://t/p> ?o . ?x <http://t/p> ?x }");
  CursorOptions hash;
  hash.hash_join = HashJoinMode::kAlways;
  auto with_hash = eval.Open(q, PlannerMode::kNaive, hash);
  auto with_nlj = eval.Open(q, PlannerMode::kNaive);
  ASSERT_TRUE(with_hash.ok() && with_nlj.ok());
  std::vector<IdRow> hash_rows = Drain(**with_hash);
  EXPECT_EQ(hash_rows, Drain(**with_nlj));
  ASSERT_EQ(hash_rows.size(), 3u);  // s1's three objects
}

// ----------------------------------------------------------- Open surface

TEST(OpenTest, StreamsTheSameRowsEvaluateMaterializes) {
  gen::BsbmOptions opt;
  opt.num_products = 30;
  Graph g = gen::GenerateBsbm(opt);
  BgpEvaluator eval(g);
  BgpQuery q = MustParse(
      "PREFIX b: <http://bsbm.example.org/>\n"
      "SELECT ?p ?l WHERE { ?p b:label ?l . ?p b:producer ?pr }");
  auto rows = eval.Evaluate(q);
  ASSERT_TRUE(rows.ok());
  auto cursor = eval.Open(q);
  ASSERT_TRUE(cursor.ok());
  std::vector<Row> streamed;
  IdRow row;
  while ((*cursor)->Next(&row)) streamed.push_back(eval.Decode(row));
  ASSERT_EQ(streamed.size(), rows->size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    ASSERT_EQ(streamed[i].size(), (*rows)[i].size());
    for (size_t j = 0; j < streamed[i].size(); ++j) {
      EXPECT_EQ(streamed[i][j].ToNTriples(), (*rows)[i][j].ToNTriples());
    }
  }
}

TEST(OpenTest, ValidatesTheHeadAndLimitZeroProducesNothing) {
  Graph g = MakeLoopGraph();
  BgpEvaluator eval(g);
  BgpQuery q = MustParse("SELECT ?s WHERE { ?s <http://t/p> ?o }");
  q.distinguished = {"gone"};
  EXPECT_TRUE(eval.Open(q).status().IsInvalidArgument());
  q.distinguished = {"s"};
  CursorOptions zero;
  zero.limit = 0;
  auto cursor = eval.Open(q, zero);
  ASSERT_TRUE(cursor.ok());
  EXPECT_TRUE(Drain(**cursor).empty());
}

TEST(OpenTest, CursorOutlivesThePlanItWasCompiledFrom) {
  Graph g = MakeLoopGraph();
  BgpEvaluator eval(g);
  BgpQuery q = MustParse("SELECT ?s ?o WHERE { ?s <http://t/p> ?o }");
  std::unique_ptr<Cursor> cursor;
  {
    QueryPlan plan = eval.Plan(q);
    auto opened = eval.Open(q, plan);
    ASSERT_TRUE(opened.ok());
    cursor = std::move(*opened);
  }  // plan destroyed; the cursor must have copied what it needs
  EXPECT_EQ(Drain(*cursor).size(), 4u);
}

TEST(ExplainTest, OperatorCountersFeedTheExplanation) {
  Graph g = MakeLoopGraph();
  BgpEvaluator eval(g);
  auto ex = eval.Explain(MustParse(
      "SELECT ?s WHERE { ?s <http://t/p> ?o }"));
  ASSERT_TRUE(ex.ok());
  ASSERT_FALSE(ex->operators.empty());
  // Root first; the tree here is Project -> Distinct over one scan.
  EXPECT_EQ(ex->operators.front().op, "Distinct");
  EXPECT_EQ(ex->operators.front().rows_produced, ex->num_result_rows);
  bool found_scan = false;
  for (const OperatorStats& op : ex->operators) {
    if (op.op.find("IndexScan") != std::string::npos) {
      found_scan = true;
      EXPECT_EQ(op.rows_produced, 4u);
      EXPECT_NE(op.op.find("http://t/p"), std::string::npos);
    }
  }
  EXPECT_TRUE(found_scan);
  std::string rendered = ex->ToString();
  EXPECT_NE(rendered.find("operators (rows produced)"), std::string::npos);
  EXPECT_NE(rendered.find("Distinct"), std::string::npos);
}

TEST(PrunedOpenTest, PrunedQueriesStreamNothingWithoutTouchingTheGraph) {
  gen::BsbmOptions opt;
  opt.num_products = 20;
  Graph g = gen::GenerateBsbm(opt);
  SummaryPrunedEvaluator pruned(g);
  BgpQuery impossible = MustParse(
      "PREFIX b: <http://bsbm.example.org/>\n"
      "SELECT ?x WHERE { ?x b:neverUsedProperty ?y }");
  auto cursor = pruned.Open(impossible);
  ASSERT_TRUE(cursor.ok());
  IdRow row;
  EXPECT_FALSE((*cursor)->Next(&row));
  EXPECT_EQ(pruned.stats().pruned_by_summary, 1u);
  EXPECT_EQ(pruned.stats().graph_probes, 0u);

  // A bad head must error even when the summary would prune the query.
  BgpQuery bad = impossible;
  bad.distinguished = {"gone"};
  EXPECT_TRUE(pruned.Open(bad).status().IsInvalidArgument());

  // An admitted query streams exactly what Evaluate returns.
  BgpQuery live = MustParse(
      "PREFIX b: <http://bsbm.example.org/>\n"
      "SELECT ?p WHERE { ?p b:producer ?pr }");
  auto live_cursor = pruned.Open(live);
  ASSERT_TRUE(live_cursor.ok());
  size_t streamed = 0;
  while ((*live_cursor)->Next(&row)) ++streamed;
  auto rows = pruned.Evaluate(live);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(streamed, rows->size());
  EXPECT_GT(streamed, 0u);
}

}  // namespace
}  // namespace rdfsum::query
