#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/bsbm.h"
#include "gen/hetero.h"
#include "gen/paper_example.h"
#include "summary/isomorphism.h"
#include "summary/maintenance.h"
#include "summary/property_checks.h"
#include "summary/summarizer.h"
#include "util/random.h"

namespace rdfsum::summary {
namespace {

std::vector<Triple> AllTriples(const Graph& g) {
  std::vector<Triple> out;
  g.ForEachTriple([&](const Triple& t) { out.push_back(t); });
  return out;
}

TEST(MaintenanceTest, MatchesBatchOnFigure2) {
  gen::Figure2Example ex = gen::BuildFigure2();
  WeakSummaryMaintainer maintainer(ex.graph);
  SummaryResult batch = Summarize(ex.graph, SummaryKind::kWeak);
  SummaryResult snapshot = maintainer.Snapshot();
  EXPECT_TRUE(AreSummariesIsomorphic(snapshot.graph, batch.graph));
  EXPECT_EQ(maintainer.num_triples_seen(), ex.graph.NumTriples());
}

TEST(MaintenanceTest, InsertionOrderDoesNotMatter) {
  gen::Figure2Example ex = gen::BuildFigure2();
  std::vector<Triple> triples = AllTriples(ex.graph);
  SummaryResult batch = Summarize(ex.graph, SummaryKind::kWeak);
  Random rng(99);
  for (int run = 0; run < 6; ++run) {
    // Shuffle.
    for (size_t i = triples.size(); i > 1; --i) {
      std::swap(triples[i - 1], triples[rng.Uniform(i)]);
    }
    WeakSummaryMaintainer maintainer(ex.graph.dict_ptr());
    for (const Triple& t : triples) maintainer.AddTriple(t);
    SummaryResult snapshot = maintainer.Snapshot();
    EXPECT_TRUE(AreSummariesIsomorphic(snapshot.graph, batch.graph))
        << "order run " << run;
  }
}

TEST(MaintenanceTest, TypeBeforeDataMigratesOutOfNTauPool) {
  Graph g;
  Dictionary& d = g.dict();
  const TermId rdf_type = g.vocab().rdf_type;
  TermId x = d.EncodeIri("x"), c = d.EncodeIri("C"), p = d.EncodeIri("p"),
         y = d.EncodeIri("y");

  WeakSummaryMaintainer maintainer(g.dict_ptr());
  maintainer.AddTriple({x, rdf_type, c});
  // While typed-only, x sits in the pool.
  EXPECT_EQ(maintainer.num_summary_nodes(), 1u);
  maintainer.AddTriple({x, p, y});
  SummaryResult snap = maintainer.Snapshot();
  // x's node carries both the data edge and the class; there is no
  // leftover Nτ node.
  EXPECT_EQ(snap.stats.num_data_nodes, 2u);
  TermId xs = snap.node_map.at(x);
  EXPECT_TRUE(snap.graph.Contains({xs, rdf_type, c}));
  EXPECT_TRUE(snap.graph.Contains({xs, p, snap.node_map.at(y)}));
}

TEST(MaintenanceTest, SnapshotsAtEveryPrefixAreCorrect) {
  gen::HeteroOptions opt;
  opt.seed = 5;
  opt.num_nodes = 40;
  opt.num_properties = 6;
  opt.type_probability = 0.4;
  Graph g = gen::GenerateHetero(opt);
  std::vector<Triple> triples = AllTriples(g);

  WeakSummaryMaintainer maintainer(g.dict_ptr());
  Graph prefix(g.dict_ptr());
  size_t step = std::max<size_t>(1, triples.size() / 7);
  for (size_t i = 0; i < triples.size(); ++i) {
    maintainer.AddTriple(triples[i]);
    prefix.Add(triples[i]);
    if (i % step == 0 || i + 1 == triples.size()) {
      SummaryResult expected = Summarize(prefix, SummaryKind::kWeak);
      SummaryResult actual = maintainer.Snapshot();
      ASSERT_TRUE(AreSummariesIsomorphic(actual.graph, expected.graph))
          << "prefix " << i + 1 << "/" << triples.size();
    }
  }
}

TEST(MaintenanceTest, DuplicateInsertionsAreIdempotent) {
  gen::Figure2Example ex = gen::BuildFigure2();
  WeakSummaryMaintainer maintainer(ex.graph.dict_ptr());
  for (int round = 0; round < 3; ++round) {
    ex.graph.ForEachTriple([&](const Triple& t) { maintainer.AddTriple(t); });
  }
  SummaryResult batch = Summarize(ex.graph, SummaryKind::kWeak);
  EXPECT_TRUE(AreSummariesIsomorphic(maintainer.Snapshot().graph,
                                     batch.graph));
}

TEST(MaintenanceTest, HomomorphismAndMembers) {
  gen::BsbmOptions opt;
  opt.num_products = 60;
  Graph g = gen::GenerateBsbm(opt);
  IncrementalWeakOptions options;
  options.record_members = true;
  WeakSummaryMaintainer maintainer(g, options);
  SummaryResult snap = maintainer.Snapshot();
  EXPECT_TRUE(CheckHomomorphism(g, snap).ok());
  EXPECT_FALSE(snap.members.empty());
}

TEST(MaintenanceTest, SummaryOnlyGrowsCoarser) {
  // Node count may only shrink via merges as triples arrive, never grow
  // beyond 2 * #distinct-properties + pool.
  gen::HeteroOptions opt;
  opt.seed = 21;
  opt.num_nodes = 80;
  opt.num_properties = 8;
  Graph g = gen::GenerateHetero(opt);
  WeakSummaryMaintainer maintainer(g.dict_ptr());
  uint64_t max_nodes = 0;
  g.ForEachTriple([&](const Triple& t) {
    maintainer.AddTriple(t);
    max_nodes = std::max(max_nodes, maintainer.num_summary_nodes());
  });
  EXPECT_LE(max_nodes, 2 * 8 + 1u);
}

TEST(MaintenanceTest, SchemaTriplesPassThrough) {
  gen::BookExample ex = gen::BuildBookExample();
  WeakSummaryMaintainer maintainer(ex.graph);
  SummaryResult snap = maintainer.Snapshot();
  EXPECT_EQ(snap.graph.schema().size(), ex.graph.schema().size());
}

}  // namespace
}  // namespace rdfsum::summary
