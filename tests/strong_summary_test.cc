#include <gtest/gtest.h>

#include <set>

#include "gen/hetero.h"
#include "gen/paper_example.h"
#include "rdf/graph_stats.h"
#include "summary/property_checks.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {
namespace {

using gen::BuildFigure2;
using gen::Figure2Example;

class StrongSummaryTest : public ::testing::Test {
 protected:
  StrongSummaryTest() : ex_(BuildFigure2()) {
    result_ = Summarize(ex_.graph, SummaryKind::kStrong);
  }
  TermId Map(TermId n) const { return result_.node_map.at(n); }

  Figure2Example ex_;
  SummaryResult result_;
};

// Figure 9: the strong summary of the running example.

TEST_F(StrongSummaryTest, SplitsTheWeakSubjectNode) {
  // r1, r2, r3, r5 share (SC1, ∅); r4 has (SC1, TC5) and is split off.
  EXPECT_EQ(Map(ex_.r1), Map(ex_.r2));
  EXPECT_EQ(Map(ex_.r1), Map(ex_.r3));
  EXPECT_EQ(Map(ex_.r1), Map(ex_.r5));
  EXPECT_NE(Map(ex_.r1), Map(ex_.r4));
}

TEST_F(StrongSummaryTest, SplitsTargetsByTheirSourceCliques) {
  // a1 (reviews) vs a2 (no outgoing): different source cliques.
  EXPECT_NE(Map(ex_.a1), Map(ex_.a2));
  EXPECT_NE(Map(ex_.e1), Map(ex_.e2));
  // Titles all coincide.
  EXPECT_EQ(Map(ex_.t1), Map(ex_.t2));
  EXPECT_EQ(Map(ex_.t1), Map(ex_.t3));
  EXPECT_EQ(Map(ex_.t1), Map(ex_.t4));
}

TEST_F(StrongSummaryTest, NineDataNodes) {
  // {r1,r2,r3,r5}, {r4}, {a1}, {a2}, {t*}, {e1}, {e2}, {c1}, {r6}=Nτ.
  EXPECT_EQ(result_.stats.num_data_nodes, 9u);
  std::set<TermId> distinct;
  for (const auto& [n, h] : result_.node_map) distinct.insert(h);
  EXPECT_EQ(distinct.size(), 9u);
}

TEST_F(StrongSummaryTest, DuplicatePropertyLabelsAllowed) {
  // Unlike W (Property 4), S may repeat an edge label: two author edges.
  size_t author_edges = 0;
  for (const Triple& t : result_.graph.data()) {
    if (t.p == ex_.author) ++author_edges;
  }
  EXPECT_EQ(author_edges, 2u);
  EXPECT_EQ(result_.graph.data().size(), 9u);
}

TEST_F(StrongSummaryTest, EdgesMatchFigure9) {
  const Graph& h = result_.graph;
  TermId big1 = Map(ex_.r1);   // N^{a,t,e,c}
  TermId big2 = Map(ex_.r4);   // N^{a,t,e,c}_{r,p}
  EXPECT_TRUE(h.Contains({big1, ex_.author, Map(ex_.a1)}));
  EXPECT_TRUE(h.Contains({big2, ex_.author, Map(ex_.a2)}));
  EXPECT_TRUE(h.Contains({big1, ex_.title, Map(ex_.t1)}));
  EXPECT_TRUE(h.Contains({big2, ex_.title, Map(ex_.t1)}));
  EXPECT_TRUE(h.Contains({big1, ex_.editor, Map(ex_.e1)}));
  EXPECT_TRUE(h.Contains({big1, ex_.editor, Map(ex_.e2)}));
  EXPECT_TRUE(h.Contains({big1, ex_.comment, Map(ex_.c1)}));
  EXPECT_TRUE(h.Contains({Map(ex_.a1), ex_.reviewed, big2}));
  EXPECT_TRUE(h.Contains({Map(ex_.e1), ex_.published, big2}));
}

TEST_F(StrongSummaryTest, TypeEdges) {
  const Graph& h = result_.graph;
  const TermId rdf_type = h.vocab().rdf_type;
  TermId big1 = Map(ex_.r1);
  EXPECT_TRUE(h.Contains({big1, rdf_type, ex_.book}));
  EXPECT_TRUE(h.Contains({big1, rdf_type, ex_.journal}));
  EXPECT_TRUE(h.Contains({big1, rdf_type, ex_.spec}));
  EXPECT_TRUE(h.Contains({Map(ex_.r6), rdf_type, ex_.journal}));
  EXPECT_EQ(h.types().size(), 4u);
}

TEST_F(StrongSummaryTest, IsHomomorphicImage) {
  EXPECT_TRUE(CheckHomomorphism(ex_.graph, result_).ok());
}

TEST_F(StrongSummaryTest, StrongRefinesWeak) {
  // Strong equivalence implies weak equivalence: the strong partition must
  // refine the weak one.
  SummaryResult weak = Summarize(ex_.graph, SummaryKind::kWeak);
  for (const auto& [n1, s1] : result_.node_map) {
    for (const auto& [n2, s2] : result_.node_map) {
      if (s1 == s2) {
        EXPECT_EQ(weak.node_map.at(n1), weak.node_map.at(n2))
            << "strongly equivalent nodes must be weakly equivalent";
      }
    }
  }
}

// ---------------------------------------------------------------- bounds

class StrongBoundsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrongBoundsTest, SizeBoundsOfSection51) {
  gen::HeteroOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 150;
  opt.num_properties = 12;
  Graph g = gen::GenerateHetero(opt);
  GraphStats gs = ComputeGraphStats(g);
  SummaryResult r = Summarize(g, SummaryKind::kStrong);

  // Data nodes bounded by both |D_G|n and (|D_G|0p)^2 (§5.1; we add Nτ).
  uint64_t p = gs.num_distinct_data_properties;
  EXPECT_LE(r.stats.num_data_nodes, gs.num_data_nodes);
  EXPECT_LE(r.stats.num_data_nodes, (p + 1) * (p + 1) + 1);
  EXPECT_LE(r.graph.data().size(), g.data().size());
  EXPECT_TRUE(CheckHomomorphism(g, r).ok());
}

TEST_P(StrongBoundsTest, StrongRefinesWeakOnRandomGraphs) {
  gen::HeteroOptions opt;
  opt.seed = GetParam() + 100;
  opt.num_nodes = 100;
  Graph g = gen::GenerateHetero(opt);
  SummaryResult strong = Summarize(g, SummaryKind::kStrong);
  SummaryResult weak = Summarize(g, SummaryKind::kWeak);
  // Group nodes by strong class and check each is inside one weak class.
  std::unordered_map<TermId, TermId> strong_to_weak;
  for (const auto& [n, s] : strong.node_map) {
    TermId w = weak.node_map.at(n);
    auto [it, inserted] = strong_to_weak.emplace(s, w);
    EXPECT_EQ(it->second, w);
  }
  EXPECT_GE(strong.stats.num_data_nodes, weak.stats.num_data_nodes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrongBoundsTest,
                         ::testing::Values(2, 5, 8, 21, 34, 55));

TEST(StrongSummaryEdgeTest, TypedOnlyNodesShareNTau) {
  Graph g;
  Dictionary& d = g.dict();
  g.Add({d.EncodeIri("x"), g.vocab().rdf_type, d.EncodeIri("C1")});
  g.Add({d.EncodeIri("y"), g.vocab().rdf_type, d.EncodeIri("C2")});
  SummaryResult r = Summarize(g, SummaryKind::kStrong);
  EXPECT_EQ(r.node_map.at(d.EncodeIri("x")), r.node_map.at(d.EncodeIri("y")));
}

TEST(StrongSummaryEdgeTest, EmptyGraph) {
  Graph g;
  SummaryResult r = Summarize(g, SummaryKind::kStrong);
  EXPECT_TRUE(r.graph.Empty());
}

}  // namespace
}  // namespace rdfsum::summary
