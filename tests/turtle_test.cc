#include <gtest/gtest.h>

#include "io/ntriples_writer.h"
#include "io/turtle_parser.h"
#include "rdf/graph.h"

namespace rdfsum::io {
namespace {

Graph ParseOk(const std::string& text, TurtleParseStats* stats = nullptr) {
  Graph g;
  Status st = TurtleParser::ParseString(text, &g, stats);
  EXPECT_TRUE(st.ok()) << st.ToString() << "\ninput: " << text;
  return g;
}

void ExpectError(const std::string& text) {
  Graph g;
  Status st = TurtleParser::ParseString(text, &g);
  EXPECT_FALSE(st.ok()) << "accepted: " << text;
}

TEST(TurtleParserTest, NTriplesStyleStatement) {
  Graph g = ParseOk("<http://s> <http://p> <http://o> .");
  EXPECT_EQ(g.NumTriples(), 1u);
}

TEST(TurtleParserTest, PrefixAndPrefixedNames) {
  Graph g = ParseOk(
      "@prefix ex: <http://example.org/> .\n"
      "ex:s ex:p ex:o .");
  ASSERT_EQ(g.data().size(), 1u);
  EXPECT_EQ(g.dict().Decode(g.data()[0].s).lexical, "http://example.org/s");
}

TEST(TurtleParserTest, SparqlStylePrefixWithoutDot) {
  Graph g = ParseOk(
      "PREFIX ex: <http://example.org/>\n"
      "ex:s ex:p ex:o .");
  EXPECT_EQ(g.NumTriples(), 1u);
}

TEST(TurtleParserTest, AtPrefixRequiresDot) {
  ExpectError("@prefix ex: <http://example.org/>\nex:s ex:p ex:o .");
}

TEST(TurtleParserTest, EmptyPrefixLabel) {
  Graph g = ParseOk(
      "@prefix : <http://example.org/> .\n"
      ":s :p :o .");
  EXPECT_EQ(g.dict().Decode(g.data()[0].p).lexical, "http://example.org/p");
}

TEST(TurtleParserTest, BaseResolvesRelativeIris) {
  Graph g = ParseOk(
      "@base <http://example.org/> .\n"
      "<s> <p> <o> .");
  EXPECT_EQ(g.dict().Decode(g.data()[0].s).lexical, "http://example.org/s");
}

TEST(TurtleParserTest, AKeyword) {
  Graph g = ParseOk(
      "@prefix ex: <http://example.org/> .\n"
      "ex:s a ex:Class .");
  EXPECT_EQ(g.types().size(), 1u);
}

TEST(TurtleParserTest, PredicateList) {
  Graph g = ParseOk(
      "@prefix ex: <http://e/> .\n"
      "ex:s ex:p1 ex:o1 ; ex:p2 ex:o2 ; ex:p3 ex:o3 .");
  EXPECT_EQ(g.data().size(), 3u);
  // All share the same subject.
  TermId s = g.data()[0].s;
  for (const Triple& t : g.data()) EXPECT_EQ(t.s, s);
}

TEST(TurtleParserTest, ObjectList) {
  Graph g = ParseOk(
      "@prefix ex: <http://e/> .\n"
      "ex:s ex:p ex:o1, ex:o2, ex:o3 .");
  EXPECT_EQ(g.data().size(), 3u);
  TermId p = g.data()[0].p;
  for (const Triple& t : g.data()) EXPECT_EQ(t.p, p);
}

TEST(TurtleParserTest, DanglingSemicolonBeforeDot) {
  Graph g = ParseOk(
      "@prefix ex: <http://e/> .\n"
      "ex:s ex:p ex:o ; .");
  EXPECT_EQ(g.data().size(), 1u);
}

TEST(TurtleParserTest, MixedLists) {
  Graph g = ParseOk(
      "@prefix ex: <http://e/> .\n"
      "ex:s a ex:C ; ex:p ex:o1, ex:o2 ; ex:q \"v\" .");
  EXPECT_EQ(g.NumTriples(), 4u);
}

TEST(TurtleParserTest, QuotedLiteralsWithTags) {
  Graph g = ParseOk(
      "@prefix ex: <http://e/> .\n"
      "ex:s ex:p \"plain\" .\n"
      "ex:s ex:q \"hallo\"@de .\n"
      "ex:s ex:r \"5\"^^<http://dt> .\n"
      "ex:s ex:u \"7\"^^ex:num .");
  ASSERT_EQ(g.data().size(), 4u);
  EXPECT_EQ(g.dict().Decode(g.data()[1].o).language, "de");
  EXPECT_EQ(g.dict().Decode(g.data()[3].o).datatype, "http://e/num");
}

TEST(TurtleParserTest, SingleQuoteLiterals) {
  Graph g = ParseOk("<http://s> <http://p> 'single' .");
  EXPECT_EQ(g.dict().Decode(g.data()[0].o).lexical, "single");
}

TEST(TurtleParserTest, EscapesInLiterals) {
  Graph g = ParseOk(R"(<http://s> <http://p> "a\tb\"c" .)");
  EXPECT_EQ(g.dict().Decode(g.data()[0].o).lexical, "a\tb\"c");
}

TEST(TurtleParserTest, NumericLiterals) {
  Graph g = ParseOk(
      "@prefix ex: <http://e/> .\n"
      "ex:s ex:p 42 .\n"
      "ex:s ex:q -3.14 .");
  const Term& i = g.dict().Decode(g.data()[0].o);
  EXPECT_EQ(i.lexical, "42");
  EXPECT_EQ(i.datatype, "http://www.w3.org/2001/XMLSchema#integer");
  const Term& d = g.dict().Decode(g.data()[1].o);
  EXPECT_EQ(d.lexical, "-3.14");
  EXPECT_EQ(d.datatype, "http://www.w3.org/2001/XMLSchema#decimal");
}

TEST(TurtleParserTest, IntegerBeforeStatementDot) {
  // "5." must parse as integer 5 followed by the terminator.
  Graph g = ParseOk("<http://s> <http://p> 5.");
  EXPECT_EQ(g.dict().Decode(g.data()[0].o).lexical, "5");
}

TEST(TurtleParserTest, BooleanLiterals) {
  Graph g = ParseOk("<http://s> <http://p> true .\n<http://s> <http://q> false .");
  EXPECT_EQ(g.dict().Decode(g.data()[0].o).lexical, "true");
  EXPECT_EQ(g.dict().Decode(g.data()[0].o).datatype,
            "http://www.w3.org/2001/XMLSchema#boolean");
}

TEST(TurtleParserTest, BlankNodes) {
  Graph g = ParseOk("_:a <http://p> _:b .");
  EXPECT_TRUE(g.dict().Decode(g.data()[0].s).is_blank());
}

TEST(TurtleParserTest, AnonymousBlankNodesAreFresh) {
  Graph g = ParseOk("[] <http://p> [] .\n[] <http://p> [] .");
  EXPECT_EQ(g.data().size(), 2u);
  EXPECT_NE(g.data()[0].s, g.data()[1].s);
  EXPECT_NE(g.data()[0].o, g.data()[0].s);
}

TEST(TurtleParserTest, CommentsEverywhere) {
  Graph g = ParseOk(
      "# header\n"
      "@prefix ex: <http://e/> . # decl\n"
      "ex:s ex:p ex:o . # done\n");
  EXPECT_EQ(g.NumTriples(), 1u);
}

TEST(TurtleParserTest, StatsCount) {
  TurtleParseStats stats;
  ParseOk(
      "@prefix ex: <http://e/> .\n"
      "ex:s ex:p ex:o1, ex:o2 .\n"
      "ex:s ex:p ex:o1 .",
      &stats);
  EXPECT_EQ(stats.prefixes, 1u);
  EXPECT_EQ(stats.triples, 3u);
  EXPECT_EQ(stats.duplicates, 1u);
}

TEST(TurtleParserTest, UndeclaredPrefixFails) {
  ExpectError("ex:s ex:p ex:o .");
}

TEST(TurtleParserTest, MissingDotFails) {
  ExpectError("<http://s> <http://p> <http://o>");
}

TEST(TurtleParserTest, LiteralSubjectFails) {
  ExpectError("\"lit\" <http://p> <http://o> .");
}

TEST(TurtleParserTest, CollectionsNotSupported) {
  Graph g;
  Status st =
      TurtleParser::ParseString("<http://s> <http://p> (1 2) .", &g);
  EXPECT_TRUE(st.IsNotSupported());
}

TEST(TurtleParserTest, PropertyListsNotSupported) {
  Graph g;
  Status st = TurtleParser::ParseString(
      "<http://s> <http://p> [ <http://q> 1 ] .", &g);
  EXPECT_TRUE(st.IsNotSupported());
}

TEST(TurtleParserTest, TripleQuotedNotSupported) {
  Graph g;
  Status st = TurtleParser::ParseString(
      "<http://s> <http://p> \"\"\"long\"\"\" .", &g);
  EXPECT_TRUE(st.IsNotSupported());
}

TEST(TurtleParserTest, ErrorsMentionLine) {
  Graph g;
  Status st = TurtleParser::ParseString(
      "<http://s> <http://p> <http://o> .\n\nbroken here", &g);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 3"), std::string::npos);
}

TEST(TurtleParserTest, NTriplesWriterOutputIsValidTurtle) {
  // N-Triples is a Turtle subset: round-trip through the writer.
  Graph g;
  g.AddTerms(Term::Iri("http://s"), Term::Iri("http://p"),
             Term::LangLiteral("x", "en"));
  g.AddTerms(Term::Blank("b"), Term::Iri("http://p"), Term::Literal("y"));
  std::string text = NTriplesWriter::ToString(g);
  Graph g2;
  ASSERT_TRUE(TurtleParser::ParseString(text, &g2).ok());
  EXPECT_EQ(g2.NumTriples(), g.NumTriples());
}

TEST(TurtleParserTest, MissingFileIsIOError) {
  Graph g;
  EXPECT_TRUE(TurtleParser::ParseFile("/nonexistent.ttl", &g).IsIOError());
}

// ---------------------------------------------------------------------------
// Governance parity with the N-Triples parser (TurtleParseOptions).

TEST(TurtleGovernanceTest, LenientModeSkipsMalformedStatements) {
  Graph g;
  TurtleParseStats stats;
  TurtleParseOptions options;
  options.strict = false;
  Status st = TurtleParser::ParseString(
      "<http://s1> <http://p> <http://o1> .\n"
      "broken statement here .\n"
      "<http://s2> <http://p> <http://o2> .\n",
      &g, &stats, options);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(g.NumTriples(), 2u);
  EXPECT_EQ(stats.skipped, 1u);
  ASSERT_EQ(stats.diagnostics.size(), 1u);
  EXPECT_NE(stats.diagnostics[0].find("line 2"), std::string::npos)
      << stats.diagnostics[0];
}

TEST(TurtleGovernanceTest, LenientModeRecoversPastQuotedAndIriDots) {
  // The '.' characters inside the IRI and the literal of the broken
  // statement must not end the recovery scan early.
  Graph g;
  TurtleParseStats stats;
  TurtleParseOptions options;
  options.strict = false;
  Status st = TurtleParser::ParseString(
      "<http://a.example/s> <http://p> ( 1 2 ) \"v1.2.3\" .\n"
      "<http://a.example/s2> <http://p> <http://o> .\n",
      &g, &stats, options);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_EQ(g.NumTriples(), 1u);
}

TEST(TurtleGovernanceTest, LenientModeSkipsUnsupportedConstructs) {
  Graph g;
  TurtleParseStats stats;
  TurtleParseOptions options;
  options.strict = false;
  Status st = TurtleParser::ParseString(
      "<http://s> <http://p> ( 1 2 3 ) .\n"
      "<http://s> <http://p> <http://o> .\n",
      &g, &stats, options);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(g.NumTriples(), 1u);
  EXPECT_EQ(stats.skipped, 1u);
  ASSERT_EQ(stats.diagnostics.size(), 1u);
  // NotSupported reasons get the line prefix added by the recovery path.
  EXPECT_NE(stats.diagnostics[0].find("line 1"), std::string::npos)
      << stats.diagnostics[0];
}

TEST(TurtleGovernanceTest, DiagnosticsAreCapped) {
  std::string text;
  for (int i = 0; i < 50; ++i) text += "broken line .\n";
  Graph g;
  TurtleParseStats stats;
  TurtleParseOptions options;
  options.strict = false;
  ASSERT_TRUE(TurtleParser::ParseString(text, &g, &stats, options).ok());
  EXPECT_EQ(stats.skipped, 50u);
  EXPECT_EQ(stats.diagnostics.size(), TurtleParseStats::kMaxDiagnostics);
}

TEST(TurtleGovernanceTest, MaxTermBytesRejectsOversizedTerm) {
  Graph g;
  TurtleParseOptions options;
  options.max_term_bytes = 16;
  Status st = TurtleParser::ParseString(
      "<http://s> <http://p> \"a very long literal that exceeds the cap\" .",
      &g, nullptr, options);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("max_term_bytes"), std::string::npos);
}

TEST(TurtleGovernanceTest, MaxStatementBytesStopsRunawayStatement) {
  // A missing '.' chains everything into one statement; the span guard must
  // trip instead of silently absorbing the whole input.
  std::string text = "<http://s> <http://p>";
  for (int i = 0; i < 100; ++i) {
    text += " <http://o" + std::to_string(i) + "> ,";
  }
  text += " <http://last> .";
  Graph g;
  TurtleParseOptions options;
  options.max_statement_bytes = 256;
  Status st = TurtleParser::ParseString(text, &g, nullptr, options);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("max_statement_bytes"), std::string::npos);
}

TEST(TurtleGovernanceTest, CancelledExecContextAbortsParse) {
  // Build enough statements to cross the per-256-statement poll boundary.
  std::string text;
  for (int i = 0; i < 600; ++i) {
    text += "<http://s" + std::to_string(i) + "> <http://p> <http://o> .\n";
  }
  util::ExecContext ctx;
  ctx.Cancel();
  Graph g;
  TurtleParseOptions options;
  options.exec = &ctx;
  Status st = TurtleParser::ParseString(text, &g, nullptr, options);
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
}

}  // namespace
}  // namespace rdfsum::io
