// Differential wall for the parallel ingestion pipeline: with
// ParseOptions::num_threads != 1 the loaded graph must be BYTE-identical to
// the sequential parse — same dense dictionary ids, same triple insertion
// order, same serialized N-Triples, same stats and diagnostics — for every
// dataset shape and thread count, including pathological chunkings (CRLF,
// long lines, comments/blanks/malformed lines straddling chunk boundaries).
// The same contract is asserted for the parallel TripleTable::Freeze(): the
// three sorted permutations and the table statistics must match Freeze() at
// every thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "gen/bsbm.h"
#include "gen/hetero.h"
#include "gen/lubm.h"
#include "gen/paper_example.h"
#include "io/ntriples_parser.h"
#include "io/ntriples_writer.h"
#include "store/triple_table.h"
#include "summary/summarizer.h"
#include "util/fault_injection.h"

namespace rdfsum::io {
namespace {

// 1 re-checks that the explicit-sequential route stays the baseline; 2/4
// split evenly, 7 leaves ragged chunk bounds, 8 oversubscribes the 1-core
// CI runner, 0 = all hardware threads.
constexpr uint32_t kThreadCounts[] = {1, 2, 4, 7, 8, 0};

enum class Dataset { kBsbm, kLubm, kPaper, kHetero };

const char* DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kBsbm: return "bsbm";
    case Dataset::kLubm: return "lubm";
    case Dataset::kPaper: return "paper";
    case Dataset::kHetero: return "hetero";
  }
  return "?";
}

/// N-Triples text of a deterministic generated dataset — the load input.
std::string MakeInput(Dataset d) {
  Graph g;
  switch (d) {
    case Dataset::kBsbm: {
      gen::BsbmOptions opt;
      opt.num_products = 60;
      g = gen::GenerateBsbm(opt);
      break;
    }
    case Dataset::kLubm: {
      gen::LubmOptions opt;
      opt.num_universities = 1;
      g = gen::GenerateLubm(opt);
      break;
    }
    case Dataset::kPaper:
      g = gen::BuildFigure2().graph;
      break;
    case Dataset::kHetero: {
      gen::HeteroOptions opt;
      opt.seed = 13;
      opt.num_nodes = 150;
      opt.num_properties = 11;
      opt.type_probability = 0.35;
      g = gen::GenerateHetero(opt);
      break;
    }
  }
  return NTriplesWriter::ToString(g);
}

/// Parses `text` with the given thread count into a fresh graph; fails the
/// test if the parse errors.
Graph ParseWith(const std::string& text, uint32_t threads, ParseStats* stats,
                bool strict = true) {
  Graph g;
  ParseOptions options;
  options.strict = strict;
  options.num_threads = threads;
  Status st = NTriplesParser::ParseString(text, &g, stats, options);
  EXPECT_TRUE(st.ok()) << "threads=" << threads << ": " << st.ToString();
  return g;
}

/// Asserts the full byte-identity contract between a sequential and a
/// parallel load of the same input.
void ExpectIdenticalLoads(const Graph& seq, const ParseStats& seq_stats,
                          const Graph& par, const ParseStats& par_stats,
                          const std::string& label) {
  // Same triples with the same TermIds in the same insertion order, per
  // component — this is id-for-id equality, stronger than isomorphism.
  EXPECT_EQ(seq.data(), par.data()) << label;
  EXPECT_EQ(seq.types(), par.types()) << label;
  EXPECT_EQ(seq.schema(), par.schema()) << label;
  // Same dense id assignment: every id decodes to the same term text.
  ASSERT_EQ(seq.dict().size(), par.dict().size()) << label;
  // Serialized output is the end-to-end contract (decode + order).
  EXPECT_EQ(NTriplesWriter::ToString(seq), NTriplesWriter::ToString(par))
      << label;
  // Stats and diagnostics match counter-for-counter (chunks may differ).
  EXPECT_EQ(seq_stats.lines, par_stats.lines) << label;
  EXPECT_EQ(seq_stats.triples, par_stats.triples) << label;
  EXPECT_EQ(seq_stats.duplicates, par_stats.duplicates) << label;
  EXPECT_EQ(seq_stats.skipped, par_stats.skipped) << label;
  EXPECT_EQ(seq_stats.diagnostics, par_stats.diagnostics) << label;
}

class ParallelLoadWallTest : public ::testing::TestWithParam<Dataset> {};

TEST_P(ParallelLoadWallTest, ByteIdenticalAcrossThreadCounts) {
  const std::string input = MakeInput(GetParam());
  ParseStats seq_stats;
  Graph seq = ParseWith(input, 1, &seq_stats);

  for (uint32_t threads : kThreadCounts) {
    ParseStats par_stats;
    Graph par = ParseWith(input, threads, &par_stats);
    ExpectIdenticalLoads(seq, seq_stats, par, par_stats,
                         "t" + std::to_string(threads));
  }
}

// Every summary kind built from a parallel load matches the one built from
// the sequential load — the graphs are id-identical, so the summaries must
// be too; this guards the contract end-to-end through the summarizer.
TEST_P(ParallelLoadWallTest, SummariesIdenticalFromParallelLoad) {
  const std::string input = MakeInput(GetParam());
  Graph seq = ParseWith(input, 1, nullptr);
  Graph par = ParseWith(input, 4, nullptr);
  for (summary::SummaryKind kind :
       {summary::SummaryKind::kWeak, summary::SummaryKind::kStrong,
        summary::SummaryKind::kTypedWeak, summary::SummaryKind::kTypedStrong,
        summary::SummaryKind::kTypeBased,
        summary::SummaryKind::kBisimulation}) {
    // Summarization mints ids into each graph's dictionary; both sides run
    // the kinds in the same order, so their dictionaries stay in lockstep.
    summary::SummaryResult s = summary::Summarize(seq, kind);
    summary::SummaryResult p = summary::Summarize(par, kind);
    EXPECT_EQ(NTriplesWriter::ToString(s.graph),
              NTriplesWriter::ToString(p.graph))
        << summary::SummaryKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, ParallelLoadWallTest,
                         ::testing::Values(Dataset::kBsbm, Dataset::kLubm,
                                           Dataset::kPaper, Dataset::kHetero),
                         [](const auto& info) {
                           return DatasetName(info.param);
                         });

// ---------------------------------------------------------------------------
// Pathological chunkings. The chunker only engages above
// kMinChunkBytes (256) per chunk, so inputs repeat until they span several
// chunks at 8 threads (> 2 KiB).

/// Runs the full differential across kThreadCounts for a hand-built input.
void RunDifferential(const std::string& input, bool strict = true) {
  ParseStats seq_stats;
  Graph seq = ParseWith(input, 1, &seq_stats, strict);
  for (uint32_t threads : kThreadCounts) {
    ParseStats par_stats;
    Graph par = ParseWith(input, threads, &par_stats, strict);
    ExpectIdenticalLoads(seq, seq_stats, par, par_stats,
                         "t" + std::to_string(threads));
  }
}

std::string Line(int i, const char* tail = "") {
  return "<http://s/" + std::to_string(i) + "> <http://p/" +
         std::to_string(i % 7) + "> <http://o/" + std::to_string(i % 13) +
         "> ." + tail;
}

TEST(ParallelLoadChunkingTest, CrlfLineEndings) {
  std::string input;
  for (int i = 0; i < 200; ++i) input += Line(i) + "\r\n";
  RunDifferential(input);
}

TEST(ParallelLoadChunkingTest, NoTrailingNewline) {
  std::string input;
  for (int i = 0; i < 200; ++i) input += Line(i) + "\n";
  input += Line(200);  // final line without '\n'
  RunDifferential(input);
}

TEST(ParallelLoadChunkingTest, LongLinesStraddleChunkBounds) {
  // Literal payloads of ~1 KiB guarantee chunk probes land mid-line, so the
  // boundary scan must walk to the next '\n' well past the naive cut.
  std::string input;
  for (int i = 0; i < 32; ++i) {
    input += "<http://s/" + std::to_string(i) + "> <http://p/v> \"" +
             std::string(1024, 'a' + (i % 26)) + "\" .\n";
  }
  RunDifferential(input);
}

TEST(ParallelLoadChunkingTest, CommentsAndBlanksAtChunkBounds) {
  // Alternate triples with comment/blank runs so some chunks start (or
  // consist entirely of) non-triple lines; `lines` must still sum exactly.
  std::string input;
  for (int i = 0; i < 150; ++i) {
    input += Line(i) + "\n";
    input += "# comment " + std::to_string(i) + "\n";
    input += "\n";
    input += "   \n";
  }
  RunDifferential(input);
}

TEST(ParallelLoadChunkingTest, DuplicatesAcrossChunks) {
  // The same triple appears in distant regions of the file; dedup happens
  // at replay, so the duplicate count must match the sequential stream.
  std::string input;
  for (int rep = 0; rep < 4; ++rep) {
    for (int i = 0; i < 80; ++i) input += Line(i) + "\n";
  }
  ParseStats stats;
  Graph g = ParseWith(input, 4, &stats);
  EXPECT_EQ(stats.triples, 320u);
  EXPECT_EQ(stats.duplicates, 240u);
  EXPECT_EQ(g.NumTriples(), 80u);
  RunDifferential(input);
}

TEST(ParallelLoadChunkingTest, LenientDiagnosticsKeepGlobalLineNumbers) {
  // Malformed lines scattered through the file: lenient mode must report
  // identical "line N:" diagnostics (global numbering) at every thread
  // count, and more malformed lines than the cap must still count.
  std::string input;
  int malformed = 0;
  for (int i = 1; i <= 400; ++i) {
    if (i % 11 == 0) {
      input += "this is not a triple\n";
      ++malformed;
    } else {
      input += Line(i) + "\n";
    }
  }
  ASSERT_GT(malformed, static_cast<int>(ParseStats::kMaxDiagnostics));
  ParseStats stats;
  ParseWith(input, 4, &stats, /*strict=*/false);
  EXPECT_EQ(stats.skipped, static_cast<uint64_t>(malformed));
  ASSERT_EQ(stats.diagnostics.size(), ParseStats::kMaxDiagnostics);
  // First malformed line is global line 11.
  EXPECT_EQ(stats.diagnostics[0].substr(0, 8), "line 11:");
  RunDifferential(input, /*strict=*/false);
}

TEST(ParallelLoadChunkingTest, StrictErrorReportsFirstGlobalLine) {
  // Two malformed lines; strict mode must fail on the FIRST one in stream
  // order even when a later chunk hits its own error earlier in wall time.
  std::string input;
  for (int i = 1; i <= 300; ++i) {
    input += (i == 97 || i == 233) ? "broken line\n" : Line(i) + "\n";
  }
  Graph seq;
  Status seq_st = NTriplesParser::ParseString(input, &seq);
  ASSERT_FALSE(seq_st.ok());
  EXPECT_NE(seq_st.message().find("line 97:"), std::string::npos)
      << seq_st.ToString();
  for (uint32_t threads : kThreadCounts) {
    Graph par;
    ParseOptions options;
    options.num_threads = threads;
    ParseStats stats;
    Status st = NTriplesParser::ParseString(input, &par, &stats, options);
    ASSERT_FALSE(st.ok()) << "t" << threads;
    EXPECT_EQ(st.ToString(), seq_st.ToString()) << "t" << threads;
    // Stats reflect progress up to the failing line, like the sequential
    // parse: 96 good triples before line 97.
    EXPECT_EQ(stats.triples, 96u) << "t" << threads;
  }
}

TEST(ParallelLoadChunkingTest, CancelledExecContextAborts) {
  std::string input;
  for (int i = 0; i < 2000; ++i) input += Line(i) + "\n";
  util::ExecContext ctx;
  ctx.Cancel();
  Graph g;
  ParseOptions options;
  options.exec = &ctx;
  options.num_threads = 4;
  Status st = NTriplesParser::ParseString(input, &g, nullptr, options);
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
}

TEST(ParallelLoadChunkingTest, MaxLineBytesEnforcedInChunks) {
  std::string input;
  for (int i = 0; i < 100; ++i) input += Line(i) + "\n";
  input += "<http://s/x> <http://p/v> \"" + std::string(4096, 'x') + "\" .\n";
  for (int i = 100; i < 200; ++i) input += Line(i) + "\n";
  ParseOptions base;
  base.strict = false;
  base.max_line_bytes = 512;
  ParseStats seq_stats;
  Graph seq;
  ASSERT_TRUE(
      NTriplesParser::ParseString(input, &seq, &seq_stats, base).ok());
  EXPECT_EQ(seq_stats.skipped, 1u);
  for (uint32_t threads : kThreadCounts) {
    ParseOptions options = base;
    options.num_threads = threads;
    ParseStats par_stats;
    Graph par;
    ASSERT_TRUE(
        NTriplesParser::ParseString(input, &par, &par_stats, options).ok());
    ExpectIdenticalLoads(seq, seq_stats, par, par_stats,
                         "t" + std::to_string(threads));
  }
}

// ---------------------------------------------------------------------------
// Failpoints: the two new load failpoints must surface their injected
// status through the parallel pipeline in chunk order.

class ParallelLoadFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!util::FaultInjection::compiled_in()) {
      GTEST_SKIP() << "failpoints compiled out";
    }
  }
  void TearDown() override {
    if (util::FaultInjection::compiled_in()) util::FaultInjection::Clear();
  }
};

TEST_F(ParallelLoadFailpointTest, ChunkFailpointAbortsParallelLoad) {
  util::FaultInjection::Arm("load:chunk", Status::IOError("injected chunk"));
  std::string input;
  for (int i = 0; i < 500; ++i) input += Line(i) + "\n";
  Graph g;
  ParseOptions options;
  options.num_threads = 4;
  Status st = NTriplesParser::ParseString(input, &g, nullptr, options);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_GE(util::FaultInjection::HitCount("load:chunk"), 1u);
}

TEST_F(ParallelLoadFailpointTest, DictMergeFailpointAbortsParallelLoad) {
  util::FaultInjection::Arm("load:dict-merge",
                            Status::IOError("injected merge"));
  std::string input;
  for (int i = 0; i < 500; ++i) input += Line(i) + "\n";
  Graph g;
  ParseOptions options;
  options.num_threads = 4;
  Status st = NTriplesParser::ParseString(input, &g, nullptr, options);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_EQ(util::FaultInjection::HitCount("load:dict-merge"), 1u);
}

// ---------------------------------------------------------------------------
// Parallel Freeze differential: permutations and statistics must match the
// sequential Freeze() at every thread count.

namespace {
void ExpectStatsEqual(const store::TableStats& a, const store::TableStats& b,
                      const std::string& label) {
  EXPECT_EQ(a.num_triples(), b.num_triples()) << label;
  EXPECT_EQ(a.num_distinct_subjects(), b.num_distinct_subjects()) << label;
  EXPECT_EQ(a.num_distinct_predicates(), b.num_distinct_predicates()) << label;
  EXPECT_EQ(a.num_distinct_objects(), b.num_distinct_objects()) << label;
  ASSERT_EQ(a.by_predicate().size(), b.by_predicate().size()) << label;
  for (const auto& [p, ps] : a.by_predicate()) {
    const store::PredicateStats* other = b.predicate(p);
    ASSERT_NE(other, nullptr) << label << " p=" << p;
    EXPECT_EQ(ps.count, other->count) << label << " p=" << p;
    EXPECT_EQ(ps.distinct_subjects, other->distinct_subjects)
        << label << " p=" << p;
    EXPECT_EQ(ps.distinct_objects, other->distinct_objects)
        << label << " p=" << p;
  }
}

std::vector<Triple> SyntheticTriples(size_t n) {
  // Deterministic pseudo-random rows with plenty of equal keys per
  // permutation and sprinkled exact duplicates — the shapes inplace_merge
  // and the unique pass have to get right.
  std::vector<Triple> out;
  out.reserve(n);
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    Triple t{static_cast<TermId>(x % 577 + 1),
             static_cast<TermId>((x >> 16) % 13 + 1),
             static_cast<TermId>((x >> 32) % 991 + 1)};
    out.push_back(t);
    if (i % 19 == 0) out.push_back(t);  // exact duplicate
  }
  return out;
}
}  // namespace

TEST(ParallelFreezeTest, ByteIdenticalAcrossThreadCounts) {
  const std::vector<Triple> rows = SyntheticTriples(40000);
  store::TripleTable seq;
  seq.AppendAll(rows);
  seq.Freeze();
  for (uint32_t threads : kThreadCounts) {
    store::TripleTable par;
    par.AppendAll(rows);
    par.Freeze(threads);
    const std::string label = "t" + std::to_string(threads);
    for (store::IndexKind kind : {store::IndexKind::kSpo,
                                  store::IndexKind::kPos,
                                  store::IndexKind::kOsp}) {
      auto a = seq.Permutation(kind);
      auto b = par.Permutation(kind);
      ASSERT_EQ(a.size(), b.size()) << label;
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << label;
    }
    ExpectStatsEqual(seq.stats(), par.stats(), label);
  }
}

TEST(ParallelFreezeTest, DatasetTableMatches) {
  // Real dataset shape (BSBM) end-to-end: parallel load + parallel freeze
  // equals sequential load + sequential freeze.
  const std::string input = MakeInput(Dataset::kBsbm);
  Graph seq = ParseWith(input, 1, nullptr);
  Graph par = ParseWith(input, 8, nullptr);
  store::TripleTable t_seq;
  seq.ForEachTriple([&](const Triple& t) { t_seq.Append(t); });
  t_seq.Freeze();
  store::TripleTable t_par;
  par.ForEachTriple([&](const Triple& t) { t_par.Append(t); });
  t_par.Freeze(8);
  ASSERT_EQ(t_seq.size(), t_par.size());
  auto a = t_seq.Permutation(store::IndexKind::kSpo);
  auto b = t_par.Permutation(store::IndexKind::kSpo);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  ExpectStatsEqual(t_seq.stats(), t_par.stats(), "bsbm");
}

}  // namespace
}  // namespace rdfsum::io
