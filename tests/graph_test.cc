#include <gtest/gtest.h>

#include "gen/paper_example.h"
#include "rdf/graph.h"
#include "rdf/graph_stats.h"
#include "rdf/vocabulary.h"

namespace rdfsum {
namespace {

TEST(GraphTest, RoutesTriplesToComponents) {
  Graph g;
  Dictionary& d = g.dict();
  const Vocabulary& v = g.vocab();
  TermId s = d.EncodeIri("s"), p = d.EncodeIri("p"), o = d.EncodeIri("o");
  TermId c1 = d.EncodeIri("C1"), c2 = d.EncodeIri("C2");

  g.Add({s, p, o});
  g.Add({s, v.rdf_type, c1});
  g.Add({c1, v.subclass, c2});
  g.Add({p, v.domain, c1});
  g.Add({p, v.range, c2});
  g.Add({p, v.subproperty, d.EncodeIri("p2")});

  EXPECT_EQ(g.data().size(), 1u);
  EXPECT_EQ(g.types().size(), 1u);
  EXPECT_EQ(g.schema().size(), 4u);
  EXPECT_EQ(g.NumTriples(), 6u);
}

TEST(GraphTest, AddDeduplicates) {
  Graph g;
  TermId s = g.dict().EncodeIri("s"), p = g.dict().EncodeIri("p"),
         o = g.dict().EncodeIri("o");
  EXPECT_TRUE(g.Add({s, p, o}));
  EXPECT_FALSE(g.Add({s, p, o}));
  EXPECT_EQ(g.NumTriples(), 1u);
  EXPECT_TRUE(g.Contains({s, p, o}));
}

TEST(GraphTest, AddTermsAndIris) {
  Graph g;
  EXPECT_TRUE(g.AddIris("http://s", "http://p", "http://o"));
  EXPECT_TRUE(g.AddTerms(Term::Iri("http://s"), Term::Iri("http://p"),
                         Term::Literal("lit")));
  EXPECT_FALSE(g.AddIris("http://s", "http://p", "http://o"));
  EXPECT_EQ(g.data().size(), 2u);
}

TEST(GraphTest, CloneSharesDictionaryCopiesTriples) {
  Graph g;
  g.AddIris("a", "p", "b");
  Graph copy = g.Clone();
  EXPECT_EQ(copy.NumTriples(), 1u);
  EXPECT_EQ(&copy.dict(), &g.dict());
  copy.AddIris("a", "p", "c");
  EXPECT_EQ(copy.NumTriples(), 2u);
  EXPECT_EQ(g.NumTriples(), 1u);
}

TEST(GraphTest, AddAllMerges) {
  Graph g;
  g.AddIris("a", "p", "b");
  Graph other(g.dict_ptr());
  other.AddIris("a", "p", "c");
  other.AddIris("a", "p", "b");
  g.AddAll(other);
  EXPECT_EQ(g.NumTriples(), 2u);
}

TEST(GraphTest, ForEachTripleVisitsAllComponents) {
  gen::BookExample ex = gen::BuildBookExample();
  size_t count = 0;
  ex.graph.ForEachTriple([&](const Triple&) { ++count; });
  EXPECT_EQ(count, ex.graph.NumTriples());
  EXPECT_EQ(count, 9u);  // 4 data + 1 type + 4 schema
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_TRUE(g.Empty());
  EXPECT_EQ(g.NumTriples(), 0u);
  GraphStats st = ComputeGraphStats(g);
  EXPECT_EQ(st.num_nodes, 0u);
  EXPECT_EQ(st.num_edges, 0u);
}

// ---------------------------------------------------------------- stats

TEST(GraphStatsTest, Figure2Counts) {
  gen::Figure2Example ex = gen::BuildFigure2();
  GraphStats st = ComputeGraphStats(ex.graph);
  EXPECT_EQ(st.num_data_edges, 12u);
  EXPECT_EQ(st.num_type_edges, 4u);
  EXPECT_EQ(st.num_schema_edges, 0u);
  EXPECT_EQ(st.num_edges, 16u);
  // Data nodes: r1..r6, a1,a2, t1..t4, e1,e2, c1 = 15.
  EXPECT_EQ(st.num_data_nodes, 15u);
  // Classes: Book, Journal, Spec.
  EXPECT_EQ(st.num_class_nodes, 3u);
  EXPECT_EQ(st.num_nodes, 18u);
  EXPECT_EQ(st.num_distinct_data_properties, 6u);
  EXPECT_EQ(st.num_typed_resources, 4u);   // r1, r2, r5, r6
  EXPECT_EQ(st.num_untyped_resources, 11u);
}

TEST(GraphStatsTest, BookExampleNodeClassification) {
  gen::BookExample ex = gen::BuildBookExample();
  GraphStats st = ComputeGraphStats(ex.graph);
  EXPECT_EQ(st.num_data_edges, 4u);
  EXPECT_EQ(st.num_type_edges, 1u);
  EXPECT_EQ(st.num_schema_edges, 4u);
  // writtenBy appears in ≺sp/←↩d/↪→r subjects; hasAuthor in ≺sp object.
  EXPECT_EQ(st.num_property_nodes, 2u);
  EXPECT_EQ(st.num_class_nodes, 1u);  // only Book is used in a type triple
}

TEST(GraphStatsTest, DataNodesHelper) {
  gen::Figure2Example ex = gen::BuildFigure2();
  auto nodes = DataNodes(ex.graph);
  EXPECT_EQ(nodes.size(), 15u);
  EXPECT_TRUE(nodes.count(ex.r6));  // typed-only resources are data nodes
  EXPECT_FALSE(nodes.count(ex.book));
}

TEST(GraphStatsTest, TypedResourcesHelper) {
  gen::Figure2Example ex = gen::BuildFigure2();
  auto typed = TypedResources(ex.graph);
  EXPECT_EQ(typed.size(), 4u);
  EXPECT_TRUE(typed.count(ex.r1));
  EXPECT_TRUE(typed.count(ex.r6));
  EXPECT_FALSE(typed.count(ex.r3));
}

TEST(GraphStatsTest, ToStringMentionsCounts) {
  gen::Figure2Example ex = gen::BuildFigure2();
  std::string s = ComputeGraphStats(ex.graph).ToString();
  EXPECT_NE(s.find("edges=16"), std::string::npos);
}

// ---------------------------------------------------------------- well-behaved

TEST(WellBehavedTest, AcceptsCleanGraphs) {
  gen::Figure2Example ex = gen::BuildFigure2();
  EXPECT_TRUE(CheckWellBehaved(ex.graph).ok());
  gen::BookExample book = gen::BuildBookExample();
  EXPECT_TRUE(CheckWellBehaved(book.graph).ok());
}

TEST(WellBehavedTest, RejectsClassAsProperty) {
  Graph g;
  Dictionary& d = g.dict();
  TermId s = d.EncodeIri("s"), c = d.EncodeIri("C"), o = d.EncodeIri("o");
  g.Add({s, g.vocab().rdf_type, c});
  g.Add({s, c, o});  // class in property position
  EXPECT_FALSE(CheckWellBehaved(g).ok());
}

TEST(WellBehavedTest, RejectsClassWithDataProperty) {
  Graph g;
  Dictionary& d = g.dict();
  TermId s = d.EncodeIri("s"), c = d.EncodeIri("C"), p = d.EncodeIri("p");
  g.Add({s, g.vocab().rdf_type, c});
  g.Add({c, p, d.EncodeIri("o")});
  EXPECT_FALSE(CheckWellBehaved(g).ok());
}

TEST(WellBehavedTest, RejectsTypedClass) {
  Graph g;
  Dictionary& d = g.dict();
  TermId s = d.EncodeIri("s"), c1 = d.EncodeIri("C1"), c2 = d.EncodeIri("C2");
  g.Add({s, g.vocab().rdf_type, c1});
  g.Add({c1, g.vocab().rdf_type, c2});
  EXPECT_FALSE(CheckWellBehaved(g).ok());
}

TEST(WellBehavedTest, SubclassHierarchyClassesAreKnown) {
  Graph g;
  Dictionary& d = g.dict();
  TermId s = d.EncodeIri("s"), c1 = d.EncodeIri("C1"), c2 = d.EncodeIri("C2");
  TermId p = d.EncodeIri("p");
  g.Add({c1, g.vocab().subclass, c2});
  g.Add({s, p, d.EncodeIri("o")});
  EXPECT_TRUE(CheckWellBehaved(g).ok());
  // c2 only appears in the subclass triple, but it is a class: using it as
  // a data object must be flagged.
  g.Add({s, p, c2});
  EXPECT_FALSE(CheckWellBehaved(g).ok());
}

}  // namespace
}  // namespace rdfsum
