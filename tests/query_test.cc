#include <gtest/gtest.h>

#include "gen/paper_example.h"
#include "query/evaluator.h"
#include "query/sparql_parser.h"
#include "reasoner/saturation.h"

namespace rdfsum::query {
namespace {

// ------------------------------------------------------------------ parser

TEST(SparqlParserTest, SimpleSelect) {
  auto q = ParseSparql(
      "SELECT ?x ?y WHERE { ?x <http://p> ?y . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->distinguished.size(), 2u);
  ASSERT_EQ(q->triples.size(), 1u);
  EXPECT_TRUE(q->triples[0].s.is_var);
  EXPECT_FALSE(q->triples[0].p.is_var);
  EXPECT_EQ(q->triples[0].p.term.lexical, "http://p");
}

TEST(SparqlParserTest, PrefixesExpand) {
  auto q = ParseSparql(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?x WHERE { ?x ex:knows ?y }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->triples[0].p.term.lexical, "http://example.org/knows");
}

TEST(SparqlParserTest, AKeywordIsRdfType) {
  auto q = ParseSparql("SELECT ?x WHERE { ?x a <http://C> }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->triples[0].p.term.lexical,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

TEST(SparqlParserTest, SelectStarCollectsBodyVars) {
  auto q = ParseSparql("SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->distinguished,
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SparqlParserTest, AskIsBoolean) {
  auto q = ParseSparql("ASK WHERE { ?x <http://p> ?y }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinguished.empty());
}

TEST(SparqlParserTest, LiteralsWithTagsParse) {
  auto q = ParseSparql(
      "SELECT ?x WHERE { ?x <http://p> \"val\"@en . ?x <http://q> "
      "\"5\"^^<http://int> }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->triples[0].o.term.language, "en");
  EXPECT_EQ(q->triples[1].o.term.datatype, "http://int");
}

TEST(SparqlParserTest, CommentsIgnored) {
  auto q = ParseSparql(
      "# leading comment\n"
      "SELECT ?x WHERE { ?x <http://p> ?y # trailing\n }");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
}

TEST(SparqlParserTest, RejectsUnsupportedFeatures) {
  EXPECT_TRUE(ParseSparql("SELECT ?x WHERE { OPTIONAL { ?x <p> ?y } }")
                  .status()
                  .IsNotSupported());
  EXPECT_TRUE(ParseSparql("CONSTRUCT { } WHERE { }").status().IsNotSupported());
}

TEST(SparqlParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseSparql("SELECT WHERE { ?x <p> ?y }").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE ?x <p> ?y").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x <p> ?y ").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { }").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?z WHERE { ?x <http://p> ?y }").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x ex:p ?y }").ok());
}

TEST(SparqlParserTest, RejectsLiteralProperty) {
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x \"p\" ?y }").ok());
}

TEST(BgpQueryTest, ToStringRendering) {
  auto q = ParseSparql("SELECT ?x WHERE { ?x <http://p> ?y }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ToString(), "q(?x) :- ?x <http://p> ?y");
}

// ---------------------------------------------------------------- evaluator

class EvalFixture : public ::testing::Test {
 protected:
  EvalFixture() : ex_(gen::BuildBookExample()) {}

  BgpQuery Parse(const std::string& text) {
    auto q = ParseSparql(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  gen::BookExample ex_;
};

TEST_F(EvalFixture, PaperQueryEmptyWithoutSaturation) {
  // §2.1: the hasAuthor query has no answer on explicit triples only.
  BgpQuery q = Parse(
      "PREFIX b: <http://example.org/book/>\n"
      "SELECT ?x3 WHERE { ?x1 b:hasAuthor ?x2 . ?x2 b:hasName ?x3 . "
      "?x1 b:hasTitle \"Le Port des Brumes\" }");
  BgpEvaluator eval(ex_.graph);
  EXPECT_FALSE(eval.ExistsMatch(q));
  auto rows = eval.Evaluate(q);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(EvalFixture, PaperQueryAnswersOnSaturation) {
  BgpQuery q = Parse(
      "PREFIX b: <http://example.org/book/>\n"
      "SELECT ?x3 WHERE { ?x1 b:hasAuthor ?x2 . ?x2 b:hasName ?x3 . "
      "?x1 b:hasTitle \"Le Port des Brumes\" }");
  Graph sat = reasoner::Saturate(ex_.graph);
  BgpEvaluator eval(sat);
  auto rows = eval.Evaluate(q);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].lexical, "G. Simenon");
}

TEST_F(EvalFixture, TypePatternAfterSaturation) {
  BgpQuery q = Parse(
      "PREFIX b: <http://example.org/book/>\n"
      "SELECT ?x WHERE { ?x a b:Publication }");
  BgpEvaluator explicit_only(ex_.graph);
  EXPECT_FALSE(explicit_only.ExistsMatch(q));
  Graph sat = reasoner::Saturate(ex_.graph);
  BgpEvaluator saturated(sat);
  EXPECT_TRUE(saturated.ExistsMatch(q));
}

TEST_F(EvalFixture, ConstantNotInDictionaryMeansEmpty) {
  BgpQuery q = Parse("SELECT ?x WHERE { ?x <http://never/seen> ?y }");
  BgpEvaluator eval(ex_.graph);
  EXPECT_FALSE(eval.ExistsMatch(q));
  EXPECT_EQ(eval.CountEmbeddings(q), 0u);
}

TEST_F(EvalFixture, RepeatedVariableMustBindConsistently) {
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("http://p");
  g.Add({d.EncodeIri("http://a"), p, d.EncodeIri("http://a")});
  g.Add({d.EncodeIri("http://b"), p, d.EncodeIri("http://c")});
  BgpQuery q = Parse("SELECT ?x WHERE { ?x <http://p> ?x }");
  BgpEvaluator eval(g);
  auto rows = eval.Evaluate(q);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].lexical, "http://a");
}

TEST_F(EvalFixture, JoinAcrossPatterns) {
  gen::Figure2Example fig = gen::BuildFigure2();
  BgpQuery q = Parse(
      "PREFIX f: <http://example.org/fig2/>\n"
      "SELECT ?r ?v WHERE { ?a f:reviewed ?r . ?r f:author ?v }");
  BgpEvaluator eval(fig.graph);
  auto rows = eval.Evaluate(q);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);  // a1 reviewed r4, r4 author a2
  EXPECT_EQ((*rows)[0][0].lexical, "http://example.org/fig2/r4");
  EXPECT_EQ((*rows)[0][1].lexical, "http://example.org/fig2/a2");
}

TEST_F(EvalFixture, DistinctProjection) {
  gen::Figure2Example fig = gen::BuildFigure2();
  // All subjects having a title: r1, r2, r4, r5 (deduplicated projection).
  BgpQuery q = Parse(
      "PREFIX f: <http://example.org/fig2/>\n"
      "SELECT ?s WHERE { ?s f:title ?t }");
  BgpEvaluator eval(fig.graph);
  auto rows = eval.Evaluate(q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
}

TEST_F(EvalFixture, LimitStopsEarly) {
  gen::Figure2Example fig = gen::BuildFigure2();
  BgpQuery q = Parse(
      "PREFIX f: <http://example.org/fig2/>\n"
      "SELECT ?s WHERE { ?s f:title ?t }");
  BgpEvaluator eval(fig.graph);
  auto rows = eval.Evaluate(q, /*limit=*/2);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(EvalFixture, CountEmbeddingsCountsAllMatches) {
  gen::Figure2Example fig = gen::BuildFigure2();
  BgpQuery q = Parse(
      "PREFIX f: <http://example.org/fig2/>\n"
      "SELECT ?s WHERE { ?s f:editor ?e }");
  BgpEvaluator eval(fig.graph);
  EXPECT_EQ(eval.CountEmbeddings(q), 3u);  // r2-e1, r3-e2, r5-e2
  auto rows = eval.Evaluate(q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(EvalFixture, BooleanAsk) {
  gen::Figure2Example fig = gen::BuildFigure2();
  BgpQuery yes = Parse(
      "PREFIX f: <http://example.org/fig2/>\n"
      "ASK WHERE { ?s f:comment ?c }");
  BgpQuery no = Parse(
      "PREFIX f: <http://example.org/fig2/>\n"
      "ASK WHERE { ?s f:comment ?c . ?c f:comment ?d }");
  BgpEvaluator eval(fig.graph);
  EXPECT_TRUE(eval.ExistsMatch(yes));
  EXPECT_FALSE(eval.ExistsMatch(no));
  auto rows = eval.Evaluate(yes);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);  // one empty row = true
  EXPECT_TRUE((*rows)[0].empty());
}

}  // namespace
}  // namespace rdfsum::query
