// The summary-based cardinality estimator: the Proposition-1 soundness
// bounds (estimate 0 iff provably empty, >= 1 whenever a summary embedding
// exists), exactness on single per-property patterns, and its integration
// into the kSummary planner mode.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "gen/hetero.h"
#include "gen/lubm.h"
#include "gen/paper_example.h"
#include "query/evaluator.h"
#include "query/rbgp.h"
#include "query/sparql_parser.h"
#include "summary/cardinality.h"
#include "summary/summarizer.h"
#include "util/random.h"

namespace rdfsum::summary {
namespace {

using query::BgpEvaluator;
using query::BgpQuery;
using query::GenerateRbgpQuery;
using query::ParseSparql;
using query::TriplePatternQ;

BgpQuery MustParse(const std::string& text) {
  auto q = ParseSparql(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

class CardinalityTest : public ::testing::Test {
 protected:
  CardinalityTest()
      : g_(gen::GenerateLubm([] {
          gen::LubmOptions opt;
          opt.num_universities = 1;
          return opt;
        }())),
        summary_(Summarize(g_, SummaryKind::kWeak)),
        estimator_(g_, summary_) {}

  Graph g_;
  SummaryResult summary_;
  CardinalityEstimator estimator_;
};

TEST_F(CardinalityTest, SinglePropertyPatternIsExact) {
  // The multiplicities of one predicate's summary edges partition its
  // triples, so the single-pattern sum is the exact count.
  BgpEvaluator eval(g_);
  for (const char* prop : {"advisor", "takesCourse", "worksFor", "name"}) {
    BgpQuery q = MustParse("SELECT ?s WHERE { ?s <http://lubm.example.org/" +
                           std::string(prop) + "> ?o }");
    double est = estimator_.EstimatePatternCount(q.triples[0]);
    EXPECT_DOUBLE_EQ(est, static_cast<double>(eval.CountEmbeddings(q)))
        << prop;
    CardinalityEstimate whole = estimator_.Estimate(q);
    EXPECT_DOUBLE_EQ(whole.estimate, est) << prop;
  }
}

TEST_F(CardinalityTest, NonEmptyRbgpQueriesEstimateAtLeastOne) {
  // GenerateRbgpQuery samples an embedding witness, so every query is
  // non-empty on g_ — by representativeness the estimate may never be 0,
  // and the clamp guarantees >= 1.
  Random rng(23);
  for (int i = 0; i < 40; ++i) {
    BgpQuery q = GenerateRbgpQuery(g_, rng);
    if (q.triples.empty()) continue;
    CardinalityEstimate est = estimator_.Estimate(q);
    EXPECT_GE(est.estimate, 1.0) << q.ToString();
  }
}

TEST_F(CardinalityTest, ZeroEstimateImpliesActuallyEmpty) {
  BgpEvaluator eval(g_);
  Random rng(29);
  int zero_checked = 0;
  for (int i = 0; i < 40; ++i) {
    BgpQuery q = GenerateRbgpQuery(g_, rng);
    if (q.triples.size() < 2) continue;
    // Break the query: retarget one pattern's property to one that exists
    // but never chains this way, then check the contrapositive of
    // Proposition 1 on whatever becomes empty.
    BgpQuery broken = q;
    broken.triples[0].p =
        query::PatternTerm::Const(Term::Iri("http://lubm.example.org/headOf"));
    CardinalityEstimate est = estimator_.Estimate(broken);
    if (est.estimate == 0.0) {
      ++zero_checked;
      EXPECT_EQ(eval.CountEmbeddings(broken), 0u) << broken.ToString();
    }
  }
  // The mutation must have produced at least a few provably-empty queries,
  // otherwise this test checks nothing.
  EXPECT_GT(zero_checked, 0);
}

TEST_F(CardinalityTest, UnknownConstantEstimatesZero) {
  BgpQuery q = MustParse(
      "SELECT ?s WHERE { ?s <http://lubm.example.org/neverUsed> ?o }");
  EXPECT_DOUBLE_EQ(estimator_.Estimate(q).estimate, 0.0);
  EXPECT_DOUBLE_EQ(estimator_.EstimatePatternCount(q.triples[0]), 0.0);
}

TEST_F(CardinalityTest, ExtentSizesSumToMappedNodes) {
  uint64_t total = 0;
  std::unordered_set<TermId> summary_nodes;
  for (const auto& [node, summary_node] : summary_.node_map) {
    (void)node;
    summary_nodes.insert(summary_node);
  }
  for (TermId sn : summary_nodes) total += estimator_.ExtentSize(sn);
  EXPECT_EQ(total, summary_.node_map.size());
  // Nodes the summary never minted report extent 1 (schema, classes).
  EXPECT_EQ(estimator_.ExtentSize(kInvalidTermId), 1u);
}

TEST_F(CardinalityTest, JoinEstimateIsDampedByExtents) {
  // A 2-pattern chain must not estimate as the plain product of the two
  // pattern counts (unless every join class is a singleton).
  BgpQuery chain = MustParse(
      "PREFIX l: <http://lubm.example.org/>\n"
      "SELECT ?x WHERE { ?x l:advisor ?a . ?a l:teacherOf ?c }");
  double product =
      estimator_.EstimatePatternCount(chain.triples[0]) *
      estimator_.EstimatePatternCount(chain.triples[1]);
  CardinalityEstimate joint = estimator_.Estimate(chain);
  EXPECT_GT(joint.estimate, 0.0);
  EXPECT_LE(joint.estimate, product);
}

TEST_F(CardinalityTest, EstimatorOutlivesItsSummaryResult) {
  // The estimator is self-contained: destroy the SummaryResult it was
  // built from and keep estimating.
  auto scoped = std::make_unique<SummaryResult>(
      Summarize(g_, SummaryKind::kStrong));
  CardinalityEstimator est(g_, *scoped);
  scoped.reset();
  BgpQuery q = MustParse(
      "SELECT ?s WHERE { ?s <http://lubm.example.org/advisor> ?o }");
  EXPECT_GE(est.Estimate(q).estimate, 1.0);
}

TEST(CardinalityOptionsTest, BudgetTruncationIsReported) {
  gen::HeteroOptions opt;
  opt.num_nodes = 120;
  opt.type_probability = 0.0;  // all-singleton-ish structure: big summary
  Graph g = gen::GenerateHetero(opt);
  SummaryResult s = Summarize(g, SummaryKind::kBisimulation);
  CardinalityEstimatorOptions copt;
  copt.max_summary_embeddings = 2;
  CardinalityEstimator est(g, s, copt);
  // An all-variable pattern has one summary embedding per summary edge —
  // far more than 2.
  BgpQuery q;
  q.distinguished = {"s"};
  TriplePatternQ t;
  t.s = query::PatternTerm::Var("s");
  t.p = query::PatternTerm::Var("p");
  t.o = query::PatternTerm::Var("o");
  q.triples.push_back(t);
  CardinalityEstimate ce = est.Estimate(q);
  EXPECT_TRUE(ce.truncated);
  EXPECT_GE(ce.estimate, 1.0);
}

TEST_F(CardinalityTest, ProbeBudgetExhaustionNeverFakesEmptiness) {
  // A probe budget so tight the enumeration dies before completing a
  // single embedding: the estimate must fall back to the per-pattern
  // upper bound, never to the (provably-empty) 0 verdict.
  CardinalityEstimatorOptions opt;
  opt.max_summary_probes = 1;
  CardinalityEstimator strangled(g_, summary_, opt);
  BgpQuery chain = MustParse(
      "PREFIX l: <http://lubm.example.org/>\n"
      "SELECT ?x WHERE { ?x l:advisor ?a . ?a l:teacherOf ?c }");
  CardinalityEstimate est = strangled.Estimate(chain);
  EXPECT_TRUE(est.truncated);
  EXPECT_GE(est.estimate, 1.0);  // the query is non-empty on g_
  // A pattern that cannot match any summary edge still proves emptiness
  // even under the starved budget: l:Professor is interned (as a class)
  // but never occurs as a predicate, so the fallback product hits 0.
  BgpQuery empty = MustParse(
      "PREFIX l: <http://lubm.example.org/>\n"
      "SELECT ?x WHERE { ?x l:advisor ?a . ?a l:Professor ?c }");
  EXPECT_DOUBLE_EQ(strangled.Estimate(empty).estimate, 0.0);
}

// -------------------------------------------------- planner integration

TEST(SummaryPlannerTest, EstimatorDrivenPlansReturnIdenticalRows) {
  gen::BookExample book = gen::BuildBookExample();
  SummaryResult s = Summarize(book.graph, SummaryKind::kWeak);
  CardinalityEstimator est(book.graph, s);
  query::EvaluatorOptions options;
  options.planner = query::PlannerMode::kSummary;
  options.estimator = &est;
  BgpEvaluator with_estimator(book.graph, options);
  BgpEvaluator plain(book.graph);
  Random rng(7);
  for (int i = 0; i < 25; ++i) {
    BgpQuery q = GenerateRbgpQuery(book.graph, rng);
    if (q.triples.empty()) continue;
    auto expected = plain.Evaluate(q, SIZE_MAX, query::PlannerMode::kNaive);
    auto actual = with_estimator.Evaluate(q);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(actual->size(), expected->size()) << q.ToString();
    query::QueryPlan plan = with_estimator.Plan(q);
    EXPECT_EQ(plan.mode, query::PlannerMode::kSummary);
    EXPECT_EQ(plan.steps.size(), q.triples.size());
  }
}

}  // namespace
}  // namespace rdfsum::summary
