#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "gen/bsbm.h"
#include "rdf/graph.h"
#include "store/database.h"
#include "store/triple_table.h"

namespace rdfsum {
namespace {

using store::Database;
using store::TriplePattern;
using store::TripleTable;

TripleTable MakeTable() {
  TripleTable t;
  t.Append({1, 10, 2});
  t.Append({1, 10, 3});
  t.Append({1, 11, 2});
  t.Append({2, 10, 3});
  t.Append({3, 12, 1});
  t.Freeze();
  return t;
}

TEST(TripleTableTest, FreezeSortsAndDedups) {
  TripleTable t;
  t.Append({2, 1, 1});
  t.Append({1, 1, 1});
  t.Append({1, 1, 1});
  t.Freeze();
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(std::is_sorted(t.rows().begin(), t.rows().end()));
}

TEST(TripleTableTest, ScanFullTable) {
  TripleTable t = MakeTable();
  EXPECT_EQ(t.Scan({}).size(), 5u);
}

TEST(TripleTableTest, ScanBySubject) {
  TripleTable t = MakeTable();
  auto rows = t.Scan({.s = 1, .p = std::nullopt, .o = std::nullopt});
  EXPECT_EQ(rows.size(), 3u);
  for (const Triple& r : rows) EXPECT_EQ(r.s, 1u);
}

TEST(TripleTableTest, ScanBySubjectProperty) {
  TripleTable t = MakeTable();
  auto rows = t.Scan({.s = 1, .p = 10, .o = std::nullopt});
  EXPECT_EQ(rows.size(), 2u);
}

TEST(TripleTableTest, ScanExact) {
  TripleTable t = MakeTable();
  EXPECT_EQ(t.Scan({.s = 1, .p = 10, .o = 3}).size(), 1u);
  EXPECT_EQ(t.Scan({.s = 1, .p = 10, .o = 9}).size(), 0u);
}

TEST(TripleTableTest, ScanByProperty) {
  TripleTable t = MakeTable();
  auto rows = t.Scan({.s = std::nullopt, .p = 10, .o = std::nullopt});
  EXPECT_EQ(rows.size(), 3u);
}

TEST(TripleTableTest, ScanByPropertyObject) {
  TripleTable t = MakeTable();
  auto rows = t.Scan({.s = std::nullopt, .p = 10, .o = 3});
  EXPECT_EQ(rows.size(), 2u);
}

TEST(TripleTableTest, ScanByObject) {
  TripleTable t = MakeTable();
  auto rows = t.Scan({.s = std::nullopt, .p = std::nullopt, .o = 2});
  EXPECT_EQ(rows.size(), 2u);
}

TEST(TripleTableTest, ScanBySubjectObject) {
  TripleTable t = MakeTable();
  auto rows = t.Scan({.s = 1, .p = std::nullopt, .o = 2});
  EXPECT_EQ(rows.size(), 2u);
}

TEST(TripleTableTest, MatchesAndCount) {
  TripleTable t = MakeTable();
  EXPECT_TRUE(t.Matches({.s = std::nullopt, .p = 12, .o = std::nullopt}));
  EXPECT_FALSE(t.Matches({.s = std::nullopt, .p = 99, .o = std::nullopt}));
  EXPECT_EQ(t.Count({.s = 1, .p = std::nullopt, .o = std::nullopt}), 3u);
}

TEST(TripleTableTest, Contains) {
  TripleTable t = MakeTable();
  EXPECT_TRUE(t.Contains({3, 12, 1}));
  EXPECT_FALSE(t.Contains({3, 12, 2}));
}

TEST(TripleTableTest, AppendUnfreezes) {
  TripleTable t = MakeTable();
  EXPECT_TRUE(t.frozen());
  t.Append({9, 9, 9});
  EXPECT_FALSE(t.frozen());
  t.Freeze();
  EXPECT_TRUE(t.Contains({9, 9, 9}));
}

TEST(TripleTableTest, EmptyTable) {
  TripleTable t;
  t.Freeze();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Scan({}).size(), 0u);
  EXPECT_FALSE(t.Matches({}));
}

TEST(TripleTableTest, ChooseIndexCoversEveryBoundSet) {
  using store::IndexKind;
  // Every subset of bound positions must be a key prefix of the chosen
  // permutation — that is the invariant making Count/Matches O(log n).
  EXPECT_EQ(TripleTable::ChooseIndex(false, false, false), IndexKind::kSpo);
  EXPECT_EQ(TripleTable::ChooseIndex(true, false, false), IndexKind::kSpo);
  EXPECT_EQ(TripleTable::ChooseIndex(true, true, false), IndexKind::kSpo);
  EXPECT_EQ(TripleTable::ChooseIndex(true, true, true), IndexKind::kSpo);
  EXPECT_EQ(TripleTable::ChooseIndex(false, true, false), IndexKind::kPos);
  EXPECT_EQ(TripleTable::ChooseIndex(false, true, true), IndexKind::kPos);
  EXPECT_EQ(TripleTable::ChooseIndex(false, false, true), IndexKind::kOsp);
  EXPECT_EQ(TripleTable::ChooseIndex(true, false, true), IndexKind::kOsp);
}

TEST(TripleTableTest, CountAgreesWithScanOnEveryBoundSet) {
  gen::BsbmOptions opt;
  opt.num_products = 30;
  Graph g = gen::GenerateBsbm(opt);
  TripleTable t;
  g.ForEachTriple([&](const Triple& tr) { t.Append(tr); });
  t.Freeze();
  // Exhaustively cross-check the O(log n) range count against a counted
  // scan for all 8 bound-position combinations over sampled triples.
  size_t sampled = 0;
  for (const Triple& probe : t.rows()) {
    if (sampled++ % 97 != 0) continue;
    for (int mask = 0; mask < 8; ++mask) {
      TriplePattern q;
      if (mask & 1) q.s = probe.s;
      if (mask & 2) q.p = probe.p;
      if (mask & 4) q.o = probe.o;
      size_t scanned = 0;
      t.Scan(q, [&](const Triple& m) {
        EXPECT_TRUE((!q.s || m.s == *q.s) && (!q.p || m.p == *q.p) &&
                    (!q.o || m.o == *q.o));
        ++scanned;
        return true;
      });
      EXPECT_EQ(t.Count(q), scanned) << "mask=" << mask;
      EXPECT_EQ(t.Matches(q), scanned > 0) << "mask=" << mask;
      EXPECT_GE(scanned, 1u) << "probe triple must match its own pattern";
    }
  }
  ASSERT_GT(sampled, 0u);
}

TEST(TableStatsTest, AggregatesMatchManualCounts) {
  TripleTable t = MakeTable();
  // MakeTable rows: (1,10,2) (1,10,3) (1,11,2) (2,10,3) (3,12,1).
  const store::TableStats& st = t.stats();
  EXPECT_EQ(st.num_triples(), 5u);
  EXPECT_EQ(st.num_distinct_subjects(), 3u);   // 1, 2, 3
  EXPECT_EQ(st.num_distinct_predicates(), 3u); // 10, 11, 12
  EXPECT_EQ(st.num_distinct_objects(), 3u);    // 1, 2, 3

  const store::PredicateStats* p10 = st.predicate(10);
  ASSERT_NE(p10, nullptr);
  EXPECT_EQ(p10->count, 3u);
  EXPECT_EQ(p10->distinct_subjects, 2u);  // 1, 2
  EXPECT_EQ(p10->distinct_objects, 2u);   // 2, 3
  EXPECT_DOUBLE_EQ(t.stats().AvgTriplesPerSubject(10), 1.5);

  const store::PredicateStats* p12 = st.predicate(12);
  ASSERT_NE(p12, nullptr);
  EXPECT_EQ(p12->count, 1u);
  EXPECT_EQ(p12->distinct_subjects, 1u);
  EXPECT_EQ(p12->distinct_objects, 1u);

  EXPECT_EQ(st.predicate(99), nullptr);
  EXPECT_DOUBLE_EQ(st.AvgTriplesPerSubject(99), 0.0);
}

TEST(TableStatsTest, RecomputedOnRefreeze) {
  TripleTable t = MakeTable();
  t.Append({7, 77, 7});
  t.Freeze();
  EXPECT_EQ(t.stats().num_triples(), 6u);
  ASSERT_NE(t.stats().predicate(77), nullptr);
  EXPECT_EQ(t.stats().predicate(77)->count, 1u);
}

TEST(TableStatsTest, AppendAfterFreezeInvalidatesStatsEagerly) {
  TripleTable t = MakeTable();
  const uint64_t frozen_triples = t.stats().num_triples();
  ASSERT_EQ(frozen_triples, 5u);
  // The staleness invariant (src/query/README.md): an un-frozen table must
  // never serve the old counts. Unfreeze() clears the stats in every build
  // mode, not just where the assert fires — observable via Unfreeze() +
  // refreeze of an *unchanged* row set, which must still agree, and via
  // refreeze after a real append, which must reflect the new rows.
  t.Unfreeze();
  EXPECT_FALSE(t.frozen());
  t.Freeze();
  EXPECT_EQ(t.stats().num_triples(), frozen_triples);

  t.Append({42, 43, 44});
  EXPECT_FALSE(t.frozen());
  t.Freeze();
  EXPECT_EQ(t.stats().num_triples(), frozen_triples + 1);
  ASSERT_NE(t.stats().predicate(43), nullptr);
  EXPECT_EQ(t.stats().predicate(43)->distinct_subjects, 1u);
}

// ---------------------------------------------------------------- cursors

TEST(ScanCursorTest, WalksTheMatchRangeAndReportsRemaining) {
  TripleTable t = MakeTable();
  store::ScanCursor c = t.OpenScan({1, std::nullopt, std::nullopt});
  EXPECT_EQ(c.remaining(), 3u);
  Triple triple;
  ASSERT_TRUE(c.Next(&triple));
  EXPECT_EQ(triple, (Triple{1, 10, 2}));
  EXPECT_EQ(c.remaining(), 2u);
  ASSERT_TRUE(c.Next(&triple));
  ASSERT_TRUE(c.Next(&triple));
  EXPECT_EQ(triple, (Triple{1, 11, 2}));
  EXPECT_TRUE(c.done());
  EXPECT_FALSE(c.Next(&triple));  // exhaustion is stable
  EXPECT_FALSE(c.Next(&triple));
}

TEST(ScanCursorTest, EmptyRangeAndDefaultCursor) {
  TripleTable t = MakeTable();
  store::ScanCursor none = t.OpenScan({99, std::nullopt, std::nullopt});
  Triple triple;
  EXPECT_TRUE(none.done());
  EXPECT_FALSE(none.Next(&triple));
  store::ScanCursor def;
  EXPECT_FALSE(def.Next(&triple));
}

TEST(ScanCursorTest, AgreesWithScanOnEveryBoundSet) {
  TripleTable t = MakeTable();
  const TriplePattern patterns[] = {
      {},
      {1, std::nullopt, std::nullopt},
      {std::nullopt, 10, std::nullopt},
      {std::nullopt, std::nullopt, 3},
      {1, 10, std::nullopt},
      {std::nullopt, 10, 3},
      {1, std::nullopt, 2},
      {1, 10, 3},
  };
  for (const TriplePattern& p : patterns) {
    std::vector<Triple> expected = t.Scan(p);
    std::vector<Triple> got;
    store::ScanCursor c = t.OpenScan(p);
    Triple triple;
    while (c.Next(&triple)) got.push_back(triple);
    EXPECT_EQ(got, expected);
  }
}

// ---------------------------------------------------------------- database

TEST(DatabaseTest, FromGraphKeepsTriples) {
  Graph g;
  g.AddIris("http://a", "http://p", "http://b");
  g.AddTerms(Term::Iri("http://a"), Term::Iri("http://q"),
             Term::Literal("v"));
  Database db = Database::FromGraph(g);
  EXPECT_EQ(db.num_triples(), 2u);
}

TEST(DatabaseTest, SaveLoadRoundTrip) {
  gen::BsbmOptions opt;
  opt.num_products = 50;
  Graph g = gen::GenerateBsbm(opt);
  Database db = Database::FromGraph(g);

  std::string path = testing::TempDir() + "/bsbm.rdfsumdb";
  ASSERT_TRUE(db.Save(path).ok());

  auto loaded = Database::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_triples(), db.num_triples());

  // The reloaded graph must contain exactly the same decoded triples.
  Graph g2 = loaded->ToGraph();
  EXPECT_EQ(g2.NumTriples(), g.NumTriples());
  size_t checked = 0;
  g.ForEachTriple([&](const Triple& t) {
    if (checked++ % 37 != 0) return;  // spot-check a sample
    Triple mapped{g2.dict().Lookup(g.dict().Decode(t.s)),
                  g2.dict().Lookup(g.dict().Decode(t.p)),
                  g2.dict().Lookup(g.dict().Decode(t.o))};
    EXPECT_NE(mapped.s, kInvalidTermId);
    EXPECT_TRUE(g2.Contains(mapped));
  });
}

TEST(DatabaseTest, LoadMissingFileFails) {
  auto r = Database::Load("/nonexistent/db.bin");
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(DatabaseTest, LoadRejectsGarbage) {
  std::string path = testing::TempDir() + "/garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a database";
  }
  auto r = Database::Load(path);
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(DatabaseTest, LoadRejectsTruncated) {
  Graph g;
  g.AddIris("http://a", "http://p", "http://b");
  Database db = Database::FromGraph(g);
  std::string path = testing::TempDir() + "/trunc.bin";
  ASSERT_TRUE(db.Save(path).ok());
  // Truncate the file in the middle.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  auto r = Database::Load(path);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace rdfsum
