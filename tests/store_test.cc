#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "gen/bsbm.h"
#include "rdf/graph.h"
#include "store/database.h"
#include "store/triple_table.h"

namespace rdfsum {
namespace {

using store::Database;
using store::TriplePattern;
using store::TripleTable;

TripleTable MakeTable() {
  TripleTable t;
  t.Append({1, 10, 2});
  t.Append({1, 10, 3});
  t.Append({1, 11, 2});
  t.Append({2, 10, 3});
  t.Append({3, 12, 1});
  t.Freeze();
  return t;
}

TEST(TripleTableTest, FreezeSortsAndDedups) {
  TripleTable t;
  t.Append({2, 1, 1});
  t.Append({1, 1, 1});
  t.Append({1, 1, 1});
  t.Freeze();
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(std::is_sorted(t.rows().begin(), t.rows().end()));
}

TEST(TripleTableTest, ScanFullTable) {
  TripleTable t = MakeTable();
  EXPECT_EQ(t.Scan({}).size(), 5u);
}

TEST(TripleTableTest, ScanBySubject) {
  TripleTable t = MakeTable();
  auto rows = t.Scan({.s = 1, .p = std::nullopt, .o = std::nullopt});
  EXPECT_EQ(rows.size(), 3u);
  for (const Triple& r : rows) EXPECT_EQ(r.s, 1u);
}

TEST(TripleTableTest, ScanBySubjectProperty) {
  TripleTable t = MakeTable();
  auto rows = t.Scan({.s = 1, .p = 10, .o = std::nullopt});
  EXPECT_EQ(rows.size(), 2u);
}

TEST(TripleTableTest, ScanExact) {
  TripleTable t = MakeTable();
  EXPECT_EQ(t.Scan({.s = 1, .p = 10, .o = 3}).size(), 1u);
  EXPECT_EQ(t.Scan({.s = 1, .p = 10, .o = 9}).size(), 0u);
}

TEST(TripleTableTest, ScanByProperty) {
  TripleTable t = MakeTable();
  auto rows = t.Scan({.s = std::nullopt, .p = 10, .o = std::nullopt});
  EXPECT_EQ(rows.size(), 3u);
}

TEST(TripleTableTest, ScanByPropertyObject) {
  TripleTable t = MakeTable();
  auto rows = t.Scan({.s = std::nullopt, .p = 10, .o = 3});
  EXPECT_EQ(rows.size(), 2u);
}

TEST(TripleTableTest, ScanByObject) {
  TripleTable t = MakeTable();
  auto rows = t.Scan({.s = std::nullopt, .p = std::nullopt, .o = 2});
  EXPECT_EQ(rows.size(), 2u);
}

TEST(TripleTableTest, ScanBySubjectObject) {
  TripleTable t = MakeTable();
  auto rows = t.Scan({.s = 1, .p = std::nullopt, .o = 2});
  EXPECT_EQ(rows.size(), 2u);
}

TEST(TripleTableTest, MatchesAndCount) {
  TripleTable t = MakeTable();
  EXPECT_TRUE(t.Matches({.s = std::nullopt, .p = 12, .o = std::nullopt}));
  EXPECT_FALSE(t.Matches({.s = std::nullopt, .p = 99, .o = std::nullopt}));
  EXPECT_EQ(t.Count({.s = 1, .p = std::nullopt, .o = std::nullopt}), 3u);
}

TEST(TripleTableTest, Contains) {
  TripleTable t = MakeTable();
  EXPECT_TRUE(t.Contains({3, 12, 1}));
  EXPECT_FALSE(t.Contains({3, 12, 2}));
}

TEST(TripleTableTest, AppendUnfreezes) {
  TripleTable t = MakeTable();
  EXPECT_TRUE(t.frozen());
  t.Append({9, 9, 9});
  EXPECT_FALSE(t.frozen());
  t.Freeze();
  EXPECT_TRUE(t.Contains({9, 9, 9}));
}

TEST(TripleTableTest, EmptyTable) {
  TripleTable t;
  t.Freeze();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Scan({}).size(), 0u);
  EXPECT_FALSE(t.Matches({}));
}

// ---------------------------------------------------------------- database

TEST(DatabaseTest, FromGraphKeepsTriples) {
  Graph g;
  g.AddIris("http://a", "http://p", "http://b");
  g.AddTerms(Term::Iri("http://a"), Term::Iri("http://q"),
             Term::Literal("v"));
  Database db = Database::FromGraph(g);
  EXPECT_EQ(db.num_triples(), 2u);
}

TEST(DatabaseTest, SaveLoadRoundTrip) {
  gen::BsbmOptions opt;
  opt.num_products = 50;
  Graph g = gen::GenerateBsbm(opt);
  Database db = Database::FromGraph(g);

  std::string path = testing::TempDir() + "/bsbm.rdfsumdb";
  ASSERT_TRUE(db.Save(path).ok());

  auto loaded = Database::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_triples(), db.num_triples());

  // The reloaded graph must contain exactly the same decoded triples.
  Graph g2 = loaded->ToGraph();
  EXPECT_EQ(g2.NumTriples(), g.NumTriples());
  size_t checked = 0;
  g.ForEachTriple([&](const Triple& t) {
    if (checked++ % 37 != 0) return;  // spot-check a sample
    Triple mapped{g2.dict().Lookup(g.dict().Decode(t.s)),
                  g2.dict().Lookup(g.dict().Decode(t.p)),
                  g2.dict().Lookup(g.dict().Decode(t.o))};
    EXPECT_NE(mapped.s, kInvalidTermId);
    EXPECT_TRUE(g2.Contains(mapped));
  });
}

TEST(DatabaseTest, LoadMissingFileFails) {
  auto r = Database::Load("/nonexistent/db.bin");
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(DatabaseTest, LoadRejectsGarbage) {
  std::string path = testing::TempDir() + "/garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a database";
  }
  auto r = Database::Load(path);
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(DatabaseTest, LoadRejectsTruncated) {
  Graph g;
  g.AddIris("http://a", "http://p", "http://b");
  Database db = Database::FromGraph(g);
  std::string path = testing::TempDir() + "/trunc.bin";
  ASSERT_TRUE(db.Save(path).ok());
  // Truncate the file in the middle.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  auto r = Database::Load(path);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace rdfsum
