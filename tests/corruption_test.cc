// The corruption wall (satellite of the governance PR): serialized
// summaries are truncated at every prefix length and bit-flipped at every
// byte; LoadSummary must return kCorruption (or kIOError for an unopenable
// file) — never crash, never read past the buffer, never allocate more
// than a small multiple of the file size. The allocation bound is enforced
// structurally (every count is validated against the remaining payload
// before reserve/resize); the adversarial-count test below pins it by
// crafting a checksum-valid file with an absurd count and requiring a fast
// clean failure.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>

#include "gen/paper_example.h"
#include "summary/persistence.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {
namespace {

std::string SerializedSummary() {
  gen::Figure2Example ex = gen::BuildFigure2();
  SummaryOptions options;
  options.record_members = true;
  SummaryResult r = Summarize(ex.graph, SummaryKind::kWeak, options);
  const std::string path = testing::TempDir() + "/corruption_base.rdfsum";
  EXPECT_TRUE(SaveSummary(r, path).ok());
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// FNV-1a-64 over version + kind + payload, kept in sync with
// persistence.cc so tests can re-seal a deliberately corrupted payload
// behind a valid checksum.
uint64_t Fnv1a64(const char* data, size_t size, uint64_t h) {
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

// magic(9) + version(4) + kind(4) + payload size(8) + checksum(8).
constexpr size_t kHeaderBytes = 9 + 4 + 4 + 8 + 8;

void SealChecksum(std::string* bytes) {
  constexpr uint64_t kSeed = 1469598103934665603ULL;
  uint64_t h = Fnv1a64(bytes->data() + 9, 8, kSeed);  // version + kind
  h = Fnv1a64(bytes->data() + kHeaderBytes, bytes->size() - kHeaderBytes, h);
  std::memcpy(bytes->data() + kHeaderBytes - 8, &h, sizeof(h));
}

TEST(CorruptionTest, TruncationAtEveryLengthIsRejected) {
  const std::string bytes = SerializedSummary();
  ASSERT_GT(bytes.size(), kHeaderBytes);
  const std::string path = testing::TempDir() + "/trunc.rdfsum";
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteBytes(path, bytes.substr(0, len));
    auto r = LoadSummary(path);
    ASSERT_FALSE(r.ok()) << "accepted a file truncated to " << len
                         << " of " << bytes.size() << " bytes";
    ASSERT_TRUE(r.status().IsCorruption() || r.status().IsIOError())
        << "len " << len << ": " << r.status().ToString();
  }
  // The untruncated file still loads: the loop above proved rejection, this
  // proves the harness didn't just break the file wholesale.
  WriteBytes(path, bytes);
  EXPECT_TRUE(LoadSummary(path).ok());
}

TEST(CorruptionTest, EveryBitFlipIsDetected) {
  const std::string bytes = SerializedSummary();
  const std::string path = testing::TempDir() + "/flip.rdfsum";
  // One flipped bit per byte position: the checksum catches payload flips,
  // the header validation catches header flips. (One bit per byte keeps the
  // wall under a second; flipping all 8 adds nothing — the checksum treats
  // every nonzero delta alike.)
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ (1 << (i % 8)));
    WriteBytes(path, mutated);
    auto r = LoadSummary(path);
    ASSERT_FALSE(r.ok()) << "accepted a bit flip at byte " << i;
    ASSERT_TRUE(r.status().IsCorruption()) << "byte " << i << ": "
                                           << r.status().ToString();
  }
}

TEST(CorruptionTest, AppendedJunkIsRejected) {
  const std::string bytes = SerializedSummary();
  const std::string path = testing::TempDir() + "/junk.rdfsum";
  WriteBytes(path, bytes + "extra");
  auto r = LoadSummary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

// An adversarial file whose checksum is valid but whose leading count field
// claims ~2^61 terms. The loader must reject it from the count-vs-remaining
// bound without attempting the corresponding allocation (which would be
// ~2^64 bytes of remap table).
TEST(CorruptionTest, OversizedCountFailsBeforeAllocating) {
  std::string bytes = SerializedSummary();
  ASSERT_GT(bytes.size(), kHeaderBytes + 8);
  // Overwrite the payload's first u64 (the term count) in place, then
  // re-seal the checksum so the corruption gate lets the count through.
  uint64_t huge = 1ULL << 61;
  std::memcpy(bytes.data() + kHeaderBytes, &huge, sizeof(huge));
  SealChecksum(&bytes);
  const std::string path = testing::TempDir() + "/hugecount.rdfsum";
  WriteBytes(path, bytes);
  auto r = LoadSummary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

// The header's payload-size field is the allocation driver; a value that
// disagrees with the bytes actually on disk must be rejected before the
// payload buffer is sized from it.
TEST(CorruptionTest, DeclaredPayloadSizeMustMatchFile) {
  std::string bytes = SerializedSummary();
  uint64_t lying_size = bytes.size() * 1000;
  std::memcpy(bytes.data() + 9 + 4 + 4, &lying_size, sizeof(lying_size));
  const std::string path = testing::TempDir() + "/lyingsize.rdfsum";
  WriteBytes(path, bytes);
  auto r = LoadSummary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

TEST(CorruptionTest, EmptyFileAndBadMagic) {
  const std::string path = testing::TempDir() + "/empty.rdfsum";
  WriteBytes(path, "");
  EXPECT_TRUE(LoadSummary(path).status().IsCorruption());
  WriteBytes(path, std::string(kHeaderBytes, 'Z'));
  EXPECT_TRUE(LoadSummary(path).status().IsCorruption());
}

}  // namespace
}  // namespace rdfsum::summary
