// End-to-end wall for graceful degradation under resource budgets: the
// governed hash join degrades to an index nested-loop join when the build
// side would exceed the memory budget — byte-identical rows to the
// HashJoinMode::kNever stream — and the kSummary planner falls back to the
// greedy order when the estimator's enumeration budget trips, producing
// exactly the kGreedy plan. Row budgets meter delivered answers.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "gen/bsbm.h"
#include "query/cursor.h"
#include "query/evaluator.h"
#include "query/plan.h"
#include "query/sparql_parser.h"
#include "rdf/graph.h"
#include "summary/cardinality.h"
#include "summary/summarizer.h"
#include "util/exec_context.h"

namespace rdfsum::query {
namespace {

const Graph& TestGraph() {
  static const Graph* g = [] {
    gen::BsbmOptions opt;
    opt.num_products = 300;
    return new Graph(gen::GenerateBsbm(opt));
  }();
  return *g;
}

BgpQuery MustParse(const std::string& text) {
  auto q = ParseSparql(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

std::vector<IdRow> Drain(Cursor& c) {
  std::vector<IdRow> out;
  IdRow row;
  while (c.Next(&row)) out.push_back(row);
  return out;
}

// A join query fat enough for the planner to pick a hash join on BSBM.
const char* kJoinQuery =
    "SELECT ?p ?f WHERE { ?p <http://bsbm.example.org/producer> ?f . "
    "?p <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
    "<http://bsbm.example.org/Product> . }";

TEST(GovernanceTest, MemoryBudgetDegradesHashJoinByteIdentically) {
  const Graph& g = TestGraph();
  BgpQuery q = MustParse(kJoinQuery);
  BgpEvaluator eval(g);

  // Reference: the never-hash stream, ungoverned.
  CursorOptions nlj_options;
  nlj_options.hash_join = HashJoinMode::kNever;
  auto nlj = eval.Open(q, nlj_options);
  ASSERT_TRUE(nlj.ok());
  std::vector<IdRow> expected = Drain(**nlj);
  ASSERT_TRUE((*nlj)->status().ok());
  ASSERT_FALSE(expected.empty());

  // Governed: force hash joins, but with a memory budget so tight the build
  // side cannot fit — every hash join must degrade, not fail.
  util::ExecContext::Limits limits;
  limits.memory_budget_bytes = 1024;
  util::ExecContext ctx(limits);
  CursorOptions gov_options;
  gov_options.hash_join = HashJoinMode::kAlways;
  gov_options.exec = &ctx;
  auto gov = eval.Open(q, gov_options);
  ASSERT_TRUE(gov.ok());
  std::vector<IdRow> actual = Drain(**gov);
  EXPECT_TRUE((*gov)->status().ok()) << (*gov)->status().ToString();
  EXPECT_EQ(expected, actual);
}

TEST(GovernanceTest, UngovernedHashAndDegradedAgreeOnEveryBudget) {
  // Sweep budgets across the degrade threshold: row *sets* must agree with
  // the hash path everywhere (order may differ between hash and NLJ, so
  // compare the kNever stream, which degraded execution reproduces
  // byte-identically, against the sorted hash stream).
  const Graph& g = TestGraph();
  BgpQuery q = MustParse(kJoinQuery);
  BgpEvaluator eval(g);

  CursorOptions hash_options;
  hash_options.hash_join = HashJoinMode::kAlways;
  auto hash = eval.Open(q, hash_options);
  ASSERT_TRUE(hash.ok());
  std::vector<IdRow> hash_rows = Drain(**hash);
  ASSERT_TRUE((*hash)->status().ok());
  std::sort(hash_rows.begin(), hash_rows.end());

  for (uint64_t budget : {512u, 4096u, 1u << 16, 1u << 24}) {
    util::ExecContext::Limits limits;
    limits.memory_budget_bytes = budget;
    util::ExecContext ctx(limits);
    CursorOptions options;
    options.hash_join = HashJoinMode::kAlways;
    options.exec = &ctx;
    auto cur = eval.Open(q, options);
    ASSERT_TRUE(cur.ok());
    std::vector<IdRow> rows = Drain(**cur);
    EXPECT_TRUE((*cur)->status().ok())
        << "budget " << budget << ": " << (*cur)->status().ToString();
    std::sort(rows.begin(), rows.end());
    EXPECT_EQ(rows, hash_rows) << "budget " << budget;
    // Whatever was charged during execution was released by teardown-time
    // accounting or refunded on degrade; nothing leaks into the context.
    (*cur).reset();
    EXPECT_EQ(ctx.memory_used(), 0u) << "budget " << budget;
  }
}

TEST(GovernanceTest, RowBudgetMetersDeliveredAnswers) {
  const Graph& g = TestGraph();
  BgpQuery q = MustParse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }");
  BgpEvaluator eval(g);
  util::ExecContext::Limits limits;
  limits.max_rows = 7;
  util::ExecContext ctx(limits);
  CursorOptions options;
  options.exec = &ctx;
  auto cur = eval.Open(q, options);
  ASSERT_TRUE(cur.ok());
  std::vector<IdRow> rows = Drain(**cur);
  EXPECT_EQ(rows.size(), 7u);
  EXPECT_TRUE((*cur)->status().IsResourceExhausted())
      << (*cur)->status().ToString();
}

TEST(GovernanceTest, RowBudgetDoesNotChargeOffsetRows) {
  // The budget meters *delivered* answers: OFFSET-skipped rows are free.
  const Graph& g = TestGraph();
  BgpQuery q = MustParse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }");
  BgpEvaluator eval(g);
  util::ExecContext::Limits limits;
  limits.max_rows = 5;
  util::ExecContext ctx(limits);
  CursorOptions options;
  options.limit = 5;
  options.offset = 100;
  options.exec = &ctx;
  auto cur = eval.Open(q, options);
  ASSERT_TRUE(cur.ok());
  std::vector<IdRow> rows = Drain(**cur);
  EXPECT_EQ(rows.size(), 5u);
  EXPECT_TRUE((*cur)->status().ok()) << (*cur)->status().ToString();
}

TEST(GovernanceTest, EvaluateSurfacesGovernanceStatus) {
  const Graph& g = TestGraph();
  BgpQuery q = MustParse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }");
  BgpEvaluator eval(g);
  util::ExecContext::Limits limits;
  limits.max_rows = 3;
  util::ExecContext ctx(limits);
  CursorOptions options;
  options.exec = &ctx;
  auto rows = eval.Evaluate(q, options);
  ASSERT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsResourceExhausted())
      << rows.status().ToString();
}

// ---- planner fallback ---------------------------------------------------

TEST(GovernanceTest, SummaryPlannerFallsBackToExactGreedyPlan) {
  const Graph& g = TestGraph();
  summary::SummaryResult model =
      summary::Summarize(g, summary::SummaryKind::kWeak);
  // An estimator whose enumeration budget is one probe: every non-trivial
  // estimate truncates, so kSummary planning cannot trust its numbers.
  summary::CardinalityEstimatorOptions est_options;
  est_options.max_summary_embeddings = 1;
  est_options.max_summary_probes = 1;
  summary::CardinalityEstimator estimator(g, model, est_options);

  BgpQuery q = MustParse(
      "SELECT ?p ?f ?t WHERE { ?p <http://bsbm.example.org/producer> ?f . "
      "?p <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t . }");
  EvaluatorOptions options;
  options.planner = PlannerMode::kSummary;
  options.estimator = &estimator;
  BgpEvaluator eval(g, options);

  QueryPlan summary_plan = eval.Plan(q);
  EXPECT_TRUE(summary_plan.summary_fallback);
  EXPECT_EQ(summary_plan.mode, PlannerMode::kSummary);

  QueryPlan greedy_plan = eval.Plan(q, PlannerMode::kGreedy);
  ASSERT_EQ(summary_plan.steps.size(), greedy_plan.steps.size());
  for (size_t i = 0; i < greedy_plan.steps.size(); ++i) {
    EXPECT_EQ(summary_plan.steps[i].pattern, greedy_plan.steps[i].pattern)
        << "step " << i;
    EXPECT_EQ(summary_plan.steps[i].index, greedy_plan.steps[i].index)
        << "step " << i;
    EXPECT_EQ(summary_plan.steps[i].use_hash_join,
              greedy_plan.steps[i].use_hash_join)
        << "step " << i;
  }
  EXPECT_NE(summary_plan.ToString().find("fallback=greedy"),
            std::string::npos);
}

TEST(GovernanceTest, HealthyEstimatorDoesNotTriggerFallback) {
  const Graph& g = TestGraph();
  summary::SummaryResult model =
      summary::Summarize(g, summary::SummaryKind::kWeak);
  summary::CardinalityEstimator estimator(g, model);
  BgpQuery q = MustParse(kJoinQuery);
  EvaluatorOptions options;
  options.planner = PlannerMode::kSummary;
  options.estimator = &estimator;
  BgpEvaluator eval(g, options);
  QueryPlan plan = eval.Plan(q);
  EXPECT_FALSE(plan.summary_fallback);
}

}  // namespace
}  // namespace rdfsum::query
