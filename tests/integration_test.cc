#include <gtest/gtest.h>

#include <cstdio>

#include "gen/bsbm.h"
#include "gen/lubm.h"
#include "io/ntriples_parser.h"
#include "io/ntriples_writer.h"
#include "query/evaluator.h"
#include "query/rbgp.h"
#include "rdf/graph_stats.h"
#include "reasoner/saturation.h"
#include "store/database.h"
#include "summary/isomorphism.h"
#include "summary/property_checks.h"
#include "summary/summarizer.h"

namespace rdfsum {
namespace {

using summary::AreSummariesIsomorphic;
using summary::CheckHomomorphism;
using summary::kAllQuotientKinds;
using summary::SummaryKind;
using summary::SummaryKindName;
using summary::SummaryResult;
using summary::Summarize;

// End-to-end: generate -> serialize -> parse -> store -> load -> saturate ->
// summarize -> verify. This is the full pipeline of the paper's §6 tooling.
TEST(IntegrationTest, FullPipelineOnBsbm) {
  gen::BsbmOptions opt;
  opt.num_products = 200;
  Graph original = gen::GenerateBsbm(opt);

  // Serialize to N-Triples and parse back (the paper's loading path).
  std::string nt_path = testing::TempDir() + "/pipeline.nt";
  ASSERT_TRUE(io::NTriplesWriter::WriteFile(original, nt_path).ok());
  Graph parsed;
  io::ParseStats pstats;
  ASSERT_TRUE(io::NTriplesParser::ParseFile(nt_path, &parsed, &pstats).ok());
  EXPECT_EQ(parsed.NumTriples(), original.NumTriples());
  std::remove(nt_path.c_str());

  // Store to the binary database and load back (the PostgreSQL substitute).
  std::string db_path = testing::TempDir() + "/pipeline.rdfsumdb";
  ASSERT_TRUE(store::Database::FromGraph(parsed).Save(db_path).ok());
  auto loaded = store::Database::Load(db_path);
  ASSERT_TRUE(loaded.ok());
  Graph g = loaded->ToGraph();
  EXPECT_EQ(g.NumTriples(), original.NumTriples());
  std::remove(db_path.c_str());

  // Summarize all kinds and verify structural invariants.
  GraphStats gs = ComputeGraphStats(g);
  for (SummaryKind kind : kAllQuotientKinds) {
    SummaryResult r = Summarize(g, kind);
    EXPECT_TRUE(CheckHomomorphism(g, r).ok()) << SummaryKindName(kind);
    EXPECT_LT(r.stats.num_all_edges, gs.num_edges / 10)
        << SummaryKindName(kind) << " summary should be much smaller";
    EXPECT_EQ(r.graph.schema().size(), g.schema().size());
  }
}

TEST(IntegrationTest, SummariesOrderedBySizeOnBsbm) {
  // Figure 11's qualitative shape: |W| <= |S| (data nodes), both far below
  // |TW| ~ |TS|.
  gen::BsbmOptions opt;
  opt.num_products = 300;
  Graph g = gen::GenerateBsbm(opt);

  SummaryResult w = Summarize(g, SummaryKind::kWeak);
  SummaryResult s = Summarize(g, SummaryKind::kStrong);
  SummaryResult tw = Summarize(g, SummaryKind::kTypedWeak);
  SummaryResult ts = Summarize(g, SummaryKind::kTypedStrong);

  EXPECT_LE(w.stats.num_data_nodes, s.stats.num_data_nodes);
  // The paper reports a 5x-50x gap at 10M-100M triples; at this small scale
  // the class-set count (which drives TW/TS) is proportionally smaller, so
  // assert a 4x floor here and measure the real factors in bench_fig11.
  EXPECT_GE(tw.stats.num_data_nodes, 4 * w.stats.num_data_nodes);
  // S is itself larger than W, so the TS/S factor sits lower at small scale.
  EXPECT_GE(ts.stats.num_data_nodes, 3 * s.stats.num_data_nodes);
  // Class nodes dominate data nodes for the type-first summaries (§7).
  EXPECT_GT(w.stats.num_class_nodes, w.stats.num_data_nodes);
}

TEST(IntegrationTest, CompactnessOnBsbm) {
  gen::BsbmOptions opt;
  opt.num_products = 400;
  Graph g = gen::GenerateBsbm(opt);
  for (SummaryKind kind : kAllQuotientKinds) {
    SummaryResult r = Summarize(g, kind);
    double ratio = static_cast<double>(r.stats.num_all_edges) /
                   static_cast<double>(g.NumTriples());
    EXPECT_LT(ratio, 0.2) << SummaryKindName(kind);
  }
}

TEST(IntegrationTest, WeakShortcutEqualsDirectOnLubm) {
  gen::LubmOptions opt;
  opt.num_universities = 1;
  Graph g = gen::GenerateLubm(opt);
  Graph g_inf = reasoner::Saturate(g);
  SummaryResult direct = Summarize(g_inf, SummaryKind::kWeak);
  SummaryResult shortcut =
      summary::SummarizeSaturatedViaShortcut(g, SummaryKind::kWeak);
  EXPECT_TRUE(AreSummariesIsomorphic(direct.graph, shortcut.graph));
}

TEST(IntegrationTest, QueryPruningScenario) {
  // The query-optimization use case: a query with no match on the summary
  // has no match on the graph (contrapositive of representativeness) —
  // evaluate cheap emptiness checks on the summary first.
  gen::BsbmOptions opt;
  opt.num_products = 150;
  Graph g = gen::GenerateBsbm(opt);
  Graph g_inf = reasoner::Saturate(g);
  SummaryResult w = Summarize(g, SummaryKind::kWeak);
  Graph w_inf = reasoner::Saturate(w.graph);

  query::BgpEvaluator on_graph(g_inf);
  query::BgpEvaluator on_summary(w_inf);

  Random rng(1234);
  uint32_t represented = 0, total = 40;
  for (uint32_t i = 0; i < total; ++i) {
    query::BgpQuery q = query::GenerateRbgpQuery(g_inf, rng);
    if (q.triples.empty()) continue;
    // Nonempty on G∞ by construction; must be nonempty on the summary.
    EXPECT_TRUE(on_summary.ExistsMatch(q));
    if (on_graph.ExistsMatch(q)) ++represented;
  }
  EXPECT_EQ(represented, total);
}

TEST(IntegrationTest, SummaryOfSummaryPipeline) {
  // Summaries are RDF graphs: they round-trip through the writer/parser and
  // can be summarized again (fixpoint).
  gen::BsbmOptions opt;
  opt.num_products = 100;
  Graph g = gen::GenerateBsbm(opt);
  SummaryResult s = Summarize(g, SummaryKind::kStrong);

  std::string text = io::NTriplesWriter::ToString(s.graph);
  Graph reparsed;
  ASSERT_TRUE(io::NTriplesParser::ParseString(text, &reparsed).ok());
  EXPECT_EQ(reparsed.NumTriples(), s.graph.NumTriples());

  SummaryResult again = Summarize(reparsed, SummaryKind::kStrong);
  EXPECT_EQ(again.graph.NumTriples(), s.graph.NumTriples());
}

TEST(IntegrationTest, StatsConsistency) {
  gen::BsbmOptions opt;
  opt.num_products = 80;
  Graph g = gen::GenerateBsbm(opt);
  for (SummaryKind kind : kAllQuotientKinds) {
    SummaryResult r = Summarize(g, kind);
    GraphStats hs = ComputeGraphStats(r.graph);
    EXPECT_EQ(r.stats.num_all_edges, hs.num_edges);
    EXPECT_EQ(r.stats.num_data_nodes, hs.num_data_nodes);
    EXPECT_EQ(r.stats.num_class_nodes, hs.num_class_nodes);
    EXPECT_EQ(r.stats.num_all_nodes, hs.num_nodes);
  }
}

}  // namespace
}  // namespace rdfsum
