#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "summary/union_find.h"
#include "util/parallel_for.h"

namespace rdfsum::summary {
namespace {

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(5);
  EXPECT_EQ(uf.size(), 5u);
  EXPECT_EQ(uf.NumSets(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(uf.Find(i), i);
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
}

TEST(UnionFindTest, TransitiveUnions) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_EQ(uf.SetSize(0), 4u);
  EXPECT_EQ(uf.SetSize(4), 1u);
}

TEST(UnionFindTest, AddGrows) {
  UnionFind uf;
  uint32_t a = uf.Add();
  uint32_t b = uf.Add(3);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(uf.size(), 4u);
  EXPECT_EQ(uf.NumSets(), 4u);
  uf.Union(0, 3);
  EXPECT_TRUE(uf.Connected(0, 3));
}

TEST(UnionFindTest, PathCompressionKeepsAnswersStable) {
  UnionFind uf(100);
  for (uint32_t i = 1; i < 100; ++i) uf.Union(i - 1, i);
  EXPECT_EQ(uf.NumSets(), 1u);
  uint32_t root = uf.Find(0);
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(uf.Find(i), root);
  EXPECT_EQ(uf.SetSize(42), 100u);
}

TEST(UnionFindTest, ManyInterleavedUnions) {
  UnionFind uf(1000);
  for (uint32_t i = 0; i < 1000; i += 2) {
    if (i + 1 < 1000) uf.Union(i, i + 1);
  }
  EXPECT_EQ(uf.NumSets(), 500u);
  for (uint32_t i = 0; i + 3 < 1000; i += 4) uf.Union(i, i + 2);
  EXPECT_EQ(uf.NumSets(), 250u);
}

// ---- AtomicUnionFind -------------------------------------------------------

TEST(AtomicUnionFindTest, SingletonsInitially) {
  AtomicUnionFind uf(5);
  EXPECT_EQ(uf.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(uf.Find(i), i);
}

TEST(AtomicUnionFindTest, TransitiveUnions) {
  AtomicUnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_EQ(uf.Find(0), uf.Find(3));
  EXPECT_NE(uf.Find(0), uf.Find(4));
}

TEST(AtomicUnionFindTest, RootIsMinimumElementOfSet) {
  // Hooking always points the larger root at the smaller, so after the
  // unions settle every set's root is its minimum element id.
  AtomicUnionFind uf(100);
  for (uint32_t i = 99; i >= 51; --i) uf.Union(i, i - 1);
  for (uint32_t i = 50; i < 100; ++i) EXPECT_EQ(uf.Find(i), 50u);
  for (uint32_t i = 0; i < 50; ++i) EXPECT_EQ(uf.Find(i), i);
}

TEST(AtomicUnionFindTest, ConcurrentUnionsMatchSequential) {
  // Many threads race the same union workload; the resulting partition must
  // equal the sequential UnionFind closure. Also the TSan exercise for the
  // lock-free hook/compress paths.
  constexpr uint32_t kNodes = 4096;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 0; i + 1 < kNodes; i += 2) edges.emplace_back(i, i + 1);
  for (uint32_t i = 0; i + 4 < kNodes; i += 16) edges.emplace_back(i, i + 4);
  for (uint32_t i = 0; i + 64 < kNodes; i += 64) edges.emplace_back(i + 64, i);
  edges.emplace_back(kNodes - 1, 0);

  UnionFind seq(kNodes);
  for (const auto& [a, b] : edges) seq.Union(a, b);

  AtomicUnionFind par(kNodes);
  util::ParallelForRanges(
      8, edges.size(), [&](uint32_t, uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; ++i) {
          par.Union(edges[i].first, edges[i].second);
        }
      });
  // Concurrent compress pass, then compare the partitions.
  std::vector<uint32_t> root(kNodes);
  util::ParallelForRanges(8, kNodes,
                          [&](uint32_t, uint64_t begin, uint64_t end) {
                            for (uint64_t i = begin; i < end; ++i) {
                              root[i] = par.Find(static_cast<uint32_t>(i));
                            }
                          });
  for (uint32_t i = 0; i < kNodes; ++i) {
    for (uint32_t j : {i / 2, i / 3, (i + kNodes / 2) % kNodes}) {
      EXPECT_EQ(root[i] == root[j], seq.Find(i) == seq.Find(j))
          << "i=" << i << " j=" << j;
    }
  }
}

}  // namespace
}  // namespace rdfsum::summary
