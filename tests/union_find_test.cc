#include <gtest/gtest.h>

#include "summary/union_find.h"

namespace rdfsum::summary {
namespace {

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(5);
  EXPECT_EQ(uf.size(), 5u);
  EXPECT_EQ(uf.NumSets(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(uf.Find(i), i);
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
}

TEST(UnionFindTest, TransitiveUnions) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_EQ(uf.SetSize(0), 4u);
  EXPECT_EQ(uf.SetSize(4), 1u);
}

TEST(UnionFindTest, AddGrows) {
  UnionFind uf;
  uint32_t a = uf.Add();
  uint32_t b = uf.Add(3);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(uf.size(), 4u);
  EXPECT_EQ(uf.NumSets(), 4u);
  uf.Union(0, 3);
  EXPECT_TRUE(uf.Connected(0, 3));
}

TEST(UnionFindTest, PathCompressionKeepsAnswersStable) {
  UnionFind uf(100);
  for (uint32_t i = 1; i < 100; ++i) uf.Union(i - 1, i);
  EXPECT_EQ(uf.NumSets(), 1u);
  uint32_t root = uf.Find(0);
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(uf.Find(i), root);
  EXPECT_EQ(uf.SetSize(42), 100u);
}

TEST(UnionFindTest, ManyInterleavedUnions) {
  UnionFind uf(1000);
  for (uint32_t i = 0; i < 1000; i += 2) {
    if (i + 1 < 1000) uf.Union(i, i + 1);
  }
  EXPECT_EQ(uf.NumSets(), 500u);
  for (uint32_t i = 0; i + 3 < 1000; i += 4) uf.Union(i, i + 2);
  EXPECT_EQ(uf.NumSets(), 250u);
}

}  // namespace
}  // namespace rdfsum::summary
