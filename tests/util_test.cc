#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include <atomic>

#include "util/csv.h"
#include "util/parallel_for.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace rdfsum {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, InvalidArgument) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

Status FailsThrough() {
  RDFSUM_RETURN_IF_ERROR(Status::IOError("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThrough().IsIOError());
}

// ---------------------------------------------------------------- StatusOr

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  auto r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
}

TEST(StatusOrTest, HoldsError) {
  auto r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

StatusOr<int> Doubles(int x) {
  RDFSUM_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  auto ok = Doubles(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
  EXPECT_FALSE(Doubles(0).ok());
}

TEST(StatusOrTest, MoveOut) {
  StatusOr<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

// ---------------------------------------------------------------- strings

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitNoSeparator) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("urn:rdfsum:x", "urn:rdfsum:"));
  EXPECT_FALSE(StartsWith("urn", "urn:rdfsum:"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("nt", ".nt"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("SeLeCT"), "select");
}

// ---------------------------------------------------------------- random

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RandomTest, UniformInBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformRange(3, 5));
  EXPECT_EQ(seen, (std::set<uint64_t>{3, 4, 5}));
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyFair) {
  Random rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.5);
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RandomTest, ZipfInBoundsAndSkewed) {
  Random rng(13);
  uint64_t low = 0, total = 10000;
  for (uint64_t i = 0; i < total; ++i) {
    uint64_t v = rng.Zipf(100, 1.0);
    ASSERT_LT(v, 100u);
    if (v < 10) ++low;
  }
  // Zipf(1.0) concentrates mass on small values.
  EXPECT_GT(low, total / 3);
}

TEST(RandomTest, ZipfZeroExponentIsUniformish) {
  Random rng(17);
  uint64_t low = 0, total = 10000;
  for (uint64_t i = 0; i < total; ++i) {
    if (rng.Zipf(100, 0.0) < 10) ++low;
  }
  EXPECT_LT(low, total / 5);
}

TEST(RandomTest, SampleDistinct) {
  Random rng(19);
  auto sample = rng.SampleDistinct(100, 20);
  std::set<uint64_t> set(sample.begin(), sample.end());
  EXPECT_EQ(set.size(), 20u);
  for (uint64_t v : set) EXPECT_LT(v, 100u);
}

TEST(RandomTest, SampleDistinctClampsToN) {
  Random rng(23);
  auto sample = rng.SampleDistinct(5, 50);
  std::set<uint64_t> set(sample.begin(), sample.end());
  EXPECT_EQ(set, (std::set<uint64_t>{0, 1, 2, 3, 4}));
}

// ---------------------------------------------------------------- table

TEST(TablePrinterTest, AsciiAligns) {
  TablePrinter t({"col", "n"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-cell", "22"});
  std::string out = t.ToAscii();
  EXPECT_NE(out.find("| col       | n  |"), std::string::npos);
  EXPECT_NE(out.find("| long-cell | 22 |"), std::string::npos);
}

TEST(TablePrinterTest, CsvEscapes) {
  TablePrinter t({"a", "b"});
  t.AddRow({"x,y", "quote\"inside"});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPad) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  EXPECT_NO_THROW(t.ToAscii());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TimerTest, MeasuresSomething) {
  Timer timer;
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GE(timer.ElapsedMicros(), 0);
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

// ------------------------------------------------------------ ParallelFor

TEST(ParallelForTest, ResolveThreadCountClamps) {
  EXPECT_GE(util::ResolveThreadCount(0, 100), 1u);  // 0 = hardware, >= 1
  EXPECT_EQ(util::ResolveThreadCount(8, 3), 3u);    // never more than work
  EXPECT_EQ(util::ResolveThreadCount(8, 0), 1u);    // empty work -> 1 thread
  EXPECT_EQ(util::ResolveThreadCount(4, 4), 4u);
  // A work-item count past 2^32 must not truncate into the clamp (the bug
  // the old per-call std::min<uint64_t>-into-uint32_t clamp risked).
  EXPECT_EQ(util::ResolveThreadCount(16, (1ull << 33) + 5), 16u);
  // A wrapped-around request is capped, not spawned.
  EXPECT_EQ(util::ResolveThreadCount(0xFFFFFFFFu, 1ull << 33),
            util::kMaxThreads);
}

TEST(ParallelForTest, ShardRangesCoverDisjointly) {
  for (uint64_t total : {0ull, 1ull, 7ull, 64ull, 65ull, 1000ull}) {
    for (uint32_t shards : {1u, 2u, 7u, 16u}) {
      uint64_t expected_begin = 0;
      for (uint32_t s = 0; s < shards; ++s) {
        auto [begin, end] = util::ShardRange(total, s, shards);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(end - begin, total / shards + 1);  // balanced
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, total);
    }
  }
}

TEST(ParallelForTest, RunsEveryShardExactlyOnce) {
  constexpr uint32_t kShards = 7;
  std::atomic<uint32_t> mask{0};
  util::ParallelFor(kShards, [&](uint32_t shard) {
    mask.fetch_or(1u << shard, std::memory_order_relaxed);
  });
  EXPECT_EQ(mask.load(), (1u << kShards) - 1);
}

TEST(ParallelForTest, ZeroThreadsActsAsOne) {
  // 0 is the codebase's "hardware concurrency" sentinel; forwarding it
  // unresolved must not divide by zero in ShardRange.
  uint64_t covered = 0;
  util::ParallelForRanges(0, 17,
                          [&](uint32_t shard, uint64_t begin, uint64_t end) {
                            EXPECT_EQ(shard, 0u);
                            covered += end - begin;
                          });
  EXPECT_EQ(covered, 17u);
}

TEST(ParallelForTest, RangesSumMatchesTotal) {
  constexpr uint64_t kTotal = 12345;
  std::atomic<uint64_t> sum{0};
  util::ParallelForRanges(5, kTotal,
                          [&](uint32_t, uint64_t begin, uint64_t end) {
                            uint64_t local = 0;
                            for (uint64_t i = begin; i < end; ++i) local += i;
                            sum.fetch_add(local, std::memory_order_relaxed);
                          });
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
}

}  // namespace
}  // namespace rdfsum
