// The serving daemon's concurrency wall (run under TSan in CI):
//
//   - byte-identity: rows served over the wire equal a local BgpEvaluator
//     drain of the same image, rendering for rendering;
//   - snapshot swap under load: N client threads hammer queries while the
//     image is RELOADed back and forth between two different graphs — every
//     response must be *entirely* one epoch's answer set, never a torn mix,
//     and nothing may race (the drain invariant);
//   - governance over the wire: timeout, row budget, and client cancel come
//     back as their documented Status codes, never a hang or a silent
//     truncation reported as OK;
//   - admission control: connections beyond workers + queue are refused
//     with kResourceExhausted before HELLO;
//   - plan cache: same-shape queries with different constants hit, and the
//     skeleton-instantiated plan returns identical rows;
//   - summary memoization: one mint per kind per snapshot, reported in
//     STATS.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gen/bsbm.h"
#include "query/evaluator.h"
#include "query/plan.h"
#include "query/sparql_parser.h"
#include "rdf/graph.h"
#include "server/client.h"
#include "server/plan_cache.h"
#include "server/server.h"
#include "server/snapshot.h"
#include "server/wire.h"
#include "store/mmap_store.h"
#include "summary/summary.h"

namespace rdfsum {
namespace {

using server::Client;
using server::QueryRequest;
using server::Server;
using server::ServerOptions;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Freezes a BSBM graph (plus optional extra triples) to a temp image and
/// returns its path.
std::string FreezeBsbm(uint32_t products, const std::string& name,
                       int extra_triples = 0) {
  gen::BsbmOptions opt;
  opt.num_products = products;
  Graph g = gen::GenerateBsbm(opt);
  for (int i = 0; i < extra_triples; ++i) {
    g.AddIris("http://swap.example.org/s" + std::to_string(i),
              "http://swap.example.org/marker",
              "http://swap.example.org/o" + std::to_string(i));
  }
  const std::string path = TempPath(name);
  Status st = store::FreezeGraphToFile(g, path);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return path;
}

/// All rows of `sparql` against the image at `path`, each row rendered the
/// way the server renders it (tab-joined N-Triples), collected as a sorted
/// multiset for order-insensitive comparison.
std::vector<std::string> LocalRows(const std::string& path,
                                   const std::string& sparql) {
  auto store = store::MmapStore::Open(path);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  query::BgpEvaluator eval((*store)->dict(), (*store)->table());
  auto q = query::ParseSparql(sparql);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto cursor = eval.Open(*q);
  EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
  std::vector<std::string> rows;
  query::IdRow encoded;
  while ((*cursor)->Next(&encoded)) {
    std::string line;
    for (const Term& t : eval.Decode(encoded)) {
      if (!line.empty()) line.push_back('\t');
      line += t.ToNTriples();
    }
    rows.push_back(std::move(line));
  }
  EXPECT_TRUE((*cursor)->status().ok()) << (*cursor)->status().ToString();
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Runs `sparql` against a live server, returning tab-joined rows (sorted)
/// and the request's final status.
Status ServedRows(const std::string& host, uint16_t port,
                  const std::string& sparql, QueryRequest req,
                  std::vector<std::string>* rows) {
  auto client = Client::Connect(host, port);
  if (!client.ok()) return client.status();
  Status st = (*client)->Query(
      sparql, req,
      [&](const std::vector<std::string>& cols) {
        std::string line;
        for (const std::string& c : cols) {
          if (!line.empty()) line.push_back('\t');
          line += c;
        }
        rows->push_back(std::move(line));
        return true;
      });
  std::sort(rows->begin(), rows->end());
  return st;
}

constexpr char kAllQuery[] = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }";
constexpr char kMarkerQuery[] =
    "SELECT ?s ?o WHERE { ?s <http://swap.example.org/marker> ?o }";

TEST(ServerTest, ServedRowsAreByteIdenticalToLocalEvaluation) {
  const std::string image = FreezeBsbm(20, "ident.rsb");
  Server server;
  ASSERT_TRUE(server.Start(image).ok());

  const std::string queries[] = {
      kAllQuery,
      "SELECT ?s WHERE { ?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
      " ?t . ?s <http://bsbm.example.org/price> ?p }",
      "SELECT ?p WHERE { ?s ?p ?o }",
  };
  for (const std::string& q : queries) {
    std::vector<std::string> expected = LocalRows(image, q);
    std::vector<std::string> served;
    Status st = ServedRows("127.0.0.1", server.port(), q, {}, &served);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(served, expected) << q;
  }
  server.Stop();
  server.Wait();
}

TEST(ServerTest, ConcurrentReadersRaceSnapshotSwapWithoutTearing) {
  // Image A has no marker triples; image B has 7. A response to the marker
  // query must be exactly A's answer (empty) or exactly B's — the epoch is
  // pinned per request, so a swap mid-drain must never mix them.
  const std::string image_a = FreezeBsbm(15, "swap_a.rsb", 0);
  const std::string image_b = FreezeBsbm(15, "swap_b.rsb", 7);
  const std::vector<std::string> expected_a = LocalRows(image_a, kMarkerQuery);
  const std::vector<std::string> expected_b = LocalRows(image_b, kMarkerQuery);
  ASSERT_TRUE(expected_a.empty());
  ASSERT_EQ(expected_b.size(), 7u);
  const std::vector<std::string> all_a = LocalRows(image_a, kAllQuery);
  const std::vector<std::string> all_b = LocalRows(image_b, kAllQuery);
  ASSERT_NE(all_a, all_b);

  ServerOptions options;
  options.num_workers = 6;
  Server server;
  ASSERT_TRUE(server.Start(image_a, options).ok());
  const uint16_t port = server.port();

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 12;
  std::atomic<int> torn{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const bool marker = (t + i) % 2 == 0;
        std::vector<std::string> rows;
        Status st = ServedRows("127.0.0.1", port,
                               marker ? kMarkerQuery : kAllQuery, {}, &rows);
        if (!st.ok()) {
          failed.fetch_add(1);
          continue;
        }
        const auto& ea = marker ? expected_a : all_a;
        const auto& eb = marker ? expected_b : all_b;
        if (rows != ea && rows != eb) torn.fetch_add(1);
      }
    });
  }
  // Swap epochs continuously under the read load.
  std::thread swapper([&] {
    for (int i = 0; i < 10; ++i) {
      Status st = server.Reload(i % 2 == 0 ? image_b : image_a);
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
  });
  for (std::thread& r : readers) r.join();
  swapper.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(failed.load(), 0);
  EXPECT_GE(server.snapshot()->epoch(), 11u);
  server.Stop();
  server.Wait();
}

TEST(ServerTest, ParallelRequestsRaceReloadAndStayByteIdentical) {
  // ~10K triples so the full-scan query clears the executor's fan-out gate
  // (kParallelMinScanRows) — req.parallelism really engages morsel fan-out
  // on the server, not just the sequential fallback.
  const std::string image_a = FreezeBsbm(300, "par_swap_a.rsb", 0);
  const std::string image_b = FreezeBsbm(300, "par_swap_b.rsb", 7);
  const std::vector<std::string> all_a = LocalRows(image_a, kAllQuery);
  const std::vector<std::string> all_b = LocalRows(image_b, kAllQuery);
  ASSERT_NE(all_a, all_b);

  ServerOptions options;
  options.num_workers = 6;
  options.max_parallelism = 8;
  Server server;
  ASSERT_TRUE(server.Start(image_a, options).ok());
  const uint16_t port = server.port();

  // Order identity over the wire: a 4-way request streams the very same
  // rows, in the same order, as a sequential one (unsorted compare).
  {
    auto collect = [&](uint32_t parallelism) {
      QueryRequest req;
      req.parallelism = parallelism;
      std::vector<std::string> rows;
      auto client = Client::Connect("127.0.0.1", port);
      EXPECT_TRUE(client.ok());
      Status st = (*client)->Query(
          kAllQuery, req, [&](const std::vector<std::string>& cols) {
            std::string line;
            for (const std::string& c : cols) {
              if (!line.empty()) line.push_back('\t');
              line += c;
            }
            rows.push_back(std::move(line));
            return true;
          });
      EXPECT_TRUE(st.ok()) << st.ToString();
      return rows;
    };
    EXPECT_EQ(collect(4), collect(1));
  }

  // Race: 4-way readers against a continuous epoch swapper. Every response
  // must be exactly A's rows or exactly B's — pinned epoch, no tearing,
  // and the fan-out slots release cleanly every time.
  std::atomic<int> torn{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        QueryRequest req;
        req.parallelism = 4;
        std::vector<std::string> rows;
        Status st = ServedRows("127.0.0.1", port, kAllQuery, req, &rows);
        if (!st.ok()) {
          failed.fetch_add(1);
          continue;
        }
        if (rows != all_a && rows != all_b) torn.fetch_add(1);
      }
    });
  }
  std::thread swapper([&] {
    for (int i = 0; i < 10; ++i) {
      Status st = server.Reload(i % 2 == 0 ? image_b : image_a);
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
  });
  for (std::thread& r : readers) r.join();
  swapper.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(failed.load(), 0);

  // The admission pool drained back to full and the stats surfaced the
  // parallel traffic.
  auto client = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("parallel_queries: "), std::string::npos) << *stats;
  EXPECT_NE(stats->find("parallel_slots_free: 6"), std::string::npos)
      << *stats;
  server.Stop();
  server.Wait();
}

TEST(ServerTest, GovernancePropagatesOverTheWire) {
  // ~10K triples: large enough that a full drain of kAllQuery takes many
  // milliseconds of row-frame writes, so a 1-ms deadline below trips
  // mid-query deterministically instead of racing the drain.
  const std::string image = FreezeBsbm(300, "gov.rsb");
  Server server;
  ASSERT_TRUE(server.Start(image).ok());
  const uint16_t port = server.port();

  {
    // Row budget: kResourceExhausted, with at most max_rows rows delivered.
    QueryRequest req;
    req.max_rows = 5;
    std::vector<std::string> rows;
    Status st = ServedRows("127.0.0.1", port, kAllQuery, req, &rows);
    EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
    EXPECT_LE(rows.size(), 5u);
  }
  {
    // Timeout: the deadline expires at a governance poll long before the
    // ~10K-row drain can finish.
    QueryRequest req;
    req.timeout_ms = 1;
    auto client = Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok());
    Status st = (*client)->Query(
        kAllQuery, req, [](const std::vector<std::string>&) { return true; });
    EXPECT_TRUE(st.IsDeadlineExceeded() || st.IsCancelled()) << st.ToString();
  }
  {
    // Client-initiated cancel: row callback returns false -> CANCEL frame
    // -> server cancels the ExecContext -> DONE(kCancelled).
    auto client = Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok());
    uint64_t rows = 0;
    Status st = (*client)->Query(
        kAllQuery, {}, [](const std::vector<std::string>&) { return false; },
        &rows);
    EXPECT_TRUE(st.IsCancelled()) << st.ToString();
    // The server polls for CANCEL between row frames; the stream must stop
    // well short of a full drain (~10K triples in this image).
    EXPECT_LT(rows, 9000u);
  }
  {
    // LIMIT is not an error: exactly limit rows then DONE(OK).
    QueryRequest req;
    req.limit = 3;
    std::vector<std::string> rows;
    Status st = ServedRows("127.0.0.1", port, kAllQuery, req, &rows);
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(rows.size(), 3u);
  }
  server.Stop();
  server.Wait();
}

TEST(ServerTest, AdmissionOverflowIsRefusedNotHung) {
  const std::string image = FreezeBsbm(5, "admission.rsb");
  ServerOptions options;
  options.num_workers = 1;
  options.queue_depth = 1;
  Server server;
  ASSERT_TRUE(server.Start(image, options).ok());
  const uint16_t port = server.port();

  // Occupy the single worker with an idle-but-connected client, then fill
  // the queue depth with a raw connection that never gets a worker.
  auto occupant = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(occupant.ok()) << occupant.status().ToString();
  int filler = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(filler, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(filler, reinterpret_cast<sockaddr*>(&addr),
                      sizeof addr), 0);
  // Give the accept loop time to queue the filler.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Worker busy + queue full: the next connection must be refused with a
  // classified status, not parked indefinitely.
  auto refused = Client::Connect("127.0.0.1", port);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsResourceExhausted())
      << refused.status().ToString();

  ::close(filler);
  server.Stop();
  server.Wait();
}

TEST(ServerTest, PlanCacheHitsAcrossConstantsAndSkeletonPlansAgree) {
  const std::string image = FreezeBsbm(20, "cache.rsb");
  Server server;
  ASSERT_TRUE(server.Start(image).ok());
  const uint16_t port = server.port();

  // Same shape (?s <const> ?o), three different constants: 1 miss + 2 hits.
  const std::string shapes[] = {
      "SELECT ?s ?o WHERE { ?s <http://bsbm.example.org/price> ?o }",
      "SELECT ?s ?o WHERE { ?s <http://bsbm.example.org/label> ?o }",
      "SELECT ?s ?o WHERE { ?s <http://bsbm.example.org/vendor> ?o }",
  };
  for (const std::string& q : shapes) {
    std::vector<std::string> served;
    Status st = ServedRows("127.0.0.1", port, q, {}, &served);
    ASSERT_TRUE(st.ok()) << st.ToString();
    // The skeleton-instantiated plan must produce exactly the locally
    // planned rows (results are planner/plan-invariant).
    EXPECT_EQ(served, LocalRows(image, q)) << q;
  }
  auto client = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("plan_cache_hits: 2"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("plan_cache_misses: 1"), std::string::npos) << *stats;
  server.Stop();
  server.Wait();
}

TEST(ServerTest, PlanCacheLruEvictsAndClears) {
  server::PlanCache cache(2);
  query::PlanSkeleton s;
  cache.Insert("a", s);
  cache.Insert("b", s);
  query::PlanSkeleton out;
  EXPECT_TRUE(cache.Lookup("a", &out));  // refreshes a
  cache.Insert("c", s);                  // evicts b (LRU)
  EXPECT_FALSE(cache.Lookup("b", &out));
  EXPECT_TRUE(cache.Lookup("a", &out));
  EXPECT_TRUE(cache.Lookup("c", &out));
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 3u);  // counters survive Clear
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ServerTest, NormalizedShapeAbstractsConstantsButNotStructure) {
  auto shape = [](const std::string& sparql) {
    auto q = query::ParseSparql(sparql);
    EXPECT_TRUE(q.ok());
    return query::NormalizedBgpShape(*q);
  };
  // Different constants, same join structure: same shape.
  EXPECT_EQ(shape("SELECT ?s WHERE { ?s <http://e.org/a> ?o }"),
            shape("SELECT ?s WHERE { ?s <http://e.org/b> ?o }"));
  // A repeated constant is an equality class, a distinct one is not.
  EXPECT_NE(shape("SELECT ?s WHERE { ?s <http://e.org/a> ?o ."
                  " ?o <http://e.org/a> ?z }"),
            shape("SELECT ?s WHERE { ?s <http://e.org/a> ?o ."
                  " ?o <http://e.org/b> ?z }"));
  // Variable join structure differs: different shape.
  EXPECT_NE(shape("SELECT ?s WHERE { ?s <http://e.org/a> ?o ."
                  " ?s <http://e.org/b> ?z }"),
            shape("SELECT ?s WHERE { ?s <http://e.org/a> ?o ."
                  " ?z <http://e.org/b> ?o }"));
}

TEST(ServerTest, SnapshotMemoizesSummariesAcrossConcurrentRequests) {
  const std::string image = FreezeBsbm(10, "memo.rsb");
  auto snap = server::Snapshot::Open(image, 1);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  // Concurrent first requests for the same kind get the same minted object.
  constexpr int kThreads = 4;
  const summary::SummaryResult* seen[kThreads] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto r = (*snap)->Summary(summary::SummaryKind::kWeak);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      seen[t] = *r;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);

  // A second kind mints independently; both show up in the mint report
  // with a recorded wall time.
  auto typed = (*snap)->Summary(summary::SummaryKind::kTypedWeak);
  ASSERT_TRUE(typed.ok());
  auto reports = (*snap)->MintReports();
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& r : reports) {
    EXPECT_TRUE(r.ok);
    EXPECT_GE(r.seconds, 0.0);
  }
  // The estimator memoizes too and reuses the weak mint.
  auto est1 = (*snap)->Estimator();
  auto est2 = (*snap)->Estimator();
  ASSERT_TRUE(est1.ok());
  EXPECT_EQ(*est1, *est2);
  EXPECT_EQ((*snap)->MintReports().size(), 2u);  // no extra mint
}

TEST(ServerTest, SummaryPlannerServesWithMemoizedEstimator) {
  const std::string image = FreezeBsbm(15, "sumplan.rsb");
  Server server;
  ASSERT_TRUE(server.Start(image).ok());
  const uint16_t port = server.port();
  const std::string q =
      "SELECT ?s WHERE { ?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
      " ?t . ?s <http://bsbm.example.org/price> ?p }";
  QueryRequest req;
  req.planner = 2;  // summary
  std::vector<std::string> first, second;
  ASSERT_TRUE(ServedRows("127.0.0.1", port, q, req, &first).ok());
  ASSERT_TRUE(ServedRows("127.0.0.1", port, q, req, &second).ok());
  EXPECT_EQ(first, LocalRows(image, q));
  EXPECT_EQ(second, first);
  // The weak-summary mint the estimator triggered shows up in STATS.
  auto client = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("summary_mint_W: ok"), std::string::npos) << *stats;
  server.Stop();
  server.Wait();
}

TEST(ServerTest, MalformedPayloadsAreCorruptionNeverUB) {
  QueryRequest req;
  EXPECT_FALSE(server::DecodeQueryRequest("", &req));
  EXPECT_FALSE(server::DecodeQueryRequest("\x01\x00\x00", &req));
  // A length prefix pointing past the payload end.
  std::string lying;
  server::AppendU8(&lying, 1);
  server::AppendU8(&lying, 0);
  server::AppendU8(&lying, 0);
  server::AppendU8(&lying, 0);
  server::AppendU64(&lying, 0);
  server::AppendU64(&lying, 0);
  server::AppendU32(&lying, 0);
  server::AppendU64(&lying, 0);
  server::AppendU32(&lying, 1000);  // "1000 bytes of query follow" (they don't)
  EXPECT_FALSE(server::DecodeQueryRequest(lying, &req));
  // Trailing junk after a well-formed request is malformed too.
  std::string ok_payload = server::EncodeQueryRequest(QueryRequest{});
  EXPECT_TRUE(server::DecodeQueryRequest(ok_payload, &req));
  ok_payload.push_back('x');
  EXPECT_FALSE(server::DecodeQueryRequest(ok_payload, &req));

  server::DoneReply done;
  EXPECT_FALSE(server::DecodeDone("\x00", &done));
  // Unknown wire status codes become kInternal, not UB.
  EXPECT_TRUE(server::StatusFromWire(200, "??").IsInternal());
}

TEST(ServerTest, ReloadFailureKeepsServing) {
  const std::string image = FreezeBsbm(10, "reloadfail.rsb");
  Server server;
  ASSERT_TRUE(server.Start(image).ok());
  const uint16_t port = server.port();
  auto client = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  // Reload of a nonexistent image fails with a classified status...
  Status st = (*client)->Reload(TempPath("no-such-image.rsb"));
  EXPECT_FALSE(st.ok());
  // ...and the old epoch keeps serving.
  EXPECT_EQ(server.snapshot()->epoch(), 1u);
  std::vector<std::string> rows;
  QueryRequest req;
  req.limit = 1;
  EXPECT_TRUE(ServedRows("127.0.0.1", port, kAllQuery, req, &rows).ok());
  EXPECT_EQ(rows.size(), 1u);
  server.Stop();
  server.Wait();
}

TEST(ServerTest, ShutdownCommandStopsTheServer) {
  const std::string image = FreezeBsbm(5, "shutdown.rsb");
  Server server;
  ASSERT_TRUE(server.Start(image).ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Shutdown().ok());
  server.Wait();
  EXPECT_TRUE(server.stopped());
}

}  // namespace
}  // namespace rdfsum
