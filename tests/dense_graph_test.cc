#include "rdf/dense_graph.h"

#include <gtest/gtest.h>

#include <vector>

#include "gen/bsbm.h"
#include "gen/hetero.h"
#include "gen/lubm.h"
#include "gen/paper_example.h"
#include "rdf/graph.h"
#include "summary/node_partition.h"
#include "summary/reference_partition.h"

namespace rdfsum {
namespace {

using summary::NodePartition;

// ---- CSR construction edge cases -------------------------------------------

TEST(DenseGraphTest, EmptyGraph) {
  Graph g;
  const DenseGraph& dg = g.Dense();
  EXPECT_EQ(dg.num_nodes(), 0u);
  EXPECT_EQ(dg.num_properties(), 0u);
  EXPECT_TRUE(dg.data_edges().empty());
  EXPECT_EQ(dg.num_class_sets(), 0u);
}

TEST(DenseGraphTest, CanonicalNodeAndPropertyOrder) {
  Graph g;
  Dictionary& d = g.dict();
  TermId a = d.EncodeIri("a"), b = d.EncodeIri("b"), c = d.EncodeIri("c");
  TermId p1 = d.EncodeIri("p1"), p2 = d.EncodeIri("p2");
  g.Add({a, p1, b});
  g.Add({c, p2, a});

  const DenseGraph& dg = g.Dense();
  // Canonical order: subjects then objects, triple by triple.
  ASSERT_EQ(dg.num_nodes(), 3u);
  EXPECT_EQ(dg.term_of(0), a);
  EXPECT_EQ(dg.term_of(1), b);
  EXPECT_EQ(dg.term_of(2), c);
  EXPECT_EQ(dg.node_of(a), 0u);
  EXPECT_EQ(dg.node_of(b), 1u);
  EXPECT_EQ(dg.node_of(c), 2u);
  // Properties in first-occurrence order.
  ASSERT_EQ(dg.num_properties(), 2u);
  EXPECT_EQ(dg.property_term(0), p1);
  EXPECT_EQ(dg.property_term(1), p2);
  EXPECT_EQ(dg.property_of(p1), 0u);
  // A term that is not a data node / property maps to kNone.
  EXPECT_EQ(dg.node_of(p1), DenseGraph::kNone);
  EXPECT_EQ(dg.property_of(a), DenseGraph::kNone);
}

TEST(DenseGraphTest, CsrAdjacencyAndAnchors) {
  Graph g;
  Dictionary& d = g.dict();
  TermId a = d.EncodeIri("a"), b = d.EncodeIri("b"), c = d.EncodeIri("c");
  TermId p = d.EncodeIri("p"), q = d.EncodeIri("q");
  g.Add({a, p, b});
  g.Add({a, q, c});
  g.Add({b, p, c});

  const DenseGraph& dg = g.Dense();
  uint32_t na = dg.node_of(a), nb = dg.node_of(b), nc = dg.node_of(c);
  ASSERT_EQ(dg.OutEdges(na).size(), 2u);
  EXPECT_EQ(dg.OutEdges(na)[0].p, dg.property_of(p));
  EXPECT_EQ(dg.OutEdges(na)[0].node, nb);
  EXPECT_EQ(dg.OutEdges(na)[1].p, dg.property_of(q));
  EXPECT_EQ(dg.OutEdges(na)[1].node, nc);
  ASSERT_EQ(dg.InEdges(nc).size(), 2u);
  EXPECT_EQ(dg.OutEdges(nc).size(), 0u);
  ASSERT_EQ(dg.InEdges(nb).size(), 1u);
  EXPECT_EQ(dg.InEdges(nb)[0].node, na);
  // First-seen anchors.
  EXPECT_EQ(dg.SourceAnchor(dg.property_of(p)), na);
  EXPECT_EQ(dg.TargetAnchor(dg.property_of(p)), nb);
  EXPECT_EQ(dg.SourceAnchor(dg.property_of(q)), na);
  EXPECT_EQ(dg.TargetAnchor(dg.property_of(q)), nc);
}

TEST(DenseGraphTest, SelfLoop) {
  Graph g;
  Dictionary& d = g.dict();
  TermId a = d.EncodeIri("a");
  TermId p = d.EncodeIri("p");
  g.Add({a, p, a});

  const DenseGraph& dg = g.Dense();
  ASSERT_EQ(dg.num_nodes(), 1u);
  ASSERT_EQ(dg.OutEdges(0).size(), 1u);
  ASSERT_EQ(dg.InEdges(0).size(), 1u);
  EXPECT_EQ(dg.OutEdges(0)[0].node, 0u);
  EXPECT_EQ(dg.InEdges(0)[0].node, 0u);
  EXPECT_EQ(dg.SourceAnchor(0), 0u);
  EXPECT_EQ(dg.TargetAnchor(0), 0u);
  EXPECT_TRUE(dg.HasData(0));
}

TEST(DenseGraphTest, TypedOnlyNodes) {
  Graph g;
  Dictionary& d = g.dict();
  const Vocabulary& v = g.vocab();
  TermId a = d.EncodeIri("a"), b = d.EncodeIri("b");
  TermId c1 = d.EncodeIri("C1"), c2 = d.EncodeIri("C2");
  TermId p = d.EncodeIri("p");
  g.Add({a, p, b});
  g.Add({a, v.rdf_type, c2});
  g.Add({a, v.rdf_type, c1});
  // x is typed-only: subject of type triples, no data edges.
  TermId x = d.EncodeIri("x");
  g.Add({x, v.rdf_type, c1});

  const DenseGraph& dg = g.Dense();
  ASSERT_EQ(dg.num_nodes(), 3u);  // a, b, then typed-only x
  uint32_t nx = dg.node_of(x);
  EXPECT_EQ(nx, 2u);  // type subjects come after data endpoints
  EXPECT_FALSE(dg.HasData(nx));
  EXPECT_TRUE(dg.IsTyped(nx));
  EXPECT_EQ(dg.OutEdges(nx).size(), 0u);
  EXPECT_EQ(dg.InEdges(nx).size(), 0u);
  // Class sets are sorted and shared by id only when equal.
  uint32_t na = dg.node_of(a);
  ASSERT_EQ(dg.ClassesOf(na).size(), 2u);
  EXPECT_LE(dg.ClassesOf(na)[0], dg.ClassesOf(na)[1]);
  EXPECT_EQ(dg.ClassesOf(nx).size(), 1u);
  EXPECT_NE(dg.ClassSetId(na), dg.ClassSetId(nx));
  EXPECT_EQ(dg.ClassSetId(dg.node_of(b)), DenseGraph::kNone);
  EXPECT_EQ(dg.num_class_sets(), 2u);
}

TEST(DenseGraphTest, ClassSetIdsDeduplicateEqualSets) {
  Graph g;
  Dictionary& d = g.dict();
  const Vocabulary& v = g.vocab();
  TermId c1 = d.EncodeIri("C1"), c2 = d.EncodeIri("C2");
  TermId p = d.EncodeIri("p");
  TermId a = d.EncodeIri("a"), b = d.EncodeIri("b");
  g.Add({a, p, b});
  // Same set {C1, C2} inserted in different orders.
  g.Add({a, v.rdf_type, c1});
  g.Add({a, v.rdf_type, c2});
  g.Add({b, v.rdf_type, c2});
  g.Add({b, v.rdf_type, c1});

  const DenseGraph& dg = g.Dense();
  EXPECT_EQ(dg.ClassSetId(dg.node_of(a)), dg.ClassSetId(dg.node_of(b)));
  EXPECT_EQ(dg.num_class_sets(), 1u);
}

TEST(DenseGraphTest, CacheInvalidatedByAdd) {
  Graph g;
  Dictionary& d = g.dict();
  TermId a = d.EncodeIri("a"), b = d.EncodeIri("b");
  TermId p = d.EncodeIri("p");
  g.Add({a, p, b});
  EXPECT_EQ(g.Dense().num_nodes(), 2u);
  g.Add({b, p, d.EncodeIri("c")});
  EXPECT_EQ(g.Dense().num_nodes(), 3u);
}

// ---- Differential tests: substrate partitions vs the reference oracle ------

void ExpectIdentical(const NodePartition& got, const NodePartition& want,
                     const char* label) {
  EXPECT_EQ(got.num_classes, want.num_classes) << label;
  ASSERT_EQ(got.class_of.size(), want.class_of.size()) << label;
  for (const auto& [node, cls] : want.class_of) {
    auto it = got.class_of.find(node);
    ASSERT_NE(it, got.class_of.end()) << label << " missing node " << node;
    EXPECT_EQ(it->second, cls) << label << " node " << node;
  }
}

void CheckAllPartitionKinds(const Graph& g) {
  ExpectIdentical(summary::ComputeWeakPartition(g),
                  summary::ReferenceWeakPartition(g), "weak");
  ExpectIdentical(summary::ComputeStrongPartition(g),
                  summary::ReferenceStrongPartition(g), "strong");
  ExpectIdentical(summary::ComputeTypePartition(g),
                  summary::ReferenceTypePartition(g), "type");
  for (auto mode : {summary::TypedSummaryMode::kPerPropertyProjection,
                    summary::TypedSummaryMode::kUntypedDataGraph}) {
    ExpectIdentical(summary::ComputeTypedWeakPartition(g, mode),
                    summary::ReferenceTypedWeakPartition(g, mode),
                    "typed-weak");
    ExpectIdentical(summary::ComputeTypedStrongPartition(g, mode),
                    summary::ReferenceTypedStrongPartition(g, mode),
                    "typed-strong");
  }
  for (uint32_t depth : {1u, 3u}) {
    ExpectIdentical(summary::ComputeBisimulationPartition(g, depth, true),
                    summary::ReferenceBisimulationPartition(g, depth, true),
                    "bisim-typed");
    ExpectIdentical(summary::ComputeBisimulationPartition(g, depth, false),
                    summary::ReferenceBisimulationPartition(g, depth, false),
                    "bisim-untyped");
  }
}

TEST(DensePartitionDifferentialTest, PaperExample) {
  gen::Figure2Example ex = gen::BuildFigure2();
  CheckAllPartitionKinds(ex.graph);
}

TEST(DensePartitionDifferentialTest, Bsbm) {
  gen::BsbmOptions opt;
  opt.num_products = 120;
  CheckAllPartitionKinds(gen::GenerateBsbm(opt));
}

TEST(DensePartitionDifferentialTest, Lubm) {
  gen::LubmOptions opt;
  opt.num_universities = 2;
  CheckAllPartitionKinds(gen::GenerateLubm(opt));
}

TEST(DensePartitionDifferentialTest, HeteroSweep) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 17ull}) {
    gen::HeteroOptions opt;
    opt.seed = seed;
    opt.num_nodes = 300;
    opt.type_probability = seed % 2 == 0 ? 0.8 : 0.3;
    CheckAllPartitionKinds(gen::GenerateHetero(opt));
  }
}

TEST(DensePartitionDifferentialTest, EmptyAndTypedOnlyGraphs) {
  Graph empty;
  CheckAllPartitionKinds(empty);

  // A graph with only type triples: everything collapses into Nτ for W/S.
  Graph typed_only;
  Dictionary& d = typed_only.dict();
  const Vocabulary& v = typed_only.vocab();
  TermId c1 = d.EncodeIri("C1");
  typed_only.Add({d.EncodeIri("x"), v.rdf_type, c1});
  typed_only.Add({d.EncodeIri("y"), v.rdf_type, c1});
  CheckAllPartitionKinds(typed_only);
  EXPECT_EQ(summary::ComputeWeakPartition(typed_only).num_classes, 1u);
}

}  // namespace
}  // namespace rdfsum
