// Differential testing of the BGP evaluator: an independent, deliberately
// naive reference implementation (no indexes, no join-order heuristics,
// textual pattern order) must produce exactly the same answer sets as
// query::BgpEvaluator on random graphs and random queries.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "gen/hetero.h"
#include "gen/paper_example.h"
#include "query/evaluator.h"
#include "query/rbgp.h"
#include "query/sparql_parser.h"
#include "util/random.h"

namespace rdfsum::query {
namespace {

using Bindings = std::map<std::string, Term>;

/// Tries to unify a pattern term against a concrete term.
bool UnifyTerm(const PatternTerm& pattern, const Term& value,
               Bindings* bindings) {
  if (!pattern.is_var) return pattern.term == value;
  auto it = bindings->find(pattern.var);
  if (it == bindings->end()) {
    bindings->emplace(pattern.var, value);
    return true;
  }
  return it->second == value;
}

void ReferenceMatch(const Graph& g, const BgpQuery& q, size_t index,
                    Bindings bindings, std::set<std::vector<std::string>>* out) {
  if (index == q.triples.size()) {
    std::vector<std::string> row;
    for (const std::string& v : q.distinguished) {
      row.push_back(bindings.at(v).ToNTriples());
    }
    out->insert(std::move(row));
    return;
  }
  const TriplePatternQ& pattern = q.triples[index];
  g.ForEachTriple([&](const Triple& t) {
    Bindings next = bindings;
    if (!UnifyTerm(pattern.s, g.dict().Decode(t.s), &next)) return;
    if (!UnifyTerm(pattern.p, g.dict().Decode(t.p), &next)) return;
    if (!UnifyTerm(pattern.o, g.dict().Decode(t.o), &next)) return;
    ReferenceMatch(g, q, index + 1, std::move(next), out);
  });
}

std::set<std::vector<std::string>> ReferenceEvaluate(const Graph& g,
                                                     const BgpQuery& q) {
  std::set<std::vector<std::string>> out;
  ReferenceMatch(g, q, 0, {}, &out);
  return out;
}

std::set<std::vector<std::string>> RowsToStrings(const std::vector<Row>& rows) {
  std::set<std::vector<std::string>> out;
  for (const Row& row : rows) {
    std::vector<std::string> r;
    for (const Term& t : row) r.push_back(t.ToNTriples());
    out.insert(std::move(r));
  }
  return out;
}

class ReferenceEvalTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReferenceEvalTest, RandomRbgpQueriesAgree) {
  gen::HeteroOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 40;  // small enough for the exponential reference
  opt.num_properties = 6;
  opt.mean_out_degree = 2.5;
  opt.type_probability = 0.4;
  Graph g = gen::GenerateHetero(opt);
  BgpEvaluator fast(g);
  Random rng(GetParam() * 17 + 5);
  for (int i = 0; i < 10; ++i) {
    RbgpGeneratorOptions gen_opt;
    gen_opt.num_patterns = 1 + static_cast<uint32_t>(rng.Uniform(3));
    BgpQuery q = GenerateRbgpQuery(g, rng, gen_opt);
    if (q.triples.empty()) continue;
    auto expected = ReferenceEvaluate(g, q);
    auto actual = fast.Evaluate(q);
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(RowsToStrings(*actual), expected) << q.ToString();
    EXPECT_EQ(fast.ExistsMatch(q), !expected.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceEvalTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ReferenceEvalFixedTest, HandwrittenQueriesAgree) {
  gen::Figure2Example ex = gen::BuildFigure2();
  const std::vector<std::string> queries = {
      "PREFIX f: <http://example.org/fig2/>\n"
      "SELECT ?s ?o WHERE { ?s f:title ?o }",
      "PREFIX f: <http://example.org/fig2/>\n"
      "SELECT ?s WHERE { ?s f:editor ?e . ?s f:comment ?c }",
      "PREFIX f: <http://example.org/fig2/>\n"
      "SELECT ?a ?r WHERE { ?a f:reviewed ?r . ?r f:title ?t }",
      "PREFIX f: <http://example.org/fig2/>\n"
      "SELECT ?x WHERE { ?x a f:Journal }",
      // Constant subject (non-RBGP) still evaluates correctly.
      "PREFIX f: <http://example.org/fig2/>\n"
      "SELECT ?o WHERE { f:r1 f:author ?o }",
  };
  BgpEvaluator fast(ex.graph);
  for (const std::string& text : queries) {
    auto q = ParseSparql(text);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    auto expected = ReferenceEvaluate(ex.graph, *q);
    auto actual = fast.Evaluate(*q);
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(RowsToStrings(*actual), expected) << text;
  }
}

TEST(ReferenceEvalFixedTest, CartesianProductQuery) {
  // Disconnected patterns: the evaluator must enumerate the cross product.
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("http://p"), q_prop = d.EncodeIri("http://q");
  g.Add({d.EncodeIri("http://a1"), p, d.EncodeIri("http://b1")});
  g.Add({d.EncodeIri("http://a2"), p, d.EncodeIri("http://b2")});
  g.Add({d.EncodeIri("http://c1"), q_prop, d.EncodeIri("http://e1")});
  auto query = ParseSparql(
      "SELECT ?x ?y WHERE { ?x <http://p> ?u . ?y <http://q> ?v }");
  ASSERT_TRUE(query.ok());
  BgpEvaluator fast(g);
  auto expected = ReferenceEvaluate(g, *query);
  auto actual = fast.Evaluate(*query);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(expected.size(), 2u);
  EXPECT_EQ(RowsToStrings(*actual), expected);
}

}  // namespace
}  // namespace rdfsum::query
