// Unit wall for util::ExecContext — the governance handle threaded through
// parsing, summarization and query execution. Pins the Limits semantics
// (0 = unlimited), stickiness of Check(), the row/memory charge arithmetic,
// and thread-safe cancellation.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "util/exec_context.h"

namespace rdfsum::util {
namespace {

TEST(ExecContextTest, DefaultIsUnlimited) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_TRUE(ctx.Check().ok());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ctx.ChargeRows().ok());
  }
  EXPECT_TRUE(ctx.TryChargeMemory(1ull << 40));
  EXPECT_FALSE(ctx.WouldExceedMemory(1ull << 50));
}

TEST(ExecContextTest, CancelIsStickyAndPromptlyVisible) {
  ExecContext ctx;
  EXPECT_TRUE(ctx.Check().ok());
  ctx.Cancel();
  EXPECT_TRUE(ctx.cancelled());
  Status st = ctx.Check();
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  // Sticky: every later Check() fails the same way.
  EXPECT_TRUE(ctx.Check().IsCancelled());
  ctx.Cancel();  // idempotent
  EXPECT_TRUE(ctx.Check().IsCancelled());
}

TEST(ExecContextTest, DeadlineTripsAndStays) {
  ExecContext::Limits limits;
  limits.timeout_ms = 1;
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Status st = ctx.Check();
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_TRUE(st.IsRetryable());
  EXPECT_TRUE(ctx.Check().IsDeadlineExceeded());
}

TEST(ExecContextTest, RowBudgetExhaustsAtTheLimit) {
  ExecContext::Limits limits;
  limits.max_rows = 3;
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.ChargeRows().ok());
  EXPECT_TRUE(ctx.ChargeRows().ok());
  EXPECT_TRUE(ctx.ChargeRows().ok());
  Status st = ctx.ChargeRows();
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  // The counter records attempts; the tripping row was counted but not
  // delivered, and the failure repeats on every later charge.
  EXPECT_EQ(ctx.rows_charged(), 4u);
  EXPECT_TRUE(ctx.ChargeRows().IsResourceExhausted());
}

TEST(ExecContextTest, MemoryChargeAndRelease) {
  ExecContext::Limits limits;
  limits.memory_budget_bytes = 100;
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.TryChargeMemory(60));
  EXPECT_EQ(ctx.memory_used(), 60u);
  EXPECT_FALSE(ctx.TryChargeMemory(50));  // 110 > 100: refused, not partial
  EXPECT_EQ(ctx.memory_used(), 60u);
  EXPECT_TRUE(ctx.TryChargeMemory(40));
  ctx.ReleaseMemory(100);
  EXPECT_EQ(ctx.memory_used(), 0u);
  EXPECT_TRUE(ctx.TryChargeMemory(100));
}

TEST(ExecContextTest, WouldExceedMemoryIsAPredictionNotACharge) {
  ExecContext::Limits limits;
  limits.memory_budget_bytes = 100;
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.WouldExceedMemory(101));
  EXPECT_FALSE(ctx.WouldExceedMemory(100));
  EXPECT_EQ(ctx.memory_used(), 0u);
}

TEST(ExecContextTest, ConcurrentChargesNeverOvershoot) {
  ExecContext::Limits limits;
  limits.memory_budget_bytes = 10'000;
  ExecContext ctx(limits);
  constexpr int kThreads = 8;
  std::vector<uint64_t> charged(kThreads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ctx, &charged, t] {
      for (int i = 0; i < 1000; ++i) {
        if (ctx.TryChargeMemory(7)) charged[static_cast<size_t>(t)] += 7;
      }
    });
  }
  for (auto& w : workers) w.join();
  uint64_t total = 0;
  for (uint64_t c : charged) total += c;
  EXPECT_EQ(ctx.memory_used(), total);
  EXPECT_LE(total, 10'000u);
}

TEST(ExecContextTest, CancelFromAnotherThreadIsObserved) {
  ExecContext ctx;
  std::thread canceller([&ctx] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ctx.Cancel();
  });
  // Poll like a worker loop would; must terminate.
  while (ctx.Check().ok()) {
    std::this_thread::yield();
  }
  canceller.join();
  EXPECT_TRUE(ctx.Check().IsCancelled());
}

TEST(ExecContextTest, NewStatusCodesRoundTrip) {
  EXPECT_TRUE(Status::DeadlineExceeded("d").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Cancelled("c").IsCancelled());
  EXPECT_TRUE(Status::ResourceExhausted("r").IsResourceExhausted());
  EXPECT_FALSE(Status::Cancelled("c").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("r").IsRetryable());
  EXPECT_TRUE(Status::DeadlineExceeded("d").IsRetryable());
  EXPECT_FALSE(Status::Corruption("x").IsRetryable());
}

}  // namespace
}  // namespace rdfsum::util
