#include <gtest/gtest.h>

#include <tuple>

#include "gen/bsbm.h"
#include "gen/hetero.h"
#include "gen/lubm.h"
#include "gen/paper_example.h"
#include "reasoner/saturation.h"
#include "summary/isomorphism.h"
#include "summary/property_checks.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {
namespace {

// ------------------------------------------------ Proposition 2/6/9: fixpoint

class FixpointTest
    : public ::testing::TestWithParam<std::tuple<SummaryKind, uint64_t>> {};

TEST_P(FixpointTest, SummaryOfSummaryIsSummary) {
  auto [kind, seed] = GetParam();
  gen::HeteroOptions opt;
  opt.seed = seed;
  opt.num_nodes = 120;
  opt.num_properties = 10;
  opt.type_probability = 0.45;
  Graph g = gen::GenerateHetero(opt);
  EXPECT_TRUE(CheckFixpoint(g, kind)) << SummaryKindName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSeeds, FixpointTest,
    ::testing::Combine(::testing::Values(SummaryKind::kWeak,
                                         SummaryKind::kStrong,
                                         SummaryKind::kTypedWeak,
                                         SummaryKind::kTypedStrong),
                       ::testing::Values(1, 2, 3, 10, 42)),
    [](const auto& info) {
      return std::string(SummaryKindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(FixpointExampleTest, Figure2AllKinds) {
  gen::Figure2Example ex = gen::BuildFigure2();
  for (SummaryKind kind : kAllQuotientKinds) {
    EXPECT_TRUE(CheckFixpoint(ex.graph, kind)) << SummaryKindName(kind);
  }
}

TEST(FixpointExampleTest, StrictModeAlsoFixpoint) {
  gen::Figure2Example ex = gen::BuildFigure2();
  SummaryOptions strict;
  strict.typed_mode = TypedSummaryMode::kUntypedDataGraph;
  EXPECT_TRUE(CheckFixpoint(ex.graph, SummaryKind::kTypedWeak, strict));
  EXPECT_TRUE(CheckFixpoint(ex.graph, SummaryKind::kTypedStrong, strict));
}

// -------------------------------------- Proposition 5/8: W and S completeness

TEST(CompletenessTest, WeakOnFigure5) {
  // The paper's own illustration of Proposition 5.
  Graph g = gen::BuildFigure5();
  EXPECT_TRUE(CheckCompleteness(g, SummaryKind::kWeak));
}

TEST(CompletenessTest, StrongOnFigure5) {
  Graph g = gen::BuildFigure5();
  EXPECT_TRUE(CheckCompleteness(g, SummaryKind::kStrong));
}

TEST(CompletenessTest, BookExample) {
  gen::BookExample ex = gen::BuildBookExample();
  EXPECT_TRUE(CheckCompleteness(ex.graph, SummaryKind::kWeak));
  EXPECT_TRUE(CheckCompleteness(ex.graph, SummaryKind::kStrong));
}

class CompletenessSweepTest
    : public ::testing::TestWithParam<std::tuple<SummaryKind, uint64_t>> {};

TEST_P(CompletenessSweepTest, HoldsOnRandomSchemaGraphs) {
  auto [kind, seed] = GetParam();
  gen::HeteroOptions opt;
  opt.seed = seed;
  opt.num_nodes = 90;
  opt.num_properties = 8;
  opt.num_classes = 6;
  opt.num_subproperty_edges = 4;
  opt.num_domain_constraints = 3;
  opt.num_range_constraints = 3;
  opt.type_probability = 0.4;
  Graph g = gen::GenerateHetero(opt);
  EXPECT_TRUE(CheckCompleteness(g, kind))
      << SummaryKindName(kind) << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    WeakAndStrong, CompletenessSweepTest,
    ::testing::Combine(::testing::Values(SummaryKind::kWeak,
                                         SummaryKind::kStrong),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8)),
    [](const auto& info) {
      return std::string(SummaryKindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(CompletenessTest, LubmWeak) {
  gen::LubmOptions opt;
  opt.num_universities = 1;
  Graph g = gen::GenerateLubm(opt);
  EXPECT_TRUE(CheckCompleteness(g, SummaryKind::kWeak));
}

// ------------------------------- Proposition 7/10: TW/TS non-completeness

TEST(NonCompletenessTest, Figure8BreaksTypedWeak) {
  Graph g = gen::BuildFigure8();
  EXPECT_FALSE(CheckCompleteness(g, SummaryKind::kTypedWeak))
      << "Figure 8 should be a counterexample for TW completeness";
}

TEST(NonCompletenessTest, Figure8BreaksTypedStrong) {
  Graph g = gen::BuildFigure8();
  EXPECT_FALSE(CheckCompleteness(g, SummaryKind::kTypedStrong));
}

TEST(NonCompletenessTest, Figure8DetailedShape) {
  // TW(G): r1 and r2 merge (both untyped, share b). TW(G∞): r1 is typed c,
  // r2 is not — they must be distinct nodes there.
  Graph g = gen::BuildFigure8();
  Graph g_inf = reasoner::Saturate(g);
  TermId r1 = g.dict().Lookup(Term::Iri("http://example.org/fig8/r1"));
  TermId r2 = g.dict().Lookup(Term::Iri("http://example.org/fig8/r2"));
  ASSERT_NE(r1, kInvalidTermId);

  SummaryResult tw_g = Summarize(g, SummaryKind::kTypedWeak);
  EXPECT_EQ(tw_g.node_map.at(r1), tw_g.node_map.at(r2));

  SummaryResult tw_inf = Summarize(g_inf, SummaryKind::kTypedWeak);
  EXPECT_NE(tw_inf.node_map.at(r1), tw_inf.node_map.at(r2));
}

TEST(NonCompletenessTest, WeakStillCompleteOnFigure8) {
  // The same graph does not break W/S completeness.
  Graph g = gen::BuildFigure8();
  EXPECT_TRUE(CheckCompleteness(g, SummaryKind::kWeak));
  EXPECT_TRUE(CheckCompleteness(g, SummaryKind::kStrong));
}

// ------------------------------------------------ shortcut API

TEST(ShortcutTest, MatchesDirectSaturationForWeak) {
  gen::BookExample ex = gen::BuildBookExample();
  Graph g_inf = reasoner::Saturate(ex.graph);
  SummaryResult direct = Summarize(g_inf, SummaryKind::kWeak);
  SummaryResult shortcut =
      SummarizeSaturatedViaShortcut(ex.graph, SummaryKind::kWeak);
  EXPECT_TRUE(AreSummariesIsomorphic(direct.graph, shortcut.graph));
}

TEST(ShortcutTest, MatchesDirectSaturationForStrong) {
  gen::LubmOptions opt;
  opt.num_universities = 1;
  Graph g = gen::GenerateLubm(opt);
  Graph g_inf = reasoner::Saturate(g);
  SummaryResult direct = Summarize(g_inf, SummaryKind::kStrong);
  SummaryResult shortcut =
      SummarizeSaturatedViaShortcut(g, SummaryKind::kStrong);
  EXPECT_TRUE(AreSummariesIsomorphic(direct.graph, shortcut.graph));
}

TEST(ShortcutTest, NodeMapStillCoversG) {
  gen::BookExample ex = gen::BuildBookExample();
  SummaryResult shortcut =
      SummarizeSaturatedViaShortcut(ex.graph, SummaryKind::kWeak);
  EXPECT_TRUE(shortcut.node_map.count(ex.doi1));
  EXPECT_TRUE(shortcut.node_map.count(ex.b1));
}

TEST(ShortcutTest, TypedKindsFallBackToSaturateFirst) {
  Graph g = gen::BuildFigure8();
  Graph g_inf = reasoner::Saturate(g);
  SummaryResult direct = Summarize(g_inf, SummaryKind::kTypedWeak);
  SummaryResult fallback =
      SummarizeSaturatedViaShortcut(g, SummaryKind::kTypedWeak);
  EXPECT_TRUE(AreSummariesIsomorphic(direct.graph, fallback.graph));
}

// ------------------------------------------------ Prop 1: representativeness

class RepresentativenessTest
    : public ::testing::TestWithParam<std::tuple<SummaryKind, uint64_t>> {};

TEST_P(RepresentativenessTest, AllQueriesRepresented) {
  auto [kind, seed] = GetParam();
  gen::HeteroOptions opt;
  opt.seed = seed;
  opt.num_nodes = 100;
  opt.num_properties = 9;
  opt.num_classes = 6;
  opt.type_probability = 0.4;
  opt.num_subproperty_edges = 3;
  opt.num_domain_constraints = 2;
  opt.num_range_constraints = 2;
  Graph g = gen::GenerateHetero(opt);
  RepresentativenessReport report =
      CheckRepresentativeness(g, kind, /*num_queries=*/40,
                              /*max_patterns_per_query=*/4, seed * 31 + 7);
  EXPECT_GT(report.queries, 0u);
  EXPECT_TRUE(report.AllRepresented())
      << SummaryKindName(kind) << ": " << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, RepresentativenessTest,
    ::testing::Combine(::testing::Values(SummaryKind::kWeak,
                                         SummaryKind::kStrong,
                                         SummaryKind::kTypedWeak,
                                         SummaryKind::kTypedStrong,
                                         SummaryKind::kTypeBased),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(SummaryKindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(RepresentativenessTest2, BsbmWithUntypedOffers) {
  gen::BsbmOptions opt;
  opt.num_products = 60;
  opt.untyped_offer_fraction = 0.3;
  Graph g = gen::GenerateBsbm(opt);
  for (SummaryKind kind : kAllQuotientKinds) {
    RepresentativenessReport report =
        CheckRepresentativeness(g, kind, 25, 3, 99);
    EXPECT_TRUE(report.AllRepresented())
        << SummaryKindName(kind) << ": " << report.ToString();
  }
}

// ------------------------------------------------ Prop 3: accuracy

TEST(AccuracyTest, SummaryIsItsOwnSummary) {
  // Accuracy follows from the fixpoint property: H is a graph whose summary
  // is H, so any query matching H∞ matches a member of the inverse set.
  gen::Figure2Example ex = gen::BuildFigure2();
  for (SummaryKind kind : kAllQuotientKinds) {
    SummaryResult h = Summarize(ex.graph, kind);
    SummaryResult hh = Summarize(h.graph, kind);
    EXPECT_TRUE(AreSummariesIsomorphic(h.graph, hh.graph));
  }
}

}  // namespace
}  // namespace rdfsum::summary
