#include <gtest/gtest.h>

#include "gen/bsbm.h"
#include "gen/hetero.h"
#include "gen/lubm.h"
#include "io/ntriples_writer.h"
#include "rdf/graph_stats.h"
#include "reasoner/saturation.h"

namespace rdfsum::gen {
namespace {

TEST(BsbmGeneratorTest, DeterministicForSeed) {
  BsbmOptions opt;
  opt.num_products = 80;
  Graph a = GenerateBsbm(opt);
  Graph b = GenerateBsbm(opt);
  EXPECT_EQ(a.NumTriples(), b.NumTriples());
  EXPECT_EQ(io::NTriplesWriter::ToString(a), io::NTriplesWriter::ToString(b));
}

TEST(BsbmGeneratorTest, SeedChangesData) {
  BsbmOptions a_opt, b_opt;
  a_opt.num_products = b_opt.num_products = 50;
  b_opt.seed = a_opt.seed + 1;
  Graph a = GenerateBsbm(a_opt);
  Graph b = GenerateBsbm(b_opt);
  EXPECT_NE(io::NTriplesWriter::ToString(a), io::NTriplesWriter::ToString(b));
}

TEST(BsbmGeneratorTest, TripleCountNearEstimate) {
  BsbmOptions opt;
  opt.num_products = 200;
  Graph g = GenerateBsbm(opt);
  uint64_t approx = ApproxBsbmTriples(opt);
  EXPECT_GT(g.NumTriples(), approx / 2);
  EXPECT_LT(g.NumTriples(), approx * 2);
}

TEST(BsbmGeneratorTest, ScalesWithProducts) {
  BsbmOptions small, large;
  small.num_products = 50;
  large.num_products = 500;
  EXPECT_GT(GenerateBsbm(large).NumTriples(),
            5 * GenerateBsbm(small).NumTriples());
}

TEST(BsbmGeneratorTest, IsWellBehaved) {
  BsbmOptions opt;
  opt.num_products = 100;
  Graph g = GenerateBsbm(opt);
  EXPECT_TRUE(CheckWellBehaved(g).ok());
}

TEST(BsbmGeneratorTest, HasSchemaAndHeterogeneousTypes) {
  BsbmOptions opt;
  opt.num_products = 150;
  Graph g = GenerateBsbm(opt);
  GraphStats st = ComputeGraphStats(g);
  EXPECT_GT(st.num_schema_edges, 10u);
  // Product-type tree: dozens of classes in use.
  EXPECT_GT(st.num_class_nodes, 10u);
  // Untyped offers exist.
  EXPECT_GT(st.num_untyped_resources, 0u);
}

TEST(BsbmGeneratorTest, UntypedFractionZeroTypesAllOffers) {
  BsbmOptions opt;
  opt.num_products = 60;
  opt.untyped_offer_fraction = 0.0;
  Graph g = GenerateBsbm(opt);
  // Every offer subject must be typed: saturation adds no types for offers.
  // Spot check: all data subjects with an offerProduct edge are typed.
  TermId offer_product =
      g.dict().Lookup(Term::Iri("http://bsbm.example.org/offerProduct"));
  ASSERT_NE(offer_product, kInvalidTermId);
  auto typed = TypedResources(g);
  for (const Triple& t : g.data()) {
    if (t.p == offer_product) {
      EXPECT_TRUE(typed.count(t.s));
    }
  }
}

TEST(BsbmGeneratorTest, NoSchemaOption) {
  BsbmOptions opt;
  opt.num_products = 40;
  opt.include_schema = false;
  Graph g = GenerateBsbm(opt);
  EXPECT_EQ(g.schema().size(), 0u);
}

TEST(BsbmGeneratorTest, ProductsForTriplesInverse) {
  uint64_t products = BsbmProductsForTriples(100000);
  BsbmOptions opt;
  opt.num_products = products;
  Graph g = GenerateBsbm(opt);
  EXPECT_GT(g.NumTriples(), 50000u);
  EXPECT_LT(g.NumTriples(), 200000u);
}

// ---------------------------------------------------------------- LUBM

TEST(LubmGeneratorTest, Deterministic) {
  LubmOptions opt;
  opt.num_universities = 1;
  EXPECT_EQ(io::NTriplesWriter::ToString(GenerateLubm(opt)),
            io::NTriplesWriter::ToString(GenerateLubm(opt)));
}

TEST(LubmGeneratorTest, WellBehavedAndScales) {
  LubmOptions one, three;
  one.num_universities = 1;
  three.num_universities = 3;
  Graph g1 = GenerateLubm(one);
  Graph g3 = GenerateLubm(three);
  EXPECT_TRUE(CheckWellBehaved(g1).ok());
  EXPECT_GT(g3.NumTriples(), 2 * g1.NumTriples());
  EXPECT_GT(g1.NumTriples(), ApproxLubmTriplesPerUniversity() / 2);
}

TEST(LubmGeneratorTest, DeepHierarchySaturates) {
  LubmOptions opt;
  opt.num_universities = 1;
  Graph g = GenerateLubm(opt);
  Graph sat = reasoner::Saturate(g);
  // FullProfessor chains to Person: 4 extra types per professor at least.
  EXPECT_GT(sat.types().size(), g.types().size() * 2);
}

TEST(LubmGeneratorTest, UntypedPublicationsTypedBySaturation) {
  LubmOptions opt;
  opt.num_universities = 1;
  opt.untyped_publication_fraction = 1.0;
  Graph g = GenerateLubm(opt);
  Graph sat = reasoner::Saturate(g);
  TermId publication =
      g.dict().Lookup(Term::Iri("http://lubm.example.org/Publication"));
  TermId pub_author =
      g.dict().Lookup(Term::Iri("http://lubm.example.org/publicationAuthor"));
  ASSERT_NE(publication, kInvalidTermId);
  auto typed_after = TypedResources(sat);
  for (const Triple& t : g.data()) {
    if (t.p == pub_author) {
      EXPECT_TRUE(sat.Contains({t.s, g.vocab().rdf_type, publication}));
    }
  }
  (void)typed_after;
}

// ---------------------------------------------------------------- hetero

TEST(HeteroGeneratorTest, Deterministic) {
  HeteroOptions opt;
  opt.seed = 123;
  EXPECT_EQ(io::NTriplesWriter::ToString(GenerateHetero(opt)),
            io::NTriplesWriter::ToString(GenerateHetero(opt)));
}

TEST(HeteroGeneratorTest, WellBehaved) {
  for (uint64_t seed : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) {
    HeteroOptions opt;
    opt.seed = seed;
    Graph g = GenerateHetero(opt);
    EXPECT_TRUE(CheckWellBehaved(g).ok()) << "seed " << seed;
  }
}

TEST(HeteroGeneratorTest, RespectsTypeProbabilityExtremes) {
  HeteroOptions none, all;
  none.type_probability = 0.0;
  all.type_probability = 1.0;
  none.seed = all.seed = 9;
  EXPECT_EQ(GenerateHetero(none).types().size(), 0u);
  Graph g_all = GenerateHetero(all);
  GraphStats st = ComputeGraphStats(g_all);
  // Every node that appears only in data triples as pure literal targets may
  // stay untyped, but resource nodes are all typed.
  EXPECT_GT(st.num_typed_resources, 0u);
  EXPECT_EQ(g_all.types().empty(), false);
}

TEST(HeteroGeneratorTest, LiteralFractionProducesLiterals) {
  HeteroOptions opt;
  opt.literal_fraction = 1.0;
  opt.seed = 4;
  Graph g = GenerateHetero(opt);
  bool any_literal = false;
  for (const Triple& t : g.data()) {
    if (g.dict().Decode(t.o).is_literal()) any_literal = true;
  }
  EXPECT_TRUE(any_literal);
}

TEST(HeteroGeneratorTest, SchemaKnobs) {
  HeteroOptions opt;
  opt.num_subclass_edges = 0;
  opt.num_subproperty_edges = 0;
  opt.num_domain_constraints = 0;
  opt.num_range_constraints = 0;
  Graph g = GenerateHetero(opt);
  EXPECT_EQ(g.schema().size(), 0u);
}

TEST(HeteroGeneratorTest, EmptyNodesYieldsEmptyGraph) {
  HeteroOptions opt;
  opt.num_nodes = 0;
  Graph g = GenerateHetero(opt);
  EXPECT_EQ(g.data().size(), 0u);
}

}  // namespace
}  // namespace rdfsum::gen
