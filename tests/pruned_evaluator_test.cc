#include <gtest/gtest.h>

#include "gen/lubm.h"
#include "gen/paper_example.h"
#include "query/pruned_evaluator.h"
#include "query/rbgp.h"
#include "query/sparql_parser.h"
#include "reasoner/saturation.h"

namespace rdfsum::query {
namespace {

BgpQuery MustParse(const std::string& text) {
  auto q = ParseSparql(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

class PrunedEvaluatorTest : public ::testing::Test {
 protected:
  PrunedEvaluatorTest()
      : g_(gen::GenerateLubm([] {
          gen::LubmOptions opt;
          opt.num_universities = 1;
          return opt;
        }())),
        pruned_(g_) {}

  Graph g_;
  SummaryPrunedEvaluator pruned_;
};

TEST_F(PrunedEvaluatorTest, AgreesWithDirectEvaluationOnHits) {
  BgpQuery q = MustParse(
      "PREFIX l: <http://lubm.example.org/>\n"
      "SELECT ?p WHERE { ?p l:teacherOf ?c }");
  Graph g_inf = reasoner::Saturate(g_);
  BgpEvaluator direct(g_inf);
  EXPECT_TRUE(pruned_.ExistsMatch(q));
  auto expected = direct.Evaluate(q);
  auto actual = pruned_.Evaluate(q);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(actual->size(), expected->size());
}

TEST_F(PrunedEvaluatorTest, PrunesAbsentProperty) {
  BgpQuery q = MustParse(
      "PREFIX l: <http://lubm.example.org/>\n"
      "SELECT ?x WHERE { ?x l:neverUsedProperty ?y }");
  EXPECT_FALSE(pruned_.ExistsMatch(q));
  EXPECT_EQ(pruned_.stats().pruned_by_summary, 1u);
  EXPECT_EQ(pruned_.stats().graph_probes, 0u);
}

TEST_F(PrunedEvaluatorTest, PrunedEvaluateReturnsEmptyRows) {
  BgpQuery q = MustParse(
      "PREFIX l: <http://lubm.example.org/>\n"
      "SELECT ?x WHERE { ?x l:advisor ?a . ?a l:takesCourse ?c }");
  // Professors never take courses: the weak summary proves it (advisor
  // targets and takesCourse sources live in disjoint clique classes)...
  // unless the summary conflates them; either way the result must agree
  // with direct evaluation.
  Graph g_inf = reasoner::Saturate(g_);
  BgpEvaluator direct(g_inf);
  auto direct_rows = direct.Evaluate(q);
  auto pruned_rows = pruned_.Evaluate(q);
  ASSERT_TRUE(direct_rows.ok());
  ASSERT_TRUE(pruned_rows.ok());
  EXPECT_EQ(pruned_rows->size(), direct_rows->size());
}

TEST_F(PrunedEvaluatorTest, NeverPrunesAQueryWithAnswers) {
  // Soundness of pruning on a batch of generated RBGP queries.
  Graph g_inf = reasoner::Saturate(g_);
  Random rng(11);
  for (int i = 0; i < 30; ++i) {
    BgpQuery q = GenerateRbgpQuery(g_inf, rng);
    if (q.triples.empty()) continue;
    EXPECT_TRUE(pruned_.ExistsMatch(q)) << q.ToString();
  }
  EXPECT_EQ(pruned_.stats().pruned_by_summary, 0u);
}

TEST_F(PrunedEvaluatorTest, NonRbgpQueriesBypassTheSummary) {
  // Constant in object position: outside Definition 3, goes to the graph.
  BgpQuery q = MustParse(
      "PREFIX l: <http://lubm.example.org/>\n"
      "SELECT ?x WHERE { ?x l:name \"University 0\" }");
  EXPECT_TRUE(pruned_.ExistsMatch(q));
  EXPECT_GE(pruned_.stats().graph_probes, 1u);
}

TEST_F(PrunedEvaluatorTest, UnsaturatedModeMatchesExplicitOnly) {
  gen::BookExample book = gen::BuildBookExample();
  SummaryPrunedEvaluator::Options options;
  options.saturate = false;
  SummaryPrunedEvaluator pruned(book.graph, options);
  BgpQuery q = MustParse(
      "PREFIX b: <http://example.org/book/>\n"
      "SELECT ?x WHERE { ?x b:hasAuthor ?a }");
  // hasAuthor exists only implicitly; without saturation there is no match.
  EXPECT_FALSE(pruned.ExistsMatch(q));

  SummaryPrunedEvaluator saturated(book.graph);
  EXPECT_TRUE(saturated.ExistsMatch(q));
}

TEST_F(PrunedEvaluatorTest, StrongSummaryPrunesAtLeastAsMuchAsWeak) {
  // S refines W, so everything W prunes, S prunes too.
  Graph g_inf = reasoner::Saturate(g_);
  SummaryPrunedEvaluator::Options strong_opt;
  strong_opt.kind = summary::SummaryKind::kStrong;
  SummaryPrunedEvaluator strong(g_, strong_opt);

  std::vector<std::string> texts = {
      "PREFIX l: <http://lubm.example.org/>\n"
      "SELECT ?x WHERE { ?x l:takesCourse ?c . ?c l:teacherOf ?y }",
      "PREFIX l: <http://lubm.example.org/>\n"
      "SELECT ?x WHERE { ?x l:worksFor ?d . ?x l:takesCourse ?c }",
      "PREFIX l: <http://lubm.example.org/>\n"
      "SELECT ?x WHERE { ?x l:headOf ?d . ?d l:advisor ?p }",
  };
  for (const auto& text : texts) {
    BgpQuery q = MustParse(text);
    bool weak_says = pruned_.ExistsMatch(q);
    bool strong_says = strong.ExistsMatch(q);
    Graph gi = reasoner::Saturate(g_);
    BgpEvaluator direct(gi);
    bool truth = direct.ExistsMatch(q);
    // Neither may prune a true hit.
    if (truth) {
      EXPECT_TRUE(weak_says);
      EXPECT_TRUE(strong_says);
    }
    // Pruning is monotone: if weak pruned, refinement cannot resurrect it.
    if (!weak_says) {
      EXPECT_FALSE(truth);
    }
    if (!strong_says) {
      EXPECT_FALSE(truth);
    }
  }
}

}  // namespace
}  // namespace rdfsum::query
