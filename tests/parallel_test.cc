#include <gtest/gtest.h>

#include "gen/bsbm.h"
#include "gen/hetero.h"
#include "gen/lubm.h"
#include "gen/paper_example.h"
#include "summary/isomorphism.h"
#include "summary/parallel.h"
#include "summary/property_checks.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {
namespace {

TEST(ParallelWeakTest, IdenticalPartitionToBatchOnFigure2) {
  gen::Figure2Example ex = gen::BuildFigure2();
  SummaryResult batch = Summarize(ex.graph, SummaryKind::kWeak);
  ParallelWeakOptions options;
  options.num_threads = 3;
  SummaryResult par = ParallelWeakSummarize(ex.graph, options);
  // The parallel path promises the *same* partition, so node-for-node the
  // grouping agrees (minted URIs differ).
  for (const auto& [n, h] : batch.node_map) {
    ASSERT_TRUE(par.node_map.count(n));
  }
  for (const auto& [n1, h1] : batch.node_map) {
    for (const auto& [n2, h2] : batch.node_map) {
      EXPECT_EQ(h1 == h2, par.node_map.at(n1) == par.node_map.at(n2));
    }
  }
  EXPECT_TRUE(AreSummariesIsomorphic(batch.graph, par.graph));
}

class ParallelWeakSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(ParallelWeakSweepTest, MatchesBatchAcrossThreadCounts) {
  auto [threads, seed] = GetParam();
  gen::HeteroOptions opt;
  opt.seed = seed;
  opt.num_nodes = 200;
  opt.num_properties = 14;
  opt.type_probability = 0.4;
  Graph g = gen::GenerateHetero(opt);
  SummaryResult batch = Summarize(g, SummaryKind::kWeak);
  ParallelWeakOptions options;
  options.num_threads = threads;
  SummaryResult par = ParallelWeakSummarize(g, options);
  EXPECT_EQ(par.stats.num_data_nodes, batch.stats.num_data_nodes);
  EXPECT_EQ(par.graph.NumTriples(), batch.graph.NumTriples());
  EXPECT_TRUE(AreSummariesIsomorphic(batch.graph, par.graph));
  EXPECT_TRUE(CheckHomomorphism(g, par).ok());
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndSeeds, ParallelWeakSweepTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(7, 19, 42)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ParallelWeakTest, MatchesBatchOnBsbm) {
  gen::BsbmOptions opt;
  opt.num_products = 300;
  Graph g = gen::GenerateBsbm(opt);
  SummaryResult batch = Summarize(g, SummaryKind::kWeak);
  SummaryResult par = ParallelWeakSummarize(g);
  EXPECT_TRUE(AreSummariesIsomorphic(batch.graph, par.graph));
}

TEST(ParallelWeakTest, MatchesBatchOnLubm) {
  gen::LubmOptions opt;
  opt.num_universities = 2;
  Graph g = gen::GenerateLubm(opt);
  SummaryResult batch = Summarize(g, SummaryKind::kWeak);
  SummaryResult par = ParallelWeakSummarize(g);
  EXPECT_TRUE(AreSummariesIsomorphic(batch.graph, par.graph));
}

TEST(ParallelWeakTest, EmptyGraph) {
  Graph g;
  SummaryResult par = ParallelWeakSummarize(g);
  EXPECT_TRUE(par.graph.Empty());
}

TEST(ParallelWeakTest, TypesOnlyGraph) {
  Graph g;
  Dictionary& d = g.dict();
  g.Add({d.EncodeIri("x"), g.vocab().rdf_type, d.EncodeIri("C1")});
  g.Add({d.EncodeIri("y"), g.vocab().rdf_type, d.EncodeIri("C2")});
  SummaryResult par = ParallelWeakSummarize(g);
  EXPECT_EQ(par.stats.num_data_nodes, 1u);  // Nτ
  EXPECT_EQ(par.graph.types().size(), 2u);
}

TEST(ParallelWeakTest, MoreThreadsThanTriples) {
  Graph g;
  Dictionary& d = g.dict();
  g.Add({d.EncodeIri("a"), d.EncodeIri("p"), d.EncodeIri("b")});
  ParallelWeakOptions options;
  options.num_threads = 64;
  SummaryResult par = ParallelWeakSummarize(g, options);
  EXPECT_EQ(par.stats.num_data_nodes, 2u);
}

TEST(ParallelWeakTest, RecordMembers) {
  gen::Figure2Example ex = gen::BuildFigure2();
  ParallelWeakOptions options;
  options.record_members = true;
  SummaryResult par = ParallelWeakSummarize(ex.graph, options);
  EXPECT_EQ(par.members.at(par.node_map.at(ex.r1)).size(), 5u);
}

}  // namespace
}  // namespace rdfsum::summary
