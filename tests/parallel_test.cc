#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "gen/bsbm.h"
#include "gen/hetero.h"
#include "gen/lubm.h"
#include "gen/paper_example.h"
#include "io/ntriples_writer.h"
#include "summary/isomorphism.h"
#include "summary/node_partition.h"
#include "summary/parallel.h"
#include "summary/property_checks.h"
#include "summary/reference_partition.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {
namespace {

// Thread counts the sweeps cover: sequential, even split, an odd count that
// leaves ragged shard ranges, and 0 = hardware concurrency.
constexpr uint32_t kThreadCounts[] = {1, 2, 7, 0};

void ExpectIdenticalPartition(const NodePartition& got,
                              const NodePartition& want, const char* label) {
  EXPECT_EQ(got.num_classes, want.num_classes) << label;
  ASSERT_EQ(got.class_of.size(), want.class_of.size()) << label;
  for (const auto& [node, cls] : want.class_of) {
    auto it = got.class_of.find(node);
    ASSERT_NE(it, got.class_of.end()) << label << " missing node " << node;
    EXPECT_EQ(it->second, cls) << label << " node " << node;
  }
}

Graph HeteroGraph(uint64_t seed) {
  gen::HeteroOptions opt;
  opt.seed = seed;
  opt.num_nodes = 200;
  opt.num_properties = 14;
  opt.type_probability = 0.4;
  return gen::GenerateHetero(opt);
}

// ---- Parallel weak --------------------------------------------------------

TEST(ParallelWeakTest, IdenticalPartitionToBatchOnFigure2) {
  gen::Figure2Example ex = gen::BuildFigure2();
  SummaryResult batch = Summarize(ex.graph, SummaryKind::kWeak);
  ParallelWeakOptions options;
  options.num_threads = 3;
  SummaryResult par = ParallelWeakSummarize(ex.graph, options);
  // The parallel path promises the *same* partition, so node-for-node the
  // grouping agrees (minted URIs differ).
  for (const auto& [n, h] : batch.node_map) {
    ASSERT_TRUE(par.node_map.count(n));
  }
  for (const auto& [n1, h1] : batch.node_map) {
    for (const auto& [n2, h2] : batch.node_map) {
      EXPECT_EQ(h1 == h2, par.node_map.at(n1) == par.node_map.at(n2));
    }
  }
  EXPECT_TRUE(AreSummariesIsomorphic(batch.graph, par.graph));
}

class ParallelWeakSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(ParallelWeakSweepTest, PartitionByteIdenticalAcrossThreadCounts) {
  auto [threads, seed] = GetParam();
  Graph g = HeteroGraph(seed);
  // Byte-identity against both the sequential substrate path and the frozen
  // pre-substrate oracle: same class_of, same canonical class ids.
  NodePartition par = ComputeParallelWeakPartition(g, threads);
  ExpectIdenticalPartition(par, ComputeWeakPartition(g), "vs sequential");
  ExpectIdenticalPartition(par, ReferenceWeakPartition(g), "vs reference");

  SummaryResult batch = Summarize(g, SummaryKind::kWeak);
  ParallelWeakOptions options;
  options.num_threads = threads;
  SummaryResult summarized = ParallelWeakSummarize(g, options);
  EXPECT_EQ(summarized.stats.num_data_nodes, batch.stats.num_data_nodes);
  EXPECT_EQ(summarized.graph.NumTriples(), batch.graph.NumTriples());
  EXPECT_TRUE(AreSummariesIsomorphic(batch.graph, summarized.graph));
  EXPECT_TRUE(CheckHomomorphism(g, summarized).ok());
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndSeeds, ParallelWeakSweepTest,
    ::testing::Combine(::testing::ValuesIn(kThreadCounts),
                       ::testing::Values(7, 19, 42)),
    [](const auto& info) {
      uint32_t t = std::get<0>(info.param);
      return (t == 0 ? std::string("hw") : "t" + std::to_string(t)) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(ParallelWeakTest, MatchesBatchOnBsbm) {
  gen::BsbmOptions opt;
  opt.num_products = 300;
  Graph g = gen::GenerateBsbm(opt);
  SummaryResult batch = Summarize(g, SummaryKind::kWeak);
  SummaryResult par = ParallelWeakSummarize(g);
  EXPECT_TRUE(AreSummariesIsomorphic(batch.graph, par.graph));
  for (uint32_t threads : kThreadCounts) {
    ExpectIdenticalPartition(ComputeParallelWeakPartition(g, threads),
                             ReferenceWeakPartition(g), "bsbm");
  }
}

TEST(ParallelWeakTest, MatchesBatchOnLubm) {
  gen::LubmOptions opt;
  opt.num_universities = 2;
  Graph g = gen::GenerateLubm(opt);
  SummaryResult batch = Summarize(g, SummaryKind::kWeak);
  SummaryResult par = ParallelWeakSummarize(g);
  EXPECT_TRUE(AreSummariesIsomorphic(batch.graph, par.graph));
  for (uint32_t threads : kThreadCounts) {
    ExpectIdenticalPartition(ComputeParallelWeakPartition(g, threads),
                             ReferenceWeakPartition(g), "lubm");
  }
}

TEST(ParallelWeakTest, EmptyGraph) {
  Graph g;
  for (uint32_t threads : kThreadCounts) {
    ParallelWeakOptions options;
    options.num_threads = threads;
    SummaryResult par = ParallelWeakSummarize(g, options);
    EXPECT_TRUE(par.graph.Empty());
  }
}

TEST(ParallelWeakTest, SinglePropertyGraph) {
  // One property: all subjects collapse through the source anchor, all
  // objects through the target anchor — two classes, at any thread count.
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("p");
  for (int i = 0; i < 40; ++i) {
    g.Add({d.EncodeIri("s" + std::to_string(i)), p,
           d.EncodeIri("o" + std::to_string(i))});
  }
  for (uint32_t threads : kThreadCounts) {
    ParallelWeakOptions options;
    options.num_threads = threads;
    SummaryResult par = ParallelWeakSummarize(g, options);
    EXPECT_EQ(par.stats.num_data_nodes, 2u) << "threads " << threads;
    ExpectIdenticalPartition(ComputeParallelWeakPartition(g, threads),
                             ReferenceWeakPartition(g), "single-property");
  }
}

TEST(ParallelWeakTest, TypesOnlyGraph) {
  Graph g;
  Dictionary& d = g.dict();
  g.Add({d.EncodeIri("x"), g.vocab().rdf_type, d.EncodeIri("C1")});
  g.Add({d.EncodeIri("y"), g.vocab().rdf_type, d.EncodeIri("C2")});
  SummaryResult par = ParallelWeakSummarize(g);
  EXPECT_EQ(par.stats.num_data_nodes, 1u);  // Nτ
  EXPECT_EQ(par.graph.types().size(), 2u);
}

TEST(ParallelWeakTest, MoreThreadsThanTriples) {
  Graph g;
  Dictionary& d = g.dict();
  g.Add({d.EncodeIri("a"), d.EncodeIri("p"), d.EncodeIri("b")});
  ParallelWeakOptions options;
  options.num_threads = 64;
  SummaryResult par = ParallelWeakSummarize(g, options);
  EXPECT_EQ(par.stats.num_data_nodes, 2u);
}

TEST(ParallelWeakTest, DeterministicSummariesAcrossThreadCounts) {
  // Two identically-built graphs summarized with different thread counts
  // serialize to byte-identical N-Triples: same partition, same canonical
  // class ids, same minted URIs.
  Graph g3 = HeteroGraph(23);
  Graph g5 = HeteroGraph(23);
  ParallelWeakOptions o3;
  o3.num_threads = 3;
  ParallelWeakOptions o5;
  o5.num_threads = 5;
  SummaryResult r3 = ParallelWeakSummarize(g3, o3);
  SummaryResult r5 = ParallelWeakSummarize(g5, o5);
  EXPECT_EQ(io::NTriplesWriter::ToString(r3.graph),
            io::NTriplesWriter::ToString(r5.graph));

  // And two runs at the same thread count are byte-identical too.
  Graph g3b = HeteroGraph(23);
  SummaryResult r3b = ParallelWeakSummarize(g3b, o3);
  EXPECT_EQ(io::NTriplesWriter::ToString(r3.graph),
            io::NTriplesWriter::ToString(r3b.graph));
}

TEST(ParallelWeakTest, RecordMembers) {
  gen::Figure2Example ex = gen::BuildFigure2();
  ParallelWeakOptions options;
  options.record_members = true;
  SummaryResult par = ParallelWeakSummarize(ex.graph, options);
  EXPECT_EQ(par.members.at(par.node_map.at(ex.r1)).size(), 5u);
}

// ---- Parallel bisimulation ------------------------------------------------

class ParallelBisimSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(ParallelBisimSweepTest, PartitionByteIdenticalAcrossThreadCounts) {
  auto [threads, depth] = GetParam();
  Graph g = HeteroGraph(11);
  for (BisimulationDirection dir :
       {BisimulationDirection::kForward, BisimulationDirection::kBackward,
        BisimulationDirection::kForwardBackward}) {
    NodePartition seq = ComputeBisimulationPartition(g, depth, true, dir);
    NodePartition par =
        ComputeBisimulationPartition(g, depth, true, dir, threads);
    ExpectIdenticalPartition(par, seq, "vs sequential");
  }
  // The fb default additionally matches the frozen pre-substrate oracle.
  NodePartition par_fb = ComputeBisimulationPartition(
      g, depth, true, BisimulationDirection::kForwardBackward, threads);
  ExpectIdenticalPartition(par_fb, ReferenceBisimulationPartition(g, depth, true),
                           "vs reference");
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndDepths, ParallelBisimSweepTest,
    ::testing::Combine(::testing::ValuesIn(kThreadCounts),
                       ::testing::Values(0u, 1u, 3u)),
    [](const auto& info) {
      uint32_t t = std::get<0>(info.param);
      return (t == 0 ? std::string("hw") : "t" + std::to_string(t)) +
             "_depth" + std::to_string(std::get<1>(info.param));
    });

TEST(ParallelBisimulationTest, SummaryMatchesSequentialFacade) {
  Graph g = HeteroGraph(29);
  SummaryOptions options;
  options.bisimulation_depth = 2;
  SummaryResult batch = Summarize(g, SummaryKind::kBisimulation, options);
  ParallelBisimulationOptions popt;
  popt.num_threads = 4;
  popt.depth = 2;
  SummaryResult par = ParallelBisimulationSummarize(g, popt);
  EXPECT_EQ(par.stats.num_data_nodes, batch.stats.num_data_nodes);
  EXPECT_EQ(par.graph.NumTriples(), batch.graph.NumTriples());
  EXPECT_TRUE(AreSummariesIsomorphic(batch.graph, par.graph));
  EXPECT_TRUE(CheckHomomorphism(g, par).ok());
}

TEST(ParallelBisimulationTest, DeterministicSummariesAcrossThreadCounts) {
  Graph g2 = HeteroGraph(37);
  Graph g7 = HeteroGraph(37);
  ParallelBisimulationOptions o2;
  o2.num_threads = 2;
  ParallelBisimulationOptions o7;
  o7.num_threads = 7;
  SummaryResult r2 = ParallelBisimulationSummarize(g2, o2);
  SummaryResult r7 = ParallelBisimulationSummarize(g7, o7);
  EXPECT_EQ(io::NTriplesWriter::ToString(r2.graph),
            io::NTriplesWriter::ToString(r7.graph));
}

TEST(ParallelBisimulationTest, EmptyGraph) {
  Graph g;
  ParallelBisimulationOptions options;
  options.num_threads = 5;
  SummaryResult par = ParallelBisimulationSummarize(g, options);
  EXPECT_TRUE(par.graph.Empty());
}

TEST(ParallelBisimulationTest, RecordMembers) {
  gen::Figure2Example ex = gen::BuildFigure2();
  ParallelBisimulationOptions options;
  options.record_members = true;
  options.num_threads = 3;
  SummaryResult par = ParallelBisimulationSummarize(ex.graph, options);
  size_t total = 0;
  for (const auto& [h, members] : par.members) total += members.size();
  EXPECT_EQ(total, par.node_map.size());
}

}  // namespace
}  // namespace rdfsum::summary
