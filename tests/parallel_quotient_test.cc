// Differential wall for the parallel quotient construction: with
// SummaryOptions::num_threads != 1 the summary must be BYTE-identical to the
// sequential build — same minted urn:rdfsum: ids, same triple insertion
// order, same serialized N-Triples — for every summary kind, dataset shape,
// raw/saturated input, and thread count. Minting advances the shared
// dictionary's counter, so every comparison builds the input graph twice
// (identical construction => identical TermIds) and summarizes each copy
// once, exactly like the determinism tests in parallel_test.cc.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "gen/bsbm.h"
#include "gen/hetero.h"
#include "gen/lubm.h"
#include "gen/paper_example.h"
#include "io/ntriples_writer.h"
#include "reasoner/saturation.h"
#include "summary/node_partition.h"
#include "summary/property_checks.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {
namespace {

// 1 is the sequential baseline; 2/4 split evenly, 7 leaves ragged shard
// ranges, 8 exceeds the class/type counts of the small datasets, 0 = all
// hardware threads.
constexpr uint32_t kThreadCounts[] = {2, 4, 7, 8, 0};

constexpr SummaryKind kAllKinds[] = {
    SummaryKind::kWeak,         SummaryKind::kStrong,
    SummaryKind::kTypedWeak,    SummaryKind::kTypedStrong,
    SummaryKind::kTypeBased,    SummaryKind::kBisimulation,
};

enum class Dataset { kBsbm, kLubm, kPaper, kHetero };

const char* DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kBsbm: return "bsbm";
    case Dataset::kLubm: return "lubm";
    case Dataset::kPaper: return "paper";
    case Dataset::kHetero: return "hetero";
  }
  return "?";
}

/// Deterministic generator: two calls build byte-identical graphs (same
/// dictionary ids, same triple order).
Graph MakeGraph(Dataset d, bool saturated) {
  Graph g;
  switch (d) {
    case Dataset::kBsbm: {
      gen::BsbmOptions opt;
      opt.num_products = 60;
      g = gen::GenerateBsbm(opt);
      break;
    }
    case Dataset::kLubm: {
      gen::LubmOptions opt;
      opt.num_universities = 1;
      g = gen::GenerateLubm(opt);
      break;
    }
    case Dataset::kPaper:
      g = gen::BuildFigure2().graph;
      break;
    case Dataset::kHetero: {
      gen::HeteroOptions opt;
      opt.seed = 13;
      opt.num_nodes = 150;
      opt.num_properties = 11;
      opt.type_probability = 0.35;
      g = gen::GenerateHetero(opt);
      break;
    }
  }
  return saturated ? reasoner::Saturate(g) : g;
}

class ParallelQuotientWallTest
    : public ::testing::TestWithParam<std::tuple<Dataset, bool>> {};

TEST_P(ParallelQuotientWallTest, ByteIdenticalAcrossKindsAndThreadCounts) {
  auto [dataset, saturated] = GetParam();
  for (SummaryKind kind : kAllKinds) {
    Graph g_seq = MakeGraph(dataset, saturated);
    SummaryOptions seq_options;
    seq_options.num_threads = 1;
    seq_options.record_members = true;
    SummaryResult seq = Summarize(g_seq, kind, seq_options);
    const std::string seq_nt = io::NTriplesWriter::ToString(seq.graph);

    for (uint32_t threads : kThreadCounts) {
      Graph g_par = MakeGraph(dataset, saturated);
      SummaryOptions par_options = seq_options;
      par_options.num_threads = threads;
      SummaryResult par = Summarize(g_par, kind, par_options);
      const std::string label = std::string(SummaryKindName(kind)) + " t" +
                                std::to_string(threads);
      // Serialized summary (data, type, and schema insertion order plus
      // minted ids) is the byte-identity contract.
      EXPECT_EQ(seq_nt, io::NTriplesWriter::ToString(par.graph)) << label;
      // The representation maps agree id-for-id too.
      EXPECT_EQ(seq.node_map, par.node_map) << label;
      EXPECT_EQ(seq.stats.num_all_nodes, par.stats.num_all_nodes) << label;
      EXPECT_EQ(seq.stats.num_all_edges, par.stats.num_all_edges) << label;
      EXPECT_TRUE(CheckHomomorphism(g_par, par).ok()) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndSaturation, ParallelQuotientWallTest,
    ::testing::Combine(::testing::Values(Dataset::kBsbm, Dataset::kLubm,
                                         Dataset::kPaper, Dataset::kHetero),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(DatasetName(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_saturated" : "_raw");
    });

// The explicit-partition entry point shards identically: quotient an
// externally computed partition at several thread counts against the
// sequential build.
TEST(ParallelQuotientTest, ExplicitPartitionByteIdentical) {
  Graph g_seq = MakeGraph(Dataset::kHetero, /*saturated=*/false);
  NodePartition part_seq = ComputeWeakPartition(g_seq);
  SummaryResult seq =
      QuotientByPartition(g_seq, part_seq, SummaryKind::kWeak, {}).value();
  const std::string seq_nt = io::NTriplesWriter::ToString(seq.graph);
  for (uint32_t threads : kThreadCounts) {
    Graph g_par = MakeGraph(Dataset::kHetero, /*saturated=*/false);
    NodePartition part_par = ComputeWeakPartition(g_par);
    SummaryOptions options;
    options.num_threads = threads;
    SummaryResult par =
        QuotientByPartition(g_par, part_par, SummaryKind::kWeak, options)
            .value();
    EXPECT_EQ(seq_nt, io::NTriplesWriter::ToString(par.graph))
        << "threads " << threads;
  }
}

TEST(ParallelQuotientTest, RecordMembersMatchesSequential) {
  Graph g_seq = MakeGraph(Dataset::kBsbm, /*saturated=*/false);
  SummaryOptions seq_options;
  seq_options.record_members = true;
  SummaryResult seq = Summarize(g_seq, SummaryKind::kStrong, seq_options);

  Graph g_par = MakeGraph(Dataset::kBsbm, /*saturated=*/false);
  SummaryOptions par_options = seq_options;
  par_options.num_threads = 4;
  SummaryResult par = Summarize(g_par, SummaryKind::kStrong, par_options);
  ASSERT_EQ(seq.members.size(), par.members.size());
  for (const auto& [node, members] : seq.members) {
    auto it = par.members.find(node);
    ASSERT_NE(it, par.members.end());
    EXPECT_EQ(members, it->second);
  }
}

TEST(ParallelQuotientTest, EmptyGraphAllThreadCounts) {
  for (uint32_t threads : kThreadCounts) {
    Graph g;
    SummaryOptions options;
    options.num_threads = threads;
    SummaryResult r = Summarize(g, SummaryKind::kWeak, options);
    EXPECT_TRUE(r.graph.Empty()) << "threads " << threads;
  }
}

TEST(ParallelQuotientTest, MoreThreadsThanTriples) {
  Graph g;
  Dictionary& d = g.dict();
  g.Add({d.EncodeIri("a"), d.EncodeIri("p"), d.EncodeIri("b")});
  g.Add({d.EncodeIri("a"), g.vocab().rdf_type, d.EncodeIri("C")});
  SummaryOptions options;
  options.num_threads = 64;
  SummaryResult r = Summarize(g, SummaryKind::kWeak, options);
  EXPECT_EQ(r.stats.num_data_edges, 1u);
  EXPECT_EQ(r.stats.num_type_edges, 1u);
}

// A partition that misses graph nodes returns kInvalidArgument on both the
// threaded and sequential paths (the library does not throw).
TEST(ParallelQuotientTest, IncompletePartitionReturnsInvalidArgument) {
  Graph g = MakeGraph(Dataset::kPaper, /*saturated=*/false);
  NodePartition partial;
  partial.num_classes = 1;  // covers no node at all
  SummaryOptions options;
  options.num_threads = 4;
  auto par = QuotientByPartition(g, partial, SummaryKind::kWeak, options);
  ASSERT_FALSE(par.ok());
  EXPECT_TRUE(par.status().IsInvalidArgument()) << par.status().ToString();
  auto seq = QuotientByPartition(g, partial, SummaryKind::kWeak, {});
  ASSERT_FALSE(seq.ok());
  EXPECT_TRUE(seq.status().IsInvalidArgument()) << seq.status().ToString();
}

}  // namespace
}  // namespace rdfsum::summary
