#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/vocabulary.h"

namespace rdfsum {
namespace {

TEST(TermTest, Factories) {
  Term iri = Term::Iri("http://a");
  EXPECT_TRUE(iri.is_iri());
  EXPECT_EQ(iri.lexical, "http://a");

  Term lit = Term::Literal("hi");
  EXPECT_TRUE(lit.is_literal());

  Term blank = Term::Blank("b0");
  EXPECT_TRUE(blank.is_blank());
}

TEST(TermTest, NTriplesRendering) {
  EXPECT_EQ(Term::Iri("http://a").ToNTriples(), "<http://a>");
  EXPECT_EQ(Term::Blank("b0").ToNTriples(), "_:b0");
  EXPECT_EQ(Term::Literal("hi").ToNTriples(), "\"hi\"");
  EXPECT_EQ(Term::LangLiteral("hi", "en").ToNTriples(), "\"hi\"@en");
  EXPECT_EQ(Term::TypedLiteral("5", "http://dt").ToNTriples(),
            "\"5\"^^<http://dt>");
}

TEST(TermTest, LiteralEscaping) {
  EXPECT_EQ(Term::Literal("a\"b\\c\nd\te\r").ToNTriples(),
            "\"a\\\"b\\\\c\\nd\\te\\r\"");
}

TEST(TermTest, EqualityDistinguishesKindsAndTags) {
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
  EXPECT_FALSE(Term::Iri("x") == Term::Literal("x"));
  EXPECT_FALSE(Term::Literal("x") == Term::LangLiteral("x", "en"));
  EXPECT_FALSE(Term::LangLiteral("x", "en") == Term::LangLiteral("x", "fr"));
  EXPECT_FALSE(Term::Literal("x") == Term::TypedLiteral("x", "dt"));
}

TEST(DictionaryTest, EncodeIsIdempotent) {
  Dictionary d;
  TermId a = d.EncodeIri("http://a");
  TermId b = d.EncodeIri("http://a");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kInvalidTermId);
}

TEST(DictionaryTest, IdsAreDenseFromOne) {
  Dictionary d;
  TermId a = d.EncodeIri("http://a");
  TermId b = d.EncodeIri("http://b");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(d.size(), 3u);  // including reserved slot 0
}

TEST(DictionaryTest, DistinctKindsGetDistinctIds) {
  Dictionary d;
  TermId iri = d.Encode(Term::Iri("x"));
  TermId lit = d.Encode(Term::Literal("x"));
  TermId blank = d.Encode(Term::Blank("x"));
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, blank);
  EXPECT_NE(iri, blank);
}

TEST(DictionaryTest, DecodeRoundTrip) {
  Dictionary d;
  Term original = Term::LangLiteral("bonjour", "fr");
  TermId id = d.Encode(original);
  EXPECT_EQ(d.Decode(id), original);
}

TEST(DictionaryTest, LookupMissingReturnsInvalid) {
  Dictionary d;
  EXPECT_EQ(d.Lookup(Term::Iri("nope")), kInvalidTermId);
}

TEST(DictionaryTest, ContainsChecksRange) {
  Dictionary d;
  TermId a = d.EncodeIri("a");
  EXPECT_TRUE(d.Contains(a));
  EXPECT_FALSE(d.Contains(kInvalidTermId));
  EXPECT_FALSE(d.Contains(999));
}

TEST(DictionaryTest, MintedUrisAreFreshAndRecognized) {
  Dictionary d;
  TermId m1 = d.MintNodeUri("node:w");
  TermId m2 = d.MintNodeUri("node:w");
  EXPECT_NE(m1, m2);
  EXPECT_TRUE(d.IsMinted(m1));
  EXPECT_TRUE(d.IsMinted(m2));
  EXPECT_FALSE(d.IsMinted(d.EncodeIri("http://user/iri")));
}

TEST(DictionaryTest, MintSkipsCollidingUserUris) {
  Dictionary d;
  // A user interned a URI that looks minted; minting must not return it.
  TermId user = d.EncodeIri("urn:rdfsum:node:x:0");
  TermId m = d.MintNodeUri("node:x");
  EXPECT_NE(m, user);
}

TEST(DictionaryTest, MintedLiteralLookalikeIsNotMinted) {
  Dictionary d;
  TermId lit = d.EncodeLiteral("urn:rdfsum:node:w:0");
  EXPECT_FALSE(d.IsMinted(lit));
}

TEST(VocabularyTest, InternsBuiltins) {
  Dictionary d;
  Vocabulary v(d);
  EXPECT_NE(v.rdf_type, kInvalidTermId);
  EXPECT_TRUE(v.IsType(v.rdf_type));
  EXPECT_TRUE(v.IsSchemaProperty(v.subclass));
  EXPECT_TRUE(v.IsSchemaProperty(v.subproperty));
  EXPECT_TRUE(v.IsSchemaProperty(v.domain));
  EXPECT_TRUE(v.IsSchemaProperty(v.range));
  EXPECT_FALSE(v.IsSchemaProperty(v.rdf_type));
  EXPECT_FALSE(v.IsType(v.subclass));
}

TEST(TripleTest, OrderingAndEquality) {
  Triple a{1, 2, 3}, b{1, 2, 4}, c{1, 2, 3};
  EXPECT_EQ(a, c);
  EXPECT_LT(a, b);
  EXPECT_FALSE(b < a);
}

TEST(TripleTest, HashDistinguishesPermutations) {
  TripleHash h;
  EXPECT_NE(h(Triple{1, 2, 3}), h(Triple{3, 2, 1}));
  EXPECT_EQ(h(Triple{1, 2, 3}), h(Triple{1, 2, 3}));
}

}  // namespace
}  // namespace rdfsum
