// Differential wall for the cost-based planner: every planner mode must
// return a result set byte-identical to the frozen naive (textual-order)
// plan, across {BSBM, LUBM, paper example, hetero} x {raw, saturated}, on
// both fixed multi-join queries and generated RBGP workloads. Join order
// must never change answers — only speed.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gen/bsbm.h"
#include "gen/hetero.h"
#include "gen/lubm.h"
#include "gen/paper_example.h"
#include "query/evaluator.h"
#include "query/pruned_evaluator.h"
#include "query/rbgp.h"
#include "query/sparql_parser.h"
#include "reasoner/saturation.h"
#include "summary/cardinality.h"
#include "summary/summarizer.h"
#include "util/random.h"

namespace rdfsum::query {
namespace {

BgpQuery MustParse(const std::string& text) {
  auto q = ParseSparql(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

/// Canonical, order-independent rendering of a result set.
std::set<std::string> Canonical(const std::vector<Row>& rows) {
  std::set<std::string> out;
  for (const Row& row : rows) {
    std::string line;
    for (const Term& t : row) {
      line += t.ToNTriples();
      line += '\t';
    }
    out.insert(std::move(line));
  }
  return out;
}

struct Workload {
  std::string name;
  Graph graph;
  std::vector<BgpQuery> fixed_queries;
};

Workload BsbmWorkload() {
  gen::BsbmOptions opt;
  opt.num_products = 60;
  Workload w{"bsbm", gen::GenerateBsbm(opt), {}};
  const std::string prefix = "PREFIX b: <http://bsbm.example.org/>\n";
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?p ?l WHERE { ?p b:label ?l . ?p b:productFeature ?f . "
      "?p b:producer ?pr . ?pr b:country ?c }"));
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?o ?c WHERE { ?pr b:country ?c . ?p b:producer ?pr . "
      "?o b:offerProduct ?p }"));
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?r WHERE { ?r b:reviewFor ?p . ?r b:reviewer ?x . "
      "?x b:country ?c . ?p b:productFeature ?f }"));
  return w;
}

Workload LubmWorkload() {
  gen::LubmOptions opt;
  opt.num_universities = 1;
  Workload w{"lubm", gen::GenerateLubm(opt), {}};
  const std::string prefix = "PREFIX l: <http://lubm.example.org/>\n";
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?s ?d WHERE { ?s l:advisor ?a . ?a l:worksFor ?d . "
      "?d l:subOrganizationOf ?u }"));
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?x WHERE { ?x l:name ?n . ?x l:emailAddress ?e . "
      "?x l:worksFor ?dep }"));
  w.fixed_queries.push_back(MustParse(
      prefix + "ASK WHERE { ?x l:headOf ?d . ?x l:takesCourse ?c }"));
  return w;
}

Workload PaperWorkload() {
  gen::BookExample book = gen::BuildBookExample();
  Workload w{"paper", book.graph.Clone(), {}};
  const std::string prefix = "PREFIX b: <http://example.org/book/>\n";
  w.fixed_queries.push_back(MustParse(
      prefix +
      "SELECT ?x3 WHERE { ?x1 b:hasAuthor ?x2 . ?x2 b:hasName ?x3 . "
      "?x1 b:hasTitle \"Le Port des Brumes\" }"));
  w.fixed_queries.push_back(
      MustParse(prefix + "SELECT ?x WHERE { ?x a b:Publication }"));
  return w;
}

Workload HeteroWorkload() {
  gen::HeteroOptions opt;
  opt.num_nodes = 150;
  opt.seed = 17;
  return Workload{"hetero", gen::GenerateHetero(opt), {}};
}

class PlannerDifferentialTest : public ::testing::TestWithParam<bool> {};

void RunDifferential(const Workload& w, bool saturate) {
  Graph target = saturate ? reasoner::Saturate(w.graph) : w.graph.Clone();
  // kSummary gets a real estimator so the refinement path is exercised.
  summary::SummaryResult s =
      summary::Summarize(target, summary::SummaryKind::kWeak);
  summary::CardinalityEstimator estimator(target, s);
  EvaluatorOptions options;
  options.estimator = &estimator;
  BgpEvaluator eval(target, options);

  std::vector<BgpQuery> queries = w.fixed_queries;
  Random rng(42);
  for (int i = 0; i < 12; ++i) {
    BgpQuery q = GenerateRbgpQuery(target, rng);
    if (!q.triples.empty()) queries.push_back(std::move(q));
  }

  for (const BgpQuery& q : queries) {
    auto baseline = eval.Evaluate(q, SIZE_MAX, PlannerMode::kNaive);
    ASSERT_TRUE(baseline.ok()) << q.ToString();
    std::set<std::string> expected = Canonical(*baseline);
    for (PlannerMode mode :
         {PlannerMode::kGreedy, PlannerMode::kSummary}) {
      auto rows = eval.Evaluate(q, SIZE_MAX, mode);
      ASSERT_TRUE(rows.ok()) << q.ToString();
      EXPECT_EQ(Canonical(*rows), expected)
          << w.name << " mode=" << PlannerModeName(mode)
          << " saturate=" << saturate << "\n"
          << q.ToString();
      // Embedding counts (pre-projection) must agree too.
      EXPECT_EQ(eval.Explain(q, mode)->num_embeddings,
                eval.Explain(q, PlannerMode::kNaive)->num_embeddings)
          << q.ToString();
    }
  }
}

TEST_P(PlannerDifferentialTest, Bsbm) { RunDifferential(BsbmWorkload(), GetParam()); }
TEST_P(PlannerDifferentialTest, Lubm) { RunDifferential(LubmWorkload(), GetParam()); }
TEST_P(PlannerDifferentialTest, Paper) { RunDifferential(PaperWorkload(), GetParam()); }
TEST_P(PlannerDifferentialTest, Hetero) {
  RunDifferential(HeteroWorkload(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(RawAndSaturated, PlannerDifferentialTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "saturated" : "raw";
                         });

// The pruned evaluator must agree with direct evaluation under every
// planner mode, including the estimator-backed kSummary.
TEST(PrunedPlannerDifferentialTest, AllModesAgreeWithDirect) {
  gen::LubmOptions opt;
  opt.num_universities = 1;
  Graph g = gen::GenerateLubm(opt);
  Graph g_inf = reasoner::Saturate(g);
  BgpEvaluator direct(g_inf);

  for (PlannerMode mode : kAllPlannerModes) {
    SummaryPrunedEvaluator::Options options;
    options.planner = mode;
    SummaryPrunedEvaluator pruned(g, options);
    if (mode == PlannerMode::kSummary) {
      ASSERT_NE(pruned.estimator(), nullptr);
    } else {
      EXPECT_EQ(pruned.estimator(), nullptr);
    }
    Random rng(5);
    for (int i = 0; i < 10; ++i) {
      BgpQuery q = GenerateRbgpQuery(g_inf, rng);
      if (q.triples.empty()) continue;
      auto expected = direct.Evaluate(q, SIZE_MAX, PlannerMode::kNaive);
      auto actual = pruned.Evaluate(q);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(actual.ok());
      EXPECT_EQ(Canonical(*actual), Canonical(*expected))
          << PlannerModeName(mode) << " " << q.ToString();
    }
  }
}

TEST(PrunedPlannerDifferentialTest, PrunedExplainStillValidatesTheHead) {
  gen::LubmOptions opt;
  opt.num_universities = 1;
  Graph g = gen::GenerateLubm(opt);
  SummaryPrunedEvaluator pruned(g);
  // A query the summary prunes (unused property), with a manually broken
  // head: the error must win over the pruning shortcut.
  BgpQuery q = MustParse(
      "PREFIX l: <http://lubm.example.org/>\n"
      "SELECT ?x WHERE { ?x l:neverUsedProperty ?y }");
  q.distinguished = {"gone"};
  EXPECT_TRUE(pruned.Explain(q).status().IsInvalidArgument());
  // With a valid head the pruned explanation comes back unexecuted.
  q.distinguished = {"x"};
  auto ex = pruned.Explain(q);
  ASSERT_TRUE(ex.ok());
  EXPECT_TRUE(ex->pruned_by_summary);
  EXPECT_EQ(ex->num_embeddings, 0u);
}

}  // namespace
}  // namespace rdfsum::query
