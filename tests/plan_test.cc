// The cost-based query planner: plan shape (order, index choice, estimates),
// the plan-driven executor's regressions (limit edge cases, repeated
// variables, invalid heads), and the Explain() surface.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/paper_example.h"
#include "query/evaluator.h"
#include "query/plan.h"
#include "query/sparql_parser.h"

namespace rdfsum::query {
namespace {

BgpQuery MustParse(const std::string& text) {
  auto q = ParseSparql(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

/// A graph where the selectivity differences are unmistakable: property
/// "big" has 100 triples, "mid" 10, "tiny" 1, chained so a planner that
/// consults the stats must start at "tiny".
Graph MakeSkewedGraph() {
  Graph g;
  Dictionary& d = g.dict();
  TermId big = d.EncodeIri("http://skew/big");
  TermId mid = d.EncodeIri("http://skew/mid");
  TermId tiny = d.EncodeIri("http://skew/tiny");
  auto node = [&](const std::string& name) {
    return d.EncodeIri("http://skew/n/" + name);
  };
  // big: 100 distinct (ai, big, b{i%10}); mid: 10 (b_j, mid, c_{j%2});
  // tiny: 1 (c0, tiny, t).
  for (int i = 0; i < 100; ++i) {
    g.Add({node("a" + std::to_string(i)), big,
           node("b" + std::to_string(i % 10))});
  }
  for (int j = 0; j < 10; ++j) {
    g.Add({node("b" + std::to_string(j)), mid,
           node("c" + std::to_string(j % 2))});
  }
  g.Add({node("c0"), tiny, node("t")});
  return g;
}

const char* kSkewedChain =
    "SELECT ?a WHERE { ?a <http://skew/big> ?b . "
    "?b <http://skew/mid> ?c . ?c <http://skew/tiny> ?t }";

TEST(PlannerModeTest, NamesRoundTrip) {
  for (PlannerMode mode : kAllPlannerModes) {
    PlannerMode parsed;
    ASSERT_TRUE(ParsePlannerMode(PlannerModeName(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  PlannerMode parsed;
  EXPECT_TRUE(ParsePlannerMode("GREEDY", &parsed));  // case-insensitive
  EXPECT_EQ(parsed, PlannerMode::kGreedy);
  EXPECT_FALSE(ParsePlannerMode("volcano", &parsed));
}

TEST(QueryPlanTest, NaiveKeepsTextualOrder) {
  Graph g = MakeSkewedGraph();
  BgpEvaluator eval(g);
  QueryPlan plan = eval.Plan(MustParse(kSkewedChain), PlannerMode::kNaive);
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_EQ(plan.steps[0].pattern, 0u);
  EXPECT_EQ(plan.steps[1].pattern, 1u);
  EXPECT_EQ(plan.steps[2].pattern, 2u);
}

TEST(QueryPlanTest, GreedyStartsAtTheSelectiveEnd) {
  Graph g = MakeSkewedGraph();
  BgpEvaluator eval(g);
  QueryPlan plan = eval.Plan(MustParse(kSkewedChain), PlannerMode::kGreedy);
  ASSERT_EQ(plan.steps.size(), 3u);
  // tiny (1 row) first, then mid via the bound ?c, then big via bound ?b.
  EXPECT_EQ(plan.steps[0].pattern, 2u);
  EXPECT_EQ(plan.steps[1].pattern, 1u);
  EXPECT_EQ(plan.steps[2].pattern, 0u);
  // The greedy plan must be estimated cheaper than the naive one.
  QueryPlan naive = eval.Plan(MustParse(kSkewedChain), PlannerMode::kNaive);
  EXPECT_LT(plan.estimated_cost, naive.estimated_cost);
}

TEST(QueryPlanTest, IndexChoiceFollowsBindings) {
  Graph g = MakeSkewedGraph();
  BgpEvaluator eval(g);
  QueryPlan plan = eval.Plan(MustParse(kSkewedChain), PlannerMode::kGreedy);
  // Step 1 binds only the property: POS. Later steps have their subject
  // (or object) variable bound by earlier steps.
  EXPECT_EQ(plan.steps[0].index, store::IndexKind::kPos);
  EXPECT_EQ(plan.steps[1].index, store::IndexKind::kPos);  // (p, o) bound
  EXPECT_EQ(plan.steps[2].index, store::IndexKind::kPos);  // (p, o) bound
  QueryPlan naive = eval.Plan(MustParse(kSkewedChain), PlannerMode::kNaive);
  EXPECT_EQ(naive.steps[0].index, store::IndexKind::kPos);
  EXPECT_EQ(naive.steps[1].index, store::IndexKind::kSpo);  // ?b bound: (s, p)
  EXPECT_EQ(naive.steps[2].index, store::IndexKind::kSpo);
}

TEST(QueryPlanTest, AllModesReturnTheSameRows) {
  Graph g = MakeSkewedGraph();
  BgpEvaluator eval(g);
  BgpQuery q = MustParse(kSkewedChain);
  auto naive = eval.Evaluate(q, SIZE_MAX, PlannerMode::kNaive);
  ASSERT_TRUE(naive.ok());
  for (PlannerMode mode : kAllPlannerModes) {
    auto rows = eval.Evaluate(q, SIZE_MAX, mode);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), naive->size()) << PlannerModeName(mode);
  }
  // ?c = c0, ?b in {b0, b2, b4, b6, b8}, 10 a-nodes per b: 50 answers.
  EXPECT_EQ(naive->size(), 50u);
}

TEST(QueryPlanTest, ToStringListsEveryStep) {
  Graph g = MakeSkewedGraph();
  BgpEvaluator eval(g);
  QueryPlan plan = eval.Plan(MustParse(kSkewedChain));
  std::string rendered = plan.ToString();
  EXPECT_NE(rendered.find("greedy"), std::string::npos);
  EXPECT_NE(rendered.find("http://skew/tiny"), std::string::npos);
  EXPECT_NE(rendered.find("POS"), std::string::npos);
}

// ---------------------------------------------------------------- explain

TEST(ExplainTest, ActualsMatchTheKnownCardinalities) {
  Graph g = MakeSkewedGraph();
  BgpEvaluator eval(g);
  auto ex = eval.Explain(MustParse(kSkewedChain), PlannerMode::kGreedy);
  ASSERT_TRUE(ex.ok());
  ASSERT_EQ(ex->actual_rows.size(), 3u);
  EXPECT_EQ(ex->actual_rows[0], 1u);   // tiny
  EXPECT_EQ(ex->actual_rows[1], 5u);   // even-indexed b-nodes reach c0
  EXPECT_EQ(ex->actual_rows[2], 50u);  // 10 a-nodes per surviving b
  EXPECT_EQ(ex->num_embeddings, 50u);
  EXPECT_EQ(ex->num_result_rows, 50u);
  EXPECT_FALSE(ex->pruned_by_summary);
  EXPECT_NE(ex->ToString().find("actual"), std::string::npos);
}

TEST(ExplainTest, InvalidHeadIsAnError) {
  Graph g = MakeSkewedGraph();
  BgpEvaluator eval(g);
  // The parser rejects SELECT of an unbound variable, so build the broken
  // head manually: the evaluator-level error path must still fire.
  BgpQuery q = MustParse(kSkewedChain);
  q.distinguished = {"nosuchvar"};
  EXPECT_TRUE(eval.Explain(q).status().IsInvalidArgument());
  EXPECT_TRUE(eval.Evaluate(q).status().IsInvalidArgument());
}

// ------------------------------------------------------------- limit edges

TEST(EvaluateLimitTest, LimitZeroReturnsNoRows) {
  Graph g = MakeSkewedGraph();
  BgpEvaluator eval(g);
  BgpQuery q = MustParse("SELECT ?a ?b WHERE { ?a <http://skew/big> ?b }");
  auto rows = eval.Evaluate(q, /*limit=*/0);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(EvaluateLimitTest, LimitIsExact) {
  Graph g = MakeSkewedGraph();
  BgpEvaluator eval(g);
  BgpQuery q = MustParse("SELECT ?a ?b WHERE { ?a <http://skew/big> ?b }");
  for (size_t limit : {1u, 7u, 100u, 1000u}) {
    auto rows = eval.Evaluate(q, limit);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), std::min<size_t>(limit, 100));
  }
}

TEST(EvaluateLimitTest, LimitZeroOnBooleanQuery) {
  Graph g = MakeSkewedGraph();
  BgpEvaluator eval(g);
  BgpQuery q = MustParse("ASK WHERE { ?a <http://skew/big> ?b }");
  auto rows = eval.Evaluate(q, /*limit=*/0);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  // ExistsMatch is unaffected by row limits.
  EXPECT_TRUE(eval.ExistsMatch(q));
}

// ------------------------------------------------- executor special cases

TEST(PlanExecutorTest, RepeatedVariablePatternOnEveryMode) {
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("http://p");
  g.Add({d.EncodeIri("http://self"), p, d.EncodeIri("http://self")});
  g.Add({d.EncodeIri("http://a"), p, d.EncodeIri("http://b")});
  BgpEvaluator eval(g);
  BgpQuery q = MustParse("SELECT ?x WHERE { ?x <http://p> ?x }");
  for (PlannerMode mode : kAllPlannerModes) {
    auto rows = eval.Evaluate(q, SIZE_MAX, mode);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 1u) << PlannerModeName(mode);
    EXPECT_EQ((*rows)[0][0].lexical, "http://self");
  }
}

TEST(PlanExecutorTest, ImpossibleConstantShortCircuits) {
  Graph g = MakeSkewedGraph();
  BgpEvaluator eval(g);
  BgpQuery q = MustParse(
      "SELECT ?a WHERE { ?a <http://never/interned> ?b . "
      "?a <http://skew/big> ?c }");
  QueryPlan plan = eval.Plan(q);
  EXPECT_TRUE(plan.compiled.impossible);
  EXPECT_FALSE(eval.ExistsMatch(q));
  EXPECT_EQ(eval.CountEmbeddings(q), 0u);
}

TEST(PlanExecutorTest, CartesianProductStaysCorrect) {
  // Disconnected BGP: the executor must still enumerate the full product.
  Graph g = MakeSkewedGraph();
  BgpEvaluator eval(g);
  BgpQuery q = MustParse(
      "SELECT ?c ?t WHERE { ?c <http://skew/tiny> ?t . "
      "?x <http://skew/mid> ?y }");
  EXPECT_EQ(eval.CountEmbeddings(q), 10u);  // 1 tiny x 10 mid
  auto rows = eval.Evaluate(q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);  // projected on the tiny side only
}

// ----------------------------------------------------- parser edge cases

TEST(SparqlParserEdgeTest, RepeatedVariableKeepsOneSlot) {
  auto q = ParseSparql("SELECT ?x WHERE { ?x <http://p> ?x }");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->triples.size(), 1u);
  EXPECT_TRUE(q->triples[0].s.is_var);
  EXPECT_TRUE(q->triples[0].o.is_var);
  EXPECT_EQ(q->triples[0].s.var, q->triples[0].o.var);
  EXPECT_EQ(q->BodyVariables(), std::vector<std::string>{"x"});
}

TEST(SparqlParserEdgeTest, UnusedDistinguishedVariableIsRejected) {
  auto q = ParseSparql("SELECT ?gone WHERE { ?x <http://p> ?y }");
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsInvalidArgument());
  EXPECT_NE(q.status().ToString().find("gone"), std::string::npos);
}

TEST(SparqlParserEdgeTest, MixedUsedAndUnusedHeadIsRejected) {
  EXPECT_FALSE(ParseSparql("SELECT ?x ?gone WHERE { ?x <http://p> ?y }").ok());
}

}  // namespace
}  // namespace rdfsum::query
