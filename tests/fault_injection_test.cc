// Unit wall for the failpoint registry (util/fault_injection.h) and its
// integration with the named sites in the library. Everything that needs a
// live registry guards on FaultInjection::compiled_in() — in Release the
// macro sites compile to nothing and these tests skip.

#include <gtest/gtest.h>

#include <string>

#include "gen/bsbm.h"
#include "gen/paper_example.h"
#include "query/evaluator.h"
#include "query/sparql_parser.h"
#include "summary/persistence.h"
#include "summary/summarizer.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace rdfsum::util {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!FaultInjection::compiled_in()) {
      GTEST_SKIP() << "failpoints not compiled in (Release build)";
    }
    FaultInjection::Clear();
  }
  void TearDown() override { FaultInjection::Clear(); }
};

TEST_F(FaultInjectionTest, UnarmedHitIsOk) {
  EXPECT_FALSE(FaultInjection::enabled());
  EXPECT_TRUE(FaultInjection::Hit("nowhere:armed").ok());
}

TEST_F(FaultInjectionTest, ArmedHitReturnsTheStatus) {
  FaultInjection::Arm("t:a", Status::IOError("injected"));
  EXPECT_TRUE(FaultInjection::enabled());
  Status st = FaultInjection::Hit("t:a");
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  // Stays armed: every later hit fails too.
  EXPECT_TRUE(FaultInjection::Hit("t:a").IsIOError());
  // Other names are unaffected.
  EXPECT_TRUE(FaultInjection::Hit("t:b").ok());
}

TEST_F(FaultInjectionTest, CountdownDelaysTheFailure) {
  FaultInjection::ArmOptions options;
  options.countdown = 3;
  FaultInjection::Arm("t:cd", Status::Internal("boom"), options);
  EXPECT_TRUE(FaultInjection::Hit("t:cd").ok());
  EXPECT_TRUE(FaultInjection::Hit("t:cd").ok());
  EXPECT_TRUE(FaultInjection::Hit("t:cd").IsInternal());
  EXPECT_TRUE(FaultInjection::Hit("t:cd").IsInternal());
  EXPECT_EQ(FaultInjection::HitCount("t:cd"), 4u);
}

TEST_F(FaultInjectionTest, ClearDisarms) {
  FaultInjection::Arm("t:x", Status::Corruption("x"));
  ASSERT_TRUE(FaultInjection::Hit("t:x").IsCorruption());
  FaultInjection::Clear();
  EXPECT_FALSE(FaultInjection::enabled());
  EXPECT_TRUE(FaultInjection::Hit("t:x").ok());
}

TEST_F(FaultInjectionTest, RandomModeIsDeterministicPerSeed) {
  // With 100% probability every hit fails; the injected code is fixed.
  FaultInjection::ArmRandom(/*seed=*/42, /*percent=*/100);
  Status st = FaultInjection::Hit("t:any");
  EXPECT_FALSE(st.ok());
  FaultInjection::Clear();
  FaultInjection::ArmRandom(/*seed=*/42, /*percent=*/0);
  EXPECT_TRUE(FaultInjection::Hit("t:any").ok());
}

// ---- integration: the named sites actually fire -------------------------

TEST_F(FaultInjectionTest, PersistenceSitesInject) {
  gen::Figure2Example ex = gen::BuildFigure2();
  summary::SummaryResult r =
      summary::Summarize(ex.graph, summary::SummaryKind::kWeak);
  const std::string path = testing::TempDir() + "/fp.rdfsum";

  FaultInjection::Arm("persistence:write", Status::IOError("disk full"));
  Status save = summary::SaveSummary(r, path);
  EXPECT_TRUE(save.IsIOError()) << save.ToString();
  FaultInjection::Clear();
  ASSERT_TRUE(summary::SaveSummary(r, path).ok());

  FaultInjection::Arm("persistence:read", Status::IOError("torn read"));
  auto load = summary::LoadSummary(path);
  EXPECT_TRUE(load.status().IsIOError()) << load.status().ToString();
  FaultInjection::Clear();
  EXPECT_TRUE(summary::LoadSummary(path).ok());
}

TEST_F(FaultInjectionTest, HashJoinBuildSiteDegradesOrFails) {
  gen::BsbmOptions gen_options;
  gen_options.num_products = 100;
  const Graph g = gen::GenerateBsbm(gen_options);
  query::BgpQuery q =
      query::ParseSparql(
          "SELECT ?p ?f WHERE { ?p <http://bsbm.example.org/producer> ?f . "
          "?p <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
          "<http://bsbm.example.org/Product> . }")
          .value();
  query::BgpEvaluator eval(g);
  query::CursorOptions options;
  options.hash_join = query::HashJoinMode::kNever;
  auto rows = eval.Evaluate(q, options);
  ASSERT_TRUE(rows.ok());

  // An injected kResourceExhausted at the build site means "the budget said
  // no": the join degrades to NLJ and still returns every row.
  options.hash_join = query::HashJoinMode::kAlways;
  FaultInjection::Arm("query:hashjoin-build",
                      Status::ResourceExhausted("injected"));
  auto degraded = eval.Evaluate(q, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->size(), rows->size());
  EXPECT_GE(FaultInjection::HitCount("query:hashjoin-build"), 1u);

  // Any other injected failure has no graceful escape and must surface.
  FaultInjection::Clear();
  FaultInjection::Arm("query:hashjoin-build", Status::IOError("injected"));
  auto failed = eval.Evaluate(q, options);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsIOError()) << failed.status().ToString();
}

TEST_F(FaultInjectionTest, QuotientShardSiteSurfacesThroughTrySummarize) {
  gen::Figure2Example ex = gen::BuildFigure2();
  summary::SummaryOptions options;
  options.num_threads = 4;
  FaultInjection::Arm("quotient:shard", Status::Internal("shard died"));
  auto r = summary::TrySummarize(ex.graph, summary::SummaryKind::kWeak,
                                 options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal()) << r.status().ToString();
  FaultInjection::Clear();
  EXPECT_TRUE(
      summary::TrySummarize(ex.graph, summary::SummaryKind::kWeak, options)
          .ok());
}

}  // namespace
}  // namespace rdfsum::util
