// The frozen-image corruption wall (docs/FORMAT.md §8): images are
// truncated at every length, bit-flipped at every byte, fed wrong formats
// (a v1 summary file, random bytes), given nonzero padding, and given
// adversarial counts behind *valid* checksums. FrozenImage::Attach must
// return kCorruption (kIOError for unreadable files, kNotSupported for a
// future major version) — never crash, never read out of bounds, never let
// an unvalidated count drive an allocation. Runs under ASan/UBSan in CI,
// where "never UB" is machine-checked.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gen/paper_example.h"
#include "rdf/frozen_image.h"
#include "store/mmap_store.h"
#include "summary/persistence.h"
#include "summary/summarizer.h"
#include "util/fault_injection.h"

namespace rdfsum {
namespace {

using store::MmapStore;
using util::FaultInjection;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}


std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// A small but fully featured image: literals with datatypes/tags, type and
// schema triples, dense substrate — every section is non-trivial.
std::string ImageBytes() {
  gen::Figure2Example ex = gen::BuildFigure2();
  const std::string path = TempPath("image_corruption_base.rsb");
  EXPECT_TRUE(store::FreezeGraphToFile(ex.graph, path).ok());
  std::string bytes = FileBytes(path);
  EXPECT_FALSE(bytes.empty());
  return bytes;
}

Status AttachStatus(const std::string& bytes) {
  auto img = FrozenImage::Attach(bytes.data(), bytes.size());
  return img.ok() ? Status::OK() : img.status();
}

template <typename T>
T ReadAt(const std::string& bytes, size_t off) {
  T v;
  std::memcpy(&v, bytes.data() + off, sizeof(T));
  return v;
}

template <typename T>
void WriteAt(std::string* bytes, size_t off, T v) {
  std::memcpy(bytes->data() + off, &v, sizeof(T));
}

// Header field offsets (docs/FORMAT.md §3).
constexpr size_t kOffFileSize = 16;
constexpr size_t kOffSectionCount = 24;
constexpr size_t kOffTableChecksum = 32;
constexpr size_t kOffHeaderChecksum = 40;

// Recomputes every checksum bottom-up — section payloads, the section
// table, then the header — exactly as a malicious writer would, so the
// tests below prove corruption is caught by *structural* validation, not
// just by checksum mismatch.
void Reseal(std::string* bytes) {
  const uint32_t count = ReadAt<uint32_t>(*bytes, kOffSectionCount);
  for (uint32_t i = 0; i < count; ++i) {
    const size_t desc = sizeof(ImageHeader) + i * sizeof(SectionDesc);
    const uint64_t off = ReadAt<uint64_t>(*bytes, desc + 8);
    const uint64_t size = ReadAt<uint64_t>(*bytes, desc + 16);
    if (off + size <= bytes->size()) {
      WriteAt(bytes, desc + 24, ImageFnv1a64(bytes->data() + off, size));
    }
  }
  WriteAt(bytes, kOffTableChecksum,
          ImageFnv1a64(bytes->data() + sizeof(ImageHeader),
                       count * sizeof(SectionDesc)));
  WriteAt(bytes, kOffHeaderChecksum,
          ImageFnv1a64(bytes->data(), kOffHeaderChecksum));
}

// Finds the in-file byte range of a section's payload via the table.
bool FindSection(const std::string& bytes, SectionId id, size_t* off,
                 size_t* size) {
  const uint32_t count = ReadAt<uint32_t>(bytes, kOffSectionCount);
  for (uint32_t i = 0; i < count; ++i) {
    const size_t desc = sizeof(ImageHeader) + i * sizeof(SectionDesc);
    if (ReadAt<uint32_t>(bytes, desc) == static_cast<uint32_t>(id)) {
      *off = ReadAt<uint64_t>(bytes, desc + 8);
      *size = ReadAt<uint64_t>(bytes, desc + 16);
      return true;
    }
  }
  return false;
}

TEST(ImageCorruptionTest, TheBaseImageAttaches) {
  const std::string bytes = ImageBytes();
  EXPECT_TRUE(AttachStatus(bytes).ok()) << AttachStatus(bytes).ToString();
}

TEST(ImageCorruptionTest, TruncationAtEveryLengthIsRejected) {
  const std::string bytes = ImageBytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::string prefix = bytes.substr(0, len);
    Status st = AttachStatus(prefix);
    ASSERT_FALSE(st.ok()) << "accepted a file truncated to " << len << " of "
                          << bytes.size() << " bytes";
    ASSERT_TRUE(st.IsCorruption()) << "len " << len << ": " << st.ToString();
  }
}

TEST(ImageCorruptionTest, EveryBitFlipIsDetected) {
  const std::string bytes = ImageBytes();
  // One flipped bit per byte position, skipping bytes the format documents
  // as ignored (header/desc reserved fields) — a flip there must *succeed*,
  // which the minor-version-evolution test below pins separately.
  // (SectionDesc::reserved and ImageMeta reserved words are semantically
  // ignored but still covered by the table/section checksums, so flips
  // there are caught too — only the header's reserved tail is outside
  // every checksum by design.)
  std::vector<bool> ignored(bytes.size(), false);
  for (size_t i = 48; i < 64; ++i) ignored[i] = true;  // header reserved
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (ignored[i]) continue;
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ (1 << (i % 8)));
    Status st = AttachStatus(mutated);
    ASSERT_FALSE(st.ok()) << "accepted a bit flip at byte " << i;
    ASSERT_TRUE(st.IsCorruption() || st.IsNotSupported())
        << "byte " << i << ": " << st.ToString();
  }
}

TEST(ImageCorruptionTest, HeaderReservedBytesAreIgnored) {
  // Writers must zero them, readers must ignore them: a future minor
  // version can claim them without breaking old readers. They sit outside
  // header_checksum's [0, 40) coverage by design.
  std::string bytes = ImageBytes();
  for (size_t i = 48; i < 64; ++i) bytes[i] = '\x5a';
  EXPECT_TRUE(AttachStatus(bytes).ok());
}

TEST(ImageCorruptionTest, V1SummaryFileIsRejectedCleanly) {
  // The sibling format: a persisted *summary* (.rdfsum, magic "RDFSUMSUM")
  // handed to the store opener. Eight of its nine magic bytes match ours.
  gen::Figure2Example ex = gen::BuildFigure2();
  summary::SummaryResult r =
      summary::Summarize(ex.graph, summary::SummaryKind::kWeak);
  const std::string path = TempPath("not_an_image.rdfsum");
  ASSERT_TRUE(summary::SaveSummary(r, path).ok());
  auto opened = MmapStore::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();
}

TEST(ImageCorruptionTest, RandomBytesAreRejected) {
  // Deterministic pseudo-random junk at several sizes, including ones large
  // enough to pass the header-size gate.
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (size_t size : {0ul, 1ul, 63ul, 64ul, 96ul, 4096ul}) {
    std::string junk(size, '\0');
    for (char& c : junk) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      c = static_cast<char>(state >> 33);
    }
    Status st = AttachStatus(junk);
    ASSERT_FALSE(st.ok()) << "accepted " << size << " random bytes";
  }
}

TEST(ImageCorruptionTest, FutureMajorVersionIsNotSupported) {
  std::string bytes = ImageBytes();
  WriteAt<uint32_t>(&bytes, 8, kImageVersionMajor + 1);
  Reseal(&bytes);
  Status st = AttachStatus(bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotSupported()) << st.ToString();
}

TEST(ImageCorruptionTest, NonzeroPaddingIsRejected) {
  // Alignment gaps are not covered by any section checksum — so the reader
  // validates them to zero; they must not be a hiding place.
  const std::string bytes = ImageBytes();
  size_t off = 0, size = 0;
  ASSERT_TRUE(FindSection(bytes, SectionId::kTermArena, &off, &size));
  const size_t pad = off + size;
  ASSERT_LT(pad, bytes.size());
  ASSERT_NE(pad % kImageAlignment, 0u)
      << "term arena ended 64-aligned; pick a section with padding";
  std::string mutated = bytes;
  mutated[pad] = '\x01';
  Reseal(&mutated);  // padding is outside every checksum — reseal is a no-op
  Status st = AttachStatus(mutated);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST(ImageCorruptionTest, ResealedHugeCountFailsStructurally) {
  // The adversarial case checksums cannot catch: a "valid" file whose meta
  // claims 2^60 terms. Every section size is validated against the counts
  // *exactly*, so the lie is caught before any count-driven allocation.
  const std::string bytes = ImageBytes();
  size_t meta_off = 0, meta_size = 0;
  ASSERT_TRUE(FindSection(bytes, SectionId::kMeta, &meta_off, &meta_size));
  ASSERT_EQ(meta_size, sizeof(ImageMeta));
  // Attack every count field in turn.
  for (size_t field = 0; field < sizeof(ImageMeta) / 8; ++field) {
    std::string mutated = bytes;
    WriteAt<uint64_t>(&mutated, meta_off + field * 8, 1ULL << 60);
    Reseal(&mutated);
    Status st = AttachStatus(mutated);
    if (field == 2 || field >= 19) {
      // mint_counter is a free-running counter (any value is legal);
      // reserved[5] words are ignored by readers. The file stays valid.
      EXPECT_TRUE(st.ok()) << "meta word " << field;
      continue;
    }
    ASSERT_FALSE(st.ok()) << "accepted a 2^60 count in meta field " << field;
    ASSERT_TRUE(st.IsCorruption()) << "field " << field << ": "
                                   << st.ToString();
  }
}

TEST(ImageCorruptionTest, ResealedUnsortedPermutationIsRejected) {
  // Swap the first two SPO rows and reseal: checksums pass, the sortedness
  // gate does not — binary search over an unsorted span would silently
  // return wrong answers, which is worse than a crash.
  const std::string bytes = ImageBytes();
  size_t off = 0, size = 0;
  ASSERT_TRUE(FindSection(bytes, SectionId::kSpo, &off, &size));
  ASSERT_GE(size, 2 * sizeof(Triple));
  std::string mutated = bytes;
  std::string row0 = mutated.substr(off, sizeof(Triple));
  std::string row1 = mutated.substr(off + sizeof(Triple), sizeof(Triple));
  mutated.replace(off, sizeof(Triple), row1);
  mutated.replace(off + sizeof(Triple), sizeof(Triple), row0);
  Reseal(&mutated);
  Status st = AttachStatus(mutated);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST(ImageCorruptionTest, ResealedOutOfRangeTermIdIsRejected) {
  // A triple whose subject points past the dictionary: Decode would read
  // out of the term-offsets array. The id-range gate rejects it.
  const std::string bytes = ImageBytes();
  size_t off = 0, size = 0;
  ASSERT_TRUE(FindSection(bytes, SectionId::kSpo, &off, &size));
  ASSERT_GE(size, sizeof(Triple));
  std::string mutated = bytes;
  WriteAt<uint32_t>(&mutated, off, 0xFFFFFFFFu);  // first row's subject
  Reseal(&mutated);
  Status st = AttachStatus(mutated);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST(ImageCorruptionTest, AppendedJunkIsRejected) {
  std::string bytes = ImageBytes();
  bytes += std::string(64, '\x7f');
  // file_size still says the original size; the actual size disagrees.
  Status st = AttachStatus(bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  // Even "fixing" file_size doesn't help: the canonical-layout rule says
  // the file ends exactly at the last payload byte.
  WriteAt<uint64_t>(&bytes, kOffFileSize, bytes.size());
  Reseal(&bytes);
  st = AttachStatus(bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST(ImageCorruptionTest, ChecksumSkippingStillValidatesStructure) {
  // verify_checksums=false is the trusted-file fast path; the structural
  // wall stays up (it is what makes later accessors memory-safe).
  const std::string bytes = ImageBytes();
  size_t off = 0, size = 0;
  ASSERT_TRUE(FindSection(bytes, SectionId::kSpo, &off, &size));
  std::string mutated = bytes;
  WriteAt<uint32_t>(&mutated, off, 0xFFFFFFFFu);
  Reseal(&mutated);
  FrozenImage::Options opt;
  opt.verify_checksums = false;
  auto img = FrozenImage::Attach(mutated.data(), mutated.size(), opt);
  ASSERT_FALSE(img.ok());
  EXPECT_TRUE(img.status().IsCorruption()) << img.status().ToString();
}

class ImageFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!FaultInjection::compiled_in()) {
      GTEST_SKIP() << "failpoints not compiled in (Release build)";
    }
    FaultInjection::Clear();
  }
  void TearDown() override { FaultInjection::Clear(); }
};

TEST_F(ImageFailpointTest, WriteFailureSurfacesAsIOError) {
  gen::Figure2Example ex = gen::BuildFigure2();
  FaultInjection::Arm("image:write", Status::IOError("disk full"));
  Status st =
      store::FreezeGraphToFile(ex.graph, TempPath("failpoint_write.rsb"));
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
}

TEST_F(ImageFailpointTest, OpenFailureSurfacesCleanly) {
  gen::Figure2Example ex = gen::BuildFigure2();
  const std::string path = TempPath("failpoint_open.rsb");
  ASSERT_TRUE(store::FreezeGraphToFile(ex.graph, path).ok());
  FaultInjection::Arm("image:open", Status::IOError("torn read"));
  auto opened = MmapStore::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsIOError()) << opened.status().ToString();
  FaultInjection::Clear();
  EXPECT_TRUE(MmapStore::Open(path).ok());
}

}  // namespace
}  // namespace rdfsum
