#include <gtest/gtest.h>

#include <set>

#include "gen/paper_example.h"
#include "rdf/graph_stats.h"
#include "summary/isomorphism.h"
#include "summary/property_checks.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {
namespace {

using gen::BuildFigure2;
using gen::Figure2Example;

// ------------------------------------------------ type-based summary (Def 12)

class TypeBasedSummaryTest : public ::testing::Test {
 protected:
  TypeBasedSummaryTest() : ex_(BuildFigure2()) {
    result_ = Summarize(ex_.graph, SummaryKind::kTypeBased);
  }
  TermId Map(TermId n) const { return result_.node_map.at(n); }

  Figure2Example ex_;
  SummaryResult result_;
};

TEST_F(TypeBasedSummaryTest, GroupsByExactClassSet) {
  // Figure 6: r1 -> C({Book}); r2 and r6 share C({Journal}); r5 -> C({Spec}).
  EXPECT_NE(Map(ex_.r1), Map(ex_.r2));
  EXPECT_EQ(Map(ex_.r2), Map(ex_.r6));
  EXPECT_NE(Map(ex_.r2), Map(ex_.r5));
}

TEST_F(TypeBasedSummaryTest, UntypedNodesAreCopiedSingletons) {
  // C(∅) mints a fresh node per untyped resource.
  std::set<TermId> untyped_nodes{Map(ex_.r3), Map(ex_.r4), Map(ex_.a1),
                                 Map(ex_.a2), Map(ex_.t1), Map(ex_.t2),
                                 Map(ex_.t3), Map(ex_.t4), Map(ex_.e1),
                                 Map(ex_.e2), Map(ex_.c1)};
  EXPECT_EQ(untyped_nodes.size(), 11u);
}

TEST_F(TypeBasedSummaryTest, NodeAndEdgeCounts) {
  // 3 typed classes + 11 untyped copies = 14 data nodes; all 12 data edges
  // survive (distinct because untyped endpoints stay distinct).
  EXPECT_EQ(result_.stats.num_data_nodes, 14u);
  EXPECT_EQ(result_.graph.data().size(), 12u);
  EXPECT_EQ(result_.graph.types().size(), 3u);  // Book, Journal, Spec
}

TEST_F(TypeBasedSummaryTest, IsHomomorphicImage) {
  EXPECT_TRUE(CheckHomomorphism(ex_.graph, result_).ok());
}

TEST_F(TypeBasedSummaryTest, MultiTypeResourcesGroupTogether) {
  Graph g;
  Dictionary& d = g.dict();
  const TermId rdf_type = g.vocab().rdf_type;
  TermId c1 = d.EncodeIri("C1"), c2 = d.EncodeIri("C2");
  TermId x = d.EncodeIri("x"), y = d.EncodeIri("y"), z = d.EncodeIri("z");
  g.Add({x, rdf_type, c1});
  g.Add({x, rdf_type, c2});
  g.Add({y, rdf_type, c2});
  g.Add({y, rdf_type, c1});
  g.Add({z, rdf_type, c1});
  SummaryResult r = Summarize(g, SummaryKind::kTypeBased);
  EXPECT_EQ(r.node_map.at(x), r.node_map.at(y));  // same set {C1, C2}
  EXPECT_NE(r.node_map.at(x), r.node_map.at(z));  // {C1} differs
}

// ------------------------------------------------ typed weak (Def 14)

class TypedWeakDefaultTest : public ::testing::Test {
 protected:
  TypedWeakDefaultTest() : ex_(BuildFigure2()) {
    result_ = Summarize(ex_.graph, SummaryKind::kTypedWeak);
  }
  TermId Map(TermId n) const { return result_.node_map.at(n); }

  Figure2Example ex_;
  SummaryResult result_;
};

// Figure 7, under the default per-property-projection mode.

TEST_F(TypedWeakDefaultTest, TypedNodesByClassSet) {
  EXPECT_NE(Map(ex_.r1), Map(ex_.r2));
  EXPECT_NE(Map(ex_.r1), Map(ex_.r5));
  EXPECT_EQ(Map(ex_.r2), Map(ex_.r6));  // both {Journal}
}

TEST_F(TypedWeakDefaultTest, UntypedValueNodesMergePerProperty) {
  // N^a_r = {a1, a2}; N^t = {t1..t4}; N^e_p = {e1, e2} — matching the
  // figure's labels.
  EXPECT_EQ(Map(ex_.a1), Map(ex_.a2));
  EXPECT_EQ(Map(ex_.t1), Map(ex_.t2));
  EXPECT_EQ(Map(ex_.t1), Map(ex_.t3));
  EXPECT_EQ(Map(ex_.t1), Map(ex_.t4));
  EXPECT_EQ(Map(ex_.e1), Map(ex_.e2));
}

TEST_F(TypedWeakDefaultTest, UntypedSubjectsStaySeparate) {
  // N_{e,c} = {r3} and N^{a,t}_{r,p} = {r4} are distinct nodes.
  EXPECT_NE(Map(ex_.r3), Map(ex_.r4));
  EXPECT_NE(Map(ex_.r3), Map(ex_.r1));
}

TEST_F(TypedWeakDefaultTest, NineDataNodes) {
  // 3 typed C-nodes + {r3}, {r4}, {a*}, {t*}, {e*}, {c1} = 9.
  EXPECT_EQ(result_.stats.num_data_nodes, 9u);
}

TEST_F(TypedWeakDefaultTest, EdgesMatchFigure7) {
  const Graph& h = result_.graph;
  EXPECT_TRUE(h.Contains({Map(ex_.r1), ex_.author, Map(ex_.a1)}));
  EXPECT_TRUE(h.Contains({Map(ex_.r1), ex_.title, Map(ex_.t1)}));
  EXPECT_TRUE(h.Contains({Map(ex_.r2), ex_.title, Map(ex_.t1)}));
  EXPECT_TRUE(h.Contains({Map(ex_.r2), ex_.editor, Map(ex_.e1)}));
  EXPECT_TRUE(h.Contains({Map(ex_.r3), ex_.editor, Map(ex_.e1)}));
  EXPECT_TRUE(h.Contains({Map(ex_.r3), ex_.comment, Map(ex_.c1)}));
  EXPECT_TRUE(h.Contains({Map(ex_.r4), ex_.author, Map(ex_.a1)}));
  EXPECT_TRUE(h.Contains({Map(ex_.r4), ex_.title, Map(ex_.t1)}));
  EXPECT_TRUE(h.Contains({Map(ex_.r5), ex_.title, Map(ex_.t1)}));
  EXPECT_TRUE(h.Contains({Map(ex_.r5), ex_.editor, Map(ex_.e1)}));
  EXPECT_TRUE(h.Contains({Map(ex_.a1), ex_.reviewed, Map(ex_.r4)}));
  EXPECT_TRUE(h.Contains({Map(ex_.e1), ex_.published, Map(ex_.r4)}));
  EXPECT_EQ(h.data().size(), 12u);
}

TEST_F(TypedWeakDefaultTest, IsHomomorphicImage) {
  EXPECT_TRUE(CheckHomomorphism(ex_.graph, result_).ok());
}

// ------------------------------------------------ typed strong (Def 17)

TEST(TypedStrongDefaultTest, RefinesTypedWeakOnTargets) {
  Figure2Example ex = BuildFigure2();
  SummaryResult ts = Summarize(ex.graph, SummaryKind::kTypedStrong);
  auto Map = [&](TermId n) { return ts.node_map.at(n); };
  // a1 has source clique {r}, a2 has none: TS separates them (TW merged).
  EXPECT_NE(Map(ex.a1), Map(ex.a2));
  EXPECT_NE(Map(ex.e1), Map(ex.e2));
  // Titles still merge: identical (∅, {t}) keys.
  EXPECT_EQ(Map(ex.t1), Map(ex.t2));
  EXPECT_EQ(Map(ex.t1), Map(ex.t4));
  // 3 typed + {r3},{r4},{a1},{a2},{t*},{e1},{e2},{c1} = 11 data nodes.
  EXPECT_EQ(ts.stats.num_data_nodes, 11u);
  EXPECT_TRUE(CheckHomomorphism(ex.graph, ts).ok());
}

// Under the strict Definition 13/16 mode, TW and TS coincide on the paper's
// example (§5.2: "the type-strong summary ... coincides with the type-weak").

TEST(TypedStrictModeTest, TwAndTsCoincideOnFigure2) {
  Figure2Example ex = BuildFigure2();
  SummaryOptions strict;
  strict.typed_mode = TypedSummaryMode::kUntypedDataGraph;
  SummaryResult tw = Summarize(ex.graph, SummaryKind::kTypedWeak, strict);
  SummaryResult ts = Summarize(ex.graph, SummaryKind::kTypedStrong, strict);
  EXPECT_TRUE(AreSummariesIsomorphic(tw.graph, ts.graph));
  // Same partitions node by node.
  for (const auto& [n, h1] : tw.node_map) {
    for (const auto& [m, h2] : tw.node_map) {
      bool same_tw = h1 == h2;
      bool same_ts = ts.node_map.at(n) == ts.node_map.at(m);
      EXPECT_EQ(same_tw, same_ts);
    }
  }
}

TEST(TypedStrictModeTest, OutsideUdCollapsesToNTau) {
  Figure2Example ex = BuildFigure2();
  SummaryOptions strict;
  strict.typed_mode = TypedSummaryMode::kUntypedDataGraph;
  SummaryResult tw = Summarize(ex.graph, SummaryKind::kTypedWeak, strict);
  auto Map = [&](TermId n) { return tw.node_map.at(n); };
  // t1, t2, t4 only appear in triples with typed subjects: all -> Nτ.
  EXPECT_EQ(Map(ex.t1), Map(ex.t2));
  EXPECT_EQ(Map(ex.t1), Map(ex.t4));
  // t3 is in UD (object of untyped r4): separate.
  EXPECT_NE(Map(ex.t3), Map(ex.t1));
  // a1 and a2 stay separate in strict mode (a1 is a UD source of reviewed,
  // a2 a UD target of author).
  EXPECT_NE(Map(ex.a1), Map(ex.a2));
}

// ------------------------------------------------ untyped fractions

TEST(TypedSummaryMixTest, FullyTypedGraphMakesTwEqualTypeBased) {
  // When every data node is typed, TW's untyped machinery is idle: TW = T.
  Graph g;
  Dictionary& d = g.dict();
  const TermId rdf_type = g.vocab().rdf_type;
  TermId c = d.EncodeIri("C"), p = d.EncodeIri("p");
  TermId x = d.EncodeIri("x"), y = d.EncodeIri("y");
  g.Add({x, p, y});
  g.Add({x, rdf_type, c});
  g.Add({y, rdf_type, c});
  SummaryResult tw = Summarize(g, SummaryKind::kTypedWeak);
  SummaryResult tb = Summarize(g, SummaryKind::kTypeBased);
  EXPECT_TRUE(AreSummariesIsomorphic(tw.graph, tb.graph));
}

TEST(TypedSummaryMixTest, FullyUntypedGraphMakesTwEqualWeak) {
  // With no types at all, TW degenerates to W (both modes).
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("p"), q = d.EncodeIri("q");
  g.Add({d.EncodeIri("x1"), p, d.EncodeIri("y1")});
  g.Add({d.EncodeIri("x2"), p, d.EncodeIri("y2")});
  g.Add({d.EncodeIri("x2"), q, d.EncodeIri("z")});
  SummaryResult tw = Summarize(g, SummaryKind::kTypedWeak);
  SummaryResult w = Summarize(g, SummaryKind::kWeak);
  EXPECT_TRUE(AreSummariesIsomorphic(tw.graph, w.graph));

  SummaryOptions strict;
  strict.typed_mode = TypedSummaryMode::kUntypedDataGraph;
  SummaryResult tw2 = Summarize(g, SummaryKind::kTypedWeak, strict);
  EXPECT_TRUE(AreSummariesIsomorphic(tw2.graph, w.graph));
}

TEST(TypedSummaryMixTest, FullyUntypedGraphMakesTsEqualStrong) {
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("p"), q = d.EncodeIri("q");
  g.Add({d.EncodeIri("x1"), p, d.EncodeIri("y1")});
  g.Add({d.EncodeIri("x2"), p, d.EncodeIri("y2")});
  g.Add({d.EncodeIri("x2"), q, d.EncodeIri("z")});
  SummaryResult ts = Summarize(g, SummaryKind::kTypedStrong);
  SummaryResult s = Summarize(g, SummaryKind::kStrong);
  EXPECT_TRUE(AreSummariesIsomorphic(ts.graph, s.graph));
}

TEST(TypedSummaryMixTest, TypedSummariesHaveMoreNodesWhenTypesSplit) {
  // Two otherwise-identical subjects with different class sets: W merges
  // them, TW keeps them apart (the "isolating typed data nodes" effect the
  // paper measures in Figure 11).
  Graph g;
  Dictionary& d = g.dict();
  const TermId rdf_type = g.vocab().rdf_type;
  TermId p = d.EncodeIri("p");
  TermId x = d.EncodeIri("x"), y = d.EncodeIri("y");
  g.Add({x, p, d.EncodeIri("vx")});
  g.Add({y, p, d.EncodeIri("vy")});
  g.Add({x, rdf_type, d.EncodeIri("C1")});
  g.Add({y, rdf_type, d.EncodeIri("C2")});
  SummaryResult w = Summarize(g, SummaryKind::kWeak);
  SummaryResult tw = Summarize(g, SummaryKind::kTypedWeak);
  EXPECT_EQ(w.node_map.at(x), w.node_map.at(y));
  EXPECT_NE(tw.node_map.at(x), tw.node_map.at(y));
  EXPECT_GT(tw.stats.num_data_nodes, w.stats.num_data_nodes);
}

}  // namespace
}  // namespace rdfsum::summary
