#include <gtest/gtest.h>

#include "gen/hetero.h"
#include "rdf/graph.h"
#include "summary/isomorphism.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {
namespace {

/// Builds a little summary-like graph: minted nodes m0..m(n-1) plus fixed
/// vocabulary.
struct Builder {
  Graph g;
  std::vector<TermId> minted;

  explicit Builder(int n) {
    for (int i = 0; i < n; ++i) minted.push_back(g.dict().MintNodeUri("t"));
  }
  TermId fixed(const char* name) { return g.dict().EncodeIri(name); }
};

TEST(IsomorphismTest, IdenticalGraphs) {
  Builder a(2), b(2);
  TermId p_a = a.fixed("p"), p_b = b.fixed("p");
  a.g.Add({a.minted[0], p_a, a.minted[1]});
  b.g.Add({b.minted[0], p_b, b.minted[1]});
  EXPECT_TRUE(AreSummariesIsomorphic(a.g, b.g));
}

TEST(IsomorphismTest, MintedRenamingIsIgnored) {
  Builder a(2), b(2);
  TermId p_a = a.fixed("p"), p_b = b.fixed("p");
  a.g.Add({a.minted[0], p_a, a.minted[1]});
  // Reverse roles of the minted ids in b.
  b.g.Add({b.minted[1], p_b, b.minted[0]});
  EXPECT_TRUE(AreSummariesIsomorphic(a.g, b.g));
}

TEST(IsomorphismTest, FixedNodesMustMatchExactly) {
  Builder a(1), b(1);
  a.g.Add({a.minted[0], a.fixed("p"), a.fixed("x")});
  b.g.Add({b.minted[0], b.fixed("p"), b.fixed("y")});
  EXPECT_FALSE(AreSummariesIsomorphic(a.g, b.g));
}

TEST(IsomorphismTest, EdgeDirectionMatters) {
  Builder a(2), b(2);
  TermId q_a = a.fixed("q"), q_b = b.fixed("q");
  TermId r_a = a.fixed("r"), r_b = b.fixed("r");
  // a: m0 -q-> m1, m0 -r-> m1 ; b: m0 -q-> m1, m1 -r-> m0.
  a.g.Add({a.minted[0], q_a, a.minted[1]});
  a.g.Add({a.minted[0], r_a, a.minted[1]});
  b.g.Add({b.minted[0], q_b, b.minted[1]});
  b.g.Add({b.minted[1], r_b, b.minted[0]});
  EXPECT_FALSE(AreSummariesIsomorphic(a.g, b.g));
}

TEST(IsomorphismTest, DifferentSizesRejectQuickly) {
  Builder a(1), b(2);
  a.g.Add({a.minted[0], a.fixed("p"), a.fixed("x")});
  b.g.Add({b.minted[0], b.fixed("p"), b.fixed("x")});
  b.g.Add({b.minted[1], b.fixed("p"), b.fixed("x")});
  EXPECT_FALSE(AreSummariesIsomorphic(a.g, b.g));
}

TEST(IsomorphismTest, CycleVsPath) {
  Builder a(3), b(3);
  TermId p_a = a.fixed("p"), p_b = b.fixed("p");
  // a: 3-cycle; b: path of 3 plus closing edge elsewhere — not isomorphic.
  a.g.Add({a.minted[0], p_a, a.minted[1]});
  a.g.Add({a.minted[1], p_a, a.minted[2]});
  a.g.Add({a.minted[2], p_a, a.minted[0]});
  b.g.Add({b.minted[0], p_b, b.minted[1]});
  b.g.Add({b.minted[1], p_b, b.minted[2]});
  b.g.Add({b.minted[0], p_b, b.minted[2]});
  EXPECT_FALSE(AreSummariesIsomorphic(a.g, b.g));
}

TEST(IsomorphismTest, CycleRotation) {
  Builder a(4), b(4);
  TermId p_a = a.fixed("p"), p_b = b.fixed("p");
  for (int i = 0; i < 4; ++i) {
    a.g.Add({a.minted[i], p_a, a.minted[(i + 1) % 4]});
    b.g.Add({b.minted[(i + 1) % 4], p_b, b.minted[(i + 2) % 4]});
  }
  EXPECT_TRUE(AreSummariesIsomorphic(a.g, b.g));
}

TEST(IsomorphismTest, SelfLoops) {
  Builder a(1), b(1);
  a.g.Add({a.minted[0], a.fixed("p"), a.minted[0]});
  b.g.Add({b.minted[0], b.fixed("p"), b.minted[0]});
  EXPECT_TRUE(AreSummariesIsomorphic(a.g, b.g));
}

TEST(IsomorphismTest, LiteralsCompareByValue) {
  Builder a(1), b(1);
  a.g.Add({a.minted[0], a.fixed("p"),
           a.g.dict().Encode(Term::Literal("same"))});
  b.g.Add({b.minted[0], b.fixed("p"),
           b.g.dict().Encode(Term::Literal("same"))});
  EXPECT_TRUE(AreSummariesIsomorphic(a.g, b.g));
  Builder c(1);
  c.g.Add({c.minted[0], c.fixed("p"),
           c.g.dict().Encode(Term::Literal("different"))});
  EXPECT_FALSE(AreSummariesIsomorphic(a.g, c.g));
}

TEST(IsomorphismTest, SymmetricStarsWithDifferentFixedAnchors) {
  // Two stars around minted hubs; anchors differ by one fixed leaf.
  Builder a(1), b(1);
  TermId p_a = a.fixed("p"), p_b = b.fixed("p");
  a.g.Add({a.minted[0], p_a, a.fixed("leaf1")});
  a.g.Add({a.minted[0], p_a, a.fixed("leaf2")});
  b.g.Add({b.minted[0], p_b, b.fixed("leaf1")});
  b.g.Add({b.minted[0], p_b, b.fixed("leaf3")});
  EXPECT_FALSE(AreSummariesIsomorphic(a.g, b.g));
}

TEST(IsomorphismTest, EmptyGraphs) {
  Graph a, b;
  EXPECT_TRUE(AreSummariesIsomorphic(a, b));
}

TEST(IsomorphismTest, TwoSummariesOfSameGraphAreIsomorphic) {
  gen::HeteroOptions opt;
  opt.seed = 77;
  opt.num_nodes = 150;
  Graph g = gen::GenerateHetero(opt);
  // Two runs mint different URIs but must be recognized as the same summary.
  SummaryResult r1 = Summarize(g, SummaryKind::kStrong);
  SummaryResult r2 = Summarize(g, SummaryKind::kStrong);
  EXPECT_TRUE(AreSummariesIsomorphic(r1.graph, r2.graph));
}

TEST(IsomorphismTest, DifferentKindsDiffer) {
  gen::HeteroOptions opt;
  opt.seed = 78;
  opt.num_nodes = 150;
  opt.type_probability = 0.5;
  Graph g = gen::GenerateHetero(opt);
  SummaryResult w = Summarize(g, SummaryKind::kWeak);
  SummaryResult tw = Summarize(g, SummaryKind::kTypedWeak);
  // With typed nodes present these differ (almost surely at this size).
  EXPECT_FALSE(AreSummariesIsomorphic(w.graph, tw.graph));
}

}  // namespace
}  // namespace rdfsum::summary
