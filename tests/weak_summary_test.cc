#include <gtest/gtest.h>

#include <set>

#include "gen/hetero.h"
#include "gen/paper_example.h"
#include "rdf/graph_stats.h"
#include "summary/property_checks.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {
namespace {

using gen::BuildFigure2;
using gen::Figure2Example;

class WeakSummaryTest : public ::testing::Test {
 protected:
  WeakSummaryTest() : ex_(BuildFigure2()) {
    result_ = Summarize(ex_.graph, SummaryKind::kWeak);
  }

  TermId Map(TermId n) const { return result_.node_map.at(n); }

  Figure2Example ex_;
  SummaryResult result_;
};

// Figure 4: the weak summary of the running example.

TEST_F(WeakSummaryTest, NodePartitionMatchesFigure4) {
  // {r1..r5} together.
  EXPECT_EQ(Map(ex_.r1), Map(ex_.r2));
  EXPECT_EQ(Map(ex_.r1), Map(ex_.r3));
  EXPECT_EQ(Map(ex_.r1), Map(ex_.r4));
  EXPECT_EQ(Map(ex_.r1), Map(ex_.r5));
  // {a1, a2}, {t1..t4}, {e1, e2}, {c1}.
  EXPECT_EQ(Map(ex_.a1), Map(ex_.a2));
  EXPECT_EQ(Map(ex_.t1), Map(ex_.t2));
  EXPECT_EQ(Map(ex_.t1), Map(ex_.t3));
  EXPECT_EQ(Map(ex_.t1), Map(ex_.t4));
  EXPECT_EQ(Map(ex_.e1), Map(ex_.e2));
  // All five classes are distinct, and r6 (Nτ) is a sixth.
  std::set<TermId> nodes{Map(ex_.r1), Map(ex_.a1), Map(ex_.t1),
                         Map(ex_.e1), Map(ex_.c1), Map(ex_.r6)};
  EXPECT_EQ(nodes.size(), 6u);
}

TEST_F(WeakSummaryTest, SixDataNodesInSummary) {
  EXPECT_EQ(result_.stats.num_data_nodes, 6u);
  EXPECT_EQ(result_.stats.num_class_nodes, 3u);
}

TEST_F(WeakSummaryTest, OneDataEdgePerProperty) {
  EXPECT_EQ(result_.graph.data().size(), 6u);  // |D_G|0p = 6
  EXPECT_TRUE(
      CheckUniqueDataProperties(ex_.graph, result_.graph).ok());
}

TEST_F(WeakSummaryTest, EdgesMatchFigure4) {
  const Graph& h = result_.graph;
  TermId big = Map(ex_.r1);
  EXPECT_TRUE(h.Contains({big, ex_.author, Map(ex_.a1)}));
  EXPECT_TRUE(h.Contains({big, ex_.title, Map(ex_.t1)}));
  EXPECT_TRUE(h.Contains({big, ex_.editor, Map(ex_.e1)}));
  EXPECT_TRUE(h.Contains({big, ex_.comment, Map(ex_.c1)}));
  EXPECT_TRUE(h.Contains({Map(ex_.a1), ex_.reviewed, big}));
  EXPECT_TRUE(h.Contains({Map(ex_.e1), ex_.published, big}));
}

TEST_F(WeakSummaryTest, TypeEdgesMatchFigure4) {
  const Graph& h = result_.graph;
  const TermId rdf_type = h.vocab().rdf_type;
  TermId big = Map(ex_.r1);
  EXPECT_TRUE(h.Contains({big, rdf_type, ex_.book}));
  EXPECT_TRUE(h.Contains({big, rdf_type, ex_.journal}));
  EXPECT_TRUE(h.Contains({big, rdf_type, ex_.spec}));
  // Nτ carries r6's type.
  EXPECT_TRUE(h.Contains({Map(ex_.r6), rdf_type, ex_.journal}));
  EXPECT_EQ(h.types().size(), 4u);
}

TEST_F(WeakSummaryTest, NTauIsItsOwnNode) {
  EXPECT_NE(Map(ex_.r6), Map(ex_.r1));
}

TEST_F(WeakSummaryTest, SummaryNodesAreMinted) {
  for (const auto& [n, h] : result_.node_map) {
    EXPECT_TRUE(result_.graph.dict().IsMinted(h));
  }
  // Class nodes are preserved, not minted.
  EXPECT_FALSE(result_.graph.dict().IsMinted(ex_.book));
}

TEST_F(WeakSummaryTest, IsHomomorphicImage) {
  EXPECT_TRUE(CheckHomomorphism(ex_.graph, result_).ok());
}

TEST_F(WeakSummaryTest, MembersRecordedWhenRequested) {
  SummaryOptions options;
  options.record_members = true;
  SummaryResult r = Summarize(ex_.graph, SummaryKind::kWeak, options);
  auto& members = r.members.at(r.node_map.at(ex_.r1));
  EXPECT_EQ(members.size(), 5u);
  EXPECT_EQ(r.members.at(r.node_map.at(ex_.c1)).size(), 1u);
}

// ---------------------------------------------------------------- edge cases

TEST(WeakSummaryEdgeTest, EmptyGraph) {
  Graph g;
  SummaryResult r = Summarize(g, SummaryKind::kWeak);
  EXPECT_TRUE(r.graph.Empty());
  EXPECT_TRUE(r.node_map.empty());
}

TEST(WeakSummaryEdgeTest, TypesOnlyGraphCollapsesToNTau) {
  Graph g;
  Dictionary& d = g.dict();
  TermId c1 = d.EncodeIri("C1"), c2 = d.EncodeIri("C2");
  g.Add({d.EncodeIri("x"), g.vocab().rdf_type, c1});
  g.Add({d.EncodeIri("y"), g.vocab().rdf_type, c2});
  g.Add({d.EncodeIri("z"), g.vocab().rdf_type, c1});
  SummaryResult r = Summarize(g, SummaryKind::kWeak);
  EXPECT_EQ(r.stats.num_data_nodes, 1u);  // single Nτ
  EXPECT_EQ(r.graph.types().size(), 2u);  // Nτ τ C1, Nτ τ C2
}

TEST(WeakSummaryEdgeTest, SchemaIsCopiedVerbatim) {
  gen::BookExample ex = gen::BuildBookExample();
  SummaryResult r = Summarize(ex.graph, SummaryKind::kWeak);
  EXPECT_EQ(r.graph.schema().size(), ex.graph.schema().size());
  for (const Triple& t : ex.graph.schema()) {
    EXPECT_TRUE(r.graph.Contains(t));
  }
}

TEST(WeakSummaryEdgeTest, DisconnectedComponentsStaySeparate) {
  Graph g;
  Dictionary& d = g.dict();
  g.Add({d.EncodeIri("a"), d.EncodeIri("p"), d.EncodeIri("b")});
  g.Add({d.EncodeIri("x"), d.EncodeIri("q"), d.EncodeIri("y")});
  SummaryResult r = Summarize(g, SummaryKind::kWeak);
  EXPECT_EQ(r.stats.num_data_nodes, 4u);
  EXPECT_EQ(r.graph.data().size(), 2u);
}

TEST(WeakSummaryEdgeTest, SharedPropertyMergesSources) {
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("p");
  g.Add({d.EncodeIri("a"), p, d.EncodeIri("b")});
  g.Add({d.EncodeIri("x"), p, d.EncodeIri("y")});
  SummaryResult r = Summarize(g, SummaryKind::kWeak);
  EXPECT_EQ(r.node_map.at(d.EncodeIri("a")), r.node_map.at(d.EncodeIri("x")));
  EXPECT_EQ(r.node_map.at(d.EncodeIri("b")), r.node_map.at(d.EncodeIri("y")));
  EXPECT_EQ(r.stats.num_data_nodes, 2u);
}

TEST(WeakSummaryEdgeTest, LiteralsAreSummarized) {
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("p");
  g.Add({d.EncodeIri("a"), p, d.EncodeLiteral("v1")});
  g.Add({d.EncodeIri("b"), p, d.EncodeLiteral("v2")});
  SummaryResult r = Summarize(g, SummaryKind::kWeak);
  // The two literals merge into one target node; no literal survives in H.
  EXPECT_EQ(r.stats.num_data_nodes, 2u);
  r.graph.ForEachTriple([&](const Triple& t) {
    EXPECT_FALSE(r.graph.dict().Decode(t.s).is_literal());
    EXPECT_FALSE(r.graph.dict().Decode(t.o).is_literal());
  });
}

TEST(WeakSummaryEdgeTest, ChainBridgingMergesTransitively) {
  // x1 -p-> y, x2 -p-> y2 / x2 -q-> z, x3 -q-> z3: sources of p merge,
  // sources of q merge, and x2 bridges them all into one class.
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("p"), q = d.EncodeIri("q");
  g.Add({d.EncodeIri("x1"), p, d.EncodeIri("y")});
  g.Add({d.EncodeIri("x2"), p, d.EncodeIri("y2")});
  g.Add({d.EncodeIri("x2"), q, d.EncodeIri("z")});
  g.Add({d.EncodeIri("x3"), q, d.EncodeIri("z3")});
  SummaryResult r = Summarize(g, SummaryKind::kWeak);
  EXPECT_EQ(r.node_map.at(d.EncodeIri("x1")), r.node_map.at(d.EncodeIri("x3")));
}

// Size bound of §4.1: |W data edges| = |D_G|0p, data nodes <= 2 |D_G|0p.

class WeakBoundsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WeakBoundsTest, SizeBoundsHold) {
  gen::HeteroOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 150;
  opt.num_properties = 14;
  Graph g = gen::GenerateHetero(opt);
  GraphStats gs = ComputeGraphStats(g);
  SummaryResult r = Summarize(g, SummaryKind::kWeak);
  EXPECT_EQ(r.graph.data().size(), gs.num_distinct_data_properties);
  EXPECT_LE(r.stats.num_data_nodes, 2 * gs.num_distinct_data_properties + 1);
  EXPECT_TRUE(CheckUniqueDataProperties(g, r.graph).ok());
  EXPECT_TRUE(CheckHomomorphism(g, r).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeakBoundsTest,
                         ::testing::Values(3, 7, 13, 19, 29, 37, 41, 53));

}  // namespace
}  // namespace rdfsum::summary
