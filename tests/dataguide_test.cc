#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "gen/bsbm.h"
#include "gen/hetero.h"
#include "gen/paper_example.h"
#include "summary/dataguide.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {
namespace {

/// Enumerates all label paths of length <= k starting anywhere in `from`
/// (for the graph) or at the guide root, as sorted sequences.
std::set<std::vector<TermId>> LabelPaths(const Graph& g,
                                         const std::vector<TermId>& starts,
                                         int k) {
  std::unordered_map<TermId, std::vector<std::pair<TermId, TermId>>> adj;
  for (const Triple& t : g.data()) adj[t.s].push_back({t.p, t.o});
  std::set<std::vector<TermId>> out;
  struct Frame {
    TermId node;
    std::vector<TermId> path;
  };
  std::vector<Frame> stack;
  for (TermId s : starts) stack.push_back({s, {}});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (!f.path.empty()) out.insert(f.path);
    if (static_cast<int>(f.path.size()) >= k) continue;
    auto it = adj.find(f.node);
    if (it == adj.end()) continue;
    for (const auto& [p, o] : it->second) {
      Frame next = f;
      next.path.push_back(p);
      next.node = o;
      stack.push_back(std::move(next));
    }
  }
  return out;
}

TEST(DataguideTest, ChainGraph) {
  // a -p-> b -q-> c : guide is root -p-> {b} -q-> {c}... with root covering a.
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("p"), q = d.EncodeIri("q");
  g.Add({d.EncodeIri("a"), p, d.EncodeIri("b")});
  g.Add({d.EncodeIri("b"), q, d.EncodeIri("c")});
  auto guide = BuildStrongDataguide(g);
  ASSERT_TRUE(guide.ok()) << guide.status().ToString();
  EXPECT_EQ(guide->num_states, 3u);  // {a}, {b}, {c}
  EXPECT_EQ(guide->num_edges, 2u);
}

TEST(DataguideTest, SharedStructureCollapses) {
  // Two parallel sources with the same property collapse into one guide
  // path.
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("p");
  g.Add({d.EncodeIri("a1"), p, d.EncodeIri("b1")});
  g.Add({d.EncodeIri("a2"), p, d.EncodeIri("b2")});
  auto guide = BuildStrongDataguide(g);
  ASSERT_TRUE(guide.ok());
  EXPECT_EQ(guide->num_states, 2u);  // root {a1,a2} and {b1,b2}
  EXPECT_EQ(guide->num_edges, 1u);
}

TEST(DataguideTest, EachPathAppearsOnce) {
  // Determinism: every guide state has at most one outgoing edge per label.
  gen::Figure2Example ex = gen::BuildFigure2();
  auto guide = BuildStrongDataguide(ex.graph);
  ASSERT_TRUE(guide.ok());
  std::set<std::pair<TermId, TermId>> seen;
  for (const Triple& t : guide->graph.data()) {
    EXPECT_TRUE(seen.insert({t.s, t.p}).second)
        << "two edges with one label from one state";
  }
}

class DataguidePathTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DataguidePathTest, PathLanguageIsPreserved) {
  // The defining Dataguide property: label paths from the guide root are
  // exactly the label paths of the graph (from its root set).
  gen::HeteroOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 25;
  opt.num_properties = 4;
  opt.mean_out_degree = 1.6;
  opt.type_probability = 0.0;
  opt.literal_fraction = 0.3;
  Graph g = gen::GenerateHetero(opt);
  DataguideOptions dgopt;
  dgopt.record_extents = true;
  auto guide = BuildStrongDataguide(g, dgopt);
  ASSERT_TRUE(guide.ok()) << guide.status().ToString();

  // Graph-side starts: the guide root's extent.
  std::vector<TermId> starts = guide->extents.at(guide->root);
  auto graph_paths = LabelPaths(g, starts, 3);
  auto guide_paths = LabelPaths(guide->graph, {guide->root}, 3);
  EXPECT_EQ(graph_paths, guide_paths);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataguidePathTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DataguideTest, CyclicGraphUsesAllSubjectsAsRoots) {
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("p");
  TermId a = d.EncodeIri("a"), b = d.EncodeIri("b");
  g.Add({a, p, b});
  g.Add({b, p, a});
  auto guide = BuildStrongDataguide(g);
  ASSERT_TRUE(guide.ok());
  EXPECT_GE(guide->num_states, 1u);
  // Follow p from the root: must stay within the guide forever (cycle).
  EXPECT_GE(guide->num_edges, 1u);
}

TEST(DataguideTest, MaxStatesGuardTriggers) {
  gen::HeteroOptions opt;
  opt.seed = 3;
  opt.num_nodes = 200;
  opt.num_properties = 8;
  opt.mean_out_degree = 3.0;
  Graph g = gen::GenerateHetero(opt);
  DataguideOptions dgopt;
  dgopt.max_states = 5;
  auto guide = BuildStrongDataguide(g, dgopt);
  EXPECT_TRUE(guide.status().IsNotSupported());
}

TEST(DataguideTest, EmptyGraph) {
  Graph g;
  auto guide = BuildStrongDataguide(g);
  ASSERT_TRUE(guide.ok());
  EXPECT_EQ(guide->num_states, 1u);  // just the (empty) root
  EXPECT_EQ(guide->num_edges, 0u);
}

TEST(DataguideTest, TypicallyLargerThanWeakSummaryOnBsbm) {
  gen::BsbmOptions opt;
  opt.num_products = 150;
  Graph g = gen::GenerateBsbm(opt);
  auto guide = BuildStrongDataguide(g);
  ASSERT_TRUE(guide.ok());
  SummaryResult w = Summarize(g, SummaryKind::kWeak);
  EXPECT_GT(guide->num_states, w.stats.num_data_nodes);
}

}  // namespace
}  // namespace rdfsum::summary
