// Odds and ends: logging, DOT options, evaluator generality beyond the RBGP
// dialect, and small API surfaces not covered by the focused suites.

#include <gtest/gtest.h>

#include "gen/paper_example.h"
#include "io/dot_writer.h"
#include "query/evaluator.h"
#include "query/sparql_parser.h"
#include "summary/cliques.h"
#include "summary/summarizer.h"
#include "util/logging.h"

namespace rdfsum {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are swallowed; above-threshold emit to stderr.
  RDFSUM_LOG(Debug) << "invisible " << 42;
  RDFSUM_LOG(Error) << "visible-" << 1;
  SetLogLevel(before);
}

TEST(DotWriterTest, FullIrisWhenLocalNamesDisabled) {
  Graph g;
  g.AddIris("http://x/sub", "http://x/prop", "http://x/obj");
  io::DotOptions options;
  options.local_names = false;
  std::string dot = io::DotWriter::ToString(g, options);
  EXPECT_NE(dot.find("http://x/prop"), std::string::npos);

  options.local_names = true;
  dot = io::DotWriter::ToString(g, options);
  EXPECT_NE(dot.find("label=\"prop\""), std::string::npos);
}

TEST(DotWriterTest, GraphNameEscaped) {
  Graph g;
  io::DotOptions options;
  options.graph_name = "has \"quotes\"";
  std::string dot = io::DotWriter::ToString(g, options);
  EXPECT_NE(dot.find("digraph \"has \\\"quotes\\\"\""), std::string::npos);
}

TEST(EvaluatorGeneralityTest, VariableProperty) {
  // The evaluator supports full BGPs, beyond the RBGP dialect: variable
  // properties enumerate the predicates.
  gen::Figure2Example ex = gen::BuildFigure2();
  auto q = query::ParseSparql(
      "PREFIX f: <http://example.org/fig2/>\n"
      "SELECT ?p WHERE { f:r1 ?p ?o }");
  ASSERT_TRUE(q.ok());
  query::BgpEvaluator eval(ex.graph);
  auto rows = eval.Evaluate(*q);
  ASSERT_TRUE(rows.ok());
  // r1 has author, title and rdf:type edges.
  EXPECT_EQ(rows->size(), 3u);
}

TEST(EvaluatorGeneralityTest, SameVariablePropertyAndObject) {
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.EncodeIri("http://p");
  g.Add({d.EncodeIri("http://s"), p, p});  // o == p
  g.Add({d.EncodeIri("http://s"), p, d.EncodeIri("http://other")});
  auto q = query::ParseSparql("SELECT ?x WHERE { ?s ?x ?x }");
  ASSERT_TRUE(q.ok());
  query::BgpEvaluator eval(g);
  auto rows = eval.Evaluate(*q);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].lexical, "http://p");
}

TEST(EvaluatorGeneralityTest, ZeroLimit) {
  gen::Figure2Example ex = gen::BuildFigure2();
  auto q = query::ParseSparql(
      "PREFIX f: <http://example.org/fig2/>\n"
      "SELECT ?s WHERE { ?s f:title ?t }");
  ASSERT_TRUE(q.ok());
  query::BgpEvaluator eval(ex.graph);
  auto rows = eval.Evaluate(*q, 1);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(SummaryKindTest, NamesAreStableAndDistinct) {
  using summary::SummaryKind;
  using summary::SummaryKindName;
  EXPECT_STREQ(SummaryKindName(SummaryKind::kWeak), "W");
  EXPECT_STREQ(SummaryKindName(SummaryKind::kStrong), "S");
  EXPECT_STREQ(SummaryKindName(SummaryKind::kTypedWeak), "TW");
  EXPECT_STREQ(SummaryKindName(SummaryKind::kTypedStrong), "TS");
  EXPECT_STREQ(SummaryKindName(SummaryKind::kTypeBased), "T");
  EXPECT_STREQ(SummaryKindName(SummaryKind::kBisimulation), "BISIM");
}

TEST(PropertyDistanceTest, TargetSideChain) {
  // Build a target-side chain: y1 is target of p1 and p2 (via different
  // sources), y2 of p2 and p3 — so d_target(p1, p3) = 1.
  Graph g;
  Dictionary& d = g.dict();
  TermId p1 = d.EncodeIri("p1"), p2 = d.EncodeIri("p2"),
         p3 = d.EncodeIri("p3");
  TermId y1 = d.EncodeIri("y1"), y2 = d.EncodeIri("y2");
  g.Add({d.EncodeIri("s1"), p1, y1});
  g.Add({d.EncodeIri("s2"), p2, y1});
  g.Add({d.EncodeIri("s3"), p2, y2});
  g.Add({d.EncodeIri("s4"), p3, y2});
  EXPECT_EQ(summary::PropertyDistance(g, p1, p2, /*source=*/false), 0);
  EXPECT_EQ(summary::PropertyDistance(g, p1, p3, /*source=*/false), 1);
  EXPECT_EQ(summary::PropertyDistance(g, p1, p3, /*source=*/true), -1);
}

TEST(SummaryStatsTest, ToStringMentionsEverything) {
  gen::Figure2Example ex = gen::BuildFigure2();
  auto r = summary::Summarize(ex.graph, summary::SummaryKind::kWeak);
  std::string s = r.stats.ToString();
  EXPECT_NE(s.find("data nodes=6"), std::string::npos);
  EXPECT_NE(s.find("class nodes=3"), std::string::npos);
  EXPECT_NE(s.find("data edges=6"), std::string::npos);
}

}  // namespace
}  // namespace rdfsum
