#include <gtest/gtest.h>

#include "gen/lubm.h"
#include "gen/paper_example.h"
#include "rdf/graph.h"
#include "reasoner/saturation.h"
#include "reasoner/schema_index.h"

namespace rdfsum {
namespace {

using reasoner::SaturationStats;
using reasoner::SchemaIndex;

// Small helper to express triples readably.
struct Fixture {
  Graph g;
  Dictionary& d = g.dict();
  const Vocabulary& v = g.vocab();

  TermId iri(const char* x) { return d.EncodeIri(x); }
};

TEST(SchemaIndexTest, SubclassTransitivity) {
  Fixture f;
  TermId a = f.iri("A"), b = f.iri("B"), c = f.iri("C");
  f.g.Add({a, f.v.subclass, b});
  f.g.Add({b, f.v.subclass, c});
  SchemaIndex idx(f.g);
  auto supers = idx.SuperClasses(a);
  EXPECT_EQ(supers.size(), 2u);
  EXPECT_TRUE(idx.SuperClasses(c).empty());
}

TEST(SchemaIndexTest, SubpropertyTransitivity) {
  Fixture f;
  TermId p = f.iri("p"), q = f.iri("q"), r = f.iri("r");
  f.g.Add({p, f.v.subproperty, q});
  f.g.Add({q, f.v.subproperty, r});
  SchemaIndex idx(f.g);
  EXPECT_EQ(idx.SuperProperties(p).size(), 2u);
}

TEST(SchemaIndexTest, CyclesDoNotHang) {
  Fixture f;
  TermId a = f.iri("A"), b = f.iri("B");
  f.g.Add({a, f.v.subclass, b});
  f.g.Add({b, f.v.subclass, a});
  SchemaIndex idx(f.g);
  // Each gets the other as a superclass; no self entry, no infinite loop.
  EXPECT_EQ(idx.SuperClasses(a).size(), 1u);
  EXPECT_EQ(idx.SuperClasses(b).size(), 1u);
}

TEST(SchemaIndexTest, DomainInheritedThroughSubproperty) {
  Fixture f;
  TermId p = f.iri("p"), q = f.iri("q"), c = f.iri("C");
  f.g.Add({p, f.v.subproperty, q});
  f.g.Add({q, f.v.domain, c});
  SchemaIndex idx(f.g);
  auto domains = idx.Domains(p);
  ASSERT_EQ(domains.size(), 1u);
  EXPECT_EQ(domains[0], c);
}

TEST(SchemaIndexTest, DomainClosedUnderSubclass) {
  Fixture f;
  TermId p = f.iri("p"), c1 = f.iri("C1"), c2 = f.iri("C2");
  f.g.Add({p, f.v.domain, c1});
  f.g.Add({c1, f.v.subclass, c2});
  SchemaIndex idx(f.g);
  EXPECT_EQ(idx.Domains(p).size(), 2u);
}

TEST(SchemaIndexTest, RangeMirrorsDomain) {
  Fixture f;
  TermId p = f.iri("p"), q = f.iri("q"), c1 = f.iri("C1"), c2 = f.iri("C2");
  f.g.Add({p, f.v.subproperty, q});
  f.g.Add({q, f.v.range, c1});
  f.g.Add({c1, f.v.subclass, c2});
  SchemaIndex idx(f.g);
  EXPECT_EQ(idx.Ranges(p).size(), 2u);
  EXPECT_TRUE(idx.Domains(p).empty());
}

TEST(SchemaIndexTest, NoSchema) {
  Fixture f;
  f.g.Add({f.iri("s"), f.iri("p"), f.iri("o")});
  SchemaIndex idx(f.g);
  EXPECT_FALSE(idx.HasSchema());
  EXPECT_TRUE(idx.SuperClasses(f.iri("s")).empty());
}

// ---------------------------------------------------------------- rules

TEST(SaturationTest, SubpropertyPropagatesDataTriple) {
  Fixture f;
  TermId s = f.iri("s"), o = f.iri("o"), p = f.iri("p"), q = f.iri("q");
  f.g.Add({s, p, o});
  f.g.Add({p, f.v.subproperty, q});
  Graph sat = reasoner::Saturate(f.g);
  EXPECT_TRUE(sat.Contains({s, q, o}));
}

TEST(SaturationTest, DomainRuleTypesSubject) {
  Fixture f;
  TermId s = f.iri("s"), o = f.iri("o"), p = f.iri("p"), c = f.iri("C");
  f.g.Add({s, p, o});
  f.g.Add({p, f.v.domain, c});
  Graph sat = reasoner::Saturate(f.g);
  EXPECT_TRUE(sat.Contains({s, f.v.rdf_type, c}));
  EXPECT_FALSE(sat.Contains({o, f.v.rdf_type, c}));
}

TEST(SaturationTest, RangeRuleTypesObject) {
  Fixture f;
  TermId s = f.iri("s"), o = f.iri("o"), p = f.iri("p"), c = f.iri("C");
  f.g.Add({s, p, o});
  f.g.Add({p, f.v.range, c});
  Graph sat = reasoner::Saturate(f.g);
  EXPECT_TRUE(sat.Contains({o, f.v.rdf_type, c}));
}

TEST(SaturationTest, SubclassPropagatesTypes) {
  Fixture f;
  TermId s = f.iri("s"), c1 = f.iri("C1"), c2 = f.iri("C2");
  f.g.Add({s, f.v.rdf_type, c1});
  f.g.Add({c1, f.v.subclass, c2});
  Graph sat = reasoner::Saturate(f.g);
  EXPECT_TRUE(sat.Contains({s, f.v.rdf_type, c2}));
}

TEST(SaturationTest, ChainedRulesCompose) {
  // s p o, p ≺sp q, q ←↩d C1, C1 ≺sc C2 ⊢ s τ C2 (and s q o, s τ C1).
  Fixture f;
  TermId s = f.iri("s"), o = f.iri("o"), p = f.iri("p"), q = f.iri("q");
  TermId c1 = f.iri("C1"), c2 = f.iri("C2");
  f.g.Add({s, p, o});
  f.g.Add({p, f.v.subproperty, q});
  f.g.Add({q, f.v.domain, c1});
  f.g.Add({c1, f.v.subclass, c2});
  Graph sat = reasoner::Saturate(f.g);
  EXPECT_TRUE(sat.Contains({s, q, o}));
  EXPECT_TRUE(sat.Contains({s, f.v.rdf_type, c1}));
  EXPECT_TRUE(sat.Contains({s, f.v.rdf_type, c2}));
}

TEST(SaturationTest, SchemaComponentIsClosed) {
  Fixture f;
  TermId p = f.iri("p"), q = f.iri("q"), c1 = f.iri("C1"), c2 = f.iri("C2");
  f.g.Add({p, f.v.subproperty, q});
  f.g.Add({q, f.v.domain, c1});
  f.g.Add({c1, f.v.subclass, c2});
  Graph sat = reasoner::Saturate(f.g);
  // Derived schema triples: p ←↩d C1 (sp inheritance), p/q ←↩d C2 (sc).
  EXPECT_TRUE(sat.Contains({p, f.v.domain, c1}));
  EXPECT_TRUE(sat.Contains({p, f.v.domain, c2}));
  EXPECT_TRUE(sat.Contains({q, f.v.domain, c2}));
}

TEST(SaturationTest, BookExampleImplicitTriples) {
  // §2.1: the four implicit triples listed in the paper.
  gen::BookExample ex = gen::BuildBookExample();
  const Graph& g = ex.graph;
  Graph sat = reasoner::Saturate(g);
  const Vocabulary& v = g.vocab();

  EXPECT_TRUE(sat.Contains({ex.doi1, v.rdf_type, ex.publication}));
  EXPECT_TRUE(sat.Contains({ex.doi1, ex.has_author, ex.b1}));
  EXPECT_TRUE(sat.Contains({ex.written_by, v.domain, ex.publication}));
  EXPECT_TRUE(sat.Contains({ex.b1, v.rdf_type, ex.person}));
  // Original triples are preserved.
  g.ForEachTriple([&](const Triple& t) { EXPECT_TRUE(sat.Contains(t)); });
  // Exactly these four new triples.
  EXPECT_EQ(sat.NumTriples(), g.NumTriples() + 4);
}

TEST(SaturationTest, StatsAreAccurate) {
  gen::BookExample ex = gen::BuildBookExample();
  SaturationStats stats;
  Graph sat = reasoner::Saturate(ex.graph, &stats);
  EXPECT_EQ(stats.input_triples, ex.graph.NumTriples());
  EXPECT_EQ(stats.output_triples, sat.NumTriples());
  EXPECT_EQ(stats.derived_data, 1u);    // doi1 hasAuthor _:b1
  EXPECT_EQ(stats.derived_types, 2u);   // doi1 τ Publication, _:b1 τ Person
  EXPECT_EQ(stats.derived_schema, 1u);  // writtenBy ←↩d Publication
}

TEST(SaturationTest, IdempotentFixpoint) {
  gen::BookExample ex = gen::BuildBookExample();
  Graph sat = reasoner::Saturate(ex.graph);
  Graph sat2 = reasoner::Saturate(sat);
  EXPECT_EQ(sat2.NumTriples(), sat.NumTriples());
  EXPECT_TRUE(reasoner::IsSaturated(sat));
  EXPECT_FALSE(reasoner::IsSaturated(ex.graph));
}

TEST(SaturationTest, NoSchemaIsAlreadySaturated) {
  gen::Figure2Example ex = gen::BuildFigure2();
  EXPECT_TRUE(reasoner::IsSaturated(ex.graph));
}

TEST(SaturationTest, LubmSaturationGrowsTypes) {
  gen::LubmOptions opt;
  opt.num_universities = 1;
  Graph g = gen::GenerateLubm(opt);
  SaturationStats stats;
  Graph sat = reasoner::Saturate(g, &stats);
  // The deep class hierarchy must produce many derived types (every
  // FullProfessor is a Professor, Faculty, Employee, Person...).
  EXPECT_GT(stats.derived_types, g.types().size());
  // headOf ≺sp worksFor derives data triples.
  EXPECT_GT(stats.derived_data, 0u);
  EXPECT_TRUE(reasoner::IsSaturated(sat));
}

}  // namespace
}  // namespace rdfsum
