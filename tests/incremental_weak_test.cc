#include <gtest/gtest.h>

#include "gen/bsbm.h"
#include "gen/hetero.h"
#include "gen/lubm.h"
#include "gen/paper_example.h"
#include "summary/incremental_weak.h"
#include "summary/isomorphism.h"
#include "summary/property_checks.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {
namespace {

TEST(IncrementalWeakTest, MatchesBatchOnFigure2) {
  gen::Figure2Example ex = gen::BuildFigure2();
  SummaryResult inc = IncrementalWeakSummarize(ex.graph);
  SummaryResult batch = Summarize(ex.graph, SummaryKind::kWeak);
  EXPECT_TRUE(AreSummariesIsomorphic(inc.graph, batch.graph));
  EXPECT_EQ(inc.stats.num_data_nodes, 6u);
  EXPECT_EQ(inc.graph.data().size(), 6u);
}

TEST(IncrementalWeakTest, NodeMapIsHomomorphism) {
  gen::Figure2Example ex = gen::BuildFigure2();
  SummaryResult inc = IncrementalWeakSummarize(ex.graph);
  EXPECT_TRUE(CheckHomomorphism(ex.graph, inc).ok());
}

TEST(IncrementalWeakTest, UniqueDataProperties) {
  gen::Figure2Example ex = gen::BuildFigure2();
  SummaryResult inc = IncrementalWeakSummarize(ex.graph);
  EXPECT_TRUE(CheckUniqueDataProperties(ex.graph, inc.graph).ok());
}

TEST(IncrementalWeakTest, TypedOnlyResourcesGetOneNode) {
  Graph g;
  Dictionary& d = g.dict();
  const TermId rdf_type = g.vocab().rdf_type;
  g.Add({d.EncodeIri("x"), rdf_type, d.EncodeIri("C1")});
  g.Add({d.EncodeIri("y"), rdf_type, d.EncodeIri("C2")});
  SummaryResult inc = IncrementalWeakSummarize(g);
  EXPECT_EQ(inc.node_map.at(d.EncodeIri("x")),
            inc.node_map.at(d.EncodeIri("y")));
  EXPECT_EQ(inc.graph.types().size(), 2u);
}

TEST(IncrementalWeakTest, MembersRecorded) {
  gen::Figure2Example ex = gen::BuildFigure2();
  IncrementalWeakOptions options;
  options.record_members = true;
  SummaryResult inc = IncrementalWeakSummarize(ex.graph, options);
  EXPECT_EQ(inc.members.at(inc.node_map.at(ex.r1)).size(), 5u);
}

TEST(IncrementalWeakTest, MergeOrderDoesNotChangeResult) {
  gen::Figure2Example ex = gen::BuildFigure2();
  IncrementalWeakOptions by_size;
  by_size.merge_smaller_node = true;
  IncrementalWeakOptions arbitrary;
  arbitrary.merge_smaller_node = false;
  SummaryResult a = IncrementalWeakSummarize(ex.graph, by_size);
  SummaryResult b = IncrementalWeakSummarize(ex.graph, arbitrary);
  EXPECT_TRUE(AreSummariesIsomorphic(a.graph, b.graph));
}

class IncrementalVsBatchTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalVsBatchTest, IsomorphicOnRandomGraphs) {
  gen::HeteroOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 180;
  opt.num_properties = 15;
  opt.type_probability = 0.4;
  Graph g = gen::GenerateHetero(opt);
  SummaryResult inc = IncrementalWeakSummarize(g);
  SummaryResult batch = Summarize(g, SummaryKind::kWeak);
  EXPECT_EQ(inc.graph.NumTriples(), batch.graph.NumTriples());
  EXPECT_TRUE(AreSummariesIsomorphic(inc.graph, batch.graph));
  EXPECT_TRUE(CheckHomomorphism(g, inc).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalVsBatchTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(IncrementalWeakTest, MatchesBatchOnBsbm) {
  gen::BsbmOptions opt;
  opt.num_products = 120;
  Graph g = gen::GenerateBsbm(opt);
  SummaryResult inc = IncrementalWeakSummarize(g);
  SummaryResult batch = Summarize(g, SummaryKind::kWeak);
  EXPECT_EQ(inc.stats.num_data_nodes, batch.stats.num_data_nodes);
  EXPECT_EQ(inc.graph.data().size(), batch.graph.data().size());
  EXPECT_EQ(inc.graph.types().size(), batch.graph.types().size());
  EXPECT_TRUE(AreSummariesIsomorphic(inc.graph, batch.graph));
}

TEST(IncrementalWeakTest, MatchesBatchOnLubm) {
  gen::LubmOptions opt;
  opt.num_universities = 1;
  Graph g = gen::GenerateLubm(opt);
  SummaryResult inc = IncrementalWeakSummarize(g);
  SummaryResult batch = Summarize(g, SummaryKind::kWeak);
  EXPECT_TRUE(AreSummariesIsomorphic(inc.graph, batch.graph));
}

TEST(IncrementalWeakTest, EmptyGraph) {
  Graph g;
  SummaryResult inc = IncrementalWeakSummarize(g);
  EXPECT_TRUE(inc.graph.Empty());
}

// ------------------------------------------------ incremental typed weak

TEST(IncrementalTypedWeakTest, MatchesBatchOnFigure2) {
  gen::Figure2Example ex = gen::BuildFigure2();
  SummaryResult inc = IncrementalTypedWeakSummarize(ex.graph);
  SummaryResult batch = Summarize(ex.graph, SummaryKind::kTypedWeak);
  EXPECT_EQ(inc.stats.num_data_nodes, 9u);
  EXPECT_TRUE(AreSummariesIsomorphic(inc.graph, batch.graph));
}

TEST(IncrementalTypedWeakTest, TypedNodesNeverMerge) {
  gen::Figure2Example ex = gen::BuildFigure2();
  SummaryResult inc = IncrementalTypedWeakSummarize(ex.graph);
  EXPECT_NE(inc.node_map.at(ex.r1), inc.node_map.at(ex.r2));
  EXPECT_EQ(inc.node_map.at(ex.r2), inc.node_map.at(ex.r6));  // same set
}

TEST(IncrementalTypedWeakTest, HomomorphismHolds) {
  gen::Figure2Example ex = gen::BuildFigure2();
  SummaryResult inc = IncrementalTypedWeakSummarize(ex.graph);
  EXPECT_TRUE(CheckHomomorphism(ex.graph, inc).ok());
}

class IncrementalTypedWeakSweepTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalTypedWeakSweepTest, IsomorphicToBatchTypedWeak) {
  gen::HeteroOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 150;
  opt.num_properties = 12;
  opt.type_probability = 0.45;
  Graph g = gen::GenerateHetero(opt);
  SummaryResult inc = IncrementalTypedWeakSummarize(g);
  SummaryResult batch = Summarize(g, SummaryKind::kTypedWeak);
  EXPECT_EQ(inc.graph.NumTriples(), batch.graph.NumTriples());
  EXPECT_TRUE(AreSummariesIsomorphic(inc.graph, batch.graph));
  EXPECT_TRUE(CheckHomomorphism(g, inc).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalTypedWeakSweepTest,
                         ::testing::Values(2, 4, 6, 8, 10, 12));

TEST(IncrementalTypedWeakTest, MatchesBatchOnBsbm) {
  gen::BsbmOptions opt;
  opt.num_products = 100;
  opt.untyped_offer_fraction = 0.3;
  Graph g = gen::GenerateBsbm(opt);
  SummaryResult inc = IncrementalTypedWeakSummarize(g);
  SummaryResult batch = Summarize(g, SummaryKind::kTypedWeak);
  EXPECT_EQ(inc.stats.num_data_nodes, batch.stats.num_data_nodes);
  EXPECT_TRUE(AreSummariesIsomorphic(inc.graph, batch.graph));
}

}  // namespace
}  // namespace rdfsum::summary
