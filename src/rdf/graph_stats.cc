#include "rdf/graph_stats.h"

#include <sstream>

namespace rdfsum {

GraphStats ComputeGraphStats(const Graph& g) {
  GraphStats st;
  st.num_data_edges = g.data().size();
  st.num_type_edges = g.types().size();
  st.num_schema_edges = g.schema().size();
  st.num_edges = g.NumTriples();

  std::unordered_set<TermId> nodes;
  std::unordered_set<TermId> data_nodes;
  std::unordered_set<TermId> class_nodes;
  std::unordered_set<TermId> property_nodes;
  std::unordered_set<TermId> data_props;
  std::unordered_set<TermId> data_subjects;
  std::unordered_set<TermId> data_objects;
  std::unordered_set<TermId> typed;

  for (const Triple& t : g.data()) {
    nodes.insert(t.s);
    nodes.insert(t.o);
    data_nodes.insert(t.s);
    data_nodes.insert(t.o);
    data_props.insert(t.p);
    data_subjects.insert(t.s);
    data_objects.insert(t.o);
  }
  for (const Triple& t : g.types()) {
    nodes.insert(t.s);
    nodes.insert(t.o);
    data_nodes.insert(t.s);
    class_nodes.insert(t.o);
    typed.insert(t.s);
  }
  const Vocabulary& v = g.vocab();
  for (const Triple& t : g.schema()) {
    nodes.insert(t.s);
    nodes.insert(t.o);
    if (t.p == v.subproperty) {
      property_nodes.insert(t.s);
      property_nodes.insert(t.o);
    } else if (t.p == v.domain || t.p == v.range) {
      property_nodes.insert(t.s);
    }
  }

  st.num_nodes = nodes.size();
  st.num_data_nodes = data_nodes.size();
  st.num_class_nodes = class_nodes.size();
  st.num_property_nodes = property_nodes.size();
  st.num_distinct_data_properties = data_props.size();
  st.num_distinct_classes_used = class_nodes.size();
  st.num_distinct_data_subjects = data_subjects.size();
  st.num_distinct_data_objects = data_objects.size();
  st.num_typed_resources = typed.size();

  uint64_t untyped = 0;
  for (TermId n : data_nodes) {
    if (!typed.count(n)) ++untyped;
  }
  st.num_untyped_resources = untyped;
  return st;
}

std::unordered_set<TermId> DataNodes(const Graph& g) {
  std::unordered_set<TermId> out;
  for (const Triple& t : g.data()) {
    out.insert(t.s);
    out.insert(t.o);
  }
  for (const Triple& t : g.types()) out.insert(t.s);
  return out;
}

std::unordered_set<TermId> ClassNodes(const Graph& g) {
  std::unordered_set<TermId> out;
  for (const Triple& t : g.types()) out.insert(t.o);
  return out;
}

std::unordered_set<TermId> TypedResources(const Graph& g) {
  std::unordered_set<TermId> out;
  for (const Triple& t : g.types()) out.insert(t.s);
  return out;
}

std::string GraphStats::ToString() const {
  std::ostringstream os;
  os << "edges=" << num_edges << " (data=" << num_data_edges
     << ", type=" << num_type_edges << ", schema=" << num_schema_edges
     << "), nodes=" << num_nodes << " (data=" << num_data_nodes
     << ", class=" << num_class_nodes << ", property=" << num_property_nodes
     << "), distinct data props=" << num_distinct_data_properties
     << ", typed=" << num_typed_resources
     << ", untyped=" << num_untyped_resources;
  return os.str();
}

}  // namespace rdfsum
