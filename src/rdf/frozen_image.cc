#include "rdf/frozen_image.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <numeric>

#include "rdf/dense_graph.h"

namespace rdfsum {

// The on-disk arrays are reinterpreted in place; these pin the layouts the
// format depends on. A platform where they fail needs explicit marshalling,
// not a silent format fork.
static_assert(sizeof(Triple) == 12 && alignof(Triple) == 4);
static_assert(sizeof(DenseGraph::Edge) == 12 && alignof(DenseGraph::Edge) == 4);
static_assert(sizeof(DenseGraph::Neighbor) == 8);

namespace {

Status Corrupt(const std::string& what) {
  return Status::Corruption("frozen image: " + what);
}

bool HostIsLittleEndian() {
  return std::endian::native == std::endian::little;
}

/// Overflow-safe `count * elem == actual`.
bool SizeIs(uint64_t count, uint64_t elem, uint64_t actual) {
  if (elem != 0 && count > UINT64_MAX / elem) return false;
  return count * elem == actual;
}

void AppendPod(std::string* out, const void* p, size_t n) {
  out->append(static_cast<const char*>(p), n);
}

}  // namespace

// ---- ImageBuilder -----------------------------------------------------------

void ImageBuilder::Add(SectionId id, std::string bytes) {
  sections_.emplace_back(static_cast<uint32_t>(id), std::move(bytes));
}

Status ImageBuilder::WriteFile(const std::string& path, uint32_t flags) const {
  if (!HostIsLittleEndian()) {
    return Status::NotSupported("frozen images require a little-endian host");
  }
  std::vector<size_t> order(sections_.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return sections_[a].first < sections_[b].first;
  });

  // Canonical layout: each payload starts at ImageAlignUp of the previous
  // end (the first at ImageAlignUp of the table end), and the file ends
  // exactly at the last payload's end. Attach() enforces the same equalities,
  // so identical sections produce — and are required to be — identical bytes.
  const uint64_t table_end =
      sizeof(ImageHeader) + sections_.size() * sizeof(SectionDesc);
  std::vector<SectionDesc> descs;
  descs.reserve(sections_.size());
  uint64_t end = table_end;
  for (size_t idx : order) {
    const auto& [id, bytes] = sections_[idx];
    SectionDesc d{};
    d.id = id;
    d.offset = ImageAlignUp(end);
    d.size = bytes.size();
    d.checksum = ImageFnv1a64(bytes.data(), bytes.size());
    end = d.offset + d.size;
    descs.push_back(d);
  }
  const uint64_t file_size = end;

  ImageHeader header{};
  std::memcpy(header.magic, kImageMagic, sizeof(kImageMagic));
  header.version_major = kImageVersionMajor;
  header.version_minor = kImageVersionMinor;
  header.file_size = file_size;
  header.section_count = static_cast<uint32_t>(sections_.size());
  header.flags = flags;
  header.table_checksum =
      ImageFnv1a64(descs.data(), descs.size() * sizeof(SectionDesc));
  header.header_checksum = ImageFnv1a64(&header, 40);

  std::string buf;
  buf.reserve(file_size);
  AppendPod(&buf, &header, sizeof(header));
  AppendPod(&buf, descs.data(), descs.size() * sizeof(SectionDesc));
  for (size_t i = 0; i < order.size(); ++i) {
    buf.resize(descs[i].offset, '\0');  // zero padding up to the payload
    buf += sections_[order[i]].second;
  }
  buf.resize(file_size, '\0');

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != buf.size() || !closed) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

// ---- Section writers --------------------------------------------------------

void AppendDictionarySections(const Dictionary& dict, ImageMeta* meta,
                              ImageBuilder* out) {
  const uint64_t n = dict.size() - 1;  // excluding reserved id 0
  std::vector<uint64_t> offsets;
  offsets.reserve(n + 1);
  std::string arena;
  offsets.push_back(0);
  for (TermId id = 1; id <= n; ++id) {
    const Term& t = dict.Decode(id);
    const uint8_t kind = static_cast<uint8_t>(t.kind);
    const uint32_t lens[3] = {static_cast<uint32_t>(t.lexical.size()),
                              static_cast<uint32_t>(t.datatype.size()),
                              static_cast<uint32_t>(t.language.size())};
    arena.push_back(static_cast<char>(kind));
    AppendPod(&arena, lens, sizeof(lens));
    arena += t.lexical;
    arena += t.datatype;
    arena += t.language;
    offsets.push_back(arena.size());
  }

  // Rebuild the probe table by inserting ids in ascending order (the same
  // sizing rule as Dictionary::Reserve) instead of copying the live table:
  // the live layout depends on rehash history, the rebuilt one only on
  // content, so images stay deterministic.
  uint64_t num_slots = 64;
  while (n * 10 >= num_slots * 7) num_slots *= 2;
  std::vector<DictionaryView::Slot> slots(num_slots);
  const uint64_t mask = num_slots - 1;
  for (TermId id = 1; id <= n; ++id) {
    const uint64_t h = Dictionary::HashTerm(dict.Decode(id));
    uint64_t i = h & mask;
    while (slots[i].id != kInvalidTermId) i = (i + 1) & mask;
    slots[i] = DictionaryView::Slot{h, id, 0};
  }

  meta->num_terms = n;
  meta->num_slots = num_slots;
  meta->mint_counter = dict.mint_counter();
  out->AddArray<uint64_t>(SectionId::kTermOffsets, offsets);
  out->Add(SectionId::kTermArena, std::move(arena));
  out->AddArray<DictionaryView::Slot>(SectionId::kDictSlots, slots);
}

void AppendDenseSections(const DenseGraph& dg, ImageMeta* meta,
                         ImageBuilder* out) {
  const DenseGraph::Raw r = dg.raw();
  meta->num_nodes = r.terms.size();
  meta->num_props = r.prop_terms.size();
  meta->num_data_edges = r.edges.size();
  meta->node_of_term_len = r.node_of_term.size();
  meta->prop_of_term_len = r.prop_of_term.size();
  meta->num_out_entries = r.out_entries.size();
  meta->num_in_entries = r.in_entries.size();
  meta->num_class_entries = r.classes.size();
  meta->num_class_sets = r.num_class_sets;
  out->AddArray(SectionId::kNodeTerms, r.terms);
  out->AddArray(SectionId::kNodeOfTerm, r.node_of_term);
  out->AddArray(SectionId::kHasData, r.has_data);
  out->AddArray(SectionId::kPropTerms, r.prop_terms);
  out->AddArray(SectionId::kPropOfTerm, r.prop_of_term);
  out->AddArray(SectionId::kEdges, r.edges);
  out->AddArray(SectionId::kOutOffsets, r.out_offsets);
  out->AddArray(SectionId::kOutEntries, r.out_entries);
  out->AddArray(SectionId::kInOffsets, r.in_offsets);
  out->AddArray(SectionId::kInEntries, r.in_entries);
  out->AddArray(SectionId::kSourceAnchor, r.source_anchor);
  out->AddArray(SectionId::kTargetAnchor, r.target_anchor);
  out->AddArray(SectionId::kClassOffsets, r.class_offsets);
  out->AddArray(SectionId::kClasses, r.classes);
  out->AddArray(SectionId::kClassSetId, r.class_set_id);
}

// ---- FrozenImage ------------------------------------------------------------

bool FrozenImage::HasSection(SectionId id) const {
  const uint32_t i = static_cast<uint32_t>(id);
  if (descs_.empty() || i == 0 || i > kImageMaxSections) return false;
  return section_index_[i] >= 0;
}

std::span<const char> FrozenImage::SectionBytes(SectionId id) const {
  if (!HasSection(id)) return {};
  const SectionDesc& d = descs_[section_index_[static_cast<uint32_t>(id)]];
  return {data_ + d.offset, static_cast<size_t>(d.size)};
}

namespace {

/// Structural validation: every section's byte size must match the kMeta
/// counts exactly and every index/id/offset must stay in range, so that no
/// accessor over the mapped arrays can read out of bounds even on a
/// checksum-valid adversarial file. `img` is fully attached except for this
/// final gate.
Status ValidateStructure(const FrozenImage& img) {
  const ImageMeta& m = img.meta();
  auto bytes = [&](SectionId id) { return img.SectionBytes(id); };

  // Dictionary: ids are u32 and 0 is reserved.
  if (m.num_terms > 0xFFFFFFFEull) return Corrupt("term count exceeds u32");
  if (!SizeIs(m.num_terms + 1, 8, bytes(SectionId::kTermOffsets).size())) {
    return Corrupt("term-offset section size mismatch");
  }
  std::span<const uint64_t> offs = img.Array<uint64_t>(SectionId::kTermOffsets);
  std::span<const char> arena = bytes(SectionId::kTermArena);
  if (offs[0] != 0 || offs[m.num_terms] != arena.size()) {
    return Corrupt("term arena does not match its offsets");
  }
  for (uint64_t i = 0; i < m.num_terms; ++i) {
    if (offs[i + 1] < offs[i]) return Corrupt("term offsets not monotone");
    const uint64_t rec_len = offs[i + 1] - offs[i];
    if (rec_len < kImageTermRecordHeaderBytes) {
      return Corrupt("term record shorter than its header");
    }
    const char* rec = arena.data() + offs[i];
    const uint8_t kind = static_cast<uint8_t>(rec[0]);
    if (kind > 2) return Corrupt("term record with invalid kind");
    uint32_t lens[3];
    std::memcpy(lens, rec + 1, sizeof(lens));
    const uint64_t want = kImageTermRecordHeaderBytes + uint64_t{lens[0]} +
                          lens[1] + lens[2];
    if (want != rec_len) return Corrupt("term record length mismatch");
  }
  if (m.num_slots == 0 || (m.num_slots & (m.num_slots - 1)) != 0 ||
      m.num_terms >= m.num_slots) {
    return Corrupt("slot table not a power of two with a free slot");
  }
  if (!SizeIs(m.num_slots, sizeof(DictionaryView::Slot),
              bytes(SectionId::kDictSlots).size())) {
    return Corrupt("slot section size mismatch");
  }
  for (const DictionaryView::Slot& s :
       img.Array<DictionaryView::Slot>(SectionId::kDictSlots)) {
    if (s.id > m.num_terms) return Corrupt("slot id out of range");
  }

  // Statistics counts cannot exceed what they count (a lying count would
  // not be unsafe, but it would silently mislead the planner).
  if (m.num_distinct_subjects > m.num_triples ||
      m.num_distinct_predicates > m.num_triples ||
      m.num_distinct_objects > m.num_triples) {
    return Corrupt("distinct counts exceed the triple count");
  }

  // Permutations: strictly sorted (the table is deduplicated) with every
  // position a live term id.
  auto check_perm = [&](SectionId id, auto less,
                        const char* name) -> Status {
    if (!SizeIs(m.num_triples, sizeof(Triple), bytes(id).size())) {
      return Corrupt(std::string(name) + " permutation size mismatch");
    }
    std::span<const Triple> rows = img.Array<Triple>(id);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Triple& t = rows[i];
      if (t.s == 0 || t.p == 0 || t.o == 0 || t.s > m.num_terms ||
          t.p > m.num_terms || t.o > m.num_terms) {
        return Corrupt(std::string(name) + " row with out-of-range term id");
      }
      if (i > 0 && !less(rows[i - 1], t)) {
        return Corrupt(std::string(name) + " permutation not strictly sorted");
      }
    }
    return Status::OK();
  };
  RDFSUM_RETURN_IF_ERROR(check_perm(
      SectionId::kSpo, [](const Triple& a, const Triple& b) { return a < b; },
      "SPO"));
  RDFSUM_RETURN_IF_ERROR(check_perm(
      SectionId::kPos,
      [](const Triple& a, const Triple& b) {
        if (a.p != b.p) return a.p < b.p;
        if (a.o != b.o) return a.o < b.o;
        return a.s < b.s;
      },
      "POS"));
  RDFSUM_RETURN_IF_ERROR(check_perm(
      SectionId::kOsp,
      [](const Triple& a, const Triple& b) {
        if (a.o != b.o) return a.o < b.o;
        if (a.s != b.s) return a.s < b.s;
        return a.p < b.p;
      },
      "OSP"));

  if (!SizeIs(m.num_predicates, sizeof(ImagePredStat),
              bytes(SectionId::kPredStats).size())) {
    return Corrupt("predicate-stats section size mismatch");
  }
  std::span<const ImagePredStat> preds =
      img.Array<ImagePredStat>(SectionId::kPredStats);
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i].p == 0 || preds[i].p > m.num_terms) {
      return Corrupt("predicate stats for out-of-range term id");
    }
    if (i > 0 && preds[i].p <= preds[i - 1].p) {
      return Corrupt("predicate stats not strictly sorted");
    }
  }

  // Component triples: bounds only (order is payload, not structure).
  auto check_triples = [&](SectionId id, uint64_t count,
                           const char* name) -> Status {
    if (!SizeIs(count, sizeof(Triple), bytes(id).size())) {
      return Corrupt(std::string(name) + " section size mismatch");
    }
    for (const Triple& t : img.Array<Triple>(id)) {
      if (t.s == 0 || t.p == 0 || t.o == 0 || t.s > m.num_terms ||
          t.p > m.num_terms || t.o > m.num_terms) {
        return Corrupt(std::string(name) + " row with out-of-range term id");
      }
    }
    return Status::OK();
  };
  RDFSUM_RETURN_IF_ERROR(
      check_triples(SectionId::kTypeTriples, m.num_type_triples, "type"));
  RDFSUM_RETURN_IF_ERROR(check_triples(SectionId::kSchemaTriples,
                                       m.num_schema_triples, "schema"));

  if (!img.has_dense()) return Status::OK();

  // Dense substrate: dense ids are u32 with 0xFFFFFFFF as the kNone
  // sentinel, CSR offsets are u32 — pin the ranges before the size checks
  // that multiply by them.
  constexpr uint32_t kNone = 0xFFFFFFFFu;
  if (m.num_nodes >= kNone || m.num_props >= kNone ||
      m.num_class_sets >= kNone || m.num_out_entries > kNone ||
      m.num_in_entries > kNone || m.num_class_entries > kNone) {
    return Corrupt("dense counts exceed u32 id space");
  }
  struct Sized {
    SectionId id;
    uint64_t count;
    uint64_t elem;
    const char* name;
  };
  const Sized sized[] = {
      {SectionId::kNodeTerms, m.num_nodes, 4, "node-term"},
      {SectionId::kNodeOfTerm, m.node_of_term_len, 4, "node-of-term"},
      {SectionId::kHasData, m.num_nodes, 1, "has-data"},
      {SectionId::kPropTerms, m.num_props, 4, "prop-term"},
      {SectionId::kPropOfTerm, m.prop_of_term_len, 4, "prop-of-term"},
      {SectionId::kEdges, m.num_data_edges, 12, "edge"},
      {SectionId::kOutOffsets, m.num_nodes + 1, 4, "out-offset"},
      {SectionId::kOutEntries, m.num_out_entries, 8, "out-entry"},
      {SectionId::kInOffsets, m.num_nodes + 1, 4, "in-offset"},
      {SectionId::kInEntries, m.num_in_entries, 8, "in-entry"},
      {SectionId::kSourceAnchor, m.num_props, 4, "source-anchor"},
      {SectionId::kTargetAnchor, m.num_props, 4, "target-anchor"},
      {SectionId::kClassOffsets, m.num_nodes + 1, 4, "class-offset"},
      {SectionId::kClasses, m.num_class_entries, 4, "class"},
      {SectionId::kClassSetId, m.num_nodes, 4, "class-set-id"},
  };
  for (const Sized& s : sized) {
    if (!SizeIs(s.count, s.elem, bytes(s.id).size())) {
      return Corrupt(std::string(s.name) + " section size mismatch");
    }
  }
  auto check_ids = [&](std::span<const uint32_t> ids, uint64_t limit,
                       bool allow_none, const char* name) -> Status {
    for (uint32_t v : ids) {
      if (allow_none && v == kNone) continue;
      if (v >= limit) {
        return Corrupt(std::string(name) + " entry out of range");
      }
    }
    return Status::OK();
  };
  auto check_terms = [&](std::span<const uint32_t> ids,
                         const char* name) -> Status {
    for (uint32_t v : ids) {
      if (v == 0 || v > m.num_terms) {
        return Corrupt(std::string(name) + " entry is not a term id");
      }
    }
    return Status::OK();
  };
  auto check_csr = [&](std::span<const uint32_t> offs2, uint64_t total,
                       const char* name) -> Status {
    if (offs2.front() != 0 || offs2.back() != total) {
      return Corrupt(std::string(name) + " offsets do not span the entries");
    }
    for (size_t i = 1; i < offs2.size(); ++i) {
      if (offs2[i] < offs2[i - 1]) {
        return Corrupt(std::string(name) + " offsets not monotone");
      }
    }
    return Status::OK();
  };
  RDFSUM_RETURN_IF_ERROR(check_terms(
      img.Array<uint32_t>(SectionId::kNodeTerms), "node-term"));
  RDFSUM_RETURN_IF_ERROR(check_terms(
      img.Array<uint32_t>(SectionId::kPropTerms), "prop-term"));
  RDFSUM_RETURN_IF_ERROR(check_terms(img.Array<uint32_t>(SectionId::kClasses),
                                     "class"));
  RDFSUM_RETURN_IF_ERROR(check_ids(
      img.Array<uint32_t>(SectionId::kNodeOfTerm), m.num_nodes, true,
      "node-of-term"));
  RDFSUM_RETURN_IF_ERROR(check_ids(
      img.Array<uint32_t>(SectionId::kPropOfTerm), m.num_props, true,
      "prop-of-term"));
  RDFSUM_RETURN_IF_ERROR(check_ids(
      img.Array<uint32_t>(SectionId::kSourceAnchor), m.num_nodes, true,
      "source-anchor"));
  RDFSUM_RETURN_IF_ERROR(check_ids(
      img.Array<uint32_t>(SectionId::kTargetAnchor), m.num_nodes, true,
      "target-anchor"));
  RDFSUM_RETURN_IF_ERROR(check_ids(
      img.Array<uint32_t>(SectionId::kClassSetId), m.num_class_sets, true,
      "class-set-id"));
  for (const DenseGraph::Edge& e : img.Array<DenseGraph::Edge>(
           SectionId::kEdges)) {
    if (e.s >= m.num_nodes || e.o >= m.num_nodes || e.p >= m.num_props) {
      return Corrupt("edge with out-of-range dense id");
    }
  }
  RDFSUM_RETURN_IF_ERROR(check_csr(
      img.Array<uint32_t>(SectionId::kOutOffsets), m.num_out_entries, "out"));
  RDFSUM_RETURN_IF_ERROR(check_csr(
      img.Array<uint32_t>(SectionId::kInOffsets), m.num_in_entries, "in"));
  RDFSUM_RETURN_IF_ERROR(check_csr(
      img.Array<uint32_t>(SectionId::kClassOffsets), m.num_class_entries,
      "class"));
  for (const DenseGraph::Neighbor& nb : img.Array<DenseGraph::Neighbor>(
           SectionId::kOutEntries)) {
    if (nb.p >= m.num_props || nb.node >= m.num_nodes) {
      return Corrupt("out-entry with out-of-range dense id");
    }
  }
  for (const DenseGraph::Neighbor& nb : img.Array<DenseGraph::Neighbor>(
           SectionId::kInEntries)) {
    if (nb.p >= m.num_props || nb.node >= m.num_nodes) {
      return Corrupt("in-entry with out-of-range dense id");
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<FrozenImage> FrozenImage::Attach(const char* data, size_t size,
                                          const Options& options) {
  if (!HostIsLittleEndian()) {
    return Status::NotSupported("frozen images require a little-endian host");
  }
  if (size < sizeof(ImageHeader)) {
    return Corrupt("file shorter than the header");
  }
  ImageHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kImageMagic, sizeof(kImageMagic)) != 0) {
    return Corrupt("bad magic (not a frozen store image)");
  }
  if (ImageFnv1a64(data, 40) != header.header_checksum) {
    return Corrupt("header checksum mismatch");
  }
  if (header.version_major != kImageVersionMajor) {
    return Status::NotSupported(
        "frozen image has major version " +
        std::to_string(header.version_major) + "; this build reads " +
        std::to_string(kImageVersionMajor));
  }
  if (header.file_size != size) {
    return Corrupt("declared file size does not match the actual size");
  }
  if (header.section_count == 0 || header.section_count > kImageMaxSections) {
    return Corrupt("section count out of range");
  }
  const uint64_t table_bytes =
      uint64_t{header.section_count} * sizeof(SectionDesc);
  const uint64_t table_end = sizeof(ImageHeader) + table_bytes;
  if (table_end > size) return Corrupt("section table past end of file");
  if (ImageFnv1a64(data + sizeof(ImageHeader), table_bytes) !=
      header.table_checksum) {
    return Corrupt("section table checksum mismatch");
  }

  FrozenImage img;
  img.data_ = data;
  img.size_ = size;
  img.flags_ = header.flags;
  img.descs_.resize(header.section_count);
  std::memcpy(img.descs_.data(), data + sizeof(ImageHeader), table_bytes);
  for (uint32_t i = 0; i <= kImageMaxSections; ++i) img.section_index_[i] = -1;

  // Canonical layout: payloads in strictly ascending id order, each starting
  // at ImageAlignUp of the previous end, all padding zero, the file ending
  // exactly at the last payload. The equalities make the layout a function
  // of the contents — there is nowhere for unchecksummed bytes to hide.
  uint64_t prev_end = table_end;
  uint32_t prev_id = 0;
  for (size_t i = 0; i < img.descs_.size(); ++i) {
    const SectionDesc& d = img.descs_[i];
    if (d.id == 0 || d.id > kImageMaxSections) {
      return Corrupt("section id out of range");
    }
    if (d.id <= prev_id) return Corrupt("section ids not strictly ascending");
    if (d.offset != ImageAlignUp(prev_end)) {
      return Corrupt("section offset breaks the canonical layout");
    }
    if (d.size > size || d.offset > size - d.size) {
      return Corrupt("section extends past end of file");
    }
    for (uint64_t b = prev_end; b < d.offset; ++b) {
      if (data[b] != 0) return Corrupt("nonzero padding between sections");
    }
    prev_id = d.id;
    prev_end = d.offset + d.size;
    img.section_index_[d.id] = static_cast<int>(i);
  }
  if (prev_end != size) return Corrupt("trailing bytes after last section");

  for (uint32_t id = 1; id <= 10; ++id) {
    if (img.section_index_[id] < 0) {
      return Corrupt("required section " + std::to_string(id) + " missing");
    }
  }
  for (uint32_t id = 11; id <= 25; ++id) {
    const bool present = img.section_index_[id] >= 0;
    if (present != img.has_dense()) {
      return Corrupt(img.has_dense()
                         ? "dense section " + std::to_string(id) + " missing"
                         : "dense section present without the dense flag");
    }
  }

  if (options.verify_checksums) {
    for (const SectionDesc& d : img.descs_) {
      if (ImageFnv1a64(data + d.offset, d.size) != d.checksum) {
        return Corrupt("checksum mismatch in section " + std::to_string(d.id));
      }
    }
  }

  std::span<const char> meta_bytes = img.SectionBytes(SectionId::kMeta);
  if (meta_bytes.size() != sizeof(ImageMeta)) {
    return Corrupt("meta section size mismatch");
  }
  std::memcpy(&img.meta_, meta_bytes.data(), sizeof(ImageMeta));

  if (options.validate_structure) {
    RDFSUM_RETURN_IF_ERROR(ValidateStructure(img));
  }
  return img;
}

DictionaryView FrozenImage::dictionary_view() const {
  DictionaryView v;
  v.num_terms = meta_.num_terms;
  v.mint_counter = meta_.mint_counter;
  v.term_offsets = Array<uint64_t>(SectionId::kTermOffsets);
  v.arena = SectionBytes(SectionId::kTermArena);
  v.slots = Array<DictionaryView::Slot>(SectionId::kDictSlots);
  return v;
}

std::shared_ptr<const DenseGraph> LoadDenseFromImage(const FrozenImage& img) {
  DenseGraph::Raw r;
  r.terms = img.Array<TermId>(SectionId::kNodeTerms);
  r.node_of_term = img.Array<uint32_t>(SectionId::kNodeOfTerm);
  r.has_data = img.Array<uint8_t>(SectionId::kHasData);
  r.prop_terms = img.Array<TermId>(SectionId::kPropTerms);
  r.prop_of_term = img.Array<uint32_t>(SectionId::kPropOfTerm);
  r.edges = img.Array<DenseGraph::Edge>(SectionId::kEdges);
  r.out_offsets = img.Array<uint32_t>(SectionId::kOutOffsets);
  r.out_entries = img.Array<DenseGraph::Neighbor>(SectionId::kOutEntries);
  r.in_offsets = img.Array<uint32_t>(SectionId::kInOffsets);
  r.in_entries = img.Array<DenseGraph::Neighbor>(SectionId::kInEntries);
  r.source_anchor = img.Array<uint32_t>(SectionId::kSourceAnchor);
  r.target_anchor = img.Array<uint32_t>(SectionId::kTargetAnchor);
  r.class_offsets = img.Array<uint32_t>(SectionId::kClassOffsets);
  r.classes = img.Array<TermId>(SectionId::kClasses);
  r.class_set_id = img.Array<uint32_t>(SectionId::kClassSetId);
  r.num_class_sets = static_cast<uint32_t>(img.meta().num_class_sets);
  return std::make_shared<const DenseGraph>(DenseGraph::FromRaw(r));
}

}  // namespace rdfsum
