#include "rdf/vocabulary.h"

namespace rdfsum {

Vocabulary::Vocabulary(Dictionary& dict) {
  rdf_type = dict.EncodeIri(vocab::kRdfType);
  subclass = dict.EncodeIri(vocab::kRdfsSubClassOf);
  subproperty = dict.EncodeIri(vocab::kRdfsSubPropertyOf);
  domain = dict.EncodeIri(vocab::kRdfsDomain);
  range = dict.EncodeIri(vocab::kRdfsRange);
}

}  // namespace rdfsum
