#include "rdf/graph.h"

#include <unordered_set>

#include "rdf/dense_graph.h"

namespace rdfsum {

Graph::Graph() : dict_(std::make_shared<Dictionary>()), vocab_(*dict_) {}

Graph::Graph(std::shared_ptr<Dictionary> dict)
    : dict_(std::move(dict)), vocab_(*dict_) {}

bool Graph::Add(const Triple& t) {
  if (!all_.insert(t).second) return false;
  if (vocab_.IsType(t.p)) {
    types_.push_back(t);
  } else if (vocab_.IsSchemaProperty(t.p)) {
    schema_.push_back(t);
  } else {
    data_.push_back(t);
  }
  return true;
}

bool Graph::AddTerms(const Term& s, const Term& p, const Term& o) {
  return Add(Triple{dict_->Encode(s), dict_->Encode(p), dict_->Encode(o)});
}

bool Graph::AddIris(std::string_view s, std::string_view p,
                    std::string_view o) {
  return AddTerms(Term::Iri(s), Term::Iri(p), Term::Iri(o));
}

void Graph::AddAll(const Graph& other) {
  Reserve(all_.size() + other.NumTriples());
  other.ForEachTriple([this](const Triple& t) { Add(t); });
}

void Graph::Reserve(size_t num_triples) {
  // Monotonic: unordered_set::reserve may rehash *down* to fit a smaller
  // request, which would throw away an earlier, larger reservation (e.g. a
  // bulk pre-reserve followed by a small ParseString).
  const size_t capacity =
      static_cast<size_t>(static_cast<double>(all_.bucket_count()) *
                          all_.max_load_factor());
  if (num_triples > capacity) all_.reserve(num_triples);
}

const DenseGraph& Graph::Dense() const {
  if (!dense_ || dense_built_at_ != all_.size()) {
    dense_ = std::make_shared<const DenseGraph>(*this);
    dense_built_at_ = all_.size();
  }
  return *dense_;
}

Graph Graph::Clone() const {
  Graph out(dict_);
  out.data_ = data_;
  out.types_ = types_;
  out.schema_ = schema_;
  out.all_ = all_;
  return out;
}

Status CheckWellBehaved(const Graph& g) {
  std::unordered_set<TermId> classes;
  for (const Triple& t : g.types()) classes.insert(t.o);
  for (const Triple& t : g.schema()) {
    if (t.p == g.vocab().subclass) {
      classes.insert(t.s);
      classes.insert(t.o);
    }
  }
  for (const Triple& t : g.data()) {
    if (classes.count(t.p)) {
      return Status::InvalidArgument(
          "class used in property position: " +
          g.dict().Decode(t.p).ToNTriples());
    }
    if (classes.count(t.s)) {
      return Status::InvalidArgument(
          "class has a non-RDFS property: " +
          g.dict().Decode(t.s).ToNTriples());
    }
    if (classes.count(t.o)) {
      return Status::InvalidArgument(
          "class appears as data object: " +
          g.dict().Decode(t.o).ToNTriples());
    }
  }
  for (const Triple& t : g.types()) {
    if (classes.count(t.s)) {
      return Status::InvalidArgument(
          "class has an rdf:type edge: " + g.dict().Decode(t.s).ToNTriples());
    }
  }
  return Status::OK();
}

}  // namespace rdfsum
