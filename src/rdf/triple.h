#ifndef RDFSUM_RDF_TRIPLE_H_
#define RDFSUM_RDF_TRIPLE_H_

#include <cstdint>
#include <functional>

namespace rdfsum {

/// Dense dictionary id of a term. Id 0 is reserved as "invalid".
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = 0;

/// A dictionary-encoded RDF triple. The paper's algorithms (§6) operate
/// exclusively on the integer encoding; strings are only touched at parse
/// and decode time.
struct Triple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
  /// Lexicographic (s, p, o) order; used by the SPO index.
  bool operator<(const Triple& other) const {
    if (s != other.s) return s < other.s;
    if (p != other.p) return p < other.p;
    return o < other.o;
  }
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t h = t.s;
    h = h * 0x9E3779B97F4A7C15ULL + t.p;
    h = h * 0x9E3779B97F4A7C15ULL + t.o;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    return static_cast<size_t>(h);
  }
};

}  // namespace rdfsum

template <>
struct std::hash<rdfsum::Triple> {
  size_t operator()(const rdfsum::Triple& t) const {
    return rdfsum::TripleHash{}(t);
  }
};

#endif  // RDFSUM_RDF_TRIPLE_H_
