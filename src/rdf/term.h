#ifndef RDFSUM_RDF_TERM_H_
#define RDFSUM_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace rdfsum {

/// Kind of an RDF term, per the RDF 1.1 abstract syntax.
enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// One RDF term: an IRI, a literal (with optional datatype IRI or language
/// tag), or a blank node. Terms are value types; graphs store dictionary-
/// encoded ids (TermId) instead of Term objects.
struct Term {
  TermKind kind = TermKind::kIri;
  /// IRI string (without angle brackets), literal lexical form, or blank
  /// node label (without the "_:" prefix).
  std::string lexical;
  /// Datatype IRI for typed literals; empty otherwise.
  std::string datatype;
  /// Language tag for language-tagged literals; empty otherwise.
  std::string language;

  static Term Iri(std::string_view iri) {
    return Term{TermKind::kIri, std::string(iri), {}, {}};
  }
  static Term Literal(std::string_view lex) {
    return Term{TermKind::kLiteral, std::string(lex), {}, {}};
  }
  static Term TypedLiteral(std::string_view lex, std::string_view dt) {
    return Term{TermKind::kLiteral, std::string(lex), std::string(dt), {}};
  }
  static Term LangLiteral(std::string_view lex, std::string_view lang) {
    return Term{TermKind::kLiteral, std::string(lex), {}, std::string(lang)};
  }
  static Term Blank(std::string_view label) {
    return Term{TermKind::kBlank, std::string(label), {}, {}};
  }

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }

  bool operator==(const Term& other) const {
    return kind == other.kind && lexical == other.lexical &&
           datatype == other.datatype && language == other.language;
  }

  /// Canonical N-Triples rendering, also used as the dictionary key:
  /// <iri>, "lit", "lit"@en, "lit"^^<dt>, _:label.
  std::string ToNTriples() const;
};

/// Escapes the characters N-Triples requires escaping inside literals.
std::string EscapeLiteral(std::string_view lex);

}  // namespace rdfsum

#endif  // RDFSUM_RDF_TERM_H_
