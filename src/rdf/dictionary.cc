#include "rdf/dictionary.h"

#include "util/string_util.h"

namespace rdfsum {

TermId Dictionary::Encode(const Term& term) {
  std::string key = term.ToNTriples();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(std::move(key), id);
  return id;
}

TermId Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(term.ToNTriples());
  return it == index_.end() ? kInvalidTermId : it->second;
}

TermId Dictionary::MintNodeUri(std::string_view tag) {
  while (true) {
    std::string uri = std::string(kMintedPrefix) + std::string(tag) + ":" +
                      std::to_string(mint_counter_++);
    Term term = Term::Iri(uri);
    if (Lookup(term) == kInvalidTermId) return Encode(term);
  }
}

bool Dictionary::IsMinted(TermId id) const {
  if (!Contains(id)) return false;
  const Term& t = Decode(id);
  return t.is_iri() && StartsWith(t.lexical, kMintedPrefix);
}

}  // namespace rdfsum
