#include "rdf/dictionary.h"

#include <cassert>
#include <cstring>
#include <string>

#include "util/string_util.h"

namespace rdfsum {
namespace {

/// FNV-1a over a string fragment, seeded so empty fields still separate
/// "lit" from "lit"@en etc.
uint64_t HashPiece(uint64_t h, std::string_view s) {
  h ^= 0x9E3779B97F4A7C15ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Decoded record boundaries inside a DictionaryView arena. The view is
/// pre-validated by FrozenImage::Attach, so lengths are trusted here.
struct ViewRecord {
  TermKind kind;
  std::string_view lexical;
  std::string_view datatype;
  std::string_view language;
};

ViewRecord ReadViewRecord(const DictionaryView& view, uint32_t id) {
  const char* rec = view.arena.data() + view.term_offsets[id - 1];
  uint32_t lens[3];
  std::memcpy(lens, rec + 1, sizeof(lens));
  const char* bytes = rec + 1 + sizeof(lens);
  return ViewRecord{static_cast<TermKind>(static_cast<uint8_t>(rec[0])),
                    std::string_view(bytes, lens[0]),
                    std::string_view(bytes + lens[0], lens[1]),
                    std::string_view(bytes + lens[0] + lens[1], lens[2])};
}

}  // namespace

uint64_t Dictionary::HashTerm(const Term& term) {
  uint64_t h = 0xCBF29CE484222325ULL + static_cast<uint64_t>(term.kind);
  h = HashPiece(h, term.lexical);
  h = HashPiece(h, term.datatype);
  h = HashPiece(h, term.language);
  // Final avalanche so power-of-two masking sees high-entropy low bits.
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

std::shared_ptr<Dictionary> Dictionary::FromView(const DictionaryView& view) {
  auto dict = std::make_shared<Dictionary>();
  dict->view_ = view;
  dict->base_terms_ = static_cast<size_t>(view.num_terms);
  dict->mint_counter_ = view.mint_counter;
  dict->view_cache_.resize(dict->base_terms_ + 1);
  return dict;
}

bool Dictionary::ViewTermEquals(uint32_t id, const Term& term) const {
  ViewRecord rec = ReadViewRecord(view_, id);
  return rec.kind == term.kind && rec.lexical == term.lexical &&
         rec.datatype == term.datatype && rec.language == term.language;
}

const Term& Dictionary::DecodeView(uint32_t id) const {
  assert(id >= 1 && id <= base_terms_);
  // Double-checked with the lock held on the slow path only: once a cache
  // entry is published (under the lock) it is never replaced, and readers
  // that observe it non-null see a fully constructed Term.
  std::lock_guard<std::mutex> lock(view_cache_mu_);
  std::unique_ptr<Term>& slot = view_cache_[id];
  if (!slot) {
    ViewRecord rec = ReadViewRecord(view_, id);
    auto t = std::make_unique<Term>();
    t->kind = rec.kind;
    t->lexical.assign(rec.lexical);
    t->datatype.assign(rec.datatype);
    t->language.assign(rec.language);
    slot = std::move(t);
  }
  return *slot;
}

TermId Dictionary::ViewLookup(const Term& term, uint64_t h) const {
  if (view_.slots.empty()) return kInvalidTermId;
  const size_t mask = view_.slots.size() - 1;
  size_t i = static_cast<size_t>(h) & mask;
  while (true) {
    const DictionaryView::Slot& slot = view_.slots[i];
    if (slot.id == kInvalidTermId) return kInvalidTermId;
    if (slot.hash == h && ViewTermEquals(slot.id, term)) return slot.id;
    i = (i + 1) & mask;
  }
}

size_t Dictionary::FindSlot(const Term& term, uint64_t h) const {
  const size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(h) & mask;
  while (true) {
    const Slot& slot = slots_[i];
    if (slot.id == kInvalidTermId) return i;
    // Overlay slots store global ids; the local term index subtracts the
    // view base (a no-op for owned dictionaries, where base_terms_ == 0).
    if (slot.hash == h && terms_[slot.id - base_terms_] == term) return i;
    i = (i + 1) & mask;
  }
}

void Dictionary::GrowIfNeeded() {
  // Max load factor 0.7; terms_.size() counts the reserved id 0, so the
  // entry count is terms_.size() - 1 (+1 for the insertion under way).
  if (terms_.size() * 10 >= slots_.size() * 7) Rehash(slots_.size() * 2);
}

void Dictionary::Rehash(size_t new_slot_count) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_slot_count, Slot{});
  const size_t mask = new_slot_count - 1;
  for (const Slot& slot : old) {
    if (slot.id == kInvalidTermId) continue;
    size_t i = static_cast<size_t>(slot.hash) & mask;
    while (slots_[i].id != kInvalidTermId) i = (i + 1) & mask;
    slots_[i] = slot;
  }
}

void Dictionary::Reserve(size_t num_terms) {
  terms_.reserve(num_terms + 1);
  size_t want = kInitialSlots;
  while (num_terms * 10 >= want * 7) want *= 2;
  if (want > slots_.size()) Rehash(want);
}

TermId Dictionary::EncodeHashed(const Term& term, const uint64_t h) {
  if (TermId base_id = ViewLookup(term, h); base_id != kInvalidTermId) {
    return base_id;
  }
  size_t i = FindSlot(term, h);
  if (slots_[i].id != kInvalidTermId) return slots_[i].id;
  TermId id = static_cast<TermId>(base_terms_ + terms_.size());
  terms_.push_back(term);
  slots_[i] = Slot{h, id};
  GrowIfNeeded();
  return id;
}

TermId Dictionary::Lookup(const Term& term) const {
  const uint64_t h = HashTerm(term);
  if (TermId base_id = ViewLookup(term, h); base_id != kInvalidTermId) {
    return base_id;
  }
  return slots_[FindSlot(term, h)].id;  // kInvalidTermId when absent
}

TermId Dictionary::MintNodeUri(std::string_view tag) {
  while (true) {
    std::string uri = std::string(kMintedPrefix) + std::string(tag) + ":" +
                      std::to_string(mint_counter_++);
    Term term = Term::Iri(uri);
    if (Lookup(term) == kInvalidTermId) return Encode(term);
  }
}

bool Dictionary::IsMinted(TermId id) const {
  if (!Contains(id)) return false;
  const Term& t = Decode(id);
  return t.is_iri() && StartsWith(t.lexical, kMintedPrefix);
}

}  // namespace rdfsum
