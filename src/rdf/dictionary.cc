#include "rdf/dictionary.h"

#include <string>

#include "util/string_util.h"

namespace rdfsum {
namespace {

/// FNV-1a over a string fragment, seeded so empty fields still separate
/// "lit" from "lit"@en etc.
uint64_t HashPiece(uint64_t h, std::string_view s) {
  h ^= 0x9E3779B97F4A7C15ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

uint64_t Dictionary::HashTerm(const Term& term) {
  uint64_t h = 0xCBF29CE484222325ULL + static_cast<uint64_t>(term.kind);
  h = HashPiece(h, term.lexical);
  h = HashPiece(h, term.datatype);
  h = HashPiece(h, term.language);
  // Final avalanche so power-of-two masking sees high-entropy low bits.
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

size_t Dictionary::FindSlot(const Term& term, uint64_t h) const {
  const size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(h) & mask;
  while (true) {
    const Slot& slot = slots_[i];
    if (slot.id == kInvalidTermId) return i;
    if (slot.hash == h && terms_[slot.id] == term) return i;
    i = (i + 1) & mask;
  }
}

void Dictionary::GrowIfNeeded() {
  // Max load factor 0.7; terms_.size() counts the reserved id 0, so the
  // entry count is terms_.size() - 1 (+1 for the insertion under way).
  if (terms_.size() * 10 >= slots_.size() * 7) Rehash(slots_.size() * 2);
}

void Dictionary::Rehash(size_t new_slot_count) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_slot_count, Slot{});
  const size_t mask = new_slot_count - 1;
  for (const Slot& slot : old) {
    if (slot.id == kInvalidTermId) continue;
    size_t i = static_cast<size_t>(slot.hash) & mask;
    while (slots_[i].id != kInvalidTermId) i = (i + 1) & mask;
    slots_[i] = slot;
  }
}

void Dictionary::Reserve(size_t num_terms) {
  terms_.reserve(num_terms + 1);
  size_t want = kInitialSlots;
  while (num_terms * 10 >= want * 7) want *= 2;
  if (want > slots_.size()) Rehash(want);
}

TermId Dictionary::Encode(const Term& term) {
  const uint64_t h = HashTerm(term);
  size_t i = FindSlot(term, h);
  if (slots_[i].id != kInvalidTermId) return slots_[i].id;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  slots_[i] = Slot{h, id};
  GrowIfNeeded();
  return id;
}

TermId Dictionary::Lookup(const Term& term) const {
  const uint64_t h = HashTerm(term);
  return slots_[FindSlot(term, h)].id;  // kInvalidTermId when absent
}

TermId Dictionary::MintNodeUri(std::string_view tag) {
  while (true) {
    std::string uri = std::string(kMintedPrefix) + std::string(tag) + ":" +
                      std::to_string(mint_counter_++);
    Term term = Term::Iri(uri);
    if (Lookup(term) == kInvalidTermId) return Encode(term);
  }
}

bool Dictionary::IsMinted(TermId id) const {
  if (!Contains(id)) return false;
  const Term& t = Decode(id);
  return t.is_iri() && StartsWith(t.lexical, kMintedPrefix);
}

}  // namespace rdfsum
