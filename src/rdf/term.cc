#include "rdf/term.h"

namespace rdfsum {

std::string EscapeLiteral(std::string_view lex) {
  std::string out;
  out.reserve(lex.size());
  for (char c : lex) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Term::ToNTriples() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + lexical + ">";
    case TermKind::kBlank:
      return "_:" + lexical;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(lexical) + "\"";
      if (!language.empty()) {
        out += "@" + language;
      } else if (!datatype.empty()) {
        out += "^^<" + datatype + ">";
      }
      return out;
    }
  }
  return {};
}

}  // namespace rdfsum
