#ifndef RDFSUM_RDF_FROZEN_IMAGE_H_
#define RDFSUM_RDF_FROZEN_IMAGE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "util/status.h"
#include "util/statusor.h"

namespace rdfsum {

class DenseGraph;

/// The frozen-image binary format (".rsb"): a single file whose sections are
/// 64-byte-aligned flat arrays addressable directly from an mmap'd region —
/// the dictionary term arena and its open-addressing index, the three sorted
/// triple permutations with their statistics, and (optionally) the DenseGraph
/// substrate arrays. `docs/FORMAT.md` is the normative specification; this
/// header is its executable twin — every constant and struct below is named
/// there, and the corruption wall (tests/image_corruption_test.cc) is pinned
/// against both.
///
/// Layering: this file owns the *format* — header/section-table plumbing,
/// checksum and structural validation, and the encode/decode of the
/// rdf-level sections (dictionary, dense substrate). The store-level
/// assembly (building a TripleTable over the mapped permutations, the mmap
/// itself, freezing a Graph to a file) lives in store/mmap_store.{h,cc}.

// ---- Format constants -------------------------------------------------------

inline constexpr char kImageMagic[8] = {'R', 'D', 'F', 'S', 'U', 'M', 'S',
                                        'B'};
inline constexpr uint32_t kImageVersionMajor = 1;
inline constexpr uint32_t kImageVersionMinor = 0;
/// Every section payload starts at a multiple of this; inter-section padding
/// bytes MUST be zero (validated — un-checksummed bytes are not a hiding
/// place for corruption).
inline constexpr uint64_t kImageAlignment = 64;
inline constexpr uint32_t kImageMaxSections = 64;
/// Header flag bit: the DenseGraph substrate sections are present.
inline constexpr uint32_t kImageFlagDense = 1u << 0;

/// Section identifiers. Ids appear in the section table in strictly
/// ascending order; ids 1-10 are required, 11-25 are present iff
/// kImageFlagDense is set. Unknown higher ids (up to kImageMaxSections) are
/// ignored by readers (minor-version evolution rule, see docs/FORMAT.md §7).
///
/// kTypeTriples/kSchemaTriples keep the graph's type and schema components
/// verbatim in original insertion order — together with kEdges (the data
/// component in graph order) they let MmapStore::ToGraph() rebuild a Graph
/// whose component vectors, canonical dense numbering, and minted-URI
/// counter are byte-identical to the graph that was frozen, which is what
/// makes summaries computed from an image identical to the parse path.
enum class SectionId : uint32_t {
  kMeta = 1,           // ImageMeta
  kTermOffsets = 2,    // u64[num_terms + 1], offsets into kTermArena
  kTermArena = 3,      // term records (see kImageTermRecordHeaderBytes)
  kDictSlots = 4,      // DictionaryView::Slot[num_slots]
  kSpo = 5,            // Triple[num_triples], sorted (s, p, o)
  kPos = 6,            // Triple[num_triples], sorted (p, o, s)
  kOsp = 7,            // Triple[num_triples], sorted (o, s, p)
  kPredStats = 8,      // ImagePredStat[num_predicates], sorted by p
  kTypeTriples = 9,    // Triple[num_type_triples], insertion order
  kSchemaTriples = 10, // Triple[num_schema_triples], insertion order
  kNodeTerms = 11,     // TermId[num_nodes]
  kNodeOfTerm = 12,    // u32[node_of_term_len]
  kHasData = 13,       // u8[num_nodes]
  kPropTerms = 14,     // TermId[num_props]
  kPropOfTerm = 15,    // u32[prop_of_term_len]
  kEdges = 16,         // DenseGraph::Edge[num_data_edges], graph order
  kOutOffsets = 17,    // u32[num_nodes + 1]
  kOutEntries = 18,    // DenseGraph::Neighbor[num_out_entries]
  kInOffsets = 19,     // u32[num_nodes + 1]
  kInEntries = 20,     // DenseGraph::Neighbor[num_in_entries]
  kSourceAnchor = 21,  // NodeId[num_props]
  kTargetAnchor = 22,  // NodeId[num_props]
  kClassOffsets = 23,  // u32[num_nodes + 1]
  kClasses = 24,       // TermId[num_class_entries]
  kClassSetId = 25,    // u32[num_nodes]
};

/// File header, the first 64 bytes. header_checksum covers bytes [0, 40)
/// (everything before itself); table_checksum covers the section table that
/// immediately follows the header. All integers little-endian.
struct ImageHeader {
  char magic[8];
  uint32_t version_major;
  uint32_t version_minor;
  uint64_t file_size;
  uint32_t section_count;
  uint32_t flags;
  uint64_t table_checksum;
  uint64_t header_checksum;
  uint8_t reserved[16];  // writers MUST zero; readers ignore
};
static_assert(sizeof(ImageHeader) == 64);

/// One section-table entry (32 bytes). `offset` is absolute and 64-aligned;
/// `size` is the exact payload byte count (padding excluded); `checksum` is
/// FNV-1a-64 over the payload bytes.
struct SectionDesc {
  uint32_t id;
  uint32_t reserved;  // writers MUST zero; readers ignore
  uint64_t offset;
  uint64_t size;
  uint64_t checksum;
};
static_assert(sizeof(SectionDesc) == 32);

/// The kMeta section: every count the other sections are sized by. A reader
/// validates each section's byte size against these counts *exactly*, so a
/// flipped count can never drive an out-of-bounds view.
struct ImageMeta {
  uint64_t num_terms;   // dictionary entries, excluding reserved id 0
  uint64_t num_slots;   // open-addressing slots; power of two, > num_terms
  uint64_t mint_counter;
  uint64_t num_triples;
  uint64_t num_distinct_subjects;
  uint64_t num_distinct_predicates;
  uint64_t num_distinct_objects;
  uint64_t num_predicates;  // rows in kPredStats
  uint64_t num_type_triples;
  uint64_t num_schema_triples;
  // DenseGraph substrate counts; all zero when kImageFlagDense is unset.
  uint64_t num_nodes;
  uint64_t num_props;
  uint64_t num_data_edges;
  uint64_t node_of_term_len;
  uint64_t prop_of_term_len;
  uint64_t num_out_entries;
  uint64_t num_in_entries;
  uint64_t num_class_entries;
  uint64_t num_class_sets;
  uint64_t reserved[5];  // writers MUST zero; readers ignore
};
static_assert(sizeof(ImageMeta) == 192);

/// One kPredStats row: the per-predicate aggregates TableStats serves.
struct ImagePredStat {
  uint32_t p;
  uint32_t reserved;  // zero
  uint64_t count;
  uint64_t distinct_subjects;
  uint64_t distinct_objects;
};
static_assert(sizeof(ImagePredStat) == 32);

/// Fixed prefix of one kTermArena record: kind byte + the three piece
/// lengths, followed by lexical/datatype/language bytes (no terminators).
/// Packed byte-by-byte (the record stream has no alignment), decoded with
/// memcpy.
inline constexpr uint64_t kImageTermRecordHeaderBytes = 1 + 3 * 4;

/// FNV-1a-64, seeded compatibly with summary persistence v2.
inline constexpr uint64_t kImageFnvSeed = 1469598103934665603ULL;
inline uint64_t ImageFnv1a64(const void* data, size_t size,
                             uint64_t h = kImageFnvSeed) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline constexpr uint64_t ImageAlignUp(uint64_t n) {
  return (n + kImageAlignment - 1) & ~(kImageAlignment - 1);
}

// ---- Writing ----------------------------------------------------------------

/// Accumulates section payloads in memory and writes a complete image:
/// header, section table (ascending id order), 64-aligned payloads with
/// zeroed gaps, per-section + header + table checksums. Deterministic: the
/// same sections produce byte-identical files.
class ImageBuilder {
 public:
  void Add(SectionId id, std::string bytes);

  template <typename T>
  void AddArray(SectionId id, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    Add(id, std::string(reinterpret_cast<const char*>(data.data()),
                        data.size() * sizeof(T)));
  }

  /// Writes the assembled image. Fails with kIOError on any write problem;
  /// a partially written file is left behind (callers overwrite or unlink).
  Status WriteFile(const std::string& path, uint32_t flags) const;

 private:
  std::vector<std::pair<uint32_t, std::string>> sections_;
};

/// Serializes `dict` into the kTermOffsets / kTermArena / kDictSlots
/// sections and fills the dictionary fields of `meta`. The slot table is
/// rebuilt by inserting ids in ascending order (not copied from the live
/// table), so images are deterministic regardless of the dictionary's
/// rehash history. Works on owned and view-mode dictionaries alike.
void AppendDictionarySections(const Dictionary& dict, ImageMeta* meta,
                              ImageBuilder* out);

/// Serializes the DenseGraph substrate arrays into sections 11-25 and fills
/// the dense fields of `meta`.
void AppendDenseSections(const DenseGraph& dg, ImageMeta* meta,
                         ImageBuilder* out);

// ---- Reading ----------------------------------------------------------------

/// A validated view over an image byte range (an mmap'd file or an
/// in-memory buffer — FrozenImage never owns the bytes). Attach() performs
/// the full corruption wall:
///
///  - header: magic, major version, declared vs. actual file size, header
///    and section-table checksums;
///  - section table: ascending ids, 64-byte alignment, in-bounds and
///    non-overlapping payloads in table order, zeroed gaps, required
///    sections present (and dense sections present iff flagged);
///  - per-section FNV-1a-64 checksums (skippable via Options for
///    open-at-page-cache-speed on trusted files);
///  - structural validation: every section's size matches the kMeta counts
///    exactly, term-arena offsets are monotone and records well-formed,
///    the slot table is a power of two with a free slot, permutations are
///    sorted with in-range ids, CSR offset arrays are monotone, and every
///    dense id is in range — so no later accessor can read out of bounds
///    even on a checksum-valid adversarial file.
///
/// Any violation returns kCorruption; an unsupported major version or a
/// big-endian host returns kNotSupported. Never UB, never an allocation
/// driven by an unvalidated count.
class FrozenImage {
 public:
  struct Options {
    bool verify_checksums = true;
    bool validate_structure = true;
  };

  FrozenImage() = default;

  // (Two overloads instead of `= {}`: GCC rejects brace defaults for
  // aggregates with member initializers, PR 88165.)
  static StatusOr<FrozenImage> Attach(const char* data, size_t size) {
    return Attach(data, size, Options());
  }
  static StatusOr<FrozenImage> Attach(const char* data, size_t size,
                                      const Options& options);

  const ImageMeta& meta() const { return meta_; }
  bool has_dense() const { return (flags_ & kImageFlagDense) != 0; }
  /// Total image size in bytes (== file size, validated at Attach).
  size_t size() const { return size_; }

  bool HasSection(SectionId id) const;
  /// Raw payload bytes; empty span when the section is absent.
  std::span<const char> SectionBytes(SectionId id) const;

  /// Typed view of a section payload. Requires the section to be present
  /// with a size divisible by sizeof(T) — guaranteed after Attach() for the
  /// section/type pairings documented on SectionId.
  template <typename T>
  std::span<const T> Array(SectionId id) const {
    static_assert(std::is_trivially_copyable_v<T>);
    std::span<const char> bytes = SectionBytes(id);
    return {reinterpret_cast<const T*>(bytes.data()),
            bytes.size() / sizeof(T)};
  }

  /// The dictionary base backed by this image, ready for
  /// Dictionary::FromView. Valid only while the attached bytes live.
  DictionaryView dictionary_view() const;

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  uint32_t flags_ = 0;
  ImageMeta meta_{};
  // Dense id -> index into descs_; -1 when absent.
  std::vector<SectionDesc> descs_;
  int section_index_[kImageMaxSections + 1] = {};
};

/// Rebuilds a DenseGraph from the image's substrate sections (bulk copies —
/// O(bytes) memcpys, no graph walk). Requires has_dense(). The result is
/// self-contained: it does not borrow the image.
std::shared_ptr<const DenseGraph> LoadDenseFromImage(const FrozenImage& img);

}  // namespace rdfsum

#endif  // RDFSUM_RDF_FROZEN_IMAGE_H_
