#ifndef RDFSUM_RDF_GRAPH_H_
#define RDFSUM_RDF_GRAPH_H_

#include <memory>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/vocabulary.h"
#include "util/status.h"

namespace rdfsum {

class DenseGraph;

/// An RDF graph in the paper's triple-based representation G = <D, S, T>
/// (§2.1):
///   - D (data component): all triples that are neither τ nor RDFS,
///   - S (schema component): triples whose property is ≺sc, ≺sp, ←↩d or ↪→r,
///   - T (type component): rdf:type triples.
///
/// Triples are dictionary-encoded; the dictionary is shared (shared_ptr) so
/// a summary can live in the same id space as the graph it summarizes, and
/// so that saturation can add triples without re-interning strings.
///
/// Insertion de-duplicates: a Graph is a *set* of triples.
class Graph {
 public:
  /// Copying a Graph copies the triple storage but shares the dictionary
  /// (and the cached DenseGraph substrate, which is immutable once built).
  Graph(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(const Graph&) = default;
  Graph& operator=(Graph&&) = default;

  /// Creates a graph with a fresh dictionary.
  Graph();

  /// Creates a graph sharing an existing dictionary.
  explicit Graph(std::shared_ptr<Dictionary> dict);

  /// Adds an encoded triple, routing it to the right component.
  /// Returns true iff the triple was not already present.
  bool Add(const Triple& t);

  /// Interns the terms and adds the triple.
  bool AddTerms(const Term& s, const Term& p, const Term& o);

  /// Convenience: adds <s> <p> <o> with all three terms IRIs.
  bool AddIris(std::string_view s, std::string_view p, std::string_view o);

  /// Adds every triple of `other` (which must share this dictionary).
  void AddAll(const Graph& other);

  /// Pre-sizes the triple set for `num_triples` insertions; call before bulk
  /// Add loops to avoid rehashing on the hot path.
  void Reserve(size_t num_triples);

  bool Contains(const Triple& t) const { return all_.count(t) > 0; }

  /// Data component D_G.
  const std::vector<Triple>& data() const { return data_; }
  /// Type component T_G.
  const std::vector<Triple>& types() const { return types_; }
  /// Schema component S_G.
  const std::vector<Triple>& schema() const { return schema_; }

  /// |G|e: total number of (distinct) triples.
  size_t NumTriples() const { return all_.size(); }
  bool Empty() const { return all_.empty(); }

  Dictionary& dict() { return *dict_; }
  const Dictionary& dict() const { return *dict_; }
  std::shared_ptr<Dictionary> dict_ptr() const { return dict_; }
  const Vocabulary& vocab() const { return vocab_; }

  /// Deep copy sharing the same dictionary.
  Graph Clone() const;

  /// The dense-ID substrate (canonical node numbering + CSR adjacency; see
  /// DenseGraph). Built lazily on first call and cached; automatically
  /// rebuilt if triples were added since. NOT thread-safe, even across
  /// const callers (the lazy build mutates the cache): warm the cache with
  /// a single Dense() call before sharing a graph across threads.
  const DenseGraph& Dense() const;

  /// Installs a pre-built substrate for the graph's *current* triples, so
  /// the next Dense() serves it instead of rebuilding. Used by the frozen-
  /// image open path (store::MmapStore::ToGraph), where the substrate was
  /// computed at freeze time and stored in the image; `dense` must be what
  /// DenseGraph(*this) would build — the image reconstruction preserves
  /// insertion order precisely so that this holds. A later mutation
  /// invalidates it like any cached substrate.
  void InstallDense(std::shared_ptr<const DenseGraph> dense) {
    dense_ = std::move(dense);
    dense_built_at_ = all_.size();
  }

  /// Invokes `fn(const Triple&)` for every triple in D, then T, then S.
  template <typename Fn>
  void ForEachTriple(Fn&& fn) const {
    for (const Triple& t : data_) fn(t);
    for (const Triple& t : types_) fn(t);
    for (const Triple& t : schema_) fn(t);
  }

 private:
  std::shared_ptr<Dictionary> dict_;
  Vocabulary vocab_;
  std::vector<Triple> data_;
  std::vector<Triple> types_;
  std::vector<Triple> schema_;
  std::unordered_set<Triple, TripleHash> all_;

  // Lazily built substrate; shared so copies reuse it until they mutate.
  mutable std::shared_ptr<const DenseGraph> dense_;
  mutable size_t dense_built_at_ = 0;  // all_.size() when dense_ was built
};

/// Verifies the "well-behaved" conditions of §2.1: (i) no class appears in a
/// property position, (ii) classes have no properties besides rdf:type and
/// RDFS ones (i.e. a class node never occurs as subject/object of a data
/// triple). All shipped generators produce well-behaved graphs.
Status CheckWellBehaved(const Graph& g);

}  // namespace rdfsum

#endif  // RDFSUM_RDF_GRAPH_H_
