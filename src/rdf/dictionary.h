#ifndef RDFSUM_RDF_DICTIONARY_H_
#define RDFSUM_RDF_DICTIONARY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "rdf/term.h"
#include "rdf/triple.h"

namespace rdfsum {

/// Zero-copy dictionary base: spans over a frozen image's term sections
/// (rdf/frozen_image.h), handed to Dictionary::FromView. The spans borrow
/// the mapped file; the view is plain data and copies freely, but it is
/// valid only while the mapping lives.
///
/// `arena` holds one record per term id 1..num_terms, delimited by
/// `term_offsets` (num_terms + 1 entries, offsets relative to the arena
/// start): kind byte, three u32 piece lengths, then the lexical / datatype /
/// language bytes. `slots` is a ready-to-probe open-addressing index over
/// those records — same hash (Dictionary::HashTerm) and probe sequence as
/// the in-memory table, so lookups against the image need no rebuild.
struct DictionaryView {
  /// On-disk slot layout (kDictSlots section). id 0 marks "empty";
  /// `reserved` is zero on disk and ignored on read.
  struct Slot {
    uint64_t hash;
    uint32_t id;
    uint32_t reserved;
  };

  uint64_t num_terms = 0;  // excluding the reserved id 0
  uint64_t mint_counter = 0;
  std::span<const uint64_t> term_offsets;  // num_terms + 1 entries
  std::span<const char> arena;
  std::span<const Slot> slots;  // power-of-two size, > num_terms
};
static_assert(sizeof(DictionaryView::Slot) == 16);

/// Bidirectional term <-> integer mapping (the paper's Postgres `dictionary`
/// table, §6). Ids are dense and start at 1; id 0 is reserved.
///
/// Encode/Lookup are allocation-free on the hot path: terms are hashed in
/// place (kind + lexical + datatype + language) against an open-addressing
/// index of ids into the term store, instead of keying a map on a freshly
/// built ToNTriples() string. Cached hashes make rehashing cheap.
///
/// The dictionary also mints fresh "summary node" URIs for the
/// representation functions N(.,.) and C(.) (Definition 11 onwards); minted
/// URIs use the urn:rdfsum: prefix so they can be recognized as anonymous
/// when comparing summaries up to isomorphism.
///
/// **View mode.** FromView() builds a dictionary whose ids 1..base_terms()
/// are served zero-copy from a DictionaryView (an mmap'd frozen image):
/// Lookup probes the on-disk slot table directly and Decode materializes a
/// Term lazily, caching it for reference stability. New terms — saturation
/// vocabulary, minted summary nodes — go to a mutable overlay and get ids
/// above the base, so a view-mode dictionary composes with every existing
/// consumer. View-mode Decode of a not-yet-cached id takes a lock; owned-
/// mode behavior and layout are unchanged.
class Dictionary {
 public:
  Dictionary() {
    terms_.emplace_back();  // id 0 placeholder
    slots_.resize(kInitialSlots);
  }

  /// A dictionary whose base ids are served from `view` (typically
  /// FrozenImage::dictionary_view()). The caller must keep the viewed bytes
  /// alive for the dictionary's lifetime. The view must already be
  /// validated (FrozenImage::Attach does); this constructor trusts it.
  static std::shared_ptr<Dictionary> FromView(const DictionaryView& view);

  /// Interns `term`, returning its id (existing or fresh).
  TermId Encode(const Term& term) { return EncodeHashed(term, HashTerm(term)); }

  /// Encode with a precomputed HashTerm(term) value. The parallel loader's
  /// merge pass interns every staged term exactly once per chunk and already
  /// paid for the hash in the chunk's local dictionary; skipping the rehash
  /// here keeps the sequential merge phase off the profile.
  TermId EncodeHashed(const Term& term, uint64_t hash);

  TermId EncodeIri(std::string_view iri) { return Encode(Term::Iri(iri)); }
  TermId EncodeLiteral(std::string_view lex) {
    return Encode(Term::Literal(lex));
  }
  TermId EncodeBlank(std::string_view label) {
    return Encode(Term::Blank(label));
  }

  /// Returns the id of `term` or kInvalidTermId if it was never interned.
  TermId Lookup(const Term& term) const;

  /// Decodes an id; requires 1 <= id < size().
  const Term& Decode(TermId id) const {
    if (id <= base_terms_) return DecodeView(static_cast<uint32_t>(id));
    return terms_[id - base_terms_];
  }

  bool Contains(TermId id) const { return id >= 1 && id < size(); }

  /// Number of entries including the reserved id 0.
  size_t size() const { return base_terms_ + terms_.size(); }

  /// Ids <= base_terms() are view-backed; 0 for an owned dictionary.
  size_t base_terms() const { return base_terms_; }

  /// Minted-URI counter (see MintNodeUri); persisted in frozen images so a
  /// reopened store mints the same names the original process would have.
  uint64_t mint_counter() const { return mint_counter_; }

  /// Pre-sizes the term store and index for `num_terms` entries.
  void Reserve(size_t num_terms);

  /// Mints a fresh URI of the form urn:rdfsum:<tag>:<counter>; each call
  /// returns a distinct id. Used by the N and C representation functions.
  TermId MintNodeUri(std::string_view tag);

  /// True iff the term behind `id` is a minted summary-node URI.
  bool IsMinted(TermId id) const;

  /// Prefix shared by all minted URIs.
  static constexpr std::string_view kMintedPrefix = "urn:rdfsum:";

  /// The on-disk / in-memory slot hash of a term: seeded FNV-1a over
  /// kind + lexical + datatype + language with a murmur-style avalanche.
  /// Deterministic across processes — frozen images serialize slot tables
  /// keyed by it, so changing this function is a format break.
  static uint64_t HashTerm(const Term& term);

 private:
  static constexpr size_t kInitialSlots = 64;  // power of two

  /// One open-addressing slot: id 0 (kInvalidTermId) marks "empty". In view
  /// mode the overlay's slots hold *global* ids (> base_terms_).
  struct Slot {
    uint64_t hash = 0;
    TermId id = kInvalidTermId;
  };

  /// Index of the overlay slot holding `term` (hash `h`), or of the empty
  /// slot where it would be inserted. Requires a non-full table.
  size_t FindSlot(const Term& term, uint64_t h) const;

  /// Probes the view's on-disk slot table; kInvalidTermId when absent (or
  /// when there is no view).
  TermId ViewLookup(const Term& term, uint64_t h) const;

  /// Compares `term` against view record `id` piecewise, no allocation.
  bool ViewTermEquals(uint32_t id, const Term& term) const;

  /// Materializes (and caches) the Term behind view id `id`.
  const Term& DecodeView(uint32_t id) const;

  void GrowIfNeeded();
  void Rehash(size_t new_slot_count);

  std::vector<Term> terms_;
  std::vector<Slot> slots_;  // size is always a power of two
  uint64_t mint_counter_ = 0;

  // View mode (all empty/zero for an owned dictionary).
  DictionaryView view_;
  size_t base_terms_ = 0;  // == view_.num_terms
  mutable std::vector<std::unique_ptr<Term>> view_cache_;  // [0..base_terms_]
  mutable std::mutex view_cache_mu_;
};

}  // namespace rdfsum

#endif  // RDFSUM_RDF_DICTIONARY_H_
