#ifndef RDFSUM_RDF_DICTIONARY_H_
#define RDFSUM_RDF_DICTIONARY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "rdf/term.h"
#include "rdf/triple.h"

namespace rdfsum {

/// Bidirectional term <-> integer mapping (the paper's Postgres `dictionary`
/// table, §6). Ids are dense and start at 1; id 0 is reserved.
///
/// Encode/Lookup are allocation-free on the hot path: terms are hashed in
/// place (kind + lexical + datatype + language) against an open-addressing
/// index of ids into the term store, instead of keying a map on a freshly
/// built ToNTriples() string. Cached hashes make rehashing cheap.
///
/// The dictionary also mints fresh "summary node" URIs for the
/// representation functions N(.,.) and C(.) (Definition 11 onwards); minted
/// URIs use the urn:rdfsum: prefix so they can be recognized as anonymous
/// when comparing summaries up to isomorphism.
class Dictionary {
 public:
  Dictionary() {
    terms_.emplace_back();  // id 0 placeholder
    slots_.resize(kInitialSlots);
  }

  /// Interns `term`, returning its id (existing or fresh).
  TermId Encode(const Term& term);

  TermId EncodeIri(std::string_view iri) { return Encode(Term::Iri(iri)); }
  TermId EncodeLiteral(std::string_view lex) {
    return Encode(Term::Literal(lex));
  }
  TermId EncodeBlank(std::string_view label) {
    return Encode(Term::Blank(label));
  }

  /// Returns the id of `term` or kInvalidTermId if it was never interned.
  TermId Lookup(const Term& term) const;

  /// Decodes an id; requires 1 <= id < size().
  const Term& Decode(TermId id) const { return terms_[id]; }

  bool Contains(TermId id) const { return id >= 1 && id < terms_.size(); }

  /// Number of entries including the reserved id 0.
  size_t size() const { return terms_.size(); }

  /// Pre-sizes the term store and index for `num_terms` entries.
  void Reserve(size_t num_terms);

  /// Mints a fresh URI of the form urn:rdfsum:<tag>:<counter>; each call
  /// returns a distinct id. Used by the N and C representation functions.
  TermId MintNodeUri(std::string_view tag);

  /// True iff the term behind `id` is a minted summary-node URI.
  bool IsMinted(TermId id) const;

  /// Prefix shared by all minted URIs.
  static constexpr std::string_view kMintedPrefix = "urn:rdfsum:";

 private:
  static constexpr size_t kInitialSlots = 64;  // power of two

  /// One open-addressing slot: id 0 (kInvalidTermId) marks "empty".
  struct Slot {
    uint64_t hash = 0;
    TermId id = kInvalidTermId;
  };

  static uint64_t HashTerm(const Term& term);

  /// Index of the slot holding `term` (hash `h`), or of the empty slot where
  /// it would be inserted. Requires a non-full table.
  size_t FindSlot(const Term& term, uint64_t h) const;

  void GrowIfNeeded();
  void Rehash(size_t new_slot_count);

  std::vector<Term> terms_;
  std::vector<Slot> slots_;  // size is always a power of two
  uint64_t mint_counter_ = 0;
};

}  // namespace rdfsum

#endif  // RDFSUM_RDF_DICTIONARY_H_
