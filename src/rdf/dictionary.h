#ifndef RDFSUM_RDF_DICTIONARY_H_
#define RDFSUM_RDF_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "rdf/triple.h"

namespace rdfsum {

/// Bidirectional term <-> integer mapping (the paper's Postgres `dictionary`
/// table, §6). Ids are dense and start at 1; id 0 is reserved.
///
/// The dictionary also mints fresh "summary node" URIs for the
/// representation functions N(.,.) and C(.) (Definition 11 onwards); minted
/// URIs use the urn:rdfsum: prefix so they can be recognized as anonymous
/// when comparing summaries up to isomorphism.
class Dictionary {
 public:
  Dictionary() { terms_.emplace_back(); /* id 0 placeholder */ }

  /// Interns `term`, returning its id (existing or fresh).
  TermId Encode(const Term& term);

  TermId EncodeIri(std::string_view iri) { return Encode(Term::Iri(iri)); }
  TermId EncodeLiteral(std::string_view lex) {
    return Encode(Term::Literal(lex));
  }
  TermId EncodeBlank(std::string_view label) {
    return Encode(Term::Blank(label));
  }

  /// Returns the id of `term` or kInvalidTermId if it was never interned.
  TermId Lookup(const Term& term) const;

  /// Decodes an id; requires 1 <= id < size().
  const Term& Decode(TermId id) const { return terms_[id]; }

  bool Contains(TermId id) const { return id >= 1 && id < terms_.size(); }

  /// Number of entries including the reserved id 0.
  size_t size() const { return terms_.size(); }

  /// Mints a fresh URI of the form urn:rdfsum:<tag>:<counter>; each call
  /// returns a distinct id. Used by the N and C representation functions.
  TermId MintNodeUri(std::string_view tag);

  /// True iff the term behind `id` is a minted summary-node URI.
  bool IsMinted(TermId id) const;

  /// Prefix shared by all minted URIs.
  static constexpr std::string_view kMintedPrefix = "urn:rdfsum:";

 private:
  std::vector<Term> terms_;
  std::unordered_map<std::string, TermId> index_;  // keyed by ToNTriples()
  uint64_t mint_counter_ = 0;
};

}  // namespace rdfsum

#endif  // RDFSUM_RDF_DICTIONARY_H_
