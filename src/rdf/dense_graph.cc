#include "rdf/dense_graph.h"

#include <algorithm>
#include <unordered_map>

#include "rdf/graph.h"

namespace rdfsum {
namespace {

/// 64-bit mix for class-set content hashing (splitmix64 finalizer).
uint64_t Mix(uint64_t h) {
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

DenseGraph::DenseGraph(const Graph& g) {
  const size_t dict_size = g.dict().size();
  node_of_term_.assign(dict_size, kNone);
  prop_of_term_.assign(dict_size, kNone);

  auto intern_node = [&](TermId t) -> NodeId {
    NodeId& slot = node_of_term_[t];
    if (slot == kNone) {
      slot = static_cast<NodeId>(terms_.size());
      terms_.push_back(t);
    }
    return slot;
  };
  auto intern_prop = [&](TermId t) -> PropId {
    PropId& slot = prop_of_term_[t];
    if (slot == kNone) {
      slot = static_cast<PropId>(prop_terms_.size());
      prop_terms_.push_back(t);
      source_anchor_.push_back(kNone);
      target_anchor_.push_back(kNone);
    }
    return slot;
  };

  // Pass 1: canonical node + property numbering, encoded edges, anchors.
  edges_.reserve(g.data().size());
  for (const Triple& t : g.data()) {
    NodeId s = intern_node(t.s);
    NodeId o = intern_node(t.o);
    PropId p = intern_prop(t.p);
    if (source_anchor_[p] == kNone) source_anchor_[p] = s;
    if (target_anchor_[p] == kNone) target_anchor_[p] = o;
    edges_.push_back(Edge{s, p, o});
  }
  const uint32_t num_data_only =
      static_cast<uint32_t>(terms_.size());  // endpoints of data triples
  for (const Triple& t : g.types()) intern_node(t.s);
  const uint32_t n = num_nodes();
  has_data_.assign(n, 0);
  for (uint32_t i = 0; i < num_data_only; ++i) has_data_[i] = 1;

  // Pass 2: CSR adjacency via counting sort (graph order within a node).
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++out_offsets_[e.s + 1];
    ++in_offsets_[e.o + 1];
  }
  for (uint32_t i = 0; i < n; ++i) {
    out_offsets_[i + 1] += out_offsets_[i];
    in_offsets_[i + 1] += in_offsets_[i];
  }
  out_entries_.resize(edges_.size());
  in_entries_.resize(edges_.size());
  {
    std::vector<uint32_t> out_fill(out_offsets_.begin(),
                                   out_offsets_.end() - 1);
    std::vector<uint32_t> in_fill(in_offsets_.begin(), in_offsets_.end() - 1);
    for (const Edge& e : edges_) {
      out_entries_[out_fill[e.s]++] = Neighbor{e.p, e.o};
      in_entries_[in_fill[e.o]++] = Neighbor{e.p, e.s};
    }
  }

  // Pass 3: per-node class sets (CSR), sorted and de-duplicated.
  class_offsets_.assign(n + 1, 0);
  for (const Triple& t : g.types()) ++class_offsets_[node_of_term_[t.s] + 1];
  for (uint32_t i = 0; i < n; ++i) class_offsets_[i + 1] += class_offsets_[i];
  classes_.resize(g.types().size());
  {
    std::vector<uint32_t> fill(class_offsets_.begin(),
                               class_offsets_.end() - 1);
    for (const Triple& t : g.types()) {
      classes_[fill[node_of_term_[t.s]]++] = t.o;
    }
  }
  // A Graph is a set of triples, so (subject, class) pairs are already
  // unique; sorting each slice is all that's needed for a canonical set.
  for (uint32_t i = 0; i < n; ++i) {
    std::sort(classes_.begin() + class_offsets_[i],
              classes_.begin() + class_offsets_[i + 1]);
  }

  // Pass 4: dense class-set ids, assigned in canonical node order. Equal
  // sets are detected by content hash with explicit collision resolution
  // against a representative node per set.
  class_set_id_.assign(n, kNone);
  std::unordered_map<uint64_t, std::vector<uint32_t>> sets_by_hash;
  std::vector<NodeId> rep_of_set;
  for (uint32_t i = 0; i < n; ++i) {
    std::span<const TermId> set = ClassesOf(i);
    if (set.empty()) continue;
    uint64_t h = Mix(set.size());
    for (TermId c : set) h = Mix(h ^ c);
    std::vector<uint32_t>& candidates = sets_by_hash[h];
    uint32_t found = kNone;
    for (uint32_t sid : candidates) {
      std::span<const TermId> other = ClassesOf(rep_of_set[sid]);
      if (other.size() == set.size() &&
          std::equal(set.begin(), set.end(), other.begin())) {
        found = sid;
        break;
      }
    }
    if (found == kNone) {
      found = static_cast<uint32_t>(rep_of_set.size());
      rep_of_set.push_back(i);
      candidates.push_back(found);
    }
    class_set_id_[i] = found;
  }
  num_class_sets_ = static_cast<uint32_t>(rep_of_set.size());
}

DenseGraph::Raw DenseGraph::raw() const {
  Raw r;
  r.terms = terms_;
  r.node_of_term = node_of_term_;
  r.has_data = has_data_;
  r.prop_terms = prop_terms_;
  r.prop_of_term = prop_of_term_;
  r.edges = edges_;
  r.out_offsets = out_offsets_;
  r.out_entries = out_entries_;
  r.in_offsets = in_offsets_;
  r.in_entries = in_entries_;
  r.source_anchor = source_anchor_;
  r.target_anchor = target_anchor_;
  r.class_offsets = class_offsets_;
  r.classes = classes_;
  r.class_set_id = class_set_id_;
  r.num_class_sets = num_class_sets_;
  return r;
}

DenseGraph DenseGraph::FromRaw(const Raw& r) {
  DenseGraph g;
  g.terms_.assign(r.terms.begin(), r.terms.end());
  g.node_of_term_.assign(r.node_of_term.begin(), r.node_of_term.end());
  g.has_data_.assign(r.has_data.begin(), r.has_data.end());
  g.prop_terms_.assign(r.prop_terms.begin(), r.prop_terms.end());
  g.prop_of_term_.assign(r.prop_of_term.begin(), r.prop_of_term.end());
  g.edges_.assign(r.edges.begin(), r.edges.end());
  g.out_offsets_.assign(r.out_offsets.begin(), r.out_offsets.end());
  g.out_entries_.assign(r.out_entries.begin(), r.out_entries.end());
  g.in_offsets_.assign(r.in_offsets.begin(), r.in_offsets.end());
  g.in_entries_.assign(r.in_entries.begin(), r.in_entries.end());
  g.source_anchor_.assign(r.source_anchor.begin(), r.source_anchor.end());
  g.target_anchor_.assign(r.target_anchor.begin(), r.target_anchor.end());
  g.class_offsets_.assign(r.class_offsets.begin(), r.class_offsets.end());
  g.classes_.assign(r.classes.begin(), r.classes.end());
  g.class_set_id_.assign(r.class_set_id.begin(), r.class_set_id.end());
  g.num_class_sets_ = r.num_class_sets;
  return g;
}

}  // namespace rdfsum
