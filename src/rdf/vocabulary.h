#ifndef RDFSUM_RDF_VOCABULARY_H_
#define RDFSUM_RDF_VOCABULARY_H_

#include <string_view>

#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace rdfsum {

/// Well-known RDF / RDFS IRIs (Figure 1 of the paper).
namespace vocab {

inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kRdfsSubClassOf =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr std::string_view kRdfsSubPropertyOf =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
inline constexpr std::string_view kRdfsDomain =
    "http://www.w3.org/2000/01/rdf-schema#domain";
inline constexpr std::string_view kRdfsRange =
    "http://www.w3.org/2000/01/rdf-schema#range";
inline constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";
inline constexpr std::string_view kXsdDate =
    "http://www.w3.org/2001/XMLSchema#date";

}  // namespace vocab

/// Dictionary ids for the RDF/RDFS built-ins, interned once per dictionary.
///
/// Every Graph owns one of these so that triple routing (data vs. type vs.
/// schema component) is an integer comparison.
struct Vocabulary {
  TermId rdf_type = kInvalidTermId;
  TermId subclass = kInvalidTermId;
  TermId subproperty = kInvalidTermId;
  TermId domain = kInvalidTermId;
  TermId range = kInvalidTermId;

  Vocabulary() = default;
  explicit Vocabulary(Dictionary& dict);

  /// True iff `p` is one of the four RDFS constraint properties
  /// (≺sc, ≺sp, ←↩d, ↪→r).
  bool IsSchemaProperty(TermId p) const {
    return p == subclass || p == subproperty || p == domain || p == range;
  }

  bool IsType(TermId p) const { return p == rdf_type; }
};

}  // namespace rdfsum

#endif  // RDFSUM_RDF_VOCABULARY_H_
