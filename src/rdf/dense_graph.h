#ifndef RDFSUM_RDF_DENSE_GRAPH_H_
#define RDFSUM_RDF_DENSE_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "rdf/triple.h"

namespace rdfsum {

class Graph;

/// Immutable dense-ID view of a Graph's data and type components: the shared
/// substrate every summarization hot path runs on.
///
/// Built once per graph (see Graph::Dense() for the cached accessor), it
/// replaces the per-algorithm `unordered_map<TermId, ...>` indexing idiom
/// with flat arrays:
///
///  - **Canonical node numbering.** Data nodes get dense ids 0..n-1 in the
///    canonical first-encounter order used for partition class-id assignment
///    everywhere in summary/: data triples (subject, then object), triple by
///    triple, followed by type-triple subjects. Iterating node ids in
///    ascending order therefore *is* the canonical node walk.
///  - **Dense property numbering.** Data properties get ids 0..P-1 in
///    first-occurrence order over the data component.
///  - **Encoded edge list.** `data_edges()` is the data component with both
///    endpoints and the property replaced by dense ids, in graph order.
///  - **CSR adjacency.** Out-edges and in-edges per node as (property,
///    neighbor) pairs with offset arrays, in graph order within a node.
///  - **Per-property first-seen anchors.** The first subject (resp. object)
///    node of each property in graph order — the seed the weak summary's
///    union-find anchors to.
///  - **Type info.** Per-node sorted, de-duplicated class sets (CSR layout)
///    plus a dense "class set id" shared by nodes with equal class sets.
///
/// The view holds TermIds and dense ids only; it never touches term strings.
/// It is invalidated by any mutation of the underlying Graph (Graph::Dense()
/// rebuilds automatically; a standalone DenseGraph must not outlive the
/// graph state it was built from).
class DenseGraph {
 public:
  using NodeId = uint32_t;
  using PropId = uint32_t;
  /// Sentinel for "absent" node / property / class-set ids.
  static constexpr uint32_t kNone = 0xFFFFFFFFu;

  /// A data triple with all three positions densely renumbered.
  struct Edge {
    NodeId s;
    PropId p;
    NodeId o;
  };

  /// One CSR adjacency entry.
  struct Neighbor {
    PropId p;
    NodeId node;
  };

  explicit DenseGraph(const Graph& g);

  /// Flat-array view of the whole substrate — the serialization surface the
  /// frozen-image writer walks (rdf/frozen_image.h). Field order mirrors
  /// the private storage; spans borrow this DenseGraph.
  struct Raw {
    std::span<const TermId> terms;
    std::span<const NodeId> node_of_term;
    std::span<const uint8_t> has_data;
    std::span<const TermId> prop_terms;
    std::span<const PropId> prop_of_term;
    std::span<const Edge> edges;
    std::span<const uint32_t> out_offsets;
    std::span<const Neighbor> out_entries;
    std::span<const uint32_t> in_offsets;
    std::span<const Neighbor> in_entries;
    std::span<const NodeId> source_anchor;
    std::span<const NodeId> target_anchor;
    std::span<const uint32_t> class_offsets;
    std::span<const TermId> classes;
    std::span<const uint32_t> class_set_id;
    uint32_t num_class_sets = 0;
  };

  Raw raw() const;

  /// Rebuilds a DenseGraph by copying `r`'s arrays (bulk memcpys — no graph
  /// walk). The arrays must be internally consistent: this is the loader
  /// for image sections already bounds-validated by FrozenImage::Attach,
  /// not a public construction path.
  static DenseGraph FromRaw(const Raw& r);

  // ---- Nodes ----------------------------------------------------------
  uint32_t num_nodes() const { return static_cast<uint32_t>(terms_.size()); }
  /// TermId of dense node `i`.
  TermId term_of(NodeId i) const { return terms_[i]; }
  /// Dense id of `t`, or kNone if `t` is not a data node of the graph.
  NodeId node_of(TermId t) const {
    return t < node_of_term_.size() ? node_of_term_[t] : kNone;
  }
  /// True iff node `i` occurs as an endpoint of some data triple.
  bool HasData(NodeId i) const { return has_data_[i] != 0; }
  /// True iff node `i` is the subject of some type triple.
  bool IsTyped(NodeId i) const {
    return class_offsets_[i + 1] > class_offsets_[i];
  }

  // ---- Properties -----------------------------------------------------
  uint32_t num_properties() const {
    return static_cast<uint32_t>(prop_terms_.size());
  }
  TermId property_term(PropId p) const { return prop_terms_[p]; }
  /// Dense property id of `t`, or kNone if `t` is not a data property.
  PropId property_of(TermId t) const {
    return t < prop_of_term_.size() ? prop_of_term_[t] : kNone;
  }

  // ---- Edges ----------------------------------------------------------
  /// Data triples in graph order, fully renumbered.
  const std::vector<Edge>& data_edges() const { return edges_; }

  uint64_t num_data_edges() const { return edges_.size(); }

  /// Contiguous slice [begin, end) of data_edges() — the unit a parallel
  /// shard scans (see util::ShardRange for the canonical split).
  std::span<const Edge> EdgeRange(uint64_t begin, uint64_t end) const {
    return {edges_.data() + begin, edges_.data() + end};
  }

  std::span<const Neighbor> OutEdges(NodeId i) const {
    return {out_entries_.data() + out_offsets_[i],
            out_entries_.data() + out_offsets_[i + 1]};
  }
  std::span<const Neighbor> InEdges(NodeId i) const {
    return {in_entries_.data() + in_offsets_[i],
            in_entries_.data() + in_offsets_[i + 1]};
  }

  /// First subject (resp. object) node of property `p` in graph order.
  NodeId SourceAnchor(PropId p) const { return source_anchor_[p]; }
  NodeId TargetAnchor(PropId p) const { return target_anchor_[p]; }

  // ---- Types ----------------------------------------------------------
  /// Sorted, de-duplicated class TermIds of node `i` (empty if untyped).
  std::span<const TermId> ClassesOf(NodeId i) const {
    return {classes_.data() + class_offsets_[i],
            classes_.data() + class_offsets_[i + 1]};
  }
  /// Dense id of the class *set* of node `i` (equal sets share an id,
  /// assigned in canonical node order); kNone for untyped nodes.
  uint32_t ClassSetId(NodeId i) const { return class_set_id_[i]; }
  uint32_t num_class_sets() const { return num_class_sets_; }

 private:
  DenseGraph() = default;  // for FromRaw

  // Nodes, canonical order.
  std::vector<TermId> terms_;
  std::vector<NodeId> node_of_term_;  // indexed by TermId
  std::vector<uint8_t> has_data_;

  // Properties, first-occurrence order.
  std::vector<TermId> prop_terms_;
  std::vector<PropId> prop_of_term_;  // indexed by TermId

  // Data edges + CSR adjacency.
  std::vector<Edge> edges_;
  std::vector<uint32_t> out_offsets_, in_offsets_;
  std::vector<Neighbor> out_entries_, in_entries_;
  std::vector<NodeId> source_anchor_, target_anchor_;

  // Type component (CSR of sorted unique class sets).
  std::vector<uint32_t> class_offsets_;
  std::vector<TermId> classes_;
  std::vector<uint32_t> class_set_id_;
  uint32_t num_class_sets_ = 0;
};

}  // namespace rdfsum

#endif  // RDFSUM_RDF_DENSE_GRAPH_H_
