#ifndef RDFSUM_RDF_GRAPH_STATS_H_
#define RDFSUM_RDF_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "rdf/graph.h"

namespace rdfsum {

/// Size and cardinality measures from §2.1 of the paper, plus the node
/// classification used throughout (data / class / property nodes).
struct GraphStats {
  // |G|e and per-component edge counts.
  uint64_t num_edges = 0;
  uint64_t num_data_edges = 0;
  uint64_t num_type_edges = 0;
  uint64_t num_schema_edges = 0;

  // |G|n: number of nodes (distinct subjects and objects of triples).
  uint64_t num_nodes = 0;

  // Node classification (§2.1, graph-based representation):
  //  - data nodes: subjects/objects in D, plus subjects in T;
  //  - class nodes: objects of T triples;
  //  - property nodes: subjects/objects of ≺sp triples and subjects of
  //    ←↩d / ↪→r triples.
  uint64_t num_data_nodes = 0;
  uint64_t num_class_nodes = 0;
  uint64_t num_property_nodes = 0;

  // |D_G|0p: number of distinct data properties.
  uint64_t num_distinct_data_properties = 0;
  // |T_G|0o: number of distinct classes used in type triples.
  uint64_t num_distinct_classes_used = 0;
  // Distinct subjects / objects in the data component.
  uint64_t num_distinct_data_subjects = 0;
  uint64_t num_distinct_data_objects = 0;

  // Typed resources TR_G (subjects of type triples) and untyped resources
  // UN_G (data-triple endpoints with no type), §4.2.
  uint64_t num_typed_resources = 0;
  uint64_t num_untyped_resources = 0;

  std::string ToString() const;
};

/// Computes all measures in one pass over the graph.
GraphStats ComputeGraphStats(const Graph& g);

/// The set of data nodes of `g` (subjects/objects of D triples plus subjects
/// of T triples).
std::unordered_set<TermId> DataNodes(const Graph& g);

/// The set of class nodes (objects of T triples).
std::unordered_set<TermId> ClassNodes(const Graph& g);

/// Typed resources TR_G: subjects of type triples.
std::unordered_set<TermId> TypedResources(const Graph& g);

}  // namespace rdfsum

#endif  // RDFSUM_RDF_GRAPH_STATS_H_
