#include "gen/bsbm.h"

#include <cmath>
#include <string>
#include <vector>

#include "util/random.h"

namespace rdfsum::gen {
namespace {

constexpr const char* kNs = "http://bsbm.example.org/";

constexpr const char* kCountries[] = {
    "US", "DE", "FR", "GB", "JP", "CN", "RU", "ES", "IT", "NL",
    "AT", "CH", "SE", "NO", "DK", "FI", "PL", "CZ", "PT", "BE"};

struct Ids {
  // Classes.
  TermId product, producer, vendor, offer, review, person, feature;
  // Properties.
  TermId label, comment, product_feature, producer_prop, numeric[4],
      textual[2], product_property;
  TermId offer_product, offer_vendor, price, valid_from, valid_to,
      delivery_days;
  TermId review_for, reviewer, review_title, review_text, review_date,
      rating[4], rating_super;
  TermId name, mbox, country, homepage;
};

Ids MakeIds(Dictionary& d) {
  auto iri = [&](const std::string& local) {
    return d.EncodeIri(kNs + local);
  };
  Ids ids;
  ids.product = iri("Product");
  ids.producer = iri("Producer");
  ids.vendor = iri("Vendor");
  ids.offer = iri("Offer");
  ids.review = iri("Review");
  ids.person = iri("Person");
  ids.feature = iri("ProductFeature");
  ids.label = iri("label");
  ids.comment = iri("comment");
  ids.product_feature = iri("productFeature");
  ids.producer_prop = iri("producer");
  for (int i = 0; i < 4; ++i) {
    ids.numeric[i] = iri("productPropertyNumeric" + std::to_string(i + 1));
  }
  for (int i = 0; i < 2; ++i) {
    ids.textual[i] = iri("productPropertyTextual" + std::to_string(i + 1));
  }
  ids.product_property = iri("productProperty");
  ids.offer_product = iri("offerProduct");
  ids.offer_vendor = iri("offerVendor");
  ids.price = iri("price");
  ids.valid_from = iri("validFrom");
  ids.valid_to = iri("validTo");
  ids.delivery_days = iri("deliveryDays");
  ids.review_for = iri("reviewFor");
  ids.reviewer = iri("reviewer");
  ids.review_title = iri("reviewTitle");
  ids.review_text = iri("reviewText");
  ids.review_date = iri("reviewDate");
  for (int i = 0; i < 4; ++i) {
    ids.rating[i] = iri("rating" + std::to_string(i + 1));
  }
  ids.rating_super = iri("rating");
  ids.name = iri("name");
  ids.mbox = iri("mbox");
  ids.country = iri("country");
  ids.homepage = iri("homepage");
  return ids;
}

struct Sizes {
  uint64_t products;
  uint64_t product_types;  // nodes of the type tree (excluding the root)
  uint64_t producers;
  uint64_t features;
  uint64_t vendors;
  uint64_t persons;
  uint64_t offers;
  uint64_t reviews;
};

Sizes DeriveSizes(const BsbmOptions& o) {
  Sizes s;
  s.products = o.num_products;
  // The paper's BSBM runs show 100-1300 class nodes across 10M-100M triples;
  // 5*sqrt(P) reproduces that band at proportional scales (P = #products).
  s.product_types = std::max<uint64_t>(
      9, static_cast<uint64_t>(5.0 * std::sqrt(static_cast<double>(
                                         std::max<uint64_t>(1, s.products)))));
  s.producers = s.products / 20 + 1;
  s.features = s.products / 5 + 10;
  s.vendors = s.products / 50 + 2;
  s.persons = s.products / 10 + 5;
  s.offers = s.products * 2;
  s.reviews = s.products + s.products / 2;
  return s;
}

}  // namespace

uint64_t ApproxBsbmTriples(const BsbmOptions& options) {
  Sizes s = DeriveSizes(options);
  // products ~8.5 (2 types, label, producer, ~1.5 features, ~2 numeric,
  // ~0.6 textual), offers ~6.9, reviews ~7.2, entity tables small.
  return s.products * 8 + s.offers * 7 + s.reviews * 7 + s.producers * 4 +
         s.features * 2 + s.vendors * 4 + s.persons * 4 +
         (options.include_schema ? s.product_types + 20 : 0);
}

uint64_t BsbmProductsForTriples(uint64_t target_triples) {
  return std::max<uint64_t>(1, target_triples / 34);
}

Graph GenerateBsbm(const BsbmOptions& options) {
  Graph g;
  Dictionary& d = g.dict();
  const Vocabulary& v = g.vocab();
  // Bulk load: pre-size the dictionary index and triple set so the emit
  // loops below never rehash (roughly one fresh term per emitted triple).
  const uint64_t approx = ApproxBsbmTriples(options);
  d.Reserve(approx);
  g.Reserve(approx);
  Ids ids = MakeIds(d);
  Sizes sizes = DeriveSizes(options);
  Random rng(options.seed);

  auto iri = [&](const char* prefix, uint64_t i) {
    return d.EncodeIri(std::string(kNs) + prefix + std::to_string(i));
  };
  auto lit = [&](const std::string& s) { return d.EncodeLiteral(s); };
  auto int_lit = [&](uint64_t n) { return d.EncodeLiteral(std::to_string(n)); };

  // --- Product type tree (classes), breadth-first with branching 3; the
  // root is bsbm:Product itself. Leaves type products.
  std::vector<TermId> type_nodes;
  for (uint64_t i = 0; i < sizes.product_types; ++i) {
    TermId t = iri("ProductType", i);
    type_nodes.push_back(t);
    TermId parent = i == 0 ? ids.product : type_nodes[(i - 1) / 3];
    if (options.include_schema) g.Add({t, v.subclass, parent});
  }
  // Leaves: nodes without children.
  uint64_t first_leaf =
      sizes.product_types <= 1 ? 0 : (sizes.product_types - 2) / 3 + 1;
  std::vector<TermId> leaf_types(type_nodes.begin() + first_leaf,
                                 type_nodes.end());
  if (leaf_types.empty()) leaf_types.push_back(ids.product);

  // --- Schema: subproperties and domain/range constraints.
  if (options.include_schema) {
    for (int i = 0; i < 4; ++i) {
      g.Add({ids.rating[i], v.subproperty, ids.rating_super});
      g.Add({ids.numeric[i], v.subproperty, ids.product_property});
    }
    g.Add({ids.producer_prop, v.domain, ids.product});
    g.Add({ids.producer_prop, v.range, ids.producer});
    g.Add({ids.product_feature, v.domain, ids.product});
    g.Add({ids.product_feature, v.range, ids.feature});
    g.Add({ids.offer_product, v.domain, ids.offer});
    g.Add({ids.offer_product, v.range, ids.product});
    g.Add({ids.offer_vendor, v.domain, ids.offer});
    g.Add({ids.offer_vendor, v.range, ids.vendor});
    g.Add({ids.review_for, v.domain, ids.review});
    g.Add({ids.review_for, v.range, ids.product});
    g.Add({ids.reviewer, v.domain, ids.review});
    g.Add({ids.reviewer, v.range, ids.person});
  }

  // --- Entity tables.
  std::vector<TermId> producers, features, vendors, persons, products;
  for (uint64_t i = 0; i < sizes.producers; ++i) {
    TermId node = iri("producer/Producer", i);
    producers.push_back(node);
    g.Add({node, v.rdf_type, ids.producer});
    g.Add({node, ids.label, lit("Producer #" + std::to_string(i))});
    g.Add({node, ids.country,
           lit(kCountries[rng.Uniform(std::size(kCountries))])});
    g.Add({node, ids.homepage, iri("producer/site", i)});
  }
  for (uint64_t i = 0; i < sizes.features; ++i) {
    TermId node = iri("feature/Feature", i);
    features.push_back(node);
    g.Add({node, v.rdf_type, ids.feature});
    g.Add({node, ids.label, lit("Feature #" + std::to_string(i))});
  }
  for (uint64_t i = 0; i < sizes.vendors; ++i) {
    TermId node = iri("vendor/Vendor", i);
    vendors.push_back(node);
    g.Add({node, v.rdf_type, ids.vendor});
    g.Add({node, ids.label, lit("Vendor #" + std::to_string(i))});
    g.Add({node, ids.country,
           lit(kCountries[rng.Uniform(std::size(kCountries))])});
    g.Add({node, ids.homepage, iri("vendor/site", i)});
  }
  for (uint64_t i = 0; i < sizes.persons; ++i) {
    TermId node = iri("person/Person", i);
    persons.push_back(node);
    g.Add({node, v.rdf_type, ids.person});
    g.Add({node, ids.name, lit("Person " + std::to_string(i))});
    g.Add({node, ids.mbox, lit("person" + std::to_string(i) + "@mail.org")});
    g.Add({node, ids.country,
           lit(kCountries[rng.Uniform(std::size(kCountries))])});
  }

  // --- Products: type pair {Product, leaf}, producer, features, label,
  // comment, a heterogeneous subset of numeric/textual properties.
  for (uint64_t i = 0; i < sizes.products; ++i) {
    TermId node = iri("product/Product", i);
    products.push_back(node);
    g.Add({node, v.rdf_type, ids.product});
    TermId leaf = leaf_types[rng.Zipf(leaf_types.size(), 0.5)];
    g.Add({node, v.rdf_type, leaf});
    g.Add({node, ids.label, lit("Product #" + std::to_string(i))});
    g.Add({node, ids.producer_prop,
           producers[rng.Uniform(producers.size())]});
    uint64_t nfeat = 1 + rng.Uniform(2);
    for (uint64_t f = 0; f < nfeat; ++f) {
      g.Add({node, ids.product_feature,
             features[rng.Uniform(features.size())]});
    }
    for (int k = 0; k < 4; ++k) {
      if (rng.Bernoulli(0.5)) {
        g.Add({node, ids.numeric[k], int_lit(rng.Uniform(2000))});
      }
    }
    if (rng.Bernoulli(0.6)) {
      g.Add({node, ids.textual[0], lit("text-" + std::to_string(rng.Uniform(
                                              1u << 20)))});
    }
  }

  // --- Offers.
  for (uint64_t i = 0; i < sizes.offers; ++i) {
    TermId node = iri("offer/Offer", i);
    if (!rng.Bernoulli(options.untyped_offer_fraction)) {
      g.Add({node, v.rdf_type, ids.offer});
    }
    g.Add({node, ids.offer_product, products[rng.Uniform(products.size())]});
    g.Add({node, ids.offer_vendor, vendors[rng.Uniform(vendors.size())]});
    g.Add({node, ids.price, int_lit(1 + rng.Uniform(10000))});
    g.Add({node, ids.valid_from,
           lit("2015-" + std::to_string(1 + rng.Uniform(12)) + "-01")});
    g.Add({node, ids.valid_to,
           lit("2016-" + std::to_string(1 + rng.Uniform(12)) + "-01")});
    g.Add({node, ids.delivery_days, int_lit(1 + rng.Uniform(14))});
  }

  // --- Reviews: heterogeneous optional ratings.
  for (uint64_t i = 0; i < sizes.reviews; ++i) {
    TermId node = iri("review/Review", i);
    g.Add({node, v.rdf_type, ids.review});
    g.Add({node, ids.review_for, products[rng.Uniform(products.size())]});
    g.Add({node, ids.reviewer, persons[rng.Uniform(persons.size())]});
    g.Add({node, ids.review_title,
           lit("Review title " + std::to_string(i))});
    g.Add({node, ids.review_date,
           lit("2015-" + std::to_string(1 + rng.Uniform(12)) + "-" +
               std::to_string(1 + rng.Uniform(28)))});
    for (int k = 0; k < 4; ++k) {
      if (rng.Bernoulli(0.55)) {
        g.Add({node, ids.rating[k], int_lit(1 + rng.Uniform(10))});
      }
    }
  }

  return g;
}

}  // namespace rdfsum::gen
