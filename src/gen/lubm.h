#ifndef RDFSUM_GEN_LUBM_H_
#define RDFSUM_GEN_LUBM_H_

#include <cstdint>

#include "rdf/graph.h"

namespace rdfsum::gen {

/// Options for the LUBM-like generator (Lehigh University Benchmark shape) —
/// the "other popular RDF datasets" the paper reports on in [5]. Universities
/// contain departments, faculty, students, courses and publications, with a
/// deep subclass hierarchy and ≺sp/domain/range constraints, making it a
/// heavier reasoning workload than BSBM.
struct LubmOptions {
  uint64_t num_universities = 2;
  uint64_t seed = 7;
  bool include_schema = true;
  /// Fraction of publications emitted without a type (typed implicitly via
  /// the publicationAuthor domain constraint).
  double untyped_publication_fraction = 0.2;
};

/// Approximate triples per university (~900).
uint64_t ApproxLubmTriplesPerUniversity();

Graph GenerateLubm(const LubmOptions& options);

}  // namespace rdfsum::gen

#endif  // RDFSUM_GEN_LUBM_H_
