#ifndef RDFSUM_GEN_BSBM_H_
#define RDFSUM_GEN_BSBM_H_

#include <cstdint>

#include "rdf/graph.h"

namespace rdfsum::gen {

/// Options for the BSBM-like generator (the Berlin SPARQL Benchmark shape
/// [3], which the paper's Figures 11-13 are measured on). The generator is
/// deterministic for a given option set.
struct BsbmOptions {
  /// Scale factor: everything else is derived from the product count.
  /// Roughly 34 triples are emitted per product (see ApproxBsbmTriples).
  uint64_t num_products = 1000;
  uint64_t seed = 42;
  /// Emit the product-type subclass tree, ≺sp declarations and domain/range
  /// constraints (BSBM always has them; disable for schema-less ablations).
  bool include_schema = true;
  /// Fraction of offers emitted without an rdf:type triple — BSBM proper has
  /// none, but the paper's typed summaries only differ from W/S when some
  /// resources are untyped, and the domain/range constraints then type them
  /// implicitly (exactly the §4.2/§5.2 discussion).
  double untyped_offer_fraction = 0.1;
};

/// Approximate number of triples GenerateBsbm will produce for `options`.
uint64_t ApproxBsbmTriples(const BsbmOptions& options);

/// Number of products needed to reach ~`target_triples`.
uint64_t BsbmProductsForTriples(uint64_t target_triples);

/// Generates the dataset.
Graph GenerateBsbm(const BsbmOptions& options);

}  // namespace rdfsum::gen

#endif  // RDFSUM_GEN_BSBM_H_
