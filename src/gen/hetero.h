#ifndef RDFSUM_GEN_HETERO_H_
#define RDFSUM_GEN_HETERO_H_

#include <cstdint>

#include "rdf/graph.h"

namespace rdfsum::gen {

/// A random heterogeneous RDF graph generator used by the property-based
/// tests (representativeness, fixpoint, completeness sweeps) and ablations.
/// Always produces well-behaved graphs; every knob is deterministic in the
/// seed.
struct HeteroOptions {
  uint64_t num_nodes = 200;
  uint64_t num_properties = 12;
  uint64_t num_classes = 8;
  uint64_t seed = 1;
  /// Mean number of outgoing data edges per node (zipf-skewed property
  /// choice, uniform target choice).
  double mean_out_degree = 2.0;
  /// Probability that a node is typed; typed nodes get 1..max_types_per_node
  /// types.
  double type_probability = 0.5;
  uint32_t max_types_per_node = 2;
  /// Fraction of objects that are literals instead of resource nodes.
  double literal_fraction = 0.2;
  // Schema shape.
  uint32_t num_subclass_edges = 4;
  uint32_t num_subproperty_edges = 3;
  uint32_t num_domain_constraints = 2;
  uint32_t num_range_constraints = 2;
};

Graph GenerateHetero(const HeteroOptions& options);

}  // namespace rdfsum::gen

#endif  // RDFSUM_GEN_HETERO_H_
