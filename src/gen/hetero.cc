#include "gen/hetero.h"

#include <string>
#include <vector>

#include "util/random.h"

namespace rdfsum::gen {
namespace {

constexpr const char* kNs = "http://hetero.example.org/";

}  // namespace

Graph GenerateHetero(const HeteroOptions& options) {
  Graph g;
  Dictionary& d = g.dict();
  const Vocabulary& v = g.vocab();
  Random rng(options.seed);

  std::vector<TermId> nodes, props, classes;
  for (uint64_t i = 0; i < options.num_nodes; ++i) {
    nodes.push_back(d.EncodeIri(std::string(kNs) + "n" + std::to_string(i)));
  }
  for (uint64_t i = 0; i < options.num_properties; ++i) {
    props.push_back(d.EncodeIri(std::string(kNs) + "p" + std::to_string(i)));
  }
  for (uint64_t i = 0; i < options.num_classes; ++i) {
    classes.push_back(d.EncodeIri(std::string(kNs) + "C" + std::to_string(i)));
  }
  if (nodes.empty() || props.empty()) return g;

  // Schema first (subproperty edges must stay acyclic-ish; i -> j with
  // i < j guarantees a DAG over the dense property indexes).
  if (!classes.empty()) {
    for (uint32_t i = 0; i < options.num_subclass_edges; ++i) {
      uint64_t a = rng.Uniform(classes.size());
      uint64_t b = rng.Uniform(classes.size());
      if (a == b) continue;
      g.Add({classes[std::min(a, b)], v.subclass, classes[std::max(a, b)]});
    }
  }
  for (uint32_t i = 0; i < options.num_subproperty_edges; ++i) {
    uint64_t a = rng.Uniform(props.size());
    uint64_t b = rng.Uniform(props.size());
    if (a == b) continue;
    g.Add({props[std::min(a, b)], v.subproperty, props[std::max(a, b)]});
  }
  if (!classes.empty()) {
    for (uint32_t i = 0; i < options.num_domain_constraints; ++i) {
      g.Add({props[rng.Uniform(props.size())], v.domain,
             classes[rng.Uniform(classes.size())]});
    }
    for (uint32_t i = 0; i < options.num_range_constraints; ++i) {
      g.Add({props[rng.Uniform(props.size())], v.range,
             classes[rng.Uniform(classes.size())]});
    }
  }

  // Data edges.
  uint64_t num_edges = static_cast<uint64_t>(
      options.mean_out_degree * static_cast<double>(options.num_nodes));
  uint64_t literal_counter = 0;
  for (uint64_t e = 0; e < num_edges; ++e) {
    TermId s = nodes[rng.Uniform(nodes.size())];
    TermId p = props[rng.Zipf(props.size(), 0.8)];
    TermId o;
    if (rng.Bernoulli(options.literal_fraction)) {
      // A mix of shared and unique literals.
      if (rng.Bernoulli(0.5)) {
        o = d.EncodeLiteral("shared-" + std::to_string(rng.Uniform(10)));
      } else {
        o = d.EncodeLiteral("lit-" + std::to_string(literal_counter++));
      }
    } else {
      o = nodes[rng.Uniform(nodes.size())];
    }
    g.Add({s, p, o});
  }

  // Types.
  if (!classes.empty()) {
    for (TermId n : nodes) {
      if (!rng.Bernoulli(options.type_probability)) continue;
      uint32_t k = 1 + static_cast<uint32_t>(
                           rng.Uniform(options.max_types_per_node));
      for (uint32_t i = 0; i < k; ++i) {
        g.Add({n, v.rdf_type, classes[rng.Uniform(classes.size())]});
      }
    }
  }
  return g;
}

}  // namespace rdfsum::gen
