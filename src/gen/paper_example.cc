#include "gen/paper_example.h"

#include "rdf/vocabulary.h"

namespace rdfsum::gen {
namespace {

constexpr const char* kNs = "http://example.org/fig2/";

}  // namespace

Figure2Example BuildFigure2() {
  Figure2Example ex;
  Graph& g = ex.graph;
  Dictionary& d = g.dict();
  auto iri = [&](const char* local) {
    return d.EncodeIri(std::string(kNs) + local);
  };

  ex.r1 = iri("r1");
  ex.r2 = iri("r2");
  ex.r3 = iri("r3");
  ex.r4 = iri("r4");
  ex.r5 = iri("r5");
  ex.r6 = iri("r6");
  ex.a1 = iri("a1");
  ex.a2 = iri("a2");
  ex.t1 = iri("t1");
  ex.t2 = iri("t2");
  ex.t3 = iri("t3");
  ex.t4 = iri("t4");
  ex.e1 = iri("e1");
  ex.e2 = iri("e2");
  ex.c1 = iri("c1");
  ex.author = iri("author");
  ex.title = iri("title");
  ex.editor = iri("editor");
  ex.comment = iri("comment");
  ex.reviewed = iri("reviewed");
  ex.published = iri("published");
  ex.book = iri("Book");
  ex.journal = iri("Journal");
  ex.spec = iri("Spec");

  g.Add({ex.r1, ex.author, ex.a1});
  g.Add({ex.r1, ex.title, ex.t1});
  g.Add({ex.r2, ex.title, ex.t2});
  g.Add({ex.r2, ex.editor, ex.e1});
  g.Add({ex.r3, ex.editor, ex.e2});
  g.Add({ex.r3, ex.comment, ex.c1});
  g.Add({ex.r4, ex.author, ex.a2});
  g.Add({ex.r4, ex.title, ex.t3});
  g.Add({ex.r5, ex.title, ex.t4});
  g.Add({ex.r5, ex.editor, ex.e2});
  g.Add({ex.a1, ex.reviewed, ex.r4});
  g.Add({ex.e1, ex.published, ex.r4});

  const TermId rdf_type = g.vocab().rdf_type;
  g.Add({ex.r1, rdf_type, ex.book});
  g.Add({ex.r2, rdf_type, ex.journal});
  g.Add({ex.r5, rdf_type, ex.spec});
  g.Add({ex.r6, rdf_type, ex.journal});
  return ex;
}

BookExample BuildBookExample() {
  BookExample ex;
  Graph& g = ex.graph;
  Dictionary& d = g.dict();
  auto iri = [&](const char* local) {
    return d.EncodeIri(std::string("http://example.org/book/") + local);
  };

  ex.doi1 = iri("doi1");
  ex.b1 = d.EncodeBlank("b1");
  ex.book = iri("Book");
  ex.publication = iri("Publication");
  ex.person = iri("Person");
  ex.written_by = iri("writtenBy");
  ex.has_author = iri("hasAuthor");
  ex.has_title = iri("hasTitle");
  ex.has_name = iri("hasName");
  ex.published_in = iri("publishedIn");

  const Vocabulary& v = g.vocab();
  g.Add({ex.doi1, v.rdf_type, ex.book});
  g.Add({ex.doi1, ex.written_by, ex.b1});
  g.Add({ex.doi1, ex.has_title, d.EncodeLiteral("Le Port des Brumes")});
  g.Add({ex.b1, ex.has_name, d.EncodeLiteral("G. Simenon")});
  g.Add({ex.doi1, ex.published_in, d.EncodeLiteral("1932")});

  g.Add({ex.book, v.subclass, ex.publication});
  g.Add({ex.written_by, v.subproperty, ex.has_author});
  g.Add({ex.written_by, v.domain, ex.book});
  g.Add({ex.written_by, v.range, ex.person});
  return ex;
}

Graph BuildFigure5() {
  Graph g;
  Dictionary& d = g.dict();
  auto iri = [&](const char* local) {
    return d.EncodeIri(std::string("http://example.org/fig5/") + local);
  };
  TermId r1 = iri("r1"), r2 = iri("r2");
  TermId x = iri("x"), y1 = iri("y1"), y2 = iri("y2"), z = iri("z");
  TermId a1 = iri("a1"), b1 = iri("b1"), b2 = iri("b2"), b = iri("b");
  TermId c = iri("c");
  g.Add({r1, a1, y1});
  g.Add({r1, b1, x});
  g.Add({r2, b2, y2});
  g.Add({r2, c, z});
  g.Add({b1, g.vocab().subproperty, b});
  g.Add({b2, g.vocab().subproperty, b});
  return g;
}

Graph BuildFigure8() {
  Graph g;
  Dictionary& d = g.dict();
  auto iri = [&](const char* local) {
    return d.EncodeIri(std::string("http://example.org/fig8/") + local);
  };
  TermId r1 = iri("r1"), r2 = iri("r2");
  TermId x = iri("x"), y1 = iri("y1"), y2 = iri("y2");
  TermId a = iri("a"), b = iri("b"), c = iri("c");
  g.Add({r1, a, y1});
  g.Add({r1, b, x});
  g.Add({r2, b, y2});
  g.Add({a, g.vocab().domain, c});
  return g;
}

}  // namespace rdfsum::gen
