#ifndef RDFSUM_GEN_PAPER_EXAMPLE_H_
#define RDFSUM_GEN_PAPER_EXAMPLE_H_

#include "rdf/graph.h"

namespace rdfsum::gen {

/// The sample RDF graph of Figure 2, with every term id exposed so tests can
/// assert the paper's Table 1 and Figures 4/6/7/9 exactly.
///
/// Data edges: r1 -author-> a1, r1 -title-> t1, r2 -title-> t2,
/// r2 -editor-> e1, r3 -editor-> e2, r3 -comment-> c1, r4 -author-> a2,
/// r4 -title-> t3, r5 -title-> t4, r5 -editor-> e2, a1 -reviewed-> r4,
/// e1 -published-> r4. Types: r1 τ Book, r2 τ Journal, r5 τ Spec,
/// r6 τ Journal. No schema.
struct Figure2Example {
  Graph graph;
  TermId r1, r2, r3, r4, r5, r6;
  TermId a1, a2, t1, t2, t3, t4, e1, e2, c1;
  TermId author, title, editor, comment, reviewed, published;
  TermId book, journal, spec;
};

Figure2Example BuildFigure2();

/// The §2.1 book example: doi1 with its explicit triples and the four RDFS
/// constraints (books are publications; writtenBy ≺sp hasAuthor;
/// writtenBy ←↩d Book; writtenBy ↪→r Person).
struct BookExample {
  Graph graph;
  TermId doi1, b1;
  TermId book, publication, person;
  TermId written_by, has_author, has_title, has_name, published_in;
};

BookExample BuildBookExample();

/// Figure 5's graph, illustrating weak-summary completeness:
/// r1 -a1-> y1, r1 -b1-> x, r2 -b2-> y2, r2 -c-> z, with b1 ≺sp b and
/// b2 ≺sp b. Saturation bridges the two source cliques through b.
Graph BuildFigure5();

/// Figure 8's graph, the typed-weak non-completeness counterexample:
/// r1 -a-> y1, r1 -b-> x, r2 -b-> y2, with a ←↩d c. Saturation types r1 but
/// not r2, so TW(G∞) separates what TW(G) merged.
Graph BuildFigure8();

}  // namespace rdfsum::gen

#endif  // RDFSUM_GEN_PAPER_EXAMPLE_H_
