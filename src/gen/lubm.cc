#include "gen/lubm.h"

#include <string>
#include <vector>

#include "util/random.h"

namespace rdfsum::gen {
namespace {

constexpr const char* kNs = "http://lubm.example.org/";

}  // namespace

uint64_t ApproxLubmTriplesPerUniversity() { return 900; }

Graph GenerateLubm(const LubmOptions& options) {
  Graph g;
  Dictionary& d = g.dict();
  const Vocabulary& v = g.vocab();
  Random rng(options.seed);

  auto cls = [&](const char* local) {
    return d.EncodeIri(std::string(kNs) + local);
  };
  auto iri = [&](const std::string& local) {
    return d.EncodeIri(kNs + local);
  };
  auto lit = [&](const std::string& s) { return d.EncodeLiteral(s); };

  // Classes.
  TermId person = cls("Person"), employee = cls("Employee"),
         faculty_c = cls("Faculty"), professor = cls("Professor"),
         full_prof = cls("FullProfessor"), assoc_prof =
             cls("AssociateProfessor"),
         assist_prof = cls("AssistantProfessor"), student = cls("Student"),
         grad_student = cls("GraduateStudent"),
         undergrad = cls("UndergraduateStudent"),
         organization = cls("Organization"), university = cls("University"),
         department = cls("Department"), course = cls("Course"),
         publication = cls("Publication");

  // Properties.
  TermId works_for = iri("worksFor"), head_of = iri("headOf"),
         member_of = iri("memberOf"), advisor = iri("advisor"),
         takes_course = iri("takesCourse"), teacher_of = iri("teacherOf"),
         pub_author = iri("publicationAuthor"), name = iri("name"),
         email = iri("emailAddress"), research = iri("researchInterest"),
         sub_org = iri("subOrganizationOf");

  if (options.include_schema) {
    g.Add({full_prof, v.subclass, professor});
    g.Add({assoc_prof, v.subclass, professor});
    g.Add({assist_prof, v.subclass, professor});
    g.Add({professor, v.subclass, faculty_c});
    g.Add({faculty_c, v.subclass, employee});
    g.Add({employee, v.subclass, person});
    g.Add({grad_student, v.subclass, student});
    g.Add({undergrad, v.subclass, student});
    g.Add({student, v.subclass, person});
    g.Add({university, v.subclass, organization});
    g.Add({department, v.subclass, organization});
    g.Add({head_of, v.subproperty, works_for});
    g.Add({works_for, v.domain, employee});
    g.Add({works_for, v.range, organization});
    g.Add({member_of, v.range, organization});
    g.Add({advisor, v.range, professor});
    g.Add({teacher_of, v.domain, faculty_c});
    g.Add({teacher_of, v.range, course});
    g.Add({takes_course, v.domain, student});
    g.Add({pub_author, v.domain, publication});
    g.Add({pub_author, v.range, person});
  }

  const TermId prof_classes[3] = {full_prof, assoc_prof, assist_prof};
  uint64_t pub_counter = 0;

  for (uint64_t u = 0; u < options.num_universities; ++u) {
    std::string uni_tag = "univ" + std::to_string(u);
    TermId uni = iri(uni_tag);
    g.Add({uni, v.rdf_type, university});
    g.Add({uni, name, lit("University " + std::to_string(u))});

    uint64_t num_depts = 3 + rng.Uniform(5);
    for (uint64_t dep = 0; dep < num_depts; ++dep) {
      std::string dep_tag = uni_tag + "/dept" + std::to_string(dep);
      TermId dept = iri(dep_tag);
      g.Add({dept, v.rdf_type, department});
      g.Add({dept, sub_org, uni});
      g.Add({dept, name, lit("Department " + std::to_string(dep))});

      std::vector<TermId> dept_faculty;
      std::vector<TermId> dept_courses;
      uint64_t num_faculty = 7 + rng.Uniform(4);
      for (uint64_t f = 0; f < num_faculty; ++f) {
        TermId prof = iri(dep_tag + "/prof" + std::to_string(f));
        dept_faculty.push_back(prof);
        g.Add({prof, v.rdf_type, prof_classes[rng.Uniform(3)]});
        if (f == 0) {
          g.Add({prof, head_of, dept});
        } else {
          g.Add({prof, works_for, dept});
        }
        g.Add({prof, name, lit("Prof " + dep_tag + std::to_string(f))});
        g.Add({prof, email, lit("prof" + std::to_string(f) + "@" + uni_tag)});
        if (rng.Bernoulli(0.7)) {
          g.Add({prof, research,
                 lit("research area " + std::to_string(rng.Uniform(40)))});
        }
        for (int c = 0; c < 2; ++c) {
          TermId crs = iri(dep_tag + "/course" + std::to_string(f * 2 + c));
          dept_courses.push_back(crs);
          g.Add({crs, v.rdf_type, course});
          g.Add({crs, name, lit("Course " + std::to_string(f * 2 + c))});
          g.Add({prof, teacher_of, crs});
        }
        for (int pnum = 0; pnum < 2; ++pnum) {
          TermId pub = iri("pub" + std::to_string(pub_counter++));
          if (!rng.Bernoulli(options.untyped_publication_fraction)) {
            g.Add({pub, v.rdf_type, publication});
          }
          g.Add({pub, pub_author, prof});
          g.Add({pub, name, lit("Publication " + std::to_string(pub_counter))});
        }
      }

      uint64_t num_students = 20 + rng.Uniform(11);
      for (uint64_t s = 0; s < num_students; ++s) {
        TermId stu = iri(dep_tag + "/student" + std::to_string(s));
        bool grad = rng.Bernoulli(0.3);
        g.Add({stu, v.rdf_type, grad ? grad_student : undergrad});
        g.Add({stu, member_of, dept});
        g.Add({stu, name, lit("Student " + dep_tag + std::to_string(s))});
        uint64_t num_courses = 2 + rng.Uniform(3);
        for (uint64_t c = 0; c < num_courses; ++c) {
          g.Add({stu, takes_course,
                 dept_courses[rng.Uniform(dept_courses.size())]});
        }
        if (grad) {
          g.Add({stu, advisor,
                 dept_faculty[rng.Uniform(dept_faculty.size())]});
        }
      }
    }
  }
  return g;
}

}  // namespace rdfsum::gen
