#include "reasoner/schema_index.h"

#include <algorithm>
#include <deque>

namespace rdfsum::reasoner {

const std::vector<TermId> SchemaIndex::kEmpty{};

SchemaIndex::SchemaIndex(const Graph& g) {
  const Vocabulary& v = g.vocab();
  for (const Triple& t : g.schema()) {
    has_schema_ = true;
    if (t.p == v.subclass) {
      sc_[t.s].insert(t.o);
    } else if (t.p == v.subproperty) {
      sp_[t.s].insert(t.o);
    } else if (t.p == v.domain) {
      domain_[t.s].insert(t.o);
    } else if (t.p == v.range) {
      range_[t.s].insert(t.o);
    }
  }
  CloseTransitively(&sc_);
  CloseTransitively(&sp_);

  // Inherit domains/ranges along ≺sp: p ≺sp p', p' ←↩d c  ⊢  p ←↩d c.
  for (auto& [p, supers] : sp_) {
    for (TermId sup : supers) {
      auto dit = domain_.find(sup);
      if (dit != domain_.end()) {
        domain_[p].insert(dit->second.begin(), dit->second.end());
      }
      auto rit = range_.find(sup);
      if (rit != range_.end()) {
        range_[p].insert(rit->second.begin(), rit->second.end());
      }
    }
  }
  // Propagate domains/ranges up the class hierarchy:
  // p ←↩d c, c ≺sc c'  ⊢  p ←↩d c'.
  auto close_up = [&](std::unordered_map<TermId, std::unordered_set<TermId>>&
                          rel) {
    for (auto& [p, classes] : rel) {
      std::vector<TermId> base(classes.begin(), classes.end());
      for (TermId c : base) {
        auto it = sc_.find(c);
        if (it != sc_.end()) classes.insert(it->second.begin(), it->second.end());
      }
    }
  };
  close_up(domain_);
  close_up(range_);
}

void SchemaIndex::CloseTransitively(
    std::unordered_map<TermId, std::unordered_set<TermId>>* edges) {
  // BFS from each source over the (small) schema graph.
  for (auto& [src, direct] : *edges) {
    std::deque<TermId> frontier(direct.begin(), direct.end());
    std::unordered_set<TermId> seen = direct;
    while (!frontier.empty()) {
      TermId cur = frontier.front();
      frontier.pop_front();
      auto it = edges->find(cur);
      if (it == edges->end()) continue;
      for (TermId next : it->second) {
        if (next != src && seen.insert(next).second) frontier.push_back(next);
      }
    }
    direct = std::move(seen);
  }
}

const std::vector<TermId>& SchemaIndex::View(
    const std::unordered_map<TermId, std::unordered_set<TermId>>& rel,
    std::unordered_map<TermId, std::vector<TermId>>& cache, TermId key) const {
  auto rit = rel.find(key);
  if (rit == rel.end()) return kEmpty;
  auto cit = cache.find(key);
  if (cit != cache.end()) return cit->second;
  std::vector<TermId> v(rit->second.begin(), rit->second.end());
  std::sort(v.begin(), v.end());
  return cache.emplace(key, std::move(v)).first->second;
}

const std::vector<TermId>& SchemaIndex::SuperClasses(TermId c) const {
  return View(sc_, sc_view_, c);
}
const std::vector<TermId>& SchemaIndex::SuperProperties(TermId p) const {
  return View(sp_, sp_view_, p);
}
const std::vector<TermId>& SchemaIndex::Domains(TermId p) const {
  return View(domain_, domain_view_, p);
}
const std::vector<TermId>& SchemaIndex::Ranges(TermId p) const {
  return View(range_, range_view_, p);
}

std::vector<Triple> SchemaIndex::SaturatedSchemaTriples(
    const Vocabulary& vocab) const {
  std::vector<Triple> out;
  for (const auto& [s, sups] : sc_) {
    for (TermId o : sups) out.push_back(Triple{s, vocab.subclass, o});
  }
  for (const auto& [s, sups] : sp_) {
    for (TermId o : sups) out.push_back(Triple{s, vocab.subproperty, o});
  }
  for (const auto& [p, cs] : domain_) {
    for (TermId c : cs) out.push_back(Triple{p, vocab.domain, c});
  }
  for (const auto& [p, cs] : range_) {
    for (TermId c : cs) out.push_back(Triple{p, vocab.range, c});
  }
  return out;
}

}  // namespace rdfsum::reasoner
