#ifndef RDFSUM_REASONER_SATURATION_H_
#define RDFSUM_REASONER_SATURATION_H_

#include <cstdint>

#include "rdf/graph.h"

namespace rdfsum::reasoner {

/// Counters describing a saturation run.
struct SaturationStats {
  uint64_t input_triples = 0;
  uint64_t derived_data = 0;    // data triples added by ≺sp propagation
  uint64_t derived_types = 0;   // τ triples added by ←↩d / ↪→r / ≺sc
  uint64_t derived_schema = 0;  // schema triples added by schema closure
  uint64_t output_triples = 0;
};

/// Computes the saturation G∞ of `g` (§2.1): the fixpoint of the immediate
/// entailment rules for the four RDFS constraint properties.
///
/// Implementation: the SchemaIndex precomputes reflexive-transitive closures
/// and inherited domains/ranges, after which one pass suffices —
///   - every data triple s p o adds s p' o for all p' ⪰sp p,
///   - and s τ c / o τ c for all c in the (inherited, ≺sc-closed)
///     domains/ranges of p,
///   - every type triple s τ c adds s τ c' for all c' ⪰sc c,
///   - the schema component is replaced by its own closure.
/// The result contains the original triples (saturation is monotone) and is
/// unique, matching Definition of G∞.
Graph Saturate(const Graph& g, SaturationStats* stats = nullptr);

/// True iff `g` is saturated (Saturate(g) adds nothing).
bool IsSaturated(const Graph& g);

}  // namespace rdfsum::reasoner

#endif  // RDFSUM_REASONER_SATURATION_H_
