#include "reasoner/saturation.h"

#include "reasoner/schema_index.h"

namespace rdfsum::reasoner {

Graph Saturate(const Graph& g, SaturationStats* stats) {
  SchemaIndex schema(g);
  const Vocabulary& vocab = g.vocab();
  Graph out(g.dict_ptr());

  SaturationStats local;
  local.input_triples = g.NumTriples();

  // Insert all explicit triples first so the derived-counts below only
  // count genuinely implicit triples. Closures typically grow the graph by
  // a small factor; pre-sizing the triple set keeps the Add loops below
  // free of rehashing.
  out.Reserve(g.NumTriples() * 2);
  g.ForEachTriple([&](const Triple& t) { out.Add(t); });

  // Schema component: closure.
  for (const Triple& t : schema.SaturatedSchemaTriples(vocab)) {
    if (out.Add(t)) ++local.derived_schema;
  }

  // Data triples: ≺sp propagation + domain/range typing. The SchemaIndex
  // already inherited domains/ranges down ≺sp and up ≺sc, so applying
  // Domains(p)/Ranges(p) for the *original* property p covers the
  // generalized triples' constraints as well.
  for (const Triple& t : g.data()) {
    for (TermId p_sup : schema.SuperProperties(t.p)) {
      // Well-behaved graphs never declare a data property below τ or an
      // RDFS property, but guard anyway so routing stays consistent.
      if (out.Add(Triple{t.s, p_sup, t.o})) ++local.derived_data;
    }
    for (TermId c : schema.Domains(t.p)) {
      if (out.Add(Triple{t.s, vocab.rdf_type, c})) ++local.derived_types;
    }
    for (TermId c : schema.Ranges(t.p)) {
      if (out.Add(Triple{t.o, vocab.rdf_type, c})) ++local.derived_types;
    }
  }

  // Type triples: ≺sc propagation. Domain/range-derived types were added
  // with the ≺sc-closed class sets already, so one pass over explicit τ
  // triples completes the fixpoint.
  for (const Triple& t : g.types()) {
    for (TermId c_sup : schema.SuperClasses(t.o)) {
      if (out.Add(Triple{t.s, vocab.rdf_type, c_sup})) ++local.derived_types;
    }
  }

  local.output_triples = out.NumTriples();
  if (stats != nullptr) *stats = local;
  return out;
}

bool IsSaturated(const Graph& g) {
  SaturationStats stats;
  Graph sat = Saturate(g, &stats);
  return sat.NumTriples() == g.NumTriples();
}

}  // namespace rdfsum::reasoner
