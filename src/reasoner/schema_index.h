#ifndef RDFSUM_REASONER_SCHEMA_INDEX_H_
#define RDFSUM_REASONER_SCHEMA_INDEX_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/graph.h"

namespace rdfsum::reasoner {

/// In-memory index of the schema component S_G with reflexive-transitive
/// closures, the precomputation that makes saturation a single pass.
///
/// Closure contents follow [8] (Goasdoué et al., EDBT 2013), which the paper
/// relies on for RDF entailment with the four RDFS constraint properties:
///   - sc: c ≺sc c' transitively;
///   - sp: p ≺sp p' transitively;
///   - domain(p): classes d with p' ←↩d d for any p' ⪰sp p, closed under ≺sc;
///   - range(p): same for ↪→r.
class SchemaIndex {
 public:
  explicit SchemaIndex(const Graph& g);

  /// Strict superclasses of `c` (closure, without `c` itself).
  const std::vector<TermId>& SuperClasses(TermId c) const;

  /// Strict superproperties of `p` (closure, without `p` itself).
  const std::vector<TermId>& SuperProperties(TermId p) const;

  /// All classes implied as domain of `p` (inherited through ≺sp and closed
  /// under ≺sc).
  const std::vector<TermId>& Domains(TermId p) const;

  /// All classes implied as range of `p`.
  const std::vector<TermId>& Ranges(TermId p) const;

  bool HasSchema() const { return has_schema_; }

  /// The saturated schema component: the input schema triples plus all
  /// derived ones (transitive ≺sc/≺sp edges; ←↩d/↪→r propagated through
  /// ≺sc and inherited along ≺sp). Used to saturate S_G itself, so that the
  /// §2.1 example's implicit triple `writtenBy ←↩d Publication` appears.
  std::vector<Triple> SaturatedSchemaTriples(const Vocabulary& vocab) const;

 private:
  void CloseTransitively(
      std::unordered_map<TermId, std::unordered_set<TermId>>* edges);

  bool has_schema_ = false;
  std::unordered_map<TermId, std::unordered_set<TermId>> sc_;
  std::unordered_map<TermId, std::unordered_set<TermId>> sp_;
  std::unordered_map<TermId, std::unordered_set<TermId>> domain_;
  std::unordered_map<TermId, std::unordered_set<TermId>> range_;

  // Vector views (stable addresses for the accessors).
  mutable std::unordered_map<TermId, std::vector<TermId>> sc_view_;
  mutable std::unordered_map<TermId, std::vector<TermId>> sp_view_;
  mutable std::unordered_map<TermId, std::vector<TermId>> domain_view_;
  mutable std::unordered_map<TermId, std::vector<TermId>> range_view_;

  static const std::vector<TermId> kEmpty;

  const std::vector<TermId>& View(
      const std::unordered_map<TermId, std::unordered_set<TermId>>& rel,
      std::unordered_map<TermId, std::vector<TermId>>& cache, TermId key) const;
};

}  // namespace rdfsum::reasoner

#endif  // RDFSUM_REASONER_SCHEMA_INDEX_H_
