#ifndef RDFSUM_SUMMARY_SUMMARIZER_H_
#define RDFSUM_SUMMARY_SUMMARIZER_H_

#include "rdf/graph.h"
#include "summary/node_partition.h"
#include "summary/summary.h"
#include "util/statusor.h"

namespace rdfsum::summary {

/// Builds the summary of `g` of the requested kind (Definition 9 quotient
/// with the kind's equivalence relation):
///   SCH      — schema triples are copied unchanged;
///   TYP+DAT  — type and data triples are quotiented through the node
///              partition, class nodes staying fixed.
///
/// The summary shares `g`'s dictionary; summary nodes are freshly minted
/// urn:rdfsum: URIs (the dictionary is mutated through the shared pointer,
/// which is why it is held by shared_ptr rather than by value).
///
/// `options.num_threads` parallelizes the build end-to-end: the partition
/// phase for the kinds with sharded partition paths (W, BISIM) and the
/// quotient phase for every kind. The result is byte-identical to the
/// sequential build at every thread count; per-phase wall times land in
/// SummaryResult::stats.
///
/// The governed entry point: options.exec carries a deadline/cancellation
/// token the sharded phases poll; a tripped context returns kCancelled or
/// kDeadlineExceeded with all partial output discarded. Returns
/// kInvalidArgument only via QuotientByPartition's coverage contract.
StatusOr<SummaryResult> TrySummarize(const Graph& g, SummaryKind kind,
                                     const SummaryOptions& options = {});

/// Ungoverned convenience wrapper over TrySummarize for the overwhelmingly
/// common "summarize this graph, it cannot fail" call. Must not be called
/// with options.exec set — without an error channel, a governance failure
/// here aborts the process (a usage bug, not a runtime condition).
SummaryResult Summarize(const Graph& g, SummaryKind kind,
                        const SummaryOptions& options = {});

/// Builds the quotient of `g` through an explicit partition (exposed so
/// callers can experiment with custom equivalence relations; Summarize is
/// implemented on top of this). The partition must cover every data node and
/// type-triple subject of `g` (all ComputeXxxPartition results do); a node
/// it misses returns kInvalidArgument (the library does not throw).
///
/// With `options.num_threads` != 1 the summary edge set is built by sharding
/// the dense edge list: each shard classifies its contiguous range into
/// summary edges through per-shard dedup tables, and shards merge in
/// shard-index order, which reproduces the sequential first-occurrence
/// insertion order — and therefore minted node ids and serialized output —
/// byte for byte (see src/summary/README.md). options.exec makes both the
/// sequential and sharded paths cancellable (kCancelled/kDeadlineExceeded).
StatusOr<SummaryResult> QuotientByPartition(const Graph& g,
                                            const NodePartition& part,
                                            SummaryKind kind,
                                            const SummaryOptions& options = {});

/// Computes Summary(G∞) via the completeness shortcut of Propositions 5/8:
/// summarize G, saturate the (small) summary, summarize again. Only sound
/// for kWeak and kStrong (Propositions 7/10 show TW/TS lack this property);
/// other kinds fall back to saturating G first. Governed like TrySummarize
/// (saturation itself is not yet cancellable — the summarization phases
/// around it are).
StatusOr<SummaryResult> TrySummarizeSaturatedViaShortcut(
    const Graph& g, SummaryKind kind, const SummaryOptions& options = {});

/// Ungoverned wrapper; same contract as Summarize (no options.exec).
SummaryResult SummarizeSaturatedViaShortcut(const Graph& g, SummaryKind kind,
                                            const SummaryOptions& options = {});

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_SUMMARIZER_H_
