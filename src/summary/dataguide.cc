#include "summary/dataguide.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_set>

namespace rdfsum::summary {

StatusOr<DataguideResult> BuildStrongDataguide(
    const Graph& g, const DataguideOptions& options) {
  // Adjacency: node -> (property -> sorted targets).
  std::unordered_map<TermId, std::map<TermId, std::vector<TermId>>> adj;
  std::unordered_set<TermId> has_incoming;
  std::unordered_set<TermId> subjects;
  for (const Triple& t : g.data()) {
    adj[t.s][t.p].push_back(t.o);
    has_incoming.insert(t.o);
    subjects.insert(t.s);
  }
  for (auto& [node, edges] : adj) {
    for (auto& [p, targets] : edges) {
      std::sort(targets.begin(), targets.end());
      targets.erase(std::unique(targets.begin(), targets.end()),
                    targets.end());
    }
  }

  // Root target set: nodes without incoming data edges; if none (fully
  // cyclic), every subject.
  std::vector<TermId> roots;
  for (TermId s : subjects) {
    if (!has_incoming.count(s)) roots.push_back(s);
  }
  if (roots.empty()) roots.assign(subjects.begin(), subjects.end());
  std::sort(roots.begin(), roots.end());

  DataguideResult out;
  out.graph = Graph(g.dict_ptr());
  Dictionary& dict = out.graph.dict();

  // Powerset construction: state = sorted set of graph nodes.
  std::map<std::vector<TermId>, TermId> state_uri;
  std::deque<const std::vector<TermId>*> queue;
  auto intern_state = [&](std::vector<TermId> nodes) -> TermId {
    auto it = state_uri.find(nodes);
    if (it != state_uri.end()) return it->second;
    TermId uri = dict.MintNodeUri("node:dg");
    auto [sit, inserted] = state_uri.emplace(std::move(nodes), uri);
    queue.push_back(&sit->first);
    if (options.record_extents) out.extents.emplace(uri, sit->first);
    return uri;
  };

  out.root = intern_state(std::move(roots));
  while (!queue.empty()) {
    if (state_uri.size() > options.max_states) {
      return Status::NotSupported(
          "dataguide exceeded max_states=" +
          std::to_string(options.max_states) +
          " (powerset blow-up; see §8 of the paper)");
    }
    const std::vector<TermId>* nodes = queue.front();
    queue.pop_front();
    TermId from = state_uri.at(*nodes);
    // Union the outgoing edges of every node in the state, per property.
    std::map<TermId, std::set<TermId>> transitions;
    for (TermId n : *nodes) {
      auto it = adj.find(n);
      if (it == adj.end()) continue;
      for (const auto& [p, targets] : it->second) {
        transitions[p].insert(targets.begin(), targets.end());
      }
    }
    for (const auto& [p, target_set] : transitions) {
      std::vector<TermId> target(target_set.begin(), target_set.end());
      TermId to = intern_state(std::move(target));
      if (out.graph.Add(Triple{from, p, to})) ++out.num_edges;
      // Interning may have grown `state_uri`; `nodes` stays valid because
      // std::map never invalidates existing element addresses.
    }
  }
  out.num_states = state_uri.size();
  return out;
}

}  // namespace rdfsum::summary
