#include "summary/reference_partition.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/graph_stats.h"
#include "summary/union_find.h"

// This file intentionally preserves the pre-substrate implementations,
// including their hash-map-per-endpoint indexing idiom. Do not "optimize"
// it: its only job is to define the canonical partition semantics the
// DenseGraph-based implementations must reproduce exactly.

namespace rdfsum::summary {
namespace {

template <typename Fn>
void ForEachDataNodeInOrder(const Graph& g, Fn&& fn) {
  for (const Triple& t : g.data()) {
    fn(t.s);
    fn(t.o);
  }
  for (const Triple& t : g.types()) fn(t.s);
}

struct NodeIndex {
  std::unordered_map<TermId, uint32_t> index_of;
  std::vector<TermId> nodes;

  explicit NodeIndex(const Graph& g) {
    ForEachDataNodeInOrder(g, [&](TermId n) {
      if (index_of.emplace(n, static_cast<uint32_t>(nodes.size())).second) {
        nodes.push_back(n);
      }
    });
  }
};

NodePartition Finalize(const Graph& g,
                       const std::unordered_map<TermId, uint32_t>& raw) {
  NodePartition out;
  std::unordered_map<uint32_t, uint32_t> remap;
  ForEachDataNodeInOrder(g, [&](TermId n) {
    if (out.class_of.count(n)) return;
    uint32_t raw_class = raw.at(n);
    auto [it, inserted] =
        remap.emplace(raw_class, static_cast<uint32_t>(remap.size()));
    out.class_of.emplace(n, it->second);
  });
  out.num_classes = static_cast<uint32_t>(remap.size());
  return out;
}

std::unordered_map<TermId, std::vector<TermId>> ClassSets(const Graph& g) {
  std::unordered_map<TermId, std::vector<TermId>> out;
  for (const Triple& t : g.types()) out[t.s].push_back(t.o);
  for (auto& [node, classes] : out) {
    std::sort(classes.begin(), classes.end());
    classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  }
  return out;
}

constexpr uint32_t kUnassigned = 0xFFFFFFFFu;

/// Which endpoints of a data triple contribute to clique membership;
/// mirrors summary::CliqueScope without depending on the production header.
enum class RefScope { kAll, kUntypedEndpoints, kUntypedDataGraph };

/// Old SideBuilder-based clique computation, reduced to the per-node clique
/// assignment the reference partitions need.
struct RefCliques {
  std::unordered_map<TermId, uint32_t> source_clique_of_node;
  std::unordered_map<TermId, uint32_t> target_clique_of_node;

  uint32_t SourceCliqueOf(TermId node) const {
    auto it = source_clique_of_node.find(node);
    return it == source_clique_of_node.end() ? 0 : it->second;
  }
  uint32_t TargetCliqueOf(TermId node) const {
    auto it = target_clique_of_node.find(node);
    return it == target_clique_of_node.end() ? 0 : it->second;
  }
};

class RefSideBuilder {
 public:
  RefSideBuilder(std::vector<TermId>& properties,
                 std::unordered_map<TermId, uint32_t>& property_index)
      : properties_(properties), property_index_(property_index) {}

  uint32_t PropIndex(TermId p) {
    auto [it, inserted] =
        property_index_.emplace(p, static_cast<uint32_t>(properties_.size()));
    if (inserted) {
      properties_.push_back(p);
      uf_.Add();
      in_scope_.push_back(false);
    }
    while (uf_.size() < properties_.size()) {
      uf_.Add();
      in_scope_.push_back(false);
    }
    return it->second;
  }

  void Observe(TermId node, TermId p) {
    uint32_t pi = PropIndex(p);
    in_scope_[pi] = true;
    auto [it, inserted] = first_prop_of_node_.emplace(node, pi);
    if (!inserted) uf_.Union(pi, it->second);
  }

  void Finalize(std::unordered_map<TermId, uint32_t>* clique_of_node) {
    while (uf_.size() < properties_.size()) {
      uf_.Add();
      in_scope_.push_back(false);
    }
    std::vector<uint32_t> clique_of_property(properties_.size(), 0);
    std::unordered_map<uint32_t, uint32_t> root_to_clique;
    for (uint32_t i = 0; i < properties_.size(); ++i) {
      if (!in_scope_[i]) continue;
      uint32_t root = uf_.Find(i);
      auto [it, inserted] = root_to_clique.emplace(
          root, static_cast<uint32_t>(root_to_clique.size() + 1));
      clique_of_property[i] = it->second;
    }
    for (const auto& [node, pi] : first_prop_of_node_) {
      (*clique_of_node)[node] = clique_of_property[pi];
    }
  }

 private:
  std::vector<TermId>& properties_;
  std::unordered_map<TermId, uint32_t>& property_index_;
  UnionFind uf_;
  std::vector<bool> in_scope_;
  std::unordered_map<TermId, uint32_t> first_prop_of_node_;
};

RefCliques ComputeRefCliques(const Graph& g, RefScope scope,
                             const std::unordered_set<TermId>* typed_resources) {
  std::unordered_set<TermId> typed_local;
  if (scope != RefScope::kAll && typed_resources == nullptr) {
    typed_local = TypedResources(g);
    typed_resources = &typed_local;
  }
  auto is_untyped = [&](TermId n) {
    return typed_resources == nullptr || typed_resources->count(n) == 0;
  };

  RefCliques out;
  std::vector<TermId> properties;
  std::unordered_map<TermId, uint32_t> property_index;
  RefSideBuilder source(properties, property_index);
  RefSideBuilder target(properties, property_index);

  for (const Triple& t : g.data()) {
    bool s_in_scope = true;
    bool o_in_scope = true;
    switch (scope) {
      case RefScope::kAll:
        break;
      case RefScope::kUntypedEndpoints:
        s_in_scope = is_untyped(t.s);
        o_in_scope = is_untyped(t.o);
        break;
      case RefScope::kUntypedDataGraph: {
        bool both = is_untyped(t.s) && is_untyped(t.o);
        s_in_scope = both;
        o_in_scope = both;
        break;
      }
    }
    if (s_in_scope) source.Observe(t.s, t.p);
    if (o_in_scope) target.Observe(t.o, t.p);
  }

  source.Finalize(&out.source_clique_of_node);
  target.Finalize(&out.target_clique_of_node);
  return out;
}

template <typename AssignUntyped>
NodePartition TypedPartition(const Graph& g, AssignUntyped&& assign_untyped) {
  auto class_sets = ClassSets(g);
  std::map<std::vector<TermId>, uint32_t> set_class;
  std::unordered_map<TermId, uint32_t> raw;
  uint32_t next_typed = 0;
  constexpr uint32_t kUntypedBase = 0x80000000u;
  ForEachDataNodeInOrder(g, [&](TermId n) {
    if (raw.count(n)) return;
    auto it = class_sets.find(n);
    if (it != class_sets.end()) {
      auto [sit, inserted] = set_class.emplace(it->second, kUnassigned);
      if (inserted) sit->second = next_typed++;
      raw.emplace(n, sit->second);
    } else {
      raw.emplace(n, kUntypedBase + assign_untyped(n));
    }
  });
  return Finalize(g, raw);
}

}  // namespace

NodePartition ReferenceWeakPartition(const Graph& g) {
  NodeIndex idx(g);
  UnionFind uf(static_cast<uint32_t>(idx.nodes.size()));
  std::unordered_map<TermId, uint32_t> source_anchor;  // property -> node idx
  std::unordered_map<TermId, uint32_t> target_anchor;
  for (const Triple& t : g.data()) {
    uint32_t si = idx.index_of.at(t.s);
    uint32_t oi = idx.index_of.at(t.o);
    auto [sit, s_new] = source_anchor.emplace(t.p, si);
    if (!s_new) uf.Union(si, sit->second);
    auto [tit, t_new] = target_anchor.emplace(t.p, oi);
    if (!t_new) uf.Union(oi, tit->second);
  }
  std::unordered_set<TermId> in_data;
  for (const Triple& t : g.data()) {
    in_data.insert(t.s);
    in_data.insert(t.o);
  }
  uint32_t ntau_raw = uf.size();
  std::unordered_map<TermId, uint32_t> raw;
  ForEachDataNodeInOrder(g, [&](TermId n) {
    if (raw.count(n)) return;
    if (in_data.count(n)) {
      raw.emplace(n, uf.Find(idx.index_of.at(n)));
    } else {
      raw.emplace(n, ntau_raw);
    }
  });
  return Finalize(g, raw);
}

NodePartition ReferenceStrongPartition(const Graph& g) {
  RefCliques cliques = ComputeRefCliques(g, RefScope::kAll, nullptr);
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> pair_class;
  std::unordered_map<TermId, uint32_t> raw;
  ForEachDataNodeInOrder(g, [&](TermId n) {
    if (raw.count(n)) return;
    std::pair<uint32_t, uint32_t> key{cliques.SourceCliqueOf(n),
                                      cliques.TargetCliqueOf(n)};
    auto [it, inserted] =
        pair_class.emplace(key, static_cast<uint32_t>(pair_class.size()));
    raw.emplace(n, it->second);
  });
  return Finalize(g, raw);
}

NodePartition ReferenceTypePartition(const Graph& g) {
  auto class_sets = ClassSets(g);
  std::map<std::vector<TermId>, uint32_t> set_class;
  std::unordered_map<TermId, uint32_t> raw;
  uint32_t next = 0;
  ForEachDataNodeInOrder(g, [&](TermId n) {
    if (raw.count(n)) return;
    auto it = class_sets.find(n);
    if (it == class_sets.end()) {
      raw.emplace(n, next++);  // untyped: fresh class per node (C(∅))
    } else {
      auto [sit, inserted] = set_class.emplace(it->second, kUnassigned);
      if (inserted) sit->second = next++;
      raw.emplace(n, sit->second);
    }
  });
  return Finalize(g, raw);
}

NodePartition ReferenceTypedWeakPartition(const Graph& g,
                                          TypedSummaryMode mode) {
  std::unordered_set<TermId> typed = TypedResources(g);
  auto is_untyped = [&](TermId n) { return typed.count(n) == 0; };

  NodeIndex idx(g);
  UnionFind uf(static_cast<uint32_t>(idx.nodes.size()));
  std::unordered_map<TermId, uint32_t> source_anchor;
  std::unordered_map<TermId, uint32_t> target_anchor;
  std::unordered_set<TermId> covered;
  for (const Triple& t : g.data()) {
    bool s_ok, o_ok;
    if (mode == TypedSummaryMode::kPerPropertyProjection) {
      s_ok = is_untyped(t.s);
      o_ok = is_untyped(t.o);
    } else {
      bool both = is_untyped(t.s) && is_untyped(t.o);
      s_ok = both;
      o_ok = both;
    }
    if (s_ok) {
      uint32_t si = idx.index_of.at(t.s);
      covered.insert(t.s);
      auto [it, fresh] = source_anchor.emplace(t.p, si);
      if (!fresh) uf.Union(si, it->second);
    }
    if (o_ok) {
      uint32_t oi = idx.index_of.at(t.o);
      covered.insert(t.o);
      auto [it, fresh] = target_anchor.emplace(t.p, oi);
      if (!fresh) uf.Union(oi, it->second);
    }
  }
  uint32_t ntau_raw = uf.size();
  return TypedPartition(g, [&](TermId n) -> uint32_t {
    if (covered.count(n)) return uf.Find(idx.index_of.at(n));
    return ntau_raw;
  });
}

NodePartition ReferenceBisimulationPartition(const Graph& g, uint32_t depth,
                                             bool use_types) {
  NodeIndex idx(g);
  const uint32_t n = static_cast<uint32_t>(idx.nodes.size());

  std::vector<uint64_t> color(n, 0x9E3779B97F4A7C15ULL);
  if (use_types) {
    auto class_sets = ClassSets(g);
    for (uint32_t i = 0; i < n; ++i) {
      auto it = class_sets.find(idx.nodes[i]);
      if (it == class_sets.end()) continue;
      uint64_t h = 0x12345;
      for (TermId c : it->second) {
        h ^= c + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      }
      color[i] = h;
    }
  }

  struct Adj {
    bool out;
    TermId p;
    uint32_t other;
  };
  std::vector<std::vector<Adj>> adj(n);
  for (const Triple& t : g.data()) {
    uint32_t si = idx.index_of.at(t.s);
    uint32_t oi = idx.index_of.at(t.o);
    adj[si].push_back({true, t.p, oi});
    adj[oi].push_back({false, t.p, si});
  }

  for (uint32_t round = 0; round < depth; ++round) {
    std::vector<uint64_t> next(n);
    for (uint32_t i = 0; i < n; ++i) {
      std::vector<std::tuple<int, TermId, uint64_t>> sig;
      sig.reserve(adj[i].size());
      for (const Adj& a : adj[i]) {
        sig.emplace_back(a.out ? 1 : 0, a.p, color[a.other]);
      }
      std::sort(sig.begin(), sig.end());
      sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
      uint64_t h = color[i] * 0xBF58476D1CE4E5B9ULL + 0x94D049BB133111EBULL;
      for (const auto& [dir, p, c] : sig) {
        h ^= (static_cast<uint64_t>(dir) * 0x2545F4914F6CDD1DULL + p) +
             0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
        h ^= c + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      }
      next[i] = h;
    }
    color = std::move(next);
  }

  std::unordered_map<TermId, uint32_t> raw;
  std::unordered_map<uint64_t, uint32_t> color_class;
  for (uint32_t i = 0; i < n; ++i) {
    auto [it, inserted] = color_class.emplace(
        color[i], static_cast<uint32_t>(color_class.size()));
    raw.emplace(idx.nodes[i], it->second);
  }
  return Finalize(g, raw);
}

NodePartition ReferenceTypedStrongPartition(const Graph& g,
                                            TypedSummaryMode mode) {
  std::unordered_set<TermId> typed = TypedResources(g);
  RefScope scope = mode == TypedSummaryMode::kPerPropertyProjection
                       ? RefScope::kUntypedEndpoints
                       : RefScope::kUntypedDataGraph;
  RefCliques cliques = ComputeRefCliques(g, scope, &typed);
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> pair_class;
  return TypedPartition(g, [&](TermId n) -> uint32_t {
    std::pair<uint32_t, uint32_t> key{cliques.SourceCliqueOf(n),
                                      cliques.TargetCliqueOf(n)};
    auto [it, inserted] =
        pair_class.emplace(key, static_cast<uint32_t>(pair_class.size()));
    return it->second;
  });
}

}  // namespace rdfsum::summary
