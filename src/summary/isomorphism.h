#ifndef RDFSUM_SUMMARY_ISOMORPHISM_H_
#define RDFSUM_SUMMARY_ISOMORPHISM_H_

#include "rdf/graph.h"

namespace rdfsum::summary {

/// Decides whether two summaries are the same graph up to renaming of their
/// minted (urn:rdfsum:) nodes.
///
/// All non-minted terms (class URIs, properties, schema nodes, any surviving
/// input URIs/literals) are compared by value — the bijection must fix them —
/// while minted summary nodes may be re-matched freely. This is the right
/// equality for the paper's propositions: two runs of a summarizer differ
/// only in the URIs the representation function N(·,·) happens to mint.
///
/// The graphs may use different dictionaries. Complexity is exponential in
/// the worst case (graph isomorphism) but color refinement makes it linear
/// on every summary shape the algorithms produce.
bool AreSummariesIsomorphic(const Graph& a, const Graph& b);

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_ISOMORPHISM_H_
