#include "summary/parallel.h"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "summary/node_partition.h"
#include "summary/summarizer.h"
#include "summary/union_find.h"
#include "util/timer.h"

namespace rdfsum::summary {
namespace {

struct ShardResult {
  // property -> first subject/object observed in this shard
  std::unordered_map<TermId, TermId> src_anchor;
  std::unordered_map<TermId, TermId> tgt_anchor;
  // (node, node) pairs that must be unified
  std::vector<std::pair<TermId, TermId>> unions;
};

void ProcessShard(const std::vector<Triple>& data, size_t begin, size_t end,
                  ShardResult* out) {
  for (size_t i = begin; i < end; ++i) {
    const Triple& t = data[i];
    auto [sit, s_new] = out->src_anchor.emplace(t.p, t.s);
    if (!s_new && sit->second != t.s) out->unions.emplace_back(t.s, sit->second);
    auto [tit, t_new] = out->tgt_anchor.emplace(t.p, t.o);
    if (!t_new && tit->second != t.o) out->unions.emplace_back(t.o, tit->second);
  }
}

}  // namespace

SummaryResult ParallelWeakSummarize(const Graph& g,
                                    const ParallelWeakOptions& options) {
  Timer timer;
  uint32_t threads = options.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::vector<Triple>& data = g.data();
  threads = std::max<uint32_t>(
      1, std::min<uint64_t>(threads, data.empty() ? 1 : data.size()));

  // ---- Phase A: parallel shard scans.
  std::vector<ShardResult> shards(threads);
  {
    std::vector<std::thread> workers;
    size_t chunk = (data.size() + threads - 1) / threads;
    for (uint32_t i = 0; i < threads; ++i) {
      size_t begin = std::min<size_t>(i * chunk, data.size());
      size_t end = std::min<size_t>(begin + chunk, data.size());
      workers.emplace_back(ProcessShard, std::cref(data), begin, end,
                           &shards[i]);
    }
    for (auto& w : workers) w.join();
  }

  // ---- Phase B: sequential union-find over all edges.
  std::unordered_map<TermId, uint32_t> index_of;
  std::vector<TermId> nodes;
  UnionFind uf;
  auto idx = [&](TermId n) {
    auto [it, inserted] =
        index_of.emplace(n, static_cast<uint32_t>(nodes.size()));
    if (inserted) {
      nodes.push_back(n);
      uf.Add();
    }
    return it->second;
  };
  // Register all data endpoints in canonical (graph) order so class ids come
  // out identical to the batch partition.
  for (const Triple& t : data) {
    idx(t.s);
    idx(t.o);
  }
  for (const ShardResult& shard : shards) {
    for (const auto& [a, b] : shard.unions) uf.Union(idx(a), idx(b));
  }
  // Cross-shard: all shard anchors of one property belong together.
  std::unordered_map<TermId, uint32_t> global_src, global_tgt;
  for (const ShardResult& shard : shards) {
    for (const auto& [p, anchor] : shard.src_anchor) {
      auto [it, inserted] = global_src.emplace(p, idx(anchor));
      if (!inserted) uf.Union(it->second, idx(anchor));
    }
    for (const auto& [p, anchor] : shard.tgt_anchor) {
      auto [it, inserted] = global_tgt.emplace(p, idx(anchor));
      if (!inserted) uf.Union(it->second, idx(anchor));
    }
  }

  // ---- Phase C: canonical partition + quotient (same as the batch path).
  NodePartition part;
  std::unordered_map<uint32_t, uint32_t> remap;
  std::unordered_set<TermId> in_data(index_of.size());
  auto assign = [&](TermId n, uint32_t raw) {
    auto [it, inserted] =
        remap.emplace(raw, static_cast<uint32_t>(remap.size()));
    part.class_of.emplace(n, it->second);
  };
  for (const Triple& t : data) {
    for (TermId n : {t.s, t.o}) {
      if (in_data.insert(n).second) assign(n, uf.Find(index_of.at(n)));
    }
  }
  // Typed-only resources -> a single Nτ class.
  constexpr uint32_t kNTauRaw = 0xFFFFFFFFu;
  for (const Triple& t : g.types()) {
    if (!in_data.count(t.s) && !part.class_of.count(t.s)) {
      assign(t.s, kNTauRaw);
    }
  }
  part.num_classes = static_cast<uint32_t>(remap.size());

  SummaryOptions sum_options;
  sum_options.record_members = options.record_members;
  SummaryResult out =
      QuotientByPartition(g, part, SummaryKind::kWeak, sum_options);
  out.stats.build_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace rdfsum::summary
