#include "summary/parallel.h"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rdf/dense_graph.h"
#include "summary/node_partition.h"
#include "summary/summarizer.h"
#include "summary/union_find.h"
#include "util/timer.h"

namespace rdfsum::summary {
namespace {

struct ShardResult {
  // property -> first subject/object observed in this shard
  std::unordered_map<TermId, TermId> src_anchor;
  std::unordered_map<TermId, TermId> tgt_anchor;
  // (node, node) pairs that must be unified
  std::vector<std::pair<TermId, TermId>> unions;
};

void ProcessShard(const std::vector<Triple>& data, size_t begin, size_t end,
                  ShardResult* out) {
  for (size_t i = begin; i < end; ++i) {
    const Triple& t = data[i];
    auto [sit, s_new] = out->src_anchor.emplace(t.p, t.s);
    if (!s_new && sit->second != t.s) out->unions.emplace_back(t.s, sit->second);
    auto [tit, t_new] = out->tgt_anchor.emplace(t.p, t.o);
    if (!t_new && tit->second != t.o) out->unions.emplace_back(t.o, tit->second);
  }
}

}  // namespace

SummaryResult ParallelWeakSummarize(const Graph& g,
                                    const ParallelWeakOptions& options) {
  Timer timer;
  uint32_t threads = options.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::vector<Triple>& data = g.data();
  threads = std::max<uint32_t>(
      1, std::min<uint64_t>(threads, data.empty() ? 1 : data.size()));

  // ---- Phase A: parallel shard scans.
  std::vector<ShardResult> shards(threads);
  {
    std::vector<std::thread> workers;
    size_t chunk = (data.size() + threads - 1) / threads;
    for (uint32_t i = 0; i < threads; ++i) {
      size_t begin = std::min<size_t>(i * chunk, data.size());
      size_t end = std::min<size_t>(begin + chunk, data.size());
      workers.emplace_back(ProcessShard, std::cref(data), begin, end,
                           &shards[i]);
    }
    for (auto& w : workers) w.join();
  }

  // ---- Phase B: sequential union-find over the dense substrate. The
  // substrate's canonical node numbering replaces the per-call index map;
  // shard-local TermId anchors are resolved through node_of().
  const DenseGraph& dg = g.Dense();
  const uint32_t n = dg.num_nodes();
  UnionFind uf(n);
  for (const ShardResult& shard : shards) {
    for (const auto& [a, b] : shard.unions) {
      uf.Union(dg.node_of(a), dg.node_of(b));
    }
  }
  // Cross-shard: all shard anchors of one property belong together.
  std::vector<uint32_t> global_src(dg.num_properties(), DenseGraph::kNone);
  std::vector<uint32_t> global_tgt(dg.num_properties(), DenseGraph::kNone);
  for (const ShardResult& shard : shards) {
    for (const auto& [p, anchor] : shard.src_anchor) {
      uint32_t pid = dg.property_of(p);
      uint32_t node = dg.node_of(anchor);
      if (global_src[pid] == DenseGraph::kNone) {
        global_src[pid] = node;
      } else {
        uf.Union(global_src[pid], node);
      }
    }
    for (const auto& [p, anchor] : shard.tgt_anchor) {
      uint32_t pid = dg.property_of(p);
      uint32_t node = dg.node_of(anchor);
      if (global_tgt[pid] == DenseGraph::kNone) {
        global_tgt[pid] = node;
      } else {
        uf.Union(global_tgt[pid], node);
      }
    }
  }

  // ---- Phase C: canonical partition + quotient — the same class-id
  // assembly as the batch path, so class ids come out identical.
  NodePartition part = WeakPartitionFromUnionFind(dg, uf);

  SummaryOptions sum_options;
  sum_options.record_members = options.record_members;
  SummaryResult out =
      QuotientByPartition(g, part, SummaryKind::kWeak, sum_options);
  out.stats.build_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace rdfsum::summary
