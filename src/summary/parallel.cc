#include "summary/parallel.h"

#include <vector>

#include "rdf/dense_graph.h"
#include "summary/node_partition.h"
#include "summary/summarizer.h"
#include "summary/union_find.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace rdfsum::summary {
namespace {

constexpr uint32_t kNone = DenseGraph::kNone;

}  // namespace

NodePartition ComputeParallelWeakPartition(const Graph& g,
                                           uint32_t num_threads,
                                           util::ExecContext* exec) {
  // The substrate is built (or fetched from cache) before any thread
  // spawns; workers only ever read it.
  const DenseGraph& dg = g.Dense();
  const uint32_t n = dg.num_nodes();
  const uint32_t num_props = dg.num_properties();
  const uint32_t threads =
      util::ResolveThreadCount(num_threads, dg.num_data_edges());

  AtomicUnionFind uf(n);

  // ---- Phase A: sharded scan of the dense edge list. Flat anchor arrays
  // indexed by dense property id replace the old per-shard hash maps; the
  // first occurrence of a property in a shard claims the anchor for free,
  // every repeat hooks into the shared lock-free union-find.
  std::vector<std::vector<uint32_t>> shard_src(threads);
  std::vector<std::vector<uint32_t>> shard_tgt(threads);
  util::ParallelForRanges(
      threads, dg.num_data_edges(),
      [&](uint32_t shard, uint64_t begin, uint64_t end) {
        std::vector<uint32_t>& src = shard_src[shard];
        std::vector<uint32_t>& tgt = shard_tgt[shard];
        src.assign(num_props, kNone);
        tgt.assign(num_props, kNone);
        // Cancelled workers stop mid-range and fall through to the join;
        // the half-built union-find is discarded below.
        util::CancellableChunks(exec, begin, end, [&](uint64_t cb,
                                                      uint64_t ce) {
          for (const DenseGraph::Edge& e : dg.EdgeRange(cb, ce)) {
            if (src[e.p] == kNone) {
              src[e.p] = e.s;
            } else {
              uf.Union(e.s, src[e.p]);
            }
            if (tgt[e.p] == kNone) {
              tgt[e.p] = e.o;
            } else {
              uf.Union(e.o, tgt[e.p]);
            }
          }
        });
      });
  if (exec != nullptr && !exec->Check().ok()) return NodePartition{};

  // ---- Phase B: cross-shard unification — every shard anchor joins the
  // substrate's global first-seen anchor of its property. threads × P
  // unions; the merge never touches node_of().
  for (uint32_t shard = 0; shard < threads; ++shard) {
    for (uint32_t p = 0; p < num_props; ++p) {
      if (shard_src[shard][p] != kNone) {
        uf.Union(shard_src[shard][p], dg.SourceAnchor(p));
      }
      if (shard_tgt[shard][p] != kNone) {
        uf.Union(shard_tgt[shard][p], dg.TargetAnchor(p));
      }
    }
  }

  // ---- Phase C: parallel compress — resolve every node to its final root
  // (the structure is frozen now, so Find results are deterministic).
  std::vector<uint32_t> root(n);
  util::ParallelForRanges(
      util::ResolveThreadCount(num_threads, n), n,
      [&](uint32_t, uint64_t begin, uint64_t end) {
        util::CancellableChunks(exec, begin, end,
                                [&](uint64_t cb, uint64_t ce) {
                                  for (uint64_t i = cb; i < ce; ++i) {
                                    root[i] =
                                        uf.Find(static_cast<uint32_t>(i));
                                  }
                                });
      });
  if (exec != nullptr && !exec->Check().ok()) return NodePartition{};

  // ---- Phase D: canonical class numbering, shared with the batch path.
  return WeakPartitionFromRoots(dg, root);
}

SummaryResult ParallelWeakSummarize(const Graph& g,
                                    const ParallelWeakOptions& options) {
  Timer timer;
  NodePartition part = ComputeParallelWeakPartition(g, options.num_threads);
  double partition_seconds = timer.ElapsedSeconds();
  SummaryOptions sum_options;
  sum_options.record_members = options.record_members;
  sum_options.num_threads = options.num_threads;
  // Ungoverned with a complete partition: cannot fail.
  SummaryResult out =
      QuotientByPartition(g, part, SummaryKind::kWeak, sum_options).value();
  out.stats.partition_seconds = partition_seconds;
  out.stats.build_seconds = timer.ElapsedSeconds();
  return out;
}

SummaryResult ParallelBisimulationSummarize(
    const Graph& g, const ParallelBisimulationOptions& options) {
  Timer timer;
  NodePartition part = ComputeBisimulationPartition(
      g, options.depth, options.use_types, options.direction,
      options.num_threads);
  double partition_seconds = timer.ElapsedSeconds();
  SummaryOptions sum_options;
  sum_options.record_members = options.record_members;
  sum_options.num_threads = options.num_threads;
  sum_options.bisimulation_depth = options.depth;
  sum_options.bisimulation_uses_types = options.use_types;
  sum_options.bisimulation_direction = options.direction;
  // Ungoverned with a complete partition: cannot fail.
  SummaryResult out =
      QuotientByPartition(g, part, SummaryKind::kBisimulation, sum_options)
          .value();
  out.stats.partition_seconds = partition_seconds;
  out.stats.build_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace rdfsum::summary
