#ifndef RDFSUM_SUMMARY_PARALLEL_H_
#define RDFSUM_SUMMARY_PARALLEL_H_

#include <cstdint>

#include "rdf/graph.h"
#include "summary/summary.h"

namespace rdfsum::summary {

/// Options for the multi-threaded weak summarizer.
struct ParallelWeakOptions {
  /// 0 = std::thread::hardware_concurrency().
  uint32_t num_threads = 0;
  bool record_members = false;
};

/// Shared-memory parallel weak summarization — the paper's §9 future-work
/// direction ("improving scalability by leveraging a massively parallel
/// platform"), realized with threads instead of Spark:
///
///   phase A (parallel)  : each thread scans a shard of the data triples and
///                         emits shard-local per-property anchors plus
///                         (node, anchor) union edges;
///   phase B (sequential): one union-find pass over all shard edges, plus
///                         cross-shard anchor unification per property;
///   phase C (sequential): canonical class numbering and quotient
///                         construction, identical to the batch path.
///
/// The result equals Summarize(g, SummaryKind::kWeak) exactly (same
/// partition, not merely isomorphic), because weak equivalence is the
/// union-find closure of "shares a property occurrence", which is
/// shard-decomposable.
SummaryResult ParallelWeakSummarize(const Graph& g,
                                    const ParallelWeakOptions& options = {});

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_PARALLEL_H_
