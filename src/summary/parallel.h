#ifndef RDFSUM_SUMMARY_PARALLEL_H_
#define RDFSUM_SUMMARY_PARALLEL_H_

#include <cstdint>

#include "rdf/graph.h"
#include "summary/node_partition.h"
#include "summary/summary.h"

namespace rdfsum::summary {

/// Options for the multi-threaded weak summarizer.
struct ParallelWeakOptions {
  /// 0 = std::thread::hardware_concurrency().
  uint32_t num_threads = 0;
  bool record_members = false;
};

/// Shared-memory parallel weak summarization — the paper's §9 future-work
/// direction ("improving scalability by leveraging a massively parallel
/// platform"), realized with threads instead of Spark, running natively on
/// the DenseGraph substrate:
///
///   phase A (parallel)  : each shard scans a contiguous range of the dense
///                         edge list with flat per-shard anchor arrays
///                         indexed by dense property id (no hashing), and
///                         hooks repeat endpoints into one shared
///                         lock-free union-find;
///   phase B (sequential): every shard anchor joins the substrate's global
///                         first-seen anchor of its property (threads × P
///                         unions — no node_of() lookups anywhere);
///   phase C (parallel)  : a sharded compress pass resolves every node to
///                         its final root;
///   phase D (sequential): canonical class numbering, identical to the batch
///                         path;
///   phase E (parallel)  : quotient construction — shards classify edge
///                         ranges into summary edges with private dedup
///                         tables, merged in shard-index order (see
///                         QuotientByPartition with
///                         SummaryOptions::num_threads).
///
/// The result equals Summarize(g, SummaryKind::kWeak) exactly (same
/// partition and class ids, not merely isomorphic), because weak
/// equivalence is the union-find closure of "shares a property occurrence",
/// which is shard-decomposable, and the closure is independent of the order
/// unions are applied in.
SummaryResult ParallelWeakSummarize(const Graph& g,
                                    const ParallelWeakOptions& options = {});

/// The parallel weak partition alone (no quotient construction):
/// byte-identical to ComputeWeakPartition(g) at every thread count. `exec`
/// (optional) makes the sharded phases cancellable: workers fall through to
/// their join barrier and a tripped context returns an empty partition the
/// caller must discard after consulting exec->Check().
NodePartition ComputeParallelWeakPartition(const Graph& g,
                                           uint32_t num_threads = 0,
                                           util::ExecContext* exec = nullptr);

/// Options for the multi-threaded bisimulation baseline (all refinement
/// directions: forward, backward, fb).
struct ParallelBisimulationOptions {
  /// 0 = std::thread::hardware_concurrency().
  uint32_t num_threads = 0;
  /// Refinement rounds (k of the k-bounded bisimulation).
  uint32_t depth = 2;
  /// Seed the colors with the nodes' class sets.
  bool use_types = true;
  BisimulationDirection direction = BisimulationDirection::kForwardBackward;
  bool record_members = false;
};

/// Parallel k-bounded bisimulation summarization: refinement rounds are
/// sharded over dense node-id ranges (per-shard signature hashing with a
/// join barrier per round — see ComputeBisimulationPartition), then the
/// canonical numbering and quotient run exactly as in the sequential path.
/// The result equals Summarize(g, SummaryKind::kBisimulation) with the same
/// depth/use_types/direction, at every thread count.
SummaryResult ParallelBisimulationSummarize(
    const Graph& g, const ParallelBisimulationOptions& options = {});

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_PARALLEL_H_
