#include "summary/summary.h"

#include <sstream>

#include "rdf/graph_stats.h"

namespace rdfsum::summary {

const char* SummaryKindName(SummaryKind kind) {
  switch (kind) {
    case SummaryKind::kWeak:
      return "W";
    case SummaryKind::kStrong:
      return "S";
    case SummaryKind::kTypedWeak:
      return "TW";
    case SummaryKind::kTypedStrong:
      return "TS";
    case SummaryKind::kTypeBased:
      return "T";
    case SummaryKind::kBisimulation:
      return "BISIM";
  }
  return "?";
}

SummaryStats ComputeSummaryStats(const Graph& summary, double build_seconds) {
  GraphStats gs = ComputeGraphStats(summary);
  SummaryStats st;
  st.num_data_nodes = gs.num_data_nodes;
  st.num_class_nodes = gs.num_class_nodes;
  st.num_all_nodes = gs.num_nodes;
  st.num_data_edges = gs.num_data_edges;
  st.num_type_edges = gs.num_type_edges;
  st.num_schema_edges = gs.num_schema_edges;
  st.num_all_edges = gs.num_edges;
  st.build_seconds = build_seconds;
  return st;
}

std::string SummaryStats::ToString() const {
  std::ostringstream os;
  os << "data nodes=" << num_data_nodes << ", class nodes=" << num_class_nodes
     << ", all nodes=" << num_all_nodes << ", data edges=" << num_data_edges
     << ", type edges=" << num_type_edges << ", all edges=" << num_all_edges
     << ", build=" << build_seconds << "s (partition=" << partition_seconds
     << "s, quotient=" << quotient_seconds << "s)";
  return os.str();
}

}  // namespace rdfsum::summary
