#ifndef RDFSUM_SUMMARY_CARDINALITY_H_
#define RDFSUM_SUMMARY_CARDINALITY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "query/bgp.h"
#include "rdf/graph.h"
#include "store/triple_table.h"
#include "summary/summary.h"

namespace rdfsum::summary {

/// One estimate: the expected number of embeddings of a BGP body in the
/// summarized graph, derived purely from the summary.
struct CardinalityEstimate {
  double estimate = 0.0;
  /// True when an enumeration budget was exhausted; the estimate is then a
  /// partial (lower) sum over the summary embeddings visited so far, or —
  /// when the budget died before any embedding completed — the per-pattern
  /// product upper bound. Either way, estimate == 0 still implies provably
  /// empty: the 0 verdict is only ever returned on a completed enumeration
  /// or an unmatchable pattern.
  bool truncated = false;
};

struct CardinalityEstimatorOptions {
  /// Cap on summary-level embeddings enumerated per estimate; keeps the
  /// estimator cheap even for adversarial patterns (e.g. all-variable
  /// patterns on a bisimulation summary whose size approaches the graph).
  uint64_t max_summary_embeddings = 1u << 16;
  /// Cap on summary triples visited per estimate — the backstop for
  /// enumerations that scan heavily but rarely complete an embedding
  /// (huge fan-out joined against an almost-never-matching pattern),
  /// which the embedding cap alone would never trip.
  uint64_t max_summary_probes = 1u << 18;
};

/// Estimates BGP result cardinalities from a quotient summary, following
/// Stefanoni et al. ("Estimating the Cardinality of Conjunctive Queries over
/// RDF Data Using Graph Summarisation", PAPERS.md): every triple pattern is
/// mapped to the summary edges it can embed into, each summary edge carries
/// the number of data triples it represents (its multiplicity), and join
/// fan-out is discounted by the extent size of the summary node a shared
/// variable lands on — the uniformity assumption within an equivalence
/// class.
///
/// Soundness for the planner (Proposition 1 tie-in): by representativeness,
/// every embedding of an RBGP query into G factors through an embedding into
/// the summary. Hence if *no* summary embedding exists the true cardinality
/// is exactly 0, and if one exists the true cardinality is >= 1 — which is
/// why Estimate() clamps any non-empty sum to at least 1. The estimate is a
/// heuristic in between, never a wrong emptiness verdict.
///
/// The estimator is self-contained: it copies the representation map and
/// builds its own index over the summary graph, so it stays valid after the
/// SummaryResult it was built from is destroyed (the dictionary is kept
/// alive via shared_ptr).
class CardinalityEstimator {
 public:
  /// Builds the estimator for `g` from `summary`, which must be a summary
  /// *of g* (its node_map keys g's data nodes). Cost: one pass over g.
  CardinalityEstimator(const Graph& g, const SummaryResult& summary,
                       const CardinalityEstimatorOptions& options = {});

  /// Estimated number of embeddings of the whole BGP body.
  CardinalityEstimate EstimatePatterns(
      const std::vector<query::TriplePatternQ>& patterns) const;
  CardinalityEstimate Estimate(const query::BgpQuery& q) const {
    return EstimatePatterns(q.triples);
  }

  /// Upper bound on the matches of one pattern alone: the summed
  /// multiplicity of every summary edge it maps onto. Exact when only the
  /// property is bound (multiplicities partition the predicate's triples).
  double EstimatePatternCount(const query::TriplePatternQ& pattern) const;

  /// Number of data nodes represented by summary node `n` (1 for class,
  /// schema and literal-only nodes).
  uint64_t ExtentSize(TermId summary_node) const;

  SummaryKind kind() const { return kind_; }

 private:
  struct Slot {
    bool is_var = false;
    uint32_t var = 0;
    TermId constant = kInvalidTermId;  // already mapped into summary space
    /// True when the constant is a data node that was folded into a summary
    /// class: matching it selects one member out of the class's extent, so
    /// the pattern's multiplicity is discounted by 1/extent.
    bool mapped_constant = false;
    bool impossible = false;
  };
  struct Pattern {
    Slot s, p, o;
  };
  struct Compiled {
    std::vector<Pattern> patterns;
    uint32_t num_vars = 0;
    /// occurrences[v]: number of pattern positions variable v fills.
    std::vector<uint32_t> occurrences;
    bool impossible = false;
  };

  Compiled Compile(const std::vector<query::TriplePatternQ>& patterns) const;
  double Multiplicity(const Triple& summary_triple) const;

  std::shared_ptr<Dictionary> dict_;  // shared with graph and summary
  SummaryKind kind_;
  CardinalityEstimatorOptions options_;
  store::TripleTable summary_table_;
  /// Data/type triples of G per summary edge; schema edges have mult 1.
  std::unordered_map<Triple, uint64_t, TripleHash> multiplicity_;
  /// rd: data node of G -> summary node (copied from the SummaryResult).
  std::unordered_map<TermId, TermId> node_map_;
  /// Summary node -> number of represented data nodes.
  std::unordered_map<TermId, uint64_t> extent_size_;
};

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_CARDINALITY_H_
