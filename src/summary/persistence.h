#ifndef RDFSUM_SUMMARY_PERSISTENCE_H_
#define RDFSUM_SUMMARY_PERSISTENCE_H_

#include <string>

#include "summary/summary.h"
#include "util/status.h"
#include "util/statusor.h"

namespace rdfsum::summary {

/// Persists a computed summary — graph, node map and (when recorded)
/// members — so downstream tools can reuse it without re-summarizing the
/// base data (summaries are computed offline in the paper's workflow, §7).
///
/// The file embeds the dictionary entries it needs, so a loaded summary is
/// self-contained: LoadSummary returns a result whose graph owns a fresh
/// dictionary.
///
/// Format v2 carries a payload-size and FNV-1a-64 checksum in the header:
/// LoadSummary verifies both before decoding, so truncation, appended junk,
/// or any single flipped bit anywhere in the payload returns kCorruption —
/// it never crashes, and every allocation is bounded by the actual file
/// size (a length prefix larger than the remaining payload is rejected
/// before reserve/resize). Failpoints: "persistence:write",
/// "persistence:read".
Status SaveSummary(const SummaryResult& summary, const std::string& path);

StatusOr<SummaryResult> LoadSummary(const std::string& path);

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_PERSISTENCE_H_
