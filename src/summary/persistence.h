#ifndef RDFSUM_SUMMARY_PERSISTENCE_H_
#define RDFSUM_SUMMARY_PERSISTENCE_H_

#include <string>

#include "summary/summary.h"
#include "util/status.h"
#include "util/statusor.h"

namespace rdfsum::summary {

/// Persists a computed summary — graph, node map and (when recorded)
/// members — so downstream tools can reuse it without re-summarizing the
/// base data (summaries are computed offline in the paper's workflow, §7).
///
/// The file embeds the dictionary entries it needs, so a loaded summary is
/// self-contained: LoadSummary returns a result whose graph owns a fresh
/// dictionary.
Status SaveSummary(const SummaryResult& summary, const std::string& path);

StatusOr<SummaryResult> LoadSummary(const std::string& path);

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_PERSISTENCE_H_
