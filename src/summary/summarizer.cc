#include "summary/summarizer.h"

#include <string>
#include <vector>

#include "reasoner/saturation.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace rdfsum::summary {
namespace {

NodePartition ComputePartition(const Graph& g, SummaryKind kind,
                               const SummaryOptions& options) {
  switch (kind) {
    case SummaryKind::kWeak:
      return ComputeWeakPartition(g);
    case SummaryKind::kStrong:
      return ComputeStrongPartition(g);
    case SummaryKind::kTypedWeak:
      return ComputeTypedWeakPartition(g, options.typed_mode);
    case SummaryKind::kTypedStrong:
      return ComputeTypedStrongPartition(g, options.typed_mode);
    case SummaryKind::kTypeBased:
      return ComputeTypePartition(g);
    case SummaryKind::kBisimulation:
      return ComputeBisimulationPartition(g, options.bisimulation_depth,
                                          options.bisimulation_uses_types,
                                          options.bisimulation_direction);
  }
  return ComputeWeakPartition(g);
}

}  // namespace

SummaryResult QuotientByPartition(const Graph& g, const NodePartition& part,
                                  SummaryKind kind,
                                  const SummaryOptions& options) {
  Timer timer;
  SummaryResult out;
  out.kind = kind;
  out.graph = Graph(g.dict_ptr());

  // One minted node per equivalence class, in class-id order.
  std::string tag = AsciiToLower(SummaryKindName(kind));
  std::vector<TermId> class_node(part.num_classes, kInvalidTermId);
  Dictionary& dict = out.graph.dict();
  for (uint32_t c = 0; c < part.num_classes; ++c) {
    class_node[c] = dict.MintNodeUri("node:" + tag);
  }

  auto map_node = [&](TermId n) { return class_node[part.class_of.at(n)]; };

  for (const Triple& t : g.data()) {
    out.graph.Add(Triple{map_node(t.s), t.p, map_node(t.o)});
  }
  const TermId rdf_type = g.vocab().rdf_type;
  for (const Triple& t : g.types()) {
    out.graph.Add(Triple{map_node(t.s), rdf_type, t.o});
  }
  for (const Triple& t : g.schema()) out.graph.Add(t);

  out.node_map.reserve(part.class_of.size());
  for (const auto& [n, c] : part.class_of) {
    out.node_map.emplace(n, class_node[c]);
  }
  if (options.record_members) {
    for (const auto& [n, c] : part.class_of) {
      out.members[class_node[c]].push_back(n);
    }
  }
  out.stats = ComputeSummaryStats(out.graph, timer.ElapsedSeconds());
  return out;
}

SummaryResult Summarize(const Graph& g, SummaryKind kind,
                        const SummaryOptions& options) {
  Timer timer;
  NodePartition part = ComputePartition(g, kind, options);
  SummaryResult out = QuotientByPartition(g, part, kind, options);
  out.stats.build_seconds = timer.ElapsedSeconds();
  return out;
}

SummaryResult SummarizeSaturatedViaShortcut(const Graph& g, SummaryKind kind,
                                            const SummaryOptions& options) {
  Timer timer;
  if (kind != SummaryKind::kWeak && kind != SummaryKind::kStrong) {
    // No completeness guarantee (Propositions 7/10): saturate first.
    Graph saturated = reasoner::Saturate(g);
    SummaryResult out = Summarize(saturated, kind, options);
    out.stats.build_seconds = timer.ElapsedSeconds();
    return out;
  }
  SummaryResult first = Summarize(g, kind, options);
  Graph saturated_summary = reasoner::Saturate(first.graph);
  SummaryResult second = Summarize(saturated_summary, kind, options);
  // Compose the node maps so the result still maps G's data nodes.
  std::unordered_map<TermId, TermId> composed;
  composed.reserve(first.node_map.size());
  for (const auto& [n, mid] : first.node_map) {
    auto it = second.node_map.find(mid);
    if (it != second.node_map.end()) composed.emplace(n, it->second);
  }
  second.node_map = std::move(composed);
  if (options.record_members) {
    std::unordered_map<TermId, std::vector<TermId>> members;
    for (const auto& [n, h] : second.node_map) members[h].push_back(n);
    second.members = std::move(members);
  }
  second.stats.build_seconds = timer.ElapsedSeconds();
  return second;
}

}  // namespace rdfsum::summary
