#include "summary/summarizer.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "rdf/dense_graph.h"
#include "reasoner/saturation.h"
#include "summary/parallel.h"
#include "util/fault_injection.h"
#include "util/parallel_for.h"
#include "util/row_set.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace rdfsum::summary {
namespace {

NodePartition ComputePartition(const Graph& g, SummaryKind kind,
                               const SummaryOptions& options) {
  switch (kind) {
    case SummaryKind::kWeak:
      // The sharded union-find path is byte-identical to the sequential one
      // at every thread count, so a threaded request routes through it.
      if (options.num_threads != 1) {
        return ComputeParallelWeakPartition(g, options.num_threads,
                                            options.exec);
      }
      return ComputeWeakPartition(g);
    case SummaryKind::kStrong:
      return ComputeStrongPartition(g);
    case SummaryKind::kTypedWeak:
      return ComputeTypedWeakPartition(g, options.typed_mode);
    case SummaryKind::kTypedStrong:
      return ComputeTypedStrongPartition(g, options.typed_mode);
    case SummaryKind::kTypeBased:
      return ComputeTypePartition(g);
    case SummaryKind::kBisimulation:
      return ComputeBisimulationPartition(
          g, options.bisimulation_depth, options.bisimulation_uses_types,
          options.bisimulation_direction, options.num_threads, options.exec);
  }
  return ComputeWeakPartition(g);
}

/// Parallel construction of the quotient edge set: shards classify contiguous
/// ranges of the input into summary edges with private dedup tables, then the
/// shards merge in shard-index order so the summary graph's insertion order —
/// and with it every downstream canonical numbering — is byte-identical to
/// the sequential first-occurrence walk. See src/summary/README.md for why
/// the merge order fixes determinism.
///
/// `exec` governs the shard loops (workers stop mid-range on cancellation
/// and fall through to their join barrier — partial shard output is never
/// merged), and the "quotient:shard" failpoint injects per-shard failures
/// at each shard boundary in fault-injection builds.
Status ParallelQuotientEdges(const Graph& g, const NodePartition& part,
                             const std::vector<TermId>& class_node,
                             uint32_t num_threads, util::ExecContext* exec,
                             Graph* out) {
  const DenseGraph& dg = g.Dense();  // built/cached before any worker spawns
  const uint32_t n = dg.num_nodes();

  // Resolve every dense node to its class id once, instead of one hash
  // lookup per edge endpoint. Workers flag missing nodes; the Status
  // materializes after the join so no worker ever blocks on an error.
  std::vector<uint32_t> class_of_dense(n);
  std::atomic<bool> missing{false};
  util::ParallelForRanges(
      util::ResolveThreadCount(num_threads, n), n,
      [&](uint32_t, uint64_t begin, uint64_t end) {
        util::CancellableChunks(exec, begin, end, [&](uint64_t cb,
                                                      uint64_t ce) {
          for (uint64_t i = cb; i < ce; ++i) {
            auto it =
                part.class_of.find(dg.term_of(static_cast<uint32_t>(i)));
            if (it == part.class_of.end()) {
              missing.store(true, std::memory_order_relaxed);
            } else {
              class_of_dense[i] = it->second;
            }
          }
        });
      });
  if (exec != nullptr) RDFSUM_RETURN_IF_ERROR(exec->Check());
  if (missing.load()) {
    return Status::InvalidArgument(
        "partition does not cover every graph node");
  }

  // Data component: each shard scans a contiguous EdgeRange and dedups the
  // summary edges (class(s), property, class(o)) it sees, in first-occurrence
  // order, into a private RowSet. Shard failures (injected or governance)
  // land in per-shard slots and surface after the join.
  const uint32_t edge_threads =
      util::ResolveThreadCount(num_threads, dg.num_data_edges());
  std::vector<util::RowSet> shard_edges(edge_threads, util::RowSet(3));
  std::vector<Status> shard_status(edge_threads);
  util::ParallelForRanges(
      edge_threads, dg.num_data_edges(),
      [&](uint32_t shard, uint64_t begin, uint64_t end) {
        Status fp = RDFSUM_FAILPOINT_STATUS("quotient:shard");
        if (!fp.ok()) {
          shard_status[shard] = std::move(fp);
          return;
        }
        util::RowSet& set = shard_edges[shard];
        TermId row[3];
        shard_status[shard] =
            util::CancellableChunks(exec, begin, end, [&](uint64_t cb,
                                                          uint64_t ce) {
              for (const DenseGraph::Edge& e : dg.EdgeRange(cb, ce)) {
                row[0] = class_of_dense[e.s];
                row[1] = e.p;
                row[2] = class_of_dense[e.o];
                set.Insert(row);
              }
            });
      });
  for (const Status& st : shard_status) RDFSUM_RETURN_IF_ERROR(st);

  // Type component: same recipe over g.types() with (class(s), class term)
  // keys. Type subjects are dense nodes by the substrate's canonical
  // numbering, so node_of never misses.
  const std::vector<Triple>& types = g.types();
  const uint32_t type_threads =
      util::ResolveThreadCount(num_threads, types.size());
  std::vector<util::RowSet> shard_types(type_threads, util::RowSet(2));
  std::vector<Status> type_status(type_threads);
  util::ParallelForRanges(
      type_threads, types.size(),
      [&](uint32_t shard, uint64_t begin, uint64_t end) {
        Status fp = RDFSUM_FAILPOINT_STATUS("quotient:shard");
        if (!fp.ok()) {
          type_status[shard] = std::move(fp);
          return;
        }
        util::RowSet& set = shard_types[shard];
        TermId row[2];
        type_status[shard] =
            util::CancellableChunks(exec, begin, end, [&](uint64_t cb,
                                                          uint64_t ce) {
              for (uint64_t i = cb; i < ce; ++i) {
                const Triple& t = types[i];
                row[0] = class_of_dense[dg.node_of(t.s)];
                row[1] = t.o;
                set.Insert(row);
              }
            });
      });
  for (const Status& st : type_status) RDFSUM_RETURN_IF_ERROR(st);

  // Merge in shard-index order. Shards are contiguous input ranges, so an
  // edge's first surviving occurrence is in the earliest shard that saw it,
  // at that shard's first-occurrence position: Graph::Add's cross-shard
  // dedup reproduces the sequential insertion order exactly.
  size_t distinct_upper = g.schema().size();
  for (const util::RowSet& set : shard_edges) distinct_upper += set.size();
  for (const util::RowSet& set : shard_types) distinct_upper += set.size();
  out->Reserve(distinct_upper);
  for (const util::RowSet& set : shard_edges) {
    for (size_t r = 0; r < set.size(); ++r) {
      const TermId* row = set.row(r);
      out->Add(Triple{class_node[row[0]], dg.property_term(row[1]),
                      class_node[row[2]]});
    }
  }
  const TermId rdf_type = g.vocab().rdf_type;
  for (const util::RowSet& set : shard_types) {
    for (size_t r = 0; r < set.size(); ++r) {
      const TermId* row = set.row(r);
      out->Add(Triple{class_node[row[0]], rdf_type, row[1]});
    }
  }
  for (const Triple& t : g.schema()) out->Add(t);
  return Status::OK();
}

}  // namespace

StatusOr<SummaryResult> QuotientByPartition(const Graph& g,
                                            const NodePartition& part,
                                            SummaryKind kind,
                                            const SummaryOptions& options) {
  Timer timer;
  util::ExecContext* exec = options.exec;
  if (exec != nullptr) RDFSUM_RETURN_IF_ERROR(exec->Check());
  SummaryResult out;
  out.kind = kind;
  out.graph = Graph(g.dict_ptr());

  // One minted node per equivalence class, in class-id order.
  std::string tag = AsciiToLower(SummaryKindName(kind));
  std::vector<TermId> class_node(part.num_classes, kInvalidTermId);
  Dictionary& dict = out.graph.dict();
  for (uint32_t c = 0; c < part.num_classes; ++c) {
    class_node[c] = dict.MintNodeUri("node:" + tag);
  }

  const uint32_t threads = util::ResolveThreadCount(
      options.num_threads, g.data().size() + g.types().size());
  if (threads > 1) {
    RDFSUM_RETURN_IF_ERROR(ParallelQuotientEdges(
        g, part, class_node, options.num_threads, exec, &out.graph));
  } else {
    // Sequential walk, polling governance every kCheckInterval triples and
    // resolving class ids with find() so a non-covering partition is a
    // returned error, not a crash.
    TermId mapped[2];
    uint64_t since_check = 0;
    auto map_node = [&](TermId n, TermId* slot) {
      auto it = part.class_of.find(n);
      if (it == part.class_of.end()) return false;
      *slot = class_node[it->second];
      return true;
    };
    auto poll = [&]() -> Status {
      if (exec != nullptr &&
          (++since_check & (util::ExecContext::kCheckInterval - 1)) == 0) {
        return exec->Check();
      }
      return Status::OK();
    };
    for (const Triple& t : g.data()) {
      RDFSUM_RETURN_IF_ERROR(poll());
      if (!map_node(t.s, &mapped[0]) || !map_node(t.o, &mapped[1])) {
        return Status::InvalidArgument(
            "partition does not cover every graph node");
      }
      out.graph.Add(Triple{mapped[0], t.p, mapped[1]});
    }
    const TermId rdf_type = g.vocab().rdf_type;
    for (const Triple& t : g.types()) {
      RDFSUM_RETURN_IF_ERROR(poll());
      if (!map_node(t.s, &mapped[0])) {
        return Status::InvalidArgument(
            "partition does not cover every graph node");
      }
      out.graph.Add(Triple{mapped[0], rdf_type, t.o});
    }
    for (const Triple& t : g.schema()) out.graph.Add(t);
  }

  out.node_map.reserve(part.class_of.size());
  for (const auto& [n, c] : part.class_of) {
    out.node_map.emplace(n, class_node[c]);
  }
  if (options.record_members) {
    for (const auto& [n, c] : part.class_of) {
      out.members[class_node[c]].push_back(n);
    }
  }
  out.stats = ComputeSummaryStats(out.graph, timer.ElapsedSeconds());
  out.stats.quotient_seconds = out.stats.build_seconds;
  return out;
}

StatusOr<SummaryResult> TrySummarize(const Graph& g, SummaryKind kind,
                                     const SummaryOptions& options) {
  Timer timer;
  NodePartition part = ComputePartition(g, kind, options);
  // A governed partition phase bails out of its shards early when the
  // context trips; the partial partition must be discarded, and the sticky
  // Check() replays the reason.
  if (options.exec != nullptr) RDFSUM_RETURN_IF_ERROR(options.exec->Check());
  double partition_seconds = timer.ElapsedSeconds();
  RDFSUM_ASSIGN_OR_RETURN(SummaryResult out,
                          QuotientByPartition(g, part, kind, options));
  out.stats.partition_seconds = partition_seconds;
  out.stats.build_seconds = timer.ElapsedSeconds();
  return out;
}

namespace {

/// The shared contract of the ungoverned wrappers: they have no error
/// channel, so a failure (an incomplete partition — a caller bug — or a
/// context the caller was told not to pass) is fatal.
SummaryResult ValueOrDie(StatusOr<SummaryResult> result,
                         const char* function) {
  if (!result.ok()) {
    std::fprintf(stderr, "rdfsum: %s cannot fail but did: %s\n", function,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace

SummaryResult Summarize(const Graph& g, SummaryKind kind,
                        const SummaryOptions& options) {
  return ValueOrDie(TrySummarize(g, kind, options), "Summarize");
}

StatusOr<SummaryResult> TrySummarizeSaturatedViaShortcut(
    const Graph& g, SummaryKind kind, const SummaryOptions& options) {
  Timer timer;
  if (kind != SummaryKind::kWeak && kind != SummaryKind::kStrong) {
    // No completeness guarantee (Propositions 7/10): saturate first.
    Graph saturated = reasoner::Saturate(g);
    RDFSUM_ASSIGN_OR_RETURN(SummaryResult out,
                            TrySummarize(saturated, kind, options));
    out.stats.build_seconds = timer.ElapsedSeconds();
    return out;
  }
  RDFSUM_ASSIGN_OR_RETURN(SummaryResult first, TrySummarize(g, kind, options));
  Graph saturated_summary = reasoner::Saturate(first.graph);
  RDFSUM_ASSIGN_OR_RETURN(SummaryResult second,
                          TrySummarize(saturated_summary, kind, options));
  // Compose the node maps so the result still maps G's data nodes.
  std::unordered_map<TermId, TermId> composed;
  composed.reserve(first.node_map.size());
  for (const auto& [n, mid] : first.node_map) {
    auto it = second.node_map.find(mid);
    if (it != second.node_map.end()) composed.emplace(n, it->second);
  }
  second.node_map = std::move(composed);
  if (options.record_members) {
    std::unordered_map<TermId, std::vector<TermId>> members;
    for (const auto& [n, h] : second.node_map) members[h].push_back(n);
    second.members = std::move(members);
  }
  second.stats.partition_seconds += first.stats.partition_seconds;
  second.stats.quotient_seconds += first.stats.quotient_seconds;
  second.stats.build_seconds = timer.ElapsedSeconds();
  return second;
}

SummaryResult SummarizeSaturatedViaShortcut(const Graph& g, SummaryKind kind,
                                            const SummaryOptions& options) {
  return ValueOrDie(TrySummarizeSaturatedViaShortcut(g, kind, options),
                    "SummarizeSaturatedViaShortcut");
}

}  // namespace rdfsum::summary
