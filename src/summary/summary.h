#ifndef RDFSUM_SUMMARY_SUMMARY_H_
#define RDFSUM_SUMMARY_SUMMARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/graph.h"
#include "util/exec_context.h"

namespace rdfsum::summary {

/// The five summary kinds of the paper — Definitions 11 (W), 15 (S),
/// 14 (TW), 17 (TS) and the helper type-based summary of Definition 12 (T) —
/// plus the related-work baseline the paper compares against in §8:
/// a k-bounded bisimulation structural index ([14, 19] in the paper).
enum class SummaryKind {
  kWeak,
  kStrong,
  kTypedWeak,
  kTypedStrong,
  kTypeBased,
  kBisimulation,
};

/// Short name used in minted URIs and reports: "W", "S", "TW", "TS", "T",
/// "BISIM".
const char* SummaryKindName(SummaryKind kind);

/// All four quotient kinds in presentation order (excludes kTypeBased).
inline constexpr SummaryKind kAllQuotientKinds[] = {
    SummaryKind::kWeak, SummaryKind::kStrong, SummaryKind::kTypedWeak,
    SummaryKind::kTypedStrong};

/// How the typed summaries treat untyped resources; see DESIGN.md §2.2.
enum class TypedSummaryMode {
  /// §6 semantics (default): an untyped endpoint of a data triple is merged
  /// per property, regardless of whether the other endpoint is typed.
  /// Reproduces Figure 7 and the authors' data structures exactly.
  kPerPropertyProjection,
  /// Strict Definition 13/16: only data triples with both endpoints untyped
  /// (the untyped data graph UD_G) induce equivalence; untyped resources
  /// outside UD_G collapse into Nτ.
  kUntypedDataGraph,
};

/// Which labeled neighborhoods the bisimulation baseline compares: outgoing
/// edges only (forward), incoming only (backward), or both — the fb variant
/// the paper's §8 baseline uses, and the default everywhere.
enum class BisimulationDirection {
  kForward,
  kBackward,
  kForwardBackward,
};

struct SummaryOptions {
  TypedSummaryMode typed_mode = TypedSummaryMode::kPerPropertyProjection;
  /// Fill SummaryResult::members (the paper's `dr` multimap).
  bool record_members = false;
  /// Threads for the parallel phases of summarization — the sharded quotient
  /// construction (every kind) and the parallel partition paths (W and
  /// BISIM). 1 = fully sequential (default), 0 = all hardware threads. The
  /// result is byte-identical at every value (see src/summary/README.md for
  /// the sharding invariants that guarantee it).
  uint32_t num_threads = 1;
  /// Refinement rounds for SummaryKind::kBisimulation: nodes are equivalent
  /// iff their k-hop labeled neighborhoods are (k = depth). Larger depths
  /// approach full bisimulation, whose size the paper's §8 warns "can be as
  /// large as the input graph".
  uint32_t bisimulation_depth = 2;
  /// Seed the bisimulation colors with the nodes' class sets.
  bool bisimulation_uses_types = true;
  /// Which neighborhoods the refinement signatures include.
  BisimulationDirection bisimulation_direction =
      BisimulationDirection::kForwardBackward;
  /// Optional governance (deadline + cancellation token). Borrowed; must
  /// outlive the call; nullptr = ungoverned. Shard workers poll it between
  /// chunks and fall through to their join barrier, and the TrySummarize
  /// entry points return its kCancelled/kDeadlineExceeded status (partial
  /// phase output is discarded). Only the Try* entry points may be called
  /// with a context set — plain Summarize has no error channel.
  util::ExecContext* exec = nullptr;
};

/// Sizes of a summary, in the measures reported by Figures 11 and 12.
struct SummaryStats {
  uint64_t num_data_nodes = 0;  // data nodes of the summary graph
  uint64_t num_class_nodes = 0;
  uint64_t num_all_nodes = 0;  // |H|n, including schema/property nodes
  uint64_t num_data_edges = 0;
  uint64_t num_type_edges = 0;
  uint64_t num_schema_edges = 0;
  uint64_t num_all_edges = 0;  // |H|e
  double build_seconds = 0.0;
  /// Per-phase wall times of the build: computing the equivalence partition
  /// and materializing the quotient graph. For the saturation shortcut these
  /// aggregate over both Summarize passes; they never include saturation
  /// itself, so they need not sum to build_seconds.
  double partition_seconds = 0.0;
  double quotient_seconds = 0.0;

  std::string ToString() const;
};

/// A summary H_G together with the representation mapping.
struct SummaryResult {
  SummaryKind kind = SummaryKind::kWeak;
  /// The summary graph; shares the input graph's dictionary, with summary
  /// nodes minted as urn:rdfsum: URIs.
  Graph graph;
  /// The paper's `rd` map: every data node of G -> its summary node.
  std::unordered_map<TermId, TermId> node_map;
  /// The paper's `dr` map (filled iff options.record_members).
  std::unordered_map<TermId, std::vector<TermId>> members;
  SummaryStats stats;
};

/// Fills a SummaryStats from a summary graph (node/edge accounting only;
/// the caller supplies the build time).
SummaryStats ComputeSummaryStats(const Graph& summary, double build_seconds);

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_SUMMARY_H_
