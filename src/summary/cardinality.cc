#include "summary/cardinality.h"

#include <cmath>
#include <string>

namespace rdfsum::summary {
namespace {

constexpr TermId kUnboundVar = kInvalidTermId;

}  // namespace

CardinalityEstimator::CardinalityEstimator(
    const Graph& g, const SummaryResult& summary,
    const CardinalityEstimatorOptions& options)
    : dict_(g.dict_ptr()),
      kind_(summary.kind),
      options_(options),
      node_map_(summary.node_map) {
  extent_size_.reserve(summary.graph.NumTriples());
  for (const auto& [node, summary_node] : node_map_) {
    (void)node;
    ++extent_size_[summary_node];
  }

  summary.graph.ForEachTriple(
      [&](const Triple& t) { summary_table_.Append(t); });
  summary_table_.Freeze();

  // Edge multiplicities: how many triples of G each summary edge stands
  // for. Schema triples are copied verbatim into the summary, so they keep
  // an implicit multiplicity of 1 (the map's default on miss).
  auto map_node = [&](TermId n) {
    auto it = node_map_.find(n);
    return it == node_map_.end() ? n : it->second;
  };
  multiplicity_.reserve(g.data().size() + g.types().size());
  for (const Triple& t : g.data()) {
    ++multiplicity_[Triple{map_node(t.s), t.p, map_node(t.o)}];
  }
  const TermId rdf_type = g.vocab().rdf_type;
  for (const Triple& t : g.types()) {
    ++multiplicity_[Triple{map_node(t.s), rdf_type, t.o}];
  }
}

uint64_t CardinalityEstimator::ExtentSize(TermId summary_node) const {
  auto it = extent_size_.find(summary_node);
  return it == extent_size_.end() ? 1 : it->second;
}

double CardinalityEstimator::Multiplicity(const Triple& t) const {
  auto it = multiplicity_.find(t);
  return it == multiplicity_.end() ? 1.0 : static_cast<double>(it->second);
}

CardinalityEstimator::Compiled CardinalityEstimator::Compile(
    const std::vector<query::TriplePatternQ>& patterns) const {
  Compiled out;
  std::unordered_map<std::string, uint32_t> var_index;
  auto slot = [&](const query::PatternTerm& t) {
    Slot s;
    if (t.is_var) {
      s.is_var = true;
      auto [it, inserted] = var_index.emplace(t.var, out.num_vars);
      if (inserted) {
        ++out.num_vars;
        out.occurrences.push_back(0);
      }
      s.var = it->second;
      ++out.occurrences[s.var];
    } else {
      TermId id = dict_->Lookup(t.term);
      if (id == kInvalidTermId) {
        s.impossible = true;
      } else {
        // A data constant stands for its equivalence class in the summary;
        // properties, classes and schema constants map to themselves.
        auto it = node_map_.find(id);
        if (it == node_map_.end()) {
          s.constant = id;
        } else {
          s.constant = it->second;
          s.mapped_constant = true;
        }
      }
    }
    return s;
  };
  for (const query::TriplePatternQ& t : patterns) {
    Pattern pc{slot(t.s), slot(t.p), slot(t.o)};
    if (pc.s.impossible || pc.p.impossible || pc.o.impossible) {
      out.impossible = true;
    }
    out.patterns.push_back(pc);
  }
  return out;
}

CardinalityEstimate CardinalityEstimator::EstimatePatterns(
    const std::vector<query::TriplePatternQ>& patterns) const {
  CardinalityEstimate result;
  if (patterns.empty()) {
    result.estimate = 1.0;  // the empty BGP has exactly one embedding
    return result;
  }
  Compiled q = Compile(patterns);
  if (q.impossible) return result;

  // Backtracking enumeration of the BGP's embeddings into the summary,
  // most-constrained pattern first (the summary is small, but budget-capped
  // all the same).
  struct Enumerator {
    const CardinalityEstimator& est;
    const Compiled& q;
    std::vector<TermId> bindings;
    std::vector<double> mults;  // multiplicity of the match at each depth
    std::vector<bool> used;
    double sum = 0.0;
    uint64_t embeddings = 0;
    uint64_t probes = 0;
    bool truncated = false;

    store::TriplePattern Instantiate(const Pattern& p) const {
      store::TriplePattern out;
      auto fill = [&](const Slot& s) -> std::optional<TermId> {
        if (!s.is_var) return s.constant;
        TermId b = bindings[s.var];
        if (b != kUnboundVar) return b;
        return std::nullopt;
      };
      out.s = fill(p.s);
      out.p = fill(p.p);
      out.o = fill(p.o);
      return out;
    }

    int Unbound(const Pattern& p) const {
      int n = 0;
      for (const Slot* s : {&p.s, &p.p, &p.o}) {
        if (s->is_var && bindings[s->var] == kUnboundVar) ++n;
      }
      return n;
    }

    void AtLeaf() {
      double contribution = 1.0;
      for (double m : mults) contribution *= m;
      // Constant discount: a constant folded into a summary class selects
      // one member out of the extent, keeping ~1/extent of the edge's
      // triples (per pattern position it pins).
      for (const Pattern& p : q.patterns) {
        for (const Slot* s : {&p.s, &p.o}) {
          if (!s->is_var && s->mapped_constant) {
            contribution /= static_cast<double>(
                std::max<uint64_t>(1, est.ExtentSize(s->constant)));
          }
        }
      }
      // Join discount: a variable occurring k times forces k independent
      // member choices within its class to coincide; under uniformity each
      // extra occurrence survives with probability 1/extent.
      for (uint32_t v = 0; v < q.num_vars; ++v) {
        if (q.occurrences[v] <= 1) continue;
        double ext =
            static_cast<double>(std::max<uint64_t>(1, est.ExtentSize(bindings[v])));
        contribution /= std::pow(ext, q.occurrences[v] - 1);
      }
      sum += contribution;
      ++embeddings;
    }

    void Recurse(size_t depth) {
      if (truncated) return;
      if (depth == q.patterns.size()) {
        AtLeaf();
        if (embeddings >= est.options_.max_summary_embeddings) {
          truncated = true;
        }
        return;
      }
      size_t best = SIZE_MAX;
      int best_unbound = 4;
      for (size_t i = 0; i < q.patterns.size(); ++i) {
        if (used[i]) continue;
        int u = Unbound(q.patterns[i]);
        if (u < best_unbound) {
          best_unbound = u;
          best = i;
        }
      }
      used[best] = true;
      const Pattern& pat = q.patterns[best];
      est.summary_table_.Scan(Instantiate(pat), [&](const Triple& m) {
        if (++probes > est.options_.max_summary_probes) {
          truncated = true;
          return false;
        }
        uint32_t newly[3];
        int num_newly = 0;
        bool ok = true;
        auto bind = [&](const Slot& s, TermId value) {
          if (!s.is_var) return;
          TermId cur = bindings[s.var];
          if (cur == kUnboundVar) {
            bindings[s.var] = value;
            newly[num_newly++] = s.var;
          } else if (cur != value) {
            ok = false;
          }
        };
        bind(pat.s, m.s);
        if (ok) bind(pat.p, m.p);
        if (ok) bind(pat.o, m.o);
        if (ok) {
          mults.push_back(est.Multiplicity(m));
          Recurse(depth + 1);
          mults.pop_back();
        }
        for (int i = 0; i < num_newly; ++i) bindings[newly[i]] = kUnboundVar;
        return !truncated;
      });
      used[best] = false;
    }
  };

  Enumerator e{*this, q, std::vector<TermId>(q.num_vars, kUnboundVar),
               {},    std::vector<bool>(q.patterns.size(), false)};
  e.mults.reserve(q.patterns.size());
  e.Recurse(0);

  result.truncated = e.truncated;
  // Representativeness clamp: at least one summary embedding means the true
  // answer (for RBGP queries) is non-empty, so never report < 1; a
  // *completed* enumeration with no embedding means provably empty, report
  // exactly 0.
  if (e.embeddings > 0) {
    result.estimate = std::max(1.0, e.sum);
  } else if (e.truncated) {
    // The probe budget ran out before any embedding completed — emptiness
    // is NOT proven, so returning 0 would break the documented contract.
    // Fall back to the sound per-pattern product upper bound (0 only when
    // some pattern matches no summary edge at all, which IS a proof).
    double product = 1.0;
    for (const query::TriplePatternQ& t : patterns) {
      product *= EstimatePatternCount(t);
      if (product == 0.0) break;
    }
    result.estimate = product > 0.0 ? std::max(1.0, product) : 0.0;
  }
  return result;
}

double CardinalityEstimator::EstimatePatternCount(
    const query::TriplePatternQ& pattern) const {
  Compiled q = Compile({pattern});
  if (q.impossible) return 0.0;
  const Pattern& pc = q.patterns[0];
  store::TriplePattern probe;
  if (!pc.s.is_var) probe.s = pc.s.constant;
  if (!pc.p.is_var) probe.p = pc.p.constant;
  if (!pc.o.is_var) probe.o = pc.o.constant;
  const bool repeated_so =
      pc.s.is_var && pc.o.is_var && pc.s.var == pc.o.var;
  double constant_discount = 1.0;
  for (const Slot* s : {&pc.s, &pc.o}) {
    if (!s->is_var && s->mapped_constant) {
      constant_discount *=
          static_cast<double>(std::max<uint64_t>(1, ExtentSize(s->constant)));
    }
  }
  double sum = 0.0;
  summary_table_.Scan(probe, [&](const Triple& m) {
    if (repeated_so && m.s != m.o) return true;
    sum += Multiplicity(m);
    return true;
  });
  return sum / constant_discount;
}

}  // namespace rdfsum::summary
