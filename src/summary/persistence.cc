#include "summary/persistence.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/binary_io.h"
#include "util/fault_injection.h"

namespace rdfsum::summary {
namespace {

constexpr char kMagic[9] = {'R', 'D', 'F', 'S', 'U', 'M', 'S', 'U', 'M'};
// v2 adds a payload-size + FNV-1a-64 checksum trailer to the header so a
// single flipped bit anywhere in the payload — including inside string
// payloads, which the per-field decoding of v1 could not detect — surfaces
// as kCorruption instead of a silently wrong summary. v1 files are caches,
// not interchange data; they are simply rebuilt.
constexpr uint32_t kVersion = 2;
// magic + version + kind + payload size + checksum.
constexpr size_t kHeaderBytes = sizeof(kMagic) + 4 + 4 + 8 + 8;

// Minimum serialized footprint of each record kind, used to reject
// oversized length prefixes before any allocation: a count that could not
// possibly fit in the remaining payload is corruption, not a reserve() of
// gigabytes.
constexpr uint64_t kMinTermBytes = 1 + 3 * 8;  // kind + 3 length prefixes
constexpr uint64_t kMinTripleBytes = 12;
constexpr uint64_t kMinMappingBytes = 8;
constexpr uint64_t kMinMemberListBytes = 4 + 8;  // node + count
constexpr uint64_t kMinMemberBytes = 4;

constexpr uint64_t kFnvSeed = 1469598103934665603ULL;

uint64_t Fnv1a64(const char* data, size_t size, uint64_t h = kFnvSeed) {
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

// The checksum covers version + kind + payload, so a bit flip in the kind
// field that happens to land on another valid kind is still caught (magic,
// version, payload-size and checksum flips are caught by their own
// validation).
uint64_t Checksum(uint32_t version, uint32_t kind, const std::string& payload) {
  char meta[8];
  std::memcpy(meta, &version, 4);
  std::memcpy(meta + 4, &kind, 4);
  return Fnv1a64(payload.data(), payload.size(), Fnv1a64(meta, sizeof(meta)));
}

/// Bounds-checked cursor over the in-memory payload. Every read checks the
/// remaining byte count first, so a truncated or bit-flipped length prefix
/// can fail a read but never walk past the buffer.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  uint64_t remaining() const { return size_ - pos_; }

  bool GetByte(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (remaining() < 4) return false;
    std::memcpy(v, data_ + pos_, 4);
    pos_ += 4;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (remaining() < 8) return false;
    std::memcpy(v, data_ + pos_, 8);
    pos_ += 8;
    return true;
  }

  bool GetString(std::string* s) {
    uint64_t len = 0;
    if (!GetU64(&len)) return false;
    if (len > remaining()) return false;  // oversized prefix: no allocation
    s->assign(data_ + pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void PutTerm(std::ostream& os, const Term& t) {
  os.put(static_cast<char>(t.kind));
  PutString(os, t.lexical);
  PutString(os, t.datatype);
  PutString(os, t.language);
}

bool GetTerm(ByteReader& r, Term* t) {
  uint8_t kind = 0;
  if (!r.GetByte(&kind) || kind > 2) return false;
  t->kind = static_cast<TermKind>(kind);
  return r.GetString(&t->lexical) && r.GetString(&t->datatype) &&
         r.GetString(&t->language);
}

}  // namespace

Status SaveSummary(const SummaryResult& summary, const std::string& path) {
  RDFSUM_FAILPOINT("persistence:write");
  // Serialize the payload in memory first so the header can carry its size
  // and checksum; summaries are small (that is the point of the paper), so
  // the extra copy is noise next to the summarization itself.
  std::ostringstream payload;

  // Dictionary slice: every id referenced by the graph, the node map or the
  // members. We simply dump the whole dictionary of the summary graph; it
  // is shared with the base graph's, which keeps this simple and still
  // bounded by the base dictionary size.
  const Dictionary& dict = summary.graph.dict();
  PutU64(payload, dict.size() - 1);
  for (TermId id = 1; id < dict.size(); ++id) {
    PutTerm(payload, dict.Decode(id));
  }

  PutU64(payload, summary.graph.NumTriples());
  summary.graph.ForEachTriple([&](const Triple& t) {
    PutU32(payload, t.s);
    PutU32(payload, t.p);
    PutU32(payload, t.o);
  });

  PutU64(payload, summary.node_map.size());
  for (const auto& [g_node, h_node] : summary.node_map) {
    PutU32(payload, g_node);
    PutU32(payload, h_node);
  }

  PutU64(payload, summary.members.size());
  for (const auto& [h_node, members] : summary.members) {
    PutU32(payload, h_node);
    PutU64(payload, members.size());
    for (TermId m : members) PutU32(payload, m);
  }

  const std::string bytes = payload.str();

  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IOError("cannot open " + path + " for writing");
  os.write(kMagic, sizeof(kMagic));
  PutU32(os, kVersion);
  PutU32(os, static_cast<uint32_t>(summary.kind));
  PutU64(os, bytes.size());
  PutU64(os, Checksum(kVersion, static_cast<uint32_t>(summary.kind), bytes));
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  if (!os) return Status::IOError("write failed for " + path);
  return Status::OK();
}

StatusOr<SummaryResult> LoadSummary(const std::string& path) {
  RDFSUM_FAILPOINT("persistence:read");
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) return Status::IOError("cannot open " + path);
  const std::streamoff file_size = is.tellg();
  is.seekg(0);
  if (file_size < static_cast<std::streamoff>(kHeaderBytes)) {
    return Status::Corruption("file too small for header: " + path);
  }

  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  uint32_t version = 0, kind_raw = 0;
  uint64_t payload_size = 0, checksum = 0;
  if (!GetU32(is, &version) || version != kVersion) {
    return Status::Corruption("unsupported version");
  }
  if (!GetU32(is, &kind_raw) ||
      kind_raw > static_cast<uint32_t>(SummaryKind::kBisimulation)) {
    return Status::Corruption("bad summary kind");
  }
  if (!GetU64(is, &payload_size) || !GetU64(is, &checksum)) {
    return Status::Corruption("truncated header");
  }
  // The declared payload size must match the bytes actually on disk — an
  // oversized prefix would otherwise drive the allocation below; an
  // undersized one means the file was appended to or the prefix flipped.
  if (payload_size !=
      static_cast<uint64_t>(file_size) - static_cast<uint64_t>(kHeaderBytes)) {
    return Status::Corruption("payload size mismatch in " + path);
  }

  std::string bytes(static_cast<size_t>(payload_size), '\0');
  is.read(bytes.data(), static_cast<std::streamsize>(payload_size));
  if (!is) return Status::Corruption("truncated payload in " + path);
  if (Checksum(version, kind_raw, bytes) != checksum) {
    return Status::Corruption("checksum mismatch in " + path);
  }
  ByteReader r(bytes.data(), bytes.size());

  SummaryResult out;
  out.kind = static_cast<SummaryKind>(kind_raw);
  out.graph = Graph();  // fresh dictionary
  Dictionary& dict = out.graph.dict();

  uint64_t num_terms = 0;
  if (!r.GetU64(&num_terms)) return Status::Corruption("truncated terms");
  if (num_terms > r.remaining() / kMinTermBytes) {
    return Status::Corruption("term count exceeds payload");
  }
  // Map file ids to ids in the fresh dictionary. The fresh dictionary
  // already interned the RDF/RDFS vocabulary, so ids can differ.
  std::vector<TermId> remap(num_terms + 1, kInvalidTermId);
  for (uint64_t i = 1; i <= num_terms; ++i) {
    Term term;
    if (!GetTerm(r, &term)) return Status::Corruption("truncated term");
    remap[i] = dict.Encode(term);
  }
  auto mapped = [&](uint32_t id) -> TermId {
    return id <= num_terms ? remap[id] : kInvalidTermId;
  };

  uint64_t num_triples = 0;
  if (!r.GetU64(&num_triples)) return Status::Corruption("truncated count");
  if (num_triples > r.remaining() / kMinTripleBytes) {
    return Status::Corruption("triple count exceeds payload");
  }
  for (uint64_t i = 0; i < num_triples; ++i) {
    uint32_t s, p, o;
    if (!r.GetU32(&s) || !r.GetU32(&p) || !r.GetU32(&o)) {
      return Status::Corruption("truncated triple");
    }
    TermId ms = mapped(s), mp = mapped(p), mo = mapped(o);
    if (ms == kInvalidTermId || mp == kInvalidTermId || mo == kInvalidTermId) {
      return Status::Corruption("triple references unknown term");
    }
    out.graph.Add(Triple{ms, mp, mo});
  }

  uint64_t num_mappings = 0;
  if (!r.GetU64(&num_mappings)) return Status::Corruption("truncated map");
  if (num_mappings > r.remaining() / kMinMappingBytes) {
    return Status::Corruption("node map count exceeds payload");
  }
  for (uint64_t i = 0; i < num_mappings; ++i) {
    uint32_t g_node, h_node;
    if (!r.GetU32(&g_node) || !r.GetU32(&h_node)) {
      return Status::Corruption("truncated node map");
    }
    out.node_map.emplace(mapped(g_node), mapped(h_node));
  }

  uint64_t num_member_lists = 0;
  if (!r.GetU64(&num_member_lists)) {
    return Status::Corruption("truncated members");
  }
  if (num_member_lists > r.remaining() / kMinMemberListBytes) {
    return Status::Corruption("member list count exceeds payload");
  }
  for (uint64_t i = 0; i < num_member_lists; ++i) {
    uint32_t h_node;
    uint64_t count;
    if (!r.GetU32(&h_node) || !r.GetU64(&count)) {
      return Status::Corruption("truncated member list");
    }
    if (count > r.remaining() / kMinMemberBytes) {
      return Status::Corruption("member count exceeds payload");
    }
    auto& v = out.members[mapped(h_node)];
    v.reserve(count);
    for (uint64_t j = 0; j < count; ++j) {
      uint32_t m;
      if (!r.GetU32(&m)) return Status::Corruption("truncated member");
      v.push_back(mapped(m));
    }
  }
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes after members");
  }
  out.stats = ComputeSummaryStats(out.graph, 0.0);
  return out;
}

}  // namespace rdfsum::summary
