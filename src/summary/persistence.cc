#include "summary/persistence.h"

#include <cstring>
#include <fstream>

#include "util/binary_io.h"

namespace rdfsum::summary {
namespace {

constexpr char kMagic[9] = {'R', 'D', 'F', 'S', 'U', 'M', 'S', 'U', 'M'};
constexpr uint32_t kVersion = 1;

void PutTerm(std::ostream& os, const Term& t) {
  os.put(static_cast<char>(t.kind));
  PutString(os, t.lexical);
  PutString(os, t.datatype);
  PutString(os, t.language);
}

bool GetTerm(std::istream& is, Term* t) {
  int kind = is.get();
  if (kind < 0 || kind > 2) return false;
  t->kind = static_cast<TermKind>(kind);
  return GetString(is, &t->lexical) && GetString(is, &t->datatype) &&
         GetString(is, &t->language);
}

}  // namespace

Status SaveSummary(const SummaryResult& summary, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IOError("cannot open " + path + " for writing");
  os.write(kMagic, sizeof(kMagic));
  PutU32(os, kVersion);
  PutU32(os, static_cast<uint32_t>(summary.kind));

  // Dictionary slice: every id referenced by the graph, the node map or the
  // members. We simply dump the whole dictionary of the summary graph; it
  // is shared with the base graph's, which keeps this simple and still
  // bounded by the base dictionary size.
  const Dictionary& dict = summary.graph.dict();
  PutU64(os, dict.size() - 1);
  for (TermId id = 1; id < dict.size(); ++id) PutTerm(os, dict.Decode(id));

  PutU64(os, summary.graph.NumTriples());
  summary.graph.ForEachTriple([&](const Triple& t) {
    PutU32(os, t.s);
    PutU32(os, t.p);
    PutU32(os, t.o);
  });

  PutU64(os, summary.node_map.size());
  for (const auto& [g_node, h_node] : summary.node_map) {
    PutU32(os, g_node);
    PutU32(os, h_node);
  }

  PutU64(os, summary.members.size());
  for (const auto& [h_node, members] : summary.members) {
    PutU32(os, h_node);
    PutU64(os, members.size());
    for (TermId m : members) PutU32(os, m);
  }

  os.flush();
  if (!os) return Status::IOError("write failed for " + path);
  return Status::OK();
}

StatusOr<SummaryResult> LoadSummary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IOError("cannot open " + path);
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  uint32_t version = 0, kind_raw = 0;
  if (!GetU32(is, &version) || version != kVersion) {
    return Status::Corruption("unsupported version");
  }
  if (!GetU32(is, &kind_raw) ||
      kind_raw > static_cast<uint32_t>(SummaryKind::kBisimulation)) {
    return Status::Corruption("bad summary kind");
  }

  SummaryResult out;
  out.kind = static_cast<SummaryKind>(kind_raw);
  out.graph = Graph();  // fresh dictionary
  Dictionary& dict = out.graph.dict();

  uint64_t num_terms = 0;
  if (!GetU64(is, &num_terms)) return Status::Corruption("truncated header");
  // Map file ids to ids in the fresh dictionary. The fresh dictionary
  // already interned the RDF/RDFS vocabulary, so ids can differ.
  std::vector<TermId> remap(num_terms + 1, kInvalidTermId);
  for (uint64_t i = 1; i <= num_terms; ++i) {
    Term term;
    if (!GetTerm(is, &term)) return Status::Corruption("truncated term");
    remap[i] = dict.Encode(term);
  }
  auto mapped = [&](uint32_t id) -> TermId {
    return id <= num_terms ? remap[id] : kInvalidTermId;
  };

  uint64_t num_triples = 0;
  if (!GetU64(is, &num_triples)) return Status::Corruption("truncated count");
  for (uint64_t i = 0; i < num_triples; ++i) {
    uint32_t s, p, o;
    if (!GetU32(is, &s) || !GetU32(is, &p) || !GetU32(is, &o)) {
      return Status::Corruption("truncated triple");
    }
    TermId ms = mapped(s), mp = mapped(p), mo = mapped(o);
    if (ms == kInvalidTermId || mp == kInvalidTermId || mo == kInvalidTermId) {
      return Status::Corruption("triple references unknown term");
    }
    out.graph.Add(Triple{ms, mp, mo});
  }

  uint64_t num_mappings = 0;
  if (!GetU64(is, &num_mappings)) return Status::Corruption("truncated map");
  for (uint64_t i = 0; i < num_mappings; ++i) {
    uint32_t g_node, h_node;
    if (!GetU32(is, &g_node) || !GetU32(is, &h_node)) {
      return Status::Corruption("truncated node map");
    }
    out.node_map.emplace(mapped(g_node), mapped(h_node));
  }

  uint64_t num_member_lists = 0;
  if (!GetU64(is, &num_member_lists)) {
    return Status::Corruption("truncated members");
  }
  for (uint64_t i = 0; i < num_member_lists; ++i) {
    uint32_t h_node;
    uint64_t count;
    if (!GetU32(is, &h_node) || !GetU64(is, &count)) {
      return Status::Corruption("truncated member list");
    }
    auto& v = out.members[mapped(h_node)];
    v.reserve(count);
    for (uint64_t j = 0; j < count; ++j) {
      uint32_t m;
      if (!GetU32(is, &m)) return Status::Corruption("truncated member");
      v.push_back(mapped(m));
    }
  }
  out.stats = ComputeSummaryStats(out.graph, 0.0);
  return out;
}

}  // namespace rdfsum::summary
