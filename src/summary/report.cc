#include "summary/report.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "io/dot_writer.h"

namespace rdfsum::summary {
namespace {

struct NodeFacts {
  std::vector<std::string> sources;
  std::vector<std::string> targets;
  std::vector<std::string> types;
};

std::string Local(const Graph& g, TermId id) {
  const Term& t = g.dict().Decode(id);
  if (t.is_iri()) return io::IriLocalName(t.lexical);
  return t.ToNTriples();
}

/// Collects, per minted node of the summary graph, the adjacent property
/// and class names.
std::unordered_map<TermId, NodeFacts> CollectFacts(const Graph& h) {
  std::unordered_map<TermId, NodeFacts> facts;
  auto touch = [&](TermId n) -> NodeFacts& { return facts[n]; };
  for (const Triple& t : h.data()) {
    touch(t.s).sources.push_back(Local(h, t.p));
    touch(t.o).targets.push_back(Local(h, t.p));
  }
  for (const Triple& t : h.types()) {
    touch(t.s).types.push_back(Local(h, t.o));
  }
  for (auto& [node, f] : facts) {
    auto dedup = [](std::vector<std::string>& v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    dedup(f.sources);
    dedup(f.targets);
    dedup(f.types);
  }
  return facts;
}

std::string Join(const std::vector<std::string>& parts) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ",";
    out += parts[i];
  }
  return out;
}

std::string LabelFromFacts(const NodeFacts& f) {
  if (f.sources.empty() && f.targets.empty()) {
    if (!f.types.empty()) return "C({" + Join(f.types) + "})";
    return "Nτ";
  }
  // N^{target properties}_{source properties}; omit an empty side.
  std::string out = "N";
  if (!f.targets.empty()) out += "^{" + Join(f.targets) + "}";
  if (!f.sources.empty()) out += "_{" + Join(f.sources) + "}";
  return out;
}

}  // namespace

std::string PaperStyleLabel(const Graph& summary_graph, TermId node) {
  auto facts = CollectFacts(summary_graph);
  auto it = facts.find(node);
  if (it == facts.end()) return "Nτ";
  return LabelFromFacts(it->second);
}

SummaryReport DescribeSummary(const SummaryResult& summary) {
  const Graph& h = summary.graph;
  SummaryReport report;
  report.kind = summary.kind;
  report.stats = summary.stats;

  auto facts = CollectFacts(h);

  // Member counts: from `members` if recorded, else derived from node_map.
  std::unordered_map<TermId, uint64_t> counts;
  if (!summary.members.empty()) {
    for (const auto& [node, members] : summary.members) {
      counts[node] = members.size();
    }
  } else {
    for (const auto& [g_node, h_node] : summary.node_map) ++counts[h_node];
  }

  for (const auto& [node, f] : facts) {
    if (!h.dict().IsMinted(node)) continue;  // skip class/schema nodes
    NodeReport nr;
    nr.node = node;
    nr.label = LabelFromFacts(f);
    nr.source_properties = f.sources;
    nr.target_properties = f.targets;
    nr.types = f.types;
    auto cit = counts.find(node);
    nr.member_count = cit == counts.end() ? 0 : cit->second;
    auto mit = summary.members.find(node);
    if (mit != summary.members.end()) {
      for (size_t i = 0; i < mit->second.size() && i < 3; ++i) {
        nr.sample_members.push_back(
            h.dict().Decode(mit->second[i]).ToNTriples());
      }
    }
    report.nodes.push_back(std::move(nr));
  }
  std::sort(report.nodes.begin(), report.nodes.end(),
            [](const NodeReport& a, const NodeReport& b) {
              if (a.member_count != b.member_count) {
                return a.member_count > b.member_count;
              }
              return a.label < b.label;
            });
  return report;
}

std::string SummaryReport::ToString() const {
  std::ostringstream os;
  os << SummaryKindName(kind) << " summary: " << nodes.size()
     << " data nodes\n";
  if (stats.build_seconds > 0.0) {
    os << "  built in " << stats.build_seconds << "s (partition="
       << stats.partition_seconds << "s, quotient=" << stats.quotient_seconds
       << "s)\n";
  }
  for (const NodeReport& n : nodes) {
    os << "  " << n.label << "  represents " << n.member_count
       << " resource(s)";
    if (!n.types.empty()) os << "  types={" << Join(n.types) << "}";
    if (!n.sample_members.empty()) {
      os << "  e.g. " << n.sample_members.front();
    }
    os << "\n";
  }
  return os.str();
}

void WriteSummaryDot(const SummaryResult& summary, std::ostream& os) {
  const Graph& h = summary.graph;
  auto facts = CollectFacts(h);
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };

  os << "digraph \"" << SummaryKindName(summary.kind) << "_summary\" {\n"
     << "  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n";
  std::unordered_set<TermId> class_nodes;
  for (const Triple& t : h.types()) class_nodes.insert(t.o);
  for (TermId c : class_nodes) {
    os << "  n" << c << " [label=\"" << escape(Local(h, c))
       << "\", shape=box, color=purple, fontcolor=purple];\n";
  }
  std::unordered_set<TermId> emitted;
  auto emit = [&](TermId n) {
    if (class_nodes.count(n) || !emitted.insert(n).second) return;
    auto it = facts.find(n);
    std::string label =
        it == facts.end() ? Local(h, n) : LabelFromFacts(it->second);
    os << "  n" << n << " [label=\"" << escape(label) << "\"];\n";
  };
  for (const Triple& t : h.data()) {
    emit(t.s);
    emit(t.o);
    os << "  n" << t.s << " -> n" << t.o << " [label=\""
       << escape(Local(h, t.p)) << "\"];\n";
  }
  for (const Triple& t : h.types()) {
    emit(t.s);
    os << "  n" << t.s << " -> n" << t.o
       << " [label=\"type\", style=dashed, color=purple];\n";
  }
  for (const Triple& t : h.schema()) {
    emit(t.s);
    emit(t.o);
    os << "  n" << t.s << " -> n" << t.o << " [label=\""
       << escape(Local(h, t.p)) << "\", style=dotted];\n";
  }
  os << "}\n";
}

Status WriteSummaryDotFile(const SummaryResult& summary,
                           const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  WriteSummaryDot(summary, out);
  out.flush();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace rdfsum::summary
