#ifndef RDFSUM_SUMMARY_REFERENCE_PARTITION_H_
#define RDFSUM_SUMMARY_REFERENCE_PARTITION_H_

#include <cstdint>

#include "rdf/graph.h"
#include "summary/node_partition.h"
#include "summary/summary.h"

namespace rdfsum::summary {

/// Pre-substrate reference implementations of every partition kind, kept
/// verbatim from before the dense-ID refactor (hash-map-per-endpoint
/// indexing). They are the differential-testing oracle for the DenseGraph
/// substrate — each Compute*Partition must produce a byte-identical
/// NodePartition (same class_of, same num_classes) — and the "before" side
/// of bench_substrate's before/after measurement. Not for production use.
NodePartition ReferenceWeakPartition(const Graph& g);
NodePartition ReferenceStrongPartition(const Graph& g);
NodePartition ReferenceTypePartition(const Graph& g);
NodePartition ReferenceTypedWeakPartition(const Graph& g,
                                          TypedSummaryMode mode);
NodePartition ReferenceTypedStrongPartition(const Graph& g,
                                            TypedSummaryMode mode);
NodePartition ReferenceBisimulationPartition(const Graph& g, uint32_t depth,
                                             bool use_types);

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_REFERENCE_PARTITION_H_
