#include "summary/node_partition.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <vector>

#include "rdf/graph_stats.h"
#include "summary/cliques.h"
#include "summary/union_find.h"

namespace rdfsum::summary {
namespace {

/// Visits every data node of `g` in the canonical order used for class-id
/// assignment: data triples (subject then object), then type subjects.
template <typename Fn>
void ForEachDataNodeInOrder(const Graph& g, Fn&& fn) {
  for (const Triple& t : g.data()) {
    fn(t.s);
    fn(t.o);
  }
  for (const Triple& t : g.types()) fn(t.s);
}

/// Dense indexing of data nodes in canonical order.
struct NodeIndex {
  std::unordered_map<TermId, uint32_t> index_of;
  std::vector<TermId> nodes;

  explicit NodeIndex(const Graph& g) {
    ForEachDataNodeInOrder(g, [&](TermId n) {
      if (index_of.emplace(n, static_cast<uint32_t>(nodes.size())).second) {
        nodes.push_back(n);
      }
    });
  }
};

/// Renumbers an arbitrary raw-class assignment into dense, canonical ids.
NodePartition Finalize(const Graph& g,
                       const std::unordered_map<TermId, uint32_t>& raw) {
  NodePartition out;
  std::unordered_map<uint32_t, uint32_t> remap;
  ForEachDataNodeInOrder(g, [&](TermId n) {
    if (out.class_of.count(n)) return;
    uint32_t raw_class = raw.at(n);
    auto [it, inserted] =
        remap.emplace(raw_class, static_cast<uint32_t>(remap.size()));
    out.class_of.emplace(n, it->second);
  });
  out.num_classes = static_cast<uint32_t>(remap.size());
  return out;
}

/// Sorted class set of every typed resource.
std::unordered_map<TermId, std::vector<TermId>> ClassSets(const Graph& g) {
  std::unordered_map<TermId, std::vector<TermId>> out;
  for (const Triple& t : g.types()) out[t.s].push_back(t.o);
  for (auto& [node, classes] : out) {
    std::sort(classes.begin(), classes.end());
    classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  }
  return out;
}

constexpr uint32_t kUnassigned = 0xFFFFFFFFu;

}  // namespace

NodePartition ComputeWeakPartition(const Graph& g) {
  NodeIndex idx(g);
  UnionFind uf(static_cast<uint32_t>(idx.nodes.size()));
  std::unordered_map<TermId, uint32_t> source_anchor;  // property -> node idx
  std::unordered_map<TermId, uint32_t> target_anchor;
  for (const Triple& t : g.data()) {
    uint32_t si = idx.index_of.at(t.s);
    uint32_t oi = idx.index_of.at(t.o);
    auto [sit, s_new] = source_anchor.emplace(t.p, si);
    if (!s_new) uf.Union(si, sit->second);
    auto [tit, t_new] = target_anchor.emplace(t.p, oi);
    if (!t_new) uf.Union(oi, tit->second);
  }
  // Typed-only resources (no data property at all) all map to Nτ: a single
  // shared raw class.
  std::unordered_set<TermId> in_data;
  for (const Triple& t : g.data()) {
    in_data.insert(t.s);
    in_data.insert(t.o);
  }
  uint32_t ntau_raw = uf.size();  // any id distinct from all UF roots
  std::unordered_map<TermId, uint32_t> raw;
  ForEachDataNodeInOrder(g, [&](TermId n) {
    if (raw.count(n)) return;
    if (in_data.count(n)) {
      raw.emplace(n, uf.Find(idx.index_of.at(n)));
    } else {
      raw.emplace(n, ntau_raw);
    }
  });
  return Finalize(g, raw);
}

NodePartition ComputeStrongPartition(const Graph& g) {
  PropertyCliques cliques = ComputePropertyCliques(g, CliqueScope::kAll);
  // Raw class = dense id of the (source clique, target clique) pair; the
  // (0,0) pair covers typed-only resources, realizing Nτ.
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> pair_class;
  std::unordered_map<TermId, uint32_t> raw;
  ForEachDataNodeInOrder(g, [&](TermId n) {
    if (raw.count(n)) return;
    std::pair<uint32_t, uint32_t> key{cliques.SourceCliqueOf(n),
                                      cliques.TargetCliqueOf(n)};
    auto [it, inserted] =
        pair_class.emplace(key, static_cast<uint32_t>(pair_class.size()));
    raw.emplace(n, it->second);
  });
  return Finalize(g, raw);
}

NodePartition ComputeTypePartition(const Graph& g) {
  auto class_sets = ClassSets(g);
  std::map<std::vector<TermId>, uint32_t> set_class;
  std::unordered_map<TermId, uint32_t> raw;
  uint32_t next = 0;
  ForEachDataNodeInOrder(g, [&](TermId n) {
    if (raw.count(n)) return;
    auto it = class_sets.find(n);
    if (it == class_sets.end()) {
      raw.emplace(n, next++);  // untyped: fresh class per node (C(∅))
    } else {
      auto [sit, inserted] = set_class.emplace(it->second, kUnassigned);
      if (inserted) sit->second = next++;
      raw.emplace(n, sit->second);
    }
  });
  return Finalize(g, raw);
}

namespace {

/// Shared scaffolding for TW/TS: typed nodes are grouped by class set; the
/// untyped ones by the `assign_untyped` callback, which returns a raw class
/// id in a namespace disjoint from the typed ids.
template <typename AssignUntyped>
NodePartition TypedPartition(const Graph& g, AssignUntyped&& assign_untyped) {
  auto class_sets = ClassSets(g);
  std::map<std::vector<TermId>, uint32_t> set_class;
  std::unordered_map<TermId, uint32_t> raw;
  uint32_t next_typed = 0;
  constexpr uint32_t kUntypedBase = 0x80000000u;
  ForEachDataNodeInOrder(g, [&](TermId n) {
    if (raw.count(n)) return;
    auto it = class_sets.find(n);
    if (it != class_sets.end()) {
      auto [sit, inserted] = set_class.emplace(it->second, kUnassigned);
      if (inserted) sit->second = next_typed++;
      raw.emplace(n, sit->second);
    } else {
      raw.emplace(n, kUntypedBase + assign_untyped(n));
    }
  });
  return Finalize(g, raw);
}

}  // namespace

NodePartition ComputeTypedWeakPartition(const Graph& g,
                                        TypedSummaryMode mode) {
  std::unordered_set<TermId> typed = TypedResources(g);
  auto is_untyped = [&](TermId n) { return typed.count(n) == 0; };

  NodeIndex idx(g);
  UnionFind uf(static_cast<uint32_t>(idx.nodes.size()));
  std::unordered_map<TermId, uint32_t> source_anchor;
  std::unordered_map<TermId, uint32_t> target_anchor;
  std::unordered_set<TermId> covered;  // untyped nodes that took part
  for (const Triple& t : g.data()) {
    bool s_ok, o_ok;
    if (mode == TypedSummaryMode::kPerPropertyProjection) {
      s_ok = is_untyped(t.s);
      o_ok = is_untyped(t.o);
    } else {
      bool both = is_untyped(t.s) && is_untyped(t.o);
      s_ok = both;
      o_ok = both;
    }
    if (s_ok) {
      uint32_t si = idx.index_of.at(t.s);
      covered.insert(t.s);
      auto [it, fresh] = source_anchor.emplace(t.p, si);
      if (!fresh) uf.Union(si, it->second);
    }
    if (o_ok) {
      uint32_t oi = idx.index_of.at(t.o);
      covered.insert(t.o);
      auto [it, fresh] = target_anchor.emplace(t.p, oi);
      if (!fresh) uf.Union(oi, it->second);
    }
  }
  uint32_t ntau_raw = uf.size();
  return TypedPartition(g, [&](TermId n) -> uint32_t {
    if (covered.count(n)) return uf.Find(idx.index_of.at(n));
    // Untyped node outside the projection (only possible in
    // kUntypedDataGraph mode): collapses into Nτ.
    return ntau_raw;
  });
}

NodePartition ComputeBisimulationPartition(const Graph& g, uint32_t depth,
                                           bool use_types) {
  NodeIndex idx(g);
  const uint32_t n = static_cast<uint32_t>(idx.nodes.size());

  // Seed colors: class-set hash (or a shared constant).
  std::vector<uint64_t> color(n, 0x9E3779B97F4A7C15ULL);
  if (use_types) {
    auto class_sets = ClassSets(g);
    for (uint32_t i = 0; i < n; ++i) {
      auto it = class_sets.find(idx.nodes[i]);
      if (it == class_sets.end()) continue;
      uint64_t h = 0x12345;
      for (TermId c : it->second) {
        h ^= c + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      }
      color[i] = h;
    }
  }

  // Pre-index adjacency as (direction, property, neighbor index).
  struct Adj {
    bool out;
    TermId p;
    uint32_t other;
  };
  std::vector<std::vector<Adj>> adj(n);
  for (const Triple& t : g.data()) {
    uint32_t si = idx.index_of.at(t.s);
    uint32_t oi = idx.index_of.at(t.o);
    adj[si].push_back({true, t.p, oi});
    adj[oi].push_back({false, t.p, si});
  }

  for (uint32_t round = 0; round < depth; ++round) {
    std::vector<uint64_t> next(n);
    for (uint32_t i = 0; i < n; ++i) {
      std::vector<std::tuple<int, TermId, uint64_t>> sig;
      sig.reserve(adj[i].size());
      for (const Adj& a : adj[i]) {
        sig.emplace_back(a.out ? 1 : 0, a.p, color[a.other]);
      }
      std::sort(sig.begin(), sig.end());
      sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
      uint64_t h = color[i] * 0xBF58476D1CE4E5B9ULL + 0x94D049BB133111EBULL;
      for (const auto& [dir, p, c] : sig) {
        h ^= (static_cast<uint64_t>(dir) * 0x2545F4914F6CDD1DULL + p) +
             0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
        h ^= c + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      }
      next[i] = h;
    }
    color = std::move(next);
  }

  std::unordered_map<TermId, uint32_t> raw;
  std::unordered_map<uint64_t, uint32_t> color_class;
  for (uint32_t i = 0; i < n; ++i) {
    auto [it, inserted] = color_class.emplace(
        color[i], static_cast<uint32_t>(color_class.size()));
    raw.emplace(idx.nodes[i], it->second);
  }
  return Finalize(g, raw);
}

NodePartition ComputeTypedStrongPartition(const Graph& g,
                                          TypedSummaryMode mode) {
  std::unordered_set<TermId> typed = TypedResources(g);
  CliqueScope scope = mode == TypedSummaryMode::kPerPropertyProjection
                          ? CliqueScope::kUntypedEndpoints
                          : CliqueScope::kUntypedDataGraph;
  PropertyCliques cliques = ComputePropertyCliques(g, scope, &typed);
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> pair_class;
  return TypedPartition(g, [&](TermId n) -> uint32_t {
    std::pair<uint32_t, uint32_t> key{cliques.SourceCliqueOf(n),
                                      cliques.TargetCliqueOf(n)};
    auto [it, inserted] =
        pair_class.emplace(key, static_cast<uint32_t>(pair_class.size()));
    return it->second;
  });
}

}  // namespace rdfsum::summary
