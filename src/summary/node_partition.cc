#include "summary/node_partition.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "rdf/dense_graph.h"
#include "summary/cliques.h"
#include "summary/union_find.h"
#include "util/parallel_for.h"

// All partition kinds run on the DenseGraph substrate (Graph::Dense()):
// flat arrays indexed by dense node / property id instead of per-algorithm
// unordered_map scaffolding. The canonical class-id semantics are unchanged
// — dense node id order *is* the canonical first-encounter order — and every
// function must stay byte-identical to its reference_partition.h oracle
// (enforced by tests/dense_graph_test.cc).

namespace rdfsum::summary {
namespace {

constexpr uint32_t kNone = DenseGraph::kNone;

/// Renumbers a raw class assignment (by dense node id, raw ids < `bound`)
/// into dense canonical ids: class ids are assigned in first-encounter order
/// over dense node ids, which is exactly the old ForEachDataNodeInOrder walk.
NodePartition Finalize(const DenseGraph& dg, const std::vector<uint32_t>& raw,
                       uint32_t bound) {
  NodePartition out;
  const uint32_t n = dg.num_nodes();
  std::vector<uint32_t> remap(bound, kNone);
  uint32_t next = 0;
  out.class_of.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t& cls = remap[raw[i]];
    if (cls == kNone) cls = next++;
    out.class_of.emplace(dg.term_of(i), cls);
  }
  out.num_classes = next;
  return out;
}

/// Weak-style union-find over data endpoints: every subject (resp. object)
/// of a property is merged with the property's first-seen subject (resp.
/// object). `in_scope(node)` gates which endpoints participate; `covered` is
/// set for every endpoint that did.
void UnionPerProperty(const DenseGraph& dg, UnionFind& uf,
                      const std::vector<uint8_t>* untyped, bool require_both,
                      std::vector<uint8_t>* covered) {
  if (untyped == nullptr) {
    // Unscoped: the substrate's first-seen anchors are exactly the per-
    // property union seeds, so no local anchor state is needed at all.
    for (const DenseGraph::Edge& e : dg.data_edges()) {
      uf.Union(e.s, dg.SourceAnchor(e.p));
      uf.Union(e.o, dg.TargetAnchor(e.p));
    }
    return;
  }
  const uint32_t p = dg.num_properties();
  std::vector<uint32_t> src_anchor(p, kNone);
  std::vector<uint32_t> tgt_anchor(p, kNone);
  for (const DenseGraph::Edge& e : dg.data_edges()) {
    bool s_ok, o_ok;
    if (require_both) {
      bool both = (*untyped)[e.s] && (*untyped)[e.o];
      s_ok = both;
      o_ok = both;
    } else {
      s_ok = (*untyped)[e.s] != 0;
      o_ok = (*untyped)[e.o] != 0;
    }
    if (s_ok) {
      if (covered != nullptr) (*covered)[e.s] = 1;
      if (src_anchor[e.p] == kNone) {
        src_anchor[e.p] = e.s;
      } else {
        uf.Union(e.s, src_anchor[e.p]);
      }
    }
    if (o_ok) {
      if (covered != nullptr) (*covered)[e.o] = 1;
      if (tgt_anchor[e.p] == kNone) {
        tgt_anchor[e.p] = e.o;
      } else {
        uf.Union(e.o, tgt_anchor[e.p]);
      }
    }
  }
}

/// Untyped flags by dense node id (the complement of IsTyped).
std::vector<uint8_t> UntypedFlags(const DenseGraph& dg) {
  std::vector<uint8_t> untyped(dg.num_nodes());
  for (uint32_t i = 0; i < dg.num_nodes(); ++i) untyped[i] = !dg.IsTyped(i);
  return untyped;
}

/// Shared scaffolding for TW/TS: typed nodes are grouped by their dense
/// class-set id; untyped ones by `assign_untyped(node)`, whose ids live in a
/// namespace disjoint from the class-set ids and are bounded by
/// `untyped_bound`.
template <typename AssignUntyped>
NodePartition TypedPartition(const DenseGraph& dg, uint32_t untyped_bound,
                             AssignUntyped&& assign_untyped) {
  const uint32_t n = dg.num_nodes();
  const uint32_t base = dg.num_class_sets();
  std::vector<uint32_t> raw(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t set_id = dg.ClassSetId(i);
    raw[i] = set_id != kNone ? set_id : base + assign_untyped(i);
  }
  return Finalize(dg, raw, base + untyped_bound);
}

}  // namespace

NodePartition ComputeWeakPartition(const Graph& g) {
  const DenseGraph& dg = g.Dense();
  UnionFind uf(dg.num_nodes());
  UnionPerProperty(dg, uf, nullptr, false, nullptr);
  return WeakPartitionFromUnionFind(dg, uf);
}

NodePartition WeakPartitionFromUnionFind(const DenseGraph& dg, UnionFind& uf) {
  // Typed-only resources (no data property at all) all map to Nτ: a single
  // shared raw class with id n, distinct from every union-find root.
  const uint32_t n = dg.num_nodes();
  std::vector<uint32_t> raw(n);
  for (uint32_t i = 0; i < n; ++i) {
    raw[i] = dg.HasData(i) ? uf.Find(i) : n;
  }
  return Finalize(dg, raw, n + 1);
}

NodePartition WeakPartitionFromRoots(const DenseGraph& dg,
                                     const std::vector<uint32_t>& root_of) {
  const uint32_t n = dg.num_nodes();
  std::vector<uint32_t> raw(n);
  for (uint32_t i = 0; i < n; ++i) {
    raw[i] = dg.HasData(i) ? root_of[i] : n;
  }
  return Finalize(dg, raw, n + 1);
}

NodePartition ComputeStrongPartition(const Graph& g) {
  const DenseGraph& dg = g.Dense();
  DenseCliqueAssignment cliques =
      ComputeDenseCliqueAssignment(dg, CliqueScope::kAll);
  // Raw class = dense id of the (source clique, target clique) pair; the
  // (0,0) pair covers typed-only resources, realizing Nτ.
  const uint32_t n = dg.num_nodes();
  std::unordered_map<uint64_t, uint32_t> pair_class;
  std::vector<uint32_t> raw(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t key = (static_cast<uint64_t>(cliques.source_clique_of_node[i])
                    << 32) |
                   cliques.target_clique_of_node[i];
    auto [it, inserted] =
        pair_class.emplace(key, static_cast<uint32_t>(pair_class.size()));
    raw[i] = it->second;
  }
  return Finalize(dg, raw, static_cast<uint32_t>(pair_class.size()));
}

NodePartition ComputeTypePartition(const Graph& g) {
  // Typed resources by exact class set; every untyped data node a fresh
  // singleton (C(∅) is fresh per node).
  const DenseGraph& dg = g.Dense();
  return TypedPartition(dg, dg.num_nodes(), [](uint32_t i) { return i; });
}

NodePartition ComputeTypedWeakPartition(const Graph& g,
                                        TypedSummaryMode mode) {
  const DenseGraph& dg = g.Dense();
  const uint32_t n = dg.num_nodes();
  std::vector<uint8_t> untyped = UntypedFlags(dg);
  std::vector<uint8_t> covered(n, 0);
  UnionFind uf(n);
  UnionPerProperty(dg, uf, &untyped,
                   mode != TypedSummaryMode::kPerPropertyProjection, &covered);
  // Untyped nodes outside the projection (only possible in kUntypedDataGraph
  // mode) collapse into Nτ, raw id n.
  return TypedPartition(dg, n + 1, [&](uint32_t i) -> uint32_t {
    return covered[i] ? uf.Find(i) : n;
  });
}

NodePartition ComputeTypedStrongPartition(const Graph& g,
                                          TypedSummaryMode mode) {
  const DenseGraph& dg = g.Dense();
  CliqueScope scope = mode == TypedSummaryMode::kPerPropertyProjection
                          ? CliqueScope::kUntypedEndpoints
                          : CliqueScope::kUntypedDataGraph;
  DenseCliqueAssignment cliques = ComputeDenseCliqueAssignment(dg, scope);
  std::unordered_map<uint64_t, uint32_t> pair_class;
  return TypedPartition(dg, dg.num_nodes() + 1, [&](uint32_t i) -> uint32_t {
    uint64_t key = (static_cast<uint64_t>(cliques.source_clique_of_node[i])
                    << 32) |
                   cliques.target_clique_of_node[i];
    auto [it, inserted] =
        pair_class.emplace(key, static_cast<uint32_t>(pair_class.size()));
    return it->second;
  });
}

NodePartition ComputeBisimulationPartition(const Graph& g, uint32_t depth,
                                           bool use_types,
                                           BisimulationDirection direction,
                                           uint32_t num_threads,
                                           util::ExecContext* exec) {
  const DenseGraph& dg = g.Dense();
  const uint32_t n = dg.num_nodes();
  const uint32_t threads = util::ResolveThreadCount(num_threads, n);

  // Seed colors: class-set hash (or a shared constant). The hash formula
  // matches the reference implementation so seed grouping is identical.
  std::vector<uint64_t> color(n, 0x9E3779B97F4A7C15ULL);
  if (use_types) {
    for (uint32_t i = 0; i < n; ++i) {
      std::span<const TermId> classes = dg.ClassesOf(i);
      if (classes.empty()) continue;
      uint64_t h = 0x12345;
      for (TermId c : classes) {
        h ^= c + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      }
      color[i] = h;
    }
  }

  // Refinement rounds over the CSR adjacency, sharded over dense node-id
  // ranges: each round reads the previous colors and writes disjoint slices
  // of `next`, and the shard join is the re-labeling barrier before the
  // buffers swap. Signatures use dense property ids — a bijective
  // relabeling of the reference's TermIds, so equivalence classes (and
  // therefore the canonical partition) are unchanged.
  const bool fwd = direction != BisimulationDirection::kBackward;
  const bool bwd = direction != BisimulationDirection::kForward;
  std::vector<uint64_t> next(n);
  for (uint32_t round = 0; round < depth; ++round) {
    util::ParallelForRanges(
        threads, n, [&](uint32_t, uint64_t begin, uint64_t end) {
          std::vector<std::tuple<int, uint32_t, uint64_t>> sig;
          // Workers that observe cancellation stop mid-shard and fall
          // through to the round barrier; the partial `next` slice is
          // discarded below.
          util::CancellableChunks(exec, begin, end, [&](uint64_t cb,
                                                        uint64_t ce) {
            for (uint64_t node = cb; node < ce; ++node) {
              const uint32_t i = static_cast<uint32_t>(node);
              sig.clear();
              if (bwd) {
                for (const DenseGraph::Neighbor& a : dg.InEdges(i)) {
                  sig.emplace_back(0, a.p, color[a.node]);
                }
              }
              if (fwd) {
                for (const DenseGraph::Neighbor& a : dg.OutEdges(i)) {
                  sig.emplace_back(1, a.p, color[a.node]);
                }
              }
              std::sort(sig.begin(), sig.end());
              sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
              uint64_t h =
                  color[i] * 0xBF58476D1CE4E5B9ULL + 0x94D049BB133111EBULL;
              for (const auto& [dir, p, c] : sig) {
                h ^= (static_cast<uint64_t>(dir) * 0x2545F4914F6CDD1DULL +
                      p) +
                     0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
                h ^= c + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
              }
              next[i] = h;
            }
          });
        });
    if (exec != nullptr && !exec->Check().ok()) return NodePartition{};
    color.swap(next);
  }

  std::unordered_map<uint64_t, uint32_t> color_class;
  color_class.reserve(n);
  std::vector<uint32_t> raw(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto [it, inserted] = color_class.emplace(
        color[i], static_cast<uint32_t>(color_class.size()));
    raw[i] = it->second;
  }
  return Finalize(dg, raw, static_cast<uint32_t>(color_class.size()));
}

}  // namespace rdfsum::summary
