#include "summary/maintenance.h"

#include <algorithm>

namespace rdfsum::summary {

WeakSummaryMaintainer::WeakSummaryMaintainer(
    std::shared_ptr<Dictionary> dict, const IncrementalWeakOptions& options)
    : dict_(std::move(dict)), vocab_(*dict_), options_(options) {}

WeakSummaryMaintainer::WeakSummaryMaintainer(
    const Graph& initial, const IncrementalWeakOptions& options)
    : WeakSummaryMaintainer(initial.dict_ptr(), options) {
  initial.ForEachTriple([this](const Triple& t) { AddTriple(t); });
}

void WeakSummaryMaintainer::AddTriple(const Triple& t) {
  ++triples_seen_;
  if (vocab_.IsSchemaProperty(t.p)) {
    if (schema_seen_.insert(t).second) schema_.push_back(t);
    return;
  }
  if (vocab_.IsType(t.p)) {
    auto it = rd_.find(t.s);
    if (it != rd_.end()) {
      dcls_[it->second].insert(t.o);
    } else {
      pending_typed_only_[t.s].insert(t.o);
    }
    return;
  }
  // Data triple: Algorithm 1, one step. If either endpoint was waiting in
  // the typed-only pool, it becomes a real node and takes its classes along.
  GetSource(t.s, t.p);
  GetTarget(t.o, t.p);
  NodeId src = GetSource(t.s, t.p);
  NodeId targ = GetTarget(t.o, t.p);
  if (!dtp_.count(t.p)) {
    dtp_.emplace(t.p, DataTriple{src, t.p, targ});
    dp_src_.emplace(t.p, src);
    src_dps_[src].insert(t.p);
    dp_targ_.emplace(t.p, targ);
    targ_dps_[targ].insert(t.p);
  }
}

WeakSummaryMaintainer::NodeId WeakSummaryMaintainer::GetSource(TermId s,
                                                               TermId p) {
  NodeId src_u = Get(dp_src_, p);
  NodeId src_s = Get(rd_, s);
  if (src_u == kNoNode && src_s == kNoNode) {
    NodeId fresh = CreateDataNode(s);
    dp_src_[p] = fresh;
    src_dps_[fresh].insert(p);
    return fresh;
  }
  if (src_u != kNoNode && src_s == kNoNode) {
    Represent(s, src_u);
    return src_u;
  }
  if (src_u == kNoNode && src_s != kNoNode) {
    dp_src_[p] = src_s;
    src_dps_[src_s].insert(p);
    return src_s;
  }
  if (src_s == src_u) return src_s;
  return MergeDataNodes(src_s, src_u);
}

WeakSummaryMaintainer::NodeId WeakSummaryMaintainer::GetTarget(TermId o,
                                                               TermId p) {
  NodeId targ_u = Get(dp_targ_, p);
  NodeId targ_o = Get(rd_, o);
  if (targ_u == kNoNode && targ_o == kNoNode) {
    NodeId fresh = CreateDataNode(o);
    dp_targ_[p] = fresh;
    targ_dps_[fresh].insert(p);
    return fresh;
  }
  if (targ_u != kNoNode && targ_o == kNoNode) {
    Represent(o, targ_u);
    return targ_u;
  }
  if (targ_u == kNoNode && targ_o != kNoNode) {
    dp_targ_[p] = targ_o;
    targ_dps_[targ_o].insert(p);
    return targ_o;
  }
  if (targ_o == targ_u) return targ_o;
  return MergeDataNodes(targ_o, targ_u);
}

WeakSummaryMaintainer::NodeId WeakSummaryMaintainer::CreateDataNode(TermId r) {
  NodeId d = next_node_++;
  Represent(r, d);
  return d;
}

void WeakSummaryMaintainer::Represent(TermId r, NodeId d) {
  rd_[r] = d;
  dr_[d].push_back(r);
  // Migrate classes accumulated while r was typed-only.
  auto pit = pending_typed_only_.find(r);
  if (pit != pending_typed_only_.end()) {
    dcls_[d].insert(pit->second.begin(), pit->second.end());
    pending_typed_only_.erase(pit);
  }
}

size_t WeakSummaryMaintainer::EdgeCount(NodeId n) const {
  size_t count = 0;
  auto s = src_dps_.find(n);
  if (s != src_dps_.end()) count += s->second.size();
  auto t = targ_dps_.find(n);
  if (t != targ_dps_.end()) count += t->second.size();
  return count;
}

WeakSummaryMaintainer::NodeId WeakSummaryMaintainer::MergeDataNodes(NodeId a,
                                                                    NodeId b) {
  NodeId keep = a, drop = b;
  if (options_.merge_smaller_node && EdgeCount(a) < EdgeCount(b)) {
    std::swap(keep, drop);
  }
  auto dit = dr_.find(drop);
  if (dit != dr_.end()) {
    auto& keep_list = dr_[keep];
    for (TermId r : dit->second) {
      rd_[r] = keep;
      keep_list.push_back(r);
    }
    dr_.erase(dit);
  }
  auto sit = src_dps_.find(drop);
  if (sit != src_dps_.end()) {
    auto& keep_set = src_dps_[keep];
    for (TermId p : sit->second) {
      dp_src_[p] = keep;
      auto t = dtp_.find(p);
      if (t != dtp_.end() && t->second.src == drop) t->second.src = keep;
      keep_set.insert(p);
    }
    src_dps_.erase(sit);
  }
  auto tit = targ_dps_.find(drop);
  if (tit != targ_dps_.end()) {
    auto& keep_set = targ_dps_[keep];
    for (TermId p : tit->second) {
      dp_targ_[p] = keep;
      auto t = dtp_.find(p);
      if (t != dtp_.end() && t->second.targ == drop) t->second.targ = keep;
      keep_set.insert(p);
    }
    targ_dps_.erase(tit);
  }
  auto cit = dcls_.find(drop);
  if (cit != dcls_.end()) {
    dcls_[keep].insert(cit->second.begin(), cit->second.end());
    dcls_.erase(cit);
  }
  return keep;
}

uint64_t WeakSummaryMaintainer::num_summary_nodes() const {
  return dr_.size() + (pending_typed_only_.empty() ? 0 : 1);
}

SummaryResult WeakSummaryMaintainer::Snapshot() const {
  SummaryResult out;
  out.kind = SummaryKind::kWeak;
  out.graph = Graph(dict_);
  Dictionary& dict = out.graph.dict();

  std::unordered_map<NodeId, TermId> node_uri;
  auto uri_of = [&](NodeId d) {
    auto [it, inserted] = node_uri.emplace(d, kInvalidTermId);
    if (inserted) it->second = dict.MintNodeUri("node:w");
    return it->second;
  };
  for (const auto& [p, dt] : dtp_) {
    out.graph.Add(Triple{uri_of(dt.src), p, uri_of(dt.targ)});
  }
  const TermId rdf_type = vocab_.rdf_type;
  for (const auto& [d, classes] : dcls_) {
    for (TermId c : classes) out.graph.Add(Triple{uri_of(d), rdf_type, c});
  }
  // The typed-only pool materializes as a single Nτ node (Algorithm 3).
  if (!pending_typed_only_.empty()) {
    TermId ntau = dict.MintNodeUri("node:w");
    for (const auto& [r, classes] : pending_typed_only_) {
      out.node_map.emplace(r, ntau);
      for (TermId c : classes) {
        out.graph.Add(Triple{ntau, rdf_type, c});
      }
    }
    if (options_.record_members) {
      auto& v = out.members[ntau];
      for (const auto& [r, classes] : pending_typed_only_) v.push_back(r);
    }
  }
  for (const Triple& t : schema_) out.graph.Add(t);
  for (const auto& [r, d] : rd_) out.node_map.emplace(r, uri_of(d));
  if (options_.record_members) {
    for (const auto& [d, rs] : dr_) {
      auto& v = out.members[uri_of(d)];
      v.insert(v.end(), rs.begin(), rs.end());
    }
  }
  out.stats = ComputeSummaryStats(out.graph, 0.0);
  return out;
}

WeakSummaryMaintainer::NodeId WeakSummaryMaintainer::Get(
    const std::unordered_map<TermId, NodeId>& m, TermId k) {
  auto it = m.find(k);
  return it == m.end() ? kNoNode : it->second;
}

}  // namespace rdfsum::summary
