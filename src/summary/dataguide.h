#ifndef RDFSUM_SUMMARY_DATAGUIDE_H_
#define RDFSUM_SUMMARY_DATAGUIDE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rdf/graph.h"
#include "util/statusor.h"

namespace rdfsum::summary {

/// Options for strong-Dataguide construction.
struct DataguideOptions {
  /// Construction is the powerset determinization of [10]/[17], which is
  /// worst-case exponential; abort once this many states exist.
  uint64_t max_states = 100'000;
  /// Record, per state, the set of graph nodes it stands for (the "target
  /// set" of Goldman & Widom).
  bool record_extents = false;
};

/// A strong Dataguide over the data component of an RDF graph.
struct DataguideResult {
  /// The guide as an RDF graph: minted state URIs connected by the original
  /// data properties. State 0 is the synthetic root.
  Graph graph;
  uint64_t num_states = 0;
  uint64_t num_edges = 0;
  /// Minted URI of the root state.
  TermId root = kInvalidTermId;
  /// State URI -> graph nodes in its target set (iff record_extents).
  std::unordered_map<TermId, std::vector<TermId>> extents;
};

/// Builds the strong Dataguide of g's data component — the §8 baseline from
/// semistructured data ([10] Goldman & Widom; construction shown in [17] to
/// be NFA->DFA determinization, hence the max_states guard).
///
/// RDF graphs have no root, which the paper points out as a mismatch; we
/// follow the usual adaptation of adding a synthetic root with an edge to
/// every node that has no incoming data edge (or to every subject when the
/// graph is cyclic enough to have none). Every label path from the root
/// occurs exactly once in the guide, and the guide's paths are exactly the
/// graph's paths — the invariant the tests check.
///
/// Returns NotSupported when max_states is exceeded (that blow-up is itself
/// one of the observations motivating the paper's quotient summaries).
StatusOr<DataguideResult> BuildStrongDataguide(
    const Graph& g, const DataguideOptions& options = {});

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_DATAGUIDE_H_
