#include "summary/incremental_weak.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/dense_graph.h"
#include "util/timer.h"

// Both incremental builders run on the DenseGraph substrate: resources and
// properties are dense ids, and the paper's rd / dp-src / dp-targ maps are
// flat vectors instead of per-builder unordered_maps. A key invariant makes
// the property-attachment sets (`src_dps_` / `targ_dps_`) plain vectors: a
// property is attached to exactly one summary node per side (`dp_src_[p]`),
// so per-node attachment lists are disjoint and never need de-duplication.

namespace rdfsum::summary {
namespace {

/// Internal summary-node id (NEWINTEGER() in the paper); decoupled from
/// TermIds until the final graph is assembled.
using NodeId = uint32_t;
constexpr NodeId kNoNode = 0xFFFFFFFFu;

class Builder {
 public:
  Builder(const Graph& g, const IncrementalWeakOptions& options)
      : g_(g), dg_(g.Dense()), options_(options) {}

  SummaryResult Build() {
    Timer timer;
    const uint32_t n = dg_.num_nodes();
    const uint32_t p = dg_.num_properties();
    rd_.assign(n, kNoNode);
    dp_src_.assign(p, kNoNode);
    dp_targ_.assign(p, kNoNode);
    dtp_src_.assign(p, kNoNode);
    dtp_targ_.assign(p, kNoNode);
    SummarizeDataTriples();
    SummarizeTypeTriples();
    SummaryResult out = Assemble();
    out.stats.build_seconds = timer.ElapsedSeconds();
    return out;
  }

 private:
  // ---- Algorithm 1: summarizing data triples ----
  void SummarizeDataTriples() {
    for (const DenseGraph::Edge& e : dg_.data_edges()) {
      GetSource(e.s, e.p);
      GetTarget(e.o, e.p);
      // GETTARGET may have merged the node GETSOURCE returned (and
      // vice-versa), so re-resolve both before recording the edge
      // (lines 5-7 of Algorithm 1).
      NodeId src = GetSource(e.s, e.p);
      NodeId targ = GetTarget(e.o, e.p);
      if (dtp_src_[e.p] == kNoNode) {
        dtp_src_[e.p] = src;
        dtp_targ_[e.p] = targ;
      }
      // Property 4 guarantees a single data edge per property; if the edge
      // exists, src/targ already coincide with its endpoints by the merges
      // above.
    }
  }

  // ---- Algorithm 2: representing a subject (GETSOURCE) ----
  NodeId GetSource(uint32_t s, uint32_t p) {
    NodeId src_u = dp_src_[p];
    NodeId src_s = rd_[s];
    if (src_u == kNoNode && src_s == kNoNode) {
      NodeId fresh = CreateDataNode(s);
      dp_src_[p] = fresh;
      src_dps_[fresh].push_back(p);
      return fresh;
    }
    if (src_u != kNoNode && src_s == kNoNode) {
      Represent(s, src_u);
      return src_u;
    }
    if (src_u == kNoNode && src_s != kNoNode) {
      dp_src_[p] = src_s;
      src_dps_[src_s].push_back(p);
      return src_s;
    }
    if (src_s == src_u) return src_s;
    return MergeDataNodes(src_s, src_u);
  }

  NodeId GetTarget(uint32_t o, uint32_t p) {
    NodeId targ_u = dp_targ_[p];
    NodeId targ_o = rd_[o];
    if (targ_u == kNoNode && targ_o == kNoNode) {
      NodeId fresh = CreateDataNode(o);
      dp_targ_[p] = fresh;
      targ_dps_[fresh].push_back(p);
      return fresh;
    }
    if (targ_u != kNoNode && targ_o == kNoNode) {
      Represent(o, targ_u);
      return targ_u;
    }
    if (targ_u == kNoNode && targ_o != kNoNode) {
      dp_targ_[p] = targ_o;
      targ_dps_[targ_o].push_back(p);
      return targ_o;
    }
    if (targ_o == targ_u) return targ_o;
    return MergeDataNodes(targ_o, targ_u);
  }

  NodeId CreateDataNode(uint32_t r) {
    NodeId d = next_node_++;
    dr_.emplace_back();
    src_dps_.emplace_back();
    targ_dps_.emplace_back();
    Represent(r, d);
    return d;
  }

  void Represent(uint32_t r, NodeId d) {
    rd_[r] = d;
    dr_[d].push_back(r);
  }

  size_t EdgeCount(NodeId n) const {
    return src_dps_[n].size() + targ_dps_[n].size();
  }

  /// Merges two summary nodes; the survivor absorbs the other's represented
  /// resources and property attachments ("replaces the node with less
  /// edges"). Returns the surviving node.
  NodeId MergeDataNodes(NodeId a, NodeId b) {
    NodeId keep = a;
    NodeId drop = b;
    if (options_.merge_smaller_node && EdgeCount(a) < EdgeCount(b)) {
      keep = b;
      drop = a;
    }
    // Re-point represented resources.
    for (uint32_t r : dr_[drop]) rd_[r] = keep;
    Absorb(&dr_[keep], &dr_[drop]);
    // Re-point property attachments and the summary edges.
    for (uint32_t p : src_dps_[drop]) {
      dp_src_[p] = keep;
      if (dtp_src_[p] == drop) dtp_src_[p] = keep;
    }
    Absorb(&src_dps_[keep], &src_dps_[drop]);
    for (uint32_t p : targ_dps_[drop]) {
      dp_targ_[p] = keep;
      if (dtp_targ_[p] == drop) dtp_targ_[p] = keep;
    }
    Absorb(&targ_dps_[keep], &targ_dps_[drop]);
    // Class sets (only non-empty once type triples are processed; merges
    // do not happen then for W, but keep it correct anyway).
    auto cit = dcls_.find(drop);
    if (cit != dcls_.end()) {
      dcls_[keep].insert(cit->second.begin(), cit->second.end());
      dcls_.erase(cit);
    }
    return keep;
  }

  static void Absorb(std::vector<uint32_t>* into, std::vector<uint32_t>* from) {
    into->insert(into->end(), from->begin(), from->end());
    from->clear();
    from->shrink_to_fit();
  }

  // ---- Algorithm 3: summarizing type triples ----
  void SummarizeTypeTriples() {
    NodeId typed_only = kNoNode;  // REPRESENTTYPEDONLY: one shared node
    for (const Triple& t : g_.types()) {
      uint32_t s = dg_.node_of(t.s);
      if (rd_[s] != kNoNode) {
        dcls_[rd_[s]].insert(t.o);
      } else {
        if (typed_only == kNoNode) typed_only = CreateTypedOnlyNode();
        Represent(s, typed_only);
        dcls_[typed_only].insert(t.o);
      }
    }
  }

  NodeId CreateTypedOnlyNode() {
    NodeId d = next_node_++;
    dr_.emplace_back();
    src_dps_.emplace_back();
    targ_dps_.emplace_back();
    return d;
  }

  // ---- Final assembly & decoding ----
  SummaryResult Assemble() {
    SummaryResult out;
    out.kind = SummaryKind::kWeak;
    out.graph = Graph(g_.dict_ptr());
    Dictionary& dict = out.graph.dict();

    std::vector<TermId> node_uri(next_node_, kInvalidTermId);
    auto uri_of = [&](NodeId d) {
      if (node_uri[d] == kInvalidTermId) {
        node_uri[d] = dict.MintNodeUri("node:w");
      }
      return node_uri[d];
    };

    // Deterministic minting order: walk data properties in graph order,
    // then class-set holders.
    for (const DenseGraph::Edge& e : dg_.data_edges()) {
      if (dtp_src_[e.p] != kNoNode) {
        uri_of(dtp_src_[e.p]);
        uri_of(dtp_targ_[e.p]);
      }
    }
    for (uint32_t p = 0; p < dg_.num_properties(); ++p) {
      if (dtp_src_[p] != kNoNode) {
        out.graph.Add(
            Triple{uri_of(dtp_src_[p]), dg_.property_term(p),
                   uri_of(dtp_targ_[p])});
      }
    }
    const TermId rdf_type = g_.vocab().rdf_type;
    for (const auto& [d, classes] : dcls_) {
      for (TermId c : classes) {
        out.graph.Add(Triple{uri_of(d), rdf_type, c});
      }
    }
    for (const Triple& t : g_.schema()) out.graph.Add(t);

    out.node_map.reserve(dg_.num_nodes());
    for (uint32_t r = 0; r < dg_.num_nodes(); ++r) {
      if (rd_[r] != kNoNode) {
        out.node_map.emplace(dg_.term_of(r), uri_of(rd_[r]));
      }
    }
    if (options_.record_members) {
      for (NodeId d = 0; d < next_node_; ++d) {
        if (dr_[d].empty()) continue;
        auto& v = out.members[uri_of(d)];
        v.reserve(dr_[d].size());
        for (uint32_t r : dr_[d]) v.push_back(dg_.term_of(r));
      }
    }
    out.stats = ComputeSummaryStats(out.graph, 0.0);
    return out;
  }

  const Graph& g_;
  const DenseGraph& dg_;
  IncrementalWeakOptions options_;
  NodeId next_node_ = 0;

  std::vector<NodeId> rd_;  // dense resource id -> summary node
  std::vector<std::vector<uint32_t>> dr_;  // summary node -> dense resources
  std::vector<NodeId> dp_src_;   // dense property id -> summary node
  std::vector<NodeId> dp_targ_;
  // Summary node -> attached property ids (disjoint across nodes per side).
  std::vector<std::vector<uint32_t>> src_dps_;
  std::vector<std::vector<uint32_t>> targ_dps_;
  // The single summary data edge per property (kNoNode src = absent).
  std::vector<NodeId> dtp_src_;
  std::vector<NodeId> dtp_targ_;
  std::unordered_map<NodeId, std::unordered_set<TermId>> dcls_;
};

/// Incremental TW builder: types first, then data triples. Untyped
/// endpoints merge per property exactly as in the weak algorithm; typed
/// endpoints are resolved through their class-set node and never merged.
class TypedWeakBuilder {
 public:
  TypedWeakBuilder(const Graph& g, const IncrementalWeakOptions& options)
      : g_(g), dg_(g.Dense()), options_(options) {}

  SummaryResult Build() {
    Timer timer;
    const uint32_t n = dg_.num_nodes();
    const uint32_t p = dg_.num_properties();
    rd_.assign(n, kNoNode);
    dp_src_.assign(p, kNoNode);
    dp_targ_.assign(p, kNoNode);
    SummarizeTypeTriplesFirst();
    SummarizeDataTriples();
    SummaryResult out = Assemble();
    out.stats.build_seconds = timer.ElapsedSeconds();
    return out;
  }

 private:
  void SummarizeTypeTriplesFirst() {
    // One node per distinct class set (the clsd map), in canonical node
    // order; the substrate already de-duplicated the sets.
    std::vector<NodeId> node_of_set(dg_.num_class_sets(), kNoNode);
    for (uint32_t i = 0; i < dg_.num_nodes(); ++i) {
      uint32_t set_id = dg_.ClassSetId(i);
      if (set_id == DenseGraph::kNone) continue;
      NodeId& d = node_of_set[set_id];
      if (d == kNoNode) {
        d = NewNode();
        std::span<const TermId> classes = dg_.ClassesOf(i);
        dcls_[d].assign(classes.begin(), classes.end());
      }
      Represent(i, d);
    }
  }

  void SummarizeDataTriples() {
    for (const DenseGraph::Edge& e : dg_.data_edges()) {
      NodeId src = ResolveEndpoint(e.s, e.p, /*as_source=*/true);
      NodeId targ = ResolveEndpoint(e.o, e.p, /*as_source=*/false);
      // Merges inside ResolveEndpoint may have replaced earlier results;
      // re-resolve as in Algorithm 1.
      src = ResolveEndpoint(e.s, e.p, true);
      targ = ResolveEndpoint(e.o, e.p, false);
      edges_.insert({src, dg_.property_term(e.p), targ});
    }
  }

  NodeId ResolveEndpoint(uint32_t r, uint32_t p, bool as_source) {
    if (dg_.IsTyped(r)) return rd_[r];  // typed: class-set node, no merge
    auto& dp = as_source ? dp_src_ : dp_targ_;
    auto& dps = as_source ? src_dps_ : targ_dps_;
    NodeId via_prop = dp[p];
    NodeId via_res = rd_[r];
    if (via_prop == kNoNode && via_res == kNoNode) {
      NodeId fresh = NewNode();
      Represent(r, fresh);
      dp[p] = fresh;
      dps[fresh].push_back(p);
      return fresh;
    }
    if (via_prop != kNoNode && via_res == kNoNode) {
      Represent(r, via_prop);
      return via_prop;
    }
    if (via_prop == kNoNode && via_res != kNoNode) {
      dp[p] = via_res;
      dps[via_res].push_back(p);
      return via_res;
    }
    if (via_prop == via_res) return via_res;
    return Merge(via_res, via_prop);
  }

  NodeId NewNode() {
    NodeId d = next_node_++;
    dr_.emplace_back();
    src_dps_.emplace_back();
    targ_dps_.emplace_back();
    return d;
  }

  void Represent(uint32_t r, NodeId d) {
    rd_[r] = d;
    dr_[d].push_back(r);
  }

  size_t EdgeCount(NodeId n) const {
    return src_dps_[n].size() + targ_dps_[n].size();
  }

  NodeId Merge(NodeId a, NodeId b) {
    NodeId keep = a, drop = b;
    if (options_.merge_smaller_node && EdgeCount(a) < EdgeCount(b)) {
      std::swap(keep, drop);
    }
    for (uint32_t r : dr_[drop]) rd_[r] = keep;
    dr_[keep].insert(dr_[keep].end(), dr_[drop].begin(), dr_[drop].end());
    dr_[drop].clear();
    auto move_side = [&](std::vector<NodeId>& dp,
                         std::vector<std::vector<uint32_t>>& dps) {
      for (uint32_t p : dps[drop]) dp[p] = keep;
      dps[keep].insert(dps[keep].end(), dps[drop].begin(), dps[drop].end());
      dps[drop].clear();
    };
    move_side(dp_src_, src_dps_);
    move_side(dp_targ_, targ_dps_);
    // Rewrite recorded edges touching the dropped node.
    std::vector<std::tuple<NodeId, TermId, NodeId>> moved;
    for (auto it = edges_.begin(); it != edges_.end();) {
      auto [s, p, o] = *it;
      if (s == drop || o == drop) {
        moved.emplace_back(s == drop ? keep : s, p, o == drop ? keep : o);
        it = edges_.erase(it);
      } else {
        ++it;
      }
    }
    edges_.insert(moved.begin(), moved.end());
    return keep;
  }

  SummaryResult Assemble() {
    SummaryResult out;
    out.kind = SummaryKind::kTypedWeak;
    out.graph = Graph(g_.dict_ptr());
    Dictionary& dict = out.graph.dict();
    std::vector<TermId> node_uri(next_node_, kInvalidTermId);
    auto uri_of = [&](NodeId d) {
      if (node_uri[d] == kInvalidTermId) {
        node_uri[d] = dict.MintNodeUri("node:tw");
      }
      return node_uri[d];
    };
    for (const auto& [s, p, o] : edges_) {
      out.graph.Add(Triple{uri_of(s), p, uri_of(o)});
    }
    const TermId rdf_type = g_.vocab().rdf_type;
    for (const auto& [d, classes] : dcls_) {
      for (TermId c : classes) out.graph.Add(Triple{uri_of(d), rdf_type, c});
    }
    for (const Triple& t : g_.schema()) out.graph.Add(t);
    out.node_map.reserve(dg_.num_nodes());
    for (uint32_t r = 0; r < dg_.num_nodes(); ++r) {
      if (rd_[r] != kNoNode) {
        out.node_map.emplace(dg_.term_of(r), uri_of(rd_[r]));
      }
    }
    if (options_.record_members) {
      for (NodeId d = 0; d < next_node_; ++d) {
        if (dr_[d].empty()) continue;
        auto& v = out.members[uri_of(d)];
        v.reserve(dr_[d].size());
        for (uint32_t r : dr_[d]) v.push_back(dg_.term_of(r));
      }
    }
    out.stats = ComputeSummaryStats(out.graph, 0.0);
    return out;
  }

  const Graph& g_;
  const DenseGraph& dg_;
  IncrementalWeakOptions options_;
  NodeId next_node_ = 0;
  std::vector<NodeId> rd_;
  std::vector<std::vector<uint32_t>> dr_;
  std::vector<NodeId> dp_src_;
  std::vector<NodeId> dp_targ_;
  std::vector<std::vector<uint32_t>> src_dps_;
  std::vector<std::vector<uint32_t>> targ_dps_;
  std::unordered_map<NodeId, std::vector<TermId>> dcls_;
  std::set<std::tuple<NodeId, TermId, NodeId>> edges_;
};

}  // namespace

SummaryResult IncrementalWeakSummarize(const Graph& g,
                                       const IncrementalWeakOptions& options) {
  Builder builder(g, options);
  return builder.Build();
}

SummaryResult IncrementalTypedWeakSummarize(
    const Graph& g, const IncrementalWeakOptions& options) {
  TypedWeakBuilder builder(g, options);
  return builder.Build();
}

}  // namespace rdfsum::summary
