#include "summary/incremental_weak.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/timer.h"

namespace rdfsum::summary {
namespace {

/// Internal summary-node id (NEWINTEGER() in the paper); decoupled from
/// TermIds until the final graph is assembled.
using NodeId = uint32_t;
constexpr NodeId kNoNode = 0xFFFFFFFFu;

struct DataTriple {
  NodeId src;
  TermId p;
  NodeId targ;
};

class Builder {
 public:
  Builder(const Graph& g, const IncrementalWeakOptions& options)
      : g_(g), options_(options) {}

  SummaryResult Build() {
    Timer timer;
    SummarizeDataTriples();
    SummarizeTypeTriples();
    SummaryResult out = Assemble();
    out.stats.build_seconds = timer.ElapsedSeconds();
    return out;
  }

 private:
  // ---- Algorithm 1: summarizing data triples ----
  void SummarizeDataTriples() {
    for (const Triple& t : g_.data()) {
      GetSource(t.s, t.p);
      GetTarget(t.o, t.p);
      // GETTARGET may have merged the node GETSOURCE returned (and
      // vice-versa), so re-resolve both before recording the edge
      // (lines 5-7 of Algorithm 1).
      NodeId src = GetSource(t.s, t.p);
      NodeId targ = GetTarget(t.o, t.p);
      auto it = dtp_.find(t.p);
      if (it == dtp_.end()) {
        CreateDataTriple(src, t.p, targ);
      }
      // Property 4 guarantees a single data edge per property; if the edge
      // exists, src/targ already coincide with its endpoints by the merges
      // above.
    }
  }

  void CreateDataTriple(NodeId src, TermId p, NodeId targ) {
    dtp_.emplace(p, DataTriple{src, p, targ});
    dp_src_.emplace(p, src);
    src_dps_[src].insert(p);
    dp_targ_.emplace(p, targ);
    targ_dps_[targ].insert(p);
  }

  // ---- Algorithm 2: representing a subject (GETSOURCE) ----
  NodeId GetSource(TermId s, TermId p) {
    NodeId src_u = Get(dp_src_, p);
    NodeId src_s = Get(rd_, s);
    if (src_u == kNoNode && src_s == kNoNode) {
      NodeId fresh = CreateDataNode(s);
      dp_src_[p] = fresh;
      src_dps_[fresh].insert(p);
      return fresh;
    }
    if (src_u != kNoNode && src_s == kNoNode) {
      Represent(s, src_u);
      return src_u;
    }
    if (src_u == kNoNode && src_s != kNoNode) {
      dp_src_[p] = src_s;
      src_dps_[src_s].insert(p);
      return src_s;
    }
    if (src_s == src_u) return src_s;
    return MergeDataNodes(src_s, src_u);
  }

  NodeId GetTarget(TermId o, TermId p) {
    NodeId targ_u = Get(dp_targ_, p);
    NodeId targ_o = Get(rd_, o);
    if (targ_u == kNoNode && targ_o == kNoNode) {
      NodeId fresh = CreateDataNode(o);
      dp_targ_[p] = fresh;
      targ_dps_[fresh].insert(p);
      return fresh;
    }
    if (targ_u != kNoNode && targ_o == kNoNode) {
      Represent(o, targ_u);
      return targ_u;
    }
    if (targ_u == kNoNode && targ_o != kNoNode) {
      dp_targ_[p] = targ_o;
      targ_dps_[targ_o].insert(p);
      return targ_o;
    }
    if (targ_o == targ_u) return targ_o;
    return MergeDataNodes(targ_o, targ_u);
  }

  NodeId CreateDataNode(TermId r) {
    NodeId d = next_node_++;
    Represent(r, d);
    return d;
  }

  void Represent(TermId r, NodeId d) {
    rd_[r] = d;
    dr_[d].push_back(r);
  }

  size_t EdgeCount(NodeId n) const {
    size_t count = 0;
    auto s = src_dps_.find(n);
    if (s != src_dps_.end()) count += s->second.size();
    auto t = targ_dps_.find(n);
    if (t != targ_dps_.end()) count += t->second.size();
    return count;
  }

  /// Merges two summary nodes; the survivor absorbs the other's represented
  /// resources and property attachments ("replaces the node with less
  /// edges"). Returns the surviving node.
  NodeId MergeDataNodes(NodeId a, NodeId b) {
    NodeId keep = a;
    NodeId drop = b;
    if (options_.merge_smaller_node && EdgeCount(a) < EdgeCount(b)) {
      keep = b;
      drop = a;
    }
    // Re-point represented resources.
    auto dit = dr_.find(drop);
    if (dit != dr_.end()) {
      auto& keep_list = dr_[keep];
      for (TermId r : dit->second) {
        rd_[r] = keep;
        keep_list.push_back(r);
      }
      dr_.erase(dit);
    }
    // Re-point property attachments and the summary edges.
    auto sit = src_dps_.find(drop);
    if (sit != src_dps_.end()) {
      auto& keep_set = src_dps_[keep];
      for (TermId p : sit->second) {
        dp_src_[p] = keep;
        auto t = dtp_.find(p);
        if (t != dtp_.end() && t->second.src == drop) t->second.src = keep;
        keep_set.insert(p);
      }
      src_dps_.erase(sit);
    }
    auto tit = targ_dps_.find(drop);
    if (tit != targ_dps_.end()) {
      auto& keep_set = targ_dps_[keep];
      for (TermId p : tit->second) {
        dp_targ_[p] = keep;
        auto t = dtp_.find(p);
        if (t != dtp_.end() && t->second.targ == drop) t->second.targ = keep;
        keep_set.insert(p);
      }
      targ_dps_.erase(tit);
    }
    // Class sets (only non-empty once type triples are processed; merges
    // do not happen then for W, but keep it correct anyway).
    auto cit = dcls_.find(drop);
    if (cit != dcls_.end()) {
      dcls_[keep].insert(cit->second.begin(), cit->second.end());
      dcls_.erase(cit);
    }
    return keep;
  }

  // ---- Algorithm 3: summarizing type triples ----
  void SummarizeTypeTriples() {
    std::vector<TermId> typed_only_res;
    std::vector<TermId> typed_only_cls;
    for (const Triple& t : g_.types()) {
      auto it = rd_.find(t.s);
      if (it != rd_.end()) {
        dcls_[it->second].insert(t.o);
      } else {
        typed_only_res.push_back(t.s);
        typed_only_cls.push_back(t.o);
      }
    }
    if (!typed_only_res.empty()) {
      // REPRESENTTYPEDONLY: one node for all typed-only resources.
      NodeId d = next_node_++;
      for (TermId r : typed_only_res) {
        if (rd_.emplace(r, d).second) dr_[d].push_back(r);
      }
      auto& cls = dcls_[d];
      for (TermId c : typed_only_cls) cls.insert(c);
    }
  }

  // ---- Final assembly & decoding ----
  SummaryResult Assemble() {
    SummaryResult out;
    out.kind = SummaryKind::kWeak;
    out.graph = Graph(g_.dict_ptr());
    Dictionary& dict = out.graph.dict();

    std::unordered_map<NodeId, TermId> node_uri;
    auto uri_of = [&](NodeId d) {
      auto [it, inserted] = node_uri.emplace(d, kInvalidTermId);
      if (inserted) it->second = dict.MintNodeUri("node:w");
      return it->second;
    };

    // Deterministic minting order: walk data properties in graph order,
    // then class-set holders.
    for (const Triple& t : g_.data()) {
      auto it = dtp_.find(t.p);
      if (it != dtp_.end()) {
        uri_of(it->second.src);
        uri_of(it->second.targ);
      }
    }
    for (const auto& [p, dt] : dtp_) {
      out.graph.Add(Triple{uri_of(dt.src), p, uri_of(dt.targ)});
    }
    const TermId rdf_type = g_.vocab().rdf_type;
    for (const auto& [d, classes] : dcls_) {
      for (TermId c : classes) {
        out.graph.Add(Triple{uri_of(d), rdf_type, c});
      }
    }
    for (const Triple& t : g_.schema()) out.graph.Add(t);

    out.node_map.reserve(rd_.size());
    for (const auto& [r, d] : rd_) out.node_map.emplace(r, uri_of(d));
    if (options_.record_members) {
      for (const auto& [d, rs] : dr_) {
        auto& v = out.members[uri_of(d)];
        v.insert(v.end(), rs.begin(), rs.end());
      }
    }
    out.stats = ComputeSummaryStats(out.graph, 0.0);
    return out;
  }

  static NodeId Get(const std::unordered_map<TermId, NodeId>& m, TermId k) {
    auto it = m.find(k);
    return it == m.end() ? kNoNode : it->second;
  }

  const Graph& g_;
  IncrementalWeakOptions options_;
  NodeId next_node_ = 0;

  std::unordered_map<TermId, NodeId> rd_;                   // resource -> node
  std::unordered_map<NodeId, std::vector<TermId>> dr_;      // node -> resources
  std::unordered_map<TermId, NodeId> dp_src_;               // property -> node
  std::unordered_map<TermId, NodeId> dp_targ_;
  std::unordered_map<NodeId, std::unordered_set<TermId>> src_dps_;
  std::unordered_map<NodeId, std::unordered_set<TermId>> targ_dps_;
  std::unordered_map<TermId, DataTriple> dtp_;              // property -> edge
  std::unordered_map<NodeId, std::unordered_set<TermId>> dcls_;
};

/// Incremental TW builder: types first, then data triples. Untyped
/// endpoints merge per property exactly as in the weak algorithm; typed
/// endpoints are resolved through their class-set node and never merged.
class TypedWeakBuilder {
 public:
  TypedWeakBuilder(const Graph& g, const IncrementalWeakOptions& options)
      : g_(g), options_(options) {}

  SummaryResult Build() {
    Timer timer;
    SummarizeTypeTriplesFirst();
    SummarizeDataTriples();
    SummaryResult out = Assemble();
    out.stats.build_seconds = timer.ElapsedSeconds();
    return out;
  }

 private:
  void SummarizeTypeTriplesFirst() {
    // Collect class sets, then one node per distinct set (the clsd map).
    std::unordered_map<TermId, std::vector<TermId>> class_sets;
    for (const Triple& t : g_.types()) class_sets[t.s].push_back(t.o);
    std::map<std::vector<TermId>, NodeId> clsd;
    for (auto& [res, classes] : class_sets) {
      std::sort(classes.begin(), classes.end());
      classes.erase(std::unique(classes.begin(), classes.end()),
                    classes.end());
      auto [it, inserted] = clsd.emplace(classes, 0);
      if (inserted) {
        it->second = next_node_++;
        dcls_[it->second].insert(classes.begin(), classes.end());
      }
      rd_[res] = it->second;
      dr_[it->second].push_back(res);
      typed_.insert(res);
    }
  }

  void SummarizeDataTriples() {
    for (const Triple& t : g_.data()) {
      NodeId src = ResolveEndpoint(t.s, t.p, /*as_source=*/true);
      NodeId targ = ResolveEndpoint(t.o, t.p, /*as_source=*/false);
      // Merges inside ResolveEndpoint may have replaced earlier results;
      // re-resolve as in Algorithm 1.
      src = ResolveEndpoint(t.s, t.p, true);
      targ = ResolveEndpoint(t.o, t.p, false);
      edges_.insert({src, t.p, targ});
    }
  }

  NodeId ResolveEndpoint(TermId r, TermId p, bool as_source) {
    if (typed_.count(r)) return rd_.at(r);  // typed: class-set node, no merge
    auto& dp = as_source ? dp_src_ : dp_targ_;
    auto& dps = as_source ? src_dps_ : targ_dps_;
    NodeId via_prop = Get(dp, p);
    NodeId via_res = Get(rd_, r);
    if (via_prop == kNoNode && via_res == kNoNode) {
      NodeId fresh = next_node_++;
      rd_[r] = fresh;
      dr_[fresh].push_back(r);
      dp[p] = fresh;
      dps[fresh].insert(p);
      return fresh;
    }
    if (via_prop != kNoNode && via_res == kNoNode) {
      rd_[r] = via_prop;
      dr_[via_prop].push_back(r);
      return via_prop;
    }
    if (via_prop == kNoNode && via_res != kNoNode) {
      dp[p] = via_res;
      dps[via_res].insert(p);
      return via_res;
    }
    if (via_prop == via_res) return via_res;
    return Merge(via_res, via_prop);
  }

  size_t EdgeCount(NodeId n) const {
    size_t count = 0;
    auto s = src_dps_.find(n);
    if (s != src_dps_.end()) count += s->second.size();
    auto t = targ_dps_.find(n);
    if (t != targ_dps_.end()) count += t->second.size();
    return count;
  }

  NodeId Merge(NodeId a, NodeId b) {
    NodeId keep = a, drop = b;
    if (options_.merge_smaller_node && EdgeCount(a) < EdgeCount(b)) {
      std::swap(keep, drop);
    }
    auto dit = dr_.find(drop);
    if (dit != dr_.end()) {
      auto& keep_list = dr_[keep];
      for (TermId r : dit->second) {
        rd_[r] = keep;
        keep_list.push_back(r);
      }
      dr_.erase(dit);
    }
    auto move_side = [&](std::unordered_map<TermId, NodeId>& dp,
                         std::unordered_map<NodeId,
                                            std::unordered_set<TermId>>& dps) {
      auto it = dps.find(drop);
      if (it == dps.end()) return;
      auto& keep_set = dps[keep];
      for (TermId p : it->second) {
        dp[p] = keep;
        keep_set.insert(p);
      }
      dps.erase(it);
    };
    move_side(dp_src_, src_dps_);
    move_side(dp_targ_, targ_dps_);
    // Rewrite recorded edges touching the dropped node.
    std::vector<std::tuple<NodeId, TermId, NodeId>> moved;
    for (auto it = edges_.begin(); it != edges_.end();) {
      auto [s, p, o] = *it;
      if (s == drop || o == drop) {
        moved.emplace_back(s == drop ? keep : s, p, o == drop ? keep : o);
        it = edges_.erase(it);
      } else {
        ++it;
      }
    }
    edges_.insert(moved.begin(), moved.end());
    return keep;
  }

  SummaryResult Assemble() {
    SummaryResult out;
    out.kind = SummaryKind::kTypedWeak;
    out.graph = Graph(g_.dict_ptr());
    Dictionary& dict = out.graph.dict();
    std::unordered_map<NodeId, TermId> node_uri;
    auto uri_of = [&](NodeId d) {
      auto [it, inserted] = node_uri.emplace(d, kInvalidTermId);
      if (inserted) it->second = dict.MintNodeUri("node:tw");
      return it->second;
    };
    for (const auto& [s, p, o] : edges_) {
      out.graph.Add(Triple{uri_of(s), p, uri_of(o)});
    }
    const TermId rdf_type = g_.vocab().rdf_type;
    for (const auto& [d, classes] : dcls_) {
      for (TermId c : classes) out.graph.Add(Triple{uri_of(d), rdf_type, c});
    }
    for (const Triple& t : g_.schema()) out.graph.Add(t);
    for (const auto& [r, d] : rd_) out.node_map.emplace(r, uri_of(d));
    if (options_.record_members) {
      for (const auto& [d, rs] : dr_) {
        auto& v = out.members[uri_of(d)];
        v.insert(v.end(), rs.begin(), rs.end());
      }
    }
    out.stats = ComputeSummaryStats(out.graph, 0.0);
    return out;
  }

  static NodeId Get(const std::unordered_map<TermId, NodeId>& m, TermId k) {
    auto it = m.find(k);
    return it == m.end() ? kNoNode : it->second;
  }

  const Graph& g_;
  IncrementalWeakOptions options_;
  NodeId next_node_ = 0;
  std::unordered_set<TermId> typed_;
  std::unordered_map<TermId, NodeId> rd_;
  std::unordered_map<NodeId, std::vector<TermId>> dr_;
  std::unordered_map<TermId, NodeId> dp_src_;
  std::unordered_map<TermId, NodeId> dp_targ_;
  std::unordered_map<NodeId, std::unordered_set<TermId>> src_dps_;
  std::unordered_map<NodeId, std::unordered_set<TermId>> targ_dps_;
  std::unordered_map<NodeId, std::unordered_set<TermId>> dcls_;
  std::set<std::tuple<NodeId, TermId, NodeId>> edges_;
};

}  // namespace

SummaryResult IncrementalWeakSummarize(const Graph& g,
                                       const IncrementalWeakOptions& options) {
  Builder builder(g, options);
  return builder.Build();
}

SummaryResult IncrementalTypedWeakSummarize(
    const Graph& g, const IncrementalWeakOptions& options) {
  TypedWeakBuilder builder(g, options);
  return builder.Build();
}

}  // namespace rdfsum::summary
