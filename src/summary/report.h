#ifndef RDFSUM_SUMMARY_REPORT_H_
#define RDFSUM_SUMMARY_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "rdf/graph.h"
#include "summary/summary.h"
#include "util/status.h"

namespace rdfsum::summary {

/// A human-readable description of one summary node, in the paper's
/// notation: data nodes become N^{target properties}_{source properties}
/// (Nτ when both sides are empty), typed groups become C({classes}).
struct NodeReport {
  TermId node = kInvalidTermId;
  std::string label;
  uint64_t member_count = 0;
  std::vector<std::string> source_properties;  // local names, sorted
  std::vector<std::string> target_properties;
  std::vector<std::string> types;
  /// A few decoded sample members (at most 3), when members were recorded.
  std::vector<std::string> sample_members;
};

/// Full per-node description of a summary, the textual counterpart of the
/// drawings on the paper's companion website.
struct SummaryReport {
  SummaryKind kind = SummaryKind::kWeak;
  std::vector<NodeReport> nodes;  // sorted by member_count, descending
  /// Size and per-phase wall-time accounting copied from the summary
  /// (partition_seconds / quotient_seconds show where a threaded build
  /// spent its time).
  SummaryStats stats;

  std::string ToString() const;
};

/// Builds the report. Member counts and samples are only available when the
/// summary was built with SummaryOptions::record_members; otherwise they are
/// derived from node_map (counts only).
SummaryReport DescribeSummary(const SummaryResult& summary);

/// The paper-style label of a single summary node, e.g. "N^{author}_{reviewed}",
/// "C({Book})" or "Nτ".
std::string PaperStyleLabel(const Graph& summary_graph, TermId node);

/// Writes the summary as Graphviz DOT using paper-style node labels, so that
/// e.g. the weak summary of the paper's Figure 2 renders like its Figure 4.
void WriteSummaryDot(const SummaryResult& summary, std::ostream& os);
Status WriteSummaryDotFile(const SummaryResult& summary,
                           const std::string& path);

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_REPORT_H_
