#ifndef RDFSUM_SUMMARY_UNION_FIND_H_
#define RDFSUM_SUMMARY_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace rdfsum::summary {

/// Disjoint-set forest with union by size and path compression.
/// Elements are dense indices 0..size()-1.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n = 0) { Grow(n); }

  /// Adds `count` singleton sets; returns the index of the first one.
  uint32_t Add(uint32_t count = 1) {
    uint32_t first = static_cast<uint32_t>(parent_.size());
    Grow(count);
    return first;
  }

  uint32_t size() const { return static_cast<uint32_t>(parent_.size()); }
  uint32_t NumSets() const { return num_sets_; }

  uint32_t Find(uint32_t x) {
    uint32_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      uint32_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Merges the sets of a and b; returns true iff they were distinct.
  bool Union(uint32_t a, uint32_t b) {
    uint32_t ra = Find(a);
    uint32_t rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --num_sets_;
    return true;
  }

  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// Size of the set containing x.
  uint32_t SetSize(uint32_t x) { return size_[Find(x)]; }

 private:
  void Grow(uint32_t count) {
    uint32_t start = static_cast<uint32_t>(parent_.size());
    parent_.resize(start + count);
    size_.resize(start + count, 1);
    for (uint32_t i = start; i < parent_.size(); ++i) parent_[i] = i;
    num_sets_ += count;
  }

  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  uint32_t num_sets_ = 0;
};

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_UNION_FIND_H_
