#ifndef RDFSUM_SUMMARY_UNION_FIND_H_
#define RDFSUM_SUMMARY_UNION_FIND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace rdfsum::summary {

/// Disjoint-set forest with union by size and path compression.
/// Elements are dense indices 0..size()-1.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n = 0) { Grow(n); }

  /// Adds `count` singleton sets; returns the index of the first one.
  uint32_t Add(uint32_t count = 1) {
    uint32_t first = static_cast<uint32_t>(parent_.size());
    Grow(count);
    return first;
  }

  uint32_t size() const { return static_cast<uint32_t>(parent_.size()); }
  uint32_t NumSets() const { return num_sets_; }

  uint32_t Find(uint32_t x) {
    uint32_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      uint32_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Merges the sets of a and b; returns true iff they were distinct.
  bool Union(uint32_t a, uint32_t b) {
    uint32_t ra = Find(a);
    uint32_t rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --num_sets_;
    return true;
  }

  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// Size of the set containing x.
  uint32_t SetSize(uint32_t x) { return size_[Find(x)]; }

 private:
  void Grow(uint32_t count) {
    uint32_t start = static_cast<uint32_t>(parent_.size());
    parent_.resize(start + count);
    size_.resize(start + count, 1);
    for (uint32_t i = start; i < parent_.size(); ++i) parent_[i] = i;
    num_sets_ += count;
  }

  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  uint32_t num_sets_ = 0;
};

/// Concurrent disjoint-set forest for the parallel summarizers: lock-free
/// Union (CAS hook of the larger root under the smaller) and Find with CAS
/// path halving. No set sizes or counts — the parallel paths only need
/// connectivity. Two properties the callers rely on:
///
///  - the resulting partition depends only on the *set* of Union calls,
///    never on their interleaving (connectivity closure is confluent), so
///    summaries come out identical at every thread count;
///  - because hooking always points the larger root at the smaller one,
///    parent ids strictly decrease along every path (termination) and, once
///    all Unions have completed and their threads joined, the root of every
///    element is the minimum element id of its set — Find results are then
///    deterministic.
class AtomicUnionFind {
 public:
  explicit AtomicUnionFind(uint32_t n)
      : parent_(std::make_unique<std::atomic<uint32_t>[]>(n)), size_(n) {
    for (uint32_t i = 0; i < n; ++i) {
      parent_[i].store(i, std::memory_order_relaxed);
    }
  }

  uint32_t size() const { return size_; }

  /// Root of x's set. Safe to call concurrently with Union/Find; the CAS
  /// halving writes are benign (a lost race just costs an extra hop).
  uint32_t Find(uint32_t x) {
    while (true) {
      uint32_t p = parent_[x].load(std::memory_order_acquire);
      if (p == x) return x;
      uint32_t gp = parent_[p].load(std::memory_order_acquire);
      if (gp == p) return p;
      parent_[x].compare_exchange_weak(p, gp, std::memory_order_acq_rel,
                                       std::memory_order_acquire);
      x = gp;
    }
  }

  /// Merges the sets of a and b; lock-free under concurrent Union/Find.
  void Union(uint32_t a, uint32_t b) {
    while (true) {
      a = Find(a);
      b = Find(b);
      if (a == b) return;
      if (a > b) std::swap(a, b);
      uint32_t expected = b;
      if (parent_[b].compare_exchange_strong(expected, a,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        return;
      }
      // b gained a parent concurrently; chase the new roots and retry.
    }
  }

 private:
  std::unique_ptr<std::atomic<uint32_t>[]> parent_;
  uint32_t size_;
};

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_UNION_FIND_H_
