#include "summary/property_checks.h"

#include <unordered_map>
#include <unordered_set>

#include "query/evaluator.h"
#include "query/rbgp.h"
#include "reasoner/saturation.h"
#include "summary/isomorphism.h"
#include "summary/summarizer.h"

namespace rdfsum::summary {

bool CheckFixpoint(const Graph& g, SummaryKind kind,
                   const SummaryOptions& options) {
  SummaryResult h = Summarize(g, kind, options);
  SummaryResult hh = Summarize(h.graph, kind, options);
  return AreSummariesIsomorphic(h.graph, hh.graph);
}

bool CheckCompleteness(const Graph& g, SummaryKind kind,
                       const SummaryOptions& options) {
  Graph g_inf = reasoner::Saturate(g);
  SummaryResult lhs = Summarize(g_inf, kind, options);

  SummaryResult h = Summarize(g, kind, options);
  Graph h_inf = reasoner::Saturate(h.graph);
  SummaryResult rhs = Summarize(h_inf, kind, options);

  return AreSummariesIsomorphic(lhs.graph, rhs.graph);
}

Status CheckHomomorphism(const Graph& g, const SummaryResult& summary) {
  const Graph& h = summary.graph;
  auto map = [&](TermId n) -> TermId {
    auto it = summary.node_map.find(n);
    return it == summary.node_map.end() ? kInvalidTermId : it->second;
  };
  for (const Triple& t : g.data()) {
    TermId hs = map(t.s);
    TermId ho = map(t.o);
    if (hs == kInvalidTermId || ho == kInvalidTermId) {
      return Status::Internal("data node missing from node_map");
    }
    if (!h.Contains(Triple{hs, t.p, ho})) {
      return Status::Internal("data triple not preserved by quotient");
    }
  }
  const TermId rdf_type = g.vocab().rdf_type;
  for (const Triple& t : g.types()) {
    TermId hs = map(t.s);
    if (hs == kInvalidTermId) {
      return Status::Internal("typed node missing from node_map");
    }
    if (!h.Contains(Triple{hs, rdf_type, t.o})) {
      return Status::Internal("type triple not preserved by quotient");
    }
  }
  for (const Triple& t : g.schema()) {
    if (!h.Contains(t)) {
      return Status::Internal("schema triple not preserved (SCH rule)");
    }
  }
  return Status::OK();
}

Status CheckUniqueDataProperties(const Graph& g, const Graph& weak_summary) {
  std::unordered_set<TermId> props_in_g;
  for (const Triple& t : g.data()) props_in_g.insert(t.p);
  std::unordered_map<TermId, uint32_t> edge_count;
  for (const Triple& t : weak_summary.data()) ++edge_count[t.p];
  for (TermId p : props_in_g) {
    auto it = edge_count.find(p);
    if (it == edge_count.end()) {
      return Status::Internal("data property absent from the weak summary");
    }
    if (it->second != 1) {
      return Status::Internal("data property appears " +
                              std::to_string(it->second) +
                              " times in the weak summary");
    }
  }
  if (edge_count.size() != props_in_g.size()) {
    return Status::Internal("weak summary invented data properties");
  }
  return Status::OK();
}

std::string RepresentativenessReport::ToString() const {
  return std::to_string(represented) + "/" + std::to_string(queries) +
         " RBGP queries represented";
}

RepresentativenessReport CheckRepresentativeness(
    const Graph& g, SummaryKind kind, uint32_t num_queries,
    uint32_t max_patterns_per_query, uint64_t seed,
    const SummaryOptions& options) {
  Graph g_inf = reasoner::Saturate(g);
  SummaryResult h = Summarize(g, kind, options);
  Graph h_inf = reasoner::Saturate(h.graph);
  query::BgpEvaluator evaluator(h_inf);

  Random rng(seed);
  RepresentativenessReport report;
  for (uint32_t i = 0; i < num_queries; ++i) {
    query::RbgpGeneratorOptions gen;
    gen.num_patterns = 1 + static_cast<uint32_t>(
                               rng.Uniform(max_patterns_per_query));
    query::BgpQuery q = query::GenerateRbgpQuery(g_inf, rng, gen);
    if (q.triples.empty()) continue;
    ++report.queries;
    if (evaluator.ExistsMatch(q)) ++report.represented;
  }
  return report;
}

}  // namespace rdfsum::summary
