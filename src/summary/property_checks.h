#ifndef RDFSUM_SUMMARY_PROPERTY_CHECKS_H_
#define RDFSUM_SUMMARY_PROPERTY_CHECKS_H_

#include <cstdint>
#include <string>

#include "rdf/graph.h"
#include "summary/summary.h"
#include "util/status.h"

namespace rdfsum::summary {

/// Proposition 2 / 6 / 9 (fixpoint): summarizing a summary changes nothing,
/// i.e. H(H_G) is isomorphic to H_G.
bool CheckFixpoint(const Graph& g, SummaryKind kind,
                   const SummaryOptions& options = {});

/// Propositions 5 / 8 (completeness): Summary(G∞) equals
/// Summary((Summary(G))∞) up to minted-node renaming. Holds for kWeak and
/// kStrong; Propositions 7/10 exhibit counterexamples for TW/TS, which this
/// function lets tests demonstrate.
bool CheckCompleteness(const Graph& g, SummaryKind kind,
                       const SummaryOptions& options = {});

/// The quotient-map property underpinning Proposition 1: node_map is a
/// homomorphism from G to the summary (every data/type triple of G maps to a
/// triple of H; schema triples are preserved verbatim).
Status CheckHomomorphism(const Graph& g, const SummaryResult& summary);

/// Proposition 4: every data property of G appears on exactly one data edge
/// of the weak summary.
Status CheckUniqueDataProperties(const Graph& g, const Graph& weak_summary);

/// Representativeness probe (Definition 1 instantiated on random RBGP
/// queries): all generated queries are non-empty on G∞ by construction and
/// are evaluated against (H_G)∞.
struct RepresentativenessReport {
  uint64_t queries = 0;
  uint64_t represented = 0;

  bool AllRepresented() const { return represented == queries; }
  std::string ToString() const;
};

RepresentativenessReport CheckRepresentativeness(
    const Graph& g, SummaryKind kind, uint32_t num_queries,
    uint32_t max_patterns_per_query, uint64_t seed,
    const SummaryOptions& options = {});

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_PROPERTY_CHECKS_H_
