#ifndef RDFSUM_SUMMARY_MAINTENANCE_H_
#define RDFSUM_SUMMARY_MAINTENANCE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/graph.h"
#include "summary/incremental_weak.h"
#include "summary/summary.h"

namespace rdfsum::summary {

/// Maintains the weak summary of a *growing* RDF graph under triple
/// insertions, without ever re-reading the base data — the incremental
/// direction the paper's conclusion opens (and the authors' follow-up work
/// pursued). Because the weak summary is a union-find quotient, insertions
/// only ever merge summary nodes, so a stream of AddTriple calls maintains
/// exactly the state of the §6.2 algorithms.
///
/// Semantics guarantee: after any prefix of insertions, Snapshot() is
/// isomorphic to Summarize(G_prefix, SummaryKind::kWeak) — insertion order
/// never matters. Deletions are not supported (they can split classes, which
/// a union-find cannot undo; the paper's system is also insert-only).
class WeakSummaryMaintainer {
 public:
  explicit WeakSummaryMaintainer(std::shared_ptr<Dictionary> dict,
                                 const IncrementalWeakOptions& options = {});

  /// Seeds the maintainer with an existing graph (equivalent to adding all
  /// of its triples).
  explicit WeakSummaryMaintainer(const Graph& initial,
                                 const IncrementalWeakOptions& options = {});

  /// Routes one encoded triple to the data/type/schema handling. Duplicate
  /// insertions are harmless (idempotent).
  void AddTriple(const Triple& t);

  /// Materializes the current summary (graph + node map). Cost is linear in
  /// the summary size, not in the number of triples seen.
  SummaryResult Snapshot() const;

  uint64_t num_triples_seen() const { return triples_seen_; }

  /// Current number of summary data nodes (including the pending typed-only
  /// pool, which materializes as one Nτ node).
  uint64_t num_summary_nodes() const;

 private:
  using NodeId = uint32_t;
  static constexpr NodeId kNoNode = 0xFFFFFFFFu;

  NodeId GetSource(TermId s, TermId p);
  NodeId GetTarget(TermId o, TermId p);
  NodeId CreateDataNode(TermId r);
  void Represent(TermId r, NodeId d);
  NodeId MergeDataNodes(NodeId a, NodeId b);
  size_t EdgeCount(NodeId n) const;
  static NodeId Get(const std::unordered_map<TermId, NodeId>& m, TermId k);

  std::shared_ptr<Dictionary> dict_;
  Vocabulary vocab_;
  IncrementalWeakOptions options_;
  uint64_t triples_seen_ = 0;
  NodeId next_node_ = 0;

  struct DataTriple {
    NodeId src;
    TermId p;
    NodeId targ;
  };

  std::unordered_map<TermId, NodeId> rd_;
  std::unordered_map<NodeId, std::vector<TermId>> dr_;
  std::unordered_map<TermId, NodeId> dp_src_;
  std::unordered_map<TermId, NodeId> dp_targ_;
  std::unordered_map<NodeId, std::unordered_set<TermId>> src_dps_;
  std::unordered_map<NodeId, std::unordered_set<TermId>> targ_dps_;
  std::unordered_map<TermId, DataTriple> dtp_;
  std::unordered_map<NodeId, std::unordered_set<TermId>> dcls_;
  /// Resources seen only in τ triples so far, with their classes; they
  /// migrate to a real node the moment a data triple mentions them.
  std::unordered_map<TermId, std::unordered_set<TermId>> pending_typed_only_;
  std::vector<Triple> schema_;
  std::unordered_set<Triple, TripleHash> schema_seen_;
};

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_MAINTENANCE_H_
