#ifndef RDFSUM_SUMMARY_NODE_PARTITION_H_
#define RDFSUM_SUMMARY_NODE_PARTITION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rdf/dense_graph.h"
#include "rdf/graph.h"
#include "summary/summary.h"
#include "summary/union_find.h"

namespace rdfsum::summary {

/// A partition of the data nodes of a graph into equivalence classes.
/// Class ids are dense, assigned in first-encounter order over the data
/// component (subjects, then objects, triple by triple) followed by the type
/// component (subjects), which makes partitions deterministic for a given
/// graph construction order.
struct NodePartition {
  std::unordered_map<TermId, uint32_t> class_of;
  uint32_t num_classes = 0;
};

/// ≡W (Definition 7) with the Nτ convention: all typed-only resources form
/// one class.
NodePartition ComputeWeakPartition(const Graph& g);

/// Assembles the weak NodePartition from a union-find over dense node ids
/// (nodes with no data property collapse into Nτ). This is the canonical
/// class-id assignment shared by ComputeWeakPartition and the parallel weak
/// path — any change to it changes both identically.
NodePartition WeakPartitionFromUnionFind(const DenseGraph& dg, UnionFind& uf);

/// The same canonical assembly from a pre-resolved root array (root_of[i] =
/// union-find root of dense node i; any values < num_nodes). The parallel
/// weak path compresses its concurrent union-find into `root_of` with a
/// parallel pass and enters here, so the class-id assignment stays shared.
NodePartition WeakPartitionFromRoots(const DenseGraph& dg,
                                     const std::vector<uint32_t>& root_of);

/// ≡S (Definition 7): same (source clique, target clique); typed-only
/// resources have (∅,∅) and form one class (Nτ).
NodePartition ComputeStrongPartition(const Graph& g);

/// ≡T (Definition 8): typed resources grouped by their exact class set;
/// every untyped data node is a singleton (C(∅) is fresh per call).
NodePartition ComputeTypePartition(const Graph& g);

/// TW's node partition: typed resources by class set; untyped resources by
/// untyped-weak equivalence per `mode` (see TypedSummaryMode).
NodePartition ComputeTypedWeakPartition(const Graph& g, TypedSummaryMode mode);

/// TS's node partition: typed resources by class set; untyped resources by
/// untyped-strong equivalence per `mode`.
NodePartition ComputeTypedStrongPartition(const Graph& g,
                                          TypedSummaryMode mode);

/// Baseline from the paper's related work (§8): k-bounded bisimulation over
/// the data triples, seeded with class sets when `use_types` is set. Two
/// nodes are equivalent iff their labeled neighborhoods (per `direction`:
/// forward, backward, or both) agree up to `depth` hops. Unlike the paper's
/// summaries its size grows with structural diversity — the blow-up
/// bench_baseline_bisimulation measures.
///
/// `num_threads` shards each refinement round over dense node-id ranges
/// (1 = sequential, 0 = all hardware threads); each round's spawn/join is
/// the re-labeling barrier. Every per-node signature hash is a pure
/// function of the previous round's colors, so the partition is identical
/// at every thread count.
///
/// `exec` (optional) makes the rounds cancellable: workers poll it between
/// chunks and fall through to the round barrier, and a tripped context
/// returns an empty partition the caller must discard after consulting
/// exec->Check() (governance errors are sticky, so the check replays).
NodePartition ComputeBisimulationPartition(
    const Graph& g, uint32_t depth, bool use_types,
    BisimulationDirection direction = BisimulationDirection::kForwardBackward,
    uint32_t num_threads = 1, util::ExecContext* exec = nullptr);

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_NODE_PARTITION_H_
