#include "summary/isomorphism.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace rdfsum::summary {
namespace {

using FixedId = uint32_t;
constexpr uint32_t kNone = 0xFFFFFFFFu;

/// Interns canonical renderings of non-minted terms, shared by both graphs
/// so fixed terms compare as integers.
class FixedIntern {
 public:
  FixedId Intern(const Term& t) {
    auto [it, inserted] =
        map_.emplace(t.ToNTriples(), static_cast<FixedId>(map_.size()));
    return it->second;
  }

 private:
  std::unordered_map<std::string, FixedId> map_;
};

struct Endpoint {
  bool is_var;
  uint32_t id;  // var index or FixedId

  bool operator==(const Endpoint& o) const {
    return is_var == o.is_var && id == o.id;
  }
  bool operator<(const Endpoint& o) const {
    if (is_var != o.is_var) return is_var < o.is_var;
    return id < o.id;
  }
};

struct Edge {
  Endpoint s;
  FixedId p;
  Endpoint o;

  bool operator<(const Edge& e) const {
    if (!(s == e.s)) return s < e.s;
    if (p != e.p) return p < e.p;
    return o < e.o;
  }
  bool operator==(const Edge& e) const {
    return s == e.s && p == e.p && o == e.o;
  }
};

struct Side {
  std::vector<Edge> edges;
  uint32_t num_vars = 0;
  // Per-var adjacency: (out?, property, other endpoint).
  struct Adj {
    bool out;
    FixedId p;
    Endpoint other;
  };
  std::vector<std::vector<Adj>> adj;
  std::vector<uint64_t> color;
};

uint64_t HashMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

Side BuildSide(const Graph& g, FixedIntern& intern) {
  Side side;
  const Dictionary& dict = g.dict();
  std::unordered_map<TermId, uint32_t> var_of;
  auto endpoint = [&](TermId id) -> Endpoint {
    if (dict.IsMinted(id)) {
      auto [it, inserted] =
          var_of.emplace(id, static_cast<uint32_t>(var_of.size()));
      return Endpoint{true, it->second};
    }
    return Endpoint{false, intern.Intern(dict.Decode(id))};
  };
  g.ForEachTriple([&](const Triple& t) {
    Edge e;
    e.s = endpoint(t.s);
    e.p = intern.Intern(dict.Decode(t.p));
    e.o = endpoint(t.o);
    side.edges.push_back(e);
  });
  side.num_vars = static_cast<uint32_t>(var_of.size());
  side.adj.resize(side.num_vars);
  for (const Edge& e : side.edges) {
    if (e.s.is_var) side.adj[e.s.id].push_back({true, e.p, e.o});
    if (e.o.is_var) side.adj[e.o.id].push_back({false, e.p, e.s});
  }
  return side;
}

/// One round of color refinement; returns the new colors.
std::vector<uint64_t> Refine(const Side& side) {
  std::vector<uint64_t> next(side.num_vars);
  for (uint32_t v = 0; v < side.num_vars; ++v) {
    // Signature: sorted multiset of (direction, property, neighbor color or
    // fixed id).
    std::vector<std::tuple<int, FixedId, uint64_t>> sig;
    sig.reserve(side.adj[v].size());
    for (const auto& a : side.adj[v]) {
      uint64_t other = a.other.is_var ? side.color[a.other.id]
                                      : (0x8000000000000000ULL | a.other.id);
      sig.emplace_back(a.out ? 1 : 0, a.p, other);
    }
    std::sort(sig.begin(), sig.end());
    uint64_t h = HashMix(0x12345678, side.color[v]);
    for (const auto& [d, p, other] : sig) {
      h = HashMix(h, static_cast<uint64_t>(d));
      h = HashMix(h, p);
      h = HashMix(h, other);
    }
    next[v] = h;
  }
  return next;
}

bool SameColorHistogram(const Side& a, const Side& b) {
  std::map<uint64_t, int> ha, hb;
  for (uint64_t c : a.color) ++ha[c];
  for (uint64_t c : b.color) ++hb[c];
  return ha == hb;
}

/// Backtracking matcher with incremental consistency checking.
class Matcher {
 public:
  Matcher(const Side& a, const Side& b) : a_(a), b_(b) {
    for (const Edge& e : b_.edges) b_edge_set_.insert(Key(e));
    order_.resize(a_.num_vars);
    for (uint32_t i = 0; i < a_.num_vars; ++i) order_[i] = i;
    // Match rarest colors first, higher degree first.
    std::map<uint64_t, int> freq;
    for (uint64_t c : a_.color) ++freq[c];
    std::sort(order_.begin(), order_.end(), [&](uint32_t x, uint32_t y) {
      int fx = freq[a_.color[x]];
      int fy = freq[a_.color[y]];
      if (fx != fy) return fx < fy;
      return a_.adj[x].size() > a_.adj[y].size();
    });
    map_a_to_b_.assign(a_.num_vars, kNone);
    used_b_.assign(b_.num_vars, false);
  }

  bool Run() { return Backtrack(0); }

 private:
  static std::string Key(const Edge& e) {
    std::string out;
    out.reserve(24);
    auto put = [&](uint64_t v) {
      out.append(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    put((static_cast<uint64_t>(e.s.is_var) << 32) | e.s.id);
    put(e.p);
    put((static_cast<uint64_t>(e.o.is_var) << 32) | e.o.id);
    return out;
  }

  /// Checks all of `av`'s edges whose other endpoint is fixed or already
  /// mapped against b's edge set, assuming av -> bv.
  bool Consistent(uint32_t av, uint32_t bv) {
    if (a_.adj[av].size() != b_.adj[bv].size()) return false;
    for (const auto& adj : a_.adj[av]) {
      Endpoint other_b;
      if (adj.other.is_var) {
        // Self-loop support: the other endpoint may be av itself.
        uint32_t mapped =
            adj.other.id == av ? bv : map_a_to_b_[adj.other.id];
        if (mapped == kNone) continue;  // not yet mapped; checked later
        other_b = Endpoint{true, mapped};
      } else {
        other_b = adj.other;
      }
      Edge e;
      if (adj.out) {
        e.s = Endpoint{true, bv};
        e.p = adj.p;
        e.o = other_b;
      } else {
        e.s = other_b;
        e.p = adj.p;
        e.o = Endpoint{true, bv};
      }
      if (!b_edge_set_.count(Key(e))) return false;
    }
    return true;
  }

  bool Backtrack(size_t pos) {
    if (pos == order_.size()) return FinalCheck();
    uint32_t av = order_[pos];
    for (uint32_t bv = 0; bv < b_.num_vars; ++bv) {
      if (used_b_[bv] || b_.color[bv] != a_.color[av]) continue;
      if (!Consistent(av, bv)) continue;
      map_a_to_b_[av] = bv;
      used_b_[bv] = true;
      if (Backtrack(pos + 1)) return true;
      map_a_to_b_[av] = kNone;
      used_b_[bv] = false;
    }
    return false;
  }

  bool FinalCheck() {
    std::set<Edge> mapped;
    for (Edge e : a_.edges) {
      if (e.s.is_var) e.s.id = map_a_to_b_[e.s.id];
      if (e.o.is_var) e.o.id = map_a_to_b_[e.o.id];
      mapped.insert(e);
    }
    std::set<Edge> target(b_.edges.begin(), b_.edges.end());
    return mapped == target;
  }

  const Side& a_;
  const Side& b_;
  std::unordered_set<std::string> b_edge_set_;
  std::vector<uint32_t> order_;
  std::vector<uint32_t> map_a_to_b_;
  std::vector<bool> used_b_;
};

}  // namespace

bool AreSummariesIsomorphic(const Graph& a, const Graph& b) {
  if (a.NumTriples() != b.NumTriples()) return false;
  FixedIntern intern;
  Side sa = BuildSide(a, intern);
  Side sb = BuildSide(b, intern);
  if (sa.num_vars != sb.num_vars) return false;
  if (sa.edges.size() != sb.edges.size()) return false;

  // Fully fixed edges must match exactly.
  std::set<Edge> fixed_a, fixed_b;
  for (const Edge& e : sa.edges) {
    if (!e.s.is_var && !e.o.is_var) fixed_a.insert(e);
  }
  for (const Edge& e : sb.edges) {
    if (!e.s.is_var && !e.o.is_var) fixed_b.insert(e);
  }
  if (fixed_a != fixed_b) return false;

  // Color refinement: |V| rounds are enough to stabilize on these sizes;
  // cap the rounds to keep it near-linear.
  sa.color.assign(sa.num_vars, 1);
  sb.color.assign(sb.num_vars, 1);
  uint32_t rounds = std::min<uint32_t>(sa.num_vars + 1, 16);
  for (uint32_t i = 0; i < rounds; ++i) {
    sa.color = Refine(sa);
    sb.color = Refine(sb);
    if (!SameColorHistogram(sa, sb)) return false;
  }

  Matcher matcher(sa, sb);
  return matcher.Run();
}

}  // namespace rdfsum::summary
