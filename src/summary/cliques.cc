#include "summary/cliques.h"

#include <algorithm>
#include <deque>

#include "rdf/graph_stats.h"
#include "summary/union_find.h"

namespace rdfsum::summary {
namespace {

/// Builds one side (source or target) of the clique structure.
class SideBuilder {
 public:
  SideBuilder(std::vector<TermId>& properties,
              std::unordered_map<TermId, uint32_t>& property_index)
      : properties_(properties), property_index_(property_index) {}

  uint32_t PropIndex(TermId p) {
    auto [it, inserted] =
        property_index_.emplace(p, static_cast<uint32_t>(properties_.size()));
    if (inserted) {
      properties_.push_back(p);
      uf_.Add();
      in_scope_.push_back(false);
    }
    // The UF may be behind if the other side interned properties first.
    while (uf_.size() < properties_.size()) {
      uf_.Add();
      in_scope_.push_back(false);
    }
    return it->second;
  }

  /// Records that `node` carries property `p` on this side.
  void Observe(TermId node, TermId p) {
    uint32_t pi = PropIndex(p);
    in_scope_[pi] = true;
    auto [it, inserted] = first_prop_of_node_.emplace(node, pi);
    if (!inserted) uf_.Union(pi, it->second);
  }

  void Finalize(std::vector<uint32_t>* clique_of_property,
                std::vector<std::vector<TermId>>* clique_members,
                std::unordered_map<TermId, uint32_t>* clique_of_node,
                uint32_t* num_cliques) {
    while (uf_.size() < properties_.size()) {
      uf_.Add();
      in_scope_.push_back(false);
    }
    clique_of_property->assign(properties_.size(), 0);
    std::unordered_map<uint32_t, uint32_t> root_to_clique;
    for (uint32_t i = 0; i < properties_.size(); ++i) {
      if (!in_scope_[i]) continue;
      uint32_t root = uf_.Find(i);
      auto [it, inserted] = root_to_clique.emplace(
          root, static_cast<uint32_t>(root_to_clique.size() + 1));
      (*clique_of_property)[i] = it->second;
    }
    *num_cliques = static_cast<uint32_t>(root_to_clique.size());
    clique_members->assign(*num_cliques, {});
    for (uint32_t i = 0; i < properties_.size(); ++i) {
      uint32_t c = (*clique_of_property)[i];
      if (c != 0) (*clique_members)[c - 1].push_back(properties_[i]);
    }
    for (auto& members : *clique_members) {
      std::sort(members.begin(), members.end());
    }
    for (const auto& [node, pi] : first_prop_of_node_) {
      (*clique_of_node)[node] = (*clique_of_property)[pi];
    }
  }

 private:
  std::vector<TermId>& properties_;
  std::unordered_map<TermId, uint32_t>& property_index_;
  UnionFind uf_;
  std::vector<bool> in_scope_;
  std::unordered_map<TermId, uint32_t> first_prop_of_node_;
};

}  // namespace

PropertyCliques ComputePropertyCliques(
    const Graph& g, CliqueScope scope,
    const std::unordered_set<TermId>* typed_resources) {
  std::unordered_set<TermId> typed_local;
  if (scope != CliqueScope::kAll && typed_resources == nullptr) {
    typed_local = TypedResources(g);
    typed_resources = &typed_local;
  }
  auto is_untyped = [&](TermId n) {
    return typed_resources == nullptr || typed_resources->count(n) == 0;
  };

  PropertyCliques out;
  SideBuilder source(out.properties, out.property_index);
  SideBuilder target(out.properties, out.property_index);

  for (const Triple& t : g.data()) {
    bool s_in_scope = true;
    bool o_in_scope = true;
    switch (scope) {
      case CliqueScope::kAll:
        break;
      case CliqueScope::kUntypedEndpoints:
        s_in_scope = is_untyped(t.s);
        o_in_scope = is_untyped(t.o);
        break;
      case CliqueScope::kUntypedDataGraph: {
        bool both = is_untyped(t.s) && is_untyped(t.o);
        s_in_scope = both;
        o_in_scope = both;
        break;
      }
    }
    if (s_in_scope) source.Observe(t.s, t.p);
    if (o_in_scope) target.Observe(t.o, t.p);
  }

  source.Finalize(&out.source_clique_of_property, &out.source_clique_members,
                  &out.source_clique_of_node, &out.num_source_cliques);
  target.Finalize(&out.target_clique_of_property, &out.target_clique_members,
                  &out.target_clique_of_node, &out.num_target_cliques);
  return out;
}

int PropertyDistance(const Graph& g, TermId p1, TermId p2, bool source) {
  if (p1 == p2) return 0;
  // Bipartite BFS: property -> resources carrying it -> their properties.
  // Each property hop corresponds to one witness resource; the paper's
  // distance is (number of witness resources on the shortest chain) - 1.
  std::unordered_map<TermId, std::vector<TermId>> props_of_node;
  std::unordered_map<TermId, std::vector<TermId>> nodes_of_prop;
  for (const Triple& t : g.data()) {
    TermId node = source ? t.s : t.o;
    props_of_node[node].push_back(t.p);
    nodes_of_prop[t.p].push_back(node);
  }
  if (!nodes_of_prop.count(p1) || !nodes_of_prop.count(p2)) return -1;
  std::unordered_map<TermId, int> dist;
  std::deque<TermId> frontier;
  dist[p1] = 0;
  frontier.push_back(p1);
  while (!frontier.empty()) {
    TermId cur = frontier.front();
    frontier.pop_front();
    int d = dist[cur];
    for (TermId node : nodes_of_prop[cur]) {
      for (TermId next : props_of_node[node]) {
        if (dist.emplace(next, d + 1).second) {
          if (next == p2) return d;  // (d+1) hops -> distance (d+1)-1 = d
          frontier.push_back(next);
        }
      }
    }
  }
  return -1;
}

std::vector<TermId> SaturatedPropertySet(const std::vector<TermId>& props,
                                         const reasoner::SchemaIndex& schema) {
  std::unordered_set<TermId> set(props.begin(), props.end());
  for (TermId p : props) {
    for (TermId sup : schema.SuperProperties(p)) set.insert(sup);
  }
  std::vector<TermId> out(set.begin(), set.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rdfsum::summary
