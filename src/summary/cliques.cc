#include "summary/cliques.h"

#include <algorithm>
#include <deque>

#include "rdf/graph_stats.h"
#include "summary/union_find.h"

namespace rdfsum::summary {
namespace {

constexpr uint32_t kNone = DenseGraph::kNone;

/// Shared clique machinery over the dense substrate. Properties are
/// re-interned in first-in-scope-observation order ("obs positions") so the
/// public PropertyCliques keeps its historical property and clique
/// numbering; all per-node state is flat arrays indexed by dense node id.
struct CliqueBuilder {
  const DenseGraph& dg;
  // Observation-order property interning (shared by both sides).
  std::vector<uint32_t> obs_of_pid;   // dense pid -> obs position
  std::vector<DenseGraph::PropId> pid_of_obs;  // obs position -> dense pid
  // Per side: union-find over obs positions, scope flags, per-node first
  // observed property.
  UnionFind uf_src, uf_tgt;
  std::vector<uint8_t> src_in_scope, tgt_in_scope;
  std::vector<uint32_t> first_src, first_tgt;  // by node id, obs position

  explicit CliqueBuilder(const DenseGraph& dense_graph) : dg(dense_graph) {
    obs_of_pid.assign(dg.num_properties(), kNone);
    first_src.assign(dg.num_nodes(), kNone);
    first_tgt.assign(dg.num_nodes(), kNone);
  }

  uint32_t Intern(DenseGraph::PropId pid) {
    uint32_t& slot = obs_of_pid[pid];
    if (slot == kNone) {
      slot = static_cast<uint32_t>(pid_of_obs.size());
      pid_of_obs.push_back(pid);
      uf_src.Add();
      uf_tgt.Add();
      src_in_scope.push_back(0);
      tgt_in_scope.push_back(0);
    }
    return slot;
  }

  void Run(CliqueScope scope, const std::vector<uint8_t>& typed) {
    for (const DenseGraph::Edge& e : dg.data_edges()) {
      bool s_in = true;
      bool o_in = true;
      switch (scope) {
        case CliqueScope::kAll:
          break;
        case CliqueScope::kUntypedEndpoints:
          s_in = !typed[e.s];
          o_in = !typed[e.o];
          break;
        case CliqueScope::kUntypedDataGraph: {
          bool both = !typed[e.s] && !typed[e.o];
          s_in = both;
          o_in = both;
          break;
        }
      }
      if (s_in) {
        uint32_t pos = Intern(e.p);
        src_in_scope[pos] = 1;
        if (first_src[e.s] == kNone) {
          first_src[e.s] = pos;
        } else {
          uf_src.Union(pos, first_src[e.s]);
        }
      }
      if (o_in) {
        uint32_t pos = Intern(e.p);
        tgt_in_scope[pos] = 1;
        if (first_tgt[e.o] == kNone) {
          first_tgt[e.o] = pos;
        } else {
          uf_tgt.Union(pos, first_tgt[e.o]);
        }
      }
    }
  }

  /// Clique id per obs position, 1-based in position order; 0 = out of
  /// scope on this side.
  std::vector<uint32_t> FinalizeSide(UnionFind& uf,
                                     const std::vector<uint8_t>& in_scope,
                                     uint32_t* num_cliques) const {
    const uint32_t p = static_cast<uint32_t>(pid_of_obs.size());
    std::vector<uint32_t> clique_of_pos(p, 0);
    std::vector<uint32_t> root_to_clique(p, kNone);
    uint32_t next = 0;
    for (uint32_t i = 0; i < p; ++i) {
      if (!in_scope[i]) continue;
      uint32_t root = uf.Find(i);
      if (root_to_clique[root] == kNone) root_to_clique[root] = ++next;
      clique_of_pos[i] = root_to_clique[root];
    }
    *num_cliques = next;
    return clique_of_pos;
  }
};

/// Scope-filter flags per dense node: IsTyped by default, or the caller's
/// typed-resource set mapped onto dense ids.
std::vector<uint8_t> TypedFlags(
    const DenseGraph& dg, CliqueScope scope,
    const std::unordered_set<TermId>* typed_resources) {
  std::vector<uint8_t> typed(dg.num_nodes(), 0);
  if (scope == CliqueScope::kAll) return typed;  // never consulted
  if (typed_resources != nullptr) {
    for (TermId t : *typed_resources) {
      uint32_t i = dg.node_of(t);
      if (i != kNone) typed[i] = 1;
    }
  } else {
    for (uint32_t i = 0; i < dg.num_nodes(); ++i) typed[i] = dg.IsTyped(i);
  }
  return typed;
}

}  // namespace

PropertyCliques ComputePropertyCliques(
    const Graph& g, CliqueScope scope,
    const std::unordered_set<TermId>* typed_resources) {
  const DenseGraph& dg = g.Dense();
  CliqueBuilder b(dg);
  b.Run(scope, TypedFlags(dg, scope, typed_resources));

  PropertyCliques out;
  const uint32_t p = static_cast<uint32_t>(b.pid_of_obs.size());
  out.properties.reserve(p);
  out.property_index.reserve(p);
  for (uint32_t i = 0; i < p; ++i) {
    TermId term = dg.property_term(b.pid_of_obs[i]);
    out.properties.push_back(term);
    out.property_index.emplace(term, i);
  }
  out.source_clique_of_property =
      b.FinalizeSide(b.uf_src, b.src_in_scope, &out.num_source_cliques);
  out.target_clique_of_property =
      b.FinalizeSide(b.uf_tgt, b.tgt_in_scope, &out.num_target_cliques);

  auto fill_members = [&](const std::vector<uint32_t>& clique_of_pos,
                          uint32_t num_cliques,
                          std::vector<std::vector<TermId>>* members) {
    members->assign(num_cliques, {});
    for (uint32_t i = 0; i < p; ++i) {
      uint32_t c = clique_of_pos[i];
      if (c != 0) (*members)[c - 1].push_back(out.properties[i]);
    }
    for (auto& m : *members) std::sort(m.begin(), m.end());
  };
  fill_members(out.source_clique_of_property, out.num_source_cliques,
               &out.source_clique_members);
  fill_members(out.target_clique_of_property, out.num_target_cliques,
               &out.target_clique_members);

  auto fill_nodes = [&](const std::vector<uint32_t>& first,
                        const std::vector<uint32_t>& clique_of_pos,
                        std::unordered_map<TermId, uint32_t>* clique_of_node) {
    size_t observed = 0;
    for (uint32_t f : first) observed += (f != kNone);
    clique_of_node->reserve(observed);
    for (uint32_t i = 0; i < dg.num_nodes(); ++i) {
      if (first[i] != kNone) {
        clique_of_node->emplace(dg.term_of(i), clique_of_pos[first[i]]);
      }
    }
  };
  fill_nodes(b.first_src, out.source_clique_of_property,
             &out.source_clique_of_node);
  fill_nodes(b.first_tgt, out.target_clique_of_property,
             &out.target_clique_of_node);
  return out;
}

DenseCliqueAssignment ComputeDenseCliqueAssignment(
    const DenseGraph& dg, CliqueScope scope,
    const std::vector<uint8_t>* typed_override) {
  CliqueBuilder b(dg);
  if (typed_override != nullptr) {
    b.Run(scope, *typed_override);
  } else {
    b.Run(scope, TypedFlags(dg, scope, nullptr));
  }

  DenseCliqueAssignment out;
  std::vector<uint32_t> src_clique =
      b.FinalizeSide(b.uf_src, b.src_in_scope, &out.num_source_cliques);
  std::vector<uint32_t> tgt_clique =
      b.FinalizeSide(b.uf_tgt, b.tgt_in_scope, &out.num_target_cliques);
  const uint32_t n = dg.num_nodes();
  out.source_clique_of_node.assign(n, 0);
  out.target_clique_of_node.assign(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    if (b.first_src[i] != kNone) {
      out.source_clique_of_node[i] = src_clique[b.first_src[i]];
    }
    if (b.first_tgt[i] != kNone) {
      out.target_clique_of_node[i] = tgt_clique[b.first_tgt[i]];
    }
  }
  return out;
}

int PropertyDistance(const Graph& g, TermId p1, TermId p2, bool source) {
  if (p1 == p2) return 0;
  // Bipartite BFS: property -> resources carrying it -> their properties.
  // Each property hop corresponds to one witness resource; the paper's
  // distance is (number of witness resources on the shortest chain) - 1.
  std::unordered_map<TermId, std::vector<TermId>> props_of_node;
  std::unordered_map<TermId, std::vector<TermId>> nodes_of_prop;
  for (const Triple& t : g.data()) {
    TermId node = source ? t.s : t.o;
    props_of_node[node].push_back(t.p);
    nodes_of_prop[t.p].push_back(node);
  }
  if (!nodes_of_prop.count(p1) || !nodes_of_prop.count(p2)) return -1;
  std::unordered_map<TermId, int> dist;
  std::deque<TermId> frontier;
  dist[p1] = 0;
  frontier.push_back(p1);
  while (!frontier.empty()) {
    TermId cur = frontier.front();
    frontier.pop_front();
    int d = dist[cur];
    for (TermId node : nodes_of_prop[cur]) {
      for (TermId next : props_of_node[node]) {
        if (dist.emplace(next, d + 1).second) {
          if (next == p2) return d;  // (d+1) hops -> distance (d+1)-1 = d
          frontier.push_back(next);
        }
      }
    }
  }
  return -1;
}

std::vector<TermId> SaturatedPropertySet(const std::vector<TermId>& props,
                                         const reasoner::SchemaIndex& schema) {
  std::unordered_set<TermId> set(props.begin(), props.end());
  for (TermId p : props) {
    for (TermId sup : schema.SuperProperties(p)) set.insert(sup);
  }
  std::vector<TermId> out(set.begin(), set.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rdfsum::summary
