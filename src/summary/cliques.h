#ifndef RDFSUM_SUMMARY_CLIQUES_H_
#define RDFSUM_SUMMARY_CLIQUES_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/dense_graph.h"
#include "rdf/graph.h"
#include "reasoner/schema_index.h"

namespace rdfsum::summary {

/// Which data-triple endpoints induce clique membership.
enum class CliqueScope {
  /// Every data triple counts (Definition 5; used by W and S).
  kAll,
  /// An endpoint contributes only if the resource at that endpoint is
  /// untyped, regardless of the other endpoint (the §6 data-structure
  /// semantics; used by TW/TS in kPerPropertyProjection mode).
  kUntypedEndpoints,
  /// Only triples whose subject AND object are untyped count (the strict
  /// Definition 13/16 "untyped data graph" UD_G).
  kUntypedDataGraph,
};

/// Source and target property cliques of a graph (Definition 5), plus the
/// per-resource clique assignment SC(r) / TC(r).
///
/// Clique ids are 1-based; id 0 means "the empty clique" (the resource has
/// no properties on that side, within the chosen scope).
struct PropertyCliques {
  /// Dense property indexing: properties[i] is the TermId of property i.
  std::vector<TermId> properties;
  std::unordered_map<TermId, uint32_t> property_index;

  /// Clique id of each property (by dense property index); a property that
  /// never occurs within scope has id 0 on that side.
  std::vector<uint32_t> source_clique_of_property;
  std::vector<uint32_t> target_clique_of_property;

  uint32_t num_source_cliques = 0;
  uint32_t num_target_cliques = 0;

  /// Members of each clique (index = clique id - 1), sorted by TermId.
  std::vector<std::vector<TermId>> source_clique_members;
  std::vector<std::vector<TermId>> target_clique_members;

  /// SC(r) / TC(r): clique of each resource; absent entry or id 0 = ∅.
  std::unordered_map<TermId, uint32_t> source_clique_of_node;
  std::unordered_map<TermId, uint32_t> target_clique_of_node;

  uint32_t SourceCliqueOf(TermId node) const {
    auto it = source_clique_of_node.find(node);
    return it == source_clique_of_node.end() ? 0 : it->second;
  }
  uint32_t TargetCliqueOf(TermId node) const {
    auto it = target_clique_of_node.find(node);
    return it == target_clique_of_node.end() ? 0 : it->second;
  }
};

/// Computes source/target property cliques. For scopes other than kAll the
/// typed-resource set is required; pass null to have it computed internally.
PropertyCliques ComputePropertyCliques(
    const Graph& g, CliqueScope scope = CliqueScope::kAll,
    const std::unordered_set<TermId>* typed_resources = nullptr);

/// The clique assignment reduced to flat arrays over the dense substrate:
/// SC/TC per dense node id, no TermId hash maps anywhere. This is the hot
/// path behind ComputeStrongPartition / ComputeTypedStrongPartition.
///
/// `typed_override`, when non-null, is a bitmask by dense node id replacing
/// DenseGraph::IsTyped for scope filtering. Clique ids are 1-based with 0 =
/// empty clique, numbered in first-in-scope-observation order exactly like
/// PropertyCliques.
struct DenseCliqueAssignment {
  std::vector<uint32_t> source_clique_of_node;  // by DenseGraph node id
  std::vector<uint32_t> target_clique_of_node;
  uint32_t num_source_cliques = 0;
  uint32_t num_target_cliques = 0;
};

DenseCliqueAssignment ComputeDenseCliqueAssignment(
    const DenseGraph& dg, CliqueScope scope,
    const std::vector<uint8_t>* typed_override = nullptr);

/// Distance between two data properties within a source (source=true) or
/// target clique (Definition 6): 0 if some resource carries both, else the
/// length of the shortest witness chain minus one. Returns -1 when the
/// properties are not in the same clique.
int PropertyDistance(const Graph& g, TermId p1, TermId p2, bool source);

/// The saturated clique C+ of Lemma 1: the property set plus all its
/// generalizations (super-properties).
std::vector<TermId> SaturatedPropertySet(const std::vector<TermId>& props,
                                         const reasoner::SchemaIndex& schema);

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_CLIQUES_H_
