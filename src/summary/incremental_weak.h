#ifndef RDFSUM_SUMMARY_INCREMENTAL_WEAK_H_
#define RDFSUM_SUMMARY_INCREMENTAL_WEAK_H_

#include "rdf/graph.h"
#include "summary/summary.h"

namespace rdfsum::summary {

/// Options for the incremental weak summarizer.
struct IncrementalWeakOptions {
  /// Paper §6.2: MERGEDATANODES "replaces the node with less edges". When
  /// false, merges are arbitrary (always into the first operand) — exposed
  /// for the ablation benchmark.
  bool merge_smaller_node = true;
  bool record_members = false;
};

/// A faithful port of the paper's Algorithms 1–3 (§6.2): the weak summary is
/// built by a single pass over the data triples, representing each subject
/// and object with a summary data node and merging nodes as shared
/// properties are discovered (maps rd/dr, dpSrc/dpTarg, srcDps/targDps,
/// dtp), followed by a pass over the type triples (typed-only resources all
/// represented by one fresh node, Algorithm 3 REPRESENTTYPEDONLY).
///
/// Produces a summary isomorphic to Summarize(g, SummaryKind::kWeak); the
/// batch union-find builder is the production path, this one exists to
/// validate it and for the algorithm ablation benchmark.
SummaryResult IncrementalWeakSummarize(
    const Graph& g, const IncrementalWeakOptions& options = {});

/// The typed-weak counterpart of the §6.2 algorithm suite: type triples are
/// summarized first (one node per class set, the paper's `clsd` map), then
/// data triples are summarized with per-property merging applied to untyped
/// endpoints only — typed nodes are never stored in dpSrc/dpTarg
/// (footnote 3). Produces a summary isomorphic to
/// Summarize(g, kTypedWeak) under the default
/// TypedSummaryMode::kPerPropertyProjection.
SummaryResult IncrementalTypedWeakSummarize(
    const Graph& g, const IncrementalWeakOptions& options = {});

}  // namespace rdfsum::summary

#endif  // RDFSUM_SUMMARY_INCREMENTAL_WEAK_H_
