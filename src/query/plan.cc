#include "query/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "summary/cardinality.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace rdfsum::query {

const char* PlannerModeName(PlannerMode mode) {
  switch (mode) {
    case PlannerMode::kNaive:
      return "naive";
    case PlannerMode::kGreedy:
      return "greedy";
    case PlannerMode::kSummary:
      return "summary";
  }
  return "?";
}

bool ParsePlannerMode(std::string_view name, PlannerMode* mode) {
  std::string lower = AsciiToLower(name);
  if (lower == "naive") *mode = PlannerMode::kNaive;
  else if (lower == "greedy") *mode = PlannerMode::kGreedy;
  else if (lower == "summary") *mode = PlannerMode::kSummary;
  else return false;
  return true;
}

CompiledBgp CompileBgp(const BgpQuery& q, const Dictionary& dict) {
  CompiledBgp out;
  auto slot = [&](const PatternTerm& t) {
    CompiledSlot s;
    if (t.is_var) {
      s.is_var = true;
      auto [it, inserted] = out.var_index.emplace(
          t.var, static_cast<uint32_t>(out.var_names.size()));
      if (inserted) out.var_names.push_back(t.var);
      s.var = it->second;
    } else {
      s.constant = dict.Lookup(t.term);
      if (s.constant == kInvalidTermId) s.impossible = true;
    }
    return s;
  };
  for (const TriplePatternQ& t : q.triples) {
    CompiledPattern pc{slot(t.s), slot(t.p), slot(t.o)};
    if (pc.s.impossible || pc.p.impossible || pc.o.impossible) {
      out.impossible = true;
    }
    out.patterns.push_back(pc);
  }
  return out;
}

StatusOr<std::vector<uint32_t>> ResolveDistinguished(const BgpQuery& q,
                                                     const CompiledBgp& c) {
  std::vector<uint32_t> head;
  head.reserve(q.distinguished.size());
  for (const std::string& v : q.distinguished) {
    auto it = c.var_index.find(v);
    if (it == c.var_index.end()) {
      return Status::InvalidArgument("distinguished variable ?" + v +
                                     " does not occur in the query body");
    }
    head.push_back(it->second);
  }
  return head;
}

namespace {

/// Expected matches of one probe of `pc` when the variables in `var_bound`
/// already hold values. Constants give an exact index-range count; each
/// bound variable position divides by the relevant distinct count (the
/// uniform-fanout independence assumption of a System-R style model).
double EstimateMatches(const CompiledPattern& pc,
                       const std::vector<bool>& var_bound,
                       const store::TripleTable& table) {
  if (pc.s.impossible || pc.p.impossible || pc.o.impossible) return 0.0;
  store::TriplePattern known;
  if (!pc.s.is_var) known.s = pc.s.constant;
  if (!pc.p.is_var) known.p = pc.p.constant;
  if (!pc.o.is_var) known.o = pc.o.constant;
  double est = static_cast<double>(table.Count(known));
  if (est == 0.0) return 0.0;
  const store::TableStats& st = table.stats();
  auto runtime_bound = [&](const CompiledSlot& sl) {
    return sl.is_var && var_bound[sl.var];
  };
  const store::PredicateStats* ps =
      pc.p.is_var ? nullptr : st.predicate(pc.p.constant);
  if (runtime_bound(pc.s)) {
    uint64_t distinct = ps != nullptr ? ps->distinct_subjects : 0;
    if (distinct == 0) distinct = st.num_distinct_subjects();
    est /= static_cast<double>(std::max<uint64_t>(1, distinct));
  }
  if (runtime_bound(pc.p)) {
    est /= static_cast<double>(
        std::max<uint64_t>(1, st.num_distinct_predicates()));
  }
  if (runtime_bound(pc.o)) {
    uint64_t distinct = ps != nullptr ? ps->distinct_objects : 0;
    if (distinct == 0) distinct = st.num_distinct_objects();
    est /= static_cast<double>(std::max<uint64_t>(1, distinct));
  }
  return est;
}

int CountUnboundVars(const CompiledPattern& pc,
                     const std::vector<bool>& var_bound) {
  int n = 0;
  for (const CompiledSlot* sl : {&pc.s, &pc.p, &pc.o}) {
    if (sl->is_var && !var_bound[sl->var]) ++n;
  }
  return n;
}

std::string FormatEstimate(double v) {
  if (v == 0.0) return "0";
  if (v >= 1e15) {
    // Cartesian-ish estimates can exceed uint64 range; casting those would
    // be UB. Scientific notation is more readable anyway.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2e", v);
    return buf;
  }
  if (v >= 100.0) return FormatWithCommas(static_cast<uint64_t>(v + 0.5));
  return FormatDouble(v, 2);
}

}  // namespace

namespace {

/// One planning attempt. With an estimator, sets *estimator_tripped and
/// returns a partial plan the moment any prefix estimate comes back
/// truncated (enumeration budget exhausted) — the ranking metric is no
/// longer trustworthy, so the caller discards the attempt and re-plans
/// greedy rather than committing to a half-informed join order.
QueryPlan BuildQueryPlanAttempt(
    const BgpQuery& q, const Dictionary& dict,
    const store::TripleTable& table, PlannerMode mode,
    const summary::CardinalityEstimator* estimator, bool* estimator_tripped) {
  QueryPlan plan;
  plan.mode = mode;
  plan.compiled = CompileBgp(q, dict);
  const std::vector<CompiledPattern>& patterns = plan.compiled.patterns;
  const size_t n = patterns.size();
  std::vector<bool> var_bound(plan.compiled.var_names.size(), false);
  std::vector<bool> used(n, false);
  const bool use_estimator =
      mode == PlannerMode::kSummary && estimator != nullptr;
  // Patterns of the chosen prefix, maintained for estimator refinement.
  std::vector<TriplePatternQ> prefix;
  if (use_estimator) prefix.reserve(n);

  double rows = 1.0;
  for (size_t step_no = 0; step_no < n; ++step_no) {
    const double input_rows = rows;  // probe-side estimate for this step
    size_t pick = SIZE_MAX;
    double pick_matches = 0.0;
    if (mode == PlannerMode::kNaive) {
      pick = step_no;  // frozen textual order
      pick_matches = EstimateMatches(patterns[pick], var_bound, table);
    } else {
      // Greedy: cheapest next probe. With an estimator, rank candidate
      // prefixes by their summary-estimated result size instead, falling
      // back to the stats estimate as tie-break.
      double best_metric = 0.0, best_matches = 0.0;
      int best_unbound = 0;
      for (size_t i = 0; i < n; ++i) {
        if (used[i]) continue;
        double matches = EstimateMatches(patterns[i], var_bound, table);
        double metric = matches;
        if (use_estimator) {
          prefix.push_back(q.triples[i]);
          summary::CardinalityEstimate est =
              estimator->EstimatePatterns(prefix);
          prefix.pop_back();
          if (est.truncated) {
            *estimator_tripped = true;
            return plan;  // partial; the caller re-plans greedy
          }
          metric = est.estimate;
        }
        int unbound = CountUnboundVars(patterns[i], var_bound);
        bool better =
            pick == SIZE_MAX || metric < best_metric ||
            (metric == best_metric &&
             (matches < best_matches ||
              (matches == best_matches && unbound < best_unbound)));
        if (better) {
          pick = i;
          best_metric = metric;
          best_matches = matches;
          best_unbound = unbound;
        }
      }
      pick_matches = best_matches;
    }

    used[pick] = true;
    const CompiledPattern& pc = patterns[pick];
    PlanStep step;
    step.pattern = static_cast<uint32_t>(pick);
    step.pattern_text = q.triples[pick].ToString();
    auto bound_at_run = [&](const CompiledSlot& sl) {
      return !sl.is_var || var_bound[sl.var];
    };
    step.index = store::TripleTable::ChooseIndex(
        bound_at_run(pc.s), bound_at_run(pc.p), bound_at_run(pc.o));
    step.estimated_matches = pick_matches;
    // Join-pick rule: hash-join a step with at least one already-bound join
    // variable when the plan predicts a fat probe side and the exact
    // build-side count fits the budget (kHashJoin* constants, plan.h).
    const bool has_join_var =
        (pc.s.is_var && var_bound[pc.s.var]) ||
        (pc.p.is_var && var_bound[pc.p.var]) ||
        (pc.o.is_var && var_bound[pc.o.var]);
    if (step_no > 0 && has_join_var && !plan.compiled.impossible) {
      store::TriplePattern consts;
      if (!pc.s.is_var) consts.s = pc.s.constant;
      if (!pc.p.is_var) consts.p = pc.p.constant;
      if (!pc.o.is_var) consts.o = pc.o.constant;
      step.estimated_build_rows = static_cast<double>(table.Count(consts));
      step.use_hash_join = input_rows >= kHashJoinMinProbeRows &&
                           step.estimated_build_rows > 0.0 &&
                           step.estimated_build_rows <= kHashJoinBuildBudget;
    }
    if (use_estimator) {
      prefix.push_back(q.triples[pick]);
      summary::CardinalityEstimate est = estimator->EstimatePatterns(prefix);
      if (est.truncated) {
        *estimator_tripped = true;
        return plan;  // partial; the caller re-plans greedy
      }
      step.estimated_rows = est.estimate;
      rows = step.estimated_rows;
    } else {
      rows *= pick_matches;
      step.estimated_rows = rows;
    }
    plan.estimated_cost += step.estimated_rows;
    for (const CompiledSlot* sl : {&pc.s, &pc.p, &pc.o}) {
      if (sl->is_var) var_bound[sl->var] = true;
    }
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

}  // namespace

QueryPlan BuildQueryPlan(const BgpQuery& q, const Dictionary& dict,
                         const store::TripleTable& table, PlannerMode mode,
                         const summary::CardinalityEstimator* estimator) {
  bool tripped = false;
  QueryPlan plan =
      BuildQueryPlanAttempt(q, dict, table, mode, estimator, &tripped);
  if (!tripped) return plan;
  // Graceful degradation: the summary estimator ran out of enumeration
  // budget, so its rankings are partial sums that would mis-order the join.
  // Fall back to the stats-only greedy order (the exact plan kGreedy would
  // build — same rows, possibly a worse order) and record the downgrade.
  plan = BuildQueryPlanAttempt(q, dict, table, PlannerMode::kGreedy, nullptr,
                               &tripped);
  plan.mode = mode;
  plan.summary_fallback = true;
  return plan;
}

std::string NormalizedBgpShape(const BgpQuery& q) {
  std::unordered_map<std::string, uint32_t> vars;
  // Constants keyed on their full N-Triples rendering: equality of tokens
  // must mirror Term equality, and the rendering is unambiguous.
  std::unordered_map<std::string, uint32_t> consts;
  std::string key;
  key.reserve(q.triples.size() * 12);
  auto token = [&](const PatternTerm& t) {
    if (t.is_var) {
      auto [it, inserted] =
          vars.emplace(t.var, static_cast<uint32_t>(vars.size()));
      (void)inserted;
      key += 'v';
      key += std::to_string(it->second);
    } else {
      auto [it, inserted] = consts.emplace(
          t.term.ToNTriples(), static_cast<uint32_t>(consts.size()));
      (void)inserted;
      key += 'c';
      key += std::to_string(it->second);
    }
  };
  for (const TriplePatternQ& t : q.triples) {
    token(t.s);
    key += ' ';
    token(t.p);
    key += ' ';
    token(t.o);
    key += ';';
  }
  return key;
}

PlanSkeleton SkeletonOf(const QueryPlan& plan) {
  PlanSkeleton s;
  s.mode = plan.mode;
  s.order.reserve(plan.steps.size());
  s.index.reserve(plan.steps.size());
  s.hash_join.reserve(plan.steps.size());
  for (const PlanStep& step : plan.steps) {
    s.order.push_back(step.pattern);
    s.index.push_back(step.index);
    s.hash_join.push_back(step.use_hash_join);
  }
  return s;
}

QueryPlan PlanFromSkeleton(const BgpQuery& q, const Dictionary& dict,
                           const PlanSkeleton& skeleton) {
  QueryPlan plan;
  plan.mode = skeleton.mode;
  plan.compiled = CompileBgp(q, dict);
  plan.steps.reserve(skeleton.order.size());
  for (size_t i = 0; i < skeleton.order.size(); ++i) {
    PlanStep step;
    step.pattern = skeleton.order[i];
    step.pattern_text = q.triples[step.pattern].ToString();
    step.index = skeleton.index[i];
    step.use_hash_join = skeleton.hash_join[i];
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

namespace {

/// "scan" for the leading step, otherwise the join operator the executor
/// will pick for the step under the plan's flags.
const char* StepOperatorName(size_t step_no, const PlanStep& s) {
  if (step_no == 0) return "scan";
  return s.use_hash_join ? "hash" : "nlj";
}

}  // namespace

std::string QueryPlan::ToString() const {
  TablePrinter table(
      {"step", "pattern", "index", "join", "est/probe", "est rows"});
  for (size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& s = steps[i];
    table.AddRow({std::to_string(i + 1), s.pattern_text,
                  store::IndexKindName(s.index), StepOperatorName(i, s),
                  FormatEstimate(s.estimated_matches),
                  FormatEstimate(s.estimated_rows)});
  }
  std::string out = "plan mode=" + std::string(PlannerModeName(mode));
  if (summary_fallback) out += " fallback=greedy";
  out += " est_cost=" + FormatEstimate(estimated_cost) + "\n";
  out += table.ToAscii();
  return out;
}

std::string Explanation::ToString() const {
  TablePrinter table(
      {"step", "pattern", "index", "join", "est rows", "actual rows"});
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& s = plan.steps[i];
    uint64_t actual = i < actual_rows.size() ? actual_rows[i] : 0;
    table.AddRow({std::to_string(i + 1), s.pattern_text,
                  store::IndexKindName(s.index), StepOperatorName(i, s),
                  FormatEstimate(s.estimated_rows),
                  FormatWithCommas(actual)});
  }
  std::string out = "plan mode=" + std::string(PlannerModeName(plan.mode)) +
                    " est_cost=" + FormatEstimate(plan.estimated_cost) + "\n";
  out += table.ToAscii();
  if (!operators.empty()) {
    out += "operators (rows produced):\n";
    for (const OperatorStats& op : operators) {
      out += "  " + std::string(static_cast<size_t>(op.depth) * 2, ' ') +
             op.op + "  " + FormatWithCommas(op.rows_produced) + "\n";
    }
  }
  out += "embeddings: " + FormatWithCommas(num_embeddings) +
         ", distinct rows: " + FormatWithCommas(num_result_rows) + "\n";
  if (pruned_by_summary) {
    out += "pruned by summary: the graph was never touched\n";
  }
  return out;
}

}  // namespace rdfsum::query
