#include "query/pruned_evaluator.h"

#include "query/rbgp.h"
#include "reasoner/saturation.h"
#include "summary/summarizer.h"

namespace rdfsum::query {

SummaryPrunedEvaluator::SummaryPrunedEvaluator(const Graph& g,
                                               const Options& options) {
  summary::SummaryResult h = summary::Summarize(g, options.kind);
  if (options.saturate) {
    graph_ = reasoner::Saturate(g);
    summary_ = reasoner::Saturate(h.graph);
  } else {
    graph_ = g.Clone();
    summary_ = std::move(h.graph);
  }
  on_graph_.emplace(graph_);
  on_summary_.emplace(summary_);
}

bool SummaryPrunedEvaluator::SummaryAdmits(const BgpQuery& q) {
  // Proposition 1 covers RBGP queries only; other shapes bypass the filter.
  if (!ValidateRbgp(q).ok()) return true;
  return on_summary_->ExistsMatch(q);
}

bool SummaryPrunedEvaluator::ExistsMatch(const BgpQuery& q) {
  ++stats_.exists_checks;
  if (!SummaryAdmits(q)) {
    ++stats_.pruned_by_summary;
    return false;
  }
  ++stats_.graph_probes;
  return on_graph_->ExistsMatch(q);
}

StatusOr<std::vector<Row>> SummaryPrunedEvaluator::Evaluate(const BgpQuery& q,
                                                            size_t limit) {
  ++stats_.exists_checks;
  if (!SummaryAdmits(q)) {
    ++stats_.pruned_by_summary;
    return std::vector<Row>{};
  }
  ++stats_.graph_probes;
  return on_graph_->Evaluate(q, limit);
}

}  // namespace rdfsum::query
