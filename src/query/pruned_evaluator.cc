#include "query/pruned_evaluator.h"

#include "query/rbgp.h"
#include "reasoner/saturation.h"
#include "summary/summarizer.h"

namespace rdfsum::query {

SummaryPrunedEvaluator::SummaryPrunedEvaluator(const Graph& g,
                                               const Options& options) {
  summary::SummaryResult h = summary::Summarize(g, options.kind);
  const bool wants_estimator = options.planner == PlannerMode::kSummary;
  if (options.saturate) {
    graph_ = reasoner::Saturate(g);
    summary_ = reasoner::Saturate(h.graph);
    if (wants_estimator) {
      // The estimator must model the graph actually queried: `h` describes
      // the unsaturated input, so summarize the saturation itself.
      summary::SummaryResult model =
          summary::Summarize(graph_, options.kind);
      estimator_.emplace(graph_, model);
    }
  } else {
    graph_ = g.Clone();
    // `h` is a summary of exactly graph_; reuse it before its graph is
    // moved into the pruning slot.
    if (wants_estimator) estimator_.emplace(graph_, h);
    summary_ = std::move(h.graph);
  }
  EvaluatorOptions graph_options;
  graph_options.planner = options.planner;
  graph_options.estimator = estimator();
  on_graph_.emplace(graph_, graph_options);
  on_summary_.emplace(summary_);
}

bool SummaryPrunedEvaluator::SummaryAdmits(const BgpQuery& q) {
  // Proposition 1 covers RBGP queries only; other shapes bypass the filter.
  if (!ValidateRbgp(q).ok()) return true;
  return on_summary_->ExistsMatch(q);
}

bool SummaryPrunedEvaluator::ExistsMatch(const BgpQuery& q) {
  ++stats_.exists_checks;
  if (!SummaryAdmits(q)) {
    ++stats_.pruned_by_summary;
    return false;
  }
  ++stats_.graph_probes;
  return on_graph_->ExistsMatch(q);
}

StatusOr<std::unique_ptr<Cursor>> SummaryPrunedEvaluator::Open(
    const BgpQuery& q, CursorOptions options) {
  ++stats_.exists_checks;
  if (!SummaryAdmits(q)) {
    ++stats_.pruned_by_summary;
    // Keep the contract data-independent: a malformed head errors whether
    // or not the summary happened to prune this query. Compilation alone
    // resolves the head — no need to run the planner on the fast path.
    CompiledBgp compiled = CompileBgp(q, graph_.dict());
    RDFSUM_ASSIGN_OR_RETURN(std::vector<uint32_t> head,
                            ResolveDistinguished(q, compiled));
    return MakeEmptyCursor(head.size());
  }
  ++stats_.graph_probes;
  return on_graph_->Open(q, options);
}

Row SummaryPrunedEvaluator::Decode(const IdRow& row) const {
  return on_graph_->Decode(row);
}

StatusOr<std::vector<Row>> SummaryPrunedEvaluator::Evaluate(const BgpQuery& q,
                                                            size_t limit) {
  CursorOptions options;
  options.limit = limit;
  RDFSUM_ASSIGN_OR_RETURN(std::unique_ptr<Cursor> cursor, Open(q, options));
  std::vector<Row> rows;
  IdRow row;
  while (cursor->Next(&row)) rows.push_back(Decode(row));
  RDFSUM_RETURN_IF_ERROR(cursor->status());
  return rows;
}

StatusOr<Explanation> SummaryPrunedEvaluator::Explain(const BgpQuery& q) {
  ++stats_.exists_checks;
  if (!SummaryAdmits(q)) {
    ++stats_.pruned_by_summary;
    Explanation out;
    out.plan = on_graph_->Plan(q);
    // Keep the contract data-independent: a malformed head is an error
    // whether or not the summary happened to prune this query.
    auto head = ResolveDistinguished(q, out.plan.compiled);
    if (!head.ok()) return head.status();
    out.actual_rows.assign(out.plan.steps.size(), 0);
    out.pruned_by_summary = true;
    return out;
  }
  ++stats_.graph_probes;
  return on_graph_->Explain(q);
}

}  // namespace rdfsum::query
