#ifndef RDFSUM_QUERY_PRUNED_EVALUATOR_H_
#define RDFSUM_QUERY_PRUNED_EVALUATOR_H_

#include <cstdint>
#include <optional>

#include "query/evaluator.h"
#include "rdf/graph.h"
#include "summary/cardinality.h"
#include "summary/summary.h"

namespace rdfsum::query {

/// The paper's query-optimization use case packaged as an evaluator: every
/// request is first checked for emptiness against the (saturated) summary.
/// By RBGP representativeness (Proposition 1), a query that is empty on
/// (H_G)∞ is empty on G∞, so the full graph is never touched for such
/// queries — and the summary is usually orders of magnitude smaller.
///
/// Queries outside the RBGP dialect (constants in subject/object positions)
/// are not covered by Proposition 1; for those the summary check is skipped
/// and evaluation goes straight to the graph.
///
/// Queries that survive the emptiness check run on a cost-based QueryPlan;
/// with Options::planner == PlannerMode::kSummary the summary additionally
/// drives the join order through a CardinalityEstimator.
class SummaryPrunedEvaluator {
 public:
  struct Options {
    summary::SummaryKind kind = summary::SummaryKind::kWeak;
    /// Evaluate against the saturations (complete answers, §2.1). When
    /// false, both sides use the explicit triples only.
    bool saturate = true;
    /// Join-order planning for the graph-side evaluator. kSummary builds a
    /// CardinalityEstimator over the queried graph (one extra
    /// summarization at construction time).
    PlannerMode planner = PlannerMode::kGreedy;
  };

  /// Pruning-effectiveness counters.
  struct Stats {
    uint64_t exists_checks = 0;
    uint64_t pruned_by_summary = 0;
    uint64_t graph_probes = 0;
  };

  /// Uses the default options (weak summary, saturated evaluation).
  explicit SummaryPrunedEvaluator(const Graph& g)
      : SummaryPrunedEvaluator(g, Options()) {}

  SummaryPrunedEvaluator(const Graph& g, const Options& options);

  /// True iff q has an embedding in (G∞ or G, per options). Consults the
  /// summary first.
  bool ExistsMatch(const BgpQuery& q);

  /// Streaming evaluation: opens a pull cursor over the graph-side answers,
  /// or an empty cursor without ever touching the graph when the summary
  /// proves emptiness (the head is still validated either way). Decode()
  /// turns produced IdRows into Terms.
  StatusOr<std::unique_ptr<Cursor>> Open(const BgpQuery& q,
                                         CursorOptions options = {});
  Row Decode(const IdRow& row) const;

  /// Full evaluation; returns no rows without touching the graph when the
  /// summary proves emptiness (the head is validated either way, like
  /// Explain). Deprecated as the primary surface: drains Open()'s cursor
  /// into a vector.
  StatusOr<std::vector<Row>> Evaluate(const BgpQuery& q,
                                      size_t limit = SIZE_MAX);

  /// The chosen plan with actual per-step cardinalities; when the summary
  /// proves emptiness, the plan is returned unexecuted with
  /// pruned_by_summary set.
  StatusOr<Explanation> Explain(const BgpQuery& q);

  const Stats& stats() const { return stats_; }
  /// The summary used for pruning (an RDF graph).
  const Graph& summary_graph() const { return summary_; }
  /// The estimator driving kSummary plans; nullptr for other planners.
  const summary::CardinalityEstimator* estimator() const {
    return estimator_ ? &*estimator_ : nullptr;
  }

 private:
  bool SummaryAdmits(const BgpQuery& q);

  Graph graph_;    // G (or G∞)
  Graph summary_;  // H (or H∞)
  std::optional<summary::CardinalityEstimator> estimator_;
  std::optional<BgpEvaluator> on_graph_;
  std::optional<BgpEvaluator> on_summary_;
  Stats stats_;
};

}  // namespace rdfsum::query

#endif  // RDFSUM_QUERY_PRUNED_EVALUATOR_H_
