#ifndef RDFSUM_QUERY_RBGP_H_
#define RDFSUM_QUERY_RBGP_H_

#include <cstdint>

#include "query/bgp.h"
#include "rdf/graph.h"
#include "util/random.h"
#include "util/status.h"

namespace rdfsum::query {

/// Checks Definition 3: a relational BGP (RBGP) query has (i) URIs in all
/// property positions, (ii) a URI in the object position of every τ triple,
/// and (iii) variables in every other position.
Status ValidateRbgp(const BgpQuery& q);

/// Knobs for random RBGP workload generation.
struct RbgpGeneratorOptions {
  /// Number of triple patterns per query (the walk may stop early on
  /// dead-ends, but always emits at least one pattern).
  uint32_t num_patterns = 3;
  /// Probability of extending from the object (rather than the subject) of
  /// the previous pattern, when both are possible.
  double forward_bias = 0.6;
  /// Probability that a sampled rdf:type triple is included as a τ pattern.
  double type_pattern_probability = 0.3;
};

/// Samples a connected RBGP query that is guaranteed non-empty on `g`:
/// a random connected subgraph of g's data/type triples is turned into
/// patterns by replacing every subject/object (except τ objects) with a
/// variable, consistently per graph node — the sampled subgraph itself is
/// then an embedding witness.
///
/// Pass the *saturated* graph to generate queries that are non-empty on G∞,
/// as required when probing representativeness (Definition 1).
BgpQuery GenerateRbgpQuery(const Graph& g, Random& rng,
                           const RbgpGeneratorOptions& options = {});

}  // namespace rdfsum::query

#endif  // RDFSUM_QUERY_RBGP_H_
