#ifndef RDFSUM_QUERY_SPARQL_PARSER_H_
#define RDFSUM_QUERY_SPARQL_PARSER_H_

#include <string_view>

#include "query/bgp.h"
#include "util/statusor.h"

namespace rdfsum::query {

/// Parser for the SPARQL BGP dialect the paper considers (§2.1):
///
///   PREFIX ex: <http://example.org/>
///   SELECT ?x ?y WHERE { ?x ex:author ?y . ?x a ex:Book . }
///   ASK WHERE { ?x ex:title "Le Port des Brumes" }
///
/// Supported: PREFIX declarations, SELECT with a variable list or '*', ASK
/// (boolean query), the 'a' keyword for rdf:type, IRIs, prefixed names,
/// literals (with @lang / ^^datatype), blank-node-free patterns, '.'
/// separators (trailing dot optional), '#' comments outside strings.
///
/// Anything else (OPTIONAL, FILTER, UNION, property paths...) is rejected
/// with NotSupported, mirroring the BGP fragment of Definition 3.
StatusOr<BgpQuery> ParseSparql(std::string_view text);

}  // namespace rdfsum::query

#endif  // RDFSUM_QUERY_SPARQL_PARSER_H_
