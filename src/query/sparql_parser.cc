#include "query/sparql_parser.h"

#include <cctype>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/ntriples_parser.h"
#include "rdf/vocabulary.h"
#include "util/string_util.h"

namespace rdfsum::query {
namespace {

struct Token {
  enum class Kind {
    kKeyword,   // SELECT, ASK, WHERE, PREFIX (case-insensitive), a
    kVariable,  // ?name
    kIri,       // <...>
    kPrefixedName,
    kLiteral,  // full literal text including quotes and suffixes
    kLBrace,
    kRBrace,
    kDot,
    kStar,
    kEnd,
  };
  Kind kind;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipWsAndComments();
      if (pos_ >= text_.size()) {
        out.push_back({Token::Kind::kEnd, ""});
        return out;
      }
      char c = text_[pos_];
      if (c == '{') {
        out.push_back({Token::Kind::kLBrace, "{"});
        ++pos_;
      } else if (c == '}') {
        out.push_back({Token::Kind::kRBrace, "}"});
        ++pos_;
      } else if (c == '.') {
        out.push_back({Token::Kind::kDot, "."});
        ++pos_;
      } else if (c == '*') {
        out.push_back({Token::Kind::kStar, "*"});
        ++pos_;
      } else if (c == '?' || c == '$') {
        ++pos_;
        std::string name;
        while (pos_ < text_.size() && (IsNameChar(text_[pos_]))) {
          name.push_back(text_[pos_++]);
        }
        if (name.empty()) return Status::InvalidArgument("empty variable name");
        out.push_back({Token::Kind::kVariable, name});
      } else if (c == '<') {
        size_t end = text_.find('>', pos_);
        if (end == std::string_view::npos) {
          return Status::InvalidArgument("unterminated IRI");
        }
        out.push_back(
            {Token::Kind::kIri, std::string(text_.substr(pos_, end - pos_ + 1))});
        pos_ = end + 1;
      } else if (c == '"') {
        std::string lit = ReadLiteral();
        if (lit.empty()) return Status::InvalidArgument("unterminated literal");
        out.push_back({Token::Kind::kLiteral, lit});
      } else if (IsNameStart(c)) {
        std::string word;
        while (pos_ < text_.size() &&
               (IsNameChar(text_[pos_]) || text_[pos_] == ':')) {
          word.push_back(text_[pos_++]);
        }
        if (word.find(':') != std::string::npos) {
          out.push_back({Token::Kind::kPrefixedName, word});
        } else {
          out.push_back({Token::Kind::kKeyword, word});
        }
      } else {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "'");
      }
    }
  }

 private:
  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
  }

  void SkipWsAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  /// Reads a literal with optional @lang or ^^<iri> suffix; returns the full
  /// source text ("" on error).
  std::string ReadLiteral() {
    size_t start = pos_;
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      if (text_[pos_] == '\\') {
        pos_ += 2;
        continue;
      }
      if (text_[pos_] == '"') {
        ++pos_;
        break;
      }
      ++pos_;
    }
    if (pos_ > text_.size()) return "";
    if (pos_ < text_.size() && text_[pos_] == '@') {
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '-')) {
        ++pos_;
      }
    } else if (pos_ + 1 < text_.size() && text_[pos_] == '^' &&
               text_[pos_ + 1] == '^') {
      pos_ += 2;
      if (pos_ < text_.size() && text_[pos_] == '<') {
        size_t end = text_.find('>', pos_);
        if (end == std::string_view::npos) return "";
        pos_ = end + 1;
      }
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<BgpQuery> Parse() {
    BgpQuery query;
    // PREFIX declarations.
    while (IsKeyword("PREFIX")) {
      ++pos_;
      if (Cur().kind != Token::Kind::kPrefixedName &&
          Cur().kind != Token::Kind::kKeyword) {
        return Status::InvalidArgument("expected prefix name after PREFIX");
      }
      std::string label = Cur().text;
      if (!label.empty() && label.back() == ':') label.pop_back();
      // "ex:" lexes as a prefixed name with empty local part; "ex" followed
      // by ":" cannot occur since ':' is consumed into the word.
      size_t colon = label.find(':');
      if (colon != std::string::npos) label = label.substr(0, colon);
      ++pos_;
      if (Cur().kind != Token::Kind::kIri) {
        return Status::InvalidArgument("expected IRI after PREFIX " + label);
      }
      std::string iri = Cur().text;
      prefixes_[label] = iri.substr(1, iri.size() - 2);
      ++pos_;
    }

    bool is_ask = false;
    if (IsKeyword("SELECT")) {
      ++pos_;
      if (Cur().kind == Token::Kind::kStar) {
        select_star_ = true;
        ++pos_;
      } else {
        while (Cur().kind == Token::Kind::kVariable) {
          query.distinguished.push_back(Cur().text);
          ++pos_;
        }
        if (query.distinguished.empty()) {
          return Status::InvalidArgument("SELECT requires variables or *");
        }
      }
    } else if (IsKeyword("ASK")) {
      is_ask = true;
      ++pos_;
    } else {
      return Status::NotSupported("query must start with SELECT or ASK");
    }

    if (IsKeyword("WHERE")) ++pos_;
    if (Cur().kind != Token::Kind::kLBrace) {
      return Status::InvalidArgument("expected '{'");
    }
    ++pos_;

    while (Cur().kind != Token::Kind::kRBrace) {
      if (Cur().kind == Token::Kind::kEnd) {
        return Status::InvalidArgument("unterminated '{' block");
      }
      if (IsKeyword("OPTIONAL") || IsKeyword("FILTER") || IsKeyword("UNION") ||
          IsKeyword("GRAPH") || IsKeyword("MINUS")) {
        return Status::NotSupported(Cur().text +
                                    " is outside the BGP dialect");
      }
      TriplePatternQ triple;
      auto s = ParsePatternTerm(/*property_position=*/false);
      if (!s.ok()) return s.status();
      auto p = ParsePatternTerm(/*property_position=*/true);
      if (!p.ok()) return p.status();
      auto o = ParsePatternTerm(/*property_position=*/false);
      if (!o.ok()) return o.status();
      triple.s = std::move(s).value();
      triple.p = std::move(p).value();
      triple.o = std::move(o).value();
      query.triples.push_back(std::move(triple));
      if (Cur().kind == Token::Kind::kDot) ++pos_;
    }
    ++pos_;  // consume '}'
    if (Cur().kind != Token::Kind::kEnd) {
      return Status::InvalidArgument("trailing tokens after '}'");
    }
    if (query.triples.empty()) {
      return Status::InvalidArgument("empty BGP");
    }
    if (select_star_) {
      query.distinguished = query.BodyVariables();
    }
    if (!is_ask) {
      // Validate head variables occur in the body.
      auto body = query.BodyVariables();
      for (const std::string& v : query.distinguished) {
        bool found = false;
        for (const std::string& b : body) {
          if (b == v) {
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::InvalidArgument("head variable ?" + v +
                                         " not in body");
        }
      }
    }
    return query;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool IsKeyword(std::string_view kw) const {
    return Cur().kind == Token::Kind::kKeyword &&
           AsciiToLower(Cur().text) == AsciiToLower(kw);
  }

  StatusOr<PatternTerm> ParsePatternTerm(bool property_position) {
    const Token& tok = Cur();
    switch (tok.kind) {
      case Token::Kind::kVariable:
        ++pos_;
        return PatternTerm::Var(tok.text);
      case Token::Kind::kIri: {
        auto term = io::NTriplesParser::ParseTerm(tok.text);
        if (!term.ok()) return term.status();
        ++pos_;
        return PatternTerm::Const(std::move(term).value());
      }
      case Token::Kind::kLiteral: {
        if (property_position) {
          return Status::InvalidArgument("literal in property position");
        }
        auto term = io::NTriplesParser::ParseTerm(tok.text);
        if (!term.ok()) return term.status();
        ++pos_;
        return PatternTerm::Const(std::move(term).value());
      }
      case Token::Kind::kKeyword:
        if (tok.text == "a" && property_position) {
          ++pos_;
          return PatternTerm::Const(Term::Iri(vocab::kRdfType));
        }
        return Status::InvalidArgument("unexpected keyword '" + tok.text +
                                       "' in pattern");
      case Token::Kind::kPrefixedName: {
        size_t colon = tok.text.find(':');
        std::string prefix = tok.text.substr(0, colon);
        std::string local = tok.text.substr(colon + 1);
        auto it = prefixes_.find(prefix);
        if (it == prefixes_.end()) {
          return Status::InvalidArgument("undeclared prefix '" + prefix + ":'");
        }
        ++pos_;
        return PatternTerm::Const(Term::Iri(it->second + local));
      }
      default:
        return Status::InvalidArgument("expected term, found '" + tok.text +
                                       "'");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool select_star_ = false;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

StatusOr<BgpQuery> ParseSparql(std::string_view text) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace rdfsum::query
