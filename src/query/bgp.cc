#include "query/bgp.h"

#include <unordered_set>

namespace rdfsum::query {

std::string PatternTerm::ToString() const {
  if (is_var) return "?" + var;
  return term.ToNTriples();
}

std::string TriplePatternQ::ToString() const {
  return s.ToString() + " " + p.ToString() + " " + o.ToString();
}

std::vector<std::string> BgpQuery::BodyVariables() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  auto visit = [&](const PatternTerm& t) {
    if (t.is_var && seen.insert(t.var).second) out.push_back(t.var);
  };
  for (const TriplePatternQ& t : triples) {
    visit(t.s);
    visit(t.p);
    visit(t.o);
  }
  return out;
}

std::string BgpQuery::ToString() const {
  std::string head = "q(";
  for (size_t i = 0; i < distinguished.size(); ++i) {
    if (i > 0) head += ", ";
    head += "?" + distinguished[i];
  }
  head += ") :- ";
  for (size_t i = 0; i < triples.size(); ++i) {
    if (i > 0) head += ", ";
    head += triples[i].ToString();
  }
  return head;
}

}  // namespace rdfsum::query
