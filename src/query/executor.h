#ifndef RDFSUM_QUERY_EXECUTOR_H_
#define RDFSUM_QUERY_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "query/cursor.h"
#include "query/plan.h"
#include "store/triple_table.h"
#include "util/exec_context.h"

namespace rdfsum::query {

/// Whether the executor honors the planner's hash-join flags. kNever and
/// kAlways exist for differential tests and benchmarks (kAlways hashes
/// every step with at least one join variable, budget ignored).
enum class HashJoinMode : uint8_t { kFromPlan, kNever, kAlways };

/// Fan-out gate: driving scans below this many rows are never split —
/// morsel scheduling overhead would dominate, and a small probe side means
/// the query is cheap anyway. Two morsels' worth, so an engaged fan-out
/// always has at least two units of independent work.
inline constexpr uint64_t kParallelMinScanRows = 2 * kMorselRows;

struct ExecutorOptions {
  /// Applied after projection + dedup: at most `limit` distinct rows are
  /// produced, and the tree stops pulling once they are (early exit).
  size_t limit = SIZE_MAX;
  /// Distinct rows skipped before the first emitted one.
  size_t offset = 0;
  HashJoinMode hash_join = HashJoinMode::kFromPlan;
  /// Optional governance: deadline, cancellation, row budget, memory
  /// budget. Borrowed — must outlive the compiled tree. When set, every
  /// scan/join polls it, the root charges the row budget per answer, and
  /// hash joins fit themselves into (or degrade under) the memory budget.
  util::ExecContext* exec = nullptr;
  /// Intra-query fan-out: morsel workers for the join pipeline. 1 (the
  /// default) compiles the classic sequential tree; 0 means hardware
  /// concurrency; k>=2 asks for k workers (granted even above the core
  /// count — the shared pool multiplexes). Fan-out only engages when the
  /// driving scan clears the gate below; the result stream is byte-identical
  /// to sequential either way, at every thread count.
  uint32_t parallelism = 1;
  /// Gate override: minimum exact driving-scan rows before fan-out engages.
  /// 0 means kParallelMinScanRows. Tests lower it to force fan-out on small
  /// fixtures.
  uint64_t min_parallel_rows = 0;
  /// Morsel-size override; 0 means kMorselRows. Tests shrink it to get
  /// many-morsel schedules on small fixtures.
  uint64_t morsel_rows = 0;
  /// Scheduling policy for an engaged fan-out: pool workers vs. inline
  /// streaming on the consumer. kAuto decides per host; tests pin each
  /// mode so both paths run on any machine.
  ParallelWorkerMode worker_mode = ParallelWorkerMode::kAuto;
};

/// The compiled operator tree plus non-owning handles into it, for reading
/// the per-operator counters after a drain (Explain). All raw pointers
/// alias nodes owned by `root`.
struct CursorTree {
  std::unique_ptr<Cursor> root;
  /// The scan/join operator of each plan step, parallel to plan.steps
  /// (empty for impossible or zero-pattern queries).
  std::vector<Cursor*> step_cursors;
  /// The deepest join operator — its rows-produced counter is the number of
  /// embeddings enumerated.
  Cursor* embeddings = nullptr;
  /// The Distinct operator when the tree projects; its counter is the
  /// number of distinct result rows. nullptr in embedding-only trees.
  Cursor* distinct = nullptr;
};

/// Compiles `plan` into the join pipeline only (no projection, no dedup):
/// the root enumerates embeddings of the query body as full-width binding
/// rows. Backbone of ExistsMatch/CountEmbeddings. With `exec`, operators
/// poll governance, and a plan-chosen hash join whose predicted build state
/// (estimated_build_rows × kHashJoinBuildBytesPerRow) cannot fit the
/// remaining memory budget is compiled as a nested-loop join up front —
/// same rows, no doomed build.
CursorTree CompileEmbeddingTree(const store::TripleTable& table,
                                const QueryPlan& plan,
                                HashJoinMode hash_join = HashJoinMode::kFromPlan,
                                util::ExecContext* exec = nullptr);

/// Like the above but honoring the full options, including parallelism.
/// When options.parallelism != 1, the driving scan clears the fan-out gate
/// (exact Count >= min_parallel_rows), and at least two workers resolve, the
/// embeddings root is a ParallelGather over per-morsel pipelines instead of
/// the sequential tree — same rows, same order, byte-identical. Parallel
/// trees leave step_cursors empty (morsel pipelines are transient); Explain
/// always compiles sequentially, so nothing reads them.
CursorTree CompileEmbeddingTree(const store::TripleTable& table,
                                const QueryPlan& plan,
                                const ExecutorOptions& options);

/// Compiles the full query tree: joins -> Project(head) -> Distinct ->
/// LimitOffset (the last only when limit/offset are set). The root yields
/// the query's distinct answer rows, head-ordered and deduplicated, in a
/// deterministic order; pulling stops early once the limit is reached.
/// Cursors copy what they need from `plan` (it may die) but borrow `table`.
CursorTree CompileQueryTree(const store::TripleTable& table,
                            const QueryPlan& plan,
                            const std::vector<uint32_t>& head,
                            const ExecutorOptions& options = {});

}  // namespace rdfsum::query

#endif  // RDFSUM_QUERY_EXECUTOR_H_
