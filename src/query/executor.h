#ifndef RDFSUM_QUERY_EXECUTOR_H_
#define RDFSUM_QUERY_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "query/cursor.h"
#include "query/plan.h"
#include "store/triple_table.h"
#include "util/exec_context.h"

namespace rdfsum::query {

/// Whether the executor honors the planner's hash-join flags. kNever and
/// kAlways exist for differential tests and benchmarks (kAlways hashes
/// every step with at least one join variable, budget ignored).
enum class HashJoinMode : uint8_t { kFromPlan, kNever, kAlways };

struct ExecutorOptions {
  /// Applied after projection + dedup: at most `limit` distinct rows are
  /// produced, and the tree stops pulling once they are (early exit).
  size_t limit = SIZE_MAX;
  /// Distinct rows skipped before the first emitted one.
  size_t offset = 0;
  HashJoinMode hash_join = HashJoinMode::kFromPlan;
  /// Optional governance: deadline, cancellation, row budget, memory
  /// budget. Borrowed — must outlive the compiled tree. When set, every
  /// scan/join polls it, the root charges the row budget per answer, and
  /// hash joins fit themselves into (or degrade under) the memory budget.
  util::ExecContext* exec = nullptr;
};

/// The compiled operator tree plus non-owning handles into it, for reading
/// the per-operator counters after a drain (Explain). All raw pointers
/// alias nodes owned by `root`.
struct CursorTree {
  std::unique_ptr<Cursor> root;
  /// The scan/join operator of each plan step, parallel to plan.steps
  /// (empty for impossible or zero-pattern queries).
  std::vector<Cursor*> step_cursors;
  /// The deepest join operator — its rows-produced counter is the number of
  /// embeddings enumerated.
  Cursor* embeddings = nullptr;
  /// The Distinct operator when the tree projects; its counter is the
  /// number of distinct result rows. nullptr in embedding-only trees.
  Cursor* distinct = nullptr;
};

/// Compiles `plan` into the join pipeline only (no projection, no dedup):
/// the root enumerates embeddings of the query body as full-width binding
/// rows. Backbone of ExistsMatch/CountEmbeddings. With `exec`, operators
/// poll governance, and a plan-chosen hash join whose predicted build state
/// (estimated_build_rows × kHashJoinBuildBytesPerRow) cannot fit the
/// remaining memory budget is compiled as a nested-loop join up front —
/// same rows, no doomed build.
CursorTree CompileEmbeddingTree(const store::TripleTable& table,
                                const QueryPlan& plan,
                                HashJoinMode hash_join = HashJoinMode::kFromPlan,
                                util::ExecContext* exec = nullptr);

/// Compiles the full query tree: joins -> Project(head) -> Distinct ->
/// LimitOffset (the last only when limit/offset are set). The root yields
/// the query's distinct answer rows, head-ordered and deduplicated, in a
/// deterministic order; pulling stops early once the limit is reached.
/// Cursors copy what they need from `plan` (it may die) but borrow `table`.
CursorTree CompileQueryTree(const store::TripleTable& table,
                            const QueryPlan& plan,
                            const std::vector<uint32_t>& head,
                            const ExecutorOptions& options = {});

}  // namespace rdfsum::query

#endif  // RDFSUM_QUERY_EXECUTOR_H_
