#ifndef RDFSUM_QUERY_CURSOR_H_
#define RDFSUM_QUERY_CURSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "query/plan.h"
#include "store/triple_table.h"
#include "util/exec_context.h"
#include "util/row_set.h"
#include "util/status.h"

namespace rdfsum::query {

/// A binding row flowing through the operator tree: TermIds indexed by the
/// plan's dense variable ids (or by head position downstream of Project).
/// kInvalidTermId marks a not-yet-bound slot.
using IdRow = std::vector<TermId>;

/// Volcano-style pull operator: Next() produces one row at a time, so a
/// caller that stops pulling (LIMIT, pagination, first-match existence
/// checks) stops the whole tree — no intermediate result is ever
/// materialized except the explicit stateful operators (a hash join's build
/// side, Distinct's seen-set).
///
/// Lifecycle: Open (construction) -> Next until it returns false ->
/// destruction. Exhaustion is stable: once Next returns false it keeps
/// returning false. Cursors borrow the TripleTable they scan (it must stay
/// frozen and outlive them) but own everything else, including copies of
/// the compiled patterns — the QueryPlan they were compiled from may die.
///
/// Next() returning false means either exhaustion or failure; status()
/// distinguishes them: OK after a clean drain, or the governance/failpoint
/// error (kDeadlineExceeded, kCancelled, kResourceExhausted, injected
/// faults) that stopped the stream. Errors are stable like exhaustion —
/// once status() is non-OK every later Next() returns false immediately —
/// and propagate up the tree, so draining the root and checking its
/// status() observes any failure anywhere in the pipeline.
///
/// Cursors built with an ExecContext poll it every
/// util::ExecContext::kCheckInterval candidate triples (not produced rows:
/// a selective scan that filters millions of triples between rows still
/// honors its deadline). A null context means ungoverned, zero overhead.
///
/// Every operator counts the rows it produced; Explain reads the counters
/// off the drained tree (CollectOperators) instead of threading callbacks
/// through the executor.
class Cursor {
 public:
  virtual ~Cursor() = default;

  /// Writes the next row into *row (resized to width()) and returns true,
  /// or returns false when the operator is exhausted or failed (see
  /// status()).
  virtual bool Next(IdRow* row) = 0;

  /// OK while streaming and after clean exhaustion; the terminating error
  /// otherwise.
  const Status& status() const { return status_; }

  /// Width of the rows this operator produces.
  virtual size_t width() const = 0;

  /// Operator label for Explain, e.g. "HashJoin[?o b:price ?price @SPO]".
  virtual std::string Describe() const = 0;

  /// Rows this operator has produced so far.
  uint64_t rows_produced() const { return rows_produced_; }

  /// Appends this operator and its inputs to *out, root-first, with depth
  /// increasing toward the leaves.
  virtual void CollectOperators(std::vector<OperatorStats>* out,
                                int depth = 0) const {
    out->push_back({depth, Describe(), rows_produced()});
  }

 protected:
  uint64_t rows_produced_ = 0;
  Status status_;
};

/// Estimated bytes of hash-join build state per build-side triple: the
/// triple (12), its chain link (4), and its amortized share of the key
/// directory and chain-head arrays. The executor multiplies this by the
/// plan's exact build-side count to decide whether a hash join fits the
/// ExecContext memory budget; HashJoinCursor charges the same rate while
/// actually building.
inline constexpr uint64_t kHashJoinBuildBytesPerRow = 48;

/// Produces nothing. Stands in for provably-empty queries (impossible
/// constants, summary-pruned requests).
std::unique_ptr<Cursor> MakeEmptyCursor(size_t width);

/// Produces exactly one all-unbound row — the unit of the join: a BGP with
/// no patterns has one (empty) embedding.
std::unique_ptr<Cursor> MakeSingletonCursor(size_t width);

/// Leaf scan: emits one binding row of width `num_vars` per triple matching
/// `pat`'s constants, serving matches from a resumable store::ScanCursor
/// (one binary search at open, pointer bumps per pull). Handles repeated
/// variables (?x p ?x binds consistently or skips). `label` is the pattern
/// text for Describe.
std::unique_ptr<Cursor> MakeIndexScanCursor(const store::TripleTable& table,
                                            const CompiledPattern& pat,
                                            size_t num_vars,
                                            std::string label = "",
                                            util::ExecContext* exec = nullptr);

/// Index nested-loop join: for each input row, instantiates `pat` with the
/// row's bindings and extends the row with every match (a fresh index range
/// per probe — O(log n) binary search each).
std::unique_ptr<Cursor> MakeIndexNestedLoopJoinCursor(
    std::unique_ptr<Cursor> input, const store::TripleTable& table,
    const CompiledPattern& pat, std::string label = "",
    util::ExecContext* exec = nullptr);

/// Hash join: on first pull, builds a hash table over every triple matching
/// `pat`'s constants, keyed on the values at `key_vars`' positions
/// (variables of `pat` the input already binds; must be non-empty). Each
/// input row then probes in O(1) instead of binary-searching the index.
/// Chains preserve build (index) order, so the output is deterministic.
/// With an ExecContext, the build side charges kHashJoinBuildBytesPerRow
/// per triple against the memory budget; if the charge is refused the
/// cursor degrades to an index nested-loop join (Describe reports
/// "degraded=nlj") instead of failing the query.
std::unique_ptr<Cursor> MakeHashJoinCursor(std::unique_ptr<Cursor> input,
                                           const store::TripleTable& table,
                                           const CompiledPattern& pat,
                                           std::vector<uint32_t> key_vars,
                                           std::string label = "",
                                           util::ExecContext* exec = nullptr);

/// Root governor: charges each produced row against `exec`'s row budget and
/// polls deadline/cancellation between rows. Invisible to Explain (forwards
/// CollectOperators). `exec` must be non-null and outlive the cursor.
std::unique_ptr<Cursor> MakeGovernedCursor(std::unique_ptr<Cursor> input,
                                           util::ExecContext* exec);

/// Narrows full-width binding rows to the head columns, in head order.
std::unique_ptr<Cursor> MakeProjectCursor(std::unique_ptr<Cursor> input,
                                          std::vector<uint32_t> head,
                                          std::string label = "");

/// Deduplicates rows (util::RowSet seen-set); first occurrence wins, order
/// otherwise preserved.
std::unique_ptr<Cursor> MakeDistinctCursor(std::unique_ptr<Cursor> input);

/// Skips the first `offset` rows, then emits up to `limit` more. Once the
/// quota is reached it stops pulling from its input entirely — this is the
/// operator that makes `--limit k` cost k rows, not the full result.
std::unique_ptr<Cursor> MakeLimitOffsetCursor(std::unique_ptr<Cursor> input,
                                              size_t limit, size_t offset);

// ---- Morsel-driven parallel execution ---------------------------------------
//
// The parallel executor splits the plan's driving scan into fixed-size
// contiguous morsels (store::TripleTable::MatchSpan subranges), runs the
// full join pipeline per morsel on the shared util::ThreadPool, and merges
// the per-morsel row buffers in morsel-index order — so the merged stream
// is byte-identical to the sequential pipeline at every thread count.
// See src/query/README.md for the morsel lifecycle and invariants.

/// Rows per morsel. Fixed independently of the thread count: morsel
/// boundaries are a function of the data alone, so the ordered concatenation
/// of per-morsel outputs never depends on how many workers ran them.
inline constexpr uint64_t kMorselRows = 4096;

/// The pattern with only its constants bound (every variable a wildcard) —
/// the driving-scan / hash-build pattern. Exposed for the executor's
/// fan-out gate, which Counts the driving scan before splitting it.
store::TriplePattern PatternConstants(const CompiledPattern& pat);

/// Leaf scan over one morsel: exactly MakeIndexScanCursor restricted to the
/// sub-range [begin_offset, end_offset) of `pat`'s match range in its
/// serving index (offsets clamped; see TripleTable::OpenScanSlice).
std::unique_ptr<Cursor> MakeIndexScanSliceCursor(
    const store::TripleTable& table, const CompiledPattern& pat,
    size_t num_vars, size_t begin_offset, size_t end_offset,
    std::string label = "", util::ExecContext* exec = nullptr);

/// The build side of a hash join shared by every morsel pipeline of one
/// parallel query: built once — partitioned by key hash, partitions built
/// in parallel, each inserting its keys' triples in index order so probe
/// chains replay matches exactly like the sequential HashJoinCursor — then
/// probed concurrently, read-only. Charges the ExecContext memory budget at
/// kHashJoinBuildBytesPerRow like the sequential build and degrades the
/// same way: a refused charge abandons the build (full refund) and every
/// probe cursor falls back to index nested-loop probing, byte-identical.
class SharedHashJoinBuild;

std::shared_ptr<SharedHashJoinBuild> MakeSharedHashJoinBuild(
    const store::TripleTable& table, const CompiledPattern& pat,
    std::vector<uint32_t> key_vars, util::ExecContext* exec,
    uint32_t parallelism);

/// Probe-side cursor over a shared build (which must be EnsureBuilt()-ed
/// before the first Next — the gather operator does this before fan-out).
/// Emits the same stream as MakeHashJoinCursor over the same input.
std::unique_ptr<Cursor> MakeSharedHashJoinProbeCursor(
    std::unique_ptr<Cursor> input, const store::TripleTable& table,
    std::shared_ptr<const SharedHashJoinBuild> build, std::string label = "",
    util::ExecContext* exec = nullptr);

/// How the gather operator schedules morsel pipelines. kAuto picks per
/// host: on a single-CPU machine pool workers would only preempt the one
/// consumer (measured ~10-15% wall overhead on the query bench), so every
/// morsel streams inline on the consumer instead; multi-CPU hosts use pool
/// workers. Both paths emit the identical byte stream — tests pin each mode
/// explicitly so both stay exercised no matter what host CI lands on.
enum class ParallelWorkerMode : uint8_t {
  kAuto,
  kForceWorkers,  // always spawn pool workers, even on one CPU
  kForceInline,   // always stream morsels inline on the consumer
};

/// Everything MakeParallelGatherCursor needs to fan a pipeline out.
struct ParallelGatherSpec {
  /// Compiles one morsel's pipeline over the driving-scan sub-range
  /// [begin, end). Called concurrently from worker threads; must be
  /// self-contained (capture only state that outlives the gather cursor
  /// and is immutable while it runs).
  std::function<std::unique_ptr<Cursor>(size_t begin, size_t end)> pipeline;
  /// Exact size of the driving scan's match range.
  uint64_t total_rows = 0;
  /// Morsel granularity; 0 means kMorselRows. Tests shrink it to exercise
  /// many-morsel schedules on small fixtures.
  uint64_t morsel_rows = 0;
  /// Width of the rows the pipeline produces (the query's variable count).
  size_t width = 0;
  /// Worker fan-out (already resolved against hardware and morsel count).
  uint32_t num_threads = 1;
  /// Worker vs. inline scheduling policy (see ParallelWorkerMode).
  ParallelWorkerMode worker_mode = ParallelWorkerMode::kAuto;
  /// Shared hash-join builds referenced by the pipelines; the gather cursor
  /// EnsureBuilt()s them before spawning workers and keeps them alive.
  std::vector<std::shared_ptr<SharedHashJoinBuild>> builds;
  /// Driving-pattern text for Describe.
  std::string label;
  /// Borrowed governance context, polled by every morsel pipeline.
  util::ExecContext* exec = nullptr;
};

/// The exchange operator: claims morsels dynamically, runs `spec.pipeline`
/// per morsel on the shared ThreadPool into per-morsel row buffers, and
/// emits the buffers in morsel-index order — a stream byte-identical to the
/// sequential pipeline. A bounded run-ahead window caps buffered rows;
/// workers observing cancellation (or any morsel's failure) fall through to
/// the join instead of blocking, and the first failure in morsel order is
/// surfaced as the cursor's status after the preceding rows. The consumer
/// itself runs unclaimed morsels inline when the pool is saturated, so a
/// drain always makes progress no matter how small the pool is.
std::unique_ptr<Cursor> MakeParallelGatherCursor(ParallelGatherSpec spec);

}  // namespace rdfsum::query

#endif  // RDFSUM_QUERY_CURSOR_H_
