#ifndef RDFSUM_QUERY_CURSOR_H_
#define RDFSUM_QUERY_CURSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "query/plan.h"
#include "store/triple_table.h"
#include "util/exec_context.h"
#include "util/row_set.h"
#include "util/status.h"

namespace rdfsum::query {

/// A binding row flowing through the operator tree: TermIds indexed by the
/// plan's dense variable ids (or by head position downstream of Project).
/// kInvalidTermId marks a not-yet-bound slot.
using IdRow = std::vector<TermId>;

/// Volcano-style pull operator: Next() produces one row at a time, so a
/// caller that stops pulling (LIMIT, pagination, first-match existence
/// checks) stops the whole tree — no intermediate result is ever
/// materialized except the explicit stateful operators (a hash join's build
/// side, Distinct's seen-set).
///
/// Lifecycle: Open (construction) -> Next until it returns false ->
/// destruction. Exhaustion is stable: once Next returns false it keeps
/// returning false. Cursors borrow the TripleTable they scan (it must stay
/// frozen and outlive them) but own everything else, including copies of
/// the compiled patterns — the QueryPlan they were compiled from may die.
///
/// Next() returning false means either exhaustion or failure; status()
/// distinguishes them: OK after a clean drain, or the governance/failpoint
/// error (kDeadlineExceeded, kCancelled, kResourceExhausted, injected
/// faults) that stopped the stream. Errors are stable like exhaustion —
/// once status() is non-OK every later Next() returns false immediately —
/// and propagate up the tree, so draining the root and checking its
/// status() observes any failure anywhere in the pipeline.
///
/// Cursors built with an ExecContext poll it every
/// util::ExecContext::kCheckInterval candidate triples (not produced rows:
/// a selective scan that filters millions of triples between rows still
/// honors its deadline). A null context means ungoverned, zero overhead.
///
/// Every operator counts the rows it produced; Explain reads the counters
/// off the drained tree (CollectOperators) instead of threading callbacks
/// through the executor.
class Cursor {
 public:
  virtual ~Cursor() = default;

  /// Writes the next row into *row (resized to width()) and returns true,
  /// or returns false when the operator is exhausted or failed (see
  /// status()).
  virtual bool Next(IdRow* row) = 0;

  /// OK while streaming and after clean exhaustion; the terminating error
  /// otherwise.
  const Status& status() const { return status_; }

  /// Width of the rows this operator produces.
  virtual size_t width() const = 0;

  /// Operator label for Explain, e.g. "HashJoin[?o b:price ?price @SPO]".
  virtual std::string Describe() const = 0;

  /// Rows this operator has produced so far.
  uint64_t rows_produced() const { return rows_produced_; }

  /// Appends this operator and its inputs to *out, root-first, with depth
  /// increasing toward the leaves.
  virtual void CollectOperators(std::vector<OperatorStats>* out,
                                int depth = 0) const {
    out->push_back({depth, Describe(), rows_produced()});
  }

 protected:
  uint64_t rows_produced_ = 0;
  Status status_;
};

/// Estimated bytes of hash-join build state per build-side triple: the
/// triple (12), its chain link (4), and its amortized share of the key
/// directory and chain-head arrays. The executor multiplies this by the
/// plan's exact build-side count to decide whether a hash join fits the
/// ExecContext memory budget; HashJoinCursor charges the same rate while
/// actually building.
inline constexpr uint64_t kHashJoinBuildBytesPerRow = 48;

/// Produces nothing. Stands in for provably-empty queries (impossible
/// constants, summary-pruned requests).
std::unique_ptr<Cursor> MakeEmptyCursor(size_t width);

/// Produces exactly one all-unbound row — the unit of the join: a BGP with
/// no patterns has one (empty) embedding.
std::unique_ptr<Cursor> MakeSingletonCursor(size_t width);

/// Leaf scan: emits one binding row of width `num_vars` per triple matching
/// `pat`'s constants, serving matches from a resumable store::ScanCursor
/// (one binary search at open, pointer bumps per pull). Handles repeated
/// variables (?x p ?x binds consistently or skips). `label` is the pattern
/// text for Describe.
std::unique_ptr<Cursor> MakeIndexScanCursor(const store::TripleTable& table,
                                            const CompiledPattern& pat,
                                            size_t num_vars,
                                            std::string label = "",
                                            util::ExecContext* exec = nullptr);

/// Index nested-loop join: for each input row, instantiates `pat` with the
/// row's bindings and extends the row with every match (a fresh index range
/// per probe — O(log n) binary search each).
std::unique_ptr<Cursor> MakeIndexNestedLoopJoinCursor(
    std::unique_ptr<Cursor> input, const store::TripleTable& table,
    const CompiledPattern& pat, std::string label = "",
    util::ExecContext* exec = nullptr);

/// Hash join: on first pull, builds a hash table over every triple matching
/// `pat`'s constants, keyed on the values at `key_vars`' positions
/// (variables of `pat` the input already binds; must be non-empty). Each
/// input row then probes in O(1) instead of binary-searching the index.
/// Chains preserve build (index) order, so the output is deterministic.
/// With an ExecContext, the build side charges kHashJoinBuildBytesPerRow
/// per triple against the memory budget; if the charge is refused the
/// cursor degrades to an index nested-loop join (Describe reports
/// "degraded=nlj") instead of failing the query.
std::unique_ptr<Cursor> MakeHashJoinCursor(std::unique_ptr<Cursor> input,
                                           const store::TripleTable& table,
                                           const CompiledPattern& pat,
                                           std::vector<uint32_t> key_vars,
                                           std::string label = "",
                                           util::ExecContext* exec = nullptr);

/// Root governor: charges each produced row against `exec`'s row budget and
/// polls deadline/cancellation between rows. Invisible to Explain (forwards
/// CollectOperators). `exec` must be non-null and outlive the cursor.
std::unique_ptr<Cursor> MakeGovernedCursor(std::unique_ptr<Cursor> input,
                                           util::ExecContext* exec);

/// Narrows full-width binding rows to the head columns, in head order.
std::unique_ptr<Cursor> MakeProjectCursor(std::unique_ptr<Cursor> input,
                                          std::vector<uint32_t> head,
                                          std::string label = "");

/// Deduplicates rows (util::RowSet seen-set); first occurrence wins, order
/// otherwise preserved.
std::unique_ptr<Cursor> MakeDistinctCursor(std::unique_ptr<Cursor> input);

/// Skips the first `offset` rows, then emits up to `limit` more. Once the
/// quota is reached it stops pulling from its input entirely — this is the
/// operator that makes `--limit k` cost k rows, not the full result.
std::unique_ptr<Cursor> MakeLimitOffsetCursor(std::unique_ptr<Cursor> input,
                                              size_t limit, size_t offset);

}  // namespace rdfsum::query

#endif  // RDFSUM_QUERY_CURSOR_H_
