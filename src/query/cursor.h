#ifndef RDFSUM_QUERY_CURSOR_H_
#define RDFSUM_QUERY_CURSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "query/plan.h"
#include "store/triple_table.h"
#include "util/row_set.h"

namespace rdfsum::query {

/// A binding row flowing through the operator tree: TermIds indexed by the
/// plan's dense variable ids (or by head position downstream of Project).
/// kInvalidTermId marks a not-yet-bound slot.
using IdRow = std::vector<TermId>;

/// Volcano-style pull operator: Next() produces one row at a time, so a
/// caller that stops pulling (LIMIT, pagination, first-match existence
/// checks) stops the whole tree — no intermediate result is ever
/// materialized except the explicit stateful operators (a hash join's build
/// side, Distinct's seen-set).
///
/// Lifecycle: Open (construction) -> Next until it returns false ->
/// destruction. Exhaustion is stable: once Next returns false it keeps
/// returning false. Cursors borrow the TripleTable they scan (it must stay
/// frozen and outlive them) but own everything else, including copies of
/// the compiled patterns — the QueryPlan they were compiled from may die.
///
/// Every operator counts the rows it produced; Explain reads the counters
/// off the drained tree (CollectOperators) instead of threading callbacks
/// through the executor.
class Cursor {
 public:
  virtual ~Cursor() = default;

  /// Writes the next row into *row (resized to width()) and returns true,
  /// or returns false when the operator is exhausted.
  virtual bool Next(IdRow* row) = 0;

  /// Width of the rows this operator produces.
  virtual size_t width() const = 0;

  /// Operator label for Explain, e.g. "HashJoin[?o b:price ?price @SPO]".
  virtual std::string Describe() const = 0;

  /// Rows this operator has produced so far.
  uint64_t rows_produced() const { return rows_produced_; }

  /// Appends this operator and its inputs to *out, root-first, with depth
  /// increasing toward the leaves.
  virtual void CollectOperators(std::vector<OperatorStats>* out,
                                int depth = 0) const {
    out->push_back({depth, Describe(), rows_produced()});
  }

 protected:
  uint64_t rows_produced_ = 0;
};

/// Produces nothing. Stands in for provably-empty queries (impossible
/// constants, summary-pruned requests).
std::unique_ptr<Cursor> MakeEmptyCursor(size_t width);

/// Produces exactly one all-unbound row — the unit of the join: a BGP with
/// no patterns has one (empty) embedding.
std::unique_ptr<Cursor> MakeSingletonCursor(size_t width);

/// Leaf scan: emits one binding row of width `num_vars` per triple matching
/// `pat`'s constants, serving matches from a resumable store::ScanCursor
/// (one binary search at open, pointer bumps per pull). Handles repeated
/// variables (?x p ?x binds consistently or skips). `label` is the pattern
/// text for Describe.
std::unique_ptr<Cursor> MakeIndexScanCursor(const store::TripleTable& table,
                                            const CompiledPattern& pat,
                                            size_t num_vars,
                                            std::string label = "");

/// Index nested-loop join: for each input row, instantiates `pat` with the
/// row's bindings and extends the row with every match (a fresh index range
/// per probe — O(log n) binary search each).
std::unique_ptr<Cursor> MakeIndexNestedLoopJoinCursor(
    std::unique_ptr<Cursor> input, const store::TripleTable& table,
    const CompiledPattern& pat, std::string label = "");

/// Hash join: on first pull, builds a hash table over every triple matching
/// `pat`'s constants, keyed on the values at `key_vars`' positions
/// (variables of `pat` the input already binds; must be non-empty). Each
/// input row then probes in O(1) instead of binary-searching the index.
/// Chains preserve build (index) order, so the output is deterministic.
std::unique_ptr<Cursor> MakeHashJoinCursor(std::unique_ptr<Cursor> input,
                                           const store::TripleTable& table,
                                           const CompiledPattern& pat,
                                           std::vector<uint32_t> key_vars,
                                           std::string label = "");

/// Narrows full-width binding rows to the head columns, in head order.
std::unique_ptr<Cursor> MakeProjectCursor(std::unique_ptr<Cursor> input,
                                          std::vector<uint32_t> head,
                                          std::string label = "");

/// Deduplicates rows (util::RowSet seen-set); first occurrence wins, order
/// otherwise preserved.
std::unique_ptr<Cursor> MakeDistinctCursor(std::unique_ptr<Cursor> input);

/// Skips the first `offset` rows, then emits up to `limit` more. Once the
/// quota is reached it stops pulling from its input entirely — this is the
/// operator that makes `--limit k` cost k rows, not the full result.
std::unique_ptr<Cursor> MakeLimitOffsetCursor(std::unique_ptr<Cursor> input,
                                              size_t limit, size_t offset);

}  // namespace rdfsum::query

#endif  // RDFSUM_QUERY_CURSOR_H_
