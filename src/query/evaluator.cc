#include "query/evaluator.h"

#include <cassert>
#include <utility>

namespace rdfsum::query {

BgpEvaluator::BgpEvaluator(const Graph& g, EvaluatorOptions options)
    : dict_(&g.dict()), options_(options) {
  g.ForEachTriple([&](const Triple& t) { table_.Append(t); });
  table_.Freeze();
}

BgpEvaluator::BgpEvaluator(const Dictionary& dict, store::TripleTable table,
                           EvaluatorOptions options)
    : dict_(&dict), options_(options), table_(std::move(table)) {
  assert(table_.frozen() && "store-backed evaluation requires a frozen table");
}

QueryPlan BgpEvaluator::Plan(const BgpQuery& q) const {
  return Plan(q, options_.planner);
}

QueryPlan BgpEvaluator::Plan(const BgpQuery& q, PlannerMode mode) const {
  return BuildQueryPlan(q, *dict_, table_, mode, options_.estimator);
}

StatusOr<std::unique_ptr<Cursor>> BgpEvaluator::Open(
    const BgpQuery& q, CursorOptions options) const {
  return Open(q, options_.planner, options);
}

StatusOr<std::unique_ptr<Cursor>> BgpEvaluator::Open(
    const BgpQuery& q, PlannerMode mode, CursorOptions options) const {
  return Open(q, Plan(q, mode), options);
}

StatusOr<std::unique_ptr<Cursor>> BgpEvaluator::Open(
    const BgpQuery& q, const QueryPlan& plan, CursorOptions options) const {
  RDFSUM_ASSIGN_OR_RETURN(std::vector<uint32_t> head,
                          ResolveDistinguished(q, plan.compiled));
  return CompileQueryTree(table_, plan, head, options).root;
}

Row BgpEvaluator::Decode(const IdRow& row) const {
  Row out;
  out.reserve(row.size());
  for (TermId id : row) out.push_back(dict_->Decode(id));
  return out;
}

bool BgpEvaluator::ExistsMatch(const BgpQuery& q) const {
  // First-match semantics: never pay a hash build for a single pull — a
  // nested-loop probe finds the first embedding in O(log n).
  CursorTree tree =
      CompileEmbeddingTree(table_, Plan(q), HashJoinMode::kNever);
  IdRow row;
  return tree.root->Next(&row);
}

StatusOr<std::vector<Row>> BgpEvaluator::Evaluate(const BgpQuery& q,
                                                  size_t limit) const {
  return Evaluate(q, limit, options_.planner);
}

StatusOr<std::vector<Row>> BgpEvaluator::Evaluate(const BgpQuery& q,
                                                  size_t limit,
                                                  PlannerMode mode) const {
  CursorOptions options;
  options.limit = limit;
  return Evaluate(q, options, mode);
}

StatusOr<std::vector<Row>> BgpEvaluator::Evaluate(
    const BgpQuery& q, const CursorOptions& options) const {
  return Evaluate(q, options, options_.planner);
}

StatusOr<std::vector<Row>> BgpEvaluator::Evaluate(const BgpQuery& q,
                                                  const CursorOptions& options,
                                                  PlannerMode mode) const {
  RDFSUM_ASSIGN_OR_RETURN(std::unique_ptr<Cursor> cursor,
                          Open(q, mode, options));
  std::vector<Row> rows;
  IdRow row;
  while (cursor->Next(&row)) rows.push_back(Decode(row));
  // A false Next() is exhaustion or failure; the cursor's status says which.
  RDFSUM_RETURN_IF_ERROR(cursor->status());
  return rows;
}

uint64_t BgpEvaluator::CountEmbeddings(const BgpQuery& q) const {
  CursorTree tree = CompileEmbeddingTree(table_, Plan(q));
  IdRow row;
  while (tree.root->Next(&row)) {
  }
  return tree.root->rows_produced();
}

StatusOr<Explanation> BgpEvaluator::Explain(const BgpQuery& q) const {
  return Explain(q, options_.planner);
}

StatusOr<Explanation> BgpEvaluator::Explain(const BgpQuery& q,
                                            PlannerMode mode) const {
  Explanation out;
  out.plan = Plan(q, mode);
  RDFSUM_ASSIGN_OR_RETURN(std::vector<uint32_t> head,
                          ResolveDistinguished(q, out.plan.compiled));
  // No limit: Explain reports the true cardinality of every operator.
  CursorTree tree = CompileQueryTree(table_, out.plan, head);
  IdRow row;
  while (tree.root->Next(&row)) {
  }
  RDFSUM_RETURN_IF_ERROR(tree.root->status());
  out.actual_rows.reserve(tree.step_cursors.size());
  for (const Cursor* step : tree.step_cursors) {
    out.actual_rows.push_back(step->rows_produced());
  }
  out.num_embeddings = tree.embeddings->rows_produced();
  out.num_result_rows = tree.distinct->rows_produced();
  tree.root->CollectOperators(&out.operators);
  return out;
}

}  // namespace rdfsum::query
