#include "query/evaluator.h"

#include <algorithm>

namespace rdfsum::query {
namespace {

constexpr TermId kUnbound = kInvalidTermId;

/// Deduplicating set of fixed-width projected rows: all rows live packed in
/// one arena and an open-addressing table stores row ordinals, so the hot
/// path does one hash probe and no per-row allocation (the std::set of
/// vectors it replaces allocated per row and compared in O(width log n)).
class RowSet {
 public:
  explicit RowSet(size_t width) : width_(width) { slots_.resize(64, 0); }

  size_t size() const { return count_; }
  const TermId* row(size_t i) const { return arena_.data() + i * width_; }

  /// Returns true iff the row was newly inserted.
  bool Insert(const TermId* row_data) {
    if (width_ == 0) {
      // Boolean projection: there is only one (empty) row.
      if (count_ > 0) return false;
      ++count_;
      return true;
    }
    const uint64_t h = Hash(row_data);
    const size_t mask = slots_.size() - 1;
    size_t idx = static_cast<size_t>(h) & mask;
    while (slots_[idx] != 0) {
      if (std::equal(row_data, row_data + width_, row(slots_[idx] - 1))) {
        return false;
      }
      idx = (idx + 1) & mask;
    }
    arena_.insert(arena_.end(), row_data, row_data + width_);
    slots_[idx] = static_cast<uint32_t>(++count_);
    if (count_ * 10 >= slots_.size() * 7) Grow();
    return true;
  }

 private:
  uint64_t Hash(const TermId* row_data) const {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (size_t i = 0; i < width_; ++i) {
      h ^= row_data[i];
      h *= 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 29;
    }
    return h;
  }

  void Grow() {
    std::vector<uint32_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    const size_t mask = slots_.size() - 1;
    for (size_t r = 0; r < count_; ++r) {
      size_t idx = static_cast<size_t>(Hash(row(r))) & mask;
      while (slots_[idx] != 0) idx = (idx + 1) & mask;
      slots_[idx] = static_cast<uint32_t>(r + 1);
    }
  }

  size_t width_;
  size_t count_ = 0;
  std::vector<TermId> arena_;    // count_ * width_ packed ids
  std::vector<uint32_t> slots_;  // open addressing; row ordinal + 1, 0 empty
};

/// Executes a QueryPlan: follows plan.steps verbatim (the planner already
/// fixed the order and per-step index), binding variables by backtracking.
/// Counts the bindings produced at each step for Explain().
class PlanRunner {
 public:
  PlanRunner(const store::TripleTable& table, const QueryPlan& plan)
      : table_(table), plan_(plan) {
    bindings_.assign(plan_.compiled.var_names.size(), kUnbound);
    step_rows_.assign(plan_.steps.size(), 0);
  }

  /// Invokes `fn(bindings)` for each embedding; fn returns false to stop.
  template <typename Fn>
  void Enumerate(Fn&& fn) {
    if (plan_.compiled.impossible) return;
    stop_ = false;
    Recurse(0, fn);
  }

  const std::vector<uint64_t>& step_rows() const { return step_rows_; }

 private:
  store::TriplePattern Instantiate(const CompiledPattern& p) const {
    store::TriplePattern q;
    auto fill = [&](const CompiledSlot& s) -> std::optional<TermId> {
      if (!s.is_var) return s.constant;
      TermId b = bindings_[s.var];
      if (b != kUnbound) return b;
      return std::nullopt;
    };
    q.s = fill(p.s);
    q.p = fill(p.p);
    q.o = fill(p.o);
    return q;
  }

  template <typename Fn>
  void Recurse(size_t depth, Fn&& fn) {
    if (stop_) return;
    if (depth == plan_.steps.size()) {
      if (!fn(bindings_)) stop_ = true;
      return;
    }
    const CompiledPattern& pat =
        plan_.compiled.patterns[plan_.steps[depth].pattern];
    // Visitor scan over the step's contiguous index range; the scan stops
    // as soon as an embedding satisfied the caller.
    table_.Scan(Instantiate(pat), [&](const Triple& m) {
      // Bind the unbound variable slots; a pattern with repeated variables
      // (e.g. ?x p ?x) must bind consistently.
      uint32_t newly[3];
      int num_newly = 0;
      bool ok = true;
      auto bind = [&](const CompiledSlot& s, TermId value) {
        if (!s.is_var) return;
        TermId cur = bindings_[s.var];
        if (cur == kUnbound) {
          bindings_[s.var] = value;
          newly[num_newly++] = s.var;
        } else if (cur != value) {
          ok = false;
        }
      };
      bind(pat.s, m.s);
      if (ok) bind(pat.p, m.p);
      if (ok) bind(pat.o, m.o);
      if (ok) {
        ++step_rows_[depth];
        Recurse(depth + 1, fn);
      }
      for (int i = 0; i < num_newly; ++i) bindings_[newly[i]] = kUnbound;
      return !stop_;
    });
  }

  const store::TripleTable& table_;
  const QueryPlan& plan_;
  std::vector<TermId> bindings_;
  std::vector<uint64_t> step_rows_;
  bool stop_ = false;
};

}  // namespace

BgpEvaluator::BgpEvaluator(const Graph& g, EvaluatorOptions options)
    : graph_(g), options_(options) {
  g.ForEachTriple([&](const Triple& t) { table_.Append(t); });
  table_.Freeze();
}

QueryPlan BgpEvaluator::Plan(const BgpQuery& q) const {
  return Plan(q, options_.planner);
}

QueryPlan BgpEvaluator::Plan(const BgpQuery& q, PlannerMode mode) const {
  return BuildQueryPlan(q, graph_.dict(), table_, mode, options_.estimator);
}

bool BgpEvaluator::ExistsMatch(const BgpQuery& q) const {
  QueryPlan plan = Plan(q);
  bool found = false;
  PlanRunner runner(table_, plan);
  runner.Enumerate([&](const std::vector<TermId>&) {
    found = true;
    return false;
  });
  return found;
}

StatusOr<std::vector<Row>> BgpEvaluator::Evaluate(const BgpQuery& q,
                                                  size_t limit) const {
  return Evaluate(q, limit, options_.planner);
}

StatusOr<std::vector<Row>> BgpEvaluator::Evaluate(const BgpQuery& q,
                                                  size_t limit,
                                                  PlannerMode mode) const {
  QueryPlan plan = Plan(q, mode);
  RDFSUM_ASSIGN_OR_RETURN(std::vector<uint32_t> head,
                          ResolveDistinguished(q, plan.compiled));
  std::vector<Row> rows;
  if (limit == 0) return rows;
  RowSet dedup(head.size());
  std::vector<TermId> scratch(head.size());
  PlanRunner runner(table_, plan);
  runner.Enumerate([&](const std::vector<TermId>& bindings) {
    for (size_t i = 0; i < head.size(); ++i) scratch[i] = bindings[head[i]];
    if (dedup.Insert(scratch.data()) && dedup.size() >= limit) return false;
    return true;
  });
  rows.reserve(dedup.size());
  for (size_t r = 0; r < dedup.size(); ++r) {
    Row row;
    row.reserve(head.size());
    const TermId* encoded = dedup.row(r);
    for (size_t i = 0; i < head.size(); ++i) {
      row.push_back(graph_.dict().Decode(encoded[i]));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

uint64_t BgpEvaluator::CountEmbeddings(const BgpQuery& q) const {
  QueryPlan plan = Plan(q);
  uint64_t n = 0;
  PlanRunner runner(table_, plan);
  runner.Enumerate([&](const std::vector<TermId>&) {
    ++n;
    return true;
  });
  return n;
}

StatusOr<Explanation> BgpEvaluator::Explain(const BgpQuery& q) const {
  return Explain(q, options_.planner);
}

StatusOr<Explanation> BgpEvaluator::Explain(const BgpQuery& q,
                                            PlannerMode mode) const {
  Explanation out;
  out.plan = Plan(q, mode);
  RDFSUM_ASSIGN_OR_RETURN(std::vector<uint32_t> head,
                          ResolveDistinguished(q, out.plan.compiled));
  RowSet dedup(head.size());
  std::vector<TermId> scratch(head.size());
  PlanRunner runner(table_, out.plan);
  runner.Enumerate([&](const std::vector<TermId>& bindings) {
    ++out.num_embeddings;
    for (size_t i = 0; i < head.size(); ++i) scratch[i] = bindings[head[i]];
    dedup.Insert(scratch.data());
    return true;
  });
  out.actual_rows = runner.step_rows();
  out.num_result_rows = dedup.size();
  return out;
}

}  // namespace rdfsum::query
