#include "query/evaluator.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace rdfsum::query {
namespace {

/// Compiled pattern position: variable index (dense) or constant TermId.
struct SlotC {
  bool is_var = false;
  uint32_t var = 0;
  TermId constant = kInvalidTermId;
  /// True when the constant does not occur in the graph's dictionary; the
  /// pattern can never match.
  bool impossible = false;
};

struct PatternC {
  SlotC s, p, o;
};

struct Compiled {
  std::vector<PatternC> patterns;
  std::unordered_map<std::string, uint32_t> var_index;
  std::vector<std::string> var_names;
  bool impossible = false;
};

Compiled Compile(const BgpQuery& q, const Dictionary& dict) {
  Compiled out;
  auto slot = [&](const PatternTerm& t) {
    SlotC s;
    if (t.is_var) {
      s.is_var = true;
      auto [it, inserted] = out.var_index.emplace(
          t.var, static_cast<uint32_t>(out.var_names.size()));
      if (inserted) out.var_names.push_back(t.var);
      s.var = it->second;
    } else {
      s.constant = dict.Lookup(t.term);
      if (s.constant == kInvalidTermId) s.impossible = true;
    }
    return s;
  };
  for (const TriplePatternQ& t : q.triples) {
    PatternC pc{slot(t.s), slot(t.p), slot(t.o)};
    if (pc.s.impossible || pc.p.impossible || pc.o.impossible) {
      out.impossible = true;
    }
    out.patterns.push_back(pc);
  }
  return out;
}

constexpr TermId kUnbound = kInvalidTermId;

class Search {
 public:
  Search(const store::TripleTable& table, const Compiled& query)
      : table_(table), query_(query) {
    bindings_.assign(query_.var_names.size(), kUnbound);
    used_.assign(query_.patterns.size(), false);
  }

  /// Invokes `fn(bindings)` for each embedding; fn returns false to stop.
  template <typename Fn>
  void Enumerate(Fn&& fn) {
    if (query_.impossible) return;
    stop_ = false;
    Recurse(0, fn);
  }

 private:
  /// Number of unbound variables in a pattern under current bindings.
  int Unbound(const PatternC& p) const {
    int n = 0;
    for (const SlotC* s : {&p.s, &p.p, &p.o}) {
      if (s->is_var && bindings_[s->var] == kUnbound) ++n;
    }
    return n;
  }

  store::TriplePattern Instantiate(const PatternC& p) const {
    store::TriplePattern q;
    auto fill = [&](const SlotC& s) -> std::optional<TermId> {
      if (!s.is_var) return s.constant;
      TermId b = bindings_[s.var];
      if (b != kUnbound) return b;
      return std::nullopt;
    };
    q.s = fill(p.s);
    q.p = fill(p.p);
    q.o = fill(p.o);
    return q;
  }

  template <typename Fn>
  void Recurse(size_t depth, Fn&& fn) {
    if (stop_) return;
    if (depth == query_.patterns.size()) {
      if (!fn(bindings_)) stop_ = true;
      return;
    }
    // Most-constrained-first: pick the unused pattern with the fewest
    // unbound variables (cheap selectivity heuristic).
    size_t best = SIZE_MAX;
    int best_unbound = 4;
    for (size_t i = 0; i < query_.patterns.size(); ++i) {
      if (used_[i]) continue;
      int u = Unbound(query_.patterns[i]);
      if (u < best_unbound) {
        best_unbound = u;
        best = i;
      }
    }
    used_[best] = true;
    const PatternC& pat = query_.patterns[best];
    store::TriplePattern probe = Instantiate(pat);
    // Visitor scan: no per-pattern match vector is materialized; the scan
    // stops as soon as an embedding satisfied the caller.
    table_.Scan(probe, [&](const Triple& m) {
      // Bind the unbound variable slots; a pattern with repeated variables
      // (e.g. ?x p ?x) must bind consistently.
      uint32_t newly[3];
      int num_newly = 0;
      bool ok = true;
      auto bind = [&](const SlotC& s, TermId value) {
        if (!s.is_var) return;
        TermId cur = bindings_[s.var];
        if (cur == kUnbound) {
          bindings_[s.var] = value;
          newly[num_newly++] = s.var;
        } else if (cur != value) {
          ok = false;
        }
      };
      bind(pat.s, m.s);
      if (ok) bind(pat.p, m.p);
      if (ok) bind(pat.o, m.o);
      if (ok) Recurse(depth + 1, fn);
      for (int i = 0; i < num_newly; ++i) bindings_[newly[i]] = kUnbound;
      return !stop_;
    });
    used_[best] = false;
  }

  const store::TripleTable& table_;
  const Compiled& query_;
  std::vector<TermId> bindings_;
  std::vector<bool> used_;
  bool stop_ = false;
};

}  // namespace

BgpEvaluator::BgpEvaluator(const Graph& g) : graph_(g) {
  g.ForEachTriple([&](const Triple& t) { table_.Append(t); });
  table_.Freeze();
}

bool BgpEvaluator::ExistsMatch(const BgpQuery& q) const {
  Compiled c = Compile(q, graph_.dict());
  bool found = false;
  Search search(table_, c);
  search.Enumerate([&](const std::vector<TermId>&) {
    found = true;
    return false;
  });
  return found;
}

StatusOr<std::vector<Row>> BgpEvaluator::Evaluate(const BgpQuery& q,
                                                  size_t limit) const {
  Compiled c = Compile(q, graph_.dict());
  // Head variables must occur in the body.
  std::vector<uint32_t> head;
  for (const std::string& v : q.distinguished) {
    auto it = c.var_index.find(v);
    if (it == c.var_index.end()) {
      return Status::InvalidArgument("distinguished variable ?" + v +
                                     " does not occur in the query body");
    }
    head.push_back(it->second);
  }
  std::set<std::vector<TermId>> dedup;
  Search search(table_, c);
  search.Enumerate([&](const std::vector<TermId>& bindings) {
    std::vector<TermId> row;
    row.reserve(head.size());
    for (uint32_t v : head) row.push_back(bindings[v]);
    dedup.insert(std::move(row));
    return dedup.size() < limit;
  });
  std::vector<Row> rows;
  rows.reserve(dedup.size());
  for (const auto& encoded : dedup) {
    Row row;
    row.reserve(encoded.size());
    for (TermId id : encoded) row.push_back(graph_.dict().Decode(id));
    rows.push_back(std::move(row));
  }
  return rows;
}

uint64_t BgpEvaluator::CountEmbeddings(const BgpQuery& q) const {
  Compiled c = Compile(q, graph_.dict());
  uint64_t n = 0;
  Search search(table_, c);
  search.Enumerate([&](const std::vector<TermId>&) {
    ++n;
    return true;
  });
  return n;
}

}  // namespace rdfsum::query
