#include "query/executor.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/parallel_for.h"

namespace rdfsum::query {

namespace {

/// Compiles the morsel-parallel embeddings root, or nullptr when the query
/// should run sequentially: parallelism not requested, the driving scan is
/// under the gate, or fewer than two workers resolve. The per-morsel
/// pipeline mirrors CompileEmbeddingTree step for step — slice scan, then
/// per step either a probe of a shared hash build or an index nested-loop
/// join — under the same hash/degrade decisions, so the ordered merge of
/// morsel outputs is the sequential stream.
std::unique_ptr<Cursor> TryCompileParallelEmbeddings(
    const store::TripleTable& table, const QueryPlan& plan,
    const ExecutorOptions& options, size_t num_vars) {
  if (options.parallelism == 1) return nullptr;
  const CompiledBgp& c = plan.compiled;
  const CompiledPattern& first = c.patterns[plan.steps[0].pattern];
  // The gate reads the *exact* match count (O(log n) index-range length),
  // not an estimate: small probes must reliably stay sequential.
  const uint64_t driving = table.Count(PatternConstants(first));
  const uint64_t gate = options.min_parallel_rows != 0
                            ? options.min_parallel_rows
                            : kParallelMinScanRows;
  if (driving < gate) return nullptr;
  const uint64_t morsel_rows =
      options.morsel_rows != 0 ? options.morsel_rows : kMorselRows;
  const uint64_t num_morsels = (driving + morsel_rows - 1) / morsel_rows;
  const uint32_t threads =
      util::ResolveThreadCount(options.parallelism, num_morsels);
  if (threads < 2) return nullptr;

  // Per-join-step compilation state, shared (immutably, once built) by
  // every morsel pipeline. A null build means nested-loop join for that
  // step — either the plan said so or the memory budget ruled the build out
  // up front, exactly like the sequential compile.
  struct StepSpec {
    CompiledPattern pat;
    std::string label;
    std::shared_ptr<SharedHashJoinBuild> build;
  };
  auto steps = std::make_shared<std::vector<StepSpec>>();
  std::vector<bool> bound(num_vars, false);
  for (const CompiledSlot* sl : {&first.s, &first.p, &first.o}) {
    if (sl->is_var) bound[sl->var] = true;
  }
  ParallelGatherSpec spec;
  for (size_t i = 1; i < plan.steps.size(); ++i) {
    const PlanStep& step = plan.steps[i];
    const CompiledPattern& pat = c.patterns[step.pattern];
    std::vector<uint32_t> key_vars;
    for (const CompiledSlot* sl : {&pat.s, &pat.p, &pat.o}) {
      if (sl->is_var && bound[sl->var] &&
          std::find(key_vars.begin(), key_vars.end(), sl->var) ==
              key_vars.end()) {
        key_vars.push_back(sl->var);
      }
    }
    bool hash = !key_vars.empty() &&
                (options.hash_join == HashJoinMode::kAlways ||
                 (options.hash_join == HashJoinMode::kFromPlan &&
                  step.use_hash_join));
    if (hash && options.exec != nullptr &&
        options.exec->WouldExceedMemory(static_cast<uint64_t>(
            step.estimated_build_rows * kHashJoinBuildBytesPerRow))) {
      hash = false;
    }
    StepSpec s;
    s.pat = pat;
    s.label = step.pattern_text;
    if (hash) {
      s.build = MakeSharedHashJoinBuild(table, pat, std::move(key_vars),
                                        options.exec, threads);
      spec.builds.push_back(s.build);
    }
    steps->push_back(std::move(s));
    for (const CompiledSlot* sl : {&pat.s, &pat.p, &pat.o}) {
      if (sl->is_var) bound[sl->var] = true;
    }
  }

  spec.total_rows = driving;
  spec.morsel_rows = options.morsel_rows;  // 0 resolves inside the gather
  spec.width = num_vars;
  spec.num_threads = threads;
  spec.worker_mode = options.worker_mode;
  spec.label = plan.steps[0].pattern_text;
  spec.exec = options.exec;
  spec.pipeline = [&table, steps, first, num_vars,
                   first_label = plan.steps[0].pattern_text,
                   exec = options.exec](size_t begin, size_t end) {
    std::unique_ptr<Cursor> cur = MakeIndexScanSliceCursor(
        table, first, num_vars, begin, end, first_label, exec);
    for (const StepSpec& s : *steps) {
      if (s.build != nullptr) {
        cur = MakeSharedHashJoinProbeCursor(std::move(cur), table, s.build,
                                            s.label, exec);
      } else {
        cur = MakeIndexNestedLoopJoinCursor(std::move(cur), table, s.pat,
                                            s.label, exec);
      }
    }
    return cur;
  };
  return MakeParallelGatherCursor(std::move(spec));
}

}  // namespace

CursorTree CompileEmbeddingTree(const store::TripleTable& table,
                                const QueryPlan& plan,
                                HashJoinMode hash_join,
                                util::ExecContext* exec) {
  CursorTree tree;
  const CompiledBgp& c = plan.compiled;
  const size_t num_vars = c.var_names.size();
  if (c.impossible) {
    tree.root = MakeEmptyCursor(num_vars);
    tree.embeddings = tree.root.get();
    return tree;
  }
  if (plan.steps.empty()) {
    tree.root = MakeSingletonCursor(num_vars);
    tree.embeddings = tree.root.get();
    return tree;
  }

  std::vector<bool> bound(num_vars, false);
  std::unique_ptr<Cursor> cur;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& step = plan.steps[i];
    const CompiledPattern& pat = c.patterns[step.pattern];
    if (i == 0) {
      cur = MakeIndexScanCursor(table, pat, num_vars, step.pattern_text,
                                exec);
    } else {
      // Join variables: `pat`'s variables an earlier step already bound,
      // deduplicated in slot order.
      std::vector<uint32_t> key_vars;
      for (const CompiledSlot* sl : {&pat.s, &pat.p, &pat.o}) {
        if (sl->is_var && bound[sl->var] &&
            std::find(key_vars.begin(), key_vars.end(), sl->var) ==
                key_vars.end()) {
          key_vars.push_back(sl->var);
        }
      }
      bool hash =
          !key_vars.empty() &&
          (hash_join == HashJoinMode::kAlways ||
           (hash_join == HashJoinMode::kFromPlan && step.use_hash_join));
      // Compile-time degrade: the plan records the exact build-side size,
      // so a hash join that cannot fit the memory budget is compiled as a
      // nested-loop join up front rather than discovering it mid-build.
      if (hash && exec != nullptr &&
          exec->WouldExceedMemory(static_cast<uint64_t>(
              step.estimated_build_rows * kHashJoinBuildBytesPerRow))) {
        hash = false;
      }
      if (hash) {
        cur = MakeHashJoinCursor(std::move(cur), table, pat,
                                 std::move(key_vars), step.pattern_text,
                                 exec);
      } else {
        cur = MakeIndexNestedLoopJoinCursor(std::move(cur), table, pat,
                                            step.pattern_text, exec);
      }
    }
    tree.step_cursors.push_back(cur.get());
    for (const CompiledSlot* sl : {&pat.s, &pat.p, &pat.o}) {
      if (sl->is_var) bound[sl->var] = true;
    }
  }
  tree.embeddings = cur.get();
  tree.root = std::move(cur);
  return tree;
}

CursorTree CompileEmbeddingTree(const store::TripleTable& table,
                                const QueryPlan& plan,
                                const ExecutorOptions& options) {
  const CompiledBgp& c = plan.compiled;
  if (!c.impossible && !plan.steps.empty()) {
    std::unique_ptr<Cursor> par =
        TryCompileParallelEmbeddings(table, plan, options, c.var_names.size());
    if (par != nullptr) {
      CursorTree tree;
      tree.embeddings = par.get();
      tree.root = std::move(par);
      return tree;  // step_cursors stay empty; see the header note
    }
  }
  return CompileEmbeddingTree(table, plan, options.hash_join, options.exec);
}

CursorTree CompileQueryTree(const store::TripleTable& table,
                            const QueryPlan& plan,
                            const std::vector<uint32_t>& head,
                            const ExecutorOptions& options) {
  CursorTree tree = CompileEmbeddingTree(table, plan, options);
  std::string head_label;
  for (uint32_t v : head) {
    if (!head_label.empty()) head_label += ' ';
    head_label += '?';
    head_label += plan.compiled.var_names[v];
  }
  std::unique_ptr<Cursor> cur =
      MakeProjectCursor(std::move(tree.root), head, std::move(head_label));
  cur = MakeDistinctCursor(std::move(cur));
  tree.distinct = cur.get();
  if (options.limit != SIZE_MAX || options.offset != 0) {
    cur = MakeLimitOffsetCursor(std::move(cur), options.limit,
                                options.offset);
  }
  // The governor sits above LimitOffset so the row budget meters answers
  // actually delivered, not rows consumed by OFFSET.
  if (options.exec != nullptr) {
    cur = MakeGovernedCursor(std::move(cur), options.exec);
  }
  tree.root = std::move(cur);
  return tree;
}

}  // namespace rdfsum::query
