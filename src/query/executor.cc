#include "query/executor.h"

#include <algorithm>
#include <utility>

namespace rdfsum::query {

CursorTree CompileEmbeddingTree(const store::TripleTable& table,
                                const QueryPlan& plan,
                                HashJoinMode hash_join,
                                util::ExecContext* exec) {
  CursorTree tree;
  const CompiledBgp& c = plan.compiled;
  const size_t num_vars = c.var_names.size();
  if (c.impossible) {
    tree.root = MakeEmptyCursor(num_vars);
    tree.embeddings = tree.root.get();
    return tree;
  }
  if (plan.steps.empty()) {
    tree.root = MakeSingletonCursor(num_vars);
    tree.embeddings = tree.root.get();
    return tree;
  }

  std::vector<bool> bound(num_vars, false);
  std::unique_ptr<Cursor> cur;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& step = plan.steps[i];
    const CompiledPattern& pat = c.patterns[step.pattern];
    if (i == 0) {
      cur = MakeIndexScanCursor(table, pat, num_vars, step.pattern_text,
                                exec);
    } else {
      // Join variables: `pat`'s variables an earlier step already bound,
      // deduplicated in slot order.
      std::vector<uint32_t> key_vars;
      for (const CompiledSlot* sl : {&pat.s, &pat.p, &pat.o}) {
        if (sl->is_var && bound[sl->var] &&
            std::find(key_vars.begin(), key_vars.end(), sl->var) ==
                key_vars.end()) {
          key_vars.push_back(sl->var);
        }
      }
      bool hash =
          !key_vars.empty() &&
          (hash_join == HashJoinMode::kAlways ||
           (hash_join == HashJoinMode::kFromPlan && step.use_hash_join));
      // Compile-time degrade: the plan records the exact build-side size,
      // so a hash join that cannot fit the memory budget is compiled as a
      // nested-loop join up front rather than discovering it mid-build.
      if (hash && exec != nullptr &&
          exec->WouldExceedMemory(static_cast<uint64_t>(
              step.estimated_build_rows * kHashJoinBuildBytesPerRow))) {
        hash = false;
      }
      if (hash) {
        cur = MakeHashJoinCursor(std::move(cur), table, pat,
                                 std::move(key_vars), step.pattern_text,
                                 exec);
      } else {
        cur = MakeIndexNestedLoopJoinCursor(std::move(cur), table, pat,
                                            step.pattern_text, exec);
      }
    }
    tree.step_cursors.push_back(cur.get());
    for (const CompiledSlot* sl : {&pat.s, &pat.p, &pat.o}) {
      if (sl->is_var) bound[sl->var] = true;
    }
  }
  tree.embeddings = cur.get();
  tree.root = std::move(cur);
  return tree;
}

CursorTree CompileQueryTree(const store::TripleTable& table,
                            const QueryPlan& plan,
                            const std::vector<uint32_t>& head,
                            const ExecutorOptions& options) {
  CursorTree tree =
      CompileEmbeddingTree(table, plan, options.hash_join, options.exec);
  std::string head_label;
  for (uint32_t v : head) {
    if (!head_label.empty()) head_label += ' ';
    head_label += '?';
    head_label += plan.compiled.var_names[v];
  }
  std::unique_ptr<Cursor> cur =
      MakeProjectCursor(std::move(tree.root), head, std::move(head_label));
  cur = MakeDistinctCursor(std::move(cur));
  tree.distinct = cur.get();
  if (options.limit != SIZE_MAX || options.offset != 0) {
    cur = MakeLimitOffsetCursor(std::move(cur), options.limit,
                                options.offset);
  }
  // The governor sits above LimitOffset so the row budget meters answers
  // actually delivered, not rows consumed by OFFSET.
  if (options.exec != nullptr) {
    cur = MakeGovernedCursor(std::move(cur), options.exec);
  }
  tree.root = std::move(cur);
  return tree;
}

}  // namespace rdfsum::query
