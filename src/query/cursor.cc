#include "query/cursor.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>

#include "util/fault_injection.h"
#include "util/parallel_for.h"
#include "util/thread_pool.h"

namespace rdfsum::query {
namespace {

constexpr TermId kUnbound = kInvalidTermId;

/// Per-cursor governance poll state. Expired() ticks once per candidate
/// triple and, every ExecContext::kCheckInterval ticks, refreshes *status
/// from the context; it returns true when the cursor must stop. A null
/// context never expires and costs one pointer test per candidate.
struct ExecPoll {
  util::ExecContext* ctx = nullptr;
  uint32_t ticks = 0;

  bool Expired(Status* status) {
    if (ctx == nullptr) return false;
    if ((++ticks & (util::ExecContext::kCheckInterval - 1)) != 0) return false;
    Status st = ctx->Check();
    if (st.ok()) return false;
    *status = std::move(st);
    return true;
  }
};

/// Binds `pat`'s variable slots from triple `t` into *row. Returns false on
/// a repeated-variable mismatch (?x p ?x with differing values); the row is
/// left partially written, so callers must re-copy their base row per
/// candidate triple. Positions the scan already pinned (constants, bound
/// variables instantiated into the pattern) bind as no-op equality checks.
bool BindTriple(const CompiledPattern& pat, const Triple& t, IdRow* row) {
  auto bind = [&](const CompiledSlot& s, TermId value) {
    if (!s.is_var) return true;
    TermId& slot = (*row)[s.var];
    if (slot == kUnbound) {
      slot = value;
      return true;
    }
    return slot == value;
  };
  return bind(pat.s, t.s) && bind(pat.p, t.p) && bind(pat.o, t.o);
}

/// The store pattern for `pat` under the bindings of `row`: constants plus
/// bound variables pin positions, unbound variables stay wildcards.
store::TriplePattern Instantiate(const CompiledPattern& pat,
                                 const IdRow& row) {
  store::TriplePattern q;
  auto fill = [&](const CompiledSlot& s) -> std::optional<TermId> {
    if (!s.is_var) return s.constant;
    TermId b = row[s.var];
    if (b != kUnbound) return b;
    return std::nullopt;
  };
  q.s = fill(pat.s);
  q.p = fill(pat.p);
  q.o = fill(pat.o);
  return q;
}

/// The pattern with only its constants bound — the hash-join build side.
store::TriplePattern ConstOnly(const CompiledPattern& pat) {
  store::TriplePattern q;
  if (!pat.s.is_var) q.s = pat.s.constant;
  if (!pat.p.is_var) q.p = pat.p.constant;
  if (!pat.o.is_var) q.o = pat.o.constant;
  return q;
}

class EmptyCursor final : public Cursor {
 public:
  explicit EmptyCursor(size_t width) : width_(width) {}
  bool Next(IdRow*) override { return false; }
  size_t width() const override { return width_; }
  std::string Describe() const override { return "EmptyResult"; }

 private:
  size_t width_;
};

class SingletonCursor final : public Cursor {
 public:
  explicit SingletonCursor(size_t width) : width_(width) {}
  bool Next(IdRow* row) override {
    if (done_) return false;
    done_ = true;
    row->assign(width_, kUnbound);
    ++rows_produced_;
    return true;
  }
  size_t width() const override { return width_; }
  std::string Describe() const override { return "SingletonRow"; }

 private:
  size_t width_;
  bool done_ = false;
};

class IndexScanCursor final : public Cursor {
 public:
  /// [begin_offset, end_offset) restricts the scan to one morsel of the
  /// pattern's match range; (0, SIZE_MAX) is the full scan.
  IndexScanCursor(const store::TripleTable& table, const CompiledPattern& pat,
                  size_t num_vars, size_t begin_offset, size_t end_offset,
                  std::string label, util::ExecContext* exec)
      : pat_(pat),
        width_(num_vars),
        label_(std::move(label)),
        index_(store::TripleTable::ChooseIndex(ConstOnly(pat))),
        scan_(table.OpenScanSlice(ConstOnly(pat), begin_offset, end_offset)) {
    poll_.ctx = exec;
  }

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    Triple t;
    while (scan_.Next(&t)) {
      if (poll_.Expired(&status_)) return false;
      row->assign(width_, kUnbound);
      if (BindTriple(pat_, t, row)) {
        ++rows_produced_;
        return true;
      }
    }
    return false;
  }
  size_t width() const override { return width_; }
  std::string Describe() const override {
    return "IndexScan[" + label_ + " @" + store::IndexKindName(index_) + "]";
  }

 private:
  CompiledPattern pat_;
  size_t width_;
  std::string label_;
  store::IndexKind index_;
  store::ScanCursor scan_;
  ExecPoll poll_;
};

class IndexNestedLoopJoinCursor final : public Cursor {
 public:
  IndexNestedLoopJoinCursor(std::unique_ptr<Cursor> input,
                            const store::TripleTable& table,
                            const CompiledPattern& pat, std::string label,
                            util::ExecContext* exec)
      : input_(std::move(input)),
        table_(table),
        pat_(pat),
        label_(std::move(label)) {
    poll_.ctx = exec;
  }

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    for (;;) {
      if (inner_open_) {
        Triple t;
        while (scan_.Next(&t)) {
          if (poll_.Expired(&status_)) return false;
          *row = current_;
          if (BindTriple(pat_, t, row)) {
            ++rows_produced_;
            return true;
          }
        }
        inner_open_ = false;
      }
      if (!input_->Next(&current_)) {
        status_ = input_->status();
        return false;
      }
      scan_ = table_.OpenScan(Instantiate(pat_, current_));
      inner_open_ = true;
    }
  }
  size_t width() const override { return input_->width(); }
  std::string Describe() const override {
    return "IndexNestedLoopJoin[" + label_ + "]";
  }
  void CollectOperators(std::vector<OperatorStats>* out,
                        int depth) const override {
    out->push_back({depth, Describe(), rows_produced()});
    input_->CollectOperators(out, depth + 1);
  }

 private:
  std::unique_ptr<Cursor> input_;
  const store::TripleTable& table_;
  CompiledPattern pat_;
  std::string label_;
  IdRow current_;
  store::ScanCursor scan_;
  bool inner_open_ = false;
  ExecPoll poll_;
};

/// Hash join with graceful degradation: Build() charges the ExecContext
/// memory budget per build-side triple and, if the charge is ever refused
/// (or a "query:hashjoin-build" failpoint injects kResourceExhausted),
/// releases everything it charged, drops the partial hash table, and serves
/// the remaining probes as an index nested-loop join instead. The degraded
/// stream is byte-identical to the one MakeIndexNestedLoopJoinCursor would
/// have produced — slower, never wrong, never over budget.
class HashJoinCursor final : public Cursor {
 public:
  HashJoinCursor(std::unique_ptr<Cursor> input,
                 const store::TripleTable& table, const CompiledPattern& pat,
                 std::vector<uint32_t> key_vars, std::string label,
                 util::ExecContext* exec)
      : input_(std::move(input)),
        table_(table),
        pat_(pat),
        key_vars_(std::move(key_vars)),
        label_(std::move(label)),
        exec_(exec),
        keys_(key_vars_.size()),
        key_buf_(key_vars_.size()) {
    poll_.ctx = exec;
    assert(!key_vars_.empty() && "hash join needs at least one join variable");
    // First position of each key variable in the pattern, for extracting
    // key values from build-side triples.
    key_slot_.reserve(key_vars_.size());
    for (uint32_t v : key_vars_) {
      int slot = -1;
      const CompiledSlot* slots[3] = {&pat_.s, &pat_.p, &pat_.o};
      for (int i = 0; i < 3; ++i) {
        if (slots[i]->is_var && slots[i]->var == v) {
          slot = i;
          break;
        }
      }
      assert(slot >= 0 && "key variable does not occur in the pattern");
      key_slot_.push_back(slot);
    }
  }

  ~HashJoinCursor() override {
    if (exec_ != nullptr && charged_bytes_ > 0) {
      exec_->ReleaseMemory(charged_bytes_);
    }
  }

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    if (!built_) {
      Build();
      if (!status_.ok()) return false;
    }
    if (degraded_) return NextDegraded(row);
    for (;;) {
      while (chain_ != kEnd) {
        if (poll_.Expired(&status_)) return false;
        const Triple& t = build_triples_[chain_];
        chain_ = next_[chain_];
        *row = current_;
        if (BindTriple(pat_, t, row)) {
          ++rows_produced_;
          return true;
        }
      }
      if (!input_->Next(&current_)) {
        status_ = input_->status();
        return false;
      }
      for (size_t i = 0; i < key_vars_.size(); ++i) {
        key_buf_[i] = current_[key_vars_[i]];
      }
      uint32_t ord = keys_.Find(key_buf_.data());
      chain_ = ord == util::RowSet::kNotFound ? kEnd : heads_[ord];
    }
  }
  size_t width() const override { return input_->width(); }
  std::string Describe() const override {
    return degraded_ ? "HashJoin[" + label_ + " degraded=nlj]"
                     : "HashJoin[" + label_ + "]";
  }
  void CollectOperators(std::vector<OperatorStats>* out,
                        int depth) const override {
    out->push_back({depth, Describe(), rows_produced()});
    input_->CollectOperators(out, depth + 1);
  }

 private:
  static constexpr uint32_t kEnd = UINT32_MAX;

  void Build() {
    built_ = true;
    Status fp = RDFSUM_FAILPOINT_STATUS("query:hashjoin-build");
    if (fp.IsResourceExhausted()) {
      Degrade();
      return;
    }
    if (!fp.ok()) {
      status_ = std::move(fp);
      return;
    }
    bool fits = true;
    table_.Scan(ConstOnly(pat_), [&](const Triple& t) {
      if (poll_.Expired(&status_)) return false;
      if (exec_ != nullptr &&
          !exec_->TryChargeMemory(kHashJoinBuildBytesPerRow)) {
        fits = false;
        return false;
      }
      charged_bytes_ += kHashJoinBuildBytesPerRow;
      const TermId values[3] = {t.s, t.p, t.o};
      for (size_t i = 0; i < key_slot_.size(); ++i) {
        key_buf_[i] = values[key_slot_[i]];
      }
      auto [ord, inserted] = keys_.InsertOrFind(key_buf_.data());
      if (inserted) {
        heads_.push_back(kEnd);
        tails_.push_back(kEnd);
      }
      const uint32_t idx = static_cast<uint32_t>(build_triples_.size());
      build_triples_.push_back(t);
      next_.push_back(kEnd);
      // Append to the chain tail so probes replay matches in build (index)
      // order — the stream stays deterministic run to run.
      if (heads_[ord] == kEnd) {
        heads_[ord] = idx;
      } else {
        next_[tails_[ord]] = idx;
      }
      tails_[ord] = idx;
      return true;
    });
    if (!status_.ok()) return;
    if (!fits) Degrade();
  }

  /// Abandons the (possibly partial) hash table: refunds every byte charged
  /// and frees the build state, then flips to nested-loop probing.
  void Degrade() {
    degraded_ = true;
    if (exec_ != nullptr && charged_bytes_ > 0) {
      exec_->ReleaseMemory(charged_bytes_);
    }
    charged_bytes_ = 0;
    keys_ = util::RowSet(key_vars_.size());
    heads_ = {};
    tails_ = {};
    build_triples_ = {};
    next_ = {};
  }

  /// Probe path after degradation: per input row, one index range over the
  /// fully instantiated pattern — exactly what IndexNestedLoopJoinCursor
  /// does, so the output stream is identical.
  bool NextDegraded(IdRow* row) {
    for (;;) {
      if (inner_open_) {
        Triple t;
        while (scan_.Next(&t)) {
          if (poll_.Expired(&status_)) return false;
          *row = current_;
          if (BindTriple(pat_, t, row)) {
            ++rows_produced_;
            return true;
          }
        }
        inner_open_ = false;
      }
      if (!input_->Next(&current_)) {
        status_ = input_->status();
        return false;
      }
      scan_ = table_.OpenScan(Instantiate(pat_, current_));
      inner_open_ = true;
    }
  }

  std::unique_ptr<Cursor> input_;
  const store::TripleTable& table_;
  CompiledPattern pat_;
  std::vector<uint32_t> key_vars_;
  std::string label_;
  util::ExecContext* exec_;
  std::vector<int> key_slot_;  // position (0=s,1=p,2=o) per key var

  bool built_ = false;
  bool degraded_ = false;
  uint64_t charged_bytes_ = 0;  // outstanding ExecContext memory charge
  util::RowSet keys_;                  // distinct key directory -> ordinal
  std::vector<uint32_t> heads_, tails_;  // per key ordinal: chain bounds
  std::vector<Triple> build_triples_;
  std::vector<uint32_t> next_;         // chain links, parallel to triples

  IdRow current_;
  IdRow key_buf_;
  uint32_t chain_ = kEnd;
  store::ScanCursor scan_;   // degraded-mode inner range
  bool inner_open_ = false;  // degraded-mode inner range open
  ExecPoll poll_;
};

class ProjectCursor final : public Cursor {
 public:
  ProjectCursor(std::unique_ptr<Cursor> input, std::vector<uint32_t> head,
                std::string label)
      : input_(std::move(input)),
        head_(std::move(head)),
        label_(std::move(label)) {}

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    if (!input_->Next(&full_)) {
      status_ = input_->status();
      return false;
    }
    row->resize(head_.size());
    for (size_t i = 0; i < head_.size(); ++i) (*row)[i] = full_[head_[i]];
    ++rows_produced_;
    return true;
  }
  size_t width() const override { return head_.size(); }
  std::string Describe() const override { return "Project[" + label_ + "]"; }
  void CollectOperators(std::vector<OperatorStats>* out,
                        int depth) const override {
    out->push_back({depth, Describe(), rows_produced()});
    input_->CollectOperators(out, depth + 1);
  }

 private:
  std::unique_ptr<Cursor> input_;
  std::vector<uint32_t> head_;
  std::string label_;
  IdRow full_;
};

class DistinctCursor final : public Cursor {
 public:
  explicit DistinctCursor(std::unique_ptr<Cursor> input)
      : input_(std::move(input)), seen_(input_->width()) {}

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    while (input_->Next(row)) {
      if (seen_.Insert(row->data())) {
        ++rows_produced_;
        return true;
      }
    }
    status_ = input_->status();
    return false;
  }
  size_t width() const override { return input_->width(); }
  std::string Describe() const override { return "Distinct"; }
  void CollectOperators(std::vector<OperatorStats>* out,
                        int depth) const override {
    out->push_back({depth, Describe(), rows_produced()});
    input_->CollectOperators(out, depth + 1);
  }

 private:
  std::unique_ptr<Cursor> input_;
  util::RowSet seen_;
};

class LimitOffsetCursor final : public Cursor {
 public:
  LimitOffsetCursor(std::unique_ptr<Cursor> input, size_t limit,
                    size_t offset)
      : input_(std::move(input)), limit_(limit), offset_(offset) {}

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    if (emitted_ >= limit_) return false;  // stop pulling: early exit
    while (skipped_ < offset_) {
      if (!input_->Next(row)) {
        status_ = input_->status();
        return false;
      }
      ++skipped_;
    }
    if (!input_->Next(row)) {
      status_ = input_->status();
      return false;
    }
    ++emitted_;
    ++rows_produced_;
    return true;
  }
  size_t width() const override { return input_->width(); }
  std::string Describe() const override {
    std::string out = "LimitOffset[";
    out += limit_ == SIZE_MAX ? "limit=∞" : "limit=" + std::to_string(limit_);
    out += " offset=" + std::to_string(offset_) + "]";
    return out;
  }
  void CollectOperators(std::vector<OperatorStats>* out,
                        int depth) const override {
    out->push_back({depth, Describe(), rows_produced()});
    input_->CollectOperators(out, depth + 1);
  }

 private:
  std::unique_ptr<Cursor> input_;
  size_t limit_, offset_;
  size_t emitted_ = 0, skipped_ = 0;
};

/// Root-level governor: charges every produced row against the ExecContext
/// row budget and polls the deadline/cancellation token between rows — the
/// backstop that governs even trees whose inner operators carry no context.
/// Transparent to Explain (forwards CollectOperators without adding itself),
/// so governed and ungoverned plans render identically.
class GovernedCursor final : public Cursor {
 public:
  GovernedCursor(std::unique_ptr<Cursor> input, util::ExecContext* exec)
      : input_(std::move(input)), exec_(exec) {
    poll_.ctx = exec;
  }

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    if (poll_.Expired(&status_)) return false;
    if (!input_->Next(row)) {
      status_ = input_->status();
      return false;
    }
    status_ = exec_->ChargeRows();
    if (!status_.ok()) return false;  // the over-budget row is withheld
    ++rows_produced_;
    return true;
  }
  size_t width() const override { return input_->width(); }
  std::string Describe() const override { return "Governed"; }
  void CollectOperators(std::vector<OperatorStats>* out,
                        int depth) const override {
    input_->CollectOperators(out, depth);
  }

 private:
  std::unique_ptr<Cursor> input_;
  util::ExecContext* exec_;
  ExecPoll poll_;
};

}  // namespace

// ---- Shared hash-join build (parallel queries) ------------------------------

/// One build side, partitioned by key hash so partitions build in parallel
/// without sharing mutable state. Each key's triples all land in the same
/// partition (partition = hash(key) % P), and each partition walks the
/// build range in index order, so within-key chain order is index order —
/// exactly the sequential HashJoinCursor's invariant, which is what keeps
/// probe output byte-identical. After EnsureBuilt() the structure is
/// immutable and probed concurrently, read-only.
class SharedHashJoinBuild {
 public:
  static constexpr uint32_t kEnd = UINT32_MAX;

  SharedHashJoinBuild(const store::TripleTable& table,
                      const CompiledPattern& pat,
                      std::vector<uint32_t> key_vars, util::ExecContext* exec,
                      uint32_t parallelism)
      : table_(table),
        pat_(pat),
        key_vars_(std::move(key_vars)),
        exec_(exec),
        parallelism_(std::max(1u, parallelism)) {
    assert(!key_vars_.empty() && "hash join needs at least one join variable");
    key_slot_.reserve(key_vars_.size());
    for (uint32_t v : key_vars_) {
      int slot = -1;
      const CompiledSlot* slots[3] = {&pat_.s, &pat_.p, &pat_.o};
      for (int i = 0; i < 3; ++i) {
        if (slots[i]->is_var && slots[i]->var == v) {
          slot = i;
          break;
        }
      }
      assert(slot >= 0 && "key variable does not occur in the pattern");
      key_slot_.push_back(slot);
    }
  }

  ~SharedHashJoinBuild() { ReleaseAll(); }

  SharedHashJoinBuild(const SharedHashJoinBuild&) = delete;
  SharedHashJoinBuild& operator=(const SharedHashJoinBuild&) = delete;

  /// Builds the partitioned hash table (idempotent; call before fan-out,
  /// never concurrently). OK after a successful build *or* a memory-refusal
  /// degrade (probes then run nested-loop); non-OK only for governance
  /// failures (deadline/cancel) and injected faults, which fail the query.
  Status EnsureBuilt() {
    if (built_) return build_status_;
    built_ = true;
    Status fp = RDFSUM_FAILPOINT_STATUS("query:hashjoin-build");
    if (fp.IsResourceExhausted()) {
      Degrade();
      return Status::OK();
    }
    if (!fp.ok()) {
      build_status_ = std::move(fp);
      return build_status_;
    }
    std::span<const Triple> build = table_.MatchSpan(ConstOnly(pat_));
    // Each partition pass re-scans the whole build span, so the passes only
    // pay off when they actually run concurrently: clamp the partition
    // count to the machine, not the (possibly oversubscribed) requested
    // parallelism — on a 1-core host one partition builds in one pass,
    // exactly like the sequential lazy build.
    const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    const uint32_t nparts =
        std::max(1u, std::min({parallelism_, hw, 8u,
                               static_cast<uint32_t>(std::min<uint64_t>(
                                   build.size(), 8))}));
    parts_.reserve(nparts);
    for (uint32_t p = 0; p < nparts; ++p) parts_.emplace_back(key_vars_.size());
    std::atomic<bool> stop{false};
    std::atomic<bool> refused{false};
    std::mutex err_mu;
    Status first_err;
    // Every partition scans the whole (cheap, contiguous) build range and
    // keeps only its own keys' triples: no cross-partition communication,
    // and per-partition insertion order is index order by construction.
    util::ParallelFor(nparts, [&](uint32_t p) {
      Partition& part = parts_[p];
      IdRow key_buf(key_vars_.size());
      const uint64_t n = build.size();
      for (uint64_t base = 0; base < n; base += util::kCancelCheckChunk) {
        if (stop.load(std::memory_order_relaxed)) return;
        if (exec_ != nullptr) {
          Status st = exec_->Check();
          if (!st.ok()) {
            std::lock_guard<std::mutex> lock(err_mu);
            if (first_err.ok()) first_err = std::move(st);
            stop.store(true, std::memory_order_relaxed);
            return;
          }
        }
        const uint64_t chunk_end = std::min(n, base + util::kCancelCheckChunk);
        for (uint64_t i = base; i < chunk_end; ++i) {
          const Triple& t = build[i];
          const TermId values[3] = {t.s, t.p, t.o};
          for (size_t k = 0; k < key_slot_.size(); ++k) {
            key_buf[k] = values[key_slot_[k]];
          }
          if (nparts > 1 &&
              HashKey(key_buf.data(), key_buf.size()) % nparts != p) {
            continue;
          }
          if (exec_ != nullptr &&
              !exec_->TryChargeMemory(kHashJoinBuildBytesPerRow)) {
            refused.store(true, std::memory_order_relaxed);
            stop.store(true, std::memory_order_relaxed);
            return;
          }
          part.charged += kHashJoinBuildBytesPerRow;
          auto [ord, inserted] = part.keys.InsertOrFind(key_buf.data());
          if (inserted) {
            part.heads.push_back(kEnd);
            part.tails.push_back(kEnd);
          }
          const uint32_t idx = static_cast<uint32_t>(part.triples.size());
          part.triples.push_back(t);
          part.next.push_back(kEnd);
          if (part.heads[ord] == kEnd) {
            part.heads[ord] = idx;
          } else {
            part.next[part.tails[ord]] = idx;
          }
          part.tails[ord] = idx;
        }
      }
    });
    if (!first_err.ok()) {
      ReleaseAll();
      parts_.clear();
      build_status_ = std::move(first_err);
      return build_status_;
    }
    if (refused.load(std::memory_order_relaxed)) Degrade();
    return Status::OK();
  }

  bool degraded() const { return degraded_; }
  const CompiledPattern& pattern() const { return pat_; }
  const std::vector<uint32_t>& key_vars() const { return key_vars_; }

  /// A probe position: partition + chain index (kEnd = no match / end).
  struct ChainPos {
    uint32_t part = 0;
    uint32_t idx = kEnd;
  };

  /// Raw pointers into the single partition, when there is only one
  /// (single-CPU hosts, tiny builds). Probing through these skips the
  /// partition routing hash and the per-access parts_[] indirection — the
  /// loop becomes instruction-for-instruction the sequential HashJoinCursor
  /// probe. Pointers are stable: the structure is immutable after
  /// EnsureBuilt(), which always precedes probing.
  struct FlatView {
    const util::RowSet* keys;
    const uint32_t* heads;
    const Triple* triples;
    const uint32_t* next;
  };
  std::optional<FlatView> flat_view() const {
    if (degraded_ || parts_.size() != 1) return std::nullopt;
    const Partition& p = parts_[0];
    return FlatView{&p.keys, p.heads.data(), p.triples.data(), p.next.data()};
  }

  ChainPos Find(const TermId* key) const {
    // One partition (single-CPU hosts, tiny builds): the routing hash can
    // only ever say 0, so skip it — RowSet::Find hashes the key anyway.
    const uint32_t p =
        parts_.size() == 1
            ? 0u
            : static_cast<uint32_t>(HashKey(key, key_vars_.size()) %
                                    parts_.size());
    const uint32_t ord = parts_[p].keys.Find(key);
    if (ord == util::RowSet::kNotFound) return {p, kEnd};
    return {p, parts_[p].heads[ord]};
  }
  const Triple& TripleAt(ChainPos pos) const {
    return parts_[pos.part].triples[pos.idx];
  }
  uint32_t NextAt(ChainPos pos) const { return parts_[pos.part].next[pos.idx]; }

 private:
  struct Partition {
    explicit Partition(size_t key_width) : keys(key_width) {}
    util::RowSet keys;                   // distinct key directory -> ordinal
    std::vector<uint32_t> heads, tails;  // per key ordinal: chain bounds
    std::vector<Triple> triples;
    std::vector<uint32_t> next;  // chain links, parallel to triples
    uint64_t charged = 0;        // outstanding ExecContext memory charge
  };

  static uint64_t HashKey(const TermId* key, size_t n) {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (size_t i = 0; i < n; ++i) {
      h ^= key[i] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }

  void Degrade() {
    degraded_ = true;
    ReleaseAll();
    parts_.clear();
  }

  void ReleaseAll() {
    if (exec_ == nullptr) return;
    uint64_t total = 0;
    for (Partition& part : parts_) {
      total += part.charged;
      part.charged = 0;
    }
    if (total > 0) exec_->ReleaseMemory(total);
  }

  const store::TripleTable& table_;
  CompiledPattern pat_;
  std::vector<uint32_t> key_vars_;
  util::ExecContext* exec_;
  uint32_t parallelism_;
  std::vector<int> key_slot_;  // position (0=s,1=p,2=o) per key var

  bool built_ = false;
  bool degraded_ = false;
  Status build_status_;
  std::vector<Partition> parts_;
};

namespace {

/// Probe side of a shared build: the sequential HashJoinCursor's probe loop
/// against the (immutable, concurrently shared) partitioned build, with the
/// identical degraded path when the build was refused memory.
class SharedHashJoinProbeCursor final : public Cursor {
 public:
  SharedHashJoinProbeCursor(std::unique_ptr<Cursor> input,
                            const store::TripleTable& table,
                            std::shared_ptr<const SharedHashJoinBuild> build,
                            std::string label, util::ExecContext* exec)
      : input_(std::move(input)),
        table_(table),
        build_(std::move(build)),
        label_(std::move(label)),
        key_vars_(build_->key_vars()),
        key_buf_(key_vars_.size()) {
    poll_.ctx = exec;
  }

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    if (mode_ == Mode::kFlat) return NextFlat(row);
    if (mode_ == Mode::kUndecided) {
      // Pipelines only run after EnsureBuilt(), so the partition layout is
      // final here. Classify once; every later Next() reaches its loop
      // through a single predictable branch.
      if (build_->degraded()) {
        mode_ = Mode::kDegraded;
      } else if (auto v = build_->flat_view(); v.has_value()) {
        // Hoist the single partition and the pattern into members: the
        // probe loop then touches no shared_ptr and no std::optional —
        // instruction-for-instruction the sequential HashJoinCursor probe.
        flat_ = *v;
        pat_ = build_->pattern();
        mode_ = Mode::kFlat;
        return NextFlat(row);
      } else {
        mode_ = Mode::kGeneric;
      }
    }
    if (mode_ == Mode::kDegraded) return NextDegraded(row);
    for (;;) {
      while (pos_.idx != SharedHashJoinBuild::kEnd) {
        if (poll_.Expired(&status_)) return false;
        const Triple& t = build_->TripleAt(pos_);
        pos_.idx = build_->NextAt(pos_);
        *row = current_;
        if (BindTriple(build_->pattern(), t, row)) {
          ++rows_produced_;
          return true;
        }
      }
      if (!input_->Next(&current_)) {
        status_ = input_->status();
        return false;
      }
      for (size_t i = 0; i < key_vars_.size(); ++i) {
        key_buf_[i] = current_[key_vars_[i]];
      }
      pos_ = build_->Find(key_buf_.data());
    }
  }
  size_t width() const override { return input_->width(); }
  std::string Describe() const override {
    return build_->degraded() ? "HashJoin[" + label_ + " degraded=nlj shared]"
                              : "HashJoin[" + label_ + " shared]";
  }
  void CollectOperators(std::vector<OperatorStats>* out,
                        int depth) const override {
    out->push_back({depth, Describe(), rows_produced()});
    input_->CollectOperators(out, depth + 1);
  }

 private:
  /// Single-partition probe loop over FlatView's raw pointers — the same
  /// stream as the generic loop, minus the routing hash and parts_[]
  /// indirection (~50ns/row, which is the whole shared-vs-sequential probe
  /// gap on a 1-core host).
  bool NextFlat(IdRow* row) {
    const SharedHashJoinBuild::FlatView& f = flat_;
    const CompiledPattern& pat = pat_;
    for (;;) {
      while (pos_.idx != SharedHashJoinBuild::kEnd) {
        if (poll_.Expired(&status_)) return false;
        const Triple& t = f.triples[pos_.idx];
        pos_.idx = f.next[pos_.idx];
        *row = current_;
        if (BindTriple(pat, t, row)) {
          ++rows_produced_;
          return true;
        }
      }
      if (!input_->Next(&current_)) {
        status_ = input_->status();
        return false;
      }
      for (size_t i = 0; i < key_vars_.size(); ++i) {
        key_buf_[i] = current_[key_vars_[i]];
      }
      const uint32_t ord = f.keys->Find(key_buf_.data());
      pos_.idx =
          ord == util::RowSet::kNotFound ? SharedHashJoinBuild::kEnd
                                         : f.heads[ord];
    }
  }

  bool NextDegraded(IdRow* row) {
    for (;;) {
      if (inner_open_) {
        Triple t;
        while (scan_.Next(&t)) {
          if (poll_.Expired(&status_)) return false;
          *row = current_;
          if (BindTriple(build_->pattern(), t, row)) {
            ++rows_produced_;
            return true;
          }
        }
        inner_open_ = false;
      }
      if (!input_->Next(&current_)) {
        status_ = input_->status();
        return false;
      }
      scan_ = table_.OpenScan(Instantiate(build_->pattern(), current_));
      inner_open_ = true;
    }
  }

  std::unique_ptr<Cursor> input_;
  const store::TripleTable& table_;
  std::shared_ptr<const SharedHashJoinBuild> build_;
  std::string label_;
  IdRow current_;
  std::vector<uint32_t> key_vars_;  // copied out of the build: hot-loop local
  IdRow key_buf_;
  SharedHashJoinBuild::ChainPos pos_;
  enum class Mode : uint8_t { kUndecided, kFlat, kGeneric, kDegraded };
  Mode mode_ = Mode::kUndecided;
  SharedHashJoinBuild::FlatView flat_{};  // valid in kFlat mode
  CompiledPattern pat_{};  // copy of the build pattern (kFlat mode)
  store::ScanCursor scan_;   // degraded-mode inner range
  bool inner_open_ = false;  // degraded-mode inner range open
  ExecPoll poll_;
};

/// The exchange operator. Workers (tasks on the shared ThreadPool) claim
/// morsel indices under the lock and run the spec's pipeline over their
/// morsel into a private row buffer; the consumer emits buffers strictly in
/// morsel-index order, so the merged stream equals the sequential one.
///
/// Scheduling invariants (the reasons this cannot deadlock or block the
/// pool):
///   - A worker that cannot claim (window full, cancelled, or no morsels
///     left) returns from its task instead of blocking; the consumer
///     re-submits workers as the window reopens. Pool threads are never
///     parked inside a gather.
///   - A claimed morsel is always being executed; the consumer only sleeps
///     when its next morsel is claimed-and-running, so completion (and its
///     notify) is guaranteed — pipelines are finite and poll stop_.
///   - When the pool is busy elsewhere and the next morsel is unclaimed,
///     the consumer claims and runs it inline (caller-runs, like
///     TaskGroup::Wait) — a gather drains even on a fully loaded pool.
///   - Any morsel failure (governance trip, injected fault) sets stop_;
///     every worker falls through at its next claim or within one poll
///     chunk mid-drain, and the consumer surfaces the first failure in
///     morsel order after the rows that precede it.
class ParallelGatherCursor final : public Cursor {
 public:
  explicit ParallelGatherCursor(ParallelGatherSpec spec)
      : spec_(std::move(spec)) {
    if (spec_.morsel_rows == 0) spec_.morsel_rows = kMorselRows;
    if (spec_.num_threads == 0) spec_.num_threads = 1;
    num_morsels_ = (spec_.total_rows + spec_.morsel_rows - 1) /
                   spec_.morsel_rows;
    window_ = std::max<uint64_t>(uint64_t{4} * spec_.num_threads, 8);
    target_workers_ = static_cast<uint32_t>(
        std::min<uint64_t>(spec_.num_threads, num_morsels_));
    // A single-CPU host gains nothing from pool workers: the consumer and
    // a worker would only preempt each other (measured ~10-15% wall on the
    // query bench), so stream every morsel inline on the consumer instead
    // (NextInline). Morsel boundaries and the output bytes are completely
    // unchanged — only the exchange machinery is bypassed. Tests pin the
    // mode either way so both paths run regardless of the host.
    const bool inline_only =
        spec_.worker_mode == ParallelWorkerMode::kForceInline ||
        (spec_.worker_mode == ParallelWorkerMode::kAuto &&
         std::thread::hardware_concurrency() <= 1);
    if (inline_only) target_workers_ = 0;
    slots_.resize(num_morsels_);
  }

  ~ParallelGatherCursor() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_.store(true, std::memory_order_relaxed);
    }
    group_.reset();  // joins in-flight morsel tasks (they poll stop_)
  }

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    if (!started_) {
      started_ = true;
      for (const auto& build : spec_.builds) {
        Status st = build->EnsureBuilt();
        if (!st.ok()) {
          status_ = std::move(st);
          return false;
        }
      }
      if (num_morsels_ > 0 && target_workers_ > 0) {
        group_ = std::make_unique<util::TaskGroup>(util::ThreadPool::Shared());
        std::unique_lock<std::mutex> lock(mu_);
        const uint32_t spawn = SpawnBudgetLocked();
        lock.unlock();
        Spawn(spawn);
      }
    }
    if (target_workers_ == 0) return NextInline(row);
    for (;;) {
      if (cur_emitted_ < cur_count_) {
        const auto base = cur_rows_.begin() +
                          static_cast<ptrdiff_t>(cur_emitted_ * spec_.width);
        row->assign(base, base + static_cast<ptrdiff_t>(spec_.width));
        ++cur_emitted_;
        ++rows_produced_;
        return true;
      }
      if (!fail_after_current_.ok()) {
        status_ = std::move(fail_after_current_);
        return false;
      }
      if (next_emit_ >= num_morsels_) return false;  // clean exhaustion
      if (!TakeNextSlot()) return false;
    }
  }

  size_t width() const override { return spec_.width; }
  std::string Describe() const override {
    return "ParallelGather[" + spec_.label +
           " threads=" + std::to_string(spec_.num_threads) +
           " morsels=" + std::to_string(num_morsels_) + "]";
  }

 private:
  struct MorselSlot {
    std::vector<TermId> rows;  // flat, width-strided
    uint64_t count = 0;
    Status status;
    bool done = false;
  };

  /// Workers to add so that claimable morsels are covered, up to the
  /// target. Pre-credits active_workers_; caller must Spawn() the result
  /// after unlocking.
  uint32_t SpawnBudgetLocked() {
    if (stop_.load(std::memory_order_relaxed)) return 0;
    const uint64_t claimable_end =
        std::min<uint64_t>(num_morsels_, consumed_ + window_);
    const uint64_t claimable =
        claim_ < claimable_end ? claimable_end - claim_ : 0;
    const uint64_t want = std::min<uint64_t>(claimable, target_workers_);
    const uint32_t spawn = active_workers_ < want
                               ? static_cast<uint32_t>(want - active_workers_)
                               : 0;
    active_workers_ += spawn;
    return spawn;
  }

  void Spawn(uint32_t n) {
    for (uint32_t i = 0; i < n; ++i) {
      group_->Submit([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    for (;;) {
      uint64_t m;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_.load(std::memory_order_relaxed) || claim_ >= num_morsels_ ||
            claim_ >= consumed_ + window_) {
          // Park: never block a pool thread. The consumer re-submits
          // workers when the run-ahead window reopens.
          --active_workers_;
          return;
        }
        m = claim_++;
      }
      RunMorsel(m);
    }
  }

  /// Executes morsel `m` and publishes its slot. Runs on workers and (when
  /// the pool is saturated) on the consumer.
  void RunMorsel(uint64_t m) {
    std::vector<TermId> rows;
    uint64_t count = 0;
    Status st = ExecuteMorsel(m, &rows, &count);
    {
      std::lock_guard<std::mutex> lock(mu_);
      MorselSlot& slot = slots_[m];
      slot.rows = std::move(rows);
      slot.count = count;
      slot.status = std::move(st);
      slot.done = true;
      if (!slot.status.ok()) {
        if (first_error_.ok()) first_error_ = slot.status;
        stop_.store(true, std::memory_order_relaxed);
      }
    }
    cv_consumer_.notify_all();
  }

  Status ExecuteMorsel(uint64_t m, std::vector<TermId>* rows,
                       uint64_t* count) {
    Status fp = RDFSUM_FAILPOINT_STATUS("query:morsel");
    if (!fp.ok()) return fp;
    const size_t begin = static_cast<size_t>(m * spec_.morsel_rows);
    const size_t end = static_cast<size_t>(
        std::min<uint64_t>(spec_.total_rows, (m + 1) * spec_.morsel_rows));
    // Start from a recycled buffer (capacity survives the round trip
    // through the consumer) or reserve one driving-row's worth — without
    // this, every morsel re-grows its buffer through the doubling ladder
    // and the copy churn dominates the exchange overhead on small hosts.
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!spare_buffers_.empty()) {
        *rows = std::move(spare_buffers_.back());
        spare_buffers_.pop_back();
        rows->clear();
      }
    }
    if (rows->capacity() == 0) rows->reserve((end - begin) * spec_.width);
    std::unique_ptr<Cursor> pipeline = spec_.pipeline(begin, end);
    IdRow row;
    uint32_t ticks = 0;
    while (pipeline->Next(&row)) {
      rows->insert(rows->end(), row.begin(), row.end());
      ++*count;
      // Poll the gather-local stop flag (teardown, another morsel's
      // failure) without touching the user's ExecContext — cancelling that
      // would poison a context the caller may reuse.
      if ((++ticks & 1023u) == 0 &&
          stop_.load(std::memory_order_relaxed)) {
        return Status::Cancelled("parallel query stopped");
      }
    }
    return pipeline->status();
  }

  /// Moves the next morsel's buffer into the consumer state, re-spawning
  /// parked workers for the reopened window. False when the gather stopped
  /// before that morsel completed (status_ set).
  bool TakeNextSlot() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      MorselSlot& slot = slots_[next_emit_];
      if (slot.done) {
        // Recycle the drained buffer's capacity for a later morsel.
        if (cur_rows_.capacity() != 0 && spare_buffers_.size() < 4) {
          spare_buffers_.push_back(std::move(cur_rows_));
        }
        cur_rows_ = std::move(slot.rows);
        cur_count_ = slot.count;
        cur_emitted_ = 0;
        if (!slot.status.ok()) {
          // Surface the first failure in morsel order, after this morsel's
          // rows. A later synthetic stop-cancel never shadows the genuine
          // first error.
          fail_after_current_ =
              first_error_.ok() ? slot.status : first_error_;
        }
        ++next_emit_;
        ++consumed_;
        const uint32_t spawn = SpawnBudgetLocked();
        lock.unlock();
        Spawn(spawn);
        return true;
      }
      if (stop_.load(std::memory_order_relaxed)) {
        status_ = first_error_.ok()
                      ? Status::Cancelled("parallel query stopped")
                      : first_error_;
        return false;
      }
      if (claim_ == next_emit_) {
        // Unclaimed and the pool hasn't picked it up: run it inline so the
        // drain makes progress even on a saturated (or 1-thread) pool.
        const uint64_t m = claim_++;
        lock.unlock();
        RunMorsel(m);
        lock.lock();
        continue;
      }
      cv_consumer_.wait(lock);
    }
  }

  /// Zero-worker mode (single-CPU hosts): stream each morsel's pipeline
  /// straight to the caller, in morsel order, with no exchange buffer —
  /// the concatenation of per-morsel streams IS the sequential stream, so
  /// skipping the materialize-and-recopy round trip (~300ns/row, the whole
  /// exchange overhead when nothing runs concurrently) changes no bytes.
  /// The per-morsel failpoint fires exactly as in ExecuteMorsel, and the
  /// pipeline's own ExecPoll still observes cancellation mid-morsel.
  bool NextInline(IdRow* row) {
    for (;;) {
      if (inline_pipeline_ != nullptr) {
        if (inline_pipeline_->Next(row)) {
          ++rows_produced_;
          return true;
        }
        status_ = inline_pipeline_->status();
        if (!status_.ok()) return false;
        inline_pipeline_.reset();
      }
      if (inline_next_ >= num_morsels_) return false;
      const uint64_t m = inline_next_++;
      Status fp = RDFSUM_FAILPOINT_STATUS("query:morsel");
      if (!fp.ok()) {
        status_ = std::move(fp);
        return false;
      }
      const size_t begin = static_cast<size_t>(m * spec_.morsel_rows);
      const size_t end = static_cast<size_t>(
          std::min<uint64_t>(spec_.total_rows, (m + 1) * spec_.morsel_rows));
      inline_pipeline_ = spec_.pipeline(begin, end);
    }
  }

  ParallelGatherSpec spec_;
  uint64_t num_morsels_ = 0;
  uint64_t window_ = 0;
  uint32_t target_workers_ = 0;

  bool started_ = false;
  std::unique_ptr<util::TaskGroup> group_;

  std::mutex mu_;
  std::condition_variable cv_consumer_;
  std::atomic<bool> stop_{false};
  uint64_t claim_ = 0;     // next unclaimed morsel (under mu_)
  uint64_t consumed_ = 0;  // morsels the consumer has taken (under mu_)
  uint32_t active_workers_ = 0;  // tasks in flight, incl. pre-credited
  std::vector<MorselSlot> slots_;
  std::vector<std::vector<TermId>> spare_buffers_;  // recycled (under mu_)
  Status first_error_;  // first failure recorded, any morsel (under mu_)

  // Zero-worker streaming state (no locking: single consumer).
  std::unique_ptr<Cursor> inline_pipeline_;
  uint64_t inline_next_ = 0;

  // Consumer-side state (no locking: single consumer).
  uint64_t next_emit_ = 0;
  std::vector<TermId> cur_rows_;
  uint64_t cur_count_ = 0;
  uint64_t cur_emitted_ = 0;
  Status fail_after_current_;
};

}  // namespace

std::unique_ptr<Cursor> MakeEmptyCursor(size_t width) {
  return std::make_unique<EmptyCursor>(width);
}

std::unique_ptr<Cursor> MakeSingletonCursor(size_t width) {
  return std::make_unique<SingletonCursor>(width);
}

std::unique_ptr<Cursor> MakeIndexScanCursor(const store::TripleTable& table,
                                            const CompiledPattern& pat,
                                            size_t num_vars,
                                            std::string label,
                                            util::ExecContext* exec) {
  return std::make_unique<IndexScanCursor>(table, pat, num_vars, 0, SIZE_MAX,
                                           std::move(label), exec);
}

store::TriplePattern PatternConstants(const CompiledPattern& pat) {
  return ConstOnly(pat);
}

std::unique_ptr<Cursor> MakeIndexScanSliceCursor(
    const store::TripleTable& table, const CompiledPattern& pat,
    size_t num_vars, size_t begin_offset, size_t end_offset, std::string label,
    util::ExecContext* exec) {
  return std::make_unique<IndexScanCursor>(table, pat, num_vars, begin_offset,
                                           end_offset, std::move(label), exec);
}

std::shared_ptr<SharedHashJoinBuild> MakeSharedHashJoinBuild(
    const store::TripleTable& table, const CompiledPattern& pat,
    std::vector<uint32_t> key_vars, util::ExecContext* exec,
    uint32_t parallelism) {
  return std::make_shared<SharedHashJoinBuild>(table, pat, std::move(key_vars),
                                               exec, parallelism);
}

std::unique_ptr<Cursor> MakeSharedHashJoinProbeCursor(
    std::unique_ptr<Cursor> input, const store::TripleTable& table,
    std::shared_ptr<const SharedHashJoinBuild> build, std::string label,
    util::ExecContext* exec) {
  return std::make_unique<SharedHashJoinProbeCursor>(
      std::move(input), table, std::move(build), std::move(label), exec);
}

std::unique_ptr<Cursor> MakeParallelGatherCursor(ParallelGatherSpec spec) {
  return std::make_unique<ParallelGatherCursor>(std::move(spec));
}

std::unique_ptr<Cursor> MakeIndexNestedLoopJoinCursor(
    std::unique_ptr<Cursor> input, const store::TripleTable& table,
    const CompiledPattern& pat, std::string label, util::ExecContext* exec) {
  return std::make_unique<IndexNestedLoopJoinCursor>(
      std::move(input), table, pat, std::move(label), exec);
}

std::unique_ptr<Cursor> MakeHashJoinCursor(std::unique_ptr<Cursor> input,
                                           const store::TripleTable& table,
                                           const CompiledPattern& pat,
                                           std::vector<uint32_t> key_vars,
                                           std::string label,
                                           util::ExecContext* exec) {
  return std::make_unique<HashJoinCursor>(std::move(input), table, pat,
                                          std::move(key_vars),
                                          std::move(label), exec);
}

std::unique_ptr<Cursor> MakeGovernedCursor(std::unique_ptr<Cursor> input,
                                           util::ExecContext* exec) {
  assert(exec != nullptr && "governed cursor needs a context");
  return std::make_unique<GovernedCursor>(std::move(input), exec);
}

std::unique_ptr<Cursor> MakeProjectCursor(std::unique_ptr<Cursor> input,
                                          std::vector<uint32_t> head,
                                          std::string label) {
  return std::make_unique<ProjectCursor>(std::move(input), std::move(head),
                                         std::move(label));
}

std::unique_ptr<Cursor> MakeDistinctCursor(std::unique_ptr<Cursor> input) {
  return std::make_unique<DistinctCursor>(std::move(input));
}

std::unique_ptr<Cursor> MakeLimitOffsetCursor(std::unique_ptr<Cursor> input,
                                              size_t limit, size_t offset) {
  return std::make_unique<LimitOffsetCursor>(std::move(input), limit, offset);
}

}  // namespace rdfsum::query
