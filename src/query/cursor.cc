#include "query/cursor.h"

#include <cassert>
#include <utility>

#include "util/fault_injection.h"

namespace rdfsum::query {
namespace {

constexpr TermId kUnbound = kInvalidTermId;

/// Per-cursor governance poll state. Expired() ticks once per candidate
/// triple and, every ExecContext::kCheckInterval ticks, refreshes *status
/// from the context; it returns true when the cursor must stop. A null
/// context never expires and costs one pointer test per candidate.
struct ExecPoll {
  util::ExecContext* ctx = nullptr;
  uint32_t ticks = 0;

  bool Expired(Status* status) {
    if (ctx == nullptr) return false;
    if ((++ticks & (util::ExecContext::kCheckInterval - 1)) != 0) return false;
    Status st = ctx->Check();
    if (st.ok()) return false;
    *status = std::move(st);
    return true;
  }
};

/// Binds `pat`'s variable slots from triple `t` into *row. Returns false on
/// a repeated-variable mismatch (?x p ?x with differing values); the row is
/// left partially written, so callers must re-copy their base row per
/// candidate triple. Positions the scan already pinned (constants, bound
/// variables instantiated into the pattern) bind as no-op equality checks.
bool BindTriple(const CompiledPattern& pat, const Triple& t, IdRow* row) {
  auto bind = [&](const CompiledSlot& s, TermId value) {
    if (!s.is_var) return true;
    TermId& slot = (*row)[s.var];
    if (slot == kUnbound) {
      slot = value;
      return true;
    }
    return slot == value;
  };
  return bind(pat.s, t.s) && bind(pat.p, t.p) && bind(pat.o, t.o);
}

/// The store pattern for `pat` under the bindings of `row`: constants plus
/// bound variables pin positions, unbound variables stay wildcards.
store::TriplePattern Instantiate(const CompiledPattern& pat,
                                 const IdRow& row) {
  store::TriplePattern q;
  auto fill = [&](const CompiledSlot& s) -> std::optional<TermId> {
    if (!s.is_var) return s.constant;
    TermId b = row[s.var];
    if (b != kUnbound) return b;
    return std::nullopt;
  };
  q.s = fill(pat.s);
  q.p = fill(pat.p);
  q.o = fill(pat.o);
  return q;
}

/// The pattern with only its constants bound — the hash-join build side.
store::TriplePattern ConstOnly(const CompiledPattern& pat) {
  store::TriplePattern q;
  if (!pat.s.is_var) q.s = pat.s.constant;
  if (!pat.p.is_var) q.p = pat.p.constant;
  if (!pat.o.is_var) q.o = pat.o.constant;
  return q;
}

class EmptyCursor final : public Cursor {
 public:
  explicit EmptyCursor(size_t width) : width_(width) {}
  bool Next(IdRow*) override { return false; }
  size_t width() const override { return width_; }
  std::string Describe() const override { return "EmptyResult"; }

 private:
  size_t width_;
};

class SingletonCursor final : public Cursor {
 public:
  explicit SingletonCursor(size_t width) : width_(width) {}
  bool Next(IdRow* row) override {
    if (done_) return false;
    done_ = true;
    row->assign(width_, kUnbound);
    ++rows_produced_;
    return true;
  }
  size_t width() const override { return width_; }
  std::string Describe() const override { return "SingletonRow"; }

 private:
  size_t width_;
  bool done_ = false;
};

class IndexScanCursor final : public Cursor {
 public:
  IndexScanCursor(const store::TripleTable& table, const CompiledPattern& pat,
                  size_t num_vars, std::string label,
                  util::ExecContext* exec)
      : pat_(pat),
        width_(num_vars),
        label_(std::move(label)),
        index_(store::TripleTable::ChooseIndex(ConstOnly(pat))),
        scan_(table.OpenScan(ConstOnly(pat))) {
    poll_.ctx = exec;
  }

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    Triple t;
    while (scan_.Next(&t)) {
      if (poll_.Expired(&status_)) return false;
      row->assign(width_, kUnbound);
      if (BindTriple(pat_, t, row)) {
        ++rows_produced_;
        return true;
      }
    }
    return false;
  }
  size_t width() const override { return width_; }
  std::string Describe() const override {
    return "IndexScan[" + label_ + " @" + store::IndexKindName(index_) + "]";
  }

 private:
  CompiledPattern pat_;
  size_t width_;
  std::string label_;
  store::IndexKind index_;
  store::ScanCursor scan_;
  ExecPoll poll_;
};

class IndexNestedLoopJoinCursor final : public Cursor {
 public:
  IndexNestedLoopJoinCursor(std::unique_ptr<Cursor> input,
                            const store::TripleTable& table,
                            const CompiledPattern& pat, std::string label,
                            util::ExecContext* exec)
      : input_(std::move(input)),
        table_(table),
        pat_(pat),
        label_(std::move(label)) {
    poll_.ctx = exec;
  }

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    for (;;) {
      if (inner_open_) {
        Triple t;
        while (scan_.Next(&t)) {
          if (poll_.Expired(&status_)) return false;
          *row = current_;
          if (BindTriple(pat_, t, row)) {
            ++rows_produced_;
            return true;
          }
        }
        inner_open_ = false;
      }
      if (!input_->Next(&current_)) {
        status_ = input_->status();
        return false;
      }
      scan_ = table_.OpenScan(Instantiate(pat_, current_));
      inner_open_ = true;
    }
  }
  size_t width() const override { return input_->width(); }
  std::string Describe() const override {
    return "IndexNestedLoopJoin[" + label_ + "]";
  }
  void CollectOperators(std::vector<OperatorStats>* out,
                        int depth) const override {
    out->push_back({depth, Describe(), rows_produced()});
    input_->CollectOperators(out, depth + 1);
  }

 private:
  std::unique_ptr<Cursor> input_;
  const store::TripleTable& table_;
  CompiledPattern pat_;
  std::string label_;
  IdRow current_;
  store::ScanCursor scan_;
  bool inner_open_ = false;
  ExecPoll poll_;
};

/// Hash join with graceful degradation: Build() charges the ExecContext
/// memory budget per build-side triple and, if the charge is ever refused
/// (or a "query:hashjoin-build" failpoint injects kResourceExhausted),
/// releases everything it charged, drops the partial hash table, and serves
/// the remaining probes as an index nested-loop join instead. The degraded
/// stream is byte-identical to the one MakeIndexNestedLoopJoinCursor would
/// have produced — slower, never wrong, never over budget.
class HashJoinCursor final : public Cursor {
 public:
  HashJoinCursor(std::unique_ptr<Cursor> input,
                 const store::TripleTable& table, const CompiledPattern& pat,
                 std::vector<uint32_t> key_vars, std::string label,
                 util::ExecContext* exec)
      : input_(std::move(input)),
        table_(table),
        pat_(pat),
        key_vars_(std::move(key_vars)),
        label_(std::move(label)),
        exec_(exec),
        keys_(key_vars_.size()),
        key_buf_(key_vars_.size()) {
    poll_.ctx = exec;
    assert(!key_vars_.empty() && "hash join needs at least one join variable");
    // First position of each key variable in the pattern, for extracting
    // key values from build-side triples.
    key_slot_.reserve(key_vars_.size());
    for (uint32_t v : key_vars_) {
      int slot = -1;
      const CompiledSlot* slots[3] = {&pat_.s, &pat_.p, &pat_.o};
      for (int i = 0; i < 3; ++i) {
        if (slots[i]->is_var && slots[i]->var == v) {
          slot = i;
          break;
        }
      }
      assert(slot >= 0 && "key variable does not occur in the pattern");
      key_slot_.push_back(slot);
    }
  }

  ~HashJoinCursor() override {
    if (exec_ != nullptr && charged_bytes_ > 0) {
      exec_->ReleaseMemory(charged_bytes_);
    }
  }

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    if (!built_) {
      Build();
      if (!status_.ok()) return false;
    }
    if (degraded_) return NextDegraded(row);
    for (;;) {
      while (chain_ != kEnd) {
        if (poll_.Expired(&status_)) return false;
        const Triple& t = build_triples_[chain_];
        chain_ = next_[chain_];
        *row = current_;
        if (BindTriple(pat_, t, row)) {
          ++rows_produced_;
          return true;
        }
      }
      if (!input_->Next(&current_)) {
        status_ = input_->status();
        return false;
      }
      for (size_t i = 0; i < key_vars_.size(); ++i) {
        key_buf_[i] = current_[key_vars_[i]];
      }
      uint32_t ord = keys_.Find(key_buf_.data());
      chain_ = ord == util::RowSet::kNotFound ? kEnd : heads_[ord];
    }
  }
  size_t width() const override { return input_->width(); }
  std::string Describe() const override {
    return degraded_ ? "HashJoin[" + label_ + " degraded=nlj]"
                     : "HashJoin[" + label_ + "]";
  }
  void CollectOperators(std::vector<OperatorStats>* out,
                        int depth) const override {
    out->push_back({depth, Describe(), rows_produced()});
    input_->CollectOperators(out, depth + 1);
  }

 private:
  static constexpr uint32_t kEnd = UINT32_MAX;

  void Build() {
    built_ = true;
    Status fp = RDFSUM_FAILPOINT_STATUS("query:hashjoin-build");
    if (fp.IsResourceExhausted()) {
      Degrade();
      return;
    }
    if (!fp.ok()) {
      status_ = std::move(fp);
      return;
    }
    bool fits = true;
    table_.Scan(ConstOnly(pat_), [&](const Triple& t) {
      if (poll_.Expired(&status_)) return false;
      if (exec_ != nullptr &&
          !exec_->TryChargeMemory(kHashJoinBuildBytesPerRow)) {
        fits = false;
        return false;
      }
      charged_bytes_ += kHashJoinBuildBytesPerRow;
      const TermId values[3] = {t.s, t.p, t.o};
      for (size_t i = 0; i < key_slot_.size(); ++i) {
        key_buf_[i] = values[key_slot_[i]];
      }
      auto [ord, inserted] = keys_.InsertOrFind(key_buf_.data());
      if (inserted) {
        heads_.push_back(kEnd);
        tails_.push_back(kEnd);
      }
      const uint32_t idx = static_cast<uint32_t>(build_triples_.size());
      build_triples_.push_back(t);
      next_.push_back(kEnd);
      // Append to the chain tail so probes replay matches in build (index)
      // order — the stream stays deterministic run to run.
      if (heads_[ord] == kEnd) {
        heads_[ord] = idx;
      } else {
        next_[tails_[ord]] = idx;
      }
      tails_[ord] = idx;
      return true;
    });
    if (!status_.ok()) return;
    if (!fits) Degrade();
  }

  /// Abandons the (possibly partial) hash table: refunds every byte charged
  /// and frees the build state, then flips to nested-loop probing.
  void Degrade() {
    degraded_ = true;
    if (exec_ != nullptr && charged_bytes_ > 0) {
      exec_->ReleaseMemory(charged_bytes_);
    }
    charged_bytes_ = 0;
    keys_ = util::RowSet(key_vars_.size());
    heads_ = {};
    tails_ = {};
    build_triples_ = {};
    next_ = {};
  }

  /// Probe path after degradation: per input row, one index range over the
  /// fully instantiated pattern — exactly what IndexNestedLoopJoinCursor
  /// does, so the output stream is identical.
  bool NextDegraded(IdRow* row) {
    for (;;) {
      if (inner_open_) {
        Triple t;
        while (scan_.Next(&t)) {
          if (poll_.Expired(&status_)) return false;
          *row = current_;
          if (BindTriple(pat_, t, row)) {
            ++rows_produced_;
            return true;
          }
        }
        inner_open_ = false;
      }
      if (!input_->Next(&current_)) {
        status_ = input_->status();
        return false;
      }
      scan_ = table_.OpenScan(Instantiate(pat_, current_));
      inner_open_ = true;
    }
  }

  std::unique_ptr<Cursor> input_;
  const store::TripleTable& table_;
  CompiledPattern pat_;
  std::vector<uint32_t> key_vars_;
  std::string label_;
  util::ExecContext* exec_;
  std::vector<int> key_slot_;  // position (0=s,1=p,2=o) per key var

  bool built_ = false;
  bool degraded_ = false;
  uint64_t charged_bytes_ = 0;  // outstanding ExecContext memory charge
  util::RowSet keys_;                  // distinct key directory -> ordinal
  std::vector<uint32_t> heads_, tails_;  // per key ordinal: chain bounds
  std::vector<Triple> build_triples_;
  std::vector<uint32_t> next_;         // chain links, parallel to triples

  IdRow current_;
  IdRow key_buf_;
  uint32_t chain_ = kEnd;
  store::ScanCursor scan_;   // degraded-mode inner range
  bool inner_open_ = false;  // degraded-mode inner range open
  ExecPoll poll_;
};

class ProjectCursor final : public Cursor {
 public:
  ProjectCursor(std::unique_ptr<Cursor> input, std::vector<uint32_t> head,
                std::string label)
      : input_(std::move(input)),
        head_(std::move(head)),
        label_(std::move(label)) {}

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    if (!input_->Next(&full_)) {
      status_ = input_->status();
      return false;
    }
    row->resize(head_.size());
    for (size_t i = 0; i < head_.size(); ++i) (*row)[i] = full_[head_[i]];
    ++rows_produced_;
    return true;
  }
  size_t width() const override { return head_.size(); }
  std::string Describe() const override { return "Project[" + label_ + "]"; }
  void CollectOperators(std::vector<OperatorStats>* out,
                        int depth) const override {
    out->push_back({depth, Describe(), rows_produced()});
    input_->CollectOperators(out, depth + 1);
  }

 private:
  std::unique_ptr<Cursor> input_;
  std::vector<uint32_t> head_;
  std::string label_;
  IdRow full_;
};

class DistinctCursor final : public Cursor {
 public:
  explicit DistinctCursor(std::unique_ptr<Cursor> input)
      : input_(std::move(input)), seen_(input_->width()) {}

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    while (input_->Next(row)) {
      if (seen_.Insert(row->data())) {
        ++rows_produced_;
        return true;
      }
    }
    status_ = input_->status();
    return false;
  }
  size_t width() const override { return input_->width(); }
  std::string Describe() const override { return "Distinct"; }
  void CollectOperators(std::vector<OperatorStats>* out,
                        int depth) const override {
    out->push_back({depth, Describe(), rows_produced()});
    input_->CollectOperators(out, depth + 1);
  }

 private:
  std::unique_ptr<Cursor> input_;
  util::RowSet seen_;
};

class LimitOffsetCursor final : public Cursor {
 public:
  LimitOffsetCursor(std::unique_ptr<Cursor> input, size_t limit,
                    size_t offset)
      : input_(std::move(input)), limit_(limit), offset_(offset) {}

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    if (emitted_ >= limit_) return false;  // stop pulling: early exit
    while (skipped_ < offset_) {
      if (!input_->Next(row)) {
        status_ = input_->status();
        return false;
      }
      ++skipped_;
    }
    if (!input_->Next(row)) {
      status_ = input_->status();
      return false;
    }
    ++emitted_;
    ++rows_produced_;
    return true;
  }
  size_t width() const override { return input_->width(); }
  std::string Describe() const override {
    std::string out = "LimitOffset[";
    out += limit_ == SIZE_MAX ? "limit=∞" : "limit=" + std::to_string(limit_);
    out += " offset=" + std::to_string(offset_) + "]";
    return out;
  }
  void CollectOperators(std::vector<OperatorStats>* out,
                        int depth) const override {
    out->push_back({depth, Describe(), rows_produced()});
    input_->CollectOperators(out, depth + 1);
  }

 private:
  std::unique_ptr<Cursor> input_;
  size_t limit_, offset_;
  size_t emitted_ = 0, skipped_ = 0;
};

/// Root-level governor: charges every produced row against the ExecContext
/// row budget and polls the deadline/cancellation token between rows — the
/// backstop that governs even trees whose inner operators carry no context.
/// Transparent to Explain (forwards CollectOperators without adding itself),
/// so governed and ungoverned plans render identically.
class GovernedCursor final : public Cursor {
 public:
  GovernedCursor(std::unique_ptr<Cursor> input, util::ExecContext* exec)
      : input_(std::move(input)), exec_(exec) {
    poll_.ctx = exec;
  }

  bool Next(IdRow* row) override {
    if (!status_.ok()) return false;
    if (poll_.Expired(&status_)) return false;
    if (!input_->Next(row)) {
      status_ = input_->status();
      return false;
    }
    status_ = exec_->ChargeRows();
    if (!status_.ok()) return false;  // the over-budget row is withheld
    ++rows_produced_;
    return true;
  }
  size_t width() const override { return input_->width(); }
  std::string Describe() const override { return "Governed"; }
  void CollectOperators(std::vector<OperatorStats>* out,
                        int depth) const override {
    input_->CollectOperators(out, depth);
  }

 private:
  std::unique_ptr<Cursor> input_;
  util::ExecContext* exec_;
  ExecPoll poll_;
};

}  // namespace

std::unique_ptr<Cursor> MakeEmptyCursor(size_t width) {
  return std::make_unique<EmptyCursor>(width);
}

std::unique_ptr<Cursor> MakeSingletonCursor(size_t width) {
  return std::make_unique<SingletonCursor>(width);
}

std::unique_ptr<Cursor> MakeIndexScanCursor(const store::TripleTable& table,
                                            const CompiledPattern& pat,
                                            size_t num_vars,
                                            std::string label,
                                            util::ExecContext* exec) {
  return std::make_unique<IndexScanCursor>(table, pat, num_vars,
                                           std::move(label), exec);
}

std::unique_ptr<Cursor> MakeIndexNestedLoopJoinCursor(
    std::unique_ptr<Cursor> input, const store::TripleTable& table,
    const CompiledPattern& pat, std::string label, util::ExecContext* exec) {
  return std::make_unique<IndexNestedLoopJoinCursor>(
      std::move(input), table, pat, std::move(label), exec);
}

std::unique_ptr<Cursor> MakeHashJoinCursor(std::unique_ptr<Cursor> input,
                                           const store::TripleTable& table,
                                           const CompiledPattern& pat,
                                           std::vector<uint32_t> key_vars,
                                           std::string label,
                                           util::ExecContext* exec) {
  return std::make_unique<HashJoinCursor>(std::move(input), table, pat,
                                          std::move(key_vars),
                                          std::move(label), exec);
}

std::unique_ptr<Cursor> MakeGovernedCursor(std::unique_ptr<Cursor> input,
                                           util::ExecContext* exec) {
  assert(exec != nullptr && "governed cursor needs a context");
  return std::make_unique<GovernedCursor>(std::move(input), exec);
}

std::unique_ptr<Cursor> MakeProjectCursor(std::unique_ptr<Cursor> input,
                                          std::vector<uint32_t> head,
                                          std::string label) {
  return std::make_unique<ProjectCursor>(std::move(input), std::move(head),
                                         std::move(label));
}

std::unique_ptr<Cursor> MakeDistinctCursor(std::unique_ptr<Cursor> input) {
  return std::make_unique<DistinctCursor>(std::move(input));
}

std::unique_ptr<Cursor> MakeLimitOffsetCursor(std::unique_ptr<Cursor> input,
                                              size_t limit, size_t offset) {
  return std::make_unique<LimitOffsetCursor>(std::move(input), limit, offset);
}

}  // namespace rdfsum::query
