#ifndef RDFSUM_QUERY_PLAN_H_
#define RDFSUM_QUERY_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "query/bgp.h"
#include "rdf/dictionary.h"
#include "store/triple_table.h"
#include "util/statusor.h"

namespace rdfsum::summary {
class CardinalityEstimator;
}  // namespace rdfsum::summary

namespace rdfsum::query {

/// How the pattern order of a QueryPlan is chosen.
enum class PlannerMode {
  /// Textual pattern order, no statistics. The frozen baseline the
  /// differential tests compare every other mode against.
  kNaive,
  /// Greedy cost-based order from the store's TableStats: at each step the
  /// remaining pattern with the fewest estimated matches (exact index-range
  /// counts for constants, distinct-count fan-out ratios for bound
  /// variables) runs next.
  kGreedy,
  /// Greedy order refined by a summary::CardinalityEstimator: candidate
  /// prefixes are ranked by their Stefanoni-style estimated result size.
  /// Falls back to kGreedy when no estimator is supplied.
  kSummary,
};

const char* PlannerModeName(PlannerMode mode);  // "naive", "greedy", "summary"
bool ParsePlannerMode(std::string_view name, PlannerMode* mode);

inline constexpr PlannerMode kAllPlannerModes[] = {
    PlannerMode::kNaive, PlannerMode::kGreedy, PlannerMode::kSummary};

/// Compiled pattern position: variable index (dense) or constant TermId.
struct CompiledSlot {
  bool is_var = false;
  uint32_t var = 0;
  TermId constant = kInvalidTermId;
  /// True when the constant does not occur in the dictionary; the pattern
  /// can never match.
  bool impossible = false;
};

struct CompiledPattern {
  CompiledSlot s, p, o;
};

/// A BGP body compiled against one dictionary: variables numbered densely in
/// first-occurrence order, constants resolved to TermIds.
struct CompiledBgp {
  std::vector<CompiledPattern> patterns;
  std::unordered_map<std::string, uint32_t> var_index;
  std::vector<std::string> var_names;
  bool impossible = false;
};

CompiledBgp CompileBgp(const BgpQuery& q, const Dictionary& dict);

/// Resolves the query head against the compiled body: the dense variable id
/// of every distinguished variable, in head order. InvalidArgument when a
/// head variable does not occur in the body — the single validation shared
/// by every Evaluate/Explain surface, pruned or not.
StatusOr<std::vector<uint32_t>> ResolveDistinguished(const BgpQuery& q,
                                                     const CompiledBgp& c);

/// Join-pick rule (see src/query/README.md): a step is served by a hash
/// join iff it joins on at least one already-bound variable, the estimated
/// rows feeding it (the probe side) reach kHashJoinMinProbeRows, and the
/// exact build-side row count (matches of the pattern with only its
/// constants bound) fits kHashJoinBuildBudget. Below the probe floor the
/// per-probe binary search of an index nested-loop join is cheaper than
/// building a table; above the build budget the table would not fit a
/// sane memory envelope.
inline constexpr double kHashJoinMinProbeRows = 4096.0;
inline constexpr double kHashJoinBuildBudget = 1u << 20;

/// One executed pattern of a plan, in execution order.
struct PlanStep {
  /// Index into CompiledBgp::patterns / BgpQuery::triples.
  uint32_t pattern = 0;
  /// The store index this step's probes are served from, derived from the
  /// positions bound when the step runs (constants + earlier steps' vars).
  store::IndexKind index = store::IndexKind::kSpo;
  std::string pattern_text;
  /// Estimated matches per probe when this step runs.
  double estimated_matches = 0.0;
  /// Estimated cumulative embeddings after this step.
  double estimated_rows = 0.0;
  /// True when the planner flagged a fat intermediate feeding this step and
  /// the executor should serve it with a HashJoinCursor (join-pick rule
  /// above). Always false for the first step (nothing to join with yet).
  bool use_hash_join = false;
  /// Exact size of the step's would-be hash build side: matches of the
  /// pattern with only its constants bound. 0 for steps without join
  /// variables.
  double estimated_build_rows = 0.0;
};

/// An ordered, binding-annotated execution plan for one BGP query, built
/// once per query (compile -> estimate -> order; see src/query/README.md for
/// the lifecycle). The executor follows steps[] verbatim — there is no
/// per-depth re-selection at run time.
struct QueryPlan {
  PlannerMode mode = PlannerMode::kGreedy;
  CompiledBgp compiled;
  std::vector<PlanStep> steps;
  /// Sum of the per-step estimated cumulative rows — a proxy for total
  /// probe work, comparable across plans for the same query.
  double estimated_cost = 0.0;
  /// True when kSummary planning degraded to the stats-only greedy order
  /// because the estimator's enumeration budget tripped mid-planning (its
  /// partial estimates would mis-rank joins). The plan is then exactly what
  /// kGreedy would have built; mode still records what was asked for.
  bool summary_fallback = false;

  /// Renders the plan as an aligned table (step, pattern, index, est).
  std::string ToString() const;
};

/// Builds the plan: compiles `q` against `dict`, then orders the patterns
/// per `mode` using the frozen table's statistics. `estimator` (optional)
/// enables the kSummary refinement; it must estimate over the same graph
/// `table` indexes.
QueryPlan BuildQueryPlan(const BgpQuery& q, const Dictionary& dict,
                         const store::TripleTable& table, PlannerMode mode,
                         const summary::CardinalityEstimator* estimator =
                             nullptr);

/// Canonical shape key of a BGP body: variables renamed to v0,v1,... in
/// first-occurrence order and constants abstracted to c0,c1,... by equality
/// class within the query (two patterns sharing a constant share its token,
/// but the constant's value never enters the key). Two queries with the same
/// shape differ only in which concrete terms their constants name, so an
/// execution template built for one is *correct* for the other — result
/// sets are planner-invariant (src/query/README.md) — and usually close to
/// optimal, since the join structure is identical. This is the plan-cache
/// key of the serving daemon (src/server/plan_cache.h); the planner mode is
/// appended by the cache, not part of the shape.
std::string NormalizedBgpShape(const BgpQuery& q);

/// The reusable skeleton of a built plan: everything except the resolved
/// constants and the estimates — pattern execution order, the serving index
/// per step, and the executor's hash-join flags. Extracted with SkeletonOf
/// and re-instantiated against a fresh compile with PlanFromSkeleton, which
/// skips the planner's statistics probes (and, for kSummary, the whole
/// estimator enumeration) entirely.
struct PlanSkeleton {
  PlannerMode mode = PlannerMode::kGreedy;
  std::vector<uint32_t> order;          // pattern index executed at step i
  std::vector<store::IndexKind> index;  // serving index at step i
  std::vector<bool> hash_join;          // executor hash-join flag at step i
};

PlanSkeleton SkeletonOf(const QueryPlan& plan);

/// Instantiates `skeleton` for `q`: compiles the query against `dict`
/// (constants re-resolved, so a now-impossible constant still yields an
/// empty-result plan) and lays the cached order/index/join flags over the
/// fresh compile. Estimates are zero — the whole point is not paying for
/// them. Requires skeleton.order to cover exactly q.triples (same shape).
QueryPlan PlanFromSkeleton(const BgpQuery& q, const Dictionary& dict,
                           const PlanSkeleton& skeleton);

/// One operator of the executed cursor tree with its rows-produced counter,
/// as reported by the cursors themselves after a full drain. `depth` is the
/// operator's distance from the tree root (for indented rendering).
struct OperatorStats {
  int depth = 0;
  std::string op;
  uint64_t rows_produced = 0;
};

/// A plan plus the per-step actual cardinalities observed while executing
/// it — the `query --explain` payload.
struct Explanation {
  QueryPlan plan;
  /// Actual cumulative bindings produced at each step (parallel to
  /// plan.steps).
  std::vector<uint64_t> actual_rows;
  /// The executed operator tree (root first) with per-operator rows-produced
  /// counters; empty when the plan was never executed (pruned_by_summary).
  std::vector<OperatorStats> operators;
  uint64_t num_embeddings = 0;   // total embeddings of the body
  uint64_t num_result_rows = 0;  // distinct projected rows
  /// True when a SummaryPrunedEvaluator proved emptiness on the summary and
  /// the plan was never executed against the graph (all actuals are 0).
  bool pruned_by_summary = false;
  /// Renders the per-step table: step, pattern, index, est rows, actual.
  std::string ToString() const;
};

}  // namespace rdfsum::query

#endif  // RDFSUM_QUERY_PLAN_H_
