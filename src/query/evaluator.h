#ifndef RDFSUM_QUERY_EVALUATOR_H_
#define RDFSUM_QUERY_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "query/bgp.h"
#include "query/plan.h"
#include "rdf/graph.h"
#include "store/triple_table.h"
#include "util/statusor.h"

namespace rdfsum::query {

/// One answer row: the bindings of the distinguished variables, in query
/// head order.
using Row = std::vector<Term>;

struct EvaluatorOptions {
  /// How Plan()/Evaluate() order the patterns by default; per-call
  /// overloads can override it.
  PlannerMode planner = PlannerMode::kGreedy;
  /// Enables PlannerMode::kSummary refinement. Not owned; must outlive the
  /// evaluator and estimate over the same graph.
  const summary::CardinalityEstimator* estimator = nullptr;
};

/// Evaluates BGP queries against one graph by backtracking join over the
/// store's pattern indexes. Evaluation sees exactly the triples of the graph
/// it is given — evaluate against Saturate(g) for complete answers (§2.1).
///
/// Each query is planned once (see QueryPlan): the planner fixes the
/// pattern order and per-step index up front from the table statistics, and
/// the executor follows the plan without re-scanning the pattern list at
/// every depth.
class BgpEvaluator {
 public:
  explicit BgpEvaluator(const Graph& g, EvaluatorOptions options = {});
  /// The evaluator only borrows the graph; binding a temporary would
  /// dangle after the constructor returns (ASan caught exactly this).
  explicit BgpEvaluator(Graph&&) = delete;
  BgpEvaluator(Graph&&, EvaluatorOptions) = delete;

  /// Builds the execution plan for `q` without running it.
  QueryPlan Plan(const BgpQuery& q) const;
  QueryPlan Plan(const BgpQuery& q, PlannerMode mode) const;

  /// True iff the query has at least one embedding into the graph.
  bool ExistsMatch(const BgpQuery& q) const;

  /// Returns up to `limit` distinct answer rows (projections of embeddings
  /// on the distinguished variables; for a boolean query, one empty row if
  /// the query matches). `limit` == 0 returns no rows. Rows come back in
  /// discovery order, which depends on the chosen plan (the old std::set
  /// dedup sorted them by id as a side effect); callers needing a stable
  /// cross-plan order must sort.
  StatusOr<std::vector<Row>> Evaluate(const BgpQuery& q,
                                      size_t limit = SIZE_MAX) const;
  StatusOr<std::vector<Row>> Evaluate(const BgpQuery& q, size_t limit,
                                      PlannerMode mode) const;

  /// Number of embeddings of the query body (not deduplicated by head).
  uint64_t CountEmbeddings(const BgpQuery& q) const;

  /// Plans and fully executes `q`, returning the plan annotated with the
  /// actual cardinality observed at every step.
  StatusOr<Explanation> Explain(const BgpQuery& q) const;
  StatusOr<Explanation> Explain(const BgpQuery& q, PlannerMode mode) const;

  /// The frozen table the evaluator runs on (statistics, index counts).
  const store::TripleTable& table() const { return table_; }

 private:
  const Graph& graph_;
  EvaluatorOptions options_;
  store::TripleTable table_;
};

}  // namespace rdfsum::query

#endif  // RDFSUM_QUERY_EVALUATOR_H_
