#ifndef RDFSUM_QUERY_EVALUATOR_H_
#define RDFSUM_QUERY_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "query/bgp.h"
#include "query/executor.h"
#include "query/plan.h"
#include "rdf/graph.h"
#include "store/triple_table.h"
#include "util/statusor.h"

namespace rdfsum::query {

/// One answer row: the bindings of the distinguished variables, in query
/// head order.
using Row = std::vector<Term>;

struct EvaluatorOptions {
  /// How Plan()/Open()/Evaluate() order the patterns by default; per-call
  /// overloads can override it.
  PlannerMode planner = PlannerMode::kGreedy;
  /// Enables PlannerMode::kSummary refinement. Not owned; must outlive the
  /// evaluator and estimate over the same graph.
  const summary::CardinalityEstimator* estimator = nullptr;
};

/// Per-Open knobs for the streaming API: limit/offset (applied after
/// dedup; the tree stops pulling once the quota fills) and the hash-join
/// policy. Exactly the executor's options — aliased so the two can never
/// drift.
using CursorOptions = ExecutorOptions;

/// Evaluates BGP queries against one graph through a streaming operator
/// tree over the store's pattern indexes. Evaluation sees exactly the
/// triples of the graph it is given — evaluate against Saturate(g) for
/// complete answers (§2.1).
///
/// Each query is planned once (see QueryPlan): the planner fixes the
/// pattern order, per-step index, and join algorithm (nested-loop vs. hash)
/// up front from the table statistics; the executor compiles the plan into
/// a pull-based cursor tree (query/cursor.h, query/executor.h).
///
/// The primary API is Open(): it returns a Cursor the caller drains at its
/// own pace — rows are produced on demand, so LIMIT/pagination never pay
/// for results the caller does not pull. Evaluate()/Explain() are
/// drain-the-cursor conveniences kept for compatibility.
class BgpEvaluator {
 public:
  explicit BgpEvaluator(const Graph& g, EvaluatorOptions options = {});
  /// The evaluator only borrows the graph; binding a temporary would
  /// dangle after the constructor returns (ASan caught exactly this).
  explicit BgpEvaluator(Graph&&) = delete;
  BgpEvaluator(Graph&&, EvaluatorOptions) = delete;

  /// Evaluates over an already-built table — the frozen-image path, where
  /// `table` is a borrow-mode TripleTable over an mmap'd store
  /// (store::MmapStore) and no Graph ever exists. The evaluator only needs
  /// the dictionary for planning and Decode, so this is all a store-backed
  /// query requires; `dict` (and the storage a borrowed table references)
  /// must outlive the evaluator.
  BgpEvaluator(const Dictionary& dict, store::TripleTable table,
               EvaluatorOptions options = {});

  /// Builds the execution plan for `q` without running it.
  QueryPlan Plan(const BgpQuery& q) const;
  QueryPlan Plan(const BgpQuery& q, PlannerMode mode) const;

  /// Opens a streaming cursor over `q`'s distinct answer rows (projected on
  /// the distinguished variables, deduplicated, deterministic order).
  /// Decode() turns the produced IdRows into Terms. The cursor borrows the
  /// evaluator (its table and dictionary) and must not outlive it; the
  /// plan's lifetime is not tied to the cursor.
  StatusOr<std::unique_ptr<Cursor>> Open(const BgpQuery& q,
                                         CursorOptions options = {}) const;
  StatusOr<std::unique_ptr<Cursor>> Open(const BgpQuery& q, PlannerMode mode,
                                         CursorOptions options = {}) const;
  /// Opens a cursor over an already-built plan (the plan may die after).
  StatusOr<std::unique_ptr<Cursor>> Open(const BgpQuery& q,
                                         const QueryPlan& plan,
                                         CursorOptions options = {}) const;

  /// Decodes a cursor-produced row into Terms, in head order.
  Row Decode(const IdRow& row) const;

  /// True iff the query has at least one embedding into the graph. Pulls a
  /// single row off the join pipeline — no materialization.
  bool ExistsMatch(const BgpQuery& q) const;

  /// Returns up to `limit` distinct answer rows (projections of embeddings
  /// on the distinguished variables; for a boolean query, one empty row if
  /// the query matches). `limit` == 0 returns no rows. Rows come back in
  /// discovery order, which depends on the chosen plan; callers needing a
  /// stable cross-plan order must sort.
  ///
  /// Deprecated as the primary surface: this drains Open()'s cursor into a
  /// vector. New callers should Open() and pull rows as they need them.
  StatusOr<std::vector<Row>> Evaluate(const BgpQuery& q,
                                      size_t limit = SIZE_MAX) const;
  StatusOr<std::vector<Row>> Evaluate(const BgpQuery& q, size_t limit,
                                      PlannerMode mode) const;
  /// Full-options drain, the governed path: options.exec carries the
  /// deadline/row/memory budgets and any non-OK cursor status (e.g.
  /// kDeadlineExceeded) comes back as the error instead of a silently
  /// truncated row set.
  StatusOr<std::vector<Row>> Evaluate(const BgpQuery& q,
                                      const CursorOptions& options) const;
  StatusOr<std::vector<Row>> Evaluate(const BgpQuery& q,
                                      const CursorOptions& options,
                                      PlannerMode mode) const;

  /// Number of embeddings of the query body (not deduplicated by head).
  uint64_t CountEmbeddings(const BgpQuery& q) const;

  /// Plans and fully executes `q`, returning the plan annotated with the
  /// actual cardinality observed at every step plus the per-operator
  /// rows-produced counters read off the drained cursor tree.
  StatusOr<Explanation> Explain(const BgpQuery& q) const;
  StatusOr<Explanation> Explain(const BgpQuery& q, PlannerMode mode) const;

  /// The frozen table the evaluator runs on (statistics, index counts).
  const store::TripleTable& table() const { return table_; }

 private:
  const Dictionary* dict_;  // never null; borrowed from the graph or store
  EvaluatorOptions options_;
  store::TripleTable table_;
};

}  // namespace rdfsum::query

#endif  // RDFSUM_QUERY_EVALUATOR_H_
