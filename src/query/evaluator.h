#ifndef RDFSUM_QUERY_EVALUATOR_H_
#define RDFSUM_QUERY_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "query/bgp.h"
#include "rdf/graph.h"
#include "store/triple_table.h"
#include "util/statusor.h"

namespace rdfsum::query {

/// One answer row: the bindings of the distinguished variables, in query
/// head order.
using Row = std::vector<Term>;

/// Evaluates BGP queries against one graph by backtracking join over the
/// store's pattern indexes. Evaluation sees exactly the triples of the graph
/// it is given — evaluate against Saturate(g) for complete answers (§2.1).
class BgpEvaluator {
 public:
  explicit BgpEvaluator(const Graph& g);
  /// The evaluator only borrows the graph; binding a temporary would
  /// dangle after the constructor returns (ASan caught exactly this).
  explicit BgpEvaluator(Graph&&) = delete;

  /// True iff the query has at least one embedding into the graph.
  bool ExistsMatch(const BgpQuery& q) const;

  /// Returns up to `limit` distinct answer rows (projections of embeddings
  /// on the distinguished variables; for a boolean query, one empty row if
  /// the query matches).
  StatusOr<std::vector<Row>> Evaluate(const BgpQuery& q,
                                      size_t limit = SIZE_MAX) const;

  /// Number of embeddings of the query body (not deduplicated by head).
  uint64_t CountEmbeddings(const BgpQuery& q) const;

 private:
  const Graph& graph_;
  store::TripleTable table_;
};

}  // namespace rdfsum::query

#endif  // RDFSUM_QUERY_EVALUATOR_H_
