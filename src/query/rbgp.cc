#include "query/rbgp.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/vocabulary.h"

namespace rdfsum::query {

Status ValidateRbgp(const BgpQuery& q) {
  for (const TriplePatternQ& t : q.triples) {
    if (t.p.is_var) {
      return Status::InvalidArgument("RBGP requires a URI in every property "
                                     "position: " +
                                     t.ToString());
    }
    if (!t.p.term.is_iri()) {
      return Status::InvalidArgument("property is not a URI: " + t.ToString());
    }
    bool is_type = t.p.term.lexical == vocab::kRdfType;
    if (is_type) {
      if (t.o.is_var || !t.o.term.is_iri()) {
        return Status::InvalidArgument(
            "RBGP requires a URI object in τ triples: " + t.ToString());
      }
    } else if (!t.o.is_var) {
      return Status::InvalidArgument(
          "RBGP requires a variable in non-τ object positions: " +
          t.ToString());
    }
    if (!t.s.is_var) {
      return Status::InvalidArgument(
          "RBGP requires a variable in subject positions: " + t.ToString());
    }
  }
  return Status::OK();
}

BgpQuery GenerateRbgpQuery(const Graph& g, Random& rng,
                           const RbgpGeneratorOptions& options) {
  BgpQuery query;
  if (g.data().empty() && g.types().empty()) return query;

  // Index triples by node for the walk.
  std::unordered_map<TermId, std::vector<const Triple*>> by_subject;
  std::unordered_map<TermId, std::vector<const Triple*>> by_object;
  for (const Triple& t : g.data()) {
    by_subject[t.s].push_back(&t);
    by_object[t.o].push_back(&t);
  }
  std::unordered_map<TermId, std::vector<TermId>> types_of;
  for (const Triple& t : g.types()) types_of[t.s].push_back(t.o);

  std::unordered_map<TermId, std::string> var_of;
  auto var_for = [&](TermId n) {
    auto [it, inserted] = var_of.emplace(
        n, "x" + std::to_string(var_of.size() + 1));
    return it->second;
  };

  std::unordered_set<const Triple*> used;
  auto emit_data = [&](const Triple* t) {
    if (!used.insert(t).second) return false;
    TriplePatternQ pat;
    pat.s = PatternTerm::Var(var_for(t->s));
    pat.p = PatternTerm::Const(g.dict().Decode(t->p));
    pat.o = PatternTerm::Var(var_for(t->o));
    query.triples.push_back(std::move(pat));
    return true;
  };
  auto maybe_emit_type = [&](TermId node) {
    auto it = types_of.find(node);
    if (it == types_of.end()) return;
    if (!rng.Bernoulli(options.type_pattern_probability)) return;
    TermId cls = it->second[rng.Uniform(it->second.size())];
    TriplePatternQ pat;
    pat.s = PatternTerm::Var(var_for(node));
    pat.p = PatternTerm::Const(Term::Iri(vocab::kRdfType));
    pat.o = PatternTerm::Const(g.dict().Decode(cls));
    // Deduplicate identical τ patterns.
    for (const TriplePatternQ& existing : query.triples) {
      if (existing.ToString() == pat.ToString()) return;
    }
    query.triples.push_back(std::move(pat));
  };

  // Seed: a random data triple (or a typed node if there is no data at all).
  if (g.data().empty()) {
    const Triple& t = g.types()[rng.Uniform(g.types().size())];
    TriplePatternQ pat;
    pat.s = PatternTerm::Var(var_for(t.s));
    pat.p = PatternTerm::Const(Term::Iri(vocab::kRdfType));
    pat.o = PatternTerm::Const(g.dict().Decode(t.o));
    query.triples.push_back(std::move(pat));
    query.distinguished = query.BodyVariables();
    return query;
  }

  const Triple* current = &g.data()[rng.Uniform(g.data().size())];
  emit_data(current);
  maybe_emit_type(current->s);
  maybe_emit_type(current->o);

  while (query.triples.size() < options.num_patterns) {
    // Extend from the subject or object of the current triple.
    TermId pivot = rng.Bernoulli(options.forward_bias) ? current->o
                                                       : current->s;
    const Triple* next = nullptr;
    auto pick = [&](const std::vector<const Triple*>* candidates) {
      if (candidates == nullptr || candidates->empty()) return;
      const Triple* cand = (*candidates)[rng.Uniform(candidates->size())];
      if (!used.count(cand)) next = cand;
    };
    auto sit = by_subject.find(pivot);
    pick(sit == by_subject.end() ? nullptr : &sit->second);
    if (next == nullptr) {
      auto oit = by_object.find(pivot);
      pick(oit == by_object.end() ? nullptr : &oit->second);
    }
    if (next == nullptr) break;  // dead end
    emit_data(next);
    maybe_emit_type(next->s);
    maybe_emit_type(next->o);
    current = next;
  }

  query.distinguished = query.BodyVariables();
  return query;
}

}  // namespace rdfsum::query
