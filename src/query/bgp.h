#ifndef RDFSUM_QUERY_BGP_H_
#define RDFSUM_QUERY_BGP_H_

#include <string>
#include <vector>

#include "rdf/term.h"

namespace rdfsum::query {

/// One position of a triple pattern: either a variable or a constant term.
struct PatternTerm {
  bool is_var = false;
  std::string var;  // variable name, without the leading '?'
  Term term;        // constant (valid iff !is_var)

  static PatternTerm Var(std::string name) {
    PatternTerm t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
  static PatternTerm Const(Term term) {
    PatternTerm t;
    t.term = std::move(term);
    return t;
  }

  std::string ToString() const;
};

/// A triple pattern.
struct TriplePatternQ {
  PatternTerm s;
  PatternTerm p;
  PatternTerm o;

  std::string ToString() const;
};

/// A basic graph pattern (conjunctive) query q(x̄) :- t1, ..., tα (§2.1).
/// An empty `distinguished` list makes the query boolean.
struct BgpQuery {
  std::vector<std::string> distinguished;
  std::vector<TriplePatternQ> triples;

  /// All variable names occurring in the body, in first-occurrence order.
  std::vector<std::string> BodyVariables() const;

  /// Renders the query in conjunctive-query notation.
  std::string ToString() const;
};

}  // namespace rdfsum::query

#endif  // RDFSUM_QUERY_BGP_H_
