#include "store/mmap_store.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define RDFSUM_HAVE_MMAP 1
#endif

#include "rdf/dense_graph.h"
#include "store/table_stats.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace rdfsum::store {

Status FreezeGraphToFile(const Graph& g, const std::string& path,
                         const FreezeOptions& options) {
  RDFSUM_FAILPOINT("image:write");

  ImageBuilder builder;
  ImageMeta meta{};
  AppendDictionarySections(g.dict(), &meta, &builder);

  TripleTable table;
  g.ForEachTriple([&](const Triple& t) { table.Append(t); });
  Timer freeze_timer;
  table.Freeze(options.num_threads);
  if (options.freeze_seconds != nullptr) {
    *options.freeze_seconds = freeze_timer.ElapsedSeconds();
  }
  meta.num_triples = table.size();
  const TableStats& stats = table.stats();
  meta.num_distinct_subjects = stats.num_distinct_subjects();
  meta.num_distinct_predicates = stats.num_distinct_predicates();
  meta.num_distinct_objects = stats.num_distinct_objects();
  builder.AddArray(SectionId::kSpo, table.Permutation(IndexKind::kSpo));
  builder.AddArray(SectionId::kPos, table.Permutation(IndexKind::kPos));
  builder.AddArray(SectionId::kOsp, table.Permutation(IndexKind::kOsp));

  std::vector<ImagePredStat> preds;
  preds.reserve(stats.by_predicate().size());
  for (const auto& [p, ps] : stats.by_predicate()) {
    preds.push_back(ImagePredStat{p, 0, ps.count, ps.distinct_subjects,
                                  ps.distinct_objects});
  }
  std::sort(preds.begin(), preds.end(),
            [](const ImagePredStat& a, const ImagePredStat& b) {
              return a.p < b.p;
            });
  meta.num_predicates = preds.size();
  builder.AddArray<ImagePredStat>(SectionId::kPredStats, preds);

  meta.num_type_triples = g.types().size();
  meta.num_schema_triples = g.schema().size();
  builder.AddArray<Triple>(SectionId::kTypeTriples, g.types());
  builder.AddArray<Triple>(SectionId::kSchemaTriples, g.schema());

  uint32_t flags = 0;
  if (options.include_dense) {
    flags |= kImageFlagDense;
    AppendDenseSections(g.Dense(), &meta, &builder);
  }

  builder.Add(SectionId::kMeta,
              std::string(reinterpret_cast<const char*>(&meta), sizeof(meta)));
  return builder.WriteFile(path, flags);
}

MmapStore::~MmapStore() {
#ifdef RDFSUM_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, map_size_);
#endif
}

StatusOr<std::unique_ptr<MmapStore>> MmapStore::Open(
    const std::string& path, const OpenOptions& options) {
  RDFSUM_FAILPOINT("image:open");

  std::unique_ptr<MmapStore> store(new MmapStore());
#ifdef RDFSUM_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  const size_t file_size = static_cast<size_t>(st.st_size);
  if (file_size > 0) {
    void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      store->map_ = map;
      store->map_size_ = file_size;
      store->data_ = static_cast<const char*>(map);
      store->size_ = file_size;
    }
  }
  ::close(fd);
#endif
  if (store->data_ == nullptr) {
    // Heap fallback: read the whole file. Same bytes, same validation —
    // only the paging behavior differs.
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::IOError("cannot open " + path);
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      store->heap_.append(buf, n);
    }
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) return Status::IOError("cannot read " + path);
    store->data_ = store->heap_.data();
    store->size_ = store->heap_.size();
  }

  FrozenImage::Options img_options;
  img_options.verify_checksums = options.verify_checksums;
  img_options.validate_structure = options.validate_structure;
  RDFSUM_ASSIGN_OR_RETURN(
      store->image_, FrozenImage::Attach(store->data_, store->size_,
                                         img_options));

  store->dict_ = Dictionary::FromView(store->image_.dictionary_view());

  const ImageMeta& m = store->image_.meta();
  std::vector<std::pair<TermId, PredicateStats>> per_predicate;
  std::span<const ImagePredStat> preds =
      store->image_.Array<ImagePredStat>(SectionId::kPredStats);
  per_predicate.reserve(preds.size());
  for (const ImagePredStat& ps : preds) {
    per_predicate.emplace_back(
        ps.p, PredicateStats{ps.count, ps.distinct_subjects,
                             ps.distinct_objects});
  }
  TableStats stats = TableStats::Restore(
      m.num_triples, m.num_distinct_subjects, m.num_distinct_predicates,
      m.num_distinct_objects, per_predicate);
  store->table_ = TripleTable::BorrowFrozen(
      store->image_.Array<Triple>(SectionId::kSpo),
      store->image_.Array<Triple>(SectionId::kPos),
      store->image_.Array<Triple>(SectionId::kOsp), std::move(stats));
  return store;
}

StatusOr<Graph> MmapStore::ToGraph() const {
  if (!image_.has_dense()) {
    return Status::NotSupported(
        "image was frozen without the dense substrate (freeze with "
        "include_dense to summarize from it)");
  }
  std::shared_ptr<const DenseGraph> dense = LoadDenseFromImage(image_);
  Graph g(dict_);
  g.Reserve(image_.meta().num_triples);
  // Replay the data component from the dense edge list: kEdges preserves
  // graph (insertion) order, so the rebuilt data_ vector — and with it the
  // canonical dense numbering — matches the frozen graph exactly.
  for (const DenseGraph::Edge& e : dense->data_edges()) {
    g.Add(Triple{dense->term_of(e.s), dense->property_term(e.p),
                 dense->term_of(e.o)});
  }
  for (const Triple& t : image_.Array<Triple>(SectionId::kTypeTriples)) {
    g.Add(t);
  }
  for (const Triple& t : image_.Array<Triple>(SectionId::kSchemaTriples)) {
    g.Add(t);
  }
  g.InstallDense(std::move(dense));
  return g;
}

}  // namespace rdfsum::store
