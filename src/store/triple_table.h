#ifndef RDFSUM_STORE_TRIPLE_TABLE_H_
#define RDFSUM_STORE_TRIPLE_TABLE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "rdf/triple.h"

namespace rdfsum::store {

/// A triple pattern for scans: nullopt positions are wildcards.
struct TriplePattern {
  std::optional<TermId> s;
  std::optional<TermId> p;
  std::optional<TermId> o;
};

/// Columnar table of encoded triples with three sorted permutation indexes
/// (SPO, POS, OSP), playing the role of the paper's PostgreSQL `triples`
/// table (§6): sequential scans plus indexed pattern lookups.
///
/// Usage: Append() rows, then Freeze() to build the indexes; scans require a
/// frozen table. Append after Freeze() un-freezes the table.
class TripleTable {
 public:
  void Append(const Triple& t);
  void AppendAll(const std::vector<Triple>& triples);

  /// Sorts the three permutations and removes duplicate rows.
  void Freeze();
  bool frozen() const { return frozen_; }

  size_t size() const { return spo_.size(); }
  bool empty() const { return spo_.empty(); }

  /// Rows in SPO order (frozen) or insertion order (unfrozen).
  const std::vector<Triple>& rows() const { return spo_; }

  /// Visits every triple matching `pattern` without materializing results:
  /// invokes `fn(const Triple&)` per match; `fn` returns false to stop the
  /// scan early. Requires frozen(). This is the allocation-free primitive
  /// the query evaluators build on.
  template <typename Fn>
  void Scan(const TriplePattern& pattern, Fn&& fn) const;

  /// Returns all triples matching `pattern`. Requires frozen(). Prefer the
  /// visitor overload on hot paths; this one allocates a vector per call.
  std::vector<Triple> Scan(const TriplePattern& pattern) const;

  /// Returns whether at least one triple matches `pattern`. Requires
  /// frozen().
  bool Matches(const TriplePattern& pattern) const;

  /// Number of triples matching `pattern`. Requires frozen().
  size_t Count(const TriplePattern& pattern) const;

  /// Exact membership test. Requires frozen().
  bool Contains(const Triple& t) const;

 private:
  struct PosLess {
    bool operator()(const Triple& a, const Triple& b) const {
      if (a.p != b.p) return a.p < b.p;
      if (a.o != b.o) return a.o < b.o;
      return a.s < b.s;
    }
  };
  struct OspLess {
    bool operator()(const Triple& a, const Triple& b) const {
      if (a.o != b.o) return a.o < b.o;
      if (a.s != b.s) return a.s < b.s;
      return a.p < b.p;
    }
  };

  std::vector<Triple> spo_;  // primary storage, SPO-sorted when frozen
  std::vector<Triple> pos_;  // sorted by (p, o, s)
  std::vector<Triple> osp_;  // sorted by (o, s, p)
  bool frozen_ = false;
};

template <typename Fn>
void TripleTable::Scan(const TriplePattern& q, Fn&& fn) const {
  assert(frozen_ && "Scan requires a frozen table");
  auto emit_range = [&](auto begin, auto end) {
    for (auto it = begin; it != end; ++it) {
      if (q.s && it->s != *q.s) continue;
      if (q.p && it->p != *q.p) continue;
      if (q.o && it->o != *q.o) continue;
      if (!fn(*it)) return;
    }
  };

  if (q.s) {
    // SPO index: contiguous range for a fixed subject (and property).
    Triple lo, hi;
    if (!q.p) {
      lo = Triple{*q.s, 0, 0};
      hi = Triple{*q.s, ~TermId{0}, ~TermId{0}};
    } else if (!q.o) {
      lo = Triple{*q.s, *q.p, 0};
      hi = Triple{*q.s, *q.p, ~TermId{0}};
    } else {
      lo = hi = Triple{*q.s, *q.p, *q.o};
    }
    auto begin = std::lower_bound(spo_.begin(), spo_.end(), lo);
    auto end = std::upper_bound(spo_.begin(), spo_.end(), hi);
    emit_range(begin, end);
    return;
  }
  if (q.p) {
    Triple lo{0, *q.p, q.o.value_or(0)};
    Triple hi{~TermId{0}, *q.p, q.o ? *q.o : ~TermId{0}};
    auto begin = std::lower_bound(pos_.begin(), pos_.end(), lo, PosLess());
    auto end = std::upper_bound(pos_.begin(), pos_.end(), hi, PosLess());
    emit_range(begin, end);
    return;
  }
  if (q.o) {
    Triple lo{0, 0, *q.o};
    Triple hi{~TermId{0}, ~TermId{0}, *q.o};
    auto begin = std::lower_bound(osp_.begin(), osp_.end(), lo, OspLess());
    auto end = std::upper_bound(osp_.begin(), osp_.end(), hi, OspLess());
    emit_range(begin, end);
    return;
  }
  emit_range(spo_.begin(), spo_.end());
}

}  // namespace rdfsum::store

#endif  // RDFSUM_STORE_TRIPLE_TABLE_H_
