#ifndef RDFSUM_STORE_TRIPLE_TABLE_H_
#define RDFSUM_STORE_TRIPLE_TABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "rdf/triple.h"

namespace rdfsum::store {

/// A triple pattern for scans: nullopt positions are wildcards.
struct TriplePattern {
  std::optional<TermId> s;
  std::optional<TermId> p;
  std::optional<TermId> o;
};

/// Columnar table of encoded triples with three sorted permutation indexes
/// (SPO, POS, OSP), playing the role of the paper's PostgreSQL `triples`
/// table (§6): sequential scans plus indexed pattern lookups.
///
/// Usage: Append() rows, then Freeze() to build the indexes; scans require a
/// frozen table. Append after Freeze() un-freezes the table.
class TripleTable {
 public:
  void Append(const Triple& t);
  void AppendAll(const std::vector<Triple>& triples);

  /// Sorts the three permutations and removes duplicate rows.
  void Freeze();
  bool frozen() const { return frozen_; }

  size_t size() const { return spo_.size(); }
  bool empty() const { return spo_.empty(); }

  /// Rows in SPO order (frozen) or insertion order (unfrozen).
  const std::vector<Triple>& rows() const { return spo_; }

  /// Returns all triples matching `pattern`. Requires frozen().
  std::vector<Triple> Scan(const TriplePattern& pattern) const;

  /// Returns whether at least one triple matches `pattern`. Requires
  /// frozen().
  bool Matches(const TriplePattern& pattern) const;

  /// Number of triples matching `pattern`. Requires frozen().
  size_t Count(const TriplePattern& pattern) const;

  /// Exact membership test. Requires frozen().
  bool Contains(const Triple& t) const;

 private:
  template <typename Fn>
  void ScanInternal(const TriplePattern& pattern, Fn&& fn) const;

  std::vector<Triple> spo_;  // primary storage, SPO-sorted when frozen
  std::vector<Triple> pos_;  // sorted by (p, o, s)
  std::vector<Triple> osp_;  // sorted by (o, s, p)
  bool frozen_ = false;
};

}  // namespace rdfsum::store

#endif  // RDFSUM_STORE_TRIPLE_TABLE_H_
