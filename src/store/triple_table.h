#ifndef RDFSUM_STORE_TRIPLE_TABLE_H_
#define RDFSUM_STORE_TRIPLE_TABLE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "rdf/triple.h"
#include "store/table_stats.h"

namespace rdfsum::store {

/// A triple pattern for scans: nullopt positions are wildcards.
struct TriplePattern {
  std::optional<TermId> s;
  std::optional<TermId> p;
  std::optional<TermId> o;
};

/// The three sorted permutations a frozen table maintains. Every subset of
/// bound positions is a *prefix* of one of them — (s), (s,p) and (s,p,o) of
/// SPO; (p) and (p,o) of POS; (o) and (o,s) of OSP — so every pattern is
/// served from one contiguous index range, never a filtered scan.
enum class IndexKind : uint8_t { kSpo, kPos, kOsp };

const char* IndexKindName(IndexKind kind);  // "SPO", "POS", "OSP"

/// A resumable position inside one pattern's contiguous index range: the
/// binary search happens once at TripleTable::OpenScan and every Next() is a
/// pointer bump, so a pull-based executor can interleave thousands of scans
/// without re-searching per pull. Borrows the table's index storage — valid
/// only while the table stays frozen and unmodified.
class ScanCursor {
 public:
  ScanCursor() = default;

  /// Copies the next matching triple into *t; false when exhausted.
  bool Next(Triple* t) {
    if (cur_ == end_) return false;
    *t = *cur_++;
    return true;
  }

  size_t remaining() const { return static_cast<size_t>(end_ - cur_); }
  bool done() const { return cur_ == end_; }

 private:
  friend class TripleTable;
  ScanCursor(const Triple* cur, const Triple* end) : cur_(cur), end_(end) {}

  const Triple* cur_ = nullptr;
  const Triple* end_ = nullptr;
};

/// Columnar table of encoded triples with three sorted permutation indexes
/// (SPO, POS, OSP), playing the role of the paper's PostgreSQL `triples`
/// table (§6): sequential scans plus indexed pattern lookups.
///
/// Usage: Append() rows, then Freeze() to build the indexes; scans require a
/// frozen table. Append after Freeze() un-freezes the table and eagerly
/// discards the secondary indexes and statistics, so stale counts can never
/// be served — not even in builds where the asserts compile away.
///
/// **Borrow mode.** BorrowFrozen() builds a table whose permutations are
/// read-only spans over storage owned elsewhere — the 64-byte-aligned
/// sections of an mmap'd frozen image (store::MmapStore). A borrowed table
/// is frozen from birth and serves every read path (Scan/Count/cursors)
/// straight off the mapping, zero-copy. Mutation (Append) first
/// materializes the borrowed rows into owned storage via Unfreeze(), so
/// the borrowing is invisible to callers.
class TripleTable {
 public:
  void Append(const Triple& t);
  void AppendAll(const std::vector<Triple>& triples);

  /// A frozen table over externally owned, already-sorted permutations of
  /// the same deduplicated triple set (`spo` by (s,p,o), `pos` by (p,o,s),
  /// `osp` by (o,s,p)) and their precomputed statistics. The spans must
  /// outlive the table (and any cursor opened on it) unless Unfreeze() is
  /// called first. Sortedness is the caller's contract — the frozen-image
  /// reader validates it before handing spans here.
  static TripleTable BorrowFrozen(std::span<const Triple> spo,
                                  std::span<const Triple> pos,
                                  std::span<const Triple> osp,
                                  TableStats stats);

  /// Sorts the three permutations, removes duplicate rows, and computes the
  /// table statistics (see stats()). No-op on an already-frozen table (in
  /// particular it never touches a borrowed table's external storage).
  void Freeze();

  /// Parallel Freeze: the SPO sort runs sharded (util/parallel_sort.h), then
  /// the POS and OSP copies sort concurrently with half the workers each,
  /// and the statistics reduce per-range. 0 = all hardware cores; the
  /// frozen permutations and stats are byte-identical to Freeze() at every
  /// thread count (the sort comparators key on all three triple components,
  /// so equal elements are identical rows). Freeze(1) IS the sequential
  /// path.
  void Freeze(uint32_t num_threads);
  bool frozen() const { return frozen_; }
  bool borrowed() const { return borrowed_; }

  /// Leaves the frozen state, eagerly dropping the secondary indexes and
  /// statistics so they can never be served stale (Append/AppendAll call
  /// this implicitly; it is the enforcement of the staleness invariant in
  /// builds where the asserts compile away). A borrowed table first copies
  /// its rows into owned storage, after which the external spans are no
  /// longer referenced. No-op on an unfrozen table.
  void Unfreeze();

  size_t size() const { return SpoView().size(); }
  bool empty() const { return SpoView().empty(); }

  /// Rows in SPO order (frozen) or insertion order (unfrozen). Borrow-mode
  /// note: the span aliases external storage; it is invalidated by
  /// Append/Unfreeze like a cursor.
  std::span<const Triple> rows() const { return SpoView(); }

  /// One sorted permutation of a frozen table — the serialization surface
  /// the frozen-image writer walks. Requires frozen().
  std::span<const Triple> Permutation(IndexKind kind) const {
    assert(frozen_ && "permutations require a frozen table");
    switch (kind) {
      case IndexKind::kPos:
        return PosView();
      case IndexKind::kOsp:
        return OspView();
      case IndexKind::kSpo:
        break;
    }
    return SpoView();
  }

  /// The index that serves a pattern with the given bound positions.
  static IndexKind ChooseIndex(bool s_bound, bool p_bound, bool o_bound);
  static IndexKind ChooseIndex(const TriplePattern& pattern) {
    return ChooseIndex(pattern.s.has_value(), pattern.p.has_value(),
                       pattern.o.has_value());
  }

  /// Visits every triple matching `pattern` without materializing results:
  /// invokes `fn(const Triple&)` per match; `fn` returns false to stop the
  /// scan early. Requires frozen(). This is the allocation-free primitive
  /// the query evaluators build on. Matches are emitted straight from the
  /// contiguous range of the chosen index — no residual filtering.
  template <typename Fn>
  void Scan(const TriplePattern& pattern, Fn&& fn) const;

  /// Positions a ScanCursor at the start of `pattern`'s match range: one
  /// O(log n) binary search, then each Next() is a pointer bump. Requires
  /// frozen(); the cursor is invalidated by Append/Freeze.
  ScanCursor OpenScan(const TriplePattern& pattern) const {
    auto [begin, end] = EqualRange(pattern);
    return ScanCursor(begin, end);
  }

  /// The contiguous range of `pattern`'s matches in the index ChooseIndex
  /// picks, as a borrowed span in index order. Requires frozen(); the span
  /// aliases the permutation storage and is invalidated like a cursor.
  ///
  /// This is the morsel-splitting surface of the parallel executor: because
  /// every pattern's matches are one contiguous sorted range, the range
  /// splits into fixed-size morsels for free — `MatchSpan(q).subspan(b, n)`
  /// — and concatenating per-morsel outputs in morsel order reproduces the
  /// sequential scan exactly.
  std::span<const Triple> MatchSpan(const TriplePattern& pattern) const {
    auto [begin, end] = EqualRange(pattern);
    return {begin, static_cast<size_t>(end - begin)};
  }

  /// Positions a ScanCursor over a sub-range [begin_offset, end_offset) of
  /// `pattern`'s match range (offsets clamped to the range length) — one
  /// morsel of the scan. OpenScanSlice(q, 0, SIZE_MAX) == OpenScan(q).
  ScanCursor OpenScanSlice(const TriplePattern& pattern, size_t begin_offset,
                           size_t end_offset) const {
    std::span<const Triple> range = MatchSpan(pattern);
    end_offset = std::min(end_offset, range.size());
    begin_offset = std::min(begin_offset, end_offset);
    return ScanCursor(range.data() + begin_offset, range.data() + end_offset);
  }

  /// Returns all triples matching `pattern`. Requires frozen(). Prefer the
  /// visitor overload on hot paths; this one allocates a vector per call.
  std::vector<Triple> Scan(const TriplePattern& pattern) const;

  /// Returns whether at least one triple matches `pattern`. O(log n):
  /// non-emptiness of the index range, no scan. Requires frozen().
  bool Matches(const TriplePattern& pattern) const;

  /// Number of triples matching `pattern`. O(log n): index-range length
  /// arithmetic (lower_bound/upper_bound on the chosen permutation), exact
  /// for every bound-position combination. Requires frozen(). This is the
  /// primitive the planner's cost model and TableStats build on.
  size_t Count(const TriplePattern& pattern) const;

  /// Exact membership test. Requires frozen().
  bool Contains(const Triple& t) const;

  /// Table-wide statistics (per-predicate counts and distinct
  /// subject/object counts), computed at Freeze() time. Requires frozen().
  const TableStats& stats() const {
    assert(frozen_ && "stats require a frozen table");
    return stats_;
  }

 private:
  struct PosLess {
    bool operator()(const Triple& a, const Triple& b) const {
      if (a.p != b.p) return a.p < b.p;
      if (a.o != b.o) return a.o < b.o;
      return a.s < b.s;
    }
  };
  struct OspLess {
    bool operator()(const Triple& a, const Triple& b) const {
      if (a.o != b.o) return a.o < b.o;
      if (a.s != b.s) return a.s < b.s;
      return a.p < b.p;
    }
  };

  /// The contiguous range of `pattern`'s matches in the index ChooseIndex
  /// picks. Requires frozen().
  std::pair<const Triple*, const Triple*> EqualRange(
      const TriplePattern& pattern) const;

  // The permutation actually in effect: borrowed spans or owned vectors.
  std::span<const Triple> SpoView() const {
    return borrowed_ ? spo_view_ : std::span<const Triple>(spo_);
  }
  std::span<const Triple> PosView() const {
    return borrowed_ ? pos_view_ : std::span<const Triple>(pos_);
  }
  std::span<const Triple> OspView() const {
    return borrowed_ ? osp_view_ : std::span<const Triple>(osp_);
  }

  std::vector<Triple> spo_;  // primary storage, SPO-sorted when frozen
  std::vector<Triple> pos_;  // sorted by (p, o, s)
  std::vector<Triple> osp_;  // sorted by (o, s, p)
  // Borrow mode: external frozen permutations (see BorrowFrozen).
  std::span<const Triple> spo_view_, pos_view_, osp_view_;
  TableStats stats_;  // valid iff frozen_
  bool frozen_ = false;
  bool borrowed_ = false;
};

inline std::pair<const Triple*, const Triple*> TripleTable::EqualRange(
    const TriplePattern& q) const {
  assert(frozen_ && "pattern lookups require a frozen table");
  constexpr TermId kMax = ~TermId{0};
  // Bound positions pin lo == hi == value; wildcards span [0, kMax]. The
  // chosen index has the bound positions as a key prefix, so
  // lower/upper_bound under its comparator yield the exact match range.
  const Triple lo{q.s.value_or(0), q.p.value_or(0), q.o.value_or(0)};
  const Triple hi{q.s.value_or(kMax), q.p.value_or(kMax), q.o.value_or(kMax)};
  auto range = [&](std::span<const Triple> index, auto less) {
    const Triple* begin =
        std::lower_bound(index.data(), index.data() + index.size(), lo, less);
    const Triple* end =
        std::upper_bound(begin, index.data() + index.size(), hi, less);
    return std::make_pair(begin, end);
  };
  switch (ChooseIndex(q)) {
    case IndexKind::kPos:
      return range(PosView(), PosLess());
    case IndexKind::kOsp:
      return range(OspView(), OspLess());
    case IndexKind::kSpo:
      break;
  }
  return range(SpoView(), std::less<Triple>());
}

template <typename Fn>
void TripleTable::Scan(const TriplePattern& q, Fn&& fn) const {
  auto [begin, end] = EqualRange(q);
  for (const Triple* it = begin; it != end; ++it) {
    if (!fn(*it)) return;
  }
}

}  // namespace rdfsum::store

#endif  // RDFSUM_STORE_TRIPLE_TABLE_H_
