#ifndef RDFSUM_STORE_DATABASE_H_
#define RDFSUM_STORE_DATABASE_H_

#include <string>

#include "rdf/graph.h"
#include "store/triple_table.h"
#include "util/status.h"
#include "util/statusor.h"

namespace rdfsum::store {

/// Embedded persistence for a dictionary-encoded RDF graph — the role the
/// paper's PostgreSQL instance plays (dictionary table + encoded triples
/// table + COPY-style bulk load).
///
/// The on-disk layout is a single binary file:
///   magic "RDFSUMDB" | u32 version | u64 #terms | terms | u64 #triples |
///   triples(u32 s,p,o)
/// Terms are serialized as kind byte + length-prefixed strings.
class Database {
 public:
  /// Builds an indexed database from a graph (copies the triples, shares the
  /// dictionary).
  static Database FromGraph(const Graph& graph);

  /// Serializes to `path`.
  Status Save(const std::string& path) const;

  /// Loads a database previously written by Save().
  static StatusOr<Database> Load(const std::string& path);

  /// Materializes the triples back into a Graph (shared dictionary).
  Graph ToGraph() const;

  const TripleTable& table() const { return table_; }
  const Dictionary& dict() const { return *dict_; }
  std::shared_ptr<Dictionary> dict_ptr() const { return dict_; }

  size_t num_triples() const { return table_.size(); }

 private:
  Database() : dict_(std::make_shared<Dictionary>()) {}

  std::shared_ptr<Dictionary> dict_;
  TripleTable table_;
};

}  // namespace rdfsum::store

#endif  // RDFSUM_STORE_DATABASE_H_
