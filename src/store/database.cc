#include "store/database.h"

#include <cstring>
#include <fstream>

#include "util/binary_io.h"

namespace rdfsum::store {
namespace {

constexpr char kMagic[8] = {'R', 'D', 'F', 'S', 'U', 'M', 'D', 'B'};
constexpr uint32_t kVersion = 1;

}  // namespace

Database Database::FromGraph(const Graph& graph) {
  Database db;
  db.dict_ = graph.dict_ptr();
  graph.ForEachTriple([&](const Triple& t) { db.table_.Append(t); });
  db.table_.Freeze();
  return db;
}

Status Database::Save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IOError("cannot open " + path + " for writing");
  os.write(kMagic, sizeof(kMagic));
  PutU32(os, kVersion);
  // Dictionary: entries 1..size-1 (slot 0 is the reserved invalid id).
  PutU64(os, dict_->size() - 1);
  for (TermId id = 1; id < dict_->size(); ++id) {
    const Term& t = dict_->Decode(id);
    os.put(static_cast<char>(t.kind));
    PutString(os, t.lexical);
    PutString(os, t.datatype);
    PutString(os, t.language);
  }
  PutU64(os, table_.size());
  for (const Triple& t : table_.rows()) {
    PutU32(os, t.s);
    PutU32(os, t.p);
    PutU32(os, t.o);
  }
  os.flush();
  if (!os) return Status::IOError("write failed for " + path);
  return Status::OK();
}

StatusOr<Database> Database::Load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IOError("cannot open " + path);
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  uint32_t version = 0;
  if (!GetU32(is, &version) || version != kVersion) {
    return Status::Corruption("unsupported version in " + path);
  }
  Database db;
  uint64_t num_terms = 0;
  if (!GetU64(is, &num_terms)) return Status::Corruption("truncated header");
  for (uint64_t i = 0; i < num_terms; ++i) {
    int kind_byte = is.get();
    if (kind_byte < 0 || kind_byte > 2) {
      return Status::Corruption("bad term kind");
    }
    Term term;
    term.kind = static_cast<TermKind>(kind_byte);
    if (!GetString(is, &term.lexical) || !GetString(is, &term.datatype) ||
        !GetString(is, &term.language)) {
      return Status::Corruption("truncated term");
    }
    TermId id = db.dict_->Encode(term);
    if (id != i + 1) {
      return Status::Corruption("duplicate dictionary entry");
    }
  }
  uint64_t num_triples = 0;
  if (!GetU64(is, &num_triples)) return Status::Corruption("truncated count");
  for (uint64_t i = 0; i < num_triples; ++i) {
    Triple t;
    if (!GetU32(is, &t.s) || !GetU32(is, &t.p) || !GetU32(is, &t.o)) {
      return Status::Corruption("truncated triple");
    }
    if (!db.dict_->Contains(t.s) || !db.dict_->Contains(t.p) ||
        !db.dict_->Contains(t.o)) {
      return Status::Corruption("triple references unknown term");
    }
    db.table_.Append(t);
  }
  db.table_.Freeze();
  return db;
}

Graph Database::ToGraph() const {
  Graph g(dict_);
  for (const Triple& t : table_.rows()) g.Add(t);
  return g;
}

}  // namespace rdfsum::store
