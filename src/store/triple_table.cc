#include "store/triple_table.h"

#include <algorithm>
#include <cassert>

namespace rdfsum::store {

void TripleTable::Append(const Triple& t) {
  spo_.push_back(t);
  frozen_ = false;
}

void TripleTable::AppendAll(const std::vector<Triple>& triples) {
  spo_.insert(spo_.end(), triples.begin(), triples.end());
  frozen_ = false;
}

void TripleTable::Freeze() {
  std::sort(spo_.begin(), spo_.end());
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), PosLess());
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OspLess());
  frozen_ = true;
}

std::vector<Triple> TripleTable::Scan(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  Scan(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

bool TripleTable::Matches(const TriplePattern& pattern) const {
  bool found = false;
  Scan(pattern, [&](const Triple&) {
    found = true;
    return false;
  });
  return found;
}

size_t TripleTable::Count(const TriplePattern& pattern) const {
  size_t n = 0;
  Scan(pattern, [&](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

bool TripleTable::Contains(const Triple& t) const {
  assert(frozen_);
  return std::binary_search(spo_.begin(), spo_.end(), t);
}

}  // namespace rdfsum::store
