#include "store/triple_table.h"

#include <algorithm>
#include <cassert>

namespace rdfsum::store {
namespace {

struct PosLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.o != b.o) return a.o < b.o;
    return a.s < b.s;
  }
};

struct OspLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.o != b.o) return a.o < b.o;
    if (a.s != b.s) return a.s < b.s;
    return a.p < b.p;
  }
};

}  // namespace

void TripleTable::Append(const Triple& t) {
  spo_.push_back(t);
  frozen_ = false;
}

void TripleTable::AppendAll(const std::vector<Triple>& triples) {
  spo_.insert(spo_.end(), triples.begin(), triples.end());
  frozen_ = false;
}

void TripleTable::Freeze() {
  std::sort(spo_.begin(), spo_.end());
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), PosLess());
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OspLess());
  frozen_ = true;
}

template <typename Fn>
void TripleTable::ScanInternal(const TriplePattern& q, Fn&& fn) const {
  assert(frozen_ && "Scan requires a frozen table");
  auto emit_range = [&](auto begin, auto end) {
    for (auto it = begin; it != end; ++it) {
      if (q.s && it->s != *q.s) continue;
      if (q.p && it->p != *q.p) continue;
      if (q.o && it->o != *q.o) continue;
      if (!fn(*it)) return;
    }
  };

  if (q.s) {
    // SPO index: contiguous range for a fixed subject (and property).
    Triple lo, hi;
    if (!q.p) {
      lo = Triple{*q.s, 0, 0};
      hi = Triple{*q.s, ~TermId{0}, ~TermId{0}};
    } else if (!q.o) {
      lo = Triple{*q.s, *q.p, 0};
      hi = Triple{*q.s, *q.p, ~TermId{0}};
    } else {
      lo = hi = Triple{*q.s, *q.p, *q.o};
    }
    auto begin = std::lower_bound(spo_.begin(), spo_.end(), lo);
    auto end = std::upper_bound(spo_.begin(), spo_.end(), hi);
    emit_range(begin, end);
    return;
  }
  if (q.p) {
    Triple lo{0, *q.p, q.o.value_or(0)};
    Triple hi{~TermId{0}, *q.p, q.o ? *q.o : ~TermId{0}};
    auto begin = std::lower_bound(pos_.begin(), pos_.end(), lo, PosLess());
    auto end = std::upper_bound(pos_.begin(), pos_.end(), hi, PosLess());
    emit_range(begin, end);
    return;
  }
  if (q.o) {
    Triple lo{0, 0, *q.o};
    Triple hi{~TermId{0}, ~TermId{0}, *q.o};
    auto begin = std::lower_bound(osp_.begin(), osp_.end(), lo, OspLess());
    auto end = std::upper_bound(osp_.begin(), osp_.end(), hi, OspLess());
    emit_range(begin, end);
    return;
  }
  emit_range(spo_.begin(), spo_.end());
}

std::vector<Triple> TripleTable::Scan(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  ScanInternal(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

bool TripleTable::Matches(const TriplePattern& pattern) const {
  bool found = false;
  ScanInternal(pattern, [&](const Triple&) {
    found = true;
    return false;
  });
  return found;
}

size_t TripleTable::Count(const TriplePattern& pattern) const {
  size_t n = 0;
  ScanInternal(pattern, [&](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

bool TripleTable::Contains(const Triple& t) const {
  assert(frozen_);
  return std::binary_search(spo_.begin(), spo_.end(), t);
}

}  // namespace rdfsum::store
