#include "store/triple_table.h"

#include <algorithm>
#include <cassert>

#include "util/parallel_for.h"
#include "util/parallel_sort.h"

namespace rdfsum::store {

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kSpo:
      return "SPO";
    case IndexKind::kPos:
      return "POS";
    case IndexKind::kOsp:
      return "OSP";
  }
  return "?";
}

IndexKind TripleTable::ChooseIndex(bool s_bound, bool p_bound, bool o_bound) {
  if (s_bound && p_bound && o_bound) return IndexKind::kSpo;  // exact row
  if (s_bound && o_bound) return IndexKind::kOsp;             // (o, s) prefix
  if (s_bound) return IndexKind::kSpo;                        // (s[, p]) prefix
  if (p_bound) return IndexKind::kPos;                        // (p[, o]) prefix
  if (o_bound) return IndexKind::kOsp;                        // (o) prefix
  return IndexKind::kSpo;                                     // full scan
}

TripleTable TripleTable::BorrowFrozen(std::span<const Triple> spo,
                                      std::span<const Triple> pos,
                                      std::span<const Triple> osp,
                                      TableStats stats) {
  TripleTable t;
  t.spo_view_ = spo;
  t.pos_view_ = pos;
  t.osp_view_ = osp;
  t.stats_ = std::move(stats);
  t.frozen_ = true;
  t.borrowed_ = true;
  return t;
}

void TripleTable::Unfreeze() {
  if (!frozen_) return;
  if (borrowed_) {
    // Materialize before mutating: after this the table owns its rows and
    // the external spans are dead weight, never referenced again.
    spo_.assign(spo_view_.begin(), spo_view_.end());
    spo_view_ = pos_view_ = osp_view_ = {};
    borrowed_ = false;
  }
  frozen_ = false;
  // Eagerly invalidate everything derived from the frozen rows. The stats
  // assert is debug-only; clearing here makes "stale counts after an
  // Append" structurally unreachable in every build mode.
  stats_ = TableStats{};
  pos_.clear();
  osp_.clear();
}

void TripleTable::Append(const Triple& t) {
  Unfreeze();
  spo_.push_back(t);
}

void TripleTable::AppendAll(const std::vector<Triple>& triples) {
  Unfreeze();
  spo_.insert(spo_.end(), triples.begin(), triples.end());
}

void TripleTable::Freeze() { Freeze(1); }

void TripleTable::Freeze(uint32_t num_threads) {
  if (frozen_) return;
  const uint32_t threads = util::ResolveThreadCount(
      num_threads, spo_.size() / util::kMinSortItemsPerShard);
  if (threads <= 1) {
    std::sort(spo_.begin(), spo_.end());
    spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
    pos_ = spo_;
    std::sort(pos_.begin(), pos_.end(), PosLess());
    osp_ = spo_;
    std::sort(osp_.begin(), osp_.end(), OspLess());
    stats_ = TableStats::Compute(spo_, pos_, osp_);
    frozen_ = true;
    return;
  }
  util::ParallelSort(spo_.begin(), spo_.end(), std::less<Triple>(), threads);
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  // The two secondary permutations are independent: copy + sort each on its
  // own branch, splitting the worker budget between them.
  const uint32_t half = std::max(1u, threads / 2);
  util::ParallelFor(2, [&](uint32_t which) {
    if (which == 0) {
      pos_ = spo_;
      util::ParallelSort(pos_.begin(), pos_.end(), PosLess(), half);
    } else {
      osp_ = spo_;
      util::ParallelSort(osp_.begin(), osp_.end(), OspLess(), half);
    }
  });
  stats_ = TableStats::Compute(spo_, pos_, osp_, threads);
  frozen_ = true;
}

std::vector<Triple> TripleTable::Scan(const TriplePattern& pattern) const {
  auto [begin, end] = EqualRange(pattern);
  return std::vector<Triple>(begin, end);
}

bool TripleTable::Matches(const TriplePattern& pattern) const {
  auto [begin, end] = EqualRange(pattern);
  return begin != end;
}

size_t TripleTable::Count(const TriplePattern& pattern) const {
  auto [begin, end] = EqualRange(pattern);
  return static_cast<size_t>(end - begin);
}

bool TripleTable::Contains(const Triple& t) const {
  assert(frozen_);
  std::span<const Triple> rows = SpoView();
  return std::binary_search(rows.begin(), rows.end(), t);
}

}  // namespace rdfsum::store
