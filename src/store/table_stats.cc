#include "store/table_stats.h"

#include "util/parallel_for.h"
#include "util/string_util.h"

namespace rdfsum::store {

TableStats TableStats::Compute(const std::vector<Triple>& spo,
                               const std::vector<Triple>& pos,
                               const std::vector<Triple>& osp) {
  TableStats out;
  out.num_triples_ = spo.size();

  // SPO pass: distinct subjects globally (s runs) and per predicate
  // (distinct (s, p) pairs, which for a fixed p count its distinct
  // subjects).
  for (size_t i = 0; i < spo.size(); ++i) {
    if (i == 0 || spo[i].s != spo[i - 1].s) ++out.num_distinct_subjects_;
    if (i == 0 || spo[i].s != spo[i - 1].s || spo[i].p != spo[i - 1].p) {
      ++out.by_predicate_[spo[i].p].distinct_subjects;
    }
  }

  // POS pass: per-predicate triple counts, distinct objects per predicate
  // ((p, o) run boundaries) and distinct predicates (p runs).
  for (size_t i = 0; i < pos.size(); ++i) {
    PredicateStats& ps = out.by_predicate_[pos[i].p];
    ++ps.count;
    if (i == 0 || pos[i].p != pos[i - 1].p) ++out.num_distinct_predicates_;
    if (i == 0 || pos[i].p != pos[i - 1].p || pos[i].o != pos[i - 1].o) {
      ++ps.distinct_objects;
    }
  }

  // OSP pass: distinct objects globally (o runs).
  for (size_t i = 0; i < osp.size(); ++i) {
    if (i == 0 || osp[i].o != osp[i - 1].o) ++out.num_distinct_objects_;
  }
  return out;
}

TableStats TableStats::Compute(const std::vector<Triple>& spo,
                               const std::vector<Triple>& pos,
                               const std::vector<Triple>& osp,
                               uint32_t num_threads) {
  // One shard per ~64k triples: below that the three passes are a few
  // hundred microseconds and the spawn cost dominates.
  const uint32_t threads =
      util::ResolveThreadCount(num_threads, spo.size() / 65536);
  if (threads <= 1) return Compute(spo, pos, osp);

  // The three permutations hold the same triple set, so one range sharding
  // covers all three passes. Each shard starts its run-boundary comparisons
  // against the global predecessor element, so runs spanning a shard border
  // are counted exactly once.
  std::vector<TableStats> parts(threads);
  util::ParallelForRanges(
      threads, spo.size(), [&](uint32_t shard, uint64_t begin, uint64_t end) {
        TableStats& part = parts[shard];
        for (uint64_t i = begin; i < end; ++i) {
          if (i == 0 || spo[i].s != spo[i - 1].s) {
            ++part.num_distinct_subjects_;
          }
          if (i == 0 || spo[i].s != spo[i - 1].s || spo[i].p != spo[i - 1].p) {
            ++part.by_predicate_[spo[i].p].distinct_subjects;
          }
        }
        for (uint64_t i = begin; i < end; ++i) {
          PredicateStats& ps = part.by_predicate_[pos[i].p];
          ++ps.count;
          if (i == 0 || pos[i].p != pos[i - 1].p) {
            ++part.num_distinct_predicates_;
          }
          if (i == 0 || pos[i].p != pos[i - 1].p || pos[i].o != pos[i - 1].o) {
            ++ps.distinct_objects;
          }
        }
        for (uint64_t i = begin; i < end; ++i) {
          if (i == 0 || osp[i].o != osp[i - 1].o) ++part.num_distinct_objects_;
        }
      });

  TableStats out;
  out.num_triples_ = spo.size();
  for (const TableStats& part : parts) {
    out.num_distinct_subjects_ += part.num_distinct_subjects_;
    out.num_distinct_predicates_ += part.num_distinct_predicates_;
    out.num_distinct_objects_ += part.num_distinct_objects_;
    for (const auto& [p, ps] : part.by_predicate_) {
      PredicateStats& dst = out.by_predicate_[p];
      dst.count += ps.count;
      dst.distinct_subjects += ps.distinct_subjects;
      dst.distinct_objects += ps.distinct_objects;
    }
  }
  return out;
}

TableStats TableStats::Restore(
    uint64_t num_triples, uint64_t num_distinct_subjects,
    uint64_t num_distinct_predicates, uint64_t num_distinct_objects,
    const std::vector<std::pair<TermId, PredicateStats>>& per_predicate) {
  TableStats out;
  out.num_triples_ = num_triples;
  out.num_distinct_subjects_ = num_distinct_subjects;
  out.num_distinct_predicates_ = num_distinct_predicates;
  out.num_distinct_objects_ = num_distinct_objects;
  out.by_predicate_.reserve(per_predicate.size());
  for (const auto& [p, stats] : per_predicate) out.by_predicate_[p] = stats;
  return out;
}

double TableStats::AvgTriplesPerSubject(TermId p) const {
  const PredicateStats* ps = predicate(p);
  if (ps == nullptr || ps->distinct_subjects == 0) return 0.0;
  return static_cast<double>(ps->count) /
         static_cast<double>(ps->distinct_subjects);
}

double TableStats::AvgTriplesPerObject(TermId p) const {
  const PredicateStats* ps = predicate(p);
  if (ps == nullptr || ps->distinct_objects == 0) return 0.0;
  return static_cast<double>(ps->count) /
         static_cast<double>(ps->distinct_objects);
}

std::string TableStats::ToString() const {
  std::string out = FormatWithCommas(num_triples_) + " triples, " +
                    FormatWithCommas(num_distinct_subjects_) + " subjects, " +
                    FormatWithCommas(num_distinct_predicates_) +
                    " predicates, " + FormatWithCommas(num_distinct_objects_) +
                    " objects";
  return out;
}

}  // namespace rdfsum::store
