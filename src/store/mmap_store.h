#ifndef RDFSUM_STORE_MMAP_STORE_H_
#define RDFSUM_STORE_MMAP_STORE_H_

#include <memory>
#include <string>

#include "rdf/dictionary.h"
#include "rdf/frozen_image.h"
#include "rdf/graph.h"
#include "store/triple_table.h"
#include "util/status.h"
#include "util/statusor.h"

namespace rdfsum::store {

struct FreezeOptions {
  /// Also serialize the DenseGraph substrate (sections 11-25). Required for
  /// summarization and ToGraph() from the image; pure query serving only
  /// needs the permutations. Freezing an already-warm graph reuses its
  /// cached substrate.
  bool include_dense = true;
  /// Workers for the permutation sorts + statistics (TripleTable::Freeze):
  /// 1 = sequential (default), 0 = all hardware cores. The image bytes are
  /// identical at every thread count.
  uint32_t num_threads = 1;
  /// When non-null, receives the wall seconds spent sorting/deduplicating
  /// the permutations (TripleTable::Freeze) — the `freeze` entry of the
  /// CLI's phase-time breakdown.
  double* freeze_seconds = nullptr;
};

/// Writes `g` as a frozen store image (rdf/frozen_image.h): dictionary,
/// sorted SPO/POS/OSP permutations with statistics, the type and schema
/// components verbatim, and (by default) the dense substrate. The output is
/// deterministic — the same graph produces byte-identical files.
/// Failpoint: `image:write`.
/// (Two overloads instead of `= {}`: GCC PR 88165, see fault_injection.h.)
Status FreezeGraphToFile(const Graph& g, const std::string& path,
                         const FreezeOptions& options);
inline Status FreezeGraphToFile(const Graph& g, const std::string& path) {
  return FreezeGraphToFile(g, path, FreezeOptions());
}

/// A read-only store opened from a frozen image: the file is mmap'd
/// (PROT_READ; a heap read is the fallback when mapping fails) and, after
/// FrozenImage::Attach's corruption wall, served zero-copy —
///
///  - dict(): a view-mode Dictionary probing the on-disk slot table,
///  - table(): a borrow-mode TripleTable whose permutations are spans into
///    the mapping, driving Scan/Count/cursors without loading the file.
///
/// Open cost is O(validated bytes) page-cache reads, not O(triples) parsing
/// and sorting — the warm-start path (`warmstart_*` in
/// BENCH_substrate.json). The store is immutable and self-contained; it
/// must outlive every evaluator, cursor, and Graph handed out from it.
class MmapStore {
 public:
  struct OpenOptions {
    /// Verify per-section FNV-1a-64 checksums at open (recommended).
    bool verify_checksums = true;
    /// Run the structural validation gate at open (see FrozenImage).
    bool validate_structure = true;
  };

  /// Opens and validates `path`. Failpoint: `image:open`.
  /// (Two overloads instead of `= {}`: GCC PR 88165, see fault_injection.h.)
  static StatusOr<std::unique_ptr<MmapStore>> Open(
      const std::string& path, const OpenOptions& options);
  static StatusOr<std::unique_ptr<MmapStore>> Open(const std::string& path) {
    return Open(path, OpenOptions());
  }

  ~MmapStore();
  MmapStore(const MmapStore&) = delete;
  MmapStore& operator=(const MmapStore&) = delete;

  const FrozenImage& image() const { return image_; }
  const Dictionary& dict() const { return *dict_; }
  const std::shared_ptr<Dictionary>& dict_ptr() const { return dict_; }
  const TripleTable& table() const { return table_; }
  bool has_dense() const { return image_.has_dense(); }

  /// Materializes a full Graph from the image, byte-identical to the graph
  /// that was frozen: the data component is replayed from the stored dense
  /// edges (original insertion order), types and schema from their verbatim
  /// sections, the dictionary (with its minted-URI counter) is shared with
  /// this store, and the stored substrate is installed so Dense() never
  /// rebuilds. Summaries computed from the result equal the parse path's
  /// bit for bit. Requires has_dense(); the Graph shares this store's
  /// dictionary and must not outlive it.
  StatusOr<Graph> ToGraph() const;

 private:
  MmapStore() = default;

  std::string heap_;  // owns the bytes when mmap is unavailable/failed
  void* map_ = nullptr;
  size_t map_size_ = 0;
  const char* data_ = nullptr;
  size_t size_ = 0;
  FrozenImage image_;
  std::shared_ptr<Dictionary> dict_;
  TripleTable table_;
};

}  // namespace rdfsum::store

#endif  // RDFSUM_STORE_MMAP_STORE_H_
