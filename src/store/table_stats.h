#ifndef RDFSUM_STORE_TABLE_STATS_H_
#define RDFSUM_STORE_TABLE_STATS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/triple.h"

namespace rdfsum::store {

/// Aggregates for one predicate, playing the role of an RDBMS per-column
/// histogram head: how many triples carry the predicate and how many
/// distinct subjects/objects they touch. count/distinct_subjects is the
/// expected out-fanout of a subject under this predicate (and symmetrically
/// for objects) — the quantity the cost-based planner divides by when a
/// join variable is already bound.
struct PredicateStats {
  uint64_t count = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
};

/// Table-wide statistics computed once at TripleTable::Freeze() from the
/// already-sorted SPO/POS/OSP permutations (single pass each, no hashing:
/// distinct counts are run-boundary counts in sorted order). Statistics are
/// exactly as stale as the indexes themselves — a frozen table cannot drift
/// from its stats, and un-freezing (Append) invalidates both together.
class TableStats {
 public:
  TableStats() = default;

  /// Builds the stats from the three sorted permutations of the same triple
  /// set. `spo` sorted by (s,p,o), `pos` by (p,o,s), `osp` by (o,s,p).
  static TableStats Compute(const std::vector<Triple>& spo,
                            const std::vector<Triple>& pos,
                            const std::vector<Triple>& osp);

  /// Parallel variant: the run-boundary passes are computed over contiguous
  /// ranges (each shard compares against the global element before its
  /// range, so shard borders split no run twice) and the partial counters /
  /// per-predicate maps are summed — a reduction whose result is identical
  /// to the sequential pass at every thread count. 0 = all hardware cores.
  static TableStats Compute(const std::vector<Triple>& spo,
                            const std::vector<Triple>& pos,
                            const std::vector<Triple>& osp,
                            uint32_t num_threads);

  /// Reassembles stats previously computed by Compute() and serialized —
  /// the frozen-image open path (kPredStats section), where re-deriving
  /// them would mean touching every page of the permutations.
  static TableStats Restore(
      uint64_t num_triples, uint64_t num_distinct_subjects,
      uint64_t num_distinct_predicates, uint64_t num_distinct_objects,
      const std::vector<std::pair<TermId, PredicateStats>>& per_predicate);

  uint64_t num_triples() const { return num_triples_; }
  uint64_t num_distinct_subjects() const { return num_distinct_subjects_; }
  uint64_t num_distinct_predicates() const { return num_distinct_predicates_; }
  uint64_t num_distinct_objects() const { return num_distinct_objects_; }

  /// All per-predicate rows, unordered — serializers sort by TermId for a
  /// deterministic on-disk layout.
  const std::unordered_map<TermId, PredicateStats>& by_predicate() const {
    return by_predicate_;
  }

  /// Stats for one predicate, or nullptr if it never occurs.
  const PredicateStats* predicate(TermId p) const {
    auto it = by_predicate_.find(p);
    return it == by_predicate_.end() ? nullptr : &it->second;
  }

  /// Expected number of triples with predicate `p` per distinct subject
  /// (>= 1 when the predicate occurs; 0 otherwise).
  double AvgTriplesPerSubject(TermId p) const;
  /// Expected number of triples with predicate `p` per distinct object.
  double AvgTriplesPerObject(TermId p) const;

  std::string ToString() const;

 private:
  uint64_t num_triples_ = 0;
  uint64_t num_distinct_subjects_ = 0;
  uint64_t num_distinct_predicates_ = 0;
  uint64_t num_distinct_objects_ = 0;
  std::unordered_map<TermId, PredicateStats> by_predicate_;
};

}  // namespace rdfsum::store

#endif  // RDFSUM_STORE_TABLE_STATS_H_
