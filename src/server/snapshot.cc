#include "server/snapshot.h"

#include <utility>

#include "util/timer.h"

namespace rdfsum::server {

StatusOr<std::shared_ptr<Snapshot>> Snapshot::Open(const std::string& path,
                                                   uint64_t epoch) {
  auto store = store::MmapStore::Open(path);
  if (!store.ok()) return store.status();
  std::shared_ptr<Snapshot> snap(new Snapshot());
  snap->path_ = path;
  snap->epoch_ = epoch;
  snap->store_ = std::move(store).value();
  snap->num_triples_ = snap->store_->table().size();
  snap->evaluator_.emplace(snap->store_->dict(), snap->store_->table());
  return snap;
}

Graph Snapshot::ReinternedGraph() const {
  const Dictionary& serving = store_->dict();
  Graph g;  // fresh dictionary — isolated from every concurrent reader
  g.dict().Reserve(serving.size());
  auto spo = store_->table().Permutation(store::IndexKind::kSpo);
  g.Reserve(spo.size());
  for (const Triple& t : spo) {
    g.AddTerms(serving.Decode(t.s), serving.Decode(t.p), serving.Decode(t.o));
  }
  return g;
}

StatusOr<const summary::SummaryResult*> Snapshot::Summary(
    summary::SummaryKind kind) {
  MintSlot& s = slot(kind);
  std::call_once(s.once, [&] {
    Timer timer;
    s.graph.emplace(ReinternedGraph());
    auto r = summary::TrySummarize(*s.graph, kind);
    if (r.ok()) {
      s.result.emplace(std::move(r).value());
    } else {
      s.status = r.status();
      s.graph.reset();
    }
    s.seconds = timer.ElapsedSeconds();
    s.done.store(true, std::memory_order_release);
  });
  if (!s.status.ok()) return s.status;
  return &*s.result;
}

StatusOr<const summary::CardinalityEstimator*> Snapshot::Estimator() {
  std::call_once(estimator_once_, [&] {
    auto sum = Summary(summary::SummaryKind::kWeak);
    if (!sum.ok()) {
      estimator_status_ = sum.status();
      return;
    }
    // The estimator compiles patterns against its summary's dictionary at
    // estimate time; that dictionary is the kWeak slot's private one, which
    // no thread mutates after the mint completes — concurrent Estimate()
    // calls are pure reads.
    estimator_.emplace(*slot(summary::SummaryKind::kWeak).graph, **sum);
  });
  if (!estimator_status_.ok()) return estimator_status_;
  return &*estimator_;
}

std::vector<Snapshot::MintReport> Snapshot::MintReports() const {
  std::vector<MintReport> out;
  for (size_t i = 0; i < 6; ++i) {
    const MintSlot& s = mints_[i];
    if (!s.done.load(std::memory_order_acquire)) continue;
    out.push_back({summary::SummaryKindName(static_cast<summary::SummaryKind>(i)),
                   s.status.ok(), s.seconds});
  }
  return out;
}

}  // namespace rdfsum::server
