#ifndef RDFSUM_SERVER_PLAN_CACHE_H_
#define RDFSUM_SERVER_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "query/plan.h"

namespace rdfsum::server {

/// LRU cache of plan skeletons keyed on normalized BGP shape + planner mode
/// (query::NormalizedBgpShape — variables and constants abstracted, so any
/// two queries with the same join structure share an entry regardless of
/// which concrete terms they name). A hit skips the planner's statistics
/// probes and the kSummary estimator enumeration; the skeleton is
/// re-instantiated against the request's constants with PlanFromSkeleton,
/// which is correct for *any* constants because result sets are
/// planner-invariant (src/query/README.md).
///
/// Entries describe one snapshot's statistics, so the server clears the
/// cache on every epoch swap (src/server/README.md). Thread-safe; the
/// hit/miss counters feed STATS and survive Clear().
class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// The full cache key for a request: the shape with the planner mode
  /// appended (the same shape plans differently under different modes).
  static std::string Key(const std::string& shape, query::PlannerMode mode);

  /// True (and *out filled) on a hit; the entry becomes most-recent. Every
  /// call counts as exactly one hit or one miss.
  bool Lookup(const std::string& key, query::PlanSkeleton* out);

  /// Inserts or refreshes `key`, evicting the least-recently-used entry
  /// beyond capacity. A capacity of 0 disables the cache (inserts drop).
  void Insert(const std::string& key, query::PlanSkeleton skeleton);

  /// Drops every entry (epoch swap); counters are preserved.
  void Clear();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::string, query::PlanSkeleton>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace rdfsum::server

#endif  // RDFSUM_SERVER_PLAN_CACHE_H_
